// Package freeride is a Go implementation of FreeRide — "FreeRide:
// Harvesting Bubbles in Pipeline Parallelism" (Middleware '25) — a
// middleware that serves generic GPU side tasks inside the bubbles of
// pipeline-parallel LLM training with ~1% training overhead.
//
// The package assembles the full system on a deterministic discrete-event
// simulation of the paper's testbed (see DESIGN.md for the substitution
// map): a pipeline-parallel trainer whose bubbles emerge from FP/BP
// dependencies, the side task manager and per-GPU workers (paper Algorithms
// 1 and 2), the iterative/imperative side-task interfaces, CUDA-MPS-style
// memory limits, and the MPS / naive co-location baselines.
//
// Quick start:
//
//	cfg := freeride.DefaultConfig()
//	cfg.Method = freeride.MethodIterative
//	sess, err := freeride.NewSession(cfg)
//	...
//	sess.SubmitEverywhere(model.ResNet18)
//	res, err := sess.Run()
//	fmt.Printf("overhead %.1f%%, savings %.1f%%\n", 100*res.Cost.I, 100*res.Cost.S)
package freeride

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/container"
	"freeride/internal/core"
	"freeride/internal/cost"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/oracle"
	"freeride/internal/pipeline"
	"freeride/internal/serve"
	"freeride/internal/sidetask"
	"freeride/internal/simfault"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Method selects how side tasks co-locate with pipeline training
// (paper §6.1.2).
type Method int

// Co-location methods.
const (
	// MethodNone runs pipeline training alone (the T_noSideTask baseline).
	MethodNone Method = iota + 1
	// MethodIterative is FreeRide with the iterative interface.
	MethodIterative
	// MethodImperative is FreeRide with the imperative interface.
	MethodImperative
	// MethodMPS co-locates side tasks directly under CUDA MPS, running
	// them continuously with no bubble awareness.
	MethodMPS
	// MethodNaive co-locates side tasks without MPS (context
	// time-slicing), also continuously.
	MethodNaive
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "none"
	case MethodIterative:
		return "freeride-iterative"
	case MethodImperative:
		return "freeride-imperative"
	case MethodMPS:
		return "mps"
	case MethodNaive:
		return "naive"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config describes one co-location experiment.
type Config struct {
	// LLM is the pipeline-trained model (paper: nanoGPT 1.2B/3.6B/6B).
	LLM model.LLM
	// Stages and MicroBatches shape the pipeline (paper: 4 stages,
	// micro-batches 4/6/8).
	Stages       int
	MicroBatches int
	// Epochs is the number of training epochs (paper: 128).
	Epochs int
	// Schedule is the pipeline schedule (default 1F1B as in DeepSpeed).
	Schedule pipeline.ScheduleKind
	// VirtualStages > 1 enables interleaved scheduling (virtual pipeline
	// chunks per GPU) — the bubble-reduction alternative of the paper's
	// related work, kept here so FreeRide's harvest can be measured on an
	// already-optimized pipeline.
	VirtualStages int
	// Method selects the co-location approach.
	Method Method
	// Tick is the manager's Algorithm-2 loop period (the deadline-rounding
	// grid of the event-driven manager, the poll interval of the oracle).
	Tick time.Duration
	// ManagerMode selects how the Algorithm-2 loop is driven: event-driven
	// (default), the legacy polling loop, or unquantized immediate mode.
	ManagerMode core.ManagerMode
	// Grace is the worker's framework-enforced kill delay.
	Grace time.Duration
	// RPCLatency is the one-way latency of the simulated control-plane
	// links.
	RPCLatency time.Duration
	// SafetyMargin shrinks reported bubble durations (reporter-side).
	SafetyMargin time.Duration
	// ResidencyTax is the MPS context-multiplexing overhead; negative
	// disables, zero selects simgpu.DefaultResidencyTax.
	ResidencyTax float64
	// WorkScale selects how much real computation side tasks perform.
	WorkScale sidetask.WorkScale
	// Seed drives all task-level randomness.
	Seed int64
	// RecordOps retains the op timeline for figure rendering.
	RecordOps bool
	// Oracle groups the differential-oracle toggles — the retained
	// alternate arms that must reproduce the default arm bit-identically
	// (see OracleConfig). This is the canonical spelling; the flat fields
	// below are deprecated aliases.
	Oracle OracleConfig
	// FullRebalance is a deprecated alias for Oracle.FullRebalance; it is
	// folded into the group (by OR) at session-build time, so old callers
	// and the grouped spelling produce bit-identical results.
	//
	// Deprecated: set Oracle.FullRebalance.
	FullRebalance bool
	// NoShareCache is a deprecated alias for Oracle.NoShareCache, folded
	// into the group at session-build time.
	//
	// Deprecated: set Oracle.NoShareCache.
	NoShareCache bool
	// NoStepFuse is a deprecated alias for Oracle.NoStepFuse, folded into
	// the group at session-build time.
	//
	// Deprecated: set Oracle.NoStepFuse.
	NoStepFuse bool
	// LegacySchedule is a deprecated alias for Oracle.LegacySchedule,
	// folded into the group at session-build time.
	//
	// Deprecated: set Oracle.LegacySchedule.
	LegacySchedule bool
	// Serving switches the session from the closed training job to the
	// open-loop inference-serving workload: a seeded request-arrival trace
	// drives the pipeline in per-batch fill/execute/drain cycles, the
	// manager harvests the inter-batch and fill/drain bubbles through the
	// same Algorithm-1 path, and per-request latency is recorded against
	// the SLO (Result.ServingStats). Nil — the default — leaves every
	// training code path untouched; the Table 2 grid is bit-identical with
	// the serving plane compiled in (the zero-serving oracle).
	Serving *ServingConfig
	// Faults is the seeded fault schedule injected into the run (crash /
	// sever / drop / delay / fail-kernel / wedge, all on the virtual clock).
	// Non-nil — even empty — wires the fault hooks and enables the manager's
	// lease-based self-healing; nil leaves the control plane exactly as
	// before. An empty schedule with hooks wired must reproduce the no-fault
	// metrics bit-identically (the zero-fault oracle).
	Faults *simfault.Schedule
	// Lease is the manager's failure-detector lease; 0 with Faults set
	// selects core.DefaultLease. See core.ManagerOptions.Lease.
	Lease time.Duration
	// MaxRestarts / RetryBackoff tune task recovery (0 = core defaults).
	MaxRestarts  int
	RetryBackoff time.Duration
	// Drift is the seeded bubble-drift schedule: the trainer's reported
	// bubble trace is reshaped on the virtual clock (parameter-freeze stage
	// shrink, elastic micro-batch resize, stage rebalance, straggler
	// windows). Nil leaves the reporter untouched; an empty schedule wires
	// the drift plane with identity scaling and must reproduce the no-drift
	// metrics bit-identically (the zero-drift oracle).
	Drift *bubble.DriftSchedule
	// Replan arms the manager's online re-profiling: per-worker EWMA+CUSUM
	// drift detectors over the bubble-report stream, and an Algorithm-1
	// re-plan (demote/park/revive) on every detection. Nil trusts the
	// one-shot profile forever, the paper's behaviour. The zero value of
	// the config selects the detector defaults.
	Replan *bubble.DetectorConfig
}

// OracleConfig groups the differential-oracle toggles that used to live as
// flat Config fields. Each toggle selects a retained alternate arm whose
// observable results must stay bit-identical to the default arm — the
// dedicated differential tests pin that in-process, and the CI oracle
// matrix forces each arm suite-wide through the FREERIDE_ORACLE_* variables
// (parsed once by the shared resolver in internal/oracle).
type OracleConfig struct {
	// FullRebalance forces the GPU scheduler's full-recompute pass instead
	// of the incremental one — the float-exact differential oracle (see
	// simgpu.DeviceConfig.FullRebalance; FREERIDE_ORACLE_REBALANCE=full).
	FullRebalance bool
	// NoShareCache disables the GPU scheduler's water-fill share cache —
	// the incremental pass recomputes allocations every rebalance, like the
	// oracle (simgpu.DeviceConfig.NoShareCache; FREERIDE_ORACLE_SHARECACHE=off).
	NoShareCache bool
	// NoStepFuse forces the side-task step loop's unfused two-event form
	// (separate host-overhead sleep + kernel completion per step) instead
	// of the fused host-lead launch — the step-fusion differential oracle
	// (FREERIDE_ORACLE_STEPFUSE=off).
	NoStepFuse bool
	// LegacySchedule routes 1F1B/GPipe op-list generation through the
	// retained pre-generator emitters — the schedule-zoo differential
	// oracle (pipeline.Config.LegacySchedule; FREERIDE_ORACLE_SCHEDULE=legacy).
	LegacySchedule bool
	// ServingGuard wires the manager's SLO admission guard into a training
	// session with a zero guard factor — the dormant serving plane. A zero
	// guard is a structural identity (every bubble the reconcile loop acts
	// on has strictly positive remaining time), so the Table 2 grid must
	// stay bit-identical (FREERIDE_ORACLE_SERVING=on; the zero-serving
	// oracle). Serving sessions carry their real guard in ServingConfig.
	ServingGuard bool
}

// ServingConfig describes the open-loop inference-serving workload
// (Config.Serving). Requests arrive on a seeded trace, are grouped into
// fixed-size batches, and each batch runs a forward-only fill/execute/drain
// pipeline cycle; per-request latency (completion minus arrival) is scored
// against SLO.
type ServingConfig struct {
	// Trace selects the arrival process (Poisson / diurnal / bursty);
	// zero-valued selects Poisson. Arrivals are seeded from Config.Seed.
	Trace serve.TraceKind
	// Rate is the mean request arrival rate in requests/second (default 2).
	Rate float64
	// Burstiness shapes the non-Poisson traces: the diurnal modulation
	// depth, or the bursty on/off rate ratio (default 1).
	Burstiness float64
	// Requests is the trace length (default 6×Config.Epochs, so the same
	// epochs knob that scales training runs scales serving runs).
	Requests int
	// BatchSize is the number of requests per pipeline batch (default 8).
	// A batch dispatches once its last request has arrived and the
	// previous batch has drained; a final partial batch still pays the
	// full pipeline span (padding).
	BatchSize int
	// SLO is the per-request latency objective (default 6s). Violations
	// count requests whose latency exceeds it.
	SLO time.Duration
	// Guard is the manager's SLO admission factor: a paused side task is
	// started into a bubble only if the bubble's remaining time is at
	// least Guard × the task's pause fit (profile step + jitter + host
	// overhead). 0 admits into any open bubble (maximum harvest, maximum
	// SLO risk); raising it trades harvested GPU-seconds for fewer
	// violations. See core.SLOOptions.
	Guard float64
}

// Arrival-trace kinds for ServingConfig.Trace, re-exported from the serve
// package so callers configure sessions without importing internals.
const (
	TracePoisson = serve.TracePoisson
	TraceDiurnal = serve.TraceDiurnal
	TraceBursty  = serve.TraceBursty
)

func (sc *ServingConfig) normalize(epochs int) error {
	if sc.Trace == 0 {
		sc.Trace = serve.TracePoisson
	}
	if sc.Rate <= 0 {
		sc.Rate = 2
	}
	if sc.Burstiness < 0 {
		return fmt.Errorf("freeride: negative serving burstiness")
	}
	if sc.Burstiness == 0 {
		sc.Burstiness = 1
	}
	if sc.Requests <= 0 {
		sc.Requests = 6 * epochs
	}
	if sc.BatchSize <= 0 {
		sc.BatchSize = 8
	}
	if sc.SLO <= 0 {
		sc.SLO = 6 * time.Second
	}
	if sc.Guard < 0 {
		return fmt.Errorf("freeride: negative serving SLO guard")
	}
	return nil
}

// DefaultConfig mirrors the paper's principal setup: nanoGPT-3.6B on a
// 4-stage pipeline with 4 micro-batches.
func DefaultConfig() Config {
	return Config{
		LLM:          model.NanoGPT3B,
		Stages:       4,
		MicroBatches: 4,
		Epochs:       16,
		Schedule:     pipeline.Schedule1F1B,
		Method:       MethodIterative,
		Tick:         time.Millisecond,
		Grace:        core.DefaultGrace,
		RPCLatency:   200 * time.Microsecond,
		WorkScale:    sidetask.WorkSmall,
		Seed:         1,
	}
}

func (c *Config) normalize() error {
	if c.LLM.Name == "" {
		c.LLM = model.NanoGPT3B
	}
	if c.Stages <= 0 {
		c.Stages = 4
	}
	if c.MicroBatches <= 0 {
		c.MicroBatches = 4
	}
	if c.Epochs <= 0 {
		c.Epochs = 16
	}
	if c.Schedule == 0 {
		c.Schedule = pipeline.Schedule1F1B
	}
	if c.Schedule == pipeline.ScheduleInterleaved && c.VirtualStages < 2 {
		c.VirtualStages = 2
	}
	if c.Schedule == pipeline.ScheduleZeroBubble && c.VirtualStages > 1 {
		return fmt.Errorf("freeride: zero-bubble schedule does not compose with virtual stages")
	}
	// Fold the deprecated flat oracle aliases into the grouped spelling
	// (by OR, so either spelling arms an oracle), apply the env overrides
	// that act at this layer, then mirror the group back into the flat
	// fields so every downstream consumer — device construction, pipeline
	// config, the task factory, the memoization keys — sees one agreed
	// view. The REBALANCE/SHARECACHE/STEPFUSE env overrides are enforced
	// inside simgpu and sidetask (via the same shared resolver), so they
	// are deliberately not folded into the config here.
	c.Oracle.FullRebalance = c.Oracle.FullRebalance || c.FullRebalance
	c.Oracle.NoShareCache = c.Oracle.NoShareCache || c.NoShareCache
	c.Oracle.NoStepFuse = c.Oracle.NoStepFuse || c.NoStepFuse
	c.Oracle.LegacySchedule = c.Oracle.LegacySchedule || c.LegacySchedule || oracleLegacySchedule()
	c.Oracle.ServingGuard = c.Oracle.ServingGuard || oracleServingArmed()
	c.FullRebalance = c.Oracle.FullRebalance
	c.NoShareCache = c.Oracle.NoShareCache
	c.NoStepFuse = c.Oracle.NoStepFuse
	c.LegacySchedule = c.Oracle.LegacySchedule
	if c.Method == 0 {
		c.Method = MethodIterative
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.Grace <= 0 {
		c.Grace = core.DefaultGrace
	}
	if c.RPCLatency < 0 {
		return fmt.Errorf("freeride: negative RPC latency")
	}
	if c.ResidencyTax == 0 {
		c.ResidencyTax = simgpu.DefaultResidencyTax
	}
	if c.ResidencyTax < 0 {
		c.ResidencyTax = 0
	}
	if c.Faults != nil && c.Lease == 0 {
		c.Lease = core.DefaultLease
	}
	// CI's oracle matrix forces the detector on over a zero-drift schedule
	// for the whole tier-1 suite. Only configurations with no drift plane of
	// their own are touched, so tests exercising real drift (or deliberately
	// unarmed profile-once arms) keep their configuration. Serving sessions
	// are skipped: the drift/re-plan plane consumes the trainer's epoch
	// stream, which a serving session does not produce.
	if c.Serving == nil && c.Replan == nil && c.Drift == nil && oracleDriftArmed() {
		c.Replan = &bubble.DetectorConfig{}
		c.Drift = &bubble.DriftSchedule{}
	}
	if c.Serving != nil {
		switch c.Method {
		case MethodNone, MethodIterative, MethodImperative:
		default:
			return fmt.Errorf("freeride: serving supports MethodNone and the FreeRide methods, not %v", c.Method)
		}
		if c.Faults != nil || c.Drift != nil || c.Replan != nil {
			return fmt.Errorf("freeride: serving does not compose with the fault or drift planes yet")
		}
		if err := c.Serving.normalize(c.Epochs); err != nil {
			return err
		}
	}
	return nil
}

// oracleDriftArmed reports the FREERIDE_ORACLE_DRIFT override: "on"/"1"
// arms the drift detector (with an empty schedule) for every session that
// doesn't configure its own drift plane. Parsing lives in the shared
// resolver (internal/oracle); this layer owns the arming semantics.
func oracleDriftArmed() bool { return oracle.Env().DriftArmed }

// oracleLegacySchedule reports the FREERIDE_ORACLE_SCHEDULE override:
// "legacy" forces every session's 1F1B/GPipe op lists through the retained
// pre-generator emitters, so CI pins the schedule-generator refactor
// bit-identical across the whole tier-1 suite.
func oracleLegacySchedule() bool { return oracle.Env().LegacySchedule }

// oracleServingArmed reports the FREERIDE_ORACLE_SERVING override: "on"/"1"
// wires the dormant serving plane (a zero-factor SLO admission guard) into
// every training session, which must leave the whole suite bit-identical.
func oracleServingArmed() bool { return oracle.Env().ServingArmed }

// mbScheduleFromDrift derives the trainer's per-epoch micro-batch hook from
// resize drift events that carry an actual count (DriftEvent.MicroBatches).
// It returns a nil hook when no event does — the byte-identical default —
// plus the largest count the trainer must provision for.
func mbScheduleFromDrift(cfg Config) (func(epoch int, start time.Duration) int, int) {
	if cfg.Drift == nil {
		return nil, 0
	}
	var evs []bubble.DriftEvent
	for _, ev := range cfg.Drift.Events {
		if ev.Kind == bubble.DriftResize && ev.MicroBatches > 0 {
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		return nil, 0
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	maxMB := cfg.MicroBatches
	for _, ev := range evs {
		if ev.MicroBatches > maxMB {
			maxMB = ev.MicroBatches
		}
	}
	base := cfg.MicroBatches
	fn := func(epoch int, start time.Duration) int {
		mb := base
		for _, ev := range evs {
			if ev.At <= start {
				mb = ev.MicroBatches
			}
		}
		return mb
	}
	return fn, maxMB
}

// mbPlanKey fingerprints the resize plan for the memoization keys (empty
// without the hook, so pre-hook cache keys are unchanged).
func mbPlanKey(cfg Config) string {
	fn, _ := mbScheduleFromDrift(cfg)
	if fn == nil {
		return ""
	}
	var b []byte
	for _, ev := range cfg.Drift.Events {
		if ev.Kind == bubble.DriftResize && ev.MicroBatches > 0 {
			b = fmt.Appendf(b, "%d@%d;", ev.MicroBatches, ev.At)
		}
	}
	return string(b)
}

// TaskPlacement records where one task instance landed.
type TaskPlacement struct {
	Name    string
	Profile model.TaskProfile
	Mode    sidetask.Mode
	Worker  int // stage index
}

// Session is one assembled simulation.
type Session struct {
	cfg Config

	Eng     *simtime.Virtual
	Procs   *simproc.Runtime
	Devices []*simgpu.Device
	Trainer *pipeline.Trainer
	// Server replaces Trainer for serving sessions (Config.Serving != nil).
	Server  *serve.Server
	Manager *core.Manager
	Workers []*core.Worker

	Profile  *bubble.Profile
	reporter *bubble.Reporter
	// injector drives the deterministic fault plane (nil without cfg.Faults).
	injector *simfault.Injector
	// memSlack is the MPS-limit headroom handed to the manager; the
	// eligibility filter uses the same value so EligibleStages and
	// Algorithm-1 admission can never disagree.
	memSlack int64
	// workerIdx maps worker name → index in Workers, built at assembly so
	// Submit resolves placements in O(1) instead of scanning.
	workerIdx map[string]int

	mu                sync.Mutex
	placements        []TaskPlacement
	baselineHarnesses []*sidetask.Harness
	finalCounters     map[string]sidetask.Counters
	customTasks       map[string]CustomTask
	nameSeq           int
	started           bool
}

// CustomTask builds a user-defined side-task implementation. The
// constructor runs on the worker that the manager places the task on, once
// per deployed instance — mirroring the paper's workflow where programmers
// adapt their own GPU workloads to the iterative interface (Figure 6).
type CustomTask func(seed int64) sidetask.Iterative

// NewSession assembles devices, the trainer, and (for the FreeRide methods)
// the offline bubble profile, the manager and the workers.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Serving != nil {
		return newServingSession(cfg)
	}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)

	policy := simgpu.PolicyMPS
	if cfg.Method == MethodNaive {
		policy = simgpu.PolicyTimeSlice
	}
	tax := cfg.ResidencyTax
	if cfg.Method == MethodNaive || cfg.Method == MethodNone {
		tax = 0
	}
	devices := make([]*simgpu.Device, cfg.Stages)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name:         fmt.Sprintf("gpu%d", i),
			MemBytes:     model.ServerI.GPUMemBytes,
			Policy:       policy,
			ResidencyTax: tax,
			// Occupancy/memory series are only consumed by profiling and
			// figure-rendering runs; measurement sessions skip recording.
			NoTraces:      !cfg.RecordOps,
			FullRebalance: cfg.FullRebalance,
			NoShareCache:  cfg.NoShareCache,
		})
	}
	mbSched, mbCap := mbScheduleFromDrift(cfg)
	tr, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model:           cfg.LLM,
		Stages:          cfg.Stages,
		MicroBatches:    cfg.MicroBatches,
		Epochs:          cfg.Epochs,
		Schedule:        cfg.Schedule,
		VirtualPerStage: cfg.VirtualStages,
		RecordOps:       cfg.RecordOps,
		LegacySchedule:  cfg.LegacySchedule,
		MBSchedule:      mbSched,
		MBCap:           mbCap,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:      cfg,
		Eng:      eng,
		Procs:    procs,
		Devices:  devices,
		Trainer:  tr,
		memSlack: core.DefaultMemSlack,
	}

	if cfg.Method == MethodIterative || cfg.Method == MethodImperative {
		prof, err := offlineBubbleProfile(cfg)
		if err != nil {
			return nil, fmt.Errorf("freeride: bubble profiling: %w", err)
		}
		s.Profile = prof
		if err := s.assembleControlPlane(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// assembleControlPlane wires manager, workers and the bubble reporter over
// in-memory RPC links.
func (s *Session) assembleControlPlane() error {
	cfg := s.cfg
	var replan *core.ReplanOptions
	if cfg.Replan != nil {
		replan = &core.ReplanOptions{Detector: *cfg.Replan}
	}
	s.Manager = core.NewManager(s.Eng, core.ManagerOptions{
		Tick:         cfg.Tick,
		Mode:         cfg.ManagerMode,
		MemSlack:     s.memSlack,
		Lease:        cfg.Lease,
		MaxRestarts:  cfg.MaxRestarts,
		RetryBackoff: cfg.RetryBackoff,
		Seed:         cfg.Seed,
		Replan:       replan,
		SLO:          sloOptions(cfg),
	})
	if cfg.Faults != nil {
		s.injector = simfault.NewInjector(s.Eng, cfg.Faults)
	}
	s.workerIdx = make(map[string]int, len(s.Devices))
	for i, dev := range s.Devices {
		ctrs := container.NewRuntime(s.Procs)
		w := core.NewWorker(s.Eng, dev, ctrs, core.WorkerConfig{
			Name:    fmt.Sprintf("worker%d", i),
			Grace:   cfg.Grace,
			Factory: s.taskFactory,
		})
		wmux := freerpc.NewMux()
		w.RegisterOn(wmux)
		mgrEnd, wEnd := freerpc.MemPipe(s.Eng, cfg.RPCLatency)
		mgrPeer := freerpc.NewPeer(s.Eng, mgrEnd, s.Manager.Mux())
		wPeer := freerpc.NewPeer(s.Eng, wEnd, wmux)
		w.SetNotify(func(method string, params any) {
			_ = wPeer.Notify(method, params)
		})
		s.Manager.AddWorker(w.Name(), i, s.stageMemAvailable(i), mgrPeer)
		s.workerIdx[w.Name()] = i
		s.Workers = append(s.Workers, w)
		if s.injector != nil {
			// Transport-level faults hook the manager↔worker link; kernel
			// faults target only side-task GPU clients ("ctr/" prefix), never
			// the training clients; crash/wedge act on the worker itself.
			lf := freerpc.InjectFaults(mgrEnd)
			wrk, device := w, dev
			s.injector.Bind(i, simfault.Hooks{
				CrashWorker: func() {
					wrk.Crash()
					mgrPeer.Close()
				},
				SeverLink:  func() { mgrPeer.Close() },
				DropRPC:    lf.DropFor,
				DelayRPC:   lf.DelayFor,
				FailKernel: func() { device.InjectKernelFault("ctr/") },
				WedgeTask:  wrk.WedgeFor,
			})
		}
	}

	if s.Server != nil {
		s.attachServeReporter(s.newBubbleSink())
		return nil
	}
	// The instrumented trainer reports bubbles to the manager over its own
	// RPC link (paper step ➎). The typed DTO crosses the MemPipe as-is —
	// the manager's handler receives it without any JSON round-trip.
	s.reporter = bubble.NewReporter(s.Profile, cfg.SafetyMargin)
	if cfg.Drift != nil {
		s.reporter.SetDrift(bubble.NewDrifter(cfg.Drift, cfg.Stages))
	}
	if cfg.Replan != nil {
		// Baseline each worker's drift estimator from the reporter's own
		// emission arithmetic, so a zero-drift epoch matches it to the bit.
		for i, w := range s.Workers {
			total, reports := s.reporter.StageBaseline(i)
			s.Manager.SetBubbleBaseline(w.Name(), total, reports)
		}
	}
	s.reporter.SetSink(s.newBubbleSink())
	s.reporter.Attach(s.Trainer)
	return nil
}

// newBubbleSink opens the workload→manager bubble-report link (its own
// MemPipe, like every control-plane link) and returns the emit function.
func (s *Session) newBubbleSink() func(bubble.Bubble) {
	pipeEnd, mgrEnd := freerpc.MemPipe(s.Eng, s.cfg.RPCLatency)
	pipePeer := freerpc.NewPeer(s.Eng, pipeEnd, nil)
	freerpc.NewPeer(s.Eng, mgrEnd, s.Manager.Mux())
	return func(b bubble.Bubble) {
		_ = pipePeer.Notify("Manager.AddBubble", core.ToBubbleDTO(b))
	}
}

// sloOptions derives the manager's SLO admission guard: serving sessions
// carry their configured guard factor, and the dormant-serving oracle arms
// the guard plumbing with a zero factor (a structural identity — every
// bubble the reconcile loop starts tasks into has strictly positive
// remaining time, which a zero guard always admits).
func sloOptions(cfg Config) *core.SLOOptions {
	if cfg.Serving != nil {
		return &core.SLOOptions{Guard: cfg.Serving.Guard}
	}
	if cfg.Oracle.ServingGuard {
		return &core.SLOOptions{Guard: 0}
	}
	return nil
}

// stageMemAvailable is the per-stage GPU memory the manager may hand to
// side tasks: the profiled training headroom, or the serving closed form.
func (s *Session) stageMemAvailable(i int) int64 {
	if s.cfg.Serving != nil {
		return s.cfg.LLM.ServeStageMemAvailable(model.ServerI.GPUMemBytes, s.cfg.MicroBatches)
	}
	return s.Profile.Stages[i].MemAvailable
}

// taskFactory resolves harnesses on the worker side: custom registrations
// first (matched by the profile name carried in the spec), then the six
// built-in tasks.
func (s *Session) taskFactory(spec core.TaskSpec) (*sidetask.Harness, error) {
	s.mu.Lock()
	build, ok := s.customTasks[spec.Profile.Name]
	s.mu.Unlock()
	if ok {
		impl := build(spec.Seed)
		h := sidetask.NewIterativeHarness(spec.Name, spec.Profile, impl, spec.Seed)
		if s.cfg.NoStepFuse {
			h.SetStepFuse(false)
		}
		return h, nil
	}
	h, err := core.BuiltinHarnessFactory(spec)
	if err == nil && s.cfg.NoStepFuse {
		h.SetStepFuse(false)
	}
	return h, err
}

// RegisterCustom registers a user-defined iterative side task under
// profile.Name. Subsequent Submit/SubmitEverywhere calls with that profile
// deploy the custom implementation instead of a built-in. The profile's
// performance characteristics should come from the automated profiler
// (internal/profiler) — the paper's step ➋.
func (s *Session) RegisterCustom(profile model.TaskProfile, build CustomTask) error {
	if profile.Name == "" {
		return fmt.Errorf("freeride: custom task needs a profile name")
	}
	if build == nil {
		return fmt.Errorf("freeride: custom task %q needs a constructor", profile.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.customTasks == nil {
		s.customTasks = make(map[string]CustomTask)
	}
	if _, dup := s.customTasks[profile.Name]; dup {
		return fmt.Errorf("freeride: custom task %q already registered", profile.Name)
	}
	s.customTasks[profile.Name] = build
	return nil
}

// EligibleStages lists the pipeline stages whose bubbles have enough GPU
// memory for the task, including the MemSlack headroom the manager's MPS
// limit carries — the same admission predicate Algorithm 1 applies, so a
// stage listed here is never rejected at Submit time.
func (s *Session) EligibleStages(p model.TaskProfile) []int {
	var out []int
	for stage := 0; stage < s.cfg.Stages; stage++ {
		var avail int64
		if s.cfg.Serving != nil {
			avail = s.cfg.LLM.ServeStageMemAvailable(model.ServerI.GPUMemBytes, s.cfg.MicroBatches)
		} else {
			avail = s.cfg.LLM.StageMemAvailableSched(model.ServerI.GPUMemBytes, s.cfg.Schedule,
				stage, s.cfg.Stages, s.cfg.MicroBatches, s.cfg.VirtualStages)
		}
		if core.AdmitsMem(avail, p.MemBytes, s.memSlack) {
			out = append(out, stage)
		}
	}
	return out
}

// Submit places one instance of the task. For the FreeRide methods it goes
// through the manager (Algorithm 1); for the baselines the instance is
// pinned to the requested stage.
func (s *Session) Submit(p model.TaskProfile, stage int) error {
	mode := sidetask.ModeIterative
	if s.cfg.Method == MethodImperative {
		mode = sidetask.ModeImperative
	}
	s.mu.Lock()
	s.nameSeq++
	name := fmt.Sprintf("%s-%d", p.Name, s.nameSeq)
	seed := s.cfg.Seed + int64(s.nameSeq)*7919
	s.mu.Unlock()

	switch s.cfg.Method {
	case MethodIterative, MethodImperative:
		spec := core.TaskSpec{
			Name:      name,
			Profile:   p,
			Mode:      mode,
			WorkScale: s.cfg.WorkScale,
			Seed:      seed,
		}
		placed, err := s.Manager.SubmitAndPlace(spec)
		if err != nil {
			return err
		}
		widx := -1
		if i, ok := s.workerIdx[placed]; ok {
			widx = i
		}
		s.mu.Lock()
		s.placements = append(s.placements, TaskPlacement{
			Name: name, Profile: p, Mode: mode, Worker: widx,
		})
		s.mu.Unlock()
		return nil
	case MethodMPS, MethodNaive:
		return s.submitBaseline(name, p, stage, seed)
	case MethodNone:
		return fmt.Errorf("freeride: MethodNone accepts no side tasks")
	default:
		return fmt.Errorf("freeride: unknown method %v", s.cfg.Method)
	}
}

// SubmitEverywhere places one instance of the task on every stage whose
// available memory fits it (the paper's "we run the same side task in all
// workers if they have enough GPU memory"). It reports how many instances
// were placed.
func (s *Session) SubmitEverywhere(p model.TaskProfile) (int, error) {
	stages := s.EligibleStages(p)
	for _, stage := range stages {
		if err := s.Submit(p, stage); err != nil {
			return 0, err
		}
	}
	return len(stages), nil
}

// submitBaseline deploys a continuously running side task on the stage's
// GPU, bubble-blind: this is the direct-MPS / naive co-location comparison
// point.
func (s *Session) submitBaseline(name string, p model.TaskProfile, stage int, seed int64) error {
	if stage < 0 || stage >= len(s.Devices) {
		return fmt.Errorf("freeride: stage %d out of range", stage)
	}
	h, err := s.taskFactory(core.TaskSpec{
		Name:      name,
		Profile:   p,
		Mode:      sidetask.ModeIterative,
		WorkScale: s.cfg.WorkScale,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	h.BindEngine(s.Eng)
	ctrs := container.NewRuntime(s.Procs)
	cspec := container.Spec{
		Name:   name,
		Device: s.Devices[stage],
		// Baselines impose no MPS memory limit (naive) / a permissive one.
	}
	if h.CanInline() {
		_, err = ctrs.RunInline(cspec, h.Start)
	} else {
		_, err = ctrs.Run(cspec, h.Run)
	}
	if err != nil {
		return err
	}
	// Script the lifecycle: init immediately, then run forever.
	s.Eng.Schedule(0, "baseline-init:"+name, func() {
		h.Deliver(sidetask.Command{Transition: sidetask.TransitionInit})
		h.Deliver(sidetask.Command{Transition: sidetask.TransitionStart, BubbleEnd: 1 << 62})
	})
	s.mu.Lock()
	s.placements = append(s.placements, TaskPlacement{
		Name: name, Profile: p, Mode: sidetask.ModeIterative, Worker: stage,
	})
	s.baselineHarnesses = append(s.baselineHarnesses, h)
	s.mu.Unlock()
	return nil
}

// TaskWork describes one task instance's completed work after a run.
type TaskWork struct {
	TaskPlacement
	Steps      uint64
	KernelTime time.Duration
	HostTime   time.Duration
	InsuffWait time.Duration
	// StepEvents counts the engine events the step loop dispatched for the
	// completed steps (see sidetask.Counters.StepEvents); the fused inline
	// loop halves it relative to the unfused two-event form.
	StepEvents uint64
	Exited     bool
	ExitErr    string
	// Parked means the task exhausted its recovery retry budget; Restarts
	// counts recovery attempts consumed (fault runs only).
	Parked   bool
	Restarts int
}

// Result is the outcome of Session.Run.
type Result struct {
	Config    Config
	TrainTime time.Duration
	Tasks     []TaskWork
	// Cost is filled by CostReport (needs the no-side-task baseline).
	Cost cost.Report
	// Manager/Worker stats (FreeRide methods only).
	ManagerStats core.ManagerStats
	WorkerStats  []core.WorkerStats
	// FaultStats counts injected fault events (fault runs only).
	FaultStats simfault.Stats
	// ServingStats carries the per-request latency distribution and SLO
	// accounting of a serving session (Config.Serving != nil); it is the
	// zero value for training sessions.
	ServingStats serve.Stats
}

// TotalSteps sums completed steps across task instances.
func (r *Result) TotalSteps() uint64 {
	var sum uint64
	for _, t := range r.Tasks {
		sum += t.Steps
	}
	return sum
}

// TotalStepEvents sums step-loop engine events across task instances (the
// numerator of the bench report's sidetask_events_per_step metric).
func (r *Result) TotalStepEvents() uint64 {
	var sum uint64
	for _, t := range r.Tasks {
		sum += t.StepEvents
	}
	return sum
}

// Run starts training (and the manager), drains the simulation until the
// last epoch finishes, and collects all measurements.
func (s *Session) Run() (*Result, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("freeride: session already ran")
	}
	s.started = true
	s.mu.Unlock()

	if s.Server != nil {
		return s.runServing()
	}

	// Freeze every task's counters at the instant the final epoch ends:
	// only work completed during training counts, exactly as in the
	// paper's measurement window.
	lastEpoch := s.cfg.Epochs - 1
	s.Trainer.OnEpochEnd(func(epoch int, ts time.Duration) {
		if epoch != lastEpoch {
			return
		}
		s.snapshotCounters()
	})

	if err := s.Trainer.Start(); err != nil {
		return nil, err
	}
	if s.Manager != nil {
		s.Manager.Start()
	}
	if s.injector != nil {
		s.injector.Start()
	}
	// Generous event budget: aborts runaway simulations loudly. The drain
	// stops at the exact event that sets Done — the per-event flag check is
	// one atomic load — so the teardown below (StopAll and its grace
	// window) always begins at the same virtual instant regardless of how
	// many bookkeeping events happen to be queued. Batch-draining here used
	// to overshoot Done by up to a batch, which made teardown timing (and
	// thus worker stop/kill counters) depend on incidental event counts.
	const maxEvents = 500_000_000
	const budgetCheckEvery = 4096
	done := s.Trainer.Done()
	for n := uint64(0); !done.IsSet(); n++ {
		if !s.Eng.Step() {
			return nil, fmt.Errorf("freeride: simulation stalled at t=%v", s.Eng.Now())
		}
		if n%budgetCheckEvery == 0 && s.Eng.Dispatched() > maxEvents {
			return nil, fmt.Errorf("freeride: event budget exceeded at t=%v", s.Eng.Now())
		}
	}
	if err := s.Trainer.Err(); err != nil {
		return nil, err
	}
	if s.Manager != nil {
		s.Manager.Stop()
		s.Manager.StopAll()
		s.Eng.RunFor(2 * s.cfg.Grace)
	}

	return s.collectResult(s.Trainer.TotalTime()), nil
}

// collectResult assembles the Result after teardown: manager/worker stats,
// fault stats and per-task work, shared by the training and serving paths.
func (s *Session) collectResult(trainTime time.Duration) *Result {
	res := &Result{Config: s.cfg, TrainTime: trainTime}
	var views map[string]core.TaskView
	if s.Manager != nil {
		res.ManagerStats = s.Manager.Stats()
		for _, w := range s.Workers {
			res.WorkerStats = append(res.WorkerStats, w.Stats())
		}
		views = make(map[string]core.TaskView)
		for _, tv := range s.Manager.Tasks() {
			views[tv.Spec.Name] = tv
		}
	}
	if s.injector != nil {
		res.FaultStats = s.injector.Stats()
	}
	s.mu.Lock()
	placements := append([]TaskPlacement{}, s.placements...)
	counters := s.finalCounters
	s.mu.Unlock()
	for _, pl := range placements {
		tw := TaskWork{TaskPlacement: pl}
		if c, ok := counters[pl.Name]; ok {
			tw.Steps = c.Steps
			tw.KernelTime = c.KernelTime
			tw.HostTime = c.HostTime
			tw.InsuffWait = c.InsuffWait
			tw.StepEvents = c.StepEvents
		}
		if tv, ok := views[pl.Name]; ok {
			tw.Exited = tv.Exited
			tw.ExitErr = tv.ExitErr
			tw.Parked = tv.Parked
			tw.Restarts = tv.Restarts
		}
		res.Tasks = append(res.Tasks, tw)
	}
	return res
}

// snapshotCounters freezes task counters (engine-callback context).
func (s *Session) snapshotCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finalCounters = make(map[string]sidetask.Counters, len(s.placements))
	for i, pl := range s.placements {
		var h *sidetask.Harness
		switch s.cfg.Method {
		case MethodIterative, MethodImperative:
			// Recovery may have moved the task off its original worker:
			// resolve the current host through the manager, falling back to
			// the placement-time worker.
			widx := pl.Worker
			if name, ok := s.Manager.TaskWorker(pl.Name); ok {
				if j, ok := s.workerIdx[name]; ok {
					widx = j
				}
			}
			if widx >= 0 {
				h, _ = s.Workers[widx].Harness(pl.Name)
			}
		default:
			if i < len(s.baselineHarnesses) {
				h = s.baselineHarnesses[i]
			}
		}
		if h != nil {
			s.finalCounters[pl.Name] = h.Counters()
		}
	}
}

// CostReport evaluates the paper's I and S metrics against a baseline
// training time measured with MethodNone.
func (r *Result) CostReport(tNoSideTask time.Duration) cost.Report {
	var work []cost.SideTaskWork
	for _, t := range r.Tasks {
		work = append(work, cost.SideTaskWork{
			Name:                t.Name,
			Steps:               t.Steps,
			DedicatedThroughput: t.Profile.ThroughputOn(model.ServerII),
		})
	}
	rep := cost.Compute(model.ServerI, model.ServerII, tNoSideTask, r.TrainTime, work)
	r.Cost = rep
	return rep
}

// --- memoized offline passes (profile, baseline) ---------------------------
//
// Both caches are singleflight-guarded: the parallel experiment runner fires
// many sessions that share a configuration, and exactly one of them should
// pay for the profiling (or baseline) run while the rest wait for its
// result.

// flightCache memoizes fn-per-key with duplicate-call suppression. Failed
// computations are not cached; the next caller retries.
type flightCache[K comparable, V any] struct {
	mu       sync.Mutex
	done     map[K]V
	inflight map[K]chan struct{}
}

func newFlightCache[K comparable, V any]() *flightCache[K, V] {
	return &flightCache[K, V]{done: map[K]V{}, inflight: map[K]chan struct{}{}}
}

func (c *flightCache[K, V]) get(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	for {
		if v, ok := c.done[key]; ok {
			c.mu.Unlock()
			return v, nil
		}
		ch, ok := c.inflight[key]
		if !ok {
			break
		}
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.inflight[key] = ch
	c.mu.Unlock()

	v, err := fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.done[key] = v
	}
	close(ch)
	c.mu.Unlock()
	return v, err
}

type profileKey struct {
	llm      string
	stages   int
	mbs      int
	schedule pipeline.ScheduleKind
	virtual  int
	legacy   bool
}

var profCache = newFlightCache[profileKey, *bubble.Profile]()

// offlineBubbleProfile runs a short RecordOps training on a private engine
// and extracts the per-stage bubble templates — the paper's one-time
// offline profiling pass (§4.3), memoized per configuration.
func offlineBubbleProfile(cfg Config) (*bubble.Profile, error) {
	key := profileKey{cfg.LLM.Name, cfg.Stages, cfg.MicroBatches, cfg.Schedule, cfg.VirtualStages, cfg.LegacySchedule}
	return profCache.get(key, func() (*bubble.Profile, error) {
		return runBubbleProfile(cfg)
	})
}

// runBubbleProfile is the uncached profiling pass.
func runBubbleProfile(cfg Config) (*bubble.Profile, error) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, cfg.Stages)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name:     fmt.Sprintf("prof-gpu%d", i),
			MemBytes: model.ServerI.GPUMemBytes,
		})
	}
	tr, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model:           cfg.LLM,
		Stages:          cfg.Stages,
		MicroBatches:    cfg.MicroBatches,
		Epochs:          2,
		Schedule:        cfg.Schedule,
		VirtualPerStage: cfg.VirtualStages,
		RecordOps:       true,
		LegacySchedule:  cfg.LegacySchedule,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.Start(); err != nil {
		return nil, err
	}
	eng.Drain(50_000_000)
	if !tr.Done().IsSet() {
		return nil, fmt.Errorf("freeride: profiling run did not finish")
	}
	if cfg.VirtualStages > 1 {
		// Interleaved chunks share a device, so op-gap analysis per chunk
		// cannot see the device's true idle time; profile from the
		// occupancy traces instead (the paper's actual mechanism).
		return bubble.ProfileFromTraces(tr, 1, 0)
	}
	return bubble.ProfileTrainer(tr, 1, 0)
}

// BaselineTrainTime runs (and memoizes, with singleflight) the no-side-task
// training for a config, returning T_noSideTask.
func BaselineTrainTime(cfg Config) (time.Duration, error) {
	if cfg.Serving != nil {
		return 0, fmt.Errorf("freeride: BaselineTrainTime is the training baseline; run a MethodNone serving session instead")
	}
	cfg.Method = MethodNone
	cfg.RecordOps = false
	// The key is built from the un-normalized config, so the deprecated
	// flat spelling and the grouped one must hash alike.
	legacy := cfg.LegacySchedule || cfg.Oracle.LegacySchedule
	key := baselineKey{cfg.LLM.Name, cfg.Stages, cfg.MicroBatches, cfg.Epochs, cfg.Schedule, cfg.VirtualStages, legacy, mbPlanKey(cfg)}
	return baseCache.get(key, func() (time.Duration, error) {
		sess, err := NewSession(cfg)
		if err != nil {
			return 0, err
		}
		res, err := sess.Run()
		if err != nil {
			return 0, err
		}
		return res.TrainTime, nil
	})
}

type baselineKey struct {
	llm      string
	stages   int
	mbs      int
	epochs   int
	schedule pipeline.ScheduleKind
	virtual  int
	legacy   bool
	mbplan   string
}

var baseCache = newFlightCache[baselineKey, time.Duration]()
