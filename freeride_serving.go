package freeride

import (
	"fmt"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/core"
	"freeride/internal/model"
	"freeride/internal/serve"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// newServingSession assembles the inference-serving workload: the seeded
// arrival trace, one device per stage, the forward-only batch-cycle server,
// and — for the FreeRide methods — the same manager/worker control plane
// the training sessions use, fed by the request-driven bubble reporter.
// cfg arrives normalized (NewSession branches here after normalize).
func newServingSession(cfg Config) (*Session, error) {
	sc := cfg.Serving
	arrivals, err := serve.GenerateArrivals(serve.ArrivalConfig{
		Kind:       sc.Trace,
		Rate:       sc.Rate,
		Burstiness: sc.Burstiness,
		Requests:   sc.Requests,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	tax := cfg.ResidencyTax
	if cfg.Method == MethodNone {
		tax = 0
	}
	devices := make([]*simgpu.Device, cfg.Stages)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name:          fmt.Sprintf("gpu%d", i),
			MemBytes:      model.ServerI.GPUMemBytes,
			Policy:        simgpu.PolicyMPS,
			ResidencyTax:  tax,
			NoTraces:      !cfg.RecordOps,
			FullRebalance: cfg.FullRebalance,
			NoShareCache:  cfg.NoShareCache,
		})
	}
	srv, err := serve.New(eng, procs, devices, serve.Config{
		Model:        cfg.LLM,
		Stages:       cfg.Stages,
		MicroBatches: cfg.MicroBatches,
		BatchSize:    sc.BatchSize,
		SLO:          sc.SLO,
		Arrivals:     arrivals,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:      cfg,
		Eng:      eng,
		Procs:    procs,
		Devices:  devices,
		Server:   srv,
		memSlack: core.DefaultMemSlack,
	}
	if cfg.Method == MethodIterative || cfg.Method == MethodImperative {
		if err := s.assembleControlPlane(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// attachServeReporter wires the request-driven bubble reporter between the
// server's batch hooks and the manager's AddBubble link: per-batch fill and
// drain bubbles from the serving closed forms, plus the causally predicted
// inter-batch gap (see bubble.ServeReporter).
func (s *Session) attachServeReporter(sink func(bubble.Bubble)) {
	m := s.cfg.LLM
	stages := s.cfg.Stages
	fill := make([]time.Duration, stages)
	drain := make([]time.Duration, stages)
	memAvail := make([]int64, stages)
	for i := 0; i < stages; i++ {
		fill[i] = m.ServeFillTime(i)
		drain[i] = m.ServeDrainTime(i, stages)
		memAvail[i] = s.stageMemAvailable(i)
	}
	rep := bubble.NewServeReporter(fill, drain,
		m.ServeBatchSpan(stages, s.cfg.MicroBatches), memAvail, s.cfg.SafetyMargin)
	rep.SetSink(sink)
	s.Server.OnBatchStart(func(_ int, ts time.Duration) { rep.BatchStart(ts) })
	s.Server.OnBatchEnd(func(_ int, ts time.Duration) { rep.BatchEnd(ts) })
}

// runServing drains the serving simulation until the last batch completes,
// freezing side-task counters at that instant (the serving measurement
// window) before the manager teardown — the serving analogue of Run.
func (s *Session) runServing() (*Result, error) {
	if err := s.Server.Start(); err != nil {
		return nil, err
	}
	if s.Manager != nil {
		s.Manager.Start()
	}
	const maxEvents = 500_000_000
	const budgetCheckEvery = 4096
	done := s.Server.Done()
	for n := uint64(0); !done.IsSet(); n++ {
		if !s.Eng.Step() {
			return nil, fmt.Errorf("freeride: serving simulation stalled at t=%v", s.Eng.Now())
		}
		if n%budgetCheckEvery == 0 && s.Eng.Dispatched() > maxEvents {
			return nil, fmt.Errorf("freeride: serving event budget exceeded at t=%v", s.Eng.Now())
		}
	}
	if err := s.Server.Err(); err != nil {
		return nil, err
	}
	// The drain loop stops at the exact event that set Done, so this
	// snapshot lands at the last batch's completion instant.
	s.snapshotCounters()
	if s.Manager != nil {
		s.Manager.Stop()
		s.Manager.StopAll()
		s.Eng.RunFor(2 * s.cfg.Grace)
	}
	res := s.collectResult(s.Server.TotalTime())
	res.ServingStats = s.Server.Stats()
	return res, nil
}
