package trace

import (
	"testing"
	"testing/quick"
	"time"
)

func iv(startMs, endMs int) Interval {
	return Interval{
		Start: time.Duration(startMs) * time.Millisecond,
		End:   time.Duration(endMs) * time.Millisecond,
	}
}

func TestIntervalDuration(t *testing.T) {
	if got := iv(100, 300).Duration(); got != 200*time.Millisecond {
		t.Fatalf("Duration = %v, want 200ms", got)
	}
	if got := iv(300, 100).Duration(); got != 0 {
		t.Fatalf("inverted Duration = %v, want 0", got)
	}
}

func TestIntervalContains(t *testing.T) {
	x := iv(100, 200)
	if !x.Contains(100 * time.Millisecond) {
		t.Fatal("start should be contained")
	}
	if x.Contains(200 * time.Millisecond) {
		t.Fatal("end should not be contained (half-open)")
	}
}

func TestIntervalOverlap(t *testing.T) {
	tests := []struct {
		a, b Interval
		want time.Duration
	}{
		{iv(0, 100), iv(50, 150), 50 * time.Millisecond},
		{iv(0, 100), iv(100, 200), 0},
		{iv(0, 100), iv(200, 300), 0},
		{iv(0, 300), iv(100, 200), 100 * time.Millisecond},
	}
	for _, tc := range tests {
		if got := tc.a.Overlap(tc.b); got != tc.want {
			t.Errorf("Overlap(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlap(tc.a); got != tc.want {
			t.Errorf("Overlap symmetric (%v,%v) = %v, want %v", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestNormalizeMergesOverlaps(t *testing.T) {
	s := IntervalSet{iv(100, 200), iv(150, 300), iv(400, 500), iv(300, 400)}
	got := s.Normalize()
	want := IntervalSet{iv(100, 500)}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

func TestNormalizeDropsEmpty(t *testing.T) {
	s := IntervalSet{iv(100, 100), iv(300, 200)}
	if got := s.Normalize(); len(got) != 0 {
		t.Fatalf("Normalize = %v, want empty", got)
	}
}

func TestComplement(t *testing.T) {
	s := IntervalSet{iv(100, 200), iv(300, 400)}
	got := s.Complement(0, 500*time.Millisecond)
	want := IntervalSet{iv(0, 100), iv(200, 300), iv(400, 500)}
	if len(got) != len(want) {
		t.Fatalf("Complement = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Complement[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComplementFullCoverage(t *testing.T) {
	s := IntervalSet{iv(0, 500)}
	if got := s.Complement(0, 500*time.Millisecond); len(got) != 0 {
		t.Fatalf("Complement of full coverage = %v, want empty", got)
	}
}

func TestClip(t *testing.T) {
	s := IntervalSet{iv(0, 100), iv(150, 350), iv(400, 600)}
	got := s.Clip(50*time.Millisecond, 450*time.Millisecond)
	want := IntervalSet{iv(50, 100), iv(150, 350), iv(400, 450)}
	if len(got) != len(want) {
		t.Fatalf("Clip = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Clip[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLongest(t *testing.T) {
	s := IntervalSet{iv(0, 50), iv(100, 400), iv(500, 600)}
	if got := s.Longest(); got != iv(100, 400) {
		t.Fatalf("Longest = %v, want [100,400)", got)
	}
}

// Property: set total + complement total = window length, for normalized
// sets clipped to the window.
func TestComplementConservation(t *testing.T) {
	f := func(bounds []uint16) bool {
		var s IntervalSet
		for i := 0; i+1 < len(bounds); i += 2 {
			a := time.Duration(bounds[i]) * time.Millisecond
			b := time.Duration(bounds[i+1]) * time.Millisecond
			if b < a {
				a, b = b, a
			}
			s = append(s, Interval{Start: a, End: b})
		}
		window := 70 * time.Second
		norm := s.Normalize().Clip(0, window)
		comp := norm.Complement(0, window)
		return norm.Total()+comp.Total() == window
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{1, 2, 3, 4, 5})
	if sum.N != 5 || sum.Mean != 3 || sum.Min != 1 || sum.Max != 5 || sum.P50 != 3 {
		t.Fatalf("Summarize = %+v", sum)
	}
	if sum.StdDev < 1.41 || sum.StdDev > 1.42 {
		t.Fatalf("StdDev = %v, want ~1.414", sum.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("Summarize(nil).N = %d, want 0", got.N)
	}
}

func TestSummarizeDurations(t *testing.T) {
	sum := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if sum.Mean != 2.0 {
		t.Fatalf("Mean = %v, want 2.0", sum.Mean)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sum := Summarize([]float64{0, 10})
	if sum.P50 != 5 {
		t.Fatalf("P50 = %v, want 5 (interpolated)", sum.P50)
	}
	if sum.P90 != 9 {
		t.Fatalf("P90 = %v, want 9", sum.P90)
	}
}
