package trace

import (
	"sort"
	"time"
)

// Interval is a half-open time range [Start, End).
type Interval struct {
	Start time.Duration
	End   time.Duration
}

// Duration reports End-Start (zero for inverted intervals).
func (iv Interval) Duration() time.Duration {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t time.Duration) bool {
	return t >= iv.Start && t < iv.End
}

// Overlap returns the overlapping duration of two intervals.
func (iv Interval) Overlap(other Interval) time.Duration {
	start := iv.Start
	if other.Start > start {
		start = other.Start
	}
	end := iv.End
	if other.End < end {
		end = other.End
	}
	if end <= start {
		return 0
	}
	return end - start
}

// IntervalSet is an ordered list of intervals, typically non-overlapping.
type IntervalSet []Interval

// Total reports the summed duration of all intervals.
func (s IntervalSet) Total() time.Duration {
	var sum time.Duration
	for _, iv := range s {
		sum += iv.Duration()
	}
	return sum
}

// Normalize sorts the set and merges overlapping or touching intervals.
func (s IntervalSet) Normalize() IntervalSet {
	if len(s) == 0 {
		return nil
	}
	sorted := make(IntervalSet, 0, len(s))
	for _, iv := range s {
		if iv.Duration() > 0 {
			sorted = append(sorted, iv)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var out IntervalSet
	for _, iv := range sorted {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Complement returns the gaps of s within the window [t0, t1). The receiver
// must be normalized.
func (s IntervalSet) Complement(t0, t1 time.Duration) IntervalSet {
	var out IntervalSet
	cur := t0
	for _, iv := range s {
		if iv.End <= t0 {
			continue
		}
		if iv.Start >= t1 {
			break
		}
		start := iv.Start
		if start > cur {
			out = append(out, Interval{Start: cur, End: start})
		}
		if iv.End > cur {
			cur = iv.End
		}
	}
	if cur < t1 {
		out = append(out, Interval{Start: cur, End: t1})
	}
	return out
}

// Clip restricts all intervals to the window [t0, t1).
func (s IntervalSet) Clip(t0, t1 time.Duration) IntervalSet {
	var out IntervalSet
	for _, iv := range s {
		start, end := iv.Start, iv.End
		if start < t0 {
			start = t0
		}
		if end > t1 {
			end = t1
		}
		if end > start {
			out = append(out, Interval{Start: start, End: end})
		}
	}
	return out
}

// Longest returns the longest interval in the set (zero Interval if empty).
func (s IntervalSet) Longest() Interval {
	var best Interval
	for _, iv := range s {
		if iv.Duration() > best.Duration() {
			best = iv
		}
	}
	return best
}
