// Package trace records time-evolving quantities of the simulation — GPU SM
// occupancy, memory consumption, pipeline op activity — as step-function time
// series, and provides the interval algebra and summary statistics the
// bubble profiler and the figure harnesses are built on.
//
// It plays the role the PyTorch profiler plays in the paper (§4.3): the
// source of SM-occupancy and memory curves from which bubbles are measured
// and from which Figures 1 and 8 are drawn.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one step of a step-function series: the series holds value V from
// time T (inclusive) until the next point's T.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only step-function time series. The zero value is an
// empty series whose value is 0 everywhere.
type Series struct {
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{name: name}
}

// Name reports the series label.
func (s *Series) Name() string { return s.name }

// Len reports the number of recorded points.
func (s *Series) Len() int { return len(s.points) }

// Add appends a (t, v) step. Appends must be in nondecreasing time order; a
// point at the same instant as the previous one overwrites it (last writer
// wins, matching "the value at t"). Consecutive equal values are coalesced.
func (s *Series) Add(t time.Duration, v float64) {
	n := len(s.points)
	if n > 0 {
		last := s.points[n-1]
		if t < last.T {
			panic(fmt.Sprintf("trace: series %q: Add(%v) before last point %v", s.name, t, last.T))
		}
		if t == last.T {
			s.points[n-1].V = v
			s.coalesceTail()
			return
		}
		if last.V == v {
			return // step to the same value: no information
		}
	}
	s.points = append(s.points, Point{T: t, V: v})
}

func (s *Series) coalesceTail() {
	n := len(s.points)
	if n >= 2 && s.points[n-1].V == s.points[n-2].V {
		s.points = s.points[:n-1]
	}
}

// At reports the series value at time t (0 before the first point).
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// Points returns a copy of the underlying points.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Integrate returns the integral of the series over [t0, t1) in value·seconds.
func (s *Series) Integrate(t0, t1 time.Duration) float64 {
	if t1 <= t0 || len(s.points) == 0 {
		return 0
	}
	var sum float64
	// Walk segments overlapping [t0, t1).
	for i := range s.points {
		segStart := s.points[i].T
		segEnd := t1
		if i+1 < len(s.points) {
			segEnd = s.points[i+1].T
		}
		if segEnd <= t0 || segStart >= t1 {
			continue
		}
		if segStart < t0 {
			segStart = t0
		}
		if segEnd > t1 {
			segEnd = t1
		}
		sum += s.points[i].V * segEnd.Seconds()
		sum -= s.points[i].V * segStart.Seconds()
	}
	return sum
}

// Mean returns the time-weighted mean over [t0, t1).
func (s *Series) Mean(t0, t1 time.Duration) float64 {
	if t1 <= t0 {
		return 0
	}
	return s.Integrate(t0, t1) / (t1 - t0).Seconds()
}

// Max returns the maximum value attained in [t0, t1), or 0 for an empty
// window. The value in force at t0 (set before t0) counts.
func (s *Series) Max(t0, t1 time.Duration) float64 {
	if t1 <= t0 {
		return 0
	}
	maxV := math.Inf(-1)
	seen := false
	if v := s.At(t0); true {
		maxV = v
		seen = true
	}
	for _, p := range s.points {
		if p.T >= t1 {
			break
		}
		if p.T >= t0 && p.V > maxV {
			maxV = p.V
			seen = true
		}
	}
	if !seen {
		return 0
	}
	return maxV
}

// Below returns the intervals within [t0, t1) where the series value is
// strictly below threshold. This is how bubbles are recovered from an
// SM-occupancy trace.
func (s *Series) Below(threshold float64, t0, t1 time.Duration) IntervalSet {
	var out IntervalSet
	cur := t0
	curV := s.At(t0)
	open := time.Duration(-1)
	if curV < threshold {
		open = cur
	}
	for _, p := range s.points {
		if p.T <= t0 {
			continue
		}
		if p.T >= t1 {
			break
		}
		below := p.V < threshold
		if below && open < 0 {
			open = p.T
		}
		if !below && open >= 0 {
			out = append(out, Interval{Start: open, End: p.T})
			open = -1
		}
	}
	if open >= 0 && t1 > open {
		out = append(out, Interval{Start: open, End: t1})
	}
	return out
}

// String renders a short, human-readable summary of the series.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series %q (%d pts)", s.name, len(s.points))
	if len(s.points) > 0 {
		fmt.Fprintf(&b, " [%v .. %v]", s.points[0].T, s.points[len(s.points)-1].T)
	}
	return b.String()
}
