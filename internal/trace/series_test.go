package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAtEmptyIsZero(t *testing.T) {
	s := NewSeries("empty")
	if got := s.At(5 * time.Second); got != 0 {
		t.Fatalf("At on empty = %v, want 0", got)
	}
}

func TestSeriesStepSemantics(t *testing.T) {
	s := NewSeries("occ")
	s.Add(1*time.Second, 1.0)
	s.Add(3*time.Second, 0.0)
	s.Add(5*time.Second, 0.5)
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},
		{999 * time.Millisecond, 0},
		{1 * time.Second, 1.0},
		{2 * time.Second, 1.0},
		{3 * time.Second, 0.0},
		{4 * time.Second, 0.0},
		{5 * time.Second, 0.5},
		{100 * time.Second, 0.5},
	}
	for _, tc := range tests {
		if got := s.At(tc.at); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestSeriesSameInstantOverwrites(t *testing.T) {
	s := NewSeries("x")
	s.Add(time.Second, 1.0)
	s.Add(time.Second, 2.0)
	if got := s.At(time.Second); got != 2.0 {
		t.Fatalf("At(1s) = %v, want 2 (last write wins)", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSeriesCoalescesEqualValues(t *testing.T) {
	s := NewSeries("x")
	s.Add(1*time.Second, 1.0)
	s.Add(2*time.Second, 1.0)
	s.Add(3*time.Second, 1.0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (equal steps coalesced)", s.Len())
	}
}

func TestSeriesAddBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards Add")
		}
	}()
	s := NewSeries("x")
	s.Add(2*time.Second, 1)
	s.Add(1*time.Second, 2)
}

func TestSeriesIntegrate(t *testing.T) {
	s := NewSeries("occ")
	s.Add(0, 1.0)
	s.Add(2*time.Second, 0.5)
	s.Add(4*time.Second, 0.0)
	// integral over [0,4) = 1*2 + 0.5*2 = 3
	if got := s.Integrate(0, 4*time.Second); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("Integrate(0,4s) = %v, want 3", got)
	}
	// integral over [1,3) = 1*1 + 0.5*1 = 1.5
	if got := s.Integrate(1*time.Second, 3*time.Second); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Integrate(1s,3s) = %v, want 1.5", got)
	}
	// past the last point the final value holds
	if got := s.Integrate(4*time.Second, 8*time.Second); got != 0 {
		t.Fatalf("Integrate(4s,8s) = %v, want 0", got)
	}
}

func TestSeriesMean(t *testing.T) {
	s := NewSeries("m")
	s.Add(0, 2.0)
	s.Add(1*time.Second, 4.0)
	if got := s.Mean(0, 2*time.Second); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("Mean = %v, want 3", got)
	}
}

func TestSeriesMax(t *testing.T) {
	s := NewSeries("m")
	s.Add(0, 1.0)
	s.Add(1*time.Second, 5.0)
	s.Add(2*time.Second, 2.0)
	if got := s.Max(0, 3*time.Second); got != 5.0 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := s.Max(2*time.Second, 3*time.Second); got != 2.0 {
		t.Fatalf("Max tail = %v, want 2", got)
	}
}

func TestSeriesBelowFindsGaps(t *testing.T) {
	// Occupancy: busy(1.0) 0-2s, idle 2-3s, busy 3-5s, idle 5-6s.
	s := NewSeries("occ")
	s.Add(0, 1.0)
	s.Add(2*time.Second, 0.0)
	s.Add(3*time.Second, 1.0)
	s.Add(5*time.Second, 0.0)
	gaps := s.Below(0.5, 0, 6*time.Second)
	want := IntervalSet{
		{Start: 2 * time.Second, End: 3 * time.Second},
		{Start: 5 * time.Second, End: 6 * time.Second},
	}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gap[%d] = %v, want %v", i, gaps[i], want[i])
		}
	}
}

func TestSeriesBelowStartsIdle(t *testing.T) {
	s := NewSeries("occ")
	s.Add(2*time.Second, 1.0)
	gaps := s.Below(0.5, 0, 4*time.Second)
	if len(gaps) != 1 || gaps[0] != (Interval{Start: 0, End: 2 * time.Second}) {
		t.Fatalf("gaps = %v, want [0,2s)", gaps)
	}
}

// Property: for any series built from nonnegative steps, the integral over
// a window equals the sum over subwindows (additivity).
func TestSeriesIntegralAdditivity(t *testing.T) {
	f := func(stepsMs []uint8, vals []uint8) bool {
		s := NewSeries("p")
		tcur := time.Duration(0)
		n := len(stepsMs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			tcur += time.Duration(stepsMs[i]+1) * time.Millisecond
			s.Add(tcur, float64(vals[i]%8))
		}
		end := tcur + time.Second
		whole := s.Integrate(0, end)
		mid := end / 3
		parts := s.Integrate(0, mid) + s.Integrate(mid, end)
		return math.Abs(whole-parts) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Below(threshold) intervals plus their complement tile the window.
func TestSeriesBelowComplementTiles(t *testing.T) {
	f := func(stepsMs []uint8, vals []uint8) bool {
		s := NewSeries("p")
		tcur := time.Duration(0)
		n := len(stepsMs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			tcur += time.Duration(stepsMs[i]+1) * time.Millisecond
			s.Add(tcur, float64(vals[i]%2))
		}
		end := tcur + 10*time.Millisecond
		below := s.Below(0.5, 0, end)
		comp := below.Normalize().Complement(0, end)
		return below.Total()+comp.Total() == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
