package trace

import (
	"math"
	"sort"
	"time"
)

// Summary holds order statistics of a sample of durations or scalars.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	StdDev float64
}

// Summarize computes summary statistics of a float sample.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    quantile(sorted, 0.50),
		P90:    quantile(sorted, 0.90),
		P99:    quantile(sorted, 0.99),
		StdDev: math.Sqrt(variance),
	}
}

// SummarizeDurations computes summary statistics of a duration sample, in
// seconds.
func SummarizeDurations(sample []time.Duration) Summary {
	fs := make([]float64, len(sample))
	for i, d := range sample {
		fs[i] = d.Seconds()
	}
	return Summarize(fs)
}

// quantile returns the q-quantile of an ascending-sorted sample using linear
// interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
