// Package cost implements the paper's evaluation metrics (§6.1.5): the
// time increase I of pipeline training caused by co-located side tasks, and
// the dollar cost savings S of harvesting bubbles instead of renting
// dedicated lower-tier GPUs for the same side-task work.
package cost

import (
	"fmt"
	"time"

	"freeride/internal/model"
)

// TimeIncrease is I = (T_with − T_no) / T_no.
func TimeIncrease(tNo, tWith time.Duration) float64 {
	if tNo <= 0 {
		return 0
	}
	return float64(tWith-tNo) / float64(tNo)
}

// DollarCost is price/hour × duration.
func DollarCost(pricePerHour float64, d time.Duration) float64 {
	return pricePerHour * d.Hours()
}

// SideTaskWork is the work one side task completed while co-located, plus
// the throughput of the same task on the dedicated comparison platform.
type SideTaskWork struct {
	// Name identifies the task (for reports).
	Name string
	// Steps completed on Server-I during the co-located run
	// (W_sideTask,Server-I in the paper's formula).
	Steps uint64
	// DedicatedThroughput is steps/second of the same task running alone
	// on the dedicated platform (Th_sideTask,Server-II). Zero means the
	// task cannot run there (OOM) and its replacement cost is undefined.
	DedicatedThroughput float64
}

// DedicatedTime is how long the dedicated platform would need for the same
// work: W / Th.
func (w SideTaskWork) DedicatedTime() (time.Duration, error) {
	if w.DedicatedThroughput <= 0 {
		return 0, fmt.Errorf("cost: task %s has no dedicated-platform throughput (OOM?)", w.Name)
	}
	secs := float64(w.Steps) / w.DedicatedThroughput
	return time.Duration(secs * float64(time.Second)), nil
}

// Report is the full cost accounting of one co-located run.
type Report struct {
	TNo   time.Duration // training time without side tasks
	TWith time.Duration // training time with side tasks

	// I is the time increase (overhead).
	I float64
	// CNo / CWith are the training costs without/with side tasks.
	CNo, CWith float64
	// CSideTasks is the replacement cost of the side-task work on the
	// dedicated platform.
	CSideTasks float64
	// S is the cost savings.
	S float64
	// SkippedTasks lists tasks excluded from CSideTasks because the
	// dedicated platform cannot run them (paper's "OOM" cells).
	SkippedTasks []string
}

// Compute evaluates the paper's formulas:
//
//	I = (T_with − T_no) / T_no
//	C_sideTasks = Σ P_II × W_task / Th_task,II
//	S = (C_sideTasks − (C_with − C_no)) / C_no
func Compute(trainPlatform, dedicatedPlatform model.Platform, tNo, tWith time.Duration, work []SideTaskWork) Report {
	r := Report{
		TNo:   tNo,
		TWith: tWith,
		I:     TimeIncrease(tNo, tWith),
		CNo:   DollarCost(trainPlatform.PricePerHour, tNo),
		CWith: DollarCost(trainPlatform.PricePerHour, tWith),
	}
	for _, w := range work {
		d, err := w.DedicatedTime()
		if err != nil {
			r.SkippedTasks = append(r.SkippedTasks, w.Name)
			continue
		}
		r.CSideTasks += DollarCost(dedicatedPlatform.PricePerHour, d)
	}
	if r.CNo > 0 {
		r.S = (r.CSideTasks - (r.CWith - r.CNo)) / r.CNo
	}
	return r
}
