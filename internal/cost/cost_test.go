package cost

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"freeride/internal/model"
)

func TestTimeIncrease(t *testing.T) {
	if got := TimeIncrease(100*time.Second, 101*time.Second); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("I = %v, want 0.01", got)
	}
	if got := TimeIncrease(0, time.Second); got != 0 {
		t.Fatalf("I with zero baseline = %v, want 0", got)
	}
	if got := TimeIncrease(100*time.Second, 99*time.Second); got >= 0 {
		t.Fatalf("negative overhead not preserved: %v", got)
	}
}

func TestDollarCost(t *testing.T) {
	if got := DollarCost(3.96, time.Hour); math.Abs(got-3.96) > 1e-12 {
		t.Fatalf("cost = %v, want 3.96", got)
	}
	if got := DollarCost(3.96, 30*time.Minute); math.Abs(got-1.98) > 1e-12 {
		t.Fatalf("half-hour cost = %v, want 1.98", got)
	}
}

func TestComputePaperBallpark(t *testing.T) {
	// A FreeRide-like run: 563 s baseline, +0.9% overhead, ResNet18-style
	// work harvested. The savings must land in the paper's single-digit
	// percent band.
	tNo := 563 * time.Second
	tWith := time.Duration(float64(tNo) * 1.009)
	work := []SideTaskWork{{
		Name:  "resnet18",
		Steps: 28000,
		// Dedicated Server-II throughput ≈ 16.4 steps/s.
		DedicatedThroughput: 16.4,
	}}
	r := Compute(model.ServerI, model.ServerII, tNo, tWith, work)
	if r.I < 0.008 || r.I > 0.010 {
		t.Fatalf("I = %v, want ~0.009", r.I)
	}
	if r.S < 0.03 || r.S > 0.20 {
		t.Fatalf("S = %v, want single-digit-%% savings band", r.S)
	}
	if len(r.SkippedTasks) != 0 {
		t.Fatalf("SkippedTasks = %v", r.SkippedTasks)
	}
}

func TestComputeSkipsOOMTasks(t *testing.T) {
	r := Compute(model.ServerI, model.ServerII, time.Hour, time.Hour,
		[]SideTaskWork{{Name: "vgg19-b128", Steps: 100, DedicatedThroughput: 0}})
	if len(r.SkippedTasks) != 1 || r.SkippedTasks[0] != "vgg19-b128" {
		t.Fatalf("SkippedTasks = %v", r.SkippedTasks)
	}
	if r.CSideTasks != 0 {
		t.Fatalf("CSideTasks = %v, want 0", r.CSideTasks)
	}
}

func TestComputeNegativeSavingsForHighOverhead(t *testing.T) {
	// MPS-baseline-like: 48% overhead dwarfs the side-task value.
	tNo := 563 * time.Second
	tWith := time.Duration(float64(tNo) * 1.487)
	work := []SideTaskWork{{Name: "resnet18", Steps: 40000, DedicatedThroughput: 16.4}}
	r := Compute(model.ServerI, model.ServerII, tNo, tWith, work)
	if r.S >= 0 {
		t.Fatalf("S = %v, want negative (cost increase)", r.S)
	}
}

// Property: S increases with completed work and decreases with overhead.
func TestSavingsMonotonicity(t *testing.T) {
	f := func(stepsRaw uint16, overheadRaw uint8) bool {
		steps := uint64(stepsRaw) + 1
		overhead := 1 + float64(overheadRaw%50)/100
		tNo := 500 * time.Second
		tWith := time.Duration(float64(tNo) * overhead)
		base := Compute(model.ServerI, model.ServerII, tNo, tWith,
			[]SideTaskWork{{Name: "x", Steps: steps, DedicatedThroughput: 10}})
		moreWork := Compute(model.ServerI, model.ServerII, tNo, tWith,
			[]SideTaskWork{{Name: "x", Steps: steps * 2, DedicatedThroughput: 10}})
		moreOverhead := Compute(model.ServerI, model.ServerII, tNo,
			tWith+10*time.Second,
			[]SideTaskWork{{Name: "x", Steps: steps, DedicatedThroughput: 10}})
		return moreWork.S > base.S && moreOverhead.S < base.S
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDedicatedTime(t *testing.T) {
	w := SideTaskWork{Name: "x", Steps: 100, DedicatedThroughput: 10}
	d, err := w.DedicatedTime()
	if err != nil || d != 10*time.Second {
		t.Fatalf("DedicatedTime = %v/%v, want 10s", d, err)
	}
	if _, err := (SideTaskWork{Name: "y"}).DedicatedTime(); err == nil {
		t.Fatal("zero throughput accepted")
	}
}
