package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"freeride/internal/model"
	"freeride/internal/pipeline"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Config describes one pipeline-parallel serving run.
type Config struct {
	Model        model.LLM
	Stages       int
	MicroBatches int
	// BatchSize is the number of requests per pipeline batch. A batch
	// dispatches once its last request has arrived and the previous batch
	// has fully drained; the final batch may be partial but still runs the
	// full micro-batch schedule (padding).
	BatchSize int
	// SLO is the per-request latency objective scored by Stats.
	SLO time.Duration
	// Arrivals are the request arrival offsets (see GenerateArrivals).
	Arrivals []time.Duration
}

func (c *Config) normalize() error {
	if c.Stages < 1 {
		return fmt.Errorf("serve: stages %d < 1", c.Stages)
	}
	if c.MicroBatches < 1 {
		return fmt.Errorf("serve: micro-batches %d < 1", c.MicroBatches)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("serve: batch size %d < 1", c.BatchSize)
	}
	if len(c.Arrivals) == 0 {
		return fmt.Errorf("serve: empty arrival trace")
	}
	if c.SLO <= 0 {
		return fmt.Errorf("serve: non-positive SLO %v", c.SLO)
	}
	for i := 1; i < len(c.Arrivals); i++ {
		if c.Arrivals[i] < c.Arrivals[i-1] {
			return fmt.Errorf("serve: arrivals not sorted at index %d", i)
		}
	}
	return nil
}

// numBatches is the trace's batch count (the last batch may be partial).
func (c Config) numBatches() int {
	return (len(c.Arrivals) + c.BatchSize - 1) / c.BatchSize
}

// Stats is the per-request latency distribution and SLO accounting of a
// completed run. All fields are plain values, so results stay comparable
// with reflect.DeepEqual (the determinism and oracle tests rely on it).
type Stats struct {
	Requests int
	Batches  int
	P50      time.Duration
	P99      time.Duration
	Max      time.Duration
	Mean     time.Duration
	// Violations counts requests whose latency exceeded SLO.
	Violations int
	SLO        time.Duration
	// TotalTime is the serving makespan: first batch dispatch to last
	// batch completion.
	TotalTime time.Duration
}

// Server drives the forward-only batch cycle over one device per stage. It
// mirrors the trainer's execution machinery — pre-allocated dependency
// latches, inline stage processes running continuation machines on the
// engine goroutine — with the epoch loop replaced by an arrival-gated batch
// loop.
type Server struct {
	cfg     Config
	eng     simtime.Engine
	procs   *simproc.Runtime
	devices []*simgpu.Device

	// Immutable after Start:
	clients []*simgpu.Client
	plan    *pipeline.Plan
	goBatch []*simproc.Latch
	fpDone  [][][]*simproc.Latch // [batch][stage][mb]
	// readyAt[b] is when batch b's last request has arrived — the earliest
	// the batch may dispatch.
	readyAt []time.Duration

	mu           sync.Mutex
	arrived      int
	batchStart   []time.Duration
	batchEnd     []time.Duration
	latencies    []time.Duration
	onBatchStart []func(batch int, ts time.Duration)
	onBatchEnd   []func(batch int, ts time.Duration)
	started      bool
	failed       error

	done *simproc.Latch
}

// New builds a server over one device per stage.
func New(eng simtime.Engine, procs *simproc.Runtime, devices []*simgpu.Device, cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(devices) != cfg.Stages {
		return nil, fmt.Errorf("serve: %d devices for %d stages", len(devices), cfg.Stages)
	}
	return &Server{
		cfg:     cfg,
		eng:     eng,
		procs:   procs,
		devices: devices,
		done:    simproc.NewLatch(eng),
	}, nil
}

// OnBatchStart registers a hook invoked (in engine context) when each batch
// dispatches — the serving analogue of the trainer's epoch-start
// instrumentation point; the request-driven bubble reporter hangs off it.
func (s *Server) OnBatchStart(fn func(batch int, ts time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onBatchStart = append(s.onBatchStart, fn)
}

// OnBatchEnd registers a hook invoked when each batch fully drains.
func (s *Server) OnBatchEnd(fn func(batch int, ts time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onBatchEnd = append(s.onBatchEnd, fn)
}

// Done returns a latch set when the last batch has drained.
func (s *Server) Done() *simproc.Latch { return s.done }

// Config returns the serving configuration.
func (s *Server) Config() Config { return s.cfg }

// Client returns the serving GPU client of a stage (valid after Start).
func (s *Server) Client(stage int) *simgpu.Client { return s.clients[stage] }

// Device returns the GPU device of a stage.
func (s *Server) Device(stage int) *simgpu.Device { return s.devices[stage] }

// Err reports a serving failure (e.g. OOM during setup).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// BatchTimes returns per-batch (dispatch, drain) pairs recorded so far.
func (s *Server) BatchTimes() (starts, ends []time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	starts = append([]time.Duration(nil), s.batchStart...)
	ends = append([]time.Duration(nil), s.batchEnd...)
	return starts, ends
}

// TotalTime reports the makespan from first dispatch to last drain.
func (s *Server) TotalTime() time.Duration {
	starts, ends := s.BatchTimes()
	if len(starts) == 0 || len(ends) == 0 {
		return 0
	}
	return ends[len(ends)-1] - starts[0]
}

// Stats computes the latency distribution of the completed run.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	lat := append([]time.Duration(nil), s.latencies...)
	batches := len(s.batchEnd)
	s.mu.Unlock()
	st := Stats{
		Requests: len(lat),
		Batches:  batches,
		SLO:      s.cfg.SLO,
	}
	if len(lat) == 0 {
		return st
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, l := range lat {
		sum += l
		if l > s.cfg.SLO {
			st.Violations++
		}
	}
	st.P50 = quantile(lat, 0.50)
	st.P99 = quantile(lat, 0.99)
	st.Max = lat[len(lat)-1]
	st.Mean = sum / time.Duration(len(lat))
	st.TotalTime = s.TotalTime()
	return st
}

// quantile picks the nearest-rank order statistic from a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Start allocates serving memory on every stage, spawns the stage
// processes and schedules the first batch at its arrival-readiness
// instant. It returns immediately; completion is observable via Done.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("serve: already started")
	}
	s.started = true
	s.mu.Unlock()

	clients := make([]*simgpu.Client, s.cfg.Stages)
	for st := 0; st < s.cfg.Stages; st++ {
		// Weight 2, like the trainer: the serving process drives multiple
		// CUDA streams and exerts twice a single-stream side task's
		// thread-block pressure when sharing the device.
		c, err := s.devices[st].NewClient(simgpu.ClientConfig{
			Name:   fmt.Sprintf("serve-s%d", st),
			Weight: 2,
		})
		if err != nil {
			return fmt.Errorf("serve: stage %d client: %w", st, err)
		}
		if err := c.AllocMem(s.cfg.Model.ServeStageMemUsed(s.cfg.MicroBatches)); err != nil {
			return fmt.Errorf("serve: stage %d memory: %w", st, err)
		}
		clients[st] = c
	}
	s.clients = clients

	plan, err := pipeline.BuildServingPlan(s.cfg.Stages, s.cfg.MicroBatches)
	if err != nil {
		return err
	}
	s.plan = plan

	nb := s.cfg.numBatches()
	s.readyAt = make([]time.Duration, nb)
	for b := 0; b < nb; b++ {
		last := (b+1)*s.cfg.BatchSize - 1
		if last >= len(s.cfg.Arrivals) {
			last = len(s.cfg.Arrivals) - 1
		}
		s.readyAt[b] = s.cfg.Arrivals[last]
	}
	s.goBatch = make([]*simproc.Latch, nb)
	s.fpDone = make([][][]*simproc.Latch, nb)
	for b := 0; b < nb; b++ {
		s.goBatch[b] = simproc.NewLatch(s.eng)
		s.fpDone[b] = newLatchGrid(s.eng, s.cfg.Stages, s.cfg.MicroBatches)
	}

	for st := 0; st < s.cfg.Stages; st++ {
		st := st
		s.procs.SpawnInline(fmt.Sprintf("serve-s%d", st), func(p *simproc.Process) {
			s.startStage(p, st)
		})
	}
	s.scheduleBatch(0)
	return nil
}

// scheduleBatch dispatches batch b now if its last request has arrived, or
// arms an engine timer for the arrival instant (the open-loop gate: the
// pipeline idles — harvestably — until the batch fills).
func (s *Server) scheduleBatch(b int) {
	now := s.eng.Now()
	if s.readyAt[b] <= now {
		s.beginBatch(b)
		return
	}
	s.eng.Schedule(s.readyAt[b]-now, fmt.Sprintf("serve-batch%d", b), func() {
		s.beginBatch(b)
	})
}

// beginBatch records the dispatch, fires the instrumentation hooks and
// releases the stages. Runs in engine-callback or caller context.
func (s *Server) beginBatch(b int) {
	now := s.eng.Now()
	s.mu.Lock()
	s.arrived = 0
	s.batchStart = append(s.batchStart, now)
	hooks := append([]func(batch int, ts time.Duration){}, s.onBatchStart...)
	s.mu.Unlock()
	for _, h := range hooks {
		h(b, now)
	}
	s.goBatch[b].Set()
}

// stageArrived is called by each stage at its batch barrier; the last
// arrival drains the batch, scores its requests' latencies and gates the
// next batch (or finishes serving).
func (s *Server) stageArrived(b int) {
	s.mu.Lock()
	s.arrived++
	if s.arrived < s.cfg.Stages {
		s.mu.Unlock()
		return
	}
	now := s.eng.Now()
	s.batchEnd = append(s.batchEnd, now)
	first := b * s.cfg.BatchSize
	last := first + s.cfg.BatchSize
	if last > len(s.cfg.Arrivals) {
		last = len(s.cfg.Arrivals)
	}
	for _, at := range s.cfg.Arrivals[first:last] {
		s.latencies = append(s.latencies, now-at)
	}
	hooks := append([]func(batch int, ts time.Duration){}, s.onBatchEnd...)
	final := b+1 >= s.cfg.numBatches()
	s.mu.Unlock()

	for _, h := range hooks {
		h(b, now)
	}
	if final {
		s.done.Set()
		return
	}
	s.scheduleBatch(b + 1)
}

// serveStage is the continuation-passing body of one stage: numBatches
// times through the forward-only chunk, blocking on the upstream forward of
// each micro-batch — entirely on the engine goroutine, mirroring the
// trainer's stageRun.
type serveStage struct {
	s      *Server
	p      *simproc.Process
	stage  int
	client *simgpu.Client
	ops    []pipeline.Op
	deps   []pipeline.Dep
	names  []string
	fpDur  time.Duration
	comm   time.Duration

	batch int
	i     int

	// spec is the reusable kernel spec of the op loop; Name/Duration are
	// rewritten per op (the launch reads the spec synchronously).
	spec simgpu.KernelSpec

	afterGoFn   func(any)
	afterDepFn  func(any)
	afterCommFn func(any)
	afterExecFn func(any)
}

// startStage builds and launches the stage machine (inline process body).
func (s *Server) startStage(p *simproc.Process, stage int) {
	r := &serveStage{
		s:      s,
		p:      p,
		stage:  stage,
		client: s.clients[stage],
		ops:    s.plan.Chunks[stage],
		deps:   s.plan.Deps[stage],
		fpDur:  s.cfg.Model.FPPerMB,
		comm:   s.cfg.Model.CommLatency,
	}
	r.spec = simgpu.KernelSpec{Demand: 1.0, Weight: 1.0}
	r.names = make([]string, len(r.ops))
	for i, op := range r.ops {
		r.names[i] = fmt.Sprintf("s%d-infer-%d", stage, op.MB)
	}
	r.afterGoFn = r.afterGo
	r.afterDepFn = r.afterDep
	r.afterCommFn = r.afterComm
	r.afterExecFn = r.afterExec
	r.waitBatch()
}

func (r *serveStage) waitBatch() {
	r.s.goBatch[r.batch].WaitThen(r.p, r.afterGoFn)
}

func (r *serveStage) afterGo(any) {
	r.i = 0
	r.nextOp()
}

func (r *serveStage) nextOp() {
	if r.i >= len(r.ops) {
		b := r.batch
		r.batch++
		r.s.stageArrived(b)
		if r.batch >= r.s.cfg.numBatches() {
			r.p.Exit(nil)
			return
		}
		r.waitBatch()
		return
	}
	if dep := r.deps[r.i]; dep.Chunk >= 0 {
		r.s.fpDone[r.batch][dep.Chunk][dep.MB].WaitThen(r.p, r.afterDepFn)
		return
	}
	r.execOp()
}

func (r *serveStage) afterDep(any) {
	r.p.SleepThen(r.comm, r.afterCommFn)
}

func (r *serveStage) afterComm(any) {
	r.execOp()
}

func (r *serveStage) execOp() {
	r.spec.Name = r.names[r.i]
	r.spec.Duration = r.fpDur
	r.client.ExecThen(r.p, &r.spec, r.afterExecFn)
}

func (r *serveStage) afterExec(res any) {
	if res != nil {
		err, ok := res.(error)
		if !ok {
			err = fmt.Errorf("serve: unexpected completion payload %T", res)
		}
		s := r.s
		s.mu.Lock()
		if s.failed == nil {
			s.failed = fmt.Errorf("serve: stage %d mb %d: %w", r.stage, r.ops[r.i].MB, err)
		}
		s.mu.Unlock()
		r.p.Exit(err)
		return
	}
	r.s.fpDone[r.batch][r.stage][r.ops[r.i].MB].Set()
	r.i++
	r.nextOp()
}

func newLatchGrid(eng simtime.Engine, stages, mbs int) [][]*simproc.Latch {
	grid := make([][]*simproc.Latch, stages)
	for s := range grid {
		grid[s] = make([]*simproc.Latch, mbs)
		for m := range grid[s] {
			grid[s][m] = simproc.NewLatch(eng)
		}
	}
	return grid
}
