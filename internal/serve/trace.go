// Package serve models the open-loop inference-serving workload: a seeded
// request-arrival process drives the pipeline in per-request-batch
// fill/execute/drain cycles, and per-request latency (batch completion
// minus request arrival) is scored against a p99 SLO.
//
// The arrival traces stand in for the aggregate of many independent users —
// the regime where arrivals are outside the system's control (open loop),
// so queueing delay and batching delay compound under load instead of
// self-limiting as a closed loop would.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// TraceKind selects the arrival process.
type TraceKind int

const (
	// TracePoisson is the memoryless baseline: exponential inter-arrivals
	// at the configured mean rate.
	TracePoisson TraceKind = iota + 1
	// TraceDiurnal modulates the Poisson rate sinusoidally (a compressed
	// day/night cycle): lambda(t) = rate * (1 + m*sin(2*pi*t/period)) with
	// modulation depth m = Burstiness/(1+Burstiness).
	TraceDiurnal
	// TraceBursty is a two-state Markov-modulated Poisson process: an "on"
	// phase at rate*(1+Burstiness) alternating with an "off" phase at
	// rate/(1+Burstiness), exponential sojourns, preserving the mean rate's
	// order of magnitude while clustering arrivals.
	TraceBursty
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TracePoisson:
		return "poisson"
	case TraceDiurnal:
		return "diurnal"
	case TraceBursty:
		return "bursty"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// diurnalPeriod is the compressed day/night cycle of TraceDiurnal. Short
// enough that even a small sweep cell sees both the peak and the trough.
const diurnalPeriod = 60 * time.Second

// ArrivalConfig parameterizes one generated trace.
type ArrivalConfig struct {
	Kind TraceKind
	// Rate is the mean arrival rate in requests/second.
	Rate float64
	// Burstiness shapes the non-Poisson kinds (see TraceKind docs);
	// ignored by TracePoisson.
	Burstiness float64
	// Requests is the trace length.
	Requests int
	// Seed drives the generator; equal configs yield identical traces.
	Seed int64
}

// GenerateArrivals produces the sorted request-arrival offsets of one
// trace. The generator is fully deterministic in the config.
func GenerateArrivals(cfg ArrivalConfig) ([]time.Duration, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: trace needs a positive request count, got %d", cfg.Requests)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("serve: trace needs a positive rate, got %g", cfg.Rate)
	}
	if cfg.Burstiness < 0 {
		return nil, fmt.Errorf("serve: negative burstiness %g", cfg.Burstiness)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]time.Duration, 0, cfg.Requests)
	var t float64 // seconds
	switch cfg.Kind {
	case TracePoisson, 0:
		for i := 0; i < cfg.Requests; i++ {
			t += rng.ExpFloat64() / cfg.Rate
			out = append(out, secs(t))
		}
	case TraceDiurnal:
		m := cfg.Burstiness / (1 + cfg.Burstiness)
		period := diurnalPeriod.Seconds()
		for i := 0; i < cfg.Requests; i++ {
			// Step by the local instantaneous rate; for rates that change
			// slowly relative to inter-arrival gaps this tracks the
			// inhomogeneous process closely and stays one-pass deterministic.
			lambda := cfg.Rate * (1 + m*math.Sin(2*math.Pi*t/period))
			if lambda < cfg.Rate/16 {
				lambda = cfg.Rate / 16
			}
			t += rng.ExpFloat64() / lambda
			out = append(out, secs(t))
		}
	case TraceBursty:
		on := true
		rateOn := cfg.Rate * (1 + cfg.Burstiness)
		rateOff := cfg.Rate / (1 + cfg.Burstiness)
		// Mean sojourn of ~10 requests per "on" phase at the on-rate; the
		// off phase matches in wall time so bursts and lulls alternate.
		sojournMean := 10 / rateOn
		phaseEnd := t + rng.ExpFloat64()*sojournMean
		for i := 0; i < cfg.Requests; i++ {
			rate := rateOn
			if !on {
				rate = rateOff
			}
			t += rng.ExpFloat64() / rate
			for t > phaseEnd {
				on = !on
				phaseEnd += rng.ExpFloat64() * sojournMean
			}
			out = append(out, secs(t))
		}
	default:
		return nil, fmt.Errorf("serve: unknown trace kind %v", cfg.Kind)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
