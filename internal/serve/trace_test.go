package serve

import (
	"reflect"
	"testing"
	"time"
)

func traceCfg(kind TraceKind, seed int64) ArrivalConfig {
	return ArrivalConfig{Kind: kind, Rate: 2, Burstiness: 3, Requests: 64, Seed: seed}
}

func TestGenerateArrivalsDeterministic(t *testing.T) {
	for _, kind := range []TraceKind{TracePoisson, TraceDiurnal, TraceBursty} {
		a, err := GenerateArrivals(traceCfg(kind, 1))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		b, err := GenerateArrivals(traceCfg(kind, 1))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same seed produced different traces", kind)
		}
	}
}

func TestGenerateArrivalsSortedAndSized(t *testing.T) {
	for _, kind := range []TraceKind{TracePoisson, TraceDiurnal, TraceBursty} {
		a, err := GenerateArrivals(traceCfg(kind, 7))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(a) != 64 {
			t.Fatalf("%v: got %d arrivals, want 64", kind, len(a))
		}
		for i, ts := range a {
			if ts < 0 {
				t.Fatalf("%v: negative arrival %v at %d", kind, ts, i)
			}
			if i > 0 && ts < a[i-1] {
				t.Fatalf("%v: arrivals out of order at %d: %v < %v", kind, i, ts, a[i-1])
			}
		}
	}
}

func TestGenerateArrivalsKindsDiverge(t *testing.T) {
	got := map[TraceKind][]time.Duration{}
	for _, kind := range []TraceKind{TracePoisson, TraceDiurnal, TraceBursty} {
		a, err := GenerateArrivals(traceCfg(kind, 1))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got[kind] = a
	}
	if reflect.DeepEqual(got[TracePoisson], got[TraceBursty]) {
		t.Error("poisson and bursty traces identical under the same seed")
	}
	if reflect.DeepEqual(got[TracePoisson], got[TraceDiurnal]) {
		t.Error("poisson and diurnal traces identical under the same seed")
	}
}

func TestGenerateArrivalsSeedDivergence(t *testing.T) {
	a, err := GenerateArrivals(traceCfg(TracePoisson, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateArrivals(traceCfg(TracePoisson, 2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateArrivalsValidation(t *testing.T) {
	bad := []ArrivalConfig{
		{Kind: TracePoisson, Rate: 0, Requests: 4},
		{Kind: TracePoisson, Rate: 2, Requests: 0},
		{Kind: TracePoisson, Rate: 2, Requests: 4, Burstiness: -1},
		{Kind: TraceKind(99), Rate: 2, Requests: 4},
	}
	for i, cfg := range bad {
		if _, err := GenerateArrivals(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// The bursty trace's whole point: under the same mean rate it packs
// arrivals tighter in on-phases, so its maximum inter-arrival gap should
// exceed the Poisson trace's (off-phases stretch).
func TestBurstyTraceStretchesGaps(t *testing.T) {
	maxGap := func(a []time.Duration) time.Duration {
		var m time.Duration
		for i := 1; i < len(a); i++ {
			if g := a[i] - a[i-1]; g > m {
				m = g
			}
		}
		return m
	}
	p, err := GenerateArrivals(ArrivalConfig{Kind: TracePoisson, Rate: 2, Requests: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateArrivals(ArrivalConfig{Kind: TraceBursty, Rate: 2, Burstiness: 4, Requests: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if maxGap(b) <= maxGap(p) {
		t.Errorf("bursty max gap %v not above poisson %v", maxGap(b), maxGap(p))
	}
}
