package simproc

import "sync"

// Latch is a one-shot condition: processes wait until it is set. It is the
// dependency primitive the pipeline engine uses to express "BP of
// micro-batch m at stage s needs BP at stage s+1" and similar edges.
type Latch struct {
	mu      sync.Mutex
	set     bool
	waiters []func(any)
}

// NewLatch returns an unset latch.
func NewLatch() *Latch { return &Latch{} }

// Set releases all current and future waiters. Must be called from
// engine-callback or process context. Setting twice is a no-op.
func (l *Latch) Set() {
	l.mu.Lock()
	if l.set {
		l.mu.Unlock()
		return
	}
	l.set = true
	waiters := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, w := range waiters {
		w(nil)
	}
}

// IsSet reports whether the latch has been set.
func (l *Latch) IsSet() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.set
}

// Wait parks p until the latch is set (returns immediately if already set).
func (l *Latch) Wait(p *Process) {
	l.mu.Lock()
	if l.set {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	p.WaitEvent("latch", func(wake func(any)) {
		l.mu.Lock()
		if l.set {
			l.mu.Unlock()
			// Raced with Set between the check and registration: wake now.
			wake(nil)
			return
		}
		l.waiters = append(l.waiters, wake)
		l.mu.Unlock()
	})
}

// Mailbox is an unbounded FIFO queue with blocking receive, used for
// inter-process messages (state-transition commands, RPC frames).
type Mailbox struct {
	mu     sync.Mutex
	queue  []any
	waiter func(any) // at most one blocked receiver
	closed bool
}

// NewMailbox returns an empty mailbox.
func NewMailbox() *Mailbox { return &Mailbox{} }

// Send enqueues msg, waking a blocked receiver if any. Send to a closed
// mailbox is dropped.
func (m *Mailbox) Send(msg any) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if w := m.waiter; w != nil {
		m.waiter = nil
		m.mu.Unlock()
		w(msg)
		return
	}
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
}

// Close marks the mailbox closed; a blocked receiver wakes with ok=false.
func (m *Mailbox) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	w := m.waiter
	m.waiter = nil
	m.mu.Unlock()
	if w != nil {
		w(mailboxClosed{})
	}
}

type mailboxClosed struct{}

// TryRecv dequeues without blocking; ok is false when empty or closed.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return nil, false
	}
	msg = m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Recv parks p until a message is available. ok is false if the mailbox was
// closed while waiting (or already closed and drained). Only one process may
// block on a mailbox at a time.
func (m *Mailbox) Recv(p *Process) (msg any, ok bool) {
	m.mu.Lock()
	if len(m.queue) > 0 {
		msg = m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		return msg, true
	}
	if m.closed {
		m.mu.Unlock()
		return nil, false
	}
	if m.waiter != nil {
		m.mu.Unlock()
		panic("simproc: concurrent Recv on Mailbox")
	}
	m.mu.Unlock()

	got := p.WaitEvent("mailbox", func(wake func(any)) {
		m.mu.Lock()
		// Re-check under lock: a Send may have raced in.
		if len(m.queue) > 0 {
			first := m.queue[0]
			m.queue = m.queue[1:]
			m.mu.Unlock()
			wake(first)
			return
		}
		if m.closed {
			m.mu.Unlock()
			wake(mailboxClosed{})
			return
		}
		m.waiter = wake
		m.mu.Unlock()
	})
	if _, wasClosed := got.(mailboxClosed); wasClosed {
		return nil, false
	}
	return got, true
}
