package simproc

import (
	"sync/atomic"

	"freeride/internal/simtime"
)

// Latch is a one-shot condition: processes wait until it is set. It is the
// dependency primitive the pipeline engine uses to express "BP of
// micro-batch m at stage s needs BP at stage s+1" and similar edges.
// Waiters are recorded as processes, not closures: Set wakes each one
// through its wait slot, so waiting is allocation-free beyond the waiter
// list itself. IsSet is a single atomic load — the training-done latch is
// polled once per simulated event by the session drain loop.
type Latch struct {
	mu      simtime.Guard
	set     atomic.Bool
	waiters []*Process
}

// NewLatch returns an unset latch whose lock rides eng's ownership regime
// (see simtime.Guard). A nil engine yields an always-locked latch.
func NewLatch(eng simtime.Engine) *Latch {
	l := &Latch{}
	if eng != nil {
		l.mu.Bind(eng)
	}
	return l
}

// Set releases all current and future waiters. Must be called from
// engine-callback or process context. Setting twice is a no-op.
func (l *Latch) Set() {
	l.mu.Lock()
	if l.set.Load() {
		l.mu.Unlock()
		return
	}
	l.set.Store(true)
	waiters := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, p := range waiters {
		p.Wake(nil)
	}
}

// IsSet reports whether the latch has been set.
func (l *Latch) IsSet() bool {
	return l.set.Load()
}

// register enrolls an armed waiter, waking it immediately if Set raced in
// between the caller's check and the registration.
func (l *Latch) register(p *Process) {
	l.mu.Lock()
	if l.set.Load() {
		l.mu.Unlock()
		p.Wake(nil)
		return
	}
	l.waiters = append(l.waiters, p)
	l.mu.Unlock()
}

// Wait parks p until the latch is set (returns immediately if already set).
func (l *Latch) Wait(p *Process) {
	if l.set.Load() {
		return
	}
	p.BeginWait(nil)
	l.register(p)
	p.Await("latch")
}

// WaitThen is the inline form of Wait: k runs once the latch is set —
// immediately (and synchronously) if it already is.
func (l *Latch) WaitThen(p *Process, k func(any)) {
	if l.set.Load() {
		k(nil)
		return
	}
	p.BeginWait(k)
	l.register(p)
	p.EndWait("latch")
}

// Mailbox is an unbounded FIFO queue with blocking receive, used for
// inter-process messages (state-transition commands, RPC frames).
type Mailbox struct {
	mu     simtime.Guard
	queue  []any
	waiter *Process // at most one blocked receiver
	closed bool
}

// NewMailbox returns an empty (always-locked) mailbox; Bind ties it to an
// engine's ownership regime when one is available.
func NewMailbox() *Mailbox { return &Mailbox{} }

// Bind ties the mailbox lock to eng's ownership regime (see simtime.Guard).
// Call before the mailbox is reachable from more than one goroutine, from
// outside any mailbox operation.
func (m *Mailbox) Bind(eng simtime.Engine) {
	if eng != nil {
		m.mu.Bind(eng)
	}
}

// Closed is the wake payload a blocked receiver observes when the mailbox is
// closed. RecvThen continuations compare against it; Recv translates it to
// ok == false.
type Closed struct{}

// Send enqueues msg, waking a blocked receiver if any. Send to a closed
// mailbox is dropped.
func (m *Mailbox) Send(msg any) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if w := m.waiter; w != nil {
		m.waiter = nil
		m.mu.Unlock()
		w.Wake(msg)
		return
	}
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
}

// Close marks the mailbox closed; a blocked receiver wakes with ok=false.
func (m *Mailbox) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	w := m.waiter
	m.waiter = nil
	m.mu.Unlock()
	if w != nil {
		w.Wake(Closed{})
	}
}

// TryRecv dequeues without blocking; ok is false when empty or closed.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return nil, false
	}
	msg = m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// register enrolls an armed receiver, delivering synchronously if a message
// (or the close) raced in between the caller's check and the registration.
func (m *Mailbox) register(p *Process) {
	m.mu.Lock()
	if len(m.queue) > 0 {
		first := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		p.Wake(first)
		return
	}
	if m.closed {
		m.mu.Unlock()
		p.Wake(Closed{})
		return
	}
	if m.waiter != nil {
		m.mu.Unlock()
		panic("simproc: concurrent Recv on Mailbox")
	}
	m.waiter = p
	m.mu.Unlock()
}

// Recv parks p until a message is available. ok is false if the mailbox was
// closed while waiting (or already closed and drained). Only one process may
// block on a mailbox at a time.
func (m *Mailbox) Recv(p *Process) (msg any, ok bool) {
	m.mu.Lock()
	if len(m.queue) > 0 {
		msg = m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		return msg, true
	}
	if m.closed {
		m.mu.Unlock()
		return nil, false
	}
	m.mu.Unlock()

	p.BeginWait(nil)
	m.register(p)
	got := p.Await("mailbox")
	if _, wasClosed := got.(Closed); wasClosed {
		return nil, false
	}
	return got, true
}

// RecvThen is the inline form of Recv: k receives the next message, or
// Closed{} if the mailbox is (or becomes) closed and drained.
func (m *Mailbox) RecvThen(p *Process, k func(any)) {
	p.BeginWait(k)
	m.register(p)
	p.EndWait("mailbox")
}
