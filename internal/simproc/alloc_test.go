package simproc

import (
	"testing"
	"time"

	"freeride/internal/simtime"
)

// Allocation pins for the process runtime's hot paths, in the style of the
// engine's 0-allocs/op test: once warmed up, a goroutine process's
// sleep→park→wake→resume cycle, the WaitEvent slot path, and an inline
// process's continuation cycle must not allocate.

// TestParkResumeAllocFree pins the futex handshake: each engine step fires
// one sleep wake, runs the full park/resume rendezvous, and re-schedules the
// next sleep.
func TestParkResumeAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	rt.Spawn("sleeper", func(p *Process) error {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	// Warm up: spawn event, first parks, timer free-list.
	for i := 0; i < 16; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("park/resume cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWaitEventAllocFree pins the reusable wait slot: arming, registering a
// detached wake and delivering it must not allocate (the setup closure stays
// on the stack because WaitEvent never retains it).
func TestWaitEventAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	rt.Spawn("waiter", func(p *Process) error {
		for {
			got := p.WaitEvent("ext", func(wake func(any)) {
				simtime.Detached(eng, time.Microsecond, "fire", func() { wake(nil) })
			})
			if got != nil {
				return nil
			}
		}
	})
	for i := 0; i < 16; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs > 1 {
		// The wake-scheduling closure inside setup may cost one cell
		// depending on inlining; the wait slot itself must add nothing.
		t.Fatalf("WaitEvent cycle allocates %.1f objects/op, want <= 1", allocs)
	}
}

// TestInlineSleepAllocFree pins the event-loop runtime: a continuation
// process's sleep→wake→continue cycle is entirely allocation-free.
func TestInlineSleepAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	rt.SpawnInline("ticker", func(p *Process) {
		var k func(any)
		k = func(any) {
			p.SleepThen(time.Microsecond, k)
		}
		p.SleepThen(time.Microsecond, k)
	})
	for i := 0; i < 16; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("inline sleep cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestLatchMailboxSteadyStateAllocFree pins the synchronization primitives'
// wake paths: an inline sender/receiver pair ping-ponging through a Mailbox
// allocates nothing per message beyond the boxed payload it sends.
func TestMailboxWakePathAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	mb := NewMailbox()
	msg := any("ping") // pre-boxed: pin the wake path, not the payload
	rt.SpawnInline("rx", func(p *Process) {
		var k func(any)
		k = func(any) {
			mb.RecvThen(p, k)
		}
		mb.RecvThen(p, k)
	})
	var send func()
	send = func() {
		mb.Send(msg)
		simtime.Detached(eng, time.Microsecond, "send", send)
	}
	simtime.Detached(eng, time.Microsecond, "send", send)
	for i := 0; i < 16; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("mailbox wake path allocates %.1f objects/op, want 0", allocs)
	}
}
