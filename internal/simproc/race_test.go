package simproc

import (
	"testing"
	"time"

	"freeride/internal/simtime"
)

// TestFutexHandshakeStressStopContKill hammers the futex park/resume
// handshake from genuinely concurrent wakers: under the wall engine, timer
// callbacks fire from their own goroutines while the process goroutines
// park and wake, and Stop/Cont/Kill signals land at arbitrary points of the
// handshake. Run with -race this validates the atomic state word, the gate
// semaphores and the stopped/killed transitions.
func TestFutexHandshakeStressStopContKill(t *testing.T) {
	eng := simtime.NewWall()
	rt := NewRuntime(eng)

	const procs = 8
	targets := make([]*Process, procs)
	for i := 0; i < procs; i++ {
		targets[i] = rt.Spawn("worker", func(p *Process) error {
			for {
				p.Sleep(200 * time.Microsecond)
			}
		})
	}

	// Signal storms, delivered from engine-callback context as required.
	var storm func(round int)
	storm = func(round int) {
		for _, p := range targets {
			switch round % 3 {
			case 0:
				p.Signal(SigStop)
			case 1:
				p.Signal(SigCont)
			case 2:
				p.Signal(SigStop)
				p.Signal(SigCont)
			}
		}
		if round < 30 {
			eng.Schedule(300*time.Microsecond, "storm", func() { storm(round + 1) })
		}
	}
	eng.Schedule(time.Millisecond, "storm", func() { storm(0) })

	// Give the storm time to interleave with the sleep/wake cycles, then
	// kill everything — some processes mid-park, some stopped, some with a
	// deferred pending wake.
	done := make(chan struct{})
	eng.Schedule(30*time.Millisecond, "killall", func() {
		for _, p := range targets {
			p.Signal(SigKill)
		}
		close(done)
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("kill event never fired")
	}

	// Every process must wind down to killed (a process stopped or parked
	// at kill time dies immediately; one racing into a park dies at that
	// park, woken by its in-flight sleep timer).
	deadline := time.Now().Add(5 * time.Second)
	for _, p := range targets {
		for p.Alive() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if p.Alive() {
			t.Fatalf("process %s still alive after kill (state %v, parked on %q)",
				p.Name(), p.State(), p.ParkReason())
		}
		if p.State() != StateKilled {
			t.Fatalf("process %s state = %v, want killed", p.Name(), p.State())
		}
	}
}
