package simproc

import (
	"testing"

	"freeride/internal/simtime"
)

// chainRig arms an inline process's wait slot and returns the process plus a
// recorder of continuation deliveries.
func chainRig(t *testing.T) (*simtime.Virtual, *Process, *[]any) {
	t.Helper()
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	var got []any
	p := rt.SpawnInline("chain", func(p *Process) {})
	eng.MustDrain(4)
	p.BeginWait(func(data any) { got = append(got, data) })
	p.EndWait("test")
	return eng, p, &got
}

// TestWakeChainedWithoutChainDisarms: a chained delivery whose continuation
// neither chains nor arms a new wait must leave the slot exactly as Wake
// would — disarmed, with later stray wakes discarded.
func TestWakeChainedWithoutChainDisarms(t *testing.T) {
	_, p, got := chainRig(t)
	p.WakeChained("first")
	if len(*got) != 1 || (*got)[0] != "first" {
		t.Fatalf("delivered %v, want [first]", *got)
	}
	p.Wake("stray")
	p.WakeChained("stray2")
	if len(*got) != 1 {
		t.Fatalf("stray wake delivered to a disarmed slot: %v", *got)
	}
}

// TestChainWaitReArmsInPlace: a continuation that chains keeps the slot
// armed for the next delivery, and ChainWait outside a chained delivery
// reports false.
func TestChainWaitReArmsInPlace(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	var got []any
	p := rt.SpawnInline("chain", func(p *Process) {})
	eng.MustDrain(4)

	if p.ChainWait("outside", func(any) {}) {
		t.Fatal("ChainWait outside a chained delivery reported true")
	}

	gen0 := p.WaitGen()
	var loop func(any)
	n := 0
	loop = func(data any) {
		got = append(got, data)
		n++
		if n < 3 {
			if !p.ChainWait("loop", loop) {
				t.Fatal("ChainWait inside a chained delivery reported false")
			}
		}
	}
	p.BeginWait(loop)
	p.EndWait("loop")
	p.WakeChained(1)
	p.WakeChained(2)
	p.WakeChained(3)
	p.WakeChained(4) // loop stopped chaining after 3: discarded
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivered %v, want [1 2 3]", got)
	}
	if p.WaitGen() != gen0+3 {
		t.Fatalf("WaitGen advanced by %d, want 3 (one per arm)", p.WaitGen()-gen0)
	}
}

// TestWakeDuringChainedDeliveryDiscarded: while the chained continuation
// runs, the armed wait's wake has already been delivered — a concurrent
// stray Wake must be discarded, not double-delivered to the old
// continuation.
func TestWakeDuringChainedDeliveryDiscarded(t *testing.T) {
	_, p, _ := chainRig(t)
	var inner []any
	p.BeginWait(func(data any) {
		p.Wake("stray-during-delivery")
		p.WakeChained("stray-chained")
		inner = append(inner, data)
	})
	p.EndWait("x")
	p.WakeChained("real")
	if len(inner) != 1 || inner[0] != "real" {
		t.Fatalf("delivered %v, want [real]", inner)
	}
}

// TestChainSupersededByBeginWait: a continuation that arms a *different*
// wait (SleepThen shape) instead of chaining must keep that new wait armed —
// the chained delivery's epilogue must not disarm it.
func TestChainSupersededByBeginWait(t *testing.T) {
	eng, p, got := chainRig(t)
	p.BeginWait(func(data any) {
		p.SleepThen(0, func(any) { *got = append(*got, "slept") })
	})
	p.EndWait("x")
	p.WakeChained("kick")
	eng.MustDrain(4)
	if len(*got) != 1 || (*got)[0] != "slept" {
		t.Fatalf("delivered %v, want [slept] (epilogue disarmed the superseding wait?)", *got)
	}
}

// TestWakeChainedRespectsStop: SIGTSTP semantics are unchanged — a chained
// wake to a stopped process is held and re-delivered on SIGCONT, through the
// normal (unchained) path.
func TestWakeChainedRespectsStop(t *testing.T) {
	_, p, got := chainRig(t)
	p.Signal(SigStop)
	p.WakeChained("held")
	if len(*got) != 0 {
		t.Fatalf("stopped process received chained wake immediately: %v", *got)
	}
	p.Signal(SigCont)
	if len(*got) != 1 || (*got)[0] != "held" {
		t.Fatalf("delivered %v after SIGCONT, want [held]", *got)
	}
}

// TestWakeChainedToDeadProcessDiscarded: like Wake, chained wakes to
// terminated processes vanish.
func TestWakeChainedToDeadProcessDiscarded(t *testing.T) {
	_, p, got := chainRig(t)
	p.Exit(nil)
	p.WakeChained("late")
	if len(*got) != 0 {
		t.Fatalf("dead process received chained wake: %v", *got)
	}
}

// TestWakeChainedGoroutineProcess: on a goroutine process WakeChained is
// exactly Wake — the parked body resumes with the payload.
func TestWakeChainedGoroutineProcess(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := NewRuntime(eng)
	var got any
	p := rt.Spawn("goro", func(p *Process) error {
		got = p.WaitEvent("wait", func(wake func(any)) {
			// Deliver later via the chained entry point.
			simtime.Detached(eng, 0, "kick", func() { p.WakeChained("resumed") })
		})
		return nil
	})
	eng.MustDrain(10)
	if got != "resumed" {
		t.Fatalf("goroutine process got %v, want resumed", got)
	}
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
}
