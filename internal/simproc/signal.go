package simproc

// Signal identifies the subset of POSIX signals the FreeRide worker uses.
type Signal int

// Supported signals.
const (
	// SigStop suspends the process at its next blocking boundary
	// (SIGTSTP in the paper's imperative interface). Work already
	// submitted to the GPU is unaffected — exactly the asynchronous-kernel
	// caveat of paper §5.
	SigStop Signal = iota + 1
	// SigCont resumes a stopped process (SIGCONT).
	SigCont
	// SigKill terminates the process immediately if parked (inline
	// processes are always at a blocking boundary, so the kill is always
	// immediate for them), or at its next blocking boundary if running;
	// deferred cleanup still executes (SIGKILL, the framework-enforced
	// mechanism of paper §4.5).
	SigKill
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case SigStop:
		return "SIGTSTP"
	case SigCont:
		return "SIGCONT"
	case SigKill:
		return "SIGKILL"
	default:
		return "SIG?"
	}
}

// Signal delivers sig to the process. Delivery to a terminated process is a
// no-op. Must be called from engine-callback context, not from the target
// process's own goroutine (a process wishing to stop itself should simply
// return).
func (p *Process) Signal(sig Signal) {
	switch sig {
	case SigStop:
		p.mu.Lock()
		var hook func(Signal)
		if p.state == StateRunning {
			p.state = StateStopped
			p.stopped = true
			hook = p.sigHook
		}
		p.mu.Unlock()
		if hook != nil {
			hook(SigStop)
		}

	case SigCont:
		p.mu.Lock()
		if p.state != StateStopped {
			p.mu.Unlock()
			return
		}
		p.state = StateRunning
		p.stopped = false
		hook := p.sigHook
		p.mu.Unlock()
		if hook != nil {
			// Before draining the deferred wake: the hook may need to
			// restore state (a held host lead) the continuation reads.
			hook(SigCont)
		}
		p.deliverPending()

	case SigKill:
		p.mu.Lock()
		if p.state == StateExited || p.state == StateKilled {
			p.mu.Unlock()
			return
		}
		p.killed = true
		p.stopped = false
		p.hasPending = false
		p.pendingData = nil
		if p.inline {
			p.mu.Unlock()
			// Inline processes are always at a blocking boundary when an
			// engine callback runs, so the kill takes effect immediately:
			// drop the armed wait and run the exit hooks now.
			p.exitInline(ErrKilled)
			return
		}
		parked := p.parked
		p.mu.Unlock()
		if parked {
			p.resume(resumeMsg{kill: true})
		}
		// If not parked (running under the wall engine, or being resumed),
		// the kill flag fires at the next park.
	}
}

// Stopped reports whether the process is currently suspended by SigStop.
func (p *Process) Stopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}
