package simproc

import (
	"testing"
	"time"
)

func TestLatchReleasesWaiters(t *testing.T) {
	eng, rt := newRT()
	l := NewLatch(eng)
	var wokeAt []time.Duration
	for i := 0; i < 3; i++ {
		rt.Spawn("waiter", func(p *Process) error {
			l.Wait(p)
			wokeAt = append(wokeAt, p.Now())
			return nil
		})
	}
	eng.Schedule(5*time.Second, "set", func() { l.Set() })
	eng.MustDrain(100)
	if len(wokeAt) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(wokeAt))
	}
	for _, at := range wokeAt {
		if at != 5*time.Second {
			t.Fatalf("waiter woke at %v, want 5s", at)
		}
	}
}

func TestLatchAlreadySet(t *testing.T) {
	eng, rt := newRT()
	l := NewLatch(eng)
	l.Set()
	l.Set() // idempotent
	done := false
	rt.Spawn("waiter", func(p *Process) error {
		l.Wait(p)
		done = true
		return nil
	})
	eng.MustDrain(100)
	if !done {
		t.Fatal("waiter on set latch did not proceed")
	}
	if !l.IsSet() {
		t.Fatal("IsSet = false")
	}
}

func TestMailboxSendThenRecv(t *testing.T) {
	eng, rt := newRT()
	m := NewMailbox()
	m.Send("a")
	m.Send("b")
	var got []any
	rt.Spawn("rx", func(p *Process) error {
		for i := 0; i < 2; i++ {
			msg, ok := m.Recv(p)
			if !ok {
				t.Error("Recv not ok")
			}
			got = append(got, msg)
		}
		return nil
	})
	eng.MustDrain(100)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v, want [a b]", got)
	}
}

func TestMailboxBlockingRecv(t *testing.T) {
	eng, rt := newRT()
	m := NewMailbox()
	var at time.Duration
	rt.Spawn("rx", func(p *Process) error {
		msg, ok := m.Recv(p)
		if !ok || msg != 42 {
			t.Errorf("Recv = %v/%v, want 42/true", msg, ok)
		}
		at = p.Now()
		return nil
	})
	eng.Schedule(3*time.Second, "tx", func() { m.Send(42) })
	eng.MustDrain(100)
	if at != 3*time.Second {
		t.Fatalf("received at %v, want 3s", at)
	}
}

func TestMailboxCloseWakesReceiver(t *testing.T) {
	eng, rt := newRT()
	m := NewMailbox()
	closed := false
	rt.Spawn("rx", func(p *Process) error {
		_, ok := m.Recv(p)
		closed = !ok
		return nil
	})
	eng.Schedule(time.Second, "close", func() { m.Close() })
	eng.MustDrain(100)
	if !closed {
		t.Fatal("Recv on closed mailbox reported ok")
	}
}

func TestMailboxTryRecv(t *testing.T) {
	m := NewMailbox()
	if _, ok := m.TryRecv(); ok {
		t.Fatal("TryRecv on empty = ok")
	}
	m.Send(1)
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if v, ok := m.TryRecv(); !ok || v != 1 {
		t.Fatalf("TryRecv = %v/%v", v, ok)
	}
}

func TestMailboxSendAfterCloseDropped(t *testing.T) {
	m := NewMailbox()
	m.Close()
	m.Send(1)
	if m.Len() != 0 {
		t.Fatal("send after close was queued")
	}
}
