package simproc

import (
	"errors"
	"testing"
	"time"

	"freeride/internal/simtime"
)

func newRT() (*simtime.Virtual, *Runtime) {
	eng := simtime.NewVirtual()
	return eng, NewRuntime(eng)
}

func TestProcessRunsAndExits(t *testing.T) {
	eng, rt := newRT()
	ran := false
	p := rt.Spawn("hello", func(p *Process) error {
		ran = true
		return nil
	})
	eng.MustDrain(100)
	if !ran {
		t.Fatal("body did not run")
	}
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	if p.ExitErr() != nil {
		t.Fatalf("exit err = %v, want nil", p.ExitErr())
	}
}

func TestProcessSleepAdvancesVirtualTime(t *testing.T) {
	eng, rt := newRT()
	var woke time.Duration
	rt.Spawn("sleeper", func(p *Process) error {
		p.Sleep(3 * time.Second)
		woke = p.Now()
		return nil
	})
	eng.MustDrain(100)
	if woke != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", woke)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	eng, rt := newRT()
	var order []string
	mk := func(name string, period time.Duration) {
		rt.Spawn(name, func(p *Process) error {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				order = append(order, name)
			}
			return nil
		})
	}
	mk("a", 100*time.Millisecond)
	mk("b", 150*time.Millisecond)
	eng.MustDrain(1000)
	// Wake times: a at 100/200/300ms, b at 150/300/450ms. At the t=300ms
	// tie, b's timer was scheduled earlier (at t=150ms) so FIFO runs b
	// first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessBodyError(t *testing.T) {
	eng, rt := newRT()
	boom := errors.New("boom")
	p := rt.Spawn("failing", func(p *Process) error { return boom })
	eng.MustDrain(100)
	if !errors.Is(p.ExitErr(), boom) {
		t.Fatalf("exit err = %v, want boom", p.ExitErr())
	}
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
}

func TestProcessPanicBecomesError(t *testing.T) {
	eng, rt := newRT()
	p := rt.Spawn("panicky", func(p *Process) error { panic("ouch") })
	eng.MustDrain(100)
	if p.ExitErr() == nil {
		t.Fatal("exit err = nil, want panic error")
	}
}

func TestKillParkedProcess(t *testing.T) {
	eng, rt := newRT()
	deferRan := false
	p := rt.Spawn("victim", func(p *Process) error {
		defer func() { deferRan = true }()
		p.Sleep(time.Hour)
		return nil
	})
	eng.Schedule(time.Second, "kill", func() { p.Signal(SigKill) })
	eng.MustDrain(100)
	if p.State() != StateKilled {
		t.Fatalf("state = %v, want killed", p.State())
	}
	if !errors.Is(p.ExitErr(), ErrKilled) {
		t.Fatalf("exit err = %v, want ErrKilled", p.ExitErr())
	}
	if !deferRan {
		t.Fatal("defers did not run on kill")
	}
	if eng.Now() != time.Hour {
		// The sleep timer still fires (harmlessly) at +1h.
		t.Fatalf("Now = %v, want 1h (sleep timer drains harmlessly)", eng.Now())
	}
}

func TestKillIsImmediateNotAtSleepEnd(t *testing.T) {
	eng, rt := newRT()
	var exitedAt time.Duration
	p := rt.Spawn("victim", func(p *Process) error {
		p.Sleep(time.Hour)
		return nil
	})
	p.OnExit(func(err error) { exitedAt = eng.Now() })
	eng.Schedule(time.Second, "kill", func() { p.Signal(SigKill) })
	eng.RunUntil(2 * time.Second)
	if p.Alive() {
		t.Fatal("process still alive 1s after kill")
	}
	if exitedAt != time.Second {
		t.Fatalf("exited at %v, want 1s", exitedAt)
	}
}

func TestStopDefersWake(t *testing.T) {
	eng, rt := newRT()
	var wokeAt time.Duration
	p := rt.Spawn("stoppable", func(p *Process) error {
		p.Sleep(time.Second) // due at t=1s
		wokeAt = p.Now()
		return nil
	})
	eng.Schedule(500*time.Millisecond, "stop", func() { p.Signal(SigStop) })
	eng.Schedule(5*time.Second, "cont", func() { p.Signal(SigCont) })
	eng.MustDrain(100)
	if wokeAt != 5*time.Second {
		t.Fatalf("woke at %v, want 5s (wake deferred until SIGCONT)", wokeAt)
	}
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
}

func TestStopThenKillStillDies(t *testing.T) {
	eng, rt := newRT()
	p := rt.Spawn("stoppable", func(p *Process) error {
		p.Sleep(time.Hour)
		return nil
	})
	eng.Schedule(time.Second, "stop", func() { p.Signal(SigStop) })
	eng.Schedule(2*time.Second, "kill", func() { p.Signal(SigKill) })
	eng.RunUntil(3 * time.Second)
	if p.State() != StateKilled {
		t.Fatalf("state = %v, want killed", p.State())
	}
}

func TestContWithoutStopIsNoop(t *testing.T) {
	eng, rt := newRT()
	p := rt.Spawn("x", func(p *Process) error {
		p.Sleep(time.Second)
		return nil
	})
	eng.Schedule(100*time.Millisecond, "cont", func() { p.Signal(SigCont) })
	eng.MustDrain(100)
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
}

func TestSignalDeadProcessIsNoop(t *testing.T) {
	eng, rt := newRT()
	p := rt.Spawn("quick", func(p *Process) error { return nil })
	eng.MustDrain(100)
	p.Signal(SigKill)
	p.Signal(SigStop)
	p.Signal(SigCont)
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
}

func TestWaitEvent(t *testing.T) {
	eng, rt := newRT()
	var got any
	rt.Spawn("waiter", func(p *Process) error {
		got = p.WaitEvent("external", func(wake func(any)) {
			eng.Schedule(7*time.Second, "fire", func() { wake("payload") })
		})
		return nil
	})
	eng.MustDrain(100)
	if got != "payload" {
		t.Fatalf("WaitEvent = %v, want payload", got)
	}
	if eng.Now() != 7*time.Second {
		t.Fatalf("Now = %v, want 7s", eng.Now())
	}
}

// The wake contract after the exactly-once audit: each armed wait is woken
// exactly once. The two tolerated stale cases — a duplicate synchronous wake
// during setup, and a wake addressed to an already-terminated process (e.g.
// the sleep timer of a killed process firing late) — are discarded.

func TestWaitEventDuplicateSetupWakeIgnored(t *testing.T) {
	eng, rt := newRT()
	var got any
	rt.Spawn("waiter", func(p *Process) error {
		got = p.WaitEvent("immediate", func(wake func(any)) {
			wake("first")
			wake("second") // wait already satisfied: discarded
		})
		return nil
	})
	eng.MustDrain(100)
	if got != "first" {
		t.Fatalf("WaitEvent = %v, want first", got)
	}
}

func TestWakeAfterExitIgnored(t *testing.T) {
	eng, rt := newRT()
	var wk func(any)
	p := rt.Spawn("waiter", func(p *Process) error {
		p.WaitEvent("external", func(wake func(any)) {
			wk = wake
			eng.Schedule(time.Second, "fire", func() { wake("payload") })
		})
		return nil
	})
	eng.MustDrain(100)
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	wk("late") // stale wake to a dead process: discarded, no panic
	if p.State() != StateExited {
		t.Fatalf("state after late wake = %v, want exited", p.State())
	}
}

func TestWakeWithNoArmedWaitIgnored(t *testing.T) {
	eng, rt := newRT()
	p := rt.Spawn("sleeper", func(p *Process) error {
		p.Sleep(time.Hour)
		return nil
	})
	eng.RunUntil(time.Second)
	gen := p.WaitGen()
	// A stray Wake while parked is delivered to the armed wait (this is
	// exactly why sources must be exactly-once); after exit further wakes
	// are discarded without touching the generation counter.
	p.Signal(SigKill)
	eng.RunUntil(2 * time.Second)
	p.Wake(nil)
	if got := p.WaitGen(); got != gen {
		t.Fatalf("WaitGen after stale wake = %d, want %d", got, gen)
	}
}

func TestOnExitAfterTermination(t *testing.T) {
	eng, rt := newRT()
	p := rt.Spawn("quick", func(p *Process) error { return nil })
	eng.MustDrain(100)
	called := false
	p.OnExit(func(err error) { called = true })
	if !called {
		t.Fatal("OnExit after termination should fire immediately")
	}
}

func TestLive(t *testing.T) {
	eng, rt := newRT()
	rt.Spawn("a", func(p *Process) error { p.Sleep(time.Hour); return nil })
	rt.Spawn("b", func(p *Process) error { return nil })
	eng.RunUntil(time.Second)
	live := rt.Live()
	if len(live) != 1 {
		t.Fatalf("Live = %d procs, want 1", len(live))
	}
	if live[0].ParkReason() != "sleep" {
		t.Fatalf("ParkReason = %q, want sleep", live[0].ParkReason())
	}
}

func TestSpawnFromProcess(t *testing.T) {
	eng, rt := newRT()
	var childDone bool
	rt.Spawn("parent", func(p *Process) error {
		rt.Spawn("child", func(c *Process) error {
			c.Sleep(time.Second)
			childDone = true
			return nil
		})
		p.Sleep(2 * time.Second)
		return nil
	})
	eng.MustDrain(100)
	if !childDone {
		t.Fatal("child spawned from process did not complete")
	}
}

func TestYieldPreservesFIFO(t *testing.T) {
	eng, rt := newRT()
	var order []int
	rt.Spawn("a", func(p *Process) error {
		order = append(order, 1)
		p.Yield()
		order = append(order, 3)
		return nil
	})
	eng.Schedule(0, "between", func() { order = append(order, 2) })
	eng.MustDrain(100)
	// Spawn event runs first (scheduled first), body appends 1, yields;
	// then the "between" event appends 2; then the yield wake appends 3.
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateKilled.String() != "killed" {
		t.Fatal("State.String mismatch")
	}
	if SigKill.String() != "SIGKILL" {
		t.Fatal("Signal.String mismatch")
	}
}

func TestWaitEventSynchronousWake(t *testing.T) {
	eng, rt := newRT()
	var got any
	rt.Spawn("sync", func(p *Process) error {
		got = p.WaitEvent("immediate", func(wake func(any)) {
			wake("now") // delivered during setup: must not park
		})
		return nil
	})
	eng.MustDrain(100)
	if got != "now" {
		t.Fatalf("WaitEvent sync = %v, want now", got)
	}
}
