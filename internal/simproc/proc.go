// Package simproc implements simulated OS processes on top of a
// simtime.Engine. A process exists in one of two flavours:
//
//   - Event-loop (inline) processes run entirely on the engine goroutine as
//     continuation-passing state machines (SpawnInline): a blocking point is
//     expressed by arming the process's wait slot with a continuation and
//     returning to the engine. Waking costs a function call — no goroutine
//     switch, no channel operation, no allocation. The simulator's hot
//     interior loops (side-task steps, pipeline stage ops) run this way.
//   - Goroutine processes (Spawn) run user code on a dedicated goroutine and
//     hand control back to the engine whenever they block, so arbitrary
//     imperative bodies work unchanged (examples, live mode, the imperative
//     side-task interface). The park/resume rendezvous is a futex-style
//     handshake: a single atomic state word plus two one-slot semaphores,
//     touched only when the counterpart is actually blocked.
//
// Both flavours share one wake path: each Process owns a reusable,
// generation-checked wait slot, and every wake source (timers, kernel
// completions, latches, mailboxes, RPC replies) delivers through
// Process.Wake. Wake sources are audited to fire exactly once per armed
// wait; wakes addressed to a terminated process (e.g. the sleep timer of a
// killed process firing late) are discarded. This is what makes the wait
// path allocation-free: there is no per-wait closure state to guard against
// duplicate deliveries.
//
// Processes support the three signals FreeRide's worker uses (paper §4.2,
// §4.5): Stop (SIGTSTP) and Cont (SIGCONT) for the imperative interface's
// transparent pause/resume, and Kill (SIGKILL) for the framework-enforced
// resource limit. Signal semantics deliberately mirror the CUDA reality the
// paper describes: stopping a process does not abort work already submitted
// to the GPU — only the *next* blocking boundary is affected (for both
// flavours, a Stop defers the delivery of the next wake until Cont) —
// whereas killing a process destroys it (and its GPU context, via the exit
// hooks).
package simproc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"freeride/internal/simtime"
)

// State describes a process's lifecycle state.
type State int

// Process lifecycle states.
const (
	StateRunning State = iota + 1 // live: executing or parked, schedulable
	StateStopped                  // live but suspended by Stop (SIGTSTP)
	StateExited                   // terminated normally or by error
	StateKilled                   // terminated by Kill
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateExited:
		return "exited"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrKilled is the exit error of a killed process.
var ErrKilled = errors.New("simproc: killed")

// killedPanic unwinds a killed process's goroutine; defers still run, but
// further blocking calls re-panic immediately so cleanup cannot stall.
type killedPanic struct{ p *Process }

// resumeMsg wakes a parked goroutine process.
type resumeMsg struct {
	kill bool
	data any
}

// Handshake states of the futex word (goroutine processes only).
const (
	hsRun     int32 = iota // process executing; engine side not waiting
	hsParked               // process blocked on procGate
	hsEngWait              // engine side blocked on engGate awaiting a park
	hsDead                 // process terminated
)

// Runtime creates and tracks processes on one engine.
type Runtime struct {
	eng simtime.Engine

	mu    sync.Mutex
	procs map[*Process]struct{}
	seq   int
}

// NewRuntime returns a process runtime bound to eng.
func NewRuntime(eng simtime.Engine) *Runtime {
	return &Runtime{eng: eng, procs: make(map[*Process]struct{})}
}

// Engine returns the engine the runtime schedules on.
func (rt *Runtime) Engine() simtime.Engine { return rt.eng }

// Live returns the processes that have not terminated yet.
func (rt *Runtime) Live() []*Process {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Process, 0, len(rt.procs))
	for p := range rt.procs {
		if st := p.State(); st == StateRunning || st == StateStopped {
			out = append(out, p)
		}
	}
	return out
}

// Process is one simulated process. Goroutine-process bodies must interact
// with time only through the blocking primitives; inline bodies only through
// the *Then continuation primitives.
type Process struct {
	rt     *Runtime
	name   string
	id     int
	inline bool
	// wakeName/wakeFn are the precomputed sleep-event label and callback:
	// Sleep is the hottest schedule site in the simulator and must not
	// allocate per call.
	wakeName string
	wakeFn   func()
	// wakeAny is the precomputed func(any) form of Wake handed to WaitEvent
	// setups, so registering a wake source allocates nothing.
	wakeAny func(any)

	// Futex-style handshake (goroutine processes): hs is the state word;
	// the gates are one-slot semaphores only touched when the peer is (or
	// is about to be) blocked. wakeMsg is the single deposit slot, written
	// by the waker before it posts procGate (resumeMu keeps at most one
	// wake in flight).
	hs       atomic.Int32
	procGate chan struct{}
	engGate  chan struct{}
	wakeMsg  resumeMsg
	resumeMu sync.Mutex

	// mu guards the lifecycle and wait-slot state. It rides the engine
	// ownership regime: free for inline processes in single-owner grids,
	// a real mutex once the engine escalates (goroutine shells always run
	// escalated — Spawn is what escalates).
	mu         simtime.Guard
	state      State
	exitErr    error
	parked     bool
	parkReason string
	killed     bool
	stopped    bool
	onExit     []func(err error)
	// sigHook, when set, observes delivered SigStop/SigCont transitions
	// (after the state change, before any pending delivery drains). The
	// fused side-task step loop uses it to freeze/resume a host-lead kernel
	// exactly where the unfused sleep boundary would have frozen.
	sigHook func(Signal)

	// Reusable wait slot. waitGen counts arms (diagnostics); waitOpen marks
	// the arming phase, during which a synchronous Wake is recorded and
	// returned without parking; cont is the continuation of an inline wait.
	waitGen   uint64
	waitArmed bool
	waitOpen  bool
	waitDone  bool
	waitData  any
	cont      func(any)
	// chainOpen marks an in-flight chained delivery (WakeChained): the slot
	// stays armed while the continuation runs so ChainWait can re-arm it in
	// place. Cleared by ChainWait, by BeginWait (the continuation moved on
	// to a different wait), by exit, or by the delivery's epilogue.
	chainOpen bool

	// pendingData holds a wake deferred while stopped (SIGTSTP semantics).
	pendingData any
	hasPending  bool
}

// newProcess allocates the shared process core.
func (rt *Runtime) newProcess(name string, inline bool) *Process {
	rt.mu.Lock()
	rt.seq++
	p := &Process{
		rt:     rt,
		name:   fmt.Sprintf("%s#%d", name, rt.seq),
		id:     rt.seq,
		inline: inline,
		state:  StateRunning,
	}
	p.mu.Bind(rt.eng)
	if !inline {
		// One-slot gates: strict alternation of park and wake (enforced by
		// resumeMu) means deposits never block.
		p.procGate = make(chan struct{}, 1)
		p.engGate = make(chan struct{}, 1)
	}
	p.wakeName = "wake:" + p.name
	p.wakeFn = func() { p.Wake(nil) }
	p.wakeAny = p.Wake
	rt.procs[p] = struct{}{}
	rt.mu.Unlock()
	return p
}

// Spawn starts fn as a new goroutine process. fn begins executing at
// engine-time Now() (as a scheduled event). The returned Process can be
// signaled and observed immediately.
//
// Spawn declares the shared concurrency regime: the body's goroutine calls
// Schedule/Now while the dispatcher is blocked awaiting its park, so the
// engine escalates out of its single-owner fast path before the goroutine
// can exist. Inline processes (SpawnInline) stay on the dispatcher and
// leave the regime untouched.
func (rt *Runtime) Spawn(name string, fn func(p *Process) error) *Process {
	simtime.EscalateShared(rt.eng)
	p := rt.newProcess(name, false)
	simtime.Detached(rt.eng, 0, "spawn:"+p.name, func() {
		go p.run(fn)
		p.waitForPark() // wait until the body parks or exits
	})
	return p
}

// SpawnInline starts an event-loop process: start runs as an engine event at
// the current instant, on the engine goroutine. The body expresses blocking
// through the *Then primitives (SleepThen, Latch.WaitThen, Mailbox.RecvThen,
// simgpu's ExecThen, or BeginWait/EndWait directly) and terminates by
// calling p.Exit.
func (rt *Runtime) SpawnInline(name string, start func(p *Process)) *Process {
	p := rt.newProcess(name, true)
	simtime.Detached(rt.eng, 0, "spawn:"+p.name, func() {
		p.mu.Lock()
		dead := p.state == StateExited || p.state == StateKilled
		p.mu.Unlock()
		if dead {
			return // killed before the start event fired
		}
		start(p)
	})
	return p
}

// run executes a goroutine process body with kill-unwinding and exit
// bookkeeping.
func (p *Process) run(fn func(p *Process) error) {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if kp, ok := r.(killedPanic); ok && kp.p == p {
					err = ErrKilled
					return
				}
				err = fmt.Errorf("simproc: process %s panicked: %v", p.name, r)
			}
		}()
		err = fn(p)
	}()

	p.mu.Lock()
	if errors.Is(err, ErrKilled) {
		p.state = StateKilled
	} else {
		p.state = StateExited
	}
	p.exitErr = err
	hooks := p.onExit
	p.onExit = nil
	p.mu.Unlock()

	for _, h := range hooks {
		h(err)
	}
	// Publish termination; release the engine side if it is blocked in
	// waitForPark. Future wakes observe hsDead (and the dead state) and
	// return immediately.
	if p.hs.Swap(hsDead) == hsEngWait {
		p.engGate <- struct{}{}
	}
}

// Name reports the unique process name.
func (p *Process) Name() string { return p.name }

// ID reports the runtime-unique numeric id (a simulated PID).
func (p *Process) ID() int { return p.id }

// Runtime returns the owning runtime.
func (p *Process) Runtime() *Runtime { return p.rt }

// Engine returns the engine the process runs on.
func (p *Process) Engine() simtime.Engine { return p.rt.eng }

// Now reports the current engine time.
func (p *Process) Now() time.Duration { return p.rt.eng.Now() }

// Inline reports whether this is an event-loop process.
func (p *Process) Inline() bool { return p.inline }

// State reports the process state.
func (p *Process) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// ExitErr reports the body's return value (or ErrKilled) once terminated.
func (p *Process) ExitErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitErr
}

// Alive reports whether the process has not terminated.
func (p *Process) Alive() bool {
	st := p.State()
	return st == StateRunning || st == StateStopped
}

// ParkReason reports what the process is blocked on, for debugging.
func (p *Process) ParkReason() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parkReason
}

// WaitGen reports how many waits the process has armed so far (diagnostics
// for the exactly-once wake audit).
func (p *Process) WaitGen() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waitGen
}

// OnExit registers a hook called (in process context, after the body
// returns) when the process terminates. If the process has already
// terminated the hook runs immediately.
func (p *Process) OnExit(h func(err error)) {
	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		err := p.exitErr
		p.mu.Unlock()
		h(err)
		return
	}
	p.onExit = append(p.onExit, h)
	p.mu.Unlock()
}

// SetSignalHook registers fn to observe SigStop/SigCont deliveries that
// change the process's run state (re-deliveries to an already-stopped or
// already-running process are not reported). The hook runs in the signaling
// caller's engine context, after the state transition: on SigCont it runs
// before any deferred wake delivery drains, so it can restore external state
// (a held host-lead kernel) the resumed continuation depends on. At most one
// hook; nil clears it.
func (p *Process) SetSignalHook(fn func(Signal)) {
	p.mu.Lock()
	p.sigHook = fn
	p.mu.Unlock()
}

// Exit terminates an inline process: it records the exit error, runs the
// exit hooks and marks the process dead. The body must return to the engine
// right after calling it. Goroutine processes terminate by returning from
// their body instead.
func (p *Process) Exit(err error) {
	if !p.inline {
		panic("simproc: Exit on a goroutine process (return from the body instead)")
	}
	p.exitInline(err)
}

// exitInline is the inline termination path (also used by SigKill).
func (p *Process) exitInline(err error) {
	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		p.mu.Unlock()
		return
	}
	if errors.Is(err, ErrKilled) {
		p.state = StateKilled
	} else {
		p.state = StateExited
	}
	p.exitErr = err
	p.waitArmed = false
	p.waitOpen = false
	p.waitDone = false
	p.waitData = nil
	p.cont = nil
	p.chainOpen = false
	p.parkReason = ""
	p.hasPending = false
	p.pendingData = nil
	hooks := p.onExit
	p.onExit = nil
	p.mu.Unlock()
	for _, h := range hooks {
		h(err)
	}
}

// --- wait slot -------------------------------------------------------------

// BeginWait arms the process's reusable wait slot. For inline processes k is
// the continuation to run when the wake arrives; goroutine processes pass
// nil and park in Await. Between BeginWait and Await/EndWait the caller
// registers exactly one wake source that will invoke p.Wake — a source may
// also deliver synchronously during registration, in which case the process
// never blocks.
func (p *Process) BeginWait(k func(any)) {
	p.mu.Lock()
	if p.inline && (k == nil) {
		p.mu.Unlock()
		panic("simproc: BeginWait(nil) on an inline process")
	}
	p.waitGen++
	p.waitArmed = true
	p.waitOpen = true
	p.waitDone = false
	p.waitData = nil
	p.cont = k
	// Arming a fresh wait from inside a chained delivery supersedes the
	// chain: the epilogue must not disarm the new wait.
	p.chainOpen = false
	p.mu.Unlock()
}

// Await completes a goroutine process's wait: it parks until the armed wake
// arrives (or returns immediately if it already did) and returns the wake's
// data.
func (p *Process) Await(reason string) any {
	p.mu.Lock()
	p.waitOpen = false
	if p.waitDone {
		data := p.waitData
		p.waitDone = false
		p.waitData = nil
		p.mu.Unlock()
		return data
	}
	p.mu.Unlock()
	return p.park(reason)
}

// EndWait completes an inline process's wait registration: if the wake
// already arrived during registration the continuation runs immediately,
// otherwise the process returns to the engine and the continuation runs when
// Wake is called.
func (p *Process) EndWait(reason string) {
	p.mu.Lock()
	p.waitOpen = false
	if p.waitDone {
		p.waitDone = false
		data := p.waitData
		p.waitData = nil
		k := p.cont
		p.cont = nil
		p.mu.Unlock()
		k(data)
		return
	}
	if p.waitArmed {
		p.parkReason = reason
	}
	p.mu.Unlock()
}

// Wake delivers data to the process's currently armed wait. It is the single
// wake entry every audited source uses; each armed wait must be woken
// exactly once. Wakes addressed to a terminated process, or arriving with no
// wait armed (a stale timer), are discarded. A wake delivered while the
// process is stopped (SIGTSTP) is held and re-delivered on SIGCONT.
func (p *Process) Wake(data any) {
	p.deliver(data, false)
}

// WakeChained delivers like Wake but, on an inline process, keeps the wait
// slot armed while the continuation runs: a continuation that immediately
// re-arms — simgpu's ExecThen issuing the next kernel of a self-loop — does
// so in place through ChainWait, skipping the disarm/re-arm round trip of a
// Wake-then-BeginWait cycle. A continuation that returns without chaining
// (and without arming a different wait or exiting) leaves the slot exactly
// as Wake would have: disarmed. All other semantics — discarding wakes to
// dead processes or unarmed slots, recording synchronous deliveries,
// deferring under SIGTSTP, resuming goroutine processes — are Wake's.
func (p *Process) WakeChained(data any) {
	p.deliver(data, true)
}

// deliver is the single wake-delivery body behind Wake and WakeChained; the
// two differ only in how an inline continuation's slot is handled (disarm
// before invoking vs keep armed for ChainWait).
func (p *Process) deliver(data any, chained bool) {
	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		p.mu.Unlock()
		return
	}
	if !p.waitArmed || p.chainOpen {
		// No wait armed — or the armed wait's wake is being delivered right
		// now (chained delivery in flight): either way this wake is stale.
		p.mu.Unlock()
		return
	}
	if p.waitOpen {
		// Synchronous delivery during registration: recorded, consumed by
		// Await/EndWait without blocking. Stop does not defer this case —
		// the process is executing and will observe the stop at its next
		// real blocking boundary, exactly like the goroutine shell.
		p.waitDone = true
		p.waitData = data
		p.waitArmed = false
		p.mu.Unlock()
		return
	}
	if p.stopped {
		// SIGTSTP semantics: the wake condition (kernel completion, timer)
		// has happened, but the process must not run until SIGCONT.
		p.pendingData = data
		p.hasPending = true
		p.mu.Unlock()
		return
	}
	if !p.inline || !chained {
		p.waitArmed = false
		p.parkReason = ""
		k := p.cont
		p.cont = nil
		p.mu.Unlock()
		if p.inline {
			k(data)
			return
		}
		p.resume(resumeMsg{data: data})
		return
	}
	k := p.cont
	p.chainOpen = true
	p.mu.Unlock()
	k(data)
	p.mu.Lock()
	if p.chainOpen {
		// The continuation neither chained nor armed a new wait: settle the
		// slot to the disarmed state a plain Wake leaves behind.
		p.chainOpen = false
		p.waitArmed = false
		p.cont = nil
		p.parkReason = ""
	}
	p.mu.Unlock()
}

// ChainWait re-arms the wait slot from inside a chained wake delivery
// (WakeChained), reporting whether it did: true means the caller is the
// delivery's continuation and the still-armed slot now carries k — the
// fused, allocation- and churn-free equivalent of BeginWait+EndWait for the
// self-loop shape. False means no chained delivery is in flight and the
// caller must arm normally.
func (p *Process) ChainWait(reason string, k func(any)) bool {
	p.mu.Lock()
	if !p.chainOpen {
		p.mu.Unlock()
		return false
	}
	p.chainOpen = false
	p.waitGen++
	p.cont = k
	p.parkReason = reason
	p.mu.Unlock()
	return true
}

// --- goroutine park/resume (futex handshake) -------------------------------

// park blocks the process goroutine until a wake deposit arrives. Must only
// be called from the process's own goroutine. Returns the wake payload.
func (p *Process) park(reason string) any {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		panic(killedPanic{p})
	}
	p.parked = true
	p.parkReason = reason
	p.mu.Unlock()

	// Publish the park; release the engine side if it is blocked awaiting
	// it. The Swap plus the conditional send is the whole "I am parked"
	// half of the handshake — no channel operation when nobody waits.
	if p.hs.Swap(hsParked) == hsEngWait {
		p.engGate <- struct{}{}
	}
	<-p.procGate // semaphore park until a wake is deposited
	msg := p.wakeMsg
	p.wakeMsg = resumeMsg{}

	p.mu.Lock()
	p.parked = false
	p.parkReason = ""
	p.mu.Unlock()

	if msg.kill {
		panic(killedPanic{p})
	}
	return msg.data
}

// resume wakes a parked goroutine process and waits until it parks again or
// exits. Must be called from engine-callback context (never from the
// process's own goroutine).
func (p *Process) resume(msg resumeMsg) {
	// Early-out for terminated processes BEFORE taking resumeMu: exit hooks
	// may trigger wake callbacks for the dying process from its own
	// goroutine (e.g. aborting its in-flight kernels) while the killer's
	// resume still holds resumeMu waiting for the final park signal.
	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	p.resumeMu.Lock()
	defer p.resumeMu.Unlock()

	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	// Claim the parked token. Under the virtual engine the process is
	// always fully parked by the time a wake fires; the spin only triggers
	// under the wall engine when a waker races the final instructions of
	// park's publish.
	for !p.hs.CompareAndSwap(hsParked, hsRun) {
		if p.hs.Load() == hsDead {
			return
		}
		runtime.Gosched()
	}
	p.wakeMsg = msg
	p.procGate <- struct{}{}
	p.waitForPark()
}

// waitForPark blocks the engine side until the process parks (or exits).
// The fast path is a single failed CAS when the park already happened.
func (p *Process) waitForPark() {
	if p.hs.CompareAndSwap(hsRun, hsEngWait) {
		<-p.engGate
	}
}

// --- signals (see signal.go for Signal) ------------------------------------

// deliverPending re-delivers a wake deferred by SIGTSTP (engine context).
func (p *Process) deliverPending() {
	p.mu.Lock()
	if !p.hasPending {
		p.mu.Unlock()
		return
	}
	data := p.pendingData
	p.hasPending = false
	p.pendingData = nil
	p.waitArmed = false
	p.parkReason = ""
	k := p.cont
	p.cont = nil
	p.mu.Unlock()
	if p.inline {
		k(data)
		return
	}
	p.resume(resumeMsg{data: data})
}

// --- blocking primitives ---------------------------------------------------

// Sleep parks the process for d of engine time. Zero and negative values
// yield (re-enter the event queue at the current instant).
func (p *Process) Sleep(d time.Duration) {
	p.BeginWait(nil)
	simtime.Detached(p.rt.eng, d, p.wakeName, p.wakeFn)
	p.Await("sleep")
}

// SleepThen is the inline form of Sleep: k runs after d of engine time.
func (p *Process) SleepThen(d time.Duration, k func(any)) {
	p.BeginWait(k)
	simtime.Detached(p.rt.eng, d, p.wakeName, p.wakeFn)
	p.EndWait("sleep")
}

// WaitEvent arms the wait slot, hands the slot's wake function to setup for
// registration, and parks until some engine callback invokes it. The wake
// function must be called exactly once: either synchronously inside setup
// (in which case the process never parks and the data is returned directly)
// or later from engine-callback context. The value passed to wake is
// returned.
func (p *Process) WaitEvent(reason string, setup func(wake func(data any))) any {
	p.BeginWait(nil)
	setup(p.wakeAny)
	return p.Await(reason)
}

// WaitEventThen is the inline form of WaitEvent: k receives the wake's data.
func (p *Process) WaitEventThen(reason string, setup func(wake func(data any)), k func(any)) {
	p.BeginWait(k)
	setup(p.wakeAny)
	p.EndWait(reason)
}

// Yield parks and immediately reschedules the process at the current
// instant, letting other same-time events run first.
func (p *Process) Yield() { p.Sleep(0) }
