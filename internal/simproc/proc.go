// Package simproc implements simulated OS processes on top of a
// simtime.Engine. A Process runs user code on its own goroutine but hands
// control back to the engine whenever it blocks (sleep, GPU kernel, RPC
// wait), so that under the virtual engine exactly one piece of code runs at
// a time and virtual time only advances while every process is parked.
//
// Processes support the three signals FreeRide's worker uses (paper §4.2,
// §4.5): Stop (SIGTSTP) and Cont (SIGCONT) for the imperative interface's
// transparent pause/resume, and Kill (SIGKILL) for the framework-enforced
// resource limit. Signal semantics deliberately mirror the CUDA reality the
// paper describes: stopping a process does not abort work already submitted
// to the GPU — only the *next* blocking boundary is affected — whereas
// killing a process destroys it (and its GPU context, via the exit hooks).
package simproc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"freeride/internal/simtime"
)

// State describes a process's lifecycle state.
type State int

// Process lifecycle states.
const (
	StateRunning State = iota + 1 // live: executing or parked, schedulable
	StateStopped                  // live but suspended by Stop (SIGTSTP)
	StateExited                   // terminated normally or by error
	StateKilled                   // terminated by Kill
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateExited:
		return "exited"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrKilled is the exit error of a killed process.
var ErrKilled = errors.New("simproc: killed")

// killedPanic unwinds a killed process's goroutine; defers still run, but
// further blocking calls re-panic immediately so cleanup cannot stall.
type killedPanic struct{ p *Process }

// resumeMsg wakes a parked process.
type resumeMsg struct {
	kill bool
	data any
}

// Runtime creates and tracks processes on one engine.
type Runtime struct {
	eng simtime.Engine

	mu    sync.Mutex
	procs map[*Process]struct{}
	seq   int
}

// NewRuntime returns a process runtime bound to eng.
func NewRuntime(eng simtime.Engine) *Runtime {
	return &Runtime{eng: eng, procs: make(map[*Process]struct{})}
}

// Engine returns the engine the runtime schedules on.
func (rt *Runtime) Engine() simtime.Engine { return rt.eng }

// Live returns the processes that have not terminated yet.
func (rt *Runtime) Live() []*Process {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Process, 0, len(rt.procs))
	for p := range rt.procs {
		if st := p.State(); st == StateRunning || st == StateStopped {
			out = append(out, p)
		}
	}
	return out
}

// Process is one simulated process. Body code must interact with time only
// through the process's blocking primitives.
type Process struct {
	rt   *Runtime
	name string
	// wakeName/wakeFn are the precomputed sleep-event label and callback:
	// Sleep is the hottest schedule site in the simulator and must not
	// allocate per call.
	wakeName string
	wakeFn   func()
	id       int

	// handshake channels; see park/resume.
	resumeCh chan resumeMsg
	parkedCh chan struct{}

	mu          sync.Mutex
	state       State
	exitErr     error
	parked      bool
	parkReason  string
	killed      bool
	stopped     bool
	// pendingWake holds a wake deferred while stopped. Stored by value:
	// taking a pointer to resume's msg argument would force a heap
	// allocation on every resume, the hottest call in the runtime.
	pendingWake    resumeMsg
	hasPendingWake bool
	onExit      []func(err error)
	// resumeMu serializes resume handshakes from multiple wakers (wall mode).
	resumeMu sync.Mutex
}

// Spawn starts fn as a new process. fn begins executing at engine-time
// Now() (as a scheduled event). The returned Process can be signaled and
// observed immediately.
func (rt *Runtime) Spawn(name string, fn func(p *Process) error) *Process {
	rt.mu.Lock()
	rt.seq++
	p := &Process{
		rt:   rt,
		name: fmt.Sprintf("%s#%d", name, rt.seq),
		id:   rt.seq,
		// Both handshake channels have capacity 1: resumeMu guarantees at
		// most one resume in flight and parks strictly alternate with
		// resumes, so deposits never block and the waker needs no select —
		// a measurable saving on the two rendezvous per blocking primitive.
		resumeCh: make(chan resumeMsg, 1),
		parkedCh: make(chan struct{}, 1),
		state:    StateRunning,
	}
	p.wakeName = "wake:" + p.name
	p.wakeFn = func() { p.resume(resumeMsg{}) }
	rt.procs[p] = struct{}{}
	rt.mu.Unlock()

	simtime.Detached(rt.eng, 0, "spawn:"+p.name, func() {
		go p.run(fn)
		<-p.parkedCh // wait until the body parks or exits
	})
	return p
}

// run executes the process body with kill-unwinding and exit bookkeeping.
func (p *Process) run(fn func(p *Process) error) {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if kp, ok := r.(killedPanic); ok && kp.p == p {
					err = ErrKilled
					return
				}
				err = fmt.Errorf("simproc: process %s panicked: %v", p.name, r)
			}
		}()
		err = fn(p)
	}()

	p.mu.Lock()
	if errors.Is(err, ErrKilled) {
		p.state = StateKilled
	} else {
		p.state = StateExited
	}
	p.exitErr = err
	hooks := p.onExit
	p.onExit = nil
	p.mu.Unlock()

	for _, h := range hooks {
		h(err)
	}
	// Final park signal releases whoever resumed us last, then the channel
	// closes so any future resume handshakes complete immediately.
	close(p.parkedCh)
}

// Name reports the unique process name.
func (p *Process) Name() string { return p.name }

// ID reports the runtime-unique numeric id (a simulated PID).
func (p *Process) ID() int { return p.id }

// Runtime returns the owning runtime.
func (p *Process) Runtime() *Runtime { return p.rt }

// Engine returns the engine the process runs on.
func (p *Process) Engine() simtime.Engine { return p.rt.eng }

// Now reports the current engine time.
func (p *Process) Now() time.Duration { return p.rt.eng.Now() }

// State reports the process state.
func (p *Process) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// ExitErr reports the body's return value (or ErrKilled) once terminated.
func (p *Process) ExitErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitErr
}

// Alive reports whether the process has not terminated.
func (p *Process) Alive() bool {
	st := p.State()
	return st == StateRunning || st == StateStopped
}

// ParkReason reports what the process is blocked on, for debugging.
func (p *Process) ParkReason() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parkReason
}

// OnExit registers a hook called (in process context, after the body
// returns) when the process terminates. If the process has already
// terminated the hook runs immediately.
func (p *Process) OnExit(h func(err error)) {
	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		err := p.exitErr
		p.mu.Unlock()
		h(err)
		return
	}
	p.onExit = append(p.onExit, h)
	p.mu.Unlock()
}

// park blocks the process goroutine until a resume arrives. Must only be
// called from the process's own goroutine. Returns the resume payload.
func (p *Process) park(reason string) any {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		panic(killedPanic{p})
	}
	p.parked = true
	p.parkReason = reason
	p.mu.Unlock()

	p.parkedCh <- struct{}{} // hand control back to the engine side
	msg := <-p.resumeCh

	p.mu.Lock()
	p.parked = false
	p.parkReason = ""
	p.mu.Unlock()

	if msg.kill {
		panic(killedPanic{p})
	}
	return msg.data
}

// resume wakes a parked process and waits until it parks again or exits.
// Must be called from engine-callback context (never from the process's own
// goroutine). If the process is stopped, the wake is deferred until Cont —
// unless it is a kill, which always delivers.
func (p *Process) resume(msg resumeMsg) {
	// Early-out for terminated processes BEFORE taking resumeMu: exit hooks
	// may trigger wake callbacks for the dying process from its own
	// goroutine (e.g. aborting its in-flight kernels) while the killer's
	// resume still holds resumeMu waiting for the final park signal.
	p.mu.Lock()
	if p.state == StateExited || p.state == StateKilled {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	p.resumeMu.Lock()
	defer p.resumeMu.Unlock()

	p.mu.Lock()
	st := p.state
	if st == StateExited || st == StateKilled {
		p.mu.Unlock()
		return
	}
	if p.stopped && !msg.kill {
		// SIGTSTP semantics: the wake condition (kernel completion, timer)
		// has happened, but the process must not run until SIGCONT.
		p.pendingWake = msg
		p.hasPendingWake = true
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	// The buffered deposit cannot block: at most one resume is in flight
	// (resumeMu) and the previous one's message was consumed by the park
	// that produced our parked-token. If the process exits instead of
	// parking, the message rots in the buffer and the recv below returns
	// via the channel close.
	p.resumeCh <- msg
	<-p.parkedCh // wait for next park or exit
}

// Sleep parks the process for d of engine time. Zero and negative values
// yield (re-enter the event queue at the current instant).
func (p *Process) Sleep(d time.Duration) {
	simtime.Detached(p.rt.eng, d, p.wakeName, p.wakeFn)
	p.park("sleep")
}

// WaitEvent registers a wake function via setup and parks until some engine
// callback invokes it. The wake function must be called either synchronously
// inside setup (in which case the process never parks and the data is
// returned directly) or later from engine-callback context; extra calls are
// ignored. The value passed to wake is returned.
func (p *Process) WaitEvent(reason string, setup func(wake func(data any))) any {
	var (
		mu        sync.Mutex
		delivered bool
		inSetup   = true
		syncData  any
	)
	wake := func(data any) {
		mu.Lock()
		if delivered {
			mu.Unlock()
			return
		}
		delivered = true
		if inSetup {
			// Called from the process's own goroutine during setup: we
			// cannot resume ourselves; report the value without parking.
			syncData = data
			mu.Unlock()
			return
		}
		mu.Unlock()
		p.resume(resumeMsg{data: data})
	}
	setup(wake)
	mu.Lock()
	inSetup = false
	deliveredSync := delivered
	mu.Unlock()
	if deliveredSync {
		return syncData
	}
	return p.park(reason)
}

// Yield parks and immediately reschedules the process at the current
// instant, letting other same-time events run first.
func (p *Process) Yield() { p.Sleep(0) }
