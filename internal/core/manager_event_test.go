package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/sidetask"
	"freeride/internal/simtime"
)

// managerModes are the two timing-compatible loop drivers; most scenarios
// below run under both and must behave identically.
var managerModes = []ManagerMode{ManagerEventDriven, ManagerPolling}

// TestAdmissionAccountsForMemSlack: Algorithm 1 must admit a task only when
// the worker can honor the MPS limit MemBytes+MemSlack, and must not reject
// on exact equality (the old check was gpuMem <= MemBytes, an off-by-one
// that also ignored the slack entirely).
func TestAdmissionAccountsForMemSlack(t *testing.T) {
	const slack = int64(256 << 20)
	mem := model.ResNet18.MemBytes
	cases := []struct {
		name   string
		gpuMem int64
		slack  int64
		admit  bool
	}{
		{"exact fit, no slack", mem, 0, true},
		{"one byte short, no slack", mem - 1, 0, false},
		{"fits task but not slack", mem + slack - 1, slack, false},
		{"exact fit with slack", mem + slack, slack, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := simtime.NewVirtual()
			mgr := NewManager(eng, ManagerOptions{MemSlack: tc.slack})
			a, _ := freerpc.MemPipe(eng, 0)
			mgr.AddWorker("w0", 0, tc.gpuMem, freerpc.NewPeer(eng, a, nil))
			err := mgr.Submit(spec("t", model.ResNet18, sidetask.ModeIterative))
			if tc.admit && err != nil {
				t.Fatalf("Submit = %v, want admission", err)
			}
			if !tc.admit && !errors.Is(err, ErrRejected) {
				t.Fatalf("Submit = %v, want ErrRejected", err)
			}
		})
	}
}

// TestOutOfOrderBubbleReportsNotStarved: a far-future bubble reported before
// an already-begun one (out-of-order reports, the livemode case) must not
// block the begun bubble at the head of the queue.
func TestOutOfOrderBubbleReportsNotStarved(t *testing.T) {
	for _, mode := range managerModes {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRigOpts(t, 1, []int64{22 * model.GiB}, WorkerConfig{},
				ManagerOptions{Tick: time.Millisecond, Mode: mode})
			if err := r.mgr.Submit(spec("rn18", model.ResNet18, sidetask.ModeIterative)); err != nil {
				t.Fatal(err)
			}
			r.mgr.Start()
			r.eng.RunFor(4 * time.Second) // create + init
			base := r.eng.Now()
			// Reported first: a bubble an hour out. Reported second: one that
			// has effectively begun.
			r.mgr.AddBubble(bubble.Bubble{
				Stage: 0, Start: base + time.Hour, Duration: 500 * time.Millisecond,
				MemAvailable: 22 * model.GiB,
			})
			r.mgr.AddBubble(bubble.Bubble{
				Stage: 0, Start: base + 2*time.Millisecond, Duration: 500 * time.Millisecond,
				MemAvailable: 22 * model.GiB,
			})
			r.eng.RunFor(time.Second)
			if got := r.mgr.Stats().BubblesServed; got != 1 {
				t.Fatalf("BubblesServed = %d, want 1 (begun bubble starved behind future one)", got)
			}
			h, _ := r.workers[0].Harness("rn18")
			if h.Counters().Steps == 0 {
				t.Fatal("no steps ran in the begun bubble")
			}
		})
	}
}

// flakyWorker is a scripted worker-side RPC surface: Create/Init succeed
// (Init pushes the PAUSED transition back like a real worker), Start fails a
// configurable number of times before succeeding, Pause always fails. It
// exercises the manager's RPC error paths without a real task underneath.
type flakyWorker struct {
	mux        *freerpc.Mux
	notify     func(method string, params any)
	initFails  int
	initCalls  int
	startFails int
	startCalls int
	pauseCalls int
}

func newFlakyWorker(startFails int) *flakyWorker {
	f := &flakyWorker{mux: freerpc.NewMux(), startFails: startFails}
	freerpc.HandleFunc(f.mux, "Worker.Create", func(a createArgs) (any, error) {
		return taskStatus{Name: a.Spec.Name, State: int(sidetask.StateCreated)}, nil
	})
	freerpc.HandleFunc(f.mux, "Worker.Init", func(ref taskRef) (any, error) {
		f.initCalls++
		if f.initCalls <= f.initFails {
			return nil, fmt.Errorf("transient init failure %d", f.initCalls)
		}
		f.notify("Manager.TaskState", taskStatus{Name: ref.Name, State: int(sidetask.StatePaused)})
		return taskStatus{Name: ref.Name, State: int(sidetask.StateCreated)}, nil
	})
	freerpc.HandleFunc(f.mux, "Worker.Start", func(a startArgs) (any, error) {
		f.startCalls++
		if f.startCalls <= f.startFails {
			return nil, fmt.Errorf("transient start failure %d", f.startCalls)
		}
		return taskStatus{Name: a.Name, State: int(sidetask.StateRunning), Started: true}, nil
	})
	freerpc.HandleFunc(f.mux, "Worker.Pause", func(ref taskRef) (any, error) {
		f.pauseCalls++
		return nil, errors.New("pause lost")
	})
	freerpc.HandleFunc(f.mux, "Worker.Stop", func(ref taskRef) (any, error) {
		return taskStatus{Name: ref.Name, State: int(sidetask.StateStopped)}, nil
	})
	return f
}

func newFlakyRig(t *testing.T, mode ManagerMode, startFails int) (*simtime.Virtual, *Manager, *flakyWorker) {
	t.Helper()
	eng := simtime.NewVirtual()
	mgr := NewManager(eng, ManagerOptions{Tick: time.Millisecond, Mode: mode})
	mgrSide, workerSide := freerpc.MemPipe(eng, 200*time.Microsecond)
	mgrPeer := freerpc.NewPeer(eng, mgrSide, mgr.Mux())
	f := newFlakyWorker(startFails)
	workerPeer := freerpc.NewPeer(eng, workerSide, f.mux)
	f.notify = func(method string, params any) { _ = workerPeer.Notify(method, params) }
	mgr.AddWorker("w0", 0, 22*model.GiB, mgrPeer)
	return eng, mgr, f
}

// TestFailedStartUnpinsBubbleForRetry: a failed Worker.Start used to leave
// startedForBubble pinned, so the bubble was never retried; the error path
// must clear it and the next pass must retry into the same bubble.
func TestFailedStartUnpinsBubbleForRetry(t *testing.T) {
	for _, mode := range managerModes {
		t.Run(mode.String(), func(t *testing.T) {
			eng, mgr, f := newFlakyRig(t, mode, 2)
			if err := mgr.Submit(spec("task", model.ResNet18, sidetask.ModeIterative)); err != nil {
				t.Fatal(err)
			}
			mgr.Start()
			eng.RunFor(100 * time.Millisecond) // create + init + paused push
			base := eng.Now()
			mgr.AddBubble(bubble.Bubble{
				Stage: 0, Start: base, Duration: 200 * time.Millisecond,
				MemAvailable: 22 * model.GiB,
			})
			eng.RunFor(100 * time.Millisecond)
			if f.startCalls != 3 {
				t.Fatalf("startCalls = %d, want 3 (two failures then success)", f.startCalls)
			}
			if got := mgr.Stats().BubblesServed; got != 1 {
				t.Fatalf("BubblesServed = %d, want 1 after retries", got)
			}
			if tv := mgr.Tasks()[0]; tv.State != sidetask.StateRunning {
				t.Fatalf("task state = %v, want RUNNING", tv.State)
			}
		})
	}
}

// TestFailedInitRetried: a failed Worker.Init used to leave initSent pinned
// with the task stuck in CREATED, starving the worker's queue forever; the
// error path must unpin it so a later pass retries.
func TestFailedInitRetried(t *testing.T) {
	for _, mode := range managerModes {
		t.Run(mode.String(), func(t *testing.T) {
			eng, mgr, f := newFlakyRig(t, mode, 0)
			f.initFails = 2
			if err := mgr.Submit(spec("task", model.ResNet18, sidetask.ModeIterative)); err != nil {
				t.Fatal(err)
			}
			mgr.Start()
			eng.RunFor(100 * time.Millisecond)
			if f.initCalls != 3 {
				t.Fatalf("initCalls = %d, want 3 (two failures then success)", f.initCalls)
			}
			if tv := mgr.Tasks()[0]; tv.State != sidetask.StatePaused {
				t.Fatalf("task state = %v, want PAUSED after init retries", tv.State)
			}
		})
	}
}

// TestFailedPauseCorrectsOptimisticState: pauseLocked records PAUSED
// optimistically; when the pause RPC fails the record must be corrected back
// to RUNNING instead of lying forever.
func TestFailedPauseCorrectsOptimisticState(t *testing.T) {
	for _, mode := range managerModes {
		t.Run(mode.String(), func(t *testing.T) {
			eng, mgr, f := newFlakyRig(t, mode, 0)
			if err := mgr.Submit(spec("task", model.ResNet18, sidetask.ModeIterative)); err != nil {
				t.Fatal(err)
			}
			mgr.Start()
			eng.RunFor(100 * time.Millisecond)
			base := eng.Now()
			mgr.AddBubble(bubble.Bubble{
				Stage: 0, Start: base, Duration: 50 * time.Millisecond,
				MemAvailable: 22 * model.GiB,
			})
			eng.RunFor(200 * time.Millisecond) // bubble ends, pause sent and lost
			if f.pauseCalls == 0 {
				t.Fatal("pause never attempted")
			}
			if tv := mgr.Tasks()[0]; tv.State != sidetask.StateRunning {
				t.Fatalf("task state = %v after lost pause, want RUNNING (worker truth)", tv.State)
			}
		})
	}
}

// TestEventDrivenSkipsIdleTicks is the tentpole's point: with nothing to do,
// the event-driven manager schedules (nearly) nothing, where the polling
// loop burns an event per Tick per session.
func TestEventDrivenSkipsIdleTicks(t *testing.T) {
	dispatched := func(mode ManagerMode) uint64 {
		eng := simtime.NewVirtual()
		mgr := NewManager(eng, ManagerOptions{Tick: time.Millisecond, Mode: mode})
		a, _ := freerpc.MemPipe(eng, 0)
		mgr.AddWorker("w0", 0, 22*model.GiB, freerpc.NewPeer(eng, a, nil))
		mgr.Start()
		eng.RunFor(10 * time.Second)
		return eng.Dispatched()
	}
	poll := dispatched(ManagerPolling)
	event := dispatched(ManagerEventDriven)
	if poll < 9_000 {
		t.Fatalf("polling dispatched %d events, expected ~10000", poll)
	}
	if event > 10 {
		t.Fatalf("event-driven dispatched %d events over 10 idle seconds, want <=10", event)
	}
}

// TestModesBitIdenticalOnScriptedLifecycle drives a real worker through a
// bubble pattern with odd (non-grid-aligned) offsets under both modes and
// requires identical stats, counters and final state — the core-level
// differential check backing the grid-level oracle in experiments.
func TestModesBitIdenticalOnScriptedLifecycle(t *testing.T) {
	type outcome struct {
		stats  ManagerStats
		steps  uint64
		kernel time.Duration
		state  sidetask.State
		ws     WorkerStats
	}
	run := func(mode ManagerMode) outcome {
		r := newRigOpts(t, 1, []int64{22 * model.GiB}, WorkerConfig{},
			ManagerOptions{Tick: time.Millisecond, Mode: mode})
		if err := r.mgr.Submit(spec("rn18", model.ResNet18, sidetask.ModeIterative)); err != nil {
			t.Fatal(err)
		}
		r.mgr.Start()
		r.eng.RunFor(4 * time.Second)
		base := r.eng.Now()
		// Odd offsets and durations: adoption, pause and expiry instants all
		// land between grid points, plus one bubble too short to survive
		// until its adoption tick and one pair back-to-back.
		script := []struct{ start, dur time.Duration }{
			{700 * time.Microsecond, 437 * time.Millisecond},
			{500 * time.Millisecond, 300 * time.Microsecond}, // expires unseen
			{900 * time.Millisecond, 233100 * time.Microsecond},
			{1133200 * time.Microsecond, 400 * time.Millisecond}, // back-to-back
			{3 * time.Second, 512300 * time.Microsecond},
		}
		for _, b := range script {
			r.mgr.AddBubble(bubble.Bubble{
				Stage: 0, Start: base + b.start, Duration: b.dur,
				MemAvailable: 22 * model.GiB,
			})
		}
		r.eng.RunFor(5 * time.Second)
		h, ok := r.workers[0].Harness("rn18")
		if !ok {
			t.Fatal("task missing")
		}
		c := h.Counters()
		return outcome{
			stats:  r.mgr.Stats(),
			steps:  c.Steps,
			kernel: c.KernelTime,
			state:  h.State(),
			ws:     r.workers[0].Stats(),
		}
	}
	poll := run(ManagerPolling)
	event := run(ManagerEventDriven)
	if poll != event {
		t.Fatalf("modes diverged:\npolling: %+v\nevent:   %+v", poll, event)
	}
	if poll.stats.BubblesServed == 0 || poll.steps == 0 {
		t.Fatalf("scenario inert: %+v", poll)
	}
}

// TestImmediateModeServesBubbles: the unquantized mode is not required to be
// timing-compatible, but it must serve the same lifecycle.
func TestImmediateModeServesBubbles(t *testing.T) {
	r := newRigOpts(t, 1, []int64{22 * model.GiB}, WorkerConfig{},
		ManagerOptions{Tick: time.Millisecond, Mode: ManagerImmediate})
	if err := r.mgr.Submit(spec("rn18", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(4 * time.Second)
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{
		Stage: 0, Start: base + 100*time.Millisecond, Duration: 500 * time.Millisecond,
		MemAvailable: 22 * model.GiB,
	})
	r.eng.RunFor(time.Second)
	h, _ := r.workers[0].Harness("rn18")
	if h.Counters().Steps == 0 || r.mgr.Stats().BubblesServed != 1 {
		t.Fatalf("immediate mode served nothing: steps=%d stats=%+v",
			h.Counters().Steps, r.mgr.Stats())
	}
	if got := h.State(); got != sidetask.StatePaused {
		t.Fatalf("state after bubble = %v, want PAUSED", got)
	}
}
