// Package core is FreeRide's control plane — the paper's primary
// contribution: the side task manager implementing the placement algorithm
// (Alg. 1) and the bubble-serving loop (Alg. 2), and the per-GPU side task
// workers that own task containers and enforce the GPU resource limits
// (§4.4–4.6). Manager and workers communicate exclusively through freerpc,
// so the same code runs in-process over the in-memory transport (simulation)
// and across machines over TCP (freeride-managerd / freeride-workerd).
package core

import (
	"time"

	"freeride/internal/bubble"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

// TaskSpec is the wire-serializable description of a side task submission:
// the task identity plus the performance characteristics produced by the
// automated profiler (paper step ➌: "submit side task and perf.
// characteristics to side task manager").
type TaskSpec struct {
	// Name is the unique task instance name.
	Name string `json:"name"`
	// Profile carries the profiled characteristics (memory requirement,
	// per-step duration) and the workload identity.
	Profile model.TaskProfile `json:"profile"`
	// Mode selects iterative or imperative (1 or 2).
	Mode sidetask.Mode `json:"mode"`
	// WorkScale selects how much real computation the built-in tasks do.
	WorkScale sidetask.WorkScale `json:"workScale"`
	// Seed makes the task deterministic.
	Seed int64 `json:"seed"`
}

// createArgs asks a worker to create the task process (SUBMITTED→CREATED).
type createArgs struct {
	Spec TaskSpec `json:"spec"`
	// MemLimitBytes is the MPS memory cap the worker must impose.
	MemLimitBytes int64 `json:"memLimitBytes"`
	// Incarnation numbers this deployment of the task: 0 for the original
	// placement, bumped by the manager on every recovery re-placement. The
	// worker echoes it in all pushes/statuses so the manager can discard
	// reports from dead incarnations.
	Incarnation int `json:"incarnation,omitempty"`
	// Ckpt, when non-nil, seeds the task from its last checkpointed
	// progress (restart-from-checkpoint after a worker failure).
	Ckpt *TaskCkpt `json:"ckpt,omitempty"`
}

// TaskCkpt is the manager-recorded checkpoint of a task's completed work:
// the counters reported by the last successful pause. On re-placement the
// new incarnation resumes from here; anything accrued since is lost work.
type TaskCkpt struct {
	Steps        uint64 `json:"steps"`
	KernelTimeNs int64  `json:"kernelTimeNs"`
	HostTimeNs   int64  `json:"hostTimeNs"`
	InsuffNs     int64  `json:"insuffNs"`
}

// taskRef names a task on a worker.
type taskRef struct {
	Name string `json:"name"`
}

// startArgs initiates StartSideTask with the bubble deadline ("it also
// sends the end time of this bubble to the side task", §4.5).
type startArgs struct {
	Name        string `json:"name"`
	BubbleEndNs int64  `json:"bubbleEndNs"`
}

// taskStatus is the worker's report on one task.
type taskStatus struct {
	Name    string `json:"name"`
	State   int    `json:"state"`
	Exited  bool   `json:"exited"`
	ExitErr string `json:"exitErr,omitempty"`
	Started bool   `json:"started,omitempty"`
	// Incarnation echoes createArgs.Incarnation; the manager drops reports
	// whose incarnation is not the current one.
	Incarnation int `json:"incarnation,omitempty"`

	Steps        uint64 `json:"steps"`
	KernelTimeNs int64  `json:"kernelTimeNs"`
	HostTimeNs   int64  `json:"hostTimeNs"`
	InsuffNs     int64  `json:"insuffNs"`
}

// pingReply answers Worker.Ping: a liveness proof plus a status snapshot of
// every deployed task. The statuses double as anti-entropy — a push lost to
// a faulted link is healed by the next ping's snapshot.
type pingReply struct {
	Name  string       `json:"name"`
	Tasks []taskStatus `json:"tasks,omitempty"`
}

// workerInfo describes a worker to the manager.
type workerInfo struct {
	Name     string `json:"name"`
	GPUMem   int64  `json:"gpuMem"`
	NumTasks int    `json:"numTasks"`
}

// BubbleDTO is the wire form of a bubble report from the instrumented
// trainer. It is exported so reporters outside core (the session assembly,
// the live node daemon) send the exact type the manager's handler expects:
// over a MemPipe that makes the report a zero-JSON typed handoff, over TCP
// it marshals to the same JSON as always.
type BubbleDTO struct {
	Stage    int   `json:"stage"`
	Type     int   `json:"type"`
	StartNs  int64 `json:"startNs"`
	DurNs    int64 `json:"durNs"`
	MemAvail int64 `json:"memAvail"`
}

// ToBubbleDTO converts a bubble to its wire form.
func ToBubbleDTO(b bubble.Bubble) BubbleDTO {
	return BubbleDTO{
		Stage:    b.Stage,
		Type:     int(b.Type),
		StartNs:  int64(b.Start),
		DurNs:    int64(b.Duration),
		MemAvail: b.MemAvailable,
	}
}

// FromBubbleDTO converts a wire bubble back to the domain type.
func FromBubbleDTO(d BubbleDTO) bubble.Bubble {
	return bubble.Bubble{
		Stage:        d.Stage,
		Type:         bubble.Type(d.Type),
		Start:        time.Duration(d.StartNs),
		Duration:     time.Duration(d.DurNs),
		MemAvailable: d.MemAvail,
	}
}

// StageUpdateDTO is one stage's entry in a pushed profile update: the
// re-measured per-epoch bubble supply (and how many reports carry it), plus
// optionally the re-measured side-task-available memory.
type StageUpdateDTO struct {
	Stage    int   `json:"stage"`
	BubbleNs int64 `json:"bubbleNs"`
	Reports  int   `json:"reports"`
	MemAvail int64 `json:"memAvail,omitempty"`
}

// ProfileUpdateDTO is the wire form of an online re-profile push
// ("Manager.ProfileUpdate"): an external profiling pass re-measured the
// pipeline and the manager should re-base its estimators and re-plan. The
// simulated sessions learn the same facts from the report stream; this DTO
// is the live-mode / operator path.
type ProfileUpdateDTO struct {
	Stages []StageUpdateDTO `json:"stages"`
}
