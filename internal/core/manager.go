package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/freerpc"
	"freeride/internal/sidetask"
	"freeride/internal/simtime"
)

// ErrRejected is returned when no worker has enough GPU memory for a task
// (paper Alg. 1 line 13, RejectSideTask).
var ErrRejected = errors.New("core: side task rejected: no worker with enough GPU memory")

// ManagerOptions tune the side task manager.
type ManagerOptions struct {
	// Tick is the Alg. 2 loop period.
	Tick time.Duration
	// RPCTimeout bounds every manager→worker call.
	RPCTimeout time.Duration
	// MemSlack is added to a task's profiled memory requirement when
	// setting its MPS limit (allocator headroom).
	MemSlack int64
	// MaxQueuePerWorker caps placement per worker (0 = unlimited). The
	// paper's experiments run one task per worker; the cap enables the
	// §8 "co-locating multiple side tasks" extension when raised.
	MaxQueuePerWorker int
}

func (o *ManagerOptions) normalize() {
	if o.Tick <= 0 {
		o.Tick = time.Millisecond
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = time.Second
	}
}

// TaskView is a snapshot of one task's manager-side record.
type TaskView struct {
	Spec        TaskSpec
	Worker      string
	State       sidetask.State
	SubmittedAt time.Duration
	Exited      bool
	ExitErr     string
}

// ManagerStats aggregates control-plane counters for the evaluation.
type ManagerStats struct {
	Submitted      uint64
	Rejected       uint64
	BubblesAdded   uint64
	BubblesExpired uint64
	BubblesServed  uint64
	RPCs           uint64
	// BubbleTimeTotal is the summed duration of all reported bubbles.
	BubbleTimeTotal time.Duration
	// BubbleTimeServed is bubble time during which the worker's current
	// task was started.
	BubbleTimeServed time.Duration
}

// taskRecord is the manager-side task state (cache of the worker's truth).
type taskRecord struct {
	spec        TaskSpec
	workerIdx   int
	state       sidetask.State
	submittedAt time.Duration
	exited      bool
	exitErr     string
	initSent    bool
	// startedForBubble dedupes starts within one bubble.
	startedForBubble *bubble.Bubble
	// servedFrom is when the current bubble's start succeeded.
	servedFrom time.Duration
	serving    bool
}

// workerMeta mirrors the paper's per-worker fields: GPUMem, TaskQueue,
// CurrentTask, CurrentBubble (§4.4).
type workerMeta struct {
	name    string
	peer    *freerpc.Peer
	gpuMem  int64
	stage   int
	queue   []*taskRecord
	current *taskRecord
	bubble  *bubble.Bubble
	pending []bubble.Bubble
	alive   bool
}

func (w *workerMeta) numTasks() int {
	n := len(w.queue)
	if w.current != nil {
		n++
	}
	return n
}

// Manager is the side task manager (paper §3.2, §4.4): it places newly
// submitted tasks on workers (Alg. 1) and serves side tasks during bubbles
// (Alg. 2).
type Manager struct {
	eng  simtime.Engine
	opts ManagerOptions
	mux  *freerpc.Mux

	mu      sync.Mutex
	workers []*workerMeta
	tasks   map[string]*taskRecord
	stats   ManagerStats
	ticker  *simtime.Timer
	// tickFn is the Algorithm-2 loop body, allocated once: the loop
	// re-arms its timer every Tick for the whole training run and must
	// not allocate a fresh closure each pass.
	tickFn  func()
	running bool
}

// NewManager builds a manager. Its RPC methods (bubble reports, task
// submission) are served on Mux().
func NewManager(eng simtime.Engine, opts ManagerOptions) *Manager {
	opts.normalize()
	m := &Manager{
		eng:   eng,
		opts:  opts,
		mux:   freerpc.NewMux(),
		tasks: make(map[string]*taskRecord),
	}
	freerpc.HandleFunc(m.mux, "Manager.AddBubble", func(d BubbleDTO) (any, error) {
		m.AddBubble(FromBubbleDTO(d))
		return nil, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.Submit", func(spec TaskSpec) (any, error) {
		if err := m.Submit(spec); err != nil {
			return nil, err
		}
		return map[string]string{"status": "accepted"}, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.TaskExited", func(st taskStatus) (any, error) {
		m.onTaskExited(st)
		return nil, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.TaskState", func(st taskStatus) (any, error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if rec, ok := m.tasks[st.Name]; ok && !rec.exited {
			rec.state = sidetask.State(st.State)
		}
		return nil, nil
	})
	return m
}

// Mux returns the manager's RPC dispatch table (for attaching peers).
func (m *Manager) Mux() *freerpc.Mux { return m.mux }

// AddWorker registers a worker reachable through peer, serving the GPU of
// the given pipeline stage with the given side-task-available memory. If
// the connection drops, the worker is marked dead: its queued and current
// tasks are recorded as stopped, future placements skip it, and Algorithm 2
// no longer serves its bubbles — training itself is never affected (the
// control plane is off the training path).
func (m *Manager) AddWorker(name string, stage int, gpuMem int64, peer *freerpc.Peer) {
	w := &workerMeta{
		name: name, peer: peer, gpuMem: gpuMem, stage: stage, alive: true,
	}
	m.mu.Lock()
	m.workers = append(m.workers, w)
	m.mu.Unlock()
	peer.Conn().OnClose(func() { m.workerLost(w) })
}

// workerLost marks a disconnected worker dead and retires its tasks.
func (m *Manager) workerLost(w *workerMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !w.alive {
		return
	}
	w.alive = false
	retire := func(rec *taskRecord) {
		if rec == nil || rec.exited {
			return
		}
		rec.exited = true
		rec.exitErr = "worker lost"
		rec.state = sidetask.StateStopped
	}
	retire(w.current)
	for _, rec := range w.queue {
		retire(rec)
	}
	w.current = nil
	w.queue = nil
	w.bubble = nil
	w.pending = nil
}

// WorkerCount reports the number of registered workers.
func (m *Manager) WorkerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Tasks snapshots all task records.
func (m *Manager) Tasks() []TaskView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TaskView, 0, len(m.tasks))
	for _, r := range m.tasks {
		out = append(out, TaskView{
			Spec:        r.spec,
			Worker:      m.workers[r.workerIdx].name,
			State:       r.state,
			SubmittedAt: r.submittedAt,
			Exited:      r.exited,
			ExitErr:     r.exitErr,
		})
	}
	return out
}

// Submit places a new side task (paper Algorithm 1): among workers with
// enough available GPU memory, pick the one with the fewest tasks; reject
// if none qualifies.
func (m *Manager) Submit(spec TaskSpec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tasks[spec.Name]; dup {
		return fmt.Errorf("core: duplicate task name %q", spec.Name)
	}
	m.stats.Submitted++

	minTasks := int(^uint(0) >> 1)
	selected := -1
	for i, w := range m.workers {
		if !w.alive || w.gpuMem <= spec.Profile.MemBytes {
			continue
		}
		if m.opts.MaxQueuePerWorker > 0 && w.numTasks() >= m.opts.MaxQueuePerWorker {
			continue
		}
		if n := w.numTasks(); n < minTasks {
			minTasks = n
			selected = i
		}
	}
	if selected < 0 {
		m.stats.Rejected++
		return ErrRejected
	}

	rec := &taskRecord{
		spec:        spec,
		workerIdx:   selected,
		state:       sidetask.StateSubmitted,
		submittedAt: m.eng.Now(),
	}
	m.tasks[spec.Name] = rec
	w := m.workers[selected]
	w.queue = append(w.queue, rec)

	// SUBMITTED→CREATED happens on the worker.
	m.stats.RPCs++
	w.peer.Go("Worker.Create", createArgs{
		Spec:          spec,
		MemLimitBytes: spec.Profile.MemBytes + m.opts.MemSlack,
	}, m.opts.RPCTimeout, func(result any, err error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if err != nil {
			rec.exited = true
			rec.exitErr = err.Error()
			rec.state = sidetask.StateStopped
			return
		}
		if rec.state == sidetask.StateSubmitted {
			rec.state = sidetask.StateCreated
		}
	})
	return nil
}

// SubmitAndPlace is Submit plus the chosen worker's name, for logs/tests.
func (m *Manager) SubmitAndPlace(spec TaskSpec) (string, error) {
	if err := m.Submit(spec); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers[m.tasks[spec.Name].workerIdx].name, nil
}

// AddBubble queues a bubble report for the worker serving its stage
// (step ➎: "add bubbles from pipeline training system to side task
// manager").
func (m *Manager) AddBubble(b bubble.Bubble) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.BubblesAdded++
	m.stats.BubbleTimeTotal += b.Duration
	for _, w := range m.workers {
		if w.stage == b.Stage {
			w.pending = append(w.pending, b)
			return
		}
	}
	// No worker for this stage: the bubble goes unharvested.
}

// Start begins the Algorithm-2 loop.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.mu.Unlock()
	m.scheduleTick()
}

// Stop halts the loop (tasks keep their current state).
func (m *Manager) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	if m.ticker != nil {
		m.ticker.Cancel()
		m.ticker = nil
	}
}

func (m *Manager) scheduleTick() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	if m.tickFn == nil {
		m.tickFn = func() {
			m.tick()
			m.scheduleTick()
		}
	}
	// The ticker handle never leaves the manager, so the fired timer is
	// reused instead of allocating one per tick.
	m.ticker = simtime.Reschedule(m.eng, m.ticker, m.opts.Tick, "manager-tick", m.tickFn)
	m.mu.Unlock()
}

// tick is one pass of paper Algorithm 2 over all workers.
func (m *Manager) tick() {
	now := m.eng.Now()
	m.mu.Lock()
	defer m.mu.Unlock()

	for _, w := range m.workers {
		if !w.alive {
			continue
		}
		// Lines 4–8: current bubble ended → pause the current task.
		if w.bubble != nil && now >= w.bubble.End() {
			if w.current != nil && w.current.serving {
				m.accountServedLocked(w.current, w.bubble)
				m.pauseLocked(w, w.current)
			}
			w.bubble = nil
		}
		// Lines 9–10: adopt a newly begun bubble.
		if w.bubble == nil {
			w.bubble = m.nextBubbleLocked(w, now)
		}
		// Lines 11–15: pick the next task if idle.
		if w.current == nil {
			if len(w.queue) == 0 {
				continue
			}
			w.current = w.queue[0]
			w.queue = w.queue[1:]
		}
		cur := w.current
		if cur.exited {
			w.current = nil
			continue
		}
		// Lines 16–17: initialize a created task.
		if cur.state == sidetask.StateCreated && !cur.initSent {
			m.initLocked(w, cur)
			continue
		}
		// Lines 18–19: start a paused task into the current bubble.
		if w.bubble != nil && cur.state == sidetask.StatePaused && cur.startedForBubble != w.bubble {
			m.startLocked(w, cur, w.bubble)
		}
	}
}

// nextBubbleLocked pops the first pending bubble that has begun and not
// ended, dropping expired ones.
func (m *Manager) nextBubbleLocked(w *workerMeta, now time.Duration) *bubble.Bubble {
	for len(w.pending) > 0 {
		b := w.pending[0]
		if now >= b.End() {
			w.pending = w.pending[1:]
			m.stats.BubblesExpired++
			continue
		}
		if b.Start <= now {
			w.pending = w.pending[1:]
			cp := b
			return &cp
		}
		return nil // front bubble is in the future
	}
	return nil
}

func (m *Manager) initLocked(w *workerMeta, rec *taskRecord) {
	rec.initSent = true
	m.stats.RPCs++
	// Completion (the PAUSED transition) is pushed back asynchronously via
	// Manager.TaskState; nothing to poll.
	w.peer.Go("Worker.Init", taskRef{Name: rec.spec.Name}, m.opts.RPCTimeout, nil)
}

func (m *Manager) applyStatusLocked(rec *taskRecord, st taskStatus) {
	if st.Exited {
		rec.exited = true
		rec.exitErr = st.ExitErr
		rec.state = sidetask.StateStopped
		return
	}
	rec.state = sidetask.State(st.State)
}

func (m *Manager) startLocked(w *workerMeta, rec *taskRecord, b *bubble.Bubble) {
	rec.startedForBubble = b
	m.stats.RPCs++
	w.peer.Go("Worker.Start", startArgs{
		Name:        rec.spec.Name,
		BubbleEndNs: int64(b.End()),
	}, m.opts.RPCTimeout, func(result any, err error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if err != nil || result == nil {
			return
		}
		st, derr := freerpc.DecodeResult[taskStatus](result)
		if derr != nil {
			return
		}
		if st.Started {
			rec.state = sidetask.StateRunning
			rec.serving = true
			rec.servedFrom = m.eng.Now()
			m.stats.BubblesServed++
			return
		}
		m.applyStatusLocked(rec, st)
	})
}

func (m *Manager) pauseLocked(w *workerMeta, rec *taskRecord) {
	rec.serving = false
	rec.state = sidetask.StatePaused // optimistic; grace kill corrects it
	m.stats.RPCs++
	w.peer.Go("Worker.Pause", taskRef{Name: rec.spec.Name}, m.opts.RPCTimeout,
		func(result any, err error) {
			if err != nil || result == nil {
				return
			}
			st, derr := freerpc.DecodeResult[taskStatus](result)
			if derr != nil {
				return
			}
			m.mu.Lock()
			defer m.mu.Unlock()
			if st.Exited {
				m.applyStatusLocked(rec, st)
			}
		})
}

func (m *Manager) accountServedLocked(rec *taskRecord, b *bubble.Bubble) {
	if !rec.serving {
		return
	}
	served := b.End() - rec.servedFrom
	if served > b.Duration {
		served = b.Duration
	}
	if served > 0 {
		m.stats.BubbleTimeServed += served
	}
}

// onTaskExited handles the worker's exit notification.
func (m *Manager) onTaskExited(st taskStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.tasks[st.Name]
	if !ok {
		return
	}
	rec.exited = true
	rec.exitErr = st.ExitErr
	rec.state = sidetask.StateStopped
	w := m.workers[rec.workerIdx]
	if w.current == rec {
		w.current = nil
	}
}

// StopAll asks every worker to stop its tasks (end of run).
func (m *Manager) StopAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range m.tasks {
		if rec.exited {
			continue
		}
		w := m.workers[rec.workerIdx]
		m.stats.RPCs++
		w.peer.Go("Worker.Stop", taskRef{Name: rec.spec.Name}, m.opts.RPCTimeout, nil)
	}
}
