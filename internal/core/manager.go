package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/freerpc"
	"freeride/internal/oracle"
	"freeride/internal/profiler"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simtime"
)

// ErrRejected is returned when no worker has enough GPU memory for a task
// (paper Alg. 1 line 13, RejectSideTask).
var ErrRejected = errors.New("core: side task rejected: no worker with enough GPU memory")

// DefaultMemSlack is the allocator headroom added to a task's profiled
// memory requirement when setting its MPS limit. Admission (Alg. 1) and the
// session's eligibility filter must both account for it, or a task admitted
// by the memory filter could receive an MPS limit exceeding the worker's
// available memory.
const DefaultMemSlack = 256 << 20

// Self-healing defaults, used when ManagerOptions.Lease is enabled but the
// companion knobs are zero.
const (
	// DefaultLease is the failure-detector lease: a worker that shows no
	// sign of life for this long is declared dead. Pings go out every
	// Lease/2, so a healthy worker refreshes its lease twice per period.
	DefaultLease = 250 * time.Millisecond
	// DefaultMaxRestarts bounds recovery attempts per task before it parks.
	DefaultMaxRestarts = 3
	// DefaultRetryBackoff is the base re-placement delay; attempt k waits
	// backoff·2^(k-1) plus deterministic jitter.
	DefaultRetryBackoff = 50 * time.Millisecond
)

// AdmitsMem is the Algorithm-1 memory predicate: available GPU memory must
// cover the task's profiled footprint plus the MPS-limit slack. Admission,
// the session's stage-eligibility filter and the Figure-9 OOM accounting
// all share it so they can never disagree.
func AdmitsMem(gpuMem, memBytes, slack int64) bool {
	return gpuMem >= memBytes+slack
}

// ManagerMode selects how the Algorithm-2 loop is driven.
type ManagerMode int

const (
	// ManagerDefault is the zero value: "no explicit choice". It resolves
	// at manager construction to ManagerEventDriven — or to the mode named
	// by the FREERIDE_ORACLE_MANAGER environment variable, which is how the
	// CI oracle matrix re-runs the whole suite under the polling oracle
	// without touching tests that select a mode explicitly (those are
	// differential tests and must keep their chosen arms).
	ManagerDefault ManagerMode = iota
	// ManagerEventDriven (the default) reconciles each worker on
	// control-plane events — bubble reports, task-state pushes, RPC
	// completions — plus two armed deadline timers per worker (current
	// bubble end, front pending bubble start). Deadlines are rounded to the
	// Tick grid the polling loop would have acted on, so every action fires
	// at a timestamp bit-identical to ManagerPolling's. The identity
	// assumes control-plane messages are in flight for less than one Tick
	// (RPC latency < Tick, the shipped configurations); with slower links a
	// report landing exactly on a grid instant may be served one Tick later
	// than the polling loop would — still correct, just not bit-equal.
	// Bubble reports carry a visibleAt stamp that makes even exact-grid
	// collisions match the polling loop; a TaskState push whose delivery
	// lands exactly on a grid instant can still be seen one Tick earlier
	// than the poll would (the reconcile event may sort after the delivery
	// where the tick sorts before). That window has measure zero on the
	// virtual clock — the grid-wide oracle test is the enforced contract.
	ManagerEventDriven
	// ManagerPolling is the literal Algorithm-2 loop: a self-rescheduling
	// tick every Tick of engine time. Kept as the differential-testing
	// oracle for the event-driven mode.
	ManagerPolling
	// ManagerImmediate is event-driven without Tick quantization: actions
	// fire at exact bubble boundaries and event arrival times. Lowest
	// control latency, not timing-compatible with the polling loop.
	ManagerImmediate
)

// String implements fmt.Stringer.
func (m ManagerMode) String() string {
	switch m {
	case ManagerDefault:
		return "default"
	case ManagerEventDriven:
		return "event-driven"
	case ManagerPolling:
		return "polling"
	case ManagerImmediate:
		return "immediate"
	default:
		return fmt.Sprintf("ManagerMode(%d)", int(m))
	}
}

// ParseManagerMode resolves a command-line mode name; it accepts the
// String() forms plus the short aliases "event" and "poll".
func ParseManagerMode(s string) (ManagerMode, error) {
	switch s {
	case "event", "event-driven":
		return ManagerEventDriven, nil
	case "polling", "poll":
		return ManagerPolling, nil
	case "immediate":
		return ManagerImmediate, nil
	default:
		return 0, fmt.Errorf("core: unknown manager mode %q (want event, polling or immediate)", s)
	}
}

// ManagerOptions tune the side task manager.
type ManagerOptions struct {
	// Tick is the Alg. 2 loop period: the polling interval in
	// ManagerPolling mode, the deadline-rounding grid in ManagerEventDriven
	// mode.
	Tick time.Duration
	// Mode selects how the loop is driven; the zero value ManagerDefault
	// resolves to ManagerEventDriven (or the FREERIDE_ORACLE_MANAGER
	// environment override).
	Mode ManagerMode
	// RPCTimeout bounds every manager→worker call.
	RPCTimeout time.Duration
	// MemSlack is added to a task's profiled memory requirement when
	// setting its MPS limit (allocator headroom). Admission requires
	// MemBytes+MemSlack to fit in the worker's available memory.
	MemSlack int64
	// MaxQueuePerWorker caps placement per worker (0 = unlimited). The
	// paper's experiments run one task per worker; the cap enables the
	// §8 "co-locating multiple side tasks" extension when raised.
	MaxQueuePerWorker int
	// Lease enables the self-healing manager: each worker is pinged every
	// Lease/2, and a worker with no sign of life (ping reply, state push,
	// exit report) for a full Lease is declared dead — its tasks are
	// re-placed onto eligible peers with exponential backoff, resuming from
	// their last checkpoint. Zero disables recovery: a lost worker then
	// retires its tasks forever, the pre-lease behaviour.
	Lease time.Duration
	// MaxRestarts bounds recovery attempts per task; once exhausted the
	// task parks instead of thrashing. 0 = DefaultMaxRestarts.
	MaxRestarts int
	// RetryBackoff is the base re-placement delay, doubled per attempt with
	// deterministic jitter. 0 = DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Seed drives the recovery jitter rng. All recovery timing comes from
	// the engine clock plus this seed — never from wall time — so
	// same-seed fault runs are bit-identical. 0 = 1.
	Seed int64
	// Replan arms online re-profiling and re-planning: a per-worker drift
	// detector over the bubble-report stream, and an Algorithm-1 re-plan on
	// detection (demote tasks whose bubbles shrank below their pause-time
	// fit, admit newly-fitting ones). Nil trusts the one-shot profile
	// forever, the paper's behaviour. Arming Replan also arms the recovery
	// machinery (backoff, incarnations, parking) demotions ride on, even
	// without a Lease.
	Replan *ReplanOptions
	// SLO arms the serving workload's latency-aware admission guard (nil
	// leaves Algorithm 2's start rule untouched — the training behaviour).
	SLO *SLOOptions
}

// SLOOptions tune the SLO admission guard of the serving workload: a paused
// side task is started into a bubble only when the bubble's remaining time
// is at least Guard × the task's pause fit (profile step + jitter + host
// overhead). The bubble stream under serving includes the predicted
// inter-batch gaps, so the guard is exactly the paper-style "pause fit vs
// next predicted batch arrival" admission test: Guard 0 admits into any
// open bubble (maximum harvest, maximum overrun risk into mispredicted
// batches), larger factors trade harvested GPU-seconds for fewer SLO
// violations. Guard 0 is a structural identity — every bubble the
// reconcile loop starts tasks into has strictly positive remaining time —
// which the dormant-serving oracle (FREERIDE_ORACLE_SERVING=on) pins
// against the training grid.
type SLOOptions struct {
	Guard float64
}

// ReplanOptions tune the online re-profiling plane.
type ReplanOptions struct {
	// Detector tunes the per-worker EWMA+CUSUM estimator; the zero value
	// selects the bubble-package defaults.
	Detector bubble.DetectorConfig
}

func (o *ManagerOptions) normalize() {
	if o.Tick <= 0 {
		o.Tick = time.Millisecond
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = time.Second
	}
	if o.Mode == ManagerDefault {
		o.Mode = defaultManagerMode()
	}
	if o.Lease > 0 || o.Replan != nil {
		if o.MaxRestarts <= 0 {
			o.MaxRestarts = DefaultMaxRestarts
		}
		if o.RetryBackoff <= 0 {
			o.RetryBackoff = DefaultRetryBackoff
		}
		if o.Seed == 0 {
			o.Seed = 1
		}
	}
}

// defaultManagerMode resolves ManagerDefault: event-driven unless the CI
// oracle matrix forces another mode via FREERIDE_ORACLE_MANAGER. The raw
// value comes from the shared resolver (internal/oracle); the mode enum and
// its validation live here.
var defaultManagerMode = sync.OnceValue(func() ManagerMode {
	if s := oracle.Env().ManagerMode; s != "" {
		m, err := ParseManagerMode(s)
		if err != nil {
			panic(fmt.Sprintf("core: bad FREERIDE_ORACLE_MANAGER: %v", err))
		}
		return m
	}
	return ManagerEventDriven
})

// TaskView is a snapshot of one task's manager-side record.
type TaskView struct {
	Spec        TaskSpec
	Worker      string
	State       sidetask.State
	SubmittedAt time.Duration
	Exited      bool
	ExitErr     string
	// Parked means the task's retry budget is exhausted: it is out of
	// service but not counted as a task failure.
	Parked bool
	// Restarts counts recovery attempts consumed so far.
	Restarts int
}

// ManagerStats aggregates control-plane counters for the evaluation.
type ManagerStats struct {
	Submitted      uint64
	Rejected       uint64
	BubblesAdded   uint64
	BubblesExpired uint64
	BubblesServed  uint64
	RPCs           uint64
	// BubbleTimeTotal is the summed duration of all reported bubbles.
	BubbleTimeTotal time.Duration
	// BubbleTimeServed is bubble time during which the worker's current
	// task was started.
	BubbleTimeServed time.Duration

	// Recovery counters (lease-enabled managers only; all zero otherwise).
	// Pings counts Worker.Ping probes sent — deliberately separate from
	// RPCs, which the zero-fault oracle pins against the lease-free runs.
	Pings uint64
	// WorkersLost counts workers declared dead (link closed or lease
	// expired).
	WorkersLost uint64
	// RestartedTasks counts distinct tasks restarted at least once.
	RestartedTasks uint64
	// Replacements counts successful re-placements in total.
	Replacements uint64
	// ParkedTasks counts tasks whose retry budget exhausted.
	ParkedTasks uint64
	// LostWork sums served bubble time lost between the last checkpoint and
	// each worker death or drift demotion — the work a restart could not
	// recover.
	LostWork time.Duration

	// Drift counters (replan-armed managers only; all zero otherwise, and
	// all zero under a zero-drift schedule — the drift oracle pins that).
	// DriftEvents counts detector firings across workers; Replans counts
	// re-plan passes (every detection plus every pushed profile update);
	// Demotions counts tasks pulled off a worker because the online profile
	// no longer fits them; Revivals counts parked tasks re-admitted after
	// the profile grew back; StaleAdmissions counts placement attempts the
	// stale one-shot profile would have accepted but the online profile
	// rejected — the bad admissions re-planning avoided.
	DriftEvents     uint64
	Replans         uint64
	Demotions       uint64
	Revivals        uint64
	StaleAdmissions uint64

	// SLODeferred counts task starts the SLO admission guard skipped
	// because the bubble's remaining time fell short of Guard × the task's
	// pause fit (SLO-armed managers only; structurally zero with Guard 0,
	// which the dormant-serving oracle pins).
	SLODeferred uint64
}

// taskRecord is the manager-side task state (cache of the worker's truth).
type taskRecord struct {
	spec        TaskSpec
	workerIdx   int
	state       sidetask.State
	submittedAt time.Duration
	exited      bool
	exitErr     string
	initSent    bool
	// refArgs is the task's taskRef pre-boxed once: Init/Pause/Stop send it
	// on every cycle and must not re-box the struct per call.
	refArgs any
	// startedForBubble dedupes starts within one bubble.
	startedForBubble *bubble.Bubble
	// servedFrom is when the current bubble's start succeeded.
	servedFrom time.Duration
	serving    bool

	// Recovery state. incarnation numbers the task's deployments; reports
	// carrying an older incarnation are discarded. restarts counts recovery
	// attempts against the budget; everRestarted marks the first successful
	// re-placement for the RestartedTasks stat; parked means the budget is
	// gone.
	incarnation   int
	restarts      int
	everRestarted bool
	parked        bool
	// ckpt is the last checkpointed progress (recorded from every
	// acknowledged pause); a new incarnation resumes from it.
	ckpt    TaskCkpt
	hasCkpt bool
	// servedSinceCkpt accrues served bubble time since the last checkpoint
	// — the work a crash loses.
	servedSinceCkpt time.Duration
	// retryTimer drives delayed re-placement (reusable handle).
	retryTimer *simtime.Timer
}

// pendingBubble is one reported-but-unserved bubble. visibleAt is the first
// instant the Algorithm-2 loop could act on the report: the polling loop
// never sees a report before its next tick, so the event-driven manager must
// not adopt one earlier either — even when a reconcile and a report land on
// the same timestamp in either order.
type pendingBubble struct {
	b         bubble.Bubble
	visibleAt time.Duration
}

// workerMeta mirrors the paper's per-worker fields: GPUMem, TaskQueue,
// CurrentTask, CurrentBubble (§4.4).
type workerMeta struct {
	name    string
	peer    *freerpc.Peer
	gpuMem  int64
	stage   int
	queue   []*taskRecord
	current *taskRecord
	bubble  *bubble.Bubble
	// pending is kept ordered by Start (stable on ties) so the front is
	// always the next bubble Algorithm 2 could adopt; out-of-order reports
	// (livemode) no longer let a far-future bubble starve begun ones.
	pending []pendingBubble
	alive   bool

	// Event-driven reconcile state. endTimer fires at the (rounded) end of
	// the current bubble — the pause point; startTimer at the instant the
	// front pending bubble becomes adoptable; kickTimer at the next tick
	// instant after a state push / RPC completion. All three reuse their
	// Timer allocation through simtime.Reschedule and share reconcileFn, so
	// the steady state allocates nothing. The *At fields record each
	// timer's intended instant (valid while it is Pending) so re-arming an
	// unchanged deadline is a no-op on the wall engine too, where
	// Timer.When drifts by the arming latency.
	endTimer    *simtime.Timer
	startTimer  *simtime.Timer
	kickTimer   *simtime.Timer
	endAt       time.Duration
	startAt     time.Duration
	kickAt      time.Duration
	reconcileFn func()
	endName     string
	startName   string
	kickName    string

	// Failure-detector state (lease-enabled managers only). lastSeen is
	// the last instant the worker proved it was alive (ping reply or push);
	// pingTimer fires every Lease/2, leaseTimer at lastSeen+Lease. Both are
	// reusable Reschedule handles with pre-built callbacks.
	lastSeen   time.Duration
	pingTimer  *simtime.Timer
	pingFn     func()
	pingName   string
	leaseTimer *simtime.Timer
	leaseFn    func()
	leaseName  string

	// Online re-profiling state (replan-armed managers only). est is this
	// worker's drift estimator, cached from the manager's profiler
	// registry; gpuMem0 keeps the one-shot profile's memory figure for the
	// stale-admission comparison after gpuMem is re-profiled; lastMem is
	// the most recent bubble report's MemAvailable, folded into gpuMem
	// only at re-plan time (so zero-drift admission arithmetic never moves).
	est     *bubble.Estimator
	gpuMem0 int64
	lastMem int64
}

func (w *workerMeta) numTasks() int {
	n := len(w.queue)
	if w.current != nil {
		n++
	}
	return n
}

// cancelTimersLocked disarms the worker's reconcile timers (handles are kept
// for Reschedule reuse).
func (w *workerMeta) cancelTimersLocked() {
	if w.endTimer != nil {
		w.endTimer.Cancel()
	}
	if w.startTimer != nil {
		w.startTimer.Cancel()
	}
	if w.kickTimer != nil {
		w.kickTimer.Cancel()
	}
	if w.pingTimer != nil {
		w.pingTimer.Cancel()
	}
	if w.leaseTimer != nil {
		w.leaseTimer.Cancel()
	}
}

// Manager is the side task manager (paper §3.2, §4.4): it places newly
// submitted tasks on workers (Alg. 1) and serves side tasks during bubbles
// (Alg. 2).
type Manager struct {
	eng  simtime.Engine
	opts ManagerOptions
	mux  *freerpc.Mux

	// mu rides the engine ownership regime (see simtime.Guard).
	mu      simtime.Guard
	workers []*workerMeta
	tasks   map[string]*taskRecord
	stats   ManagerStats
	// epoch anchors the Tick grid: the polling loop ticks at
	// epoch+k*Tick, and the event-driven mode rounds its deadlines onto
	// the same instants.
	epoch  time.Duration
	ticker *simtime.Timer
	// tickFn is the Algorithm-2 loop body, allocated once: the loop
	// re-arms its timer every Tick for the whole training run and must
	// not allocate a fresh closure each pass.
	tickFn  func()
	running bool
	// rng drives recovery backoff jitter (recovery-armed managers only);
	// seeded from ManagerOptions.Seed so fault runs are reproducible.
	rng *rand.Rand
	// prof is the online bubble-profile registry (replan-armed managers
	// only): one drift estimator per baselined worker, fed from AddBubble.
	prof *profiler.Online
	// taskOrder keeps submission order for re-plan passes: map iteration
	// order is nondeterministic, and revival must be.
	taskOrder []*taskRecord
}

// NewManager builds a manager. Its RPC methods (bubble reports, task
// submission) are served on Mux().
func NewManager(eng simtime.Engine, opts ManagerOptions) *Manager {
	opts.normalize()
	m := &Manager{
		eng:   eng,
		opts:  opts,
		mux:   freerpc.NewMux(),
		tasks: make(map[string]*taskRecord),
	}
	if opts.Lease > 0 || opts.Replan != nil {
		m.rng = rand.New(rand.NewSource(opts.Seed))
	}
	if opts.Replan != nil {
		m.prof = profiler.NewOnline(opts.Replan.Detector)
	}
	m.mu.Bind(eng)
	freerpc.HandleFunc(m.mux, "Manager.AddBubble", func(d BubbleDTO) (any, error) {
		m.AddBubble(FromBubbleDTO(d))
		return nil, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.Submit", func(spec TaskSpec) (any, error) {
		if err := m.Submit(spec); err != nil {
			return nil, err
		}
		return map[string]string{"status": "accepted"}, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.TaskExited", func(st taskStatus) (any, error) {
		m.onTaskExited(st)
		return nil, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.ProfileUpdate", func(d ProfileUpdateDTO) (any, error) {
		m.ProfileUpdate(d)
		return nil, nil
	})
	freerpc.HandleFunc(m.mux, "Manager.TaskState", func(st taskStatus) (any, error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if rec, ok := m.tasks[st.Name]; ok && !rec.exited && !rec.parked && st.Incarnation == rec.incarnation {
			w := m.workers[rec.workerIdx]
			if m.opts.Lease > 0 {
				w.lastSeen = m.eng.Now()
			}
			rec.state = sidetask.State(st.State)
			m.wakeLocked(w)
		}
		return nil, nil
	})
	return m
}

// Mux returns the manager's RPC dispatch table (for attaching peers).
func (m *Manager) Mux() *freerpc.Mux { return m.mux }

// AddWorker registers a worker reachable through peer, serving the GPU of
// the given pipeline stage with the given side-task-available memory. If
// the connection drops, the worker is marked dead: its queued and current
// tasks are recorded as stopped, future placements skip it, and Algorithm 2
// no longer serves its bubbles — training itself is never affected (the
// control plane is off the training path).
func (m *Manager) AddWorker(name string, stage int, gpuMem int64, peer *freerpc.Peer) {
	w := &workerMeta{
		name: name, peer: peer, gpuMem: gpuMem, stage: stage, alive: true,
		gpuMem0: gpuMem, lastMem: gpuMem,
		endName:   "manager-bubble-end:" + name,
		startName: "manager-bubble-start:" + name,
		kickName:  "manager-kick:" + name,
		pingName:  "manager-ping:" + name,
		leaseName: "manager-lease:" + name,
	}
	w.reconcileFn = func() { m.reconcile(w) }
	w.pingFn = func() { m.pingWorker(w) }
	w.leaseFn = func() { m.checkLease(w) }
	m.mu.Lock()
	m.workers = append(m.workers, w)
	// Workers may join a running manager (livemode): fold them into the
	// reconcile schedule as the next tick would have.
	m.wakeLocked(w)
	m.armLeaseLocked(w)
	m.mu.Unlock()
	peer.Conn().OnClose(func() { m.workerLost(w) })
}

// workerLost handles a closed worker link: the worker is declared dead.
func (m *Manager) workerLost(w *workerMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workerLostLocked(w, "worker lost")
}

// workerLostLocked declares a worker dead — shared by the link-close path
// and the lease-expiry path. With recovery disabled (Lease == 0) its tasks
// are retired forever, the pre-lease behaviour; with a lease configured
// each orphaned task enters the backoff/re-place cycle.
func (m *Manager) workerLostLocked(w *workerMeta, cause string) {
	if !w.alive {
		return
	}
	w.alive = false
	if m.running {
		m.stats.WorkersLost++
	}
	orphans := make([]*taskRecord, 0, w.numTasks())
	if w.current != nil {
		orphans = append(orphans, w.current)
	}
	orphans = append(orphans, w.queue...)
	w.current = nil
	w.queue = nil
	w.bubble = nil
	w.pending = nil
	w.cancelTimersLocked()
	for _, rec := range orphans {
		if rec.exited || rec.parked {
			continue
		}
		if m.opts.Lease <= 0 || !m.running {
			rec.exited = true
			rec.exitErr = cause
			rec.state = sidetask.StateStopped
			continue
		}
		m.planRecoveryLocked(rec, cause)
	}
}

// --- failure detector: leases and pings -----------------------------------

// armLeaseLocked (re)starts w's failure-detector timers: a ping every
// Lease/2 and a lease check at lastSeen+Lease. No-op unless the manager is
// running with a lease configured.
func (m *Manager) armLeaseLocked(w *workerMeta) {
	if m.opts.Lease <= 0 || !m.running || !w.alive {
		return
	}
	w.lastSeen = m.eng.Now()
	w.pingTimer = simtime.Reschedule(m.eng, w.pingTimer, m.opts.Lease/2, w.pingName, w.pingFn)
	w.leaseTimer = simtime.Reschedule(m.eng, w.leaseTimer, m.opts.Lease, w.leaseName, w.leaseFn)
}

// pingWorker probes w for liveness and re-arms the next probe. The reply
// refreshes the lease and doubles as anti-entropy: its status snapshot heals
// state a faulted link dropped.
func (m *Manager) pingWorker(w *workerMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || !w.alive {
		return
	}
	w.pingTimer = simtime.Reschedule(m.eng, w.pingTimer, m.opts.Lease/2, w.pingName, w.pingFn)
	m.stats.Pings++
	w.peer.Go("Worker.Ping", nil, m.opts.Lease/2, func(result any, err error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if err != nil || !w.alive {
			return
		}
		w.lastSeen = m.eng.Now()
		if reply, derr := freerpc.DecodeResult[pingReply](result); derr == nil {
			for _, st := range reply.Tasks {
				m.applyPingStatusLocked(st)
			}
		}
	})
}

// checkLease fires at w's lease deadline: a worker with no sign of life for
// a full Lease is declared dead; otherwise the check re-arms at the instant
// the refreshed lease would expire.
func (m *Manager) checkLease(w *workerMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || !w.alive || m.opts.Lease <= 0 {
		return
	}
	now := m.eng.Now()
	if now-w.lastSeen >= m.opts.Lease {
		m.workerLostLocked(w, "lease expired")
		return
	}
	w.leaseTimer = simtime.Reschedule(m.eng, w.leaseTimer, w.lastSeen+m.opts.Lease-now, w.leaseName, w.leaseFn)
}

// applyPingStatusLocked folds one ping-reply status into the manager's
// record. Anti-entropy is forward-only: per-link FIFO delivery means a state
// push always arrives no later than a ping reply sampling the same
// transition, so in fault-free runs the snapshot can never be newer than the
// record — only transitions a lost push would have carried are applied (an
// exit, or the init-completion PAUSED the manager has not yet seen). A stale
// reply can therefore never regress an optimistic record.
func (m *Manager) applyPingStatusLocked(st taskStatus) {
	rec, ok := m.tasks[st.Name]
	if !ok || rec.exited || rec.parked || st.Incarnation != rec.incarnation {
		return
	}
	if st.Exited {
		m.taskExitedLocked(rec, st)
		m.wakeLocked(m.workers[rec.workerIdx])
		return
	}
	if sidetask.State(st.State) == sidetask.StatePaused && rec.state == sidetask.StateCreated {
		rec.state = sidetask.StatePaused
		m.wakeLocked(m.workers[rec.workerIdx])
	}
}

// --- recovery: backoff, re-placement, checkpoints -------------------------

// planRecoveryLocked moves rec into the backoff/re-place cycle after its
// deployment died (worker lost, create failure, injected kernel fault). The
// attempt counter is charged here; an exhausted budget parks the task
// instead of thrashing. All timing comes from the engine clock plus the
// seeded rng — never wall time — so same-seed fault runs are bit-identical.
func (m *Manager) planRecoveryLocked(rec *taskRecord, cause string) {
	m.stats.LostWork += rec.servedSinceCkpt
	rec.servedSinceCkpt = 0
	rec.serving = false
	rec.startedForBubble = nil
	rec.initSent = false
	rec.state = sidetask.StateSubmitted
	rec.incarnation++
	rec.restarts++
	if rec.restarts > m.opts.MaxRestarts {
		rec.parked = true
		rec.state = sidetask.StateStopped
		rec.exitErr = cause + " (retry budget exhausted; parked)"
		m.stats.ParkedTasks++
		return
	}
	shift := rec.restarts - 1
	if shift > 16 {
		shift = 16
	}
	backoff := m.opts.RetryBackoff << shift
	delay := backoff + time.Duration(m.rng.Int63n(int64(backoff/2)+1))
	rec.retryTimer = simtime.Reschedule(m.eng, rec.retryTimer, delay,
		"task-retry:"+rec.spec.Name, func() { m.replaceTask(rec) })
}

// replaceTask re-runs Algorithm 1 for a recovering task when its backoff
// expires. No eligible worker re-enters the backoff cycle (consuming another
// attempt) rather than busy-retrying.
func (m *Manager) replaceTask(rec *taskRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replaceTaskLocked(rec)
}

func (m *Manager) replaceTaskLocked(rec *taskRecord) {
	if !m.running || rec.exited || rec.parked || m.placedLocked(rec) {
		return
	}
	selected := m.placeLocked(rec.spec)
	if selected < 0 {
		m.planRecoveryLocked(rec, "no eligible worker")
		return
	}
	rec.workerIdx = selected
	rec.state = sidetask.StateSubmitted
	w := m.workers[selected]
	w.queue = append(w.queue, rec)
	m.stats.Replacements++
	if !rec.everRestarted {
		rec.everRestarted = true
		m.stats.RestartedTasks++
	}
	m.wakeLocked(w)
	m.sendCreateLocked(w, rec)
}

// placedLocked reports whether rec is attached (current or queued) to a live
// worker.
func (m *Manager) placedLocked(rec *taskRecord) bool {
	w := m.workers[rec.workerIdx]
	if !w.alive {
		return false
	}
	if w.current == rec {
		return true
	}
	for _, q := range w.queue {
		if q == rec {
			return true
		}
	}
	return false
}

// detachLocked removes rec from its worker's current/queue slots.
func (m *Manager) detachLocked(rec *taskRecord) {
	w := m.workers[rec.workerIdx]
	if w.current == rec {
		w.current = nil
		return
	}
	for i, q := range w.queue {
		if q == rec {
			w.queue = append(w.queue[:i], w.queue[i+1:]...)
			return
		}
	}
}

// isInfraFault classifies a task exit: only injected infrastructure faults
// are recoverable. Every other exit — clean completion, a task bug, a grace
// kill — is the task's own outcome and stays terminal, which is what keeps
// zero-fault lease-enabled runs bit-identical to the lease-free oracle.
func isInfraFault(exitErr string) bool {
	return strings.Contains(exitErr, simgpu.InjectedFaultMsg)
}

// WorkerCount reports the number of registered workers.
func (m *Manager) WorkerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Tasks snapshots all task records.
func (m *Manager) Tasks() []TaskView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TaskView, 0, len(m.tasks))
	for _, r := range m.tasks {
		out = append(out, TaskView{
			Spec:        r.spec,
			Worker:      m.workers[r.workerIdx].name,
			State:       r.state,
			SubmittedAt: r.submittedAt,
			Exited:      r.exited,
			ExitErr:     r.exitErr,
			Parked:      r.parked,
			Restarts:    r.restarts,
		})
	}
	return out
}

// TaskWorker reports the worker currently hosting the named task; ok is
// false when the task is unknown or detached mid-recovery (backoff, parked).
// Exited tasks report their last host.
func (m *Manager) TaskWorker(name string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.tasks[name]
	if !ok {
		return "", false
	}
	if !rec.exited && !m.placedLocked(rec) {
		return "", false
	}
	return m.workers[rec.workerIdx].name, true
}

// Submit places a new side task (paper Algorithm 1): among workers with
// enough available GPU memory, pick the one with the fewest tasks; reject
// if none qualifies. "Enough" accounts for the MemSlack headroom the MPS
// limit will carry: a worker whose memory merely matches the profiled
// footprint cannot honor the limit MemBytes+MemSlack.
func (m *Manager) Submit(spec TaskSpec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tasks[spec.Name]; dup {
		return fmt.Errorf("core: duplicate task name %q", spec.Name)
	}
	m.stats.Submitted++

	selected := m.placeLocked(spec)
	if selected < 0 {
		m.stats.Rejected++
		return ErrRejected
	}

	rec := &taskRecord{
		spec:        spec,
		workerIdx:   selected,
		state:       sidetask.StateSubmitted,
		submittedAt: m.eng.Now(),
		refArgs:     taskRef{Name: spec.Name},
	}
	m.tasks[spec.Name] = rec
	m.taskOrder = append(m.taskOrder, rec)
	w := m.workers[selected]
	w.queue = append(w.queue, rec)
	m.wakeLocked(w)

	// SUBMITTED→CREATED happens on the worker.
	m.sendCreateLocked(w, rec)
	return nil
}

// placeLocked is the Algorithm-1 selection loop, shared by Submit and
// recovery re-placement: among live workers passing the AdmitsMem predicate
// (and the queue cap), the one with the fewest tasks; -1 if none qualifies.
func (m *Manager) placeLocked(spec TaskSpec) int {
	minTasks := int(^uint(0) >> 1)
	selected := -1
	for i, w := range m.workers {
		if !w.alive {
			continue
		}
		if w.est != nil && w.est.Drifted() {
			// The worker's one-shot profile is stale: admit against the
			// online estimate instead (memory from the report stream, bubble
			// fit from the estimator). Count the placements the stale
			// profile would have made — those are the bad admissions
			// re-planning avoids.
			if !m.fitsOnlineLocked(w, spec) {
				if AdmitsMem(w.gpuMem0, spec.Profile.MemBytes, m.opts.MemSlack) {
					m.stats.StaleAdmissions++
				}
				continue
			}
		} else if !AdmitsMem(w.gpuMem, spec.Profile.MemBytes, m.opts.MemSlack) {
			continue
		}
		if m.opts.MaxQueuePerWorker > 0 && w.numTasks() >= m.opts.MaxQueuePerWorker {
			continue
		}
		if n := w.numTasks(); n < minTasks {
			minTasks = n
			selected = i
		}
	}
	return selected
}

// sendCreateLocked asks w to create rec's current incarnation, carrying the
// last checkpoint on re-placements. A failed create under recovery consumes
// an attempt and re-enters the backoff cycle; with recovery disabled it
// retires the task, the pre-lease behaviour.
func (m *Manager) sendCreateLocked(w *workerMeta, rec *taskRecord) {
	inc := rec.incarnation
	args := createArgs{
		Spec:          rec.spec,
		MemLimitBytes: rec.spec.Profile.MemBytes + m.opts.MemSlack,
		Incarnation:   inc,
	}
	if rec.hasCkpt {
		ck := rec.ckpt
		args.Ckpt = &ck
	}
	m.stats.RPCs++
	w.peer.Go("Worker.Create", args, m.opts.RPCTimeout, func(result any, err error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if rec.incarnation != inc || rec.exited || rec.parked {
			return
		}
		if err != nil {
			if m.recoveryArmed() && m.running {
				m.detachLocked(rec)
				m.planRecoveryLocked(rec, "create failed: "+err.Error())
				return
			}
			rec.exited = true
			rec.exitErr = err.Error()
			rec.state = sidetask.StateStopped
			m.wakeLocked(w)
			return
		}
		if rec.state == sidetask.StateSubmitted {
			rec.state = sidetask.StateCreated
		}
		m.wakeLocked(w)
	})
}

// SubmitAndPlace is Submit plus the chosen worker's name, for logs/tests.
func (m *Manager) SubmitAndPlace(spec TaskSpec) (string, error) {
	if err := m.Submit(spec); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers[m.tasks[spec.Name].workerIdx].name, nil
}

// AddBubble queues a bubble report for the worker serving its stage
// (step ➎: "add bubbles from pipeline training system to side task
// manager"). The report is inserted in Start order and the worker's
// reconcile schedule is updated.
func (m *Manager) AddBubble(b bubble.Bubble) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.BubblesAdded++
	m.stats.BubbleTimeTotal += b.Duration
	for _, w := range m.workers {
		if w.stage != b.Stage {
			continue
		}
		if m.prof != nil {
			// Feed the online profiler. Detection re-plans inline: the
			// report, the detection and the demote/admit decisions all land
			// on the same engine instant, before the drifted bubbles they
			// describe begin (reports precede their bubbles).
			w.lastMem = b.MemAvailable
			if w.est != nil {
				if dir := w.est.Observe(b.Duration); dir != bubble.DriftNone {
					m.stats.DriftEvents++
					m.replanLocked(w)
				}
			}
		}
		pb := pendingBubble{b: b, visibleAt: m.eventInstantLocked(m.eng.Now())}
		i := len(w.pending)
		for i > 0 && w.pending[i-1].b.Start > b.Start {
			i--
		}
		w.pending = append(w.pending, pendingBubble{})
		copy(w.pending[i+1:], w.pending[i:])
		w.pending[i] = pb
		m.wakeLocked(w)
		return
	}
	// No worker for this stage: the bubble goes unharvested.
}

// Start begins serving Algorithm 2: the polling loop in ManagerPolling
// mode, the per-worker reconcile schedule otherwise.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.epoch = m.eng.Now()
	for _, w := range m.workers {
		m.armLeaseLocked(w)
	}
	if m.opts.Mode == ManagerPolling {
		m.mu.Unlock()
		m.scheduleTick()
		return
	}
	// Replicate the first tick for every worker; reconciles cascade from
	// there, driven purely by events and armed deadlines.
	for _, w := range m.workers {
		if w.alive {
			m.kickLocked(w, m.eventInstantLocked(m.epoch))
		}
	}
	m.mu.Unlock()
}

// Stop halts the loop (tasks keep their current state).
func (m *Manager) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	if m.ticker != nil {
		m.ticker.Cancel()
		m.ticker = nil
	}
	for _, w := range m.workers {
		w.cancelTimersLocked()
	}
	for _, rec := range m.tasks {
		if rec.retryTimer != nil {
			rec.retryTimer.Cancel()
		}
	}
}

// --- timing: the Tick grid ------------------------------------------------
//
// The polling loop acts at epoch+k*Tick, k ≥ 1, and an event processed at
// engine-time t is first seen by the tick strictly after t (a tick sharing
// t's timestamp was enqueued a full period earlier, so it runs first and
// misses the event). The event-driven mode rounds every wake-up onto those
// same instants, which is what keeps its timing bit-identical to the
// polling oracle.

// eventInstantLocked reports the first instant the loop may act on an event
// processed at engine-time t.
func (m *Manager) eventInstantLocked(t time.Duration) time.Duration {
	if m.opts.Mode != ManagerEventDriven {
		return t
	}
	if t < m.epoch {
		t = m.epoch
	}
	k := (t - m.epoch) / m.opts.Tick
	return m.epoch + (k+1)*m.opts.Tick
}

// deadlineInstantLocked reports the first instant the loop may act on a
// known deadline d (a bubble start or end): the first tick at or after d.
func (m *Manager) deadlineInstantLocked(d time.Duration) time.Duration {
	if m.opts.Mode != ManagerEventDriven {
		return d
	}
	if d <= m.epoch+m.opts.Tick {
		return m.epoch + m.opts.Tick
	}
	k := (d - m.epoch + m.opts.Tick - 1) / m.opts.Tick
	return m.epoch + k*m.opts.Tick
}

// --- event-driven reconcile -----------------------------------------------

// reconcile is the shared timer callback: one full Algorithm-2 pass for w at
// the current (grid-aligned) instant, then re-arm whatever deadlines remain.
func (m *Manager) reconcile(w *workerMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || !w.alive {
		return
	}
	now := m.eng.Now()
	m.reconcileWorkerLocked(w, now)
	m.armWorkerLocked(w, now)
}

// wakeLocked notes a control-plane event for w: a reconcile is scheduled at
// the same instant the polling loop would have acted on it, and the
// deadline timers are refreshed. No-op in polling mode (the tick covers it)
// and while the manager is stopped (Start arms the initial pass).
func (m *Manager) wakeLocked(w *workerMeta) {
	if !m.running || !w.alive || m.opts.Mode == ManagerPolling {
		return
	}
	now := m.eng.Now()
	m.kickLocked(w, m.eventInstantLocked(now))
	m.armWorkerLocked(w, now)
}

// kickLocked arms w's kick timer for instant at, unless an earlier (or
// equal) kick is already pending.
func (m *Manager) kickLocked(w *workerMeta, at time.Duration) {
	if t := w.kickTimer; t != nil && t.Pending() && w.kickAt <= at {
		return
	}
	w.kickTimer = simtime.Reschedule(m.eng, w.kickTimer, at-m.eng.Now(), w.kickName, w.reconcileFn)
	w.kickAt = at
}

// armWorkerLocked refreshes w's two deadline timers from its state: the
// current bubble's end (the pause point) and the front pending bubble's
// adoption instant. Both reuse their handles; re-arming an unchanged
// deadline is a no-op.
func (m *Manager) armWorkerLocked(w *workerMeta, now time.Duration) {
	if !m.running || !w.alive || m.opts.Mode == ManagerPolling {
		return
	}
	if w.bubble != nil {
		w.endTimer = m.armLocked(w.endTimer, &w.endAt, m.deadlineInstantLocked(w.bubble.End()), w.endName, w.reconcileFn)
	}
	if len(w.pending) > 0 {
		front := &w.pending[0]
		at := front.visibleAt
		if d := m.deadlineInstantLocked(front.b.Start); d > at {
			at = d
		}
		// An already-adoptable front (at <= now) is blocked only by the
		// current bubble; the end-timer pass adopts it, so no timer is due.
		if at > now {
			w.startTimer = m.armLocked(w.startTimer, &w.startAt, at, w.startName, w.reconcileFn)
		}
	}
	// An idle worker with queued tasks promotes the next one on the next
	// tick (the polling loop's pop); replicate that with a kick.
	if w.current == nil && len(w.queue) > 0 {
		m.kickLocked(w, m.eventInstantLocked(now))
	}
}

// armLocked re-arms t (which the manager exclusively owns) for instant at,
// reusing the handle; a pending timer already set to at is left alone.
func (m *Manager) armLocked(t *simtime.Timer, armedAt *time.Duration, at time.Duration, name string, fn func()) *simtime.Timer {
	if t != nil && t.Pending() && *armedAt == at {
		return t
	}
	*armedAt = at
	return simtime.Reschedule(m.eng, t, at-m.eng.Now(), name, fn)
}

// --- Algorithm 2 ----------------------------------------------------------

func (m *Manager) scheduleTick() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	if m.tickFn == nil {
		m.tickFn = func() {
			m.tick()
			m.scheduleTick()
		}
	}
	// The ticker handle never leaves the manager, so the fired timer is
	// reused instead of allocating one per tick.
	m.ticker = simtime.Reschedule(m.eng, m.ticker, m.opts.Tick, "manager-tick", m.tickFn)
	m.mu.Unlock()
}

// tick is one pass of paper Algorithm 2 over all workers (polling mode).
func (m *Manager) tick() {
	now := m.eng.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		m.reconcileWorkerLocked(w, now)
	}
}

// reconcileWorkerLocked is the per-worker body of Algorithm 2, shared
// verbatim by the polling tick and the event-driven reconcile.
func (m *Manager) reconcileWorkerLocked(w *workerMeta, now time.Duration) {
	if !w.alive {
		return
	}
	// Lines 4–8: current bubble ended → pause the current task.
	if w.bubble != nil && now >= w.bubble.End() {
		if w.current != nil && w.current.serving {
			m.accountServedLocked(w.current, w.bubble)
			m.pauseLocked(w, w.current)
		}
		w.bubble = nil
	}
	// Lines 9–10: adopt a newly begun bubble.
	if w.bubble == nil {
		w.bubble = m.nextBubbleLocked(w, now)
	}
	// Lines 11–15: pick the next task if idle.
	if w.current == nil {
		if len(w.queue) == 0 {
			return
		}
		w.current = w.queue[0]
		w.queue = w.queue[1:]
	}
	cur := w.current
	if cur.exited {
		w.current = nil
		return
	}
	// Lines 16–17: initialize a created task.
	if cur.state == sidetask.StateCreated && !cur.initSent {
		m.initLocked(w, cur)
		return
	}
	// Lines 18–19: start a paused task into the current bubble.
	if w.bubble != nil && cur.state == sidetask.StatePaused && cur.startedForBubble != w.bubble {
		// SLO admission guard (serving workload): skip the start when the
		// bubble's remaining time falls short of Guard × the task's pause
		// fit — the task would overrun the predicted batch arrival. The
		// bubble stays adopted; a later reconcile round (or the next
		// bubble) retries. Guard 0 never defers: remaining is strictly
		// positive here (the bubble-end rule above cleared expired ones).
		if m.opts.SLO != nil && m.opts.SLO.Guard > 0 {
			fit := cur.spec.Profile.FitTime()
			if float64(w.bubble.End()-now) < m.opts.SLO.Guard*float64(fit) {
				m.stats.SLODeferred++
				return
			}
		}
		m.startLocked(w, cur, w.bubble)
	}
}

// nextBubbleLocked pops the front pending bubble if it has begun, is
// visible, and has not ended; expired fronts are dropped. pending is Start-
// ordered, so an ineligible front means nothing behind it is eligible
// either.
func (m *Manager) nextBubbleLocked(w *workerMeta, now time.Duration) *bubble.Bubble {
	for len(w.pending) > 0 {
		pb := &w.pending[0]
		if now < pb.visibleAt || pb.b.Start > now {
			return nil // front not yet adoptable
		}
		if now >= pb.b.End() {
			w.pending = w.pending[1:]
			m.stats.BubblesExpired++
			continue
		}
		cp := pb.b
		w.pending = w.pending[1:]
		return &cp
	}
	return nil
}

func (m *Manager) initLocked(w *workerMeta, rec *taskRecord) {
	rec.initSent = true
	inc := rec.incarnation
	m.stats.RPCs++
	// Completion (the PAUSED transition) is pushed back asynchronously via
	// Manager.TaskState; the reply only matters when the call itself fails,
	// in which case initSent is unpinned so a later pass retries — a wedged
	// init would otherwise starve the worker's whole queue.
	w.peer.Go("Worker.Init", rec.refArgs, m.opts.RPCTimeout, func(result any, err error) {
		if err == nil {
			return
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if rec.incarnation != inc {
			return
		}
		if !rec.exited && rec.state == sidetask.StateCreated {
			rec.initSent = false
		}
		m.wakeLocked(w)
	})
}

func (m *Manager) applyStatusLocked(rec *taskRecord, st taskStatus) {
	if st.Exited {
		m.taskExitedLocked(rec, st)
		return
	}
	rec.state = sidetask.State(st.State)
}

func (m *Manager) startLocked(w *workerMeta, rec *taskRecord, b *bubble.Bubble) {
	rec.startedForBubble = b
	inc := rec.incarnation
	m.stats.RPCs++
	w.peer.Go("Worker.Start", startArgs{
		Name:        rec.spec.Name,
		BubbleEndNs: int64(b.End()),
	}, m.opts.RPCTimeout, func(result any, err error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if rec.incarnation != inc || rec.exited || rec.parked {
			return
		}
		if err != nil || result == nil {
			// The start never reached the worker (or timed out): unpin the
			// dedupe record so the bubble can be retried on the next pass.
			if rec.startedForBubble == b {
				rec.startedForBubble = nil
			}
			m.wakeLocked(w)
			return
		}
		st, derr := freerpc.DecodeResult[taskStatus](result)
		if derr != nil {
			if rec.startedForBubble == b {
				rec.startedForBubble = nil
			}
			m.wakeLocked(w)
			return
		}
		if st.Started {
			rec.state = sidetask.StateRunning
			rec.serving = true
			rec.servedFrom = m.eng.Now()
			m.stats.BubblesServed++
			return
		}
		m.applyStatusLocked(rec, st)
		m.wakeLocked(w)
	})
}

func (m *Manager) pauseLocked(w *workerMeta, rec *taskRecord) {
	rec.serving = false
	rec.state = sidetask.StatePaused // optimistic; corrected below on failure
	inc := rec.incarnation
	m.stats.RPCs++
	w.peer.Go("Worker.Pause", rec.refArgs, m.opts.RPCTimeout,
		func(result any, err error) {
			m.mu.Lock()
			defer m.mu.Unlock()
			if rec.incarnation != inc || rec.exited || rec.parked {
				return
			}
			if err != nil || result == nil {
				// The pause never reached the worker (or timed out): the
				// task is, to the manager's best knowledge, still running —
				// correct the optimistic record.
				if !rec.exited && rec.state == sidetask.StatePaused {
					rec.state = sidetask.StateRunning
				}
				m.wakeLocked(w)
				return
			}
			st, derr := freerpc.DecodeResult[taskStatus](result)
			if derr != nil {
				// An undecodable reply still proves the worker processed
				// the pause, so the optimistic PAUSED stands — only the
				// exit flag it may have carried is lost (the TaskExited
				// push covers that independently).
				return
			}
			if st.Exited {
				m.applyStatusLocked(rec, st)
				m.wakeLocked(w)
				return
			}
			// An acknowledged pause is a consistent cut of the task's
			// progress: checkpoint the reported counters. A later restart
			// resumes from here; only work accrued past this point is lost.
			rec.ckpt = TaskCkpt{
				Steps:        st.Steps,
				KernelTimeNs: st.KernelTimeNs,
				HostTimeNs:   st.HostTimeNs,
				InsuffNs:     st.InsuffNs,
			}
			rec.hasCkpt = true
			rec.servedSinceCkpt = 0
		})
}

func (m *Manager) accountServedLocked(rec *taskRecord, b *bubble.Bubble) {
	if !rec.serving {
		return
	}
	served := b.End() - rec.servedFrom
	if served > b.Duration {
		served = b.Duration
	}
	if served > 0 {
		m.stats.BubbleTimeServed += served
		rec.servedSinceCkpt += served
	}
}

// onTaskExited handles the worker's exit notification. Reports from dead
// incarnations (a crashed worker's exit push racing the re-placement) are
// discarded.
func (m *Manager) onTaskExited(st taskStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.tasks[st.Name]
	if !ok || rec.exited || rec.parked || st.Incarnation != rec.incarnation {
		return
	}
	w := m.workers[rec.workerIdx]
	if m.opts.Lease > 0 {
		w.lastSeen = m.eng.Now()
	}
	m.taskExitedLocked(rec, st)
	m.wakeLocked(w)
}

// taskExitedLocked applies a task exit: injected infrastructure faults
// enter the recovery cycle (the task's own work is intact — the platform
// failed it), and so does a pause-overrun grace kill on a worker whose
// bubble supply is contracting (a stale admission, not a task bug — the
// drift-aware classification); every other exit is the task's outcome and
// stays terminal.
func (m *Manager) taskExitedLocked(rec *taskRecord, st taskStatus) {
	w := m.workers[rec.workerIdx]
	m.detachLocked(rec)
	if m.running {
		if m.opts.Lease > 0 && isInfraFault(st.ExitErr) {
			m.planRecoveryLocked(rec, st.ExitErr)
			return
		}
		if m.opts.Replan != nil && isGraceKill(st.ExitErr) &&
			w.est != nil && w.est.ShrinkSuspected() {
			m.planRecoveryLocked(rec, st.ExitErr+" (bubble shrank: replan demotion)")
			return
		}
	}
	rec.exited = true
	rec.exitErr = st.ExitErr
	rec.state = sidetask.StateStopped
}

// StopAll asks every worker to stop its tasks (end of run). A failed Stop
// RPC retires the record instead of leaving it in limbo — symmetric to the
// Init/Pause failure paths.
func (m *Manager) StopAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range m.tasks {
		if rec.exited {
			continue
		}
		if rec.retryTimer != nil {
			rec.retryTimer.Cancel()
		}
		if rec.parked || !m.placedLocked(rec) {
			continue
		}
		rec := rec
		inc := rec.incarnation
		w := m.workers[rec.workerIdx]
		m.stats.RPCs++
		w.peer.Go("Worker.Stop", rec.refArgs, m.opts.RPCTimeout, func(result any, err error) {
			if err == nil {
				return
			}
			m.mu.Lock()
			defer m.mu.Unlock()
			if rec.incarnation != inc || rec.exited {
				return
			}
			rec.exited = true
			rec.exitErr = "stop failed: " + err.Error()
			rec.state = sidetask.StateStopped
		})
	}
}
