package core

import (
	"strings"
	"testing"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

// replanOpts arms the re-plan plane with the given detector; normalize fills
// in the restart budget and backoff the recovery cycle shares with leases.
func replanOpts(det bubble.DetectorConfig) ManagerOptions {
	return ManagerOptions{Tick: time.Millisecond, Replan: &ReplanOptions{Detector: det}}
}

// TestDriftDemotionReplacesTaskAndChargesLostWork is the end-to-end demote
// path: the home stage's reported bubbles collapse below the task's
// pause-time fit, the detector fires, and the manager demotes the task
// mid-serve — charging the un-checkpointed partial serve to LostWork
// exactly like a crash does — and re-places it on a stage that still fits.
func TestDriftDemotionReplacesTaskAndChargesLostWork(t *testing.T) {
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{},
		replanOpts(bubble.FastDetector()))
	if err := r.mgr.Submit(spec("t0", model.GraphSGD, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	// One-shot profile: worker0 supplies one 2s bubble per epoch.
	r.mgr.SetBubbleBaseline("worker0", 2*time.Second, 1)
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second) // create + init

	// A profile-true bubble: the window sum equals the baseline exactly, so
	// the detector stays silent and the task serves.
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 2 * time.Second})
	r.eng.RunFor(500 * time.Millisecond) // mid-serve, no pause yet

	// The supply collapses: a 100ms report (-95% off baseline) fires the
	// fast detector on arrival and the re-plan demotes the serving task —
	// GraphSGD's fit (~268ms) no longer fits a 100ms mean bubble.
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: r.eng.Now() + time.Second, Duration: 100 * time.Millisecond})
	r.eng.RunFor(6 * time.Second) // backoff + re-create + re-init on worker1

	if w, ok := r.mgr.TaskWorker("t0"); !ok || w != "worker1" {
		t.Fatalf("TaskWorker = %q/%v, want worker1 (escape stage)", w, ok)
	}
	st := r.mgr.Stats()
	if st.DriftEvents != 1 || st.Replans != 1 || st.Demotions != 1 {
		t.Fatalf("stats = %+v, want 1 detection / 1 replan / 1 demotion", st)
	}
	if st.RestartedTasks != 1 || st.Replacements != 1 || st.ParkedTasks != 0 {
		t.Fatalf("stats = %+v, want 1 restarted / 1 replacement / 0 parked", st)
	}
	// ~500ms of the in-flight bubble was served past the last checkpoint
	// when the demotion struck; that work is lost like a crash loses it.
	if st.LostWork < 300*time.Millisecond || st.LostWork > time.Second {
		t.Fatalf("LostWork = %v, want the ~500ms un-checkpointed partial serve", st.LostWork)
	}
	tv := taskView(t, r.mgr, "t0")
	if tv.Exited || tv.Parked || tv.Restarts != 1 {
		t.Fatalf("task view = %+v, want live with 1 restart", tv)
	}

	// The new incarnation harvests on its new stage.
	h, ok := r.workers[1].Harness("t0")
	if !ok {
		t.Fatal("task not re-deployed on worker1")
	}
	before := h.Counters().Steps
	r.mgr.AddBubble(bubble.Bubble{Stage: 1, Start: r.eng.Now(), Duration: 500 * time.Millisecond})
	r.eng.RunFor(time.Second)
	if got := h.Counters().Steps; got <= before {
		t.Fatalf("demoted task never stepped on its new stage (%d <= %d)", got, before)
	}
}

// TestGraceKillClassification is the drift-aware grace handling: a
// pause-overrun kill on a worker whose bubble supply is contracting is a
// stale admission (the manager's plan was wrong, not the task) and enters
// recovery; the same kill with no shrink evidence stays terminal.
func TestGraceKillClassification(t *testing.T) {
	hog := func(s TaskSpec) (*sidetask.Harness, error) {
		p := s.Profile
		p.StepTime = 20 * time.Second // one giant kernel per step
		p.StepJitter = 0
		p.CreateTime = 100 * time.Millisecond
		p.InitTime = 50 * time.Millisecond
		return sidetask.NewImperativeHarness(s.Name, p, hugeKernelTask{}, s.Seed), nil
	}
	run := func(t *testing.T, baseline time.Duration) (*rig, TaskView) {
		t.Helper()
		r := newRigOpts(t, 2, []int64{22 * model.GiB, 22 * model.GiB},
			WorkerConfig{Grace: 200 * time.Millisecond, Factory: hog},
			replanOpts(bubble.DetectorConfig{}))
		if err := r.mgr.Submit(spec("hog", model.GraphSGD, sidetask.ModeImperative)); err != nil {
			t.Fatal(err)
		}
		r.mgr.SetBubbleBaseline("worker0", baseline, 1)
		r.mgr.Start()
		r.eng.RunFor(time.Second)
		// One 400ms bubble: the hog's kernel overruns it and is killed at
		// bubble end + grace.
		r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: r.eng.Now(), Duration: 400 * time.Millisecond})
		r.eng.RunFor(3 * time.Second)
		if got := r.workers[0].Stats().GraceKills; got != 1 {
			t.Fatalf("GraceKills = %d, want 1", got)
		}
		return r, taskView(t, r.mgr, "hog")
	}

	t.Run("shrink-suspected-recovers", func(t *testing.T) {
		// Baseline 800ms, observed 400ms: negative CUSUM mass accumulates
		// (under the default threshold — no detection yet) so the kill is
		// classified as a recoverable re-plan demotion.
		r, tv := run(t, 800*time.Millisecond)
		if tv.Exited || tv.Parked {
			t.Fatalf("task view = %+v, want recovering (shrink-suspected grace kill)", tv)
		}
		if tv.Restarts != 1 {
			t.Fatalf("Restarts = %d, want 1", tv.Restarts)
		}
		if st := r.mgr.Stats(); st.RestartedTasks != 1 {
			t.Fatalf("stats = %+v, want 1 restarted task", st)
		}
	})
	t.Run("no-evidence-stays-terminal", func(t *testing.T) {
		// Baseline matches the observed bubble exactly: zero CUSUM mass, no
		// shrink suspicion — the kill is the task's own outcome.
		r, tv := run(t, 400*time.Millisecond)
		if !tv.Exited || !strings.Contains(tv.ExitErr, "killed") {
			t.Fatalf("task view = %+v, want terminal grace kill", tv)
		}
		if st := r.mgr.Stats(); st.RestartedTasks != 0 || st.Demotions != 0 {
			t.Fatalf("stats = %+v, want no recovery without shrink evidence", st)
		}
	})
}

// TestProfileUpdatePushReplans is the live re-profiling path: a pushed
// per-stage profile supersedes the one-shot baseline and re-plans the stage
// immediately — no detection latency, no drift schedule.
func TestProfileUpdatePushReplans(t *testing.T) {
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{},
		replanOpts(bubble.DetectorConfig{}))
	if err := r.mgr.Submit(spec("t0", model.GraphSGD, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	if w, _ := r.mgr.TaskWorker("t0"); w != "worker0" {
		t.Fatalf("task on %q, want worker0", w)
	}

	// Push: stage 0 now supplies 100ms bubbles — below GraphSGD's fit.
	r.mgr.ProfileUpdate(ProfileUpdateDTO{Stages: []StageUpdateDTO{
		{Stage: 0, BubbleNs: (100 * time.Millisecond).Nanoseconds(), Reports: 1},
	}})
	r.eng.RunFor(6 * time.Second)

	if w, ok := r.mgr.TaskWorker("t0"); !ok || w != "worker1" {
		t.Fatalf("TaskWorker = %q/%v, want worker1 after pushed re-profile", w, ok)
	}
	st := r.mgr.Stats()
	if st.Replans != 1 || st.Demotions != 1 || st.DriftEvents != 0 {
		t.Fatalf("stats = %+v, want 1 replan / 1 demotion / 0 detector events (push path)", st)
	}
}

// TestReplanRevivesParkedTask closes the demote/park/revive cycle: a task
// demoted into parking (no stage fits the shrunken profile, repeated stale
// admissions counted) is revived with a fresh budget when the supply grows
// back past its fit.
func TestReplanRevivesParkedTask(t *testing.T) {
	// VGG19 (9.8 GiB) only ever fits worker0; worker1 is a 3 GiB dead end.
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 3 * model.GiB}, WorkerConfig{},
		replanOpts(bubble.DetectorConfig{}))
	if err := r.mgr.Submit(spec("vgg", model.VGG19, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.SetBubbleBaseline("worker0", 800*time.Millisecond, 1)
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)

	// Two collapsed windows (-75% off baseline) fire the default detector;
	// VGG's ~307ms fit exceeds the 200ms mean, so it is demoted, every
	// re-placement attempt fails admission (worker0 by fit — a stale
	// admission each try — worker1 by memory), and the budget parks it.
	for i := 0; i < 2; i++ {
		r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: r.eng.Now(), Duration: 200 * time.Millisecond})
		r.eng.RunFor(100 * time.Millisecond)
	}
	r.eng.RunFor(2 * time.Second) // exhaust the backoff ladder
	tv := taskView(t, r.mgr, "vgg")
	if !tv.Parked {
		t.Fatalf("task view = %+v, want parked (no stage fits the shrunken profile)", tv)
	}
	st := r.mgr.Stats()
	if st.ParkedTasks != 1 || st.Demotions != 1 {
		t.Fatalf("stats = %+v, want 1 parked / 1 demotion", st)
	}
	if st.StaleAdmissions != 3 {
		t.Fatalf("StaleAdmissions = %d, want 3 (one per failed re-placement attempt)", st.StaleAdmissions)
	}

	// The supply grows back: the first two windows burn the post-detection
	// hysteresis, the third fires grow and the re-plan revives the parked
	// task with a fresh restart budget.
	for i := 0; i < 3; i++ {
		r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: r.eng.Now(), Duration: 800 * time.Millisecond})
		r.eng.RunFor(100 * time.Millisecond)
	}
	tv = taskView(t, r.mgr, "vgg")
	if tv.Parked || tv.Exited {
		t.Fatalf("task view = %+v, want revived", tv)
	}
	if tv.Restarts != 0 {
		t.Fatalf("Restarts = %d, want 0 (revival grants a fresh budget)", tv.Restarts)
	}
	if st := r.mgr.Stats(); st.Revivals != 1 {
		t.Fatalf("Revivals = %d, want 1", st.Revivals)
	}
	r.eng.RunFor(6 * time.Second) // re-create + re-init
	if w, ok := r.mgr.TaskWorker("vgg"); !ok || w != "worker0" {
		t.Fatalf("TaskWorker = %q/%v, want worker0", w, ok)
	}
	h, ok := r.workers[0].Harness("vgg")
	if !ok {
		t.Fatal("revived task not re-deployed on worker0")
	}
	before := h.Counters().Steps
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: r.eng.Now(), Duration: 800 * time.Millisecond})
	r.eng.RunFor(2 * time.Second)
	if got := h.Counters().Steps; got <= before {
		t.Fatalf("revived task never stepped (%d <= %d)", got, before)
	}
}
