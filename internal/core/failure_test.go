package core

import (
	"testing"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

func TestWorkerDisconnectRetiresItsTasks(t *testing.T) {
	r := newRig(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("t0", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Submit(spec("t1", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)

	// Sever worker0's link.
	r.eng.Schedule(0, "sever", func() {
		r.mgr.workerPeer(t, 0).Close()
	})
	r.eng.RunFor(time.Second)

	// The task on worker0 is retired; the one on worker1 still serves.
	views := r.mgr.Tasks()
	var lost, alive int
	for _, tv := range views {
		if tv.Exited && tv.ExitErr == "worker lost" {
			lost++
		} else if !tv.Exited {
			alive++
		}
	}
	if lost != 1 || alive != 1 {
		t.Fatalf("lost=%d alive=%d, want 1/1 (%+v)", lost, alive, views)
	}

	// Bubbles on the dead worker are ignored; the live worker still runs.
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 300 * time.Millisecond})
	r.mgr.AddBubble(bubble.Bubble{Stage: 1, Start: base, Duration: 300 * time.Millisecond})
	r.eng.RunFor(time.Second)
	var liveSteps uint64
	for _, w := range r.workers {
		for _, name := range []string{"t0", "t1"} {
			if h, ok := w.Harness(name); ok && h.State() != sidetask.StateStopped {
				liveSteps += h.Counters().Steps
			}
		}
	}
	if liveSteps == 0 {
		t.Fatal("surviving worker served no steps after the other died")
	}

	// New submissions skip the dead worker.
	placed, err := r.mgr.SubmitAndPlace(spec("t2", model.PageRank, sidetask.ModeIterative))
	if err != nil {
		t.Fatalf("Submit after worker loss: %v", err)
	}
	if placed != "worker1" {
		t.Fatalf("placed on %s, want worker1 (worker0 dead)", placed)
	}
}

// workerPeer digs out the manager-side peer of worker i (test helper).
func (m *Manager) workerPeer(t *testing.T, i int) interface{ Close() } {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers[i].peer
}

func TestImperativeHogKilledByGPUBusyCheck(t *testing.T) {
	// An imperative task whose in-flight kernel far outlives the grace
	// period is killed by the GPU-busy check even though SIGTSTP
	// suspended its process.
	factory := func(s TaskSpec) (*sidetask.Harness, error) {
		p := s.Profile
		p.StepTime = 20 * time.Second // one giant kernel per step
		p.StepJitter = 0
		p.CreateTime = 100 * time.Millisecond
		p.InitTime = 50 * time.Millisecond
		return sidetask.NewImperativeHarness(s.Name, p, hugeKernelTask{}, s.Seed), nil
	}
	r := newRig(t, 1, []int64{22 * model.GiB},
		WorkerConfig{Grace: 200 * time.Millisecond, Factory: factory})
	if err := r.mgr.Submit(spec("hog", model.GraphSGD, sidetask.ModeImperative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(time.Second)
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 400 * time.Millisecond})
	r.eng.RunFor(3 * time.Second)
	if got := r.workers[0].Stats().GraceKills; got != 1 {
		t.Fatalf("GraceKills = %d, want 1", got)
	}
	if r.devices[0].MemUsed() != 0 {
		t.Fatalf("device mem = %d after kill", r.devices[0].MemUsed())
	}
}

type hugeKernelTask struct{}

func (hugeKernelTask) CreateSideTask(*sidetask.Ctx) error { return nil }
func (hugeKernelTask) InitSideTask(ctx *sidetask.Ctx) error {
	return ctx.GPU.AllocMem(model.GiB)
}
func (hugeKernelTask) RunGpuWorkload(ctx *sidetask.Ctx) error {
	for {
		if err := ctx.ExecStepKernel(); err != nil {
			return err
		}
	}
}

func TestStopAllWindsDownCleanly(t *testing.T) {
	r := newRig(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	for _, n := range []string{"a", "b"} {
		if err := r.mgr.Submit(spec(n, model.PageRank, sidetask.ModeIterative)); err != nil {
			t.Fatal(err)
		}
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	r.eng.Schedule(0, "stopall", func() {
		r.mgr.Stop()
		r.mgr.StopAll()
	})
	r.eng.RunFor(2 * time.Second)
	for _, w := range r.workers {
		for _, n := range []string{"a", "b"} {
			if h, ok := w.Harness(n); ok {
				if h.State() != sidetask.StateStopped {
					t.Fatalf("task %s state %v after StopAll, want STOPPED", n, h.State())
				}
			}
		}
		if r.devices[0].MemUsed() != 0 {
			t.Fatalf("device mem %d after StopAll", r.devices[0].MemUsed())
		}
	}
}

func TestInitHangKilledByInitTimeout(t *testing.T) {
	factory := func(s TaskSpec) (*sidetask.Harness, error) {
		p := s.Profile
		p.CreateTime = 50 * time.Millisecond
		p.InitTime = 10 * time.Millisecond // claimed; actual hangs forever
		return sidetask.NewIterativeHarness(s.Name, p, hangingInitTask{}, s.Seed), nil
	}
	r := newRig(t, 1, []int64{22 * model.GiB},
		WorkerConfig{Grace: 100 * time.Millisecond, Factory: factory})
	if err := r.mgr.Submit(spec("hang", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(5 * time.Second)
	if got := r.workers[0].Stats().InitKills; got != 1 {
		t.Fatalf("InitKills = %d, want 1", got)
	}
}

type hangingInitTask struct{}

func (hangingInitTask) CreateSideTask(*sidetask.Ctx) error { return nil }
func (hangingInitTask) InitSideTask(ctx *sidetask.Ctx) error {
	ctx.Proc.Sleep(time.Hour) // never completes
	return nil
}
func (hangingInitTask) StopSideTask(*sidetask.Ctx) error { return nil }
func (hangingInitTask) RunNextStep(*sidetask.Ctx) error  { return nil }

func TestDuplicateSubmitRejected(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("dup", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Submit(spec("dup", model.PageRank, sidetask.ModeIterative)); err == nil {
		t.Fatal("duplicate task name accepted")
	}
	r.eng.RunFor(time.Second)
}
