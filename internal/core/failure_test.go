package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/sidetask"
	"freeride/internal/simtime"
)

func TestWorkerDisconnectRetiresItsTasks(t *testing.T) {
	r := newRig(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("t0", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Submit(spec("t1", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)

	// Sever worker0's link.
	r.eng.Schedule(0, "sever", func() {
		r.mgr.workerPeer(t, 0).Close()
	})
	r.eng.RunFor(time.Second)

	// The task on worker0 is retired; the one on worker1 still serves.
	views := r.mgr.Tasks()
	var lost, alive int
	for _, tv := range views {
		if tv.Exited && tv.ExitErr == "worker lost" {
			lost++
		} else if !tv.Exited {
			alive++
		}
	}
	if lost != 1 || alive != 1 {
		t.Fatalf("lost=%d alive=%d, want 1/1 (%+v)", lost, alive, views)
	}

	// Bubbles on the dead worker are ignored; the live worker still runs.
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 300 * time.Millisecond})
	r.mgr.AddBubble(bubble.Bubble{Stage: 1, Start: base, Duration: 300 * time.Millisecond})
	r.eng.RunFor(time.Second)
	var liveSteps uint64
	for _, w := range r.workers {
		for _, name := range []string{"t0", "t1"} {
			if h, ok := w.Harness(name); ok && h.State() != sidetask.StateStopped {
				liveSteps += h.Counters().Steps
			}
		}
	}
	if liveSteps == 0 {
		t.Fatal("surviving worker served no steps after the other died")
	}

	// New submissions skip the dead worker.
	placed, err := r.mgr.SubmitAndPlace(spec("t2", model.PageRank, sidetask.ModeIterative))
	if err != nil {
		t.Fatalf("Submit after worker loss: %v", err)
	}
	if placed != "worker1" {
		t.Fatalf("placed on %s, want worker1 (worker0 dead)", placed)
	}
}

// workerPeer digs out the manager-side peer of worker i (test helper).
func (m *Manager) workerPeer(t *testing.T, i int) interface{ Close() } {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers[i].peer
}

func TestImperativeHogKilledByGPUBusyCheck(t *testing.T) {
	// An imperative task whose in-flight kernel far outlives the grace
	// period is killed by the GPU-busy check even though SIGTSTP
	// suspended its process.
	factory := func(s TaskSpec) (*sidetask.Harness, error) {
		p := s.Profile
		p.StepTime = 20 * time.Second // one giant kernel per step
		p.StepJitter = 0
		p.CreateTime = 100 * time.Millisecond
		p.InitTime = 50 * time.Millisecond
		return sidetask.NewImperativeHarness(s.Name, p, hugeKernelTask{}, s.Seed), nil
	}
	r := newRig(t, 1, []int64{22 * model.GiB},
		WorkerConfig{Grace: 200 * time.Millisecond, Factory: factory})
	if err := r.mgr.Submit(spec("hog", model.GraphSGD, sidetask.ModeImperative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(time.Second)
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 400 * time.Millisecond})
	r.eng.RunFor(3 * time.Second)
	if got := r.workers[0].Stats().GraceKills; got != 1 {
		t.Fatalf("GraceKills = %d, want 1", got)
	}
	if r.devices[0].MemUsed() != 0 {
		t.Fatalf("device mem = %d after kill", r.devices[0].MemUsed())
	}
}

type hugeKernelTask struct{}

func (hugeKernelTask) CreateSideTask(*sidetask.Ctx) error { return nil }
func (hugeKernelTask) InitSideTask(ctx *sidetask.Ctx) error {
	return ctx.GPU.AllocMem(model.GiB)
}
func (hugeKernelTask) RunGpuWorkload(ctx *sidetask.Ctx) error {
	for {
		if err := ctx.ExecStepKernel(); err != nil {
			return err
		}
	}
}

func TestStopAllWindsDownCleanly(t *testing.T) {
	r := newRig(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	for _, n := range []string{"a", "b"} {
		if err := r.mgr.Submit(spec(n, model.PageRank, sidetask.ModeIterative)); err != nil {
			t.Fatal(err)
		}
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	r.eng.Schedule(0, "stopall", func() {
		r.mgr.Stop()
		r.mgr.StopAll()
	})
	r.eng.RunFor(2 * time.Second)
	for _, w := range r.workers {
		for _, n := range []string{"a", "b"} {
			if h, ok := w.Harness(n); ok {
				if h.State() != sidetask.StateStopped {
					t.Fatalf("task %s state %v after StopAll, want STOPPED", n, h.State())
				}
			}
		}
		if r.devices[0].MemUsed() != 0 {
			t.Fatalf("device mem %d after StopAll", r.devices[0].MemUsed())
		}
	}
}

func TestInitHangKilledByInitTimeout(t *testing.T) {
	factory := func(s TaskSpec) (*sidetask.Harness, error) {
		p := s.Profile
		p.CreateTime = 50 * time.Millisecond
		p.InitTime = 10 * time.Millisecond // claimed; actual hangs forever
		return sidetask.NewIterativeHarness(s.Name, p, hangingInitTask{}, s.Seed), nil
	}
	r := newRig(t, 1, []int64{22 * model.GiB},
		WorkerConfig{Grace: 100 * time.Millisecond, Factory: factory})
	if err := r.mgr.Submit(spec("hang", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(5 * time.Second)
	if got := r.workers[0].Stats().InitKills; got != 1 {
		t.Fatalf("InitKills = %d, want 1", got)
	}
}

type hangingInitTask struct{}

func (hangingInitTask) CreateSideTask(*sidetask.Ctx) error { return nil }
func (hangingInitTask) InitSideTask(ctx *sidetask.Ctx) error {
	ctx.Proc.Sleep(time.Hour) // never completes
	return nil
}
func (hangingInitTask) StopSideTask(*sidetask.Ctx) error { return nil }
func (hangingInitTask) RunNextStep(*sidetask.Ctx) error  { return nil }

func TestDuplicateSubmitRejected(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("dup", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Submit(spec("dup", model.PageRank, sidetask.ModeIterative)); err == nil {
		t.Fatal("duplicate task name accepted")
	}
	r.eng.RunFor(time.Second)
}

// --- self-healing manager (PR 6) ------------------------------------------

// leaseOpts is the standard lease-enabled manager config for recovery tests.
func leaseOpts() ManagerOptions {
	return ManagerOptions{
		Tick:         time.Millisecond,
		Lease:        250 * time.Millisecond,
		MaxRestarts:  3,
		RetryBackoff: 50 * time.Millisecond,
		Seed:         1,
	}
}

func taskView(t *testing.T, m *Manager, name string) TaskView {
	t.Helper()
	for _, tv := range m.Tasks() {
		if tv.Spec.Name == name {
			return tv
		}
	}
	t.Fatalf("task %q not found", name)
	return TaskView{}
}

// TestStopRPCFailureRetiresRecord pins the StopAll limbo fix: a failed
// Worker.Stop call retires the manager's record instead of leaving it
// forever non-exited — symmetric to the Init/Pause failure paths.
func TestStopRPCFailureRetiresRecord(t *testing.T) {
	eng := simtime.NewVirtual()
	mgr := NewManager(eng, ManagerOptions{Tick: time.Millisecond})
	// A worker stub that creates tasks fine but has no Worker.Stop method,
	// so every stop fails at the RPC layer.
	wmux := freerpc.NewMux()
	wmux.Handle("Worker.Create", func(json.RawMessage) (any, error) {
		return map[string]string{"status": "ok"}, nil
	})
	a, b := freerpc.MemPipe(eng, 100*time.Microsecond)
	peer := freerpc.NewPeer(eng, a, mgr.Mux())
	freerpc.NewPeer(eng, b, wmux)
	mgr.AddWorker("w0", 0, 22*model.GiB, peer)
	if err := mgr.Submit(spec("t", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(time.Second)
	mgr.StopAll()
	eng.RunFor(2 * time.Second)
	tv := taskView(t, mgr, "t")
	if !tv.Exited || !strings.Contains(tv.ExitErr, "stop failed") {
		t.Fatalf("task after failed Stop = %+v, want retired with stop-failed", tv)
	}
}

// TestSubmitRacingWorkerDisconnect closes the worker link in the same
// instant a Submit's create RPC is in flight: the record must settle retired
// (not limbo), and the create callback must not resurrect it.
func TestSubmitRacingWorkerDisconnect(t *testing.T) {
	r := newRig(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	r.mgr.Start()
	r.eng.RunFor(10 * time.Millisecond)
	if err := r.mgr.Submit(spec("race", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.workerPeer(t, 0).Close() // create RPC still in flight
	r.eng.RunFor(time.Second)
	tv := taskView(t, r.mgr, "race")
	if !tv.Exited {
		t.Fatalf("task after submit/disconnect race = %+v, want exited", tv)
	}
	// The other worker keeps taking submissions.
	if placed, err := r.mgr.SubmitAndPlace(spec("next", model.PageRank, sidetask.ModeIterative)); err != nil || placed != "worker1" {
		t.Fatalf("follow-up placed on %q (%v), want worker1", placed, err)
	}
	r.eng.RunFor(time.Second)
}

// TestLeaseExpiryReplacesTaskWithCheckpoint is the end-to-end recovery path:
// a worker crashes silently (link stays open, pings fail), its lease
// expires, and the task is re-placed on a peer resuming from the checkpoint
// recorded at its last acknowledged pause.
func TestLeaseExpiryReplacesTaskWithCheckpoint(t *testing.T) {
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{}, leaseOpts())
	if err := r.mgr.Submit(spec("t0", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second) // create + init
	// Serve two bubbles on worker0's stage; each pause checkpoints progress.
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 500 * time.Millisecond})
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base + time.Second, Duration: 500 * time.Millisecond})
	r.eng.RunFor(2 * time.Second)
	r.mgr.mu.Lock()
	ck := r.mgr.tasks["t0"].ckpt
	hasCkpt := r.mgr.tasks["t0"].hasCkpt
	r.mgr.mu.Unlock()
	if !hasCkpt || ck.Steps == 0 {
		t.Fatalf("no checkpoint after served bubbles: hasCkpt=%v ckpt=%+v", hasCkpt, ck)
	}

	// Silent crash: the link stays open but pings go unanswered.
	r.eng.Schedule(0, "crash", func() { r.workers[0].Crash() })
	r.eng.RunFor(8 * time.Second) // lease expiry + backoff + re-create + re-init

	if w, ok := r.mgr.TaskWorker("t0"); !ok || w != "worker1" {
		t.Fatalf("TaskWorker = %q/%v, want worker1", w, ok)
	}
	h, ok := r.workers[1].Harness("t0")
	if !ok {
		t.Fatal("task not re-deployed on worker1")
	}
	if got := h.Counters().Steps; got < ck.Steps {
		t.Fatalf("restarted task counters %d < checkpoint %d (did not restore)", got, ck.Steps)
	}

	// The new incarnation serves bubbles on its new stage.
	base = r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 1, Start: base, Duration: 500 * time.Millisecond})
	r.eng.RunFor(2 * time.Second)
	if got := h.Counters().Steps; got <= ck.Steps {
		t.Fatalf("restarted task never stepped past checkpoint (%d <= %d)", got, ck.Steps)
	}

	st := r.mgr.Stats()
	if st.WorkersLost != 1 || st.RestartedTasks != 1 || st.Replacements != 1 || st.ParkedTasks != 0 {
		t.Fatalf("stats = %+v, want 1 lost / 1 restarted / 1 replacement / 0 parked", st)
	}
	tv := taskView(t, r.mgr, "t0")
	if tv.Exited || tv.Parked || tv.Restarts != 1 {
		t.Fatalf("task view = %+v, want live with 1 restart", tv)
	}
}

// TestTaskExitedAfterLeaseExpiryIgnored delivers a stale-incarnation exit
// report after the task was already re-placed: the manager must discard it.
func TestTaskExitedAfterLeaseExpiryIgnored(t *testing.T) {
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{}, leaseOpts())
	if err := r.mgr.Submit(spec("t0", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	// Hard crash with link close: immediate detection, then re-placement.
	r.eng.Schedule(0, "crash", func() {
		r.workers[0].Crash()
		r.mgr.workerPeer(t, 0).Close()
	})
	r.eng.RunFor(4 * time.Second)
	if w, ok := r.mgr.TaskWorker("t0"); !ok || w != "worker1" {
		t.Fatalf("TaskWorker = %q/%v, want worker1", w, ok)
	}
	// A straggler exit push from the dead incarnation 0 arrives late.
	r.mgr.onTaskExited(taskStatus{Name: "t0", Exited: true, ExitErr: "stale crash", Incarnation: 0})
	tv := taskView(t, r.mgr, "t0")
	if tv.Exited {
		t.Fatalf("stale-incarnation exit retired the live replacement: %+v", tv)
	}
	r.eng.RunFor(time.Second)
}

// TestReplacementRerunsAdmission pins re-placement against Algorithm 1: when
// the only worker that admits the task dies, the survivor (too small) must
// not receive it — the task burns its retry budget and parks, with no
// double placement anywhere.
func TestReplacementRerunsAdmission(t *testing.T) {
	// VGG19 (9.8 GiB) fits only worker0; worker1 has 3 GiB.
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 3 * model.GiB}, WorkerConfig{}, leaseOpts())
	if err := r.mgr.Submit(spec("vgg", model.VGG19, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	r.eng.Schedule(0, "crash", func() {
		r.workers[0].Crash()
		r.mgr.workerPeer(t, 0).Close()
	})
	r.eng.RunFor(5 * time.Second) // enough for the full backoff ladder
	tv := taskView(t, r.mgr, "vgg")
	if !tv.Parked {
		t.Fatalf("task view = %+v, want parked (budget exhausted, no eligible worker)", tv)
	}
	if _, ok := r.workers[1].Harness("vgg"); ok {
		t.Fatal("task deployed on a worker that fails the admission predicate")
	}
	st := r.mgr.Stats()
	if st.ParkedTasks != 1 || st.Replacements != 0 || st.RestartedTasks != 0 {
		t.Fatalf("stats = %+v, want 1 parked / 0 replacements / 0 restarted", st)
	}
	// Parked is terminal: no retry timer keeps firing.
	if pend := r.eng.Pending(); pend != 0 {
		// Ping/lease timers for worker1 remain; just ensure time can drain
		// without the parked task thrashing.
		r.eng.RunFor(time.Second)
	}
	if got := taskView(t, r.mgr, "vgg").Restarts; got != r.mgr.opts.MaxRestarts+1 {
		t.Fatalf("Restarts = %d, want %d (budget + the final parking attempt)", got, r.mgr.opts.MaxRestarts+1)
	}
}

// TestCrashDuringReplanWindowSingleRecoveryPath composes drift with faults:
// the worker crashes inside the re-plan window — after a drift demotion
// detached the task but before its backoff re-placement fired. Both the
// lease machinery and the re-plan machinery are armed; the task must
// resolve through exactly ONE recovery path (the demotion's), with the
// crash charging the worker loss but not double-charging the task, and the
// stale incarnation's late exit report discarded by incarnation number.
func TestCrashDuringReplanWindowSingleRecoveryPath(t *testing.T) {
	opts := leaseOpts()
	opts.Replan = &ReplanOptions{Detector: bubble.FastDetector()}
	r := newRigOpts(t, 2, []int64{22 * model.GiB, 22 * model.GiB}, WorkerConfig{}, opts)
	if err := r.mgr.Submit(spec("t0", model.GraphSGD, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.SetBubbleBaseline("worker0", time.Second, 1)
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)

	// Collapsed report: the fast detector fires on arrival and demotes the
	// task into its backoff window (50–75ms).
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: r.eng.Now(), Duration: 100 * time.Millisecond})
	// Crash the old worker inside that window: the demoted task is already
	// detached, so the worker loss must not retire or re-plan it again.
	r.eng.Schedule(10*time.Millisecond, "crash", func() {
		r.workers[0].Crash()
		r.mgr.workerPeer(t, 0).Close()
	})
	r.eng.RunFor(7 * time.Second) // backoff + re-create + re-init on worker1

	if w, ok := r.mgr.TaskWorker("t0"); !ok || w != "worker1" {
		t.Fatalf("TaskWorker = %q/%v, want worker1", w, ok)
	}
	tv := taskView(t, r.mgr, "t0")
	if tv.Exited || tv.Parked || tv.Restarts != 1 {
		t.Fatalf("task view = %+v, want live with exactly 1 restart (one recovery path)", tv)
	}
	st := r.mgr.Stats()
	if st.Demotions != 1 || st.WorkersLost != 1 {
		t.Fatalf("stats = %+v, want 1 demotion and 1 worker lost", st)
	}
	if st.RestartedTasks != 1 || st.Replacements != 1 {
		t.Fatalf("stats = %+v, want exactly 1 restart / 1 replacement (no double recovery)", st)
	}

	// The stopped incarnation's exit report surfaces late (the crash raced
	// the Worker.Stop): the incarnation number wins and the live
	// replacement is untouched.
	r.mgr.onTaskExited(taskStatus{Name: "t0", Exited: true,
		ExitErr: "simproc: killed", Incarnation: 0})
	if tv := taskView(t, r.mgr, "t0"); tv.Exited {
		t.Fatalf("stale-incarnation exit retired the live replacement: %+v", tv)
	}
	r.eng.RunFor(time.Second)
}

// TestWedgeHealsViaPingAntiEntropy wedges a worker's reporting across its
// init completion: the PAUSED push is swallowed, and the manager's record
// heals from the next ping snapshot instead of wedging the whole queue.
func TestWedgeHealsViaPingAntiEntropy(t *testing.T) {
	r := newRigOpts(t, 1, []int64{22 * model.GiB}, WorkerConfig{}, leaseOpts())
	if err := r.mgr.Submit(spec("t0", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	// Wedge reporting across create (1.5s) + init (0.4s) completion.
	r.workers[0].WedgeFor(3 * time.Second)
	r.mgr.Start()
	r.eng.RunFor(4 * time.Second)
	tv := taskView(t, r.mgr, "t0")
	if tv.State != sidetask.StatePaused || tv.Exited {
		t.Fatalf("task view after wedge window = %+v, want PAUSED (ping heal)", tv)
	}
	// The worker was never declared dead: it kept answering pings.
	if st := r.mgr.Stats(); st.WorkersLost != 0 {
		t.Fatalf("WorkersLost = %d, want 0 (wedge is not death)", st.WorkersLost)
	}
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 500 * time.Millisecond})
	r.eng.RunFor(time.Second)
	h, _ := r.workers[0].Harness("t0")
	if h.Counters().Steps == 0 {
		t.Fatal("healed task never served a bubble")
	}
}
