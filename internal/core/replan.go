package core

import (
	"strings"
	"time"

	"freeride/internal/sidetask"
	"freeride/internal/simproc"
)

// Online re-planning (the dynamic-bubbles robustness layer): the manager
// seeds one drift estimator per worker from the one-shot bubble profile,
// feeds it every AddBubble report, and — when the estimator detects that
// the reported supply has shifted — re-runs the Algorithm-1 admission
// filter against the online estimates. Tasks whose bubbles shrank below
// their pause-time fit are demoted through the same checkpoint-restart
// backoff cycle a crash uses; tasks parked for lack of anywhere to run are
// revived when the profile grows back. Everything runs on the engine clock
// under the manager lock, so same-seed drift runs are bit-identical, and a
// zero-drift run never fires the detector at all.

// recoveryArmed reports whether the backoff/re-placement cycle is wired:
// either the lease failure detector or the re-plan plane arms it.
func (m *Manager) recoveryArmed() bool {
	return m.opts.Lease > 0 || m.opts.Replan != nil
}

// isGraceKill classifies a worker-side pause-overrun kill (the task held
// the GPU past bubble end + grace and was killed at a blocking point).
func isGraceKill(exitErr string) bool {
	return strings.Contains(exitErr, simproc.ErrKilled.Error())
}

// SetBubbleBaseline seeds the named worker's online estimator from the
// one-shot profile: perEpoch is the bubble supply the reporter emits per
// epoch (post safety margin) and reports how many reports carry it. No-op
// unless re-planning is armed. Until a worker is baselined its detector is
// off and the one-shot profile stays authoritative.
func (m *Manager) SetBubbleBaseline(name string, perEpoch time.Duration, reports int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prof == nil || perEpoch <= 0 || reports <= 0 {
		return
	}
	for _, w := range m.workers {
		if w.name == name {
			w.est = m.prof.Track(name, perEpoch, reports)
			return
		}
	}
}

// ProfileUpdate applies an externally pushed re-profile (the live-mode
// path: an operator or profiling job re-measures the pipeline and pushes
// the new per-stage supply). Each updated stage's estimator is re-based
// onto the pushed level — superseding the one-shot profile — and the stage
// is re-planned immediately. Served on "Manager.ProfileUpdate".
func (m *Manager) ProfileUpdate(d ProfileUpdateDTO) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prof == nil {
		return
	}
	for _, su := range d.Stages {
		if su.BubbleNs <= 0 || su.Reports <= 0 {
			continue
		}
		for _, w := range m.workers {
			if w.stage != su.Stage || !w.alive {
				continue
			}
			if w.est == nil {
				w.est = m.prof.Track(w.name, time.Duration(su.BubbleNs), su.Reports)
			}
			w.est.Rebase(time.Duration(su.BubbleNs), su.Reports)
			if su.MemAvail > 0 {
				w.lastMem = su.MemAvail
			}
			m.replanLocked(w)
			break
		}
	}
}

// fitsOnlineLocked is the online admission predicate: the re-profiled
// memory must admit the task AND the estimated mean bubble must cover its
// worst-case pause-time fit (one jittered step plus host overhead). Callers
// gate it on est.Drifted() — until a detection the one-shot profile is
// authoritative and this predicate must not be consulted, which is what
// keeps zero-drift admission bit-identical.
func (m *Manager) fitsOnlineLocked(w *workerMeta, spec TaskSpec) bool {
	if !AdmitsMem(w.gpuMem, spec.Profile.MemBytes, m.opts.MemSlack) {
		return false
	}
	fit := spec.Profile.FitTime()
	return fit <= 0 || w.est == nil || w.est.MeanBubble() >= fit
}

// replanLocked is the drift response for one worker: fold the reported
// memory into the admission figure, demote every attached task the online
// profile no longer fits, then revive parked tasks the re-profiled cluster
// fits again (a grown stage may now hold a task that exhausted its budget
// against the old shape).
func (m *Manager) replanLocked(w *workerMeta) {
	m.stats.Replans++
	if w.lastMem > 0 {
		w.gpuMem = w.lastMem
	}
	if rec := w.current; rec != nil && !m.fitsOnlineLocked(w, rec.spec) {
		m.demoteLocked(w, rec)
	}
	if len(w.queue) > 0 {
		queued := append([]*taskRecord(nil), w.queue...)
		for _, rec := range queued {
			if !m.fitsOnlineLocked(w, rec.spec) {
				m.demoteLocked(w, rec)
			}
		}
	}
	m.reviveParkedLocked()
}

// demoteLocked pulls rec off w because the online profile no longer fits
// it: the live incarnation is stopped (its eventual exit report carries a
// stale incarnation and is discarded) and the task enters the same
// checkpoint-restart backoff cycle a crash uses. Work served since the
// last acknowledged pause is charged to LostWork exactly like crash
// re-placement — a demotion loses the un-checkpointed tail too.
func (m *Manager) demoteLocked(w *workerMeta, rec *taskRecord) {
	if rec.exited || rec.parked {
		return
	}
	m.stats.Demotions++
	if rec.serving && w.bubble != nil {
		// The partial serve of the in-flight bubble is real GPU time the
		// checkpoint will not cover; account it before planning recovery.
		served := m.eng.Now() - rec.servedFrom
		if served > w.bubble.Duration {
			served = w.bubble.Duration
		}
		if served > 0 {
			m.stats.BubbleTimeServed += served
			rec.servedSinceCkpt += served
		}
	}
	m.stats.RPCs++
	w.peer.Go("Worker.Stop", rec.refArgs, m.opts.RPCTimeout, func(any, error) {})
	m.detachLocked(rec)
	m.planRecoveryLocked(rec, "replan demotion: bubble supply no longer fits")
	m.wakeLocked(w)
}

// reviveParkedLocked re-admits parked tasks the current online profile
// fits somewhere. A revived task gets a fresh restart budget: parking was
// the old profile's verdict, and the re-plan that revives it is planning
// against new information. Iteration follows submission order — map order
// would be nondeterministic.
func (m *Manager) reviveParkedLocked() {
	for _, rec := range m.taskOrder {
		if !rec.parked || rec.exited {
			continue
		}
		if m.placeLocked(rec.spec) < 0 {
			continue
		}
		rec.parked = false
		rec.restarts = 0
		rec.exitErr = ""
		rec.state = sidetask.StateSubmitted
		m.stats.Revivals++
		m.replaceTaskLocked(rec)
	}
}
