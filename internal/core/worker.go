package core

import (
	"encoding/json"
	"fmt"
	"time"

	"freeride/internal/container"
	"freeride/internal/freerpc"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simtime"
)

// DefaultGrace is the framework-enforced mechanism's grace period: after a
// pause (or init) is initiated, the worker waits this long before checking
// that the task actually yielded the GPU, and SIGKILLs it otherwise
// (paper §4.5).
const DefaultGrace = 500 * time.Millisecond

// HarnessFactory builds a task harness from a wire spec. The default
// resolves the built-in tasks; custom deployments register their own.
type HarnessFactory func(spec TaskSpec) (*sidetask.Harness, error)

// BuiltinHarnessFactory resolves the six built-in side tasks.
func BuiltinHarnessFactory(spec TaskSpec) (*sidetask.Harness, error) {
	return sidetask.NewBuiltin(spec.Profile, spec.Mode, spec.WorkScale, spec.Seed)
}

// WorkerConfig configures one side task worker (one per GPU, paper §3.2).
type WorkerConfig struct {
	Name string
	// Grace is the framework-enforced kill delay; DefaultGrace if zero.
	Grace time.Duration
	// InitTimeout bounds InitSideTask before the framework-enforced kill;
	// defaults to 3×profile.InitTime + Grace.
	InitTimeout time.Duration
	// Factory builds harnesses; BuiltinHarnessFactory if nil.
	Factory HarnessFactory
	// DisableEnforcement turns off the framework-enforced kill checks
	// (grace-period and init-hang). Used by the Figure-8 "without limit"
	// scenarios and the enforcement ablation.
	DisableEnforcement bool
}

// WorkerStats counts worker-side events for the evaluation.
type WorkerStats struct {
	Created     uint64
	Inits       uint64
	Starts      uint64
	Pauses      uint64
	Stops       uint64
	GraceKills  uint64
	InitKills   uint64
	TaskExits   uint64
	TaskErrExit uint64
}

// workerTask is one deployed side task.
type workerTask struct {
	spec TaskSpec
	// incarnation echoes createArgs.Incarnation in every report, letting
	// the manager discard reports from replaced deployments.
	incarnation int
	harness     *sidetask.Harness
	cont        *container.Container
	// grace is the task's reusable framework-enforcement timer: every
	// pause re-arms the same handle (simtime.Reschedule) with the same
	// pre-built callback and name, so a pause/start cycle costs no
	// allocation and no event-queue surgery beyond the re-arm itself.
	grace     *simtime.Timer
	graceFn   func()
	graceName string
	// stateArgs pre-boxes the Manager.TaskState payload for each life-cycle
	// state, and exitOK the clean Manager.TaskExited payload: the worker
	// pushes one notification per transition for the whole run and must not
	// re-box a taskStatus per push (only error exits, which carry a dynamic
	// message, still allocate).
	stateArgs [int(sidetask.StateStopped) + 1]any
	exitOK    any
}

// stateBox returns the pre-boxed TaskState payload for s.
func (t *workerTask) stateBox(s sidetask.State) any {
	if s >= 0 && int(s) < len(t.stateArgs) && t.stateArgs[s] != nil {
		return t.stateArgs[s]
	}
	return taskStatus{Name: t.spec.Name, State: int(s)}
}

// Worker owns the side tasks of one GPU: it creates their containers on top
// of the MPS memory limits, relays the manager's state transitions, and
// enforces the execution-time limits.
type Worker struct {
	eng    simtime.Engine
	cfg    WorkerConfig
	device *simgpu.Device
	ctrs   *container.Runtime

	// mu rides the engine ownership regime (see simtime.Guard).
	mu    simtime.Guard
	tasks map[string]*workerTask
	// roster lists tasks in create order: Worker.Ping snapshots walk it
	// instead of the map so reply order is deterministic.
	roster   []*workerTask
	stats    WorkerStats
	notifyFn func(method string, params any) // manager notification channel
	// crashed marks a fault-plane hard kill: the worker stops reporting
	// forever and its task table is gone.
	crashed bool
	// wedgeUntil suppresses notifications until the given engine instant
	// (fault-plane wedge: the worker runs but stops reporting).
	wedgeUntil time.Duration
}

// NewWorker builds a worker for one device.
func NewWorker(eng simtime.Engine, device *simgpu.Device, ctrs *container.Runtime, cfg WorkerConfig) *Worker {
	if cfg.Grace <= 0 {
		cfg.Grace = DefaultGrace
	}
	if cfg.Factory == nil {
		cfg.Factory = BuiltinHarnessFactory
	}
	if cfg.Name == "" {
		cfg.Name = "worker-" + device.Name()
	}
	w := &Worker{
		eng:    eng,
		cfg:    cfg,
		device: device,
		ctrs:   ctrs,
		tasks:  make(map[string]*workerTask),
	}
	w.mu.Bind(eng)
	return w
}

// Name reports the worker name.
func (w *Worker) Name() string { return w.cfg.Name }

// Device returns the worker's GPU.
func (w *Worker) Device() *simgpu.Device { return w.device }

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Harness exposes a deployed task's harness for measurement (simulation
// only; the live daemons report over RPC instead).
func (w *Worker) Harness(name string) (*sidetask.Harness, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tasks[name]
	if !ok {
		return nil, false
	}
	return t.harness, true
}

// RegisterOn installs the worker's RPC methods on a mux.
func (w *Worker) RegisterOn(mux *freerpc.Mux) {
	freerpc.HandleFunc(mux, "Worker.Create", w.handleCreate)
	freerpc.HandleFunc(mux, "Worker.Init", w.handleInit)
	freerpc.HandleFunc(mux, "Worker.Start", w.handleStart)
	freerpc.HandleFunc(mux, "Worker.Pause", w.handlePause)
	freerpc.HandleFunc(mux, "Worker.Stop", w.handleStop)
	freerpc.HandleFunc(mux, "Worker.Query", w.handleQuery)
	mux.Handle("Worker.Info", func(json.RawMessage) (any, error) {
		w.mu.Lock()
		defer w.mu.Unlock()
		return workerInfo{Name: w.cfg.Name, GPUMem: w.device.MemFree(), NumTasks: len(w.tasks)}, nil
	})
	mux.Handle("Worker.Ping", func(json.RawMessage) (any, error) {
		return w.pingStatus()
	})
}

// pingStatus answers Worker.Ping: the worker's name plus a status snapshot
// of every deployed task, in create order. A crashed worker answers nothing
// useful — the error reply does not refresh the manager's lease, so a crash
// whose link somehow stays open is still detected by lease expiry. A merely
// wedged worker (notifications suppressed) still answers: the snapshot is
// the anti-entropy that heals the pushes the wedge swallowed.
func (w *Worker) pingStatus() (pingReply, error) {
	w.mu.Lock()
	if w.crashed {
		w.mu.Unlock()
		return pingReply{}, fmt.Errorf("worker %s: crashed", w.cfg.Name)
	}
	roster := append([]*workerTask(nil), w.roster...)
	w.mu.Unlock()
	rep := pingReply{Name: w.cfg.Name}
	for _, t := range roster {
		rep.Tasks = append(rep.Tasks, w.status(t))
	}
	return rep, nil
}

// SetNotify installs the channel for worker→manager notifications (task
// exits). The function must be safe to call from engine context.
func (w *Worker) SetNotify(fn func(method string, params any)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.notifyFn = fn
}

func (w *Worker) notify(method string, params any) {
	w.mu.Lock()
	fn := w.notifyFn
	if w.crashed || w.eng.Now() < w.wedgeUntil {
		fn = nil
	}
	w.mu.Unlock()
	if fn != nil {
		fn(method, params)
	}
}

// Crash simulates a hard worker failure (fault plane): notifications stop
// for good, every task container is killed — releasing its GPU state — and
// the task table is dropped. The worker keeps answering nothing useful; the
// manager learns of the death through its link closing or its lease
// expiring, exactly like a dead host.
func (w *Worker) Crash() {
	w.mu.Lock()
	if w.crashed {
		w.mu.Unlock()
		return
	}
	w.crashed = true
	dead := w.roster
	w.roster = nil
	w.tasks = make(map[string]*workerTask)
	w.mu.Unlock()
	for _, t := range dead {
		if t.grace != nil {
			t.grace.Cancel()
		}
		t.cont.Kill()
	}
}

// WedgeFor suppresses the worker's state/exit notifications for the window
// (fault plane: a wedged reporter). Tasks keep executing; the manager's
// cache goes stale until the window ends or a ping snapshot heals it.
func (w *Worker) WedgeFor(window time.Duration) {
	w.mu.Lock()
	if until := w.eng.Now() + window; until > w.wedgeUntil {
		w.wedgeUntil = until
	}
	w.mu.Unlock()
}

// handleCreate implements SUBMITTED→CREATED: build the harness, wrap it in
// a container with the MPS memory limit, start the process.
func (w *Worker) handleCreate(args createArgs) (any, error) {
	harness, err := w.cfg.Factory(args.Spec)
	if err != nil {
		return nil, fmt.Errorf("worker %s: factory: %w", w.cfg.Name, err)
	}
	harness.BindEngine(w.eng)
	if args.Ckpt != nil {
		// Restart-from-checkpoint: the new incarnation resumes from the
		// last progress the manager checkpointed.
		harness.Restore(sidetask.Counters{
			Steps:      args.Ckpt.Steps,
			KernelTime: time.Duration(args.Ckpt.KernelTimeNs),
			HostTime:   time.Duration(args.Ckpt.HostTimeNs),
			InsuffWait: time.Duration(args.Ckpt.InsuffNs),
		})
	}
	cspec := container.Spec{
		Name:        w.cfg.Name + "/" + args.Spec.Name,
		Device:      w.device,
		GPUMemLimit: args.MemLimitBytes,
		GPUWeight:   0, // kernels carry their own weight
	}
	w.mu.Lock()
	if old, dup := w.tasks[args.Spec.Name]; dup {
		// A newer incarnation may re-land on a worker that still holds the
		// exited remains of an older one (e.g. after an injected kernel
		// fault); only a live duplicate is an error.
		if old.cont.Alive() {
			w.mu.Unlock()
			return nil, fmt.Errorf("worker %s: duplicate task %q", w.cfg.Name, args.Spec.Name)
		}
		delete(w.tasks, args.Spec.Name)
		for i, rt := range w.roster {
			if rt == old {
				w.roster = append(w.roster[:i], w.roster[i+1:]...)
				break
			}
		}
		w.mu.Unlock()
		// Free the exited container's name for the new incarnation.
		_ = w.ctrs.Remove(cspec.Name)
	} else {
		w.mu.Unlock()
	}
	// Event-loop-capable harnesses (all built-in tasks) run inline on the
	// engine goroutine; arbitrary user implementations keep the goroutine
	// shell.
	var cont *container.Container
	if harness.CanInline() {
		cont, err = w.ctrs.RunInline(cspec, harness.Start)
	} else {
		cont, err = w.ctrs.Run(cspec, harness.Run)
	}
	if err != nil {
		return nil, fmt.Errorf("worker %s: container: %w", w.cfg.Name, err)
	}
	t := &workerTask{spec: args.Spec, incarnation: args.Incarnation, harness: harness, cont: cont}
	for s := sidetask.StateSubmitted; s <= sidetask.StateStopped; s++ {
		t.stateArgs[s] = taskStatus{Name: args.Spec.Name, State: int(s), Incarnation: args.Incarnation}
	}
	t.exitOK = taskStatus{Name: args.Spec.Name, Exited: true, Incarnation: args.Incarnation}
	w.mu.Lock()
	w.tasks[args.Spec.Name] = t
	w.roster = append(w.roster, t)
	w.stats.Created++
	w.mu.Unlock()

	// Push every state change to the manager so its cache never goes
	// stale (the paper's manager likewise learns transitions through its
	// RPC layer).
	harness.SetStateListener(func(s sidetask.State) {
		w.notify("Manager.TaskState", t.stateBox(s))
	})

	cont.Process().OnExit(func(err error) {
		w.mu.Lock()
		w.stats.TaskExits++
		if err != nil {
			w.stats.TaskErrExit++
		}
		w.mu.Unlock()
		if err == nil {
			w.notify("Manager.TaskExited", t.exitOK)
			return
		}
		w.notify("Manager.TaskExited", taskStatus{Name: args.Spec.Name, Exited: true, ExitErr: err.Error(), Incarnation: args.Incarnation})
	})
	return taskStatus{Name: args.Spec.Name, State: int(harness.State())}, nil
}

func (w *Worker) lookup(name string) (*workerTask, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tasks[name]
	if !ok {
		return nil, fmt.Errorf("worker %s: unknown task %q", w.cfg.Name, name)
	}
	return t, nil
}

// handleInit initiates CREATED→PAUSED and arms the init-hang protection.
func (w *Worker) handleInit(ref taskRef) (any, error) {
	t, err := w.lookup(ref.Name)
	if err != nil {
		return nil, err
	}
	switch t.harness.State() {
	case sidetask.StateSubmitted, sidetask.StateCreated:
		// Queue-tolerant: an Init arriving while CreateSideTask is still
		// loading is processed right after it finishes.
	default:
		return w.status(t), nil
	}
	t.harness.Deliver(sidetask.Command{Transition: sidetask.TransitionInit})
	w.mu.Lock()
	w.stats.Inits++
	w.mu.Unlock()

	if w.cfg.DisableEnforcement {
		return w.status(t), nil
	}
	timeout := w.cfg.InitTimeout
	if timeout <= 0 {
		// The init command may be queued behind a still-running
		// CreateSideTask, so the hang budget covers both phases.
		timeout = t.spec.Profile.CreateTime + 3*t.spec.Profile.InitTime + w.cfg.Grace
	}
	simtime.Detached(w.eng, timeout, "init-check:"+ref.Name, func() {
		if t.harness.State() == sidetask.StateCreated && t.cont.Alive() {
			w.mu.Lock()
			w.stats.InitKills++
			w.mu.Unlock()
			t.cont.Kill()
		}
	})
	return w.status(t), nil
}

// handleStart initiates PAUSED→RUNNING with the bubble deadline; a start
// for a RUNNING task extends its deadline. It cancels any pending grace
// check (the task is wanted again).
func (w *Worker) handleStart(args startArgs) (any, error) {
	t, err := w.lookup(args.Name)
	if err != nil {
		return nil, err
	}
	if t.grace != nil {
		t.grace.Cancel() // keep the handle: the next pause re-arms it
	}
	st := t.harness.State()
	switch st {
	case sidetask.StatePaused, sidetask.StateRunning:
		if t.harness.Mode() == sidetask.ModeImperative {
			// Imperative resume is SIGCONT (paper §4.2); once
			// RunGpuWorkload is in flight, the harness never reads its
			// inbox again, so only the first start is delivered as a
			// command.
			if t.cont.Process().Stopped() {
				t.cont.Cont()
			}
			if st == sidetask.StatePaused {
				t.harness.Deliver(sidetask.Command{
					Transition: sidetask.TransitionStart,
					BubbleEnd:  time.Duration(args.BubbleEndNs),
				})
			}
		} else {
			t.harness.Deliver(sidetask.Command{
				Transition: sidetask.TransitionStart,
				BubbleEnd:  time.Duration(args.BubbleEndNs),
			})
		}
		w.mu.Lock()
		w.stats.Starts++
		w.mu.Unlock()
		s := w.status(t)
		s.Started = true
		return s, nil
	default:
		return w.status(t), nil
	}
}

// handlePause initiates RUNNING→PAUSED and arms the framework-enforced
// check: after the grace period the task must have acknowledged the pause
// and the GPU must be free of its kernels, or it is SIGKILLed (paper §4.5,
// Figure 8a).
func (w *Worker) handlePause(ref taskRef) (any, error) {
	t, err := w.lookup(ref.Name)
	if err != nil {
		return nil, err
	}
	if t.harness.State() != sidetask.StateRunning {
		return w.status(t), nil
	}
	if t.harness.Mode() == sidetask.ModeImperative {
		// Transparent suspension; in-flight kernels keep running (the
		// asynchronous-kernel overhead of §5).
		t.cont.Stop()
	} else {
		t.harness.Deliver(sidetask.Command{Transition: sidetask.TransitionPause})
	}
	w.mu.Lock()
	w.stats.Pauses++
	w.mu.Unlock()

	if w.cfg.DisableEnforcement {
		return w.status(t), nil
	}
	if t.graceFn == nil {
		gpu := t.cont.GPU()
		t.graceName = "grace-check:" + ref.Name
		t.graceFn = func() {
			if !t.cont.Alive() {
				return
			}
			misbehaving := false
			if t.harness.Mode() == sidetask.ModeImperative {
				// Suspended processes are fine; a busy GPU means a kernel is
				// still hogging SMs long past the bubble.
				misbehaving = gpu != nil && gpu.Busy()
			} else {
				misbehaving = t.harness.State() == sidetask.StateRunning ||
					(gpu != nil && gpu.Busy())
			}
			if misbehaving {
				w.mu.Lock()
				w.stats.GraceKills++
				w.mu.Unlock()
				t.cont.Kill()
			}
		}
	}
	t.grace = simtime.Reschedule(w.eng, t.grace, w.cfg.Grace, t.graceName, t.graceFn)
	return w.status(t), nil
}

// handleStop initiates →STOPPED and kills the container if the task does
// not wind down within the grace period.
func (w *Worker) handleStop(ref taskRef) (any, error) {
	t, err := w.lookup(ref.Name)
	if err != nil {
		return nil, err
	}
	if t.harness.Mode() == sidetask.ModeImperative && t.cont.Process().Stopped() {
		t.cont.Cont() // let it observe the stop... or die trying
	}
	t.harness.Deliver(sidetask.Command{Transition: sidetask.TransitionStop})
	w.mu.Lock()
	w.stats.Stops++
	w.mu.Unlock()
	simtime.Detached(w.eng, w.cfg.Grace, "stop-check:"+ref.Name, func() {
		if t.cont.Alive() {
			t.cont.Kill()
		}
	})
	return w.status(t), nil
}

// handleQuery reports a task's state and counters.
func (w *Worker) handleQuery(ref taskRef) (any, error) {
	t, err := w.lookup(ref.Name)
	if err != nil {
		return nil, err
	}
	return w.status(t), nil
}

func (w *Worker) status(t *workerTask) taskStatus {
	c := t.harness.Counters()
	exited, exitErr, _ := t.cont.ExitInfo()
	msg := ""
	if exitErr != nil {
		msg = exitErr.Error()
	}
	return taskStatus{
		Name:         t.spec.Name,
		State:        int(t.harness.State()),
		Exited:       exited,
		ExitErr:      msg,
		Incarnation:  t.incarnation,
		Steps:        c.Steps,
		KernelTimeNs: int64(c.KernelTime),
		HostTimeNs:   int64(c.HostTime),
		InsuffNs:     int64(c.InsuffWait),
	}
}
