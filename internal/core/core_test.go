package core

import (
	"strings"
	"testing"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/container"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// rig assembles a manager plus n workers over in-memory RPC, with one
// free-standing GPU per worker (no pipeline; bubbles are scripted).
type rig struct {
	eng     *simtime.Virtual
	procs   *simproc.Runtime
	devices []*simgpu.Device
	workers []*Worker
	mgr     *Manager
}

func newRig(t *testing.T, n int, avail []int64, wcfg WorkerConfig) *rig {
	return newRigOpts(t, n, avail, wcfg, ManagerOptions{Tick: time.Millisecond})
}

func newRigOpts(t *testing.T, n int, avail []int64, wcfg WorkerConfig, mopts ManagerOptions) *rig {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	mgr := NewManager(eng, mopts)
	r := &rig{eng: eng, procs: procs, mgr: mgr}
	for i := 0; i < n; i++ {
		dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu" + string(rune('0'+i))})
		ctrs := container.NewRuntime(procs)
		cfg := wcfg
		cfg.Name = "worker" + string(rune('0'+i))
		w := NewWorker(eng, dev, ctrs, cfg)
		wmux := freerpc.NewMux()
		w.RegisterOn(wmux)
		mgrSide, workerSide := freerpc.MemPipe(eng, 200*time.Microsecond)
		mgrPeer := freerpc.NewPeer(eng, mgrSide, mgr.Mux())
		workerPeer := freerpc.NewPeer(eng, workerSide, wmux)
		w.SetNotify(func(method string, params any) {
			_ = workerPeer.Notify(method, params)
		})
		mgr.AddWorker(cfg.Name, i, avail[i], mgrPeer)
		r.devices = append(r.devices, dev)
		r.workers = append(r.workers, w)
	}
	return r
}

func spec(name string, p model.TaskProfile, mode sidetask.Mode) TaskSpec {
	return TaskSpec{Name: name, Profile: p, Mode: mode, WorkScale: sidetask.WorkNone, Seed: 7}
}

func TestAlgorithm1PlacementFiltersMemory(t *testing.T) {
	// Worker0 has 3 GiB available (stage-0-like), worker1 has 22 GiB.
	r := newRig(t, 2, []int64{3 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	// VGG19 (9.8 GiB) only fits worker1.
	w, err := r.mgr.SubmitAndPlace(spec("vgg", model.VGG19, sidetask.ModeIterative))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if w != "worker1" {
		t.Fatalf("placed on %s, want worker1", w)
	}
	// ResNet18 (2.63 GiB) fits both; worker0 has fewer tasks.
	w, err = r.mgr.SubmitAndPlace(spec("rn18", model.ResNet18, sidetask.ModeIterative))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if w != "worker0" {
		t.Fatalf("placed on %s, want worker0 (least loaded)", w)
	}
	r.eng.RunFor(time.Second)
}

func TestAlgorithm1RejectsWhenNoFit(t *testing.T) {
	r := newRig(t, 2, []int64{3 * model.GiB, 5 * model.GiB}, WorkerConfig{})
	err := r.mgr.Submit(spec("vgg", model.VGG19, sidetask.ModeIterative))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Submit = %v, want rejection", err)
	}
	if r.mgr.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", r.mgr.Stats().Rejected)
	}
}

func TestAlgorithm1BalancesLoad(t *testing.T) {
	r := newRig(t, 3, []int64{22 * model.GiB, 22 * model.GiB, 22 * model.GiB}, WorkerConfig{})
	placed := map[string]int{}
	for i := 0; i < 6; i++ {
		w, err := r.mgr.SubmitAndPlace(spec("t"+string(rune('0'+i)), model.ResNet18, sidetask.ModeIterative))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		placed[w]++
	}
	for w, n := range placed {
		if n != 2 {
			t.Fatalf("worker %s got %d tasks, want 2 (balanced): %v", w, n, placed)
		}
	}
	r.eng.RunFor(time.Second)
}

func TestMaxQueuePerWorkerCap(t *testing.T) {
	eng := simtime.NewVirtual()
	mgr := NewManager(eng, ManagerOptions{MaxQueuePerWorker: 1})
	a, _ := freerpc.MemPipe(eng, 0)
	peer := freerpc.NewPeer(eng, a, nil)
	mgr.AddWorker("w0", 0, 22*model.GiB, peer)
	if err := mgr.Submit(spec("t1", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if err := mgr.Submit(spec("t2", model.ResNet18, sidetask.ModeIterative)); err == nil {
		t.Fatal("second Submit accepted despite cap")
	}
}

// endToEnd drives a full task lifecycle with scripted bubbles and returns
// the harness counters.
func TestAlgorithm2ServesBubbles(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("rn18", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.mgr.Start()
	// Let create+init complete (create 1.5s + init 0.4s + slack).
	r.eng.RunFor(4 * time.Second)
	h, ok := r.workers[0].Harness("rn18")
	if !ok {
		t.Fatal("task not deployed on worker0")
	}
	if got := h.State(); got != sidetask.StatePaused {
		t.Fatalf("state before bubbles = %v, want PAUSED", got)
	}

	// Script three 500 ms bubbles 1 s apart.
	base := r.eng.Now()
	for i := 0; i < 3; i++ {
		r.mgr.AddBubble(bubble.Bubble{
			Stage: 0, Type: bubble.TypeA,
			Start:        base + time.Duration(i)*time.Second,
			Duration:     500 * time.Millisecond,
			MemAvailable: 22 * model.GiB,
		})
	}
	r.eng.RunFor(3 * time.Second)

	c := h.Counters()
	// 3 bubbles × ~500ms at ~31.6ms/step ≈ 45 steps total.
	if c.Steps < 30 || c.Steps > 50 {
		t.Fatalf("steps = %d, want ~45", c.Steps)
	}
	if got := h.State(); got != sidetask.StatePaused {
		t.Fatalf("state after bubbles = %v, want PAUSED", got)
	}
	// The task must not run outside bubbles: device idle between them.
	midGap := base + 700*time.Millisecond
	if occ := r.devices[0].Occupancy().At(midGap); occ != 0 {
		t.Fatalf("device busy (%v) between bubbles", occ)
	}
	st := r.mgr.Stats()
	if st.BubblesServed != 3 {
		t.Fatalf("BubblesServed = %d, want 3", st.BubblesServed)
	}
	if st.BubbleTimeServed <= 0 || st.BubbleTimeServed > st.BubbleTimeTotal {
		t.Fatalf("BubbleTimeServed = %v of %v", st.BubbleTimeServed, st.BubbleTimeTotal)
	}
}

func TestBubbleExpiryCounted(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	r.mgr.Start()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: 0, Duration: time.Millisecond})
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.mgr.Stats().BubblesExpired; got != 1 {
		t.Fatalf("BubblesExpired = %d, want 1", got)
	}
}

// refuseToPauseTask ignores the program-directed deadline: its steps are
// 2-second kernels, so a pause lands mid-step and the kernel keeps hogging
// the GPU — the Figure-8a misbehaver.
type refuseToPauseTask struct{}

func (refuseToPauseTask) CreateSideTask(ctx *sidetask.Ctx) error { return nil }
func (refuseToPauseTask) InitSideTask(ctx *sidetask.Ctx) error   { return ctx.GPU.AllocMem(model.GiB) }
func (refuseToPauseTask) StopSideTask(ctx *sidetask.Ctx) error   { return nil }
func (refuseToPauseTask) RunNextStep(ctx *sidetask.Ctx) error {
	return ctx.GPU.Exec(ctx.Proc, &simgpu.KernelSpec{Name: "hog", Duration: 2 * time.Second, Demand: 0.9, Weight: 0.9})
}

func TestFrameworkEnforcedKill(t *testing.T) {
	// The paper's framework-enforced mechanism (Fig. 8a): a task that does
	// not yield the GPU after a pause is SIGKILLed after the grace period.
	factory := func(s TaskSpec) (*sidetask.Harness, error) {
		p := s.Profile
		p.StepTime = 1 * time.Millisecond // lies to the program-directed check
		p.StepJitter = 0
		h := sidetask.NewIterativeHarness(s.Name, p, refuseToPauseTask{}, s.Seed)
		return h, nil
	}
	r := newRig(t, 1, []int64{22 * model.GiB},
		WorkerConfig{Grace: 300 * time.Millisecond, Factory: factory})
	if err := r.mgr.Submit(spec("hog", model.ResNet18, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(4 * time.Second)

	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 400 * time.Millisecond})
	// Bubble ends at +400ms; pause lands mid-2s-kernel; grace expires at
	// ~+700ms; the worker kills the container.
	r.eng.RunFor(2 * time.Second)

	ws := r.workers[0].Stats()
	if ws.GraceKills != 1 {
		t.Fatalf("GraceKills = %d, want 1", ws.GraceKills)
	}
	if r.devices[0].MemUsed() != 0 {
		t.Fatalf("device mem = %d after kill, want 0", r.devices[0].MemUsed())
	}
	// The manager learned about the death via the exit notification.
	var rec TaskView
	for _, tv := range r.mgr.Tasks() {
		if tv.Spec.Name == "hog" {
			rec = tv
		}
	}
	if !rec.Exited {
		t.Fatal("manager did not record the task exit")
	}
}

func TestOOMTaskKilledAndReported(t *testing.T) {
	// MPS memory cap: the manager sets limit = profiled mem + slack; a task
	// that allocates beyond it dies alone (Fig. 8b).
	leakFactory := func(s TaskSpec) (*sidetask.Harness, error) {
		return sidetask.NewIterativeHarness(s.Name, s.Profile, leakyTask{}, s.Seed), nil
	}
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{Factory: leakFactory})
	p := model.ResNet18
	p.MemBytes = 2 * model.GiB // MPS limit ≈ 2 GiB (+slack 0)
	if err := r.mgr.Submit(spec("leaky", p, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(4 * time.Second)
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 5 * time.Second})
	r.eng.RunFor(6 * time.Second)

	var rec TaskView
	for _, tv := range r.mgr.Tasks() {
		if tv.Spec.Name == "leaky" {
			rec = tv
		}
	}
	if !rec.Exited || !strings.Contains(rec.ExitErr, "memory limit") {
		t.Fatalf("task view = %+v, want OOM exit", rec)
	}
	if r.devices[0].MemUsed() != 0 {
		t.Fatalf("device mem = %d, want 0", r.devices[0].MemUsed())
	}
}

// leakyTask allocates another 512 MiB every step.
type leakyTask struct{}

func (leakyTask) CreateSideTask(ctx *sidetask.Ctx) error { return nil }
func (leakyTask) InitSideTask(ctx *sidetask.Ctx) error   { return ctx.GPU.AllocMem(model.GiB / 2) }
func (leakyTask) StopSideTask(ctx *sidetask.Ctx) error   { return nil }
func (leakyTask) RunNextStep(ctx *sidetask.Ctx) error {
	if err := ctx.GPU.AllocMem(model.GiB / 2); err != nil {
		return err
	}
	return ctx.GPU.Exec(ctx.Proc, &simgpu.KernelSpec{Name: "leak-step", Duration: 20 * time.Millisecond, Demand: 0.5})
}

func TestQueuedTaskServedAfterCurrentExits(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("first", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Submit(spec("second", model.PageRank, sidetask.ModeIterative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	// Stop the first task via the worker; the manager should promote the
	// second.
	h1, ok := r.workers[0].Harness("first")
	if !ok {
		t.Fatal("first task missing")
	}
	r.eng.Schedule(0, "stop-first", func() {
		h1.Deliver(sidetask.Command{Transition: sidetask.TransitionStop})
	})
	r.eng.RunFor(2 * time.Second)
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 300 * time.Millisecond})
	r.eng.RunFor(time.Second)
	h2, ok := r.workers[0].Harness("second")
	if !ok {
		t.Fatal("second task missing")
	}
	if h2.Counters().Steps == 0 {
		t.Fatal("queued task never served after first exited")
	}
}

func TestImperativePauseResumeViaSignals(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	if err := r.mgr.Submit(spec("sgd", model.GraphSGD, sidetask.ModeImperative)); err != nil {
		t.Fatal(err)
	}
	r.mgr.Start()
	r.eng.RunFor(6 * time.Second)
	base := r.eng.Now()
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base, Duration: 600 * time.Millisecond})
	r.mgr.AddBubble(bubble.Bubble{Stage: 0, Start: base + 2*time.Second, Duration: 600 * time.Millisecond})
	r.eng.RunFor(time.Second)
	h, _ := r.workers[0].Harness("sgd")
	stepsAfterFirst := h.Counters().Steps
	if stepsAfterFirst == 0 {
		t.Fatal("imperative task ran no steps in first bubble")
	}
	cont, err := r.workers[0].ctrs.Get("worker0/sgd")
	if err != nil {
		t.Fatal(err)
	}
	if !cont.Process().Stopped() {
		t.Fatal("imperative task not suspended between bubbles")
	}
	r.eng.RunFor(2 * time.Second)
	if got := h.Counters().Steps; got <= stepsAfterFirst {
		t.Fatalf("steps did not advance in second bubble: %d -> %d", stepsAfterFirst, got)
	}
}

func TestWorkerInfoRPC(t *testing.T) {
	r := newRig(t, 1, []int64{22 * model.GiB}, WorkerConfig{})
	var info workerInfo
	done := false
	r.procs.Spawn("query", func(p *simproc.Process) error {
		// Build a direct peer to the worker for the query.
		wmux := freerpc.NewMux()
		r.workers[0].RegisterOn(wmux)
		a, b := freerpc.MemPipe(r.eng, 0)
		client := freerpc.NewPeer(r.eng, a, nil)
		freerpc.NewPeer(r.eng, b, wmux)
		if err := client.Call(p, "Worker.Info", nil, &info, time.Second); err != nil {
			return err
		}
		done = true
		return nil
	})
	r.eng.RunFor(time.Second)
	if !done || info.Name != "worker0" {
		t.Fatalf("Worker.Info = %+v (done=%v)", info, done)
	}
}
