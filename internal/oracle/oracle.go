// Package oracle is the single shared resolver for the FREERIDE_ORACLE_*
// differential-oracle environment overrides.
//
// Historically each override was parsed at the layer that enforced it:
// REBALANCE and SHARECACHE inside simgpu, STEPFUSE inside sidetask, MANAGER
// inside core, DRIFT and SCHEDULE inside package freeride. The enforcement
// points have not moved — a device still forces its own config, the manager
// still resolves its own default mode — but every layer now reads the same
// parsed-once view from here, so the accepted spellings, the strictness
// (unknown values panic, loudly, at first use) and the documentation live
// in exactly one place.
//
// The overrides are CI's way of re-running the whole tier-1 suite under a
// retained differential arm (full-recompute rebalance, polling manager,
// share-cache off, unfused step loop, legacy schedule emitters, the
// armed-but-empty drift and serving planes). Every arm must reproduce the
// default arm's observable metrics bit-identically; the dedicated
// differential tests pin the same property in-process.
package oracle

import (
	"fmt"
	"os"
	"sync"
)

// Overrides is the parsed-once view of the FREERIDE_ORACLE_* environment.
type Overrides struct {
	// FullRebalance: FREERIDE_ORACLE_REBALANCE=full forces every device's
	// full-recompute scheduler pass instead of the incremental one.
	FullRebalance bool
	// NoShareCache: FREERIDE_ORACLE_SHARECACHE=off disables every device's
	// water-fill share cache (allocations recomputed on each rebalance).
	NoShareCache bool
	// NoStepFuse: FREERIDE_ORACLE_STEPFUSE=off forces every side-task step
	// loop onto the unfused two-event form (host sleep + kernel launch).
	NoStepFuse bool
	// LegacySchedule: FREERIDE_ORACLE_SCHEDULE=legacy routes 1F1B/GPipe op
	// lists through the retained pre-generator emitters.
	LegacySchedule bool
	// DriftArmed: FREERIDE_ORACLE_DRIFT=on arms the drift detector (with an
	// empty drift schedule) in every session without its own drift plane.
	DriftArmed bool
	// ServingArmed: FREERIDE_ORACLE_SERVING=on wires the manager's SLO
	// admission guard (with a zero guard factor) into every training
	// session — the dormant serving plane, which must be a structural
	// identity.
	ServingArmed bool
	// ManagerMode is the raw FREERIDE_ORACLE_MANAGER value ("" when unset).
	// Package core parses and validates it (the mode enum lives there).
	ManagerMode string
}

// Env returns the process-wide parsed overrides. The environment is read
// once; later mutations of os.Environ are invisible, matching the previous
// per-layer sync.OnceValue behaviour.
var Env = sync.OnceValue(func() Overrides {
	return Overrides{
		FullRebalance:  parse("FREERIDE_ORACLE_REBALANCE", []string{"full"}, []string{"incremental"}),
		NoShareCache:   parse("FREERIDE_ORACLE_SHARECACHE", []string{"off"}, []string{"on"}),
		NoStepFuse:     parse("FREERIDE_ORACLE_STEPFUSE", []string{"off"}, []string{"on"}),
		LegacySchedule: parse("FREERIDE_ORACLE_SCHEDULE", []string{"legacy"}, []string{"new", "generator"}),
		DriftArmed:     parse("FREERIDE_ORACLE_DRIFT", []string{"on", "1"}, []string{"off", "0"}),
		ServingArmed:   parse("FREERIDE_ORACLE_SERVING", []string{"on", "1"}, []string{"off", "0"}),
		ManagerMode:    os.Getenv("FREERIDE_ORACLE_MANAGER"),
	}
})

// parse reads the variable and reports whether its value is one of the
// armed spellings. The empty string and the disarmed spellings report
// false. Anything else panics — a typo in a CI row must fail the job, not
// silently run the default arm.
func parse(key string, armed, disarmed []string) bool {
	s := os.Getenv(key)
	if s == "" {
		return false
	}
	for _, a := range armed {
		if s == a {
			return true
		}
	}
	for _, d := range disarmed {
		if s == d {
			return false
		}
	}
	panic(fmt.Sprintf("oracle: bad %s %q (want one of %v or %v)", key, s, armed, disarmed))
}
