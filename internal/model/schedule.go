package model

import "fmt"

// Schedule identifies a pipeline schedule. It lives in the model package —
// not internal/pipeline — because the cost model dispatches on it (per-stage
// memory and closed-form bubble ratios are schedule properties); the
// pipeline package aliases it so engine call sites read naturally.
type Schedule int

// Supported schedules.
const (
	// Schedule1F1B is the DeepSpeed/Megatron-style one-forward-one-backward
	// schedule the paper trains with: min(M, S-s) warmup forwards, a steady
	// state alternating BP/FP, then cooldown backwards.
	Schedule1F1B Schedule = iota + 1
	// ScheduleGPipe runs all forwards then all backwards, maximizing the
	// mid-epoch bubble; included to show bubble-shape dependence on
	// scheduling (paper §2.2 discussion).
	ScheduleGPipe
	// ScheduleInterleaved is the Megatron interleaved schedule: the model is
	// split into Stages×V chunks, chunk v running on device v mod Stages
	// under 1F1B over the deeper virtual pipeline. Bubbles shrink roughly
	// ÷V; per-device weight memory is unchanged (V chunks of 1/V each) but
	// in-flight activations grow with the deeper warmup.
	ScheduleInterleaved
	// ScheduleZeroBubble splits each backward into an activation-gradient
	// B op (on the critical path) and a weight-gradient W op (dependency-free
	// filler), so cooldown bubbles are filled with deferred W work — the
	// ZB-H1 idea of Zero Bubble Pipeline Parallelism. In this testbed's
	// barrier-synchronized epochs the per-stage idle floor is (S-1)·FP, so
	// the rate approaches zero as M grows rather than reaching it exactly.
	ScheduleZeroBubble

	scheduleMax = ScheduleZeroBubble
)

// String names the schedule the way the experiment tables do.
func (k Schedule) String() string {
	switch k {
	case Schedule1F1B:
		return "1f1b"
	case ScheduleGPipe:
		return "gpipe"
	case ScheduleInterleaved:
		return "interleaved"
	case ScheduleZeroBubble:
		return "zero-bubble"
	default:
		return fmt.Sprintf("Schedule(%d)", int(k))
	}
}

// ParseSchedule is String's inverse.
func ParseSchedule(s string) (Schedule, error) {
	for k := Schedule(1); k <= scheduleMax; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("model: unknown schedule %q", s)
}

// AllSchedules lists every schedule in declaration order.
func AllSchedules() []Schedule {
	out := make([]Schedule, 0, int(scheduleMax))
	for k := Schedule(1); k <= scheduleMax; k++ {
		out = append(out, k)
	}
	return out
}
