// Package model holds the calibrated cost models the simulation runs on:
// the GPT-style LLMs whose pipeline-parallel training produces the bubbles
// (paper §2.2, §6.1.3), the six side-task workloads (paper §6.1.4), and the
// server platforms with their prices (paper §6.1.1).
//
// Calibration sources, all from the paper:
//   - 3.6B / 4 stages / 4 micro-batches: FP ≈ 0.22 s per micro-batch,
//     BP ≈ 2×FP, bubble durations 0.22–1.04 s, bubble rate ≈ 42%.
//   - Bubble rate falls 42.4% → 40.4% from 1.2B → 6B (Fig. 2b) because the
//     per-epoch optimizer step grows with model size while bubble time
//     shrinks with the (memory-capped) micro-batch compute time.
//   - Micro-batch count 8 drops the bubble rate to ≈26.2%.
//   - Per-stage memory decreases with stage index — available-to-side-task
//     memory spans <3 GB (stage 0) to >20 GB (stage 3) (Fig. 1b).
//   - ResNet18 batch-64: 30.4 ms/step, 2.63 GB (§2.3).
package model

import (
	"fmt"
	"time"
)

// GiB is one gibibyte in bytes.
const GiB = int64(1) << 30

// LLM describes one pipeline-trained language model (the main workload).
type LLM struct {
	// Name identifies the preset, e.g. "nanogpt-3.6b".
	Name string
	// ParamsB is the parameter count in billions.
	ParamsB float64
	// FPPerMB is the per-stage forward time for one micro-batch on the
	// reference GPU (micro-batch size is already maximized for memory, as
	// in the paper's methodology).
	FPPerMB time.Duration
	// BPPerMB is the per-stage backward time for one micro-batch
	// (typically ≈ 2×FPPerMB [74]).
	BPPerMB time.Duration
	// OptStep is the per-epoch optimizer step executed by every stage
	// after its last backward; it grows with the per-stage parameter
	// count and does not produce bubbles.
	OptStep time.Duration
	// WeightMemPerStage is weights+gradients+optimizer state per stage
	// (≈16 bytes/param with fp16 weights and fp32 Adam state).
	WeightMemPerStage int64
	// ActMemPerMB is the activation footprint of one in-flight
	// micro-batch.
	ActMemPerMB int64
	// BaseMem is the framework + CUDA context overhead per GPU.
	BaseMem int64
	// CommLatency is the stage-to-stage activation transfer time.
	CommLatency time.Duration
}

// Presets matching the paper's nanoGPT configurations. Smaller models train
// with larger (memory-maximized) micro-batches, so their per-micro-batch
// compute is *longer* — this is why the paper's epoch time falls as the
// model grows (Fig. 2b).
var (
	NanoGPT1B = LLM{
		Name:              "nanogpt-1.2b",
		ParamsB:           1.2,
		FPPerMB:           250 * time.Millisecond,
		BPPerMB:           500 * time.Millisecond,
		OptStep:           60 * time.Millisecond,
		WeightMemPerStage: gib(4.8),
		ActMemPerMB:       gib(9.3),
		BaseMem:           5 * GiB,
		CommLatency:       2 * time.Millisecond,
	}
	NanoGPT3B = LLM{
		Name:              "nanogpt-3.6b",
		ParamsB:           3.6,
		FPPerMB:           220 * time.Millisecond,
		BPPerMB:           440 * time.Millisecond,
		OptStep:           110 * time.Millisecond,
		WeightMemPerStage: gib(14.4),
		ActMemPerMB:       gib(6.4),
		BaseMem:           5 * GiB,
		CommLatency:       2 * time.Millisecond,
	}
	NanoGPT6B = LLM{
		Name:              "nanogpt-6b",
		ParamsB:           6.0,
		FPPerMB:           190 * time.Millisecond,
		BPPerMB:           380 * time.Millisecond,
		OptStep:           250 * time.Millisecond,
		WeightMemPerStage: 24 * GiB,
		ActMemPerMB:       gib(4.5),
		BaseMem:           5 * GiB,
		CommLatency:       2 * time.Millisecond,
	}
)

// LLMPresets lists the available model presets.
var LLMPresets = []LLM{NanoGPT1B, NanoGPT3B, NanoGPT6B}

// LLMByName resolves a preset by name or parameter count shorthand
// ("1.2", "3.6", "6").
func LLMByName(name string) (LLM, error) {
	for _, m := range LLMPresets {
		if m.Name == name {
			return m, nil
		}
	}
	switch name {
	case "1.2", "1.2b", "1.2B":
		return NanoGPT1B, nil
	case "3.6", "3.6b", "3.6B":
		return NanoGPT3B, nil
	case "6", "6b", "6B":
		return NanoGPT6B, nil
	}
	return LLM{}, fmt.Errorf("model: unknown LLM preset %q", name)
}

// StageMemUsed reports the training memory footprint of the given stage in
// an S-stage, M-micro-batch 1F1B pipeline. Earlier stages keep more
// in-flight activations (min(M, S-s)), which is why available memory grows
// with the stage index (paper Fig. 1b).
func (m LLM) StageMemUsed(stage, stages, microBatches int) int64 {
	return m.StageMemUsedSched(Schedule1F1B, stage, stages, microBatches, 1)
}

// StageMemUsedSched is the schedule-aware memory model. Per schedule the
// in-flight activation count differs:
//
//   - 1F1B holds min(M, S-s) activations (the classic warmup depth).
//   - GPipe holds all M (every forward completes before any backward).
//   - Zero-bubble also holds all M: deferring every W detaches activation
//     release from the backward cascade, so forwards pile up uncapped —
//     GPipe's footprint is the price of the near-zero bubble (the ZB-H2
//     memory-for-time trade; see pipeline.opsZeroBubble).
//   - Interleaved (any schedule executed with virtual > 1) keeps per-device
//     weights unchanged (V chunks of WeightMemPerStage/V each) while each
//     chunk v = stage + c·S holds min(M, S·V-v) activations of 1/V size.
//
// For Schedule1F1B with virtual == 1 the arithmetic is exactly the historic
// StageMemUsed — bit-identity of the Table 2 reproduction depends on it.
func (m LLM) StageMemUsedSched(sched Schedule, stage, stages, microBatches, virtual int) int64 {
	if virtual < 1 {
		virtual = 1
	}
	if virtual > 1 {
		nv := stages * virtual
		var act int64
		for c := 0; c < virtual; c++ {
			v := stage + c*stages
			inflight := nv - v
			if sched == ScheduleGPipe {
				inflight = microBatches
			}
			if microBatches < inflight {
				inflight = microBatches
			}
			if inflight < 1 {
				inflight = 1
			}
			act += int64(inflight) * (m.ActMemPerMB / int64(virtual))
		}
		return m.BaseMem + m.WeightMemPerStage + act
	}
	inflight := stages - stage
	switch sched {
	case ScheduleGPipe, ScheduleZeroBubble:
		inflight = microBatches
	}
	if microBatches < inflight {
		inflight = microBatches
	}
	if inflight < 1 {
		inflight = 1
	}
	return m.BaseMem + m.WeightMemPerStage + int64(inflight)*m.ActMemPerMB
}

// StageMemAvailable reports device memory left for side tasks on the given
// stage's GPU (1F1B).
func (m LLM) StageMemAvailable(deviceMem int64, stage, stages, microBatches int) int64 {
	return m.StageMemAvailableSched(deviceMem, Schedule1F1B, stage, stages, microBatches, 1)
}

// StageMemAvailableSched is the schedule-aware variant of StageMemAvailable.
func (m LLM) StageMemAvailableSched(deviceMem int64, sched Schedule, stage, stages, microBatches, virtual int) int64 {
	avail := deviceMem - m.StageMemUsedSched(sched, stage, stages, microBatches, virtual)
	if avail < 0 {
		return 0
	}
	return avail
}

// EpochSpan estimates the 1F1B epoch makespan: warmup forwards cascade down
// the pipeline, M micro-batches stream through, cooldown backwards cascade
// back, then the optimizer step runs everywhere.
func (m LLM) EpochSpan(stages, microBatches int) time.Duration {
	return m.EpochSpanSched(Schedule1F1B, stages, microBatches, 1)
}

// EpochSpanSched estimates the epoch makespan per schedule (communication
// latency excluded, like EpochSpan):
//
//   - 1F1B and GPipe share the (S-1)(FP+BP) pipeline-fill overhead — they
//     differ in bubble microstructure and memory, not mean idle time.
//   - Interleaved divides the fill by the virtual-chunk count: (S-1)(FP+BP)/V,
//     the Megatron ideal (SNIPPETS.md snippet 3). The simulated pipeline pays
//     extra for chunk contention on the shared device, so this is a lower
//     bound there rather than an exact match.
//   - Zero-bubble's cooldown is filled with W work; only the (S-1)·FP
//     warmup cascade remains un-fillable under the epoch barrier — plus a
//     GPipe-like (S-M)·FP drain penalty when M < S (too few micro-batches
//     to keep a stage busy over the first backward's round trip).
func (m LLM) EpochSpanSched(sched Schedule, stages, microBatches, virtual int) time.Duration {
	if virtual < 1 {
		virtual = 1
	}
	busy := time.Duration(microBatches)*(m.FPPerMB+m.BPPerMB) + m.OptStep
	switch sched {
	case ScheduleZeroBubble:
		fill := stages - 1
		if microBatches < stages {
			fill += stages - microBatches
		}
		return time.Duration(fill)*m.FPPerMB + busy
	case ScheduleInterleaved:
		return time.Duration(stages-1)*(m.FPPerMB+m.BPPerMB)/time.Duration(virtual) + busy
	default:
		if virtual > 1 {
			// 1F1B/GPipe executed with virtual chunks is the interleaved
			// pipeline.
			return time.Duration(stages-1)*(m.FPPerMB+m.BPPerMB)/time.Duration(virtual) + busy
		}
		return time.Duration(stages-1)*(m.FPPerMB+m.BPPerMB) + busy
	}
}

// BubbleRateEstimate predicts the per-stage bubble fraction of an epoch via
// the schedule's closed form (SNIPPETS.md snippets 1–3): GPipe and 1F1B both
// idle (S-1)(FP+BP) per stage — the (S-1)/(M+S-1) shape when FP+BP dominate;
// interleaving divides the fill overhead by V; zero-bubble approaches zero as
// M grows, bounded below by the (S-1)·FP warmup cascade.
func (m LLM) BubbleRateEstimate(sched Schedule, stages, microBatches, virtual int) float64 {
	if stages <= 1 {
		return 0
	}
	span := m.EpochSpanSched(sched, stages, microBatches, virtual)
	busy := time.Duration(microBatches)*(m.FPPerMB+m.BPPerMB) + m.OptStep
	return float64(span-busy) / float64(span)
}

// gib converts a fractional GiB count to bytes at runtime (fractional GiB
// literals are not representable as integer constants).
func gib(f float64) int64 { return int64(f * float64(GiB)) }
