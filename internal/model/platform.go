package model

import "time"

// Platform describes one of the paper's three servers (§6.1.1).
type Platform struct {
	Name string
	// GPUs is the device count (0 for the CPU server).
	GPUs int
	// GPUMemBytes is per-device memory.
	GPUMemBytes int64
	// PricePerHour is the rental price in dollars (June 2024 quotes).
	PricePerHour float64
}

// The paper's evaluation platforms.
var (
	// ServerI is the training server: 4× RTX 6000 Ada, 48 GB each.
	ServerI = Platform{Name: "server-i", GPUs: 4, GPUMemBytes: 48 * GiB, PricePerHour: 3.96}
	// ServerII is the dedicated lower-tier GPU: RTX 3080, 10 GB.
	ServerII = Platform{Name: "server-ii", GPUs: 1, GPUMemBytes: 10 * GiB, PricePerHour: 0.18}
	// ServerCPU is the 8-core Xeon instance used for the CPU comparison.
	ServerCPU = Platform{Name: "server-cpu", GPUs: 0, PricePerHour: 0.08}
)

// StepTimeOn reports the task's solo per-step duration on a platform,
// using the per-task relative speed factors. ok is false when the task does
// not fit the platform (GPU memory), mirroring the paper's "OOM" cells in
// Figure 7(b).
func (t TaskProfile) StepTimeOn(p Platform) (d time.Duration, ok bool) {
	switch p.Name {
	case ServerI.Name:
		return t.StepTime, t.MemBytes <= p.GPUMemBytes
	case ServerII.Name:
		if t.SpeedServerII <= 0 {
			return 0, false
		}
		return time.Duration(float64(t.StepTime) / t.SpeedServerII), t.MemBytes <= p.GPUMemBytes
	case ServerCPU.Name:
		if t.SpeedCPU <= 0 {
			return 0, false
		}
		// CPU runs are not GPU-memory constrained.
		return time.Duration(float64(t.StepTime) / t.SpeedCPU), true
	default:
		return t.StepTime, true
	}
}

// ThroughputOn reports steps/second of the task running dedicated on p, or
// 0 when it does not fit (the paper's Table 1 columns).
func (t TaskProfile) ThroughputOn(p Platform) float64 {
	d, ok := t.StepTimeOn(p)
	if !ok || d <= 0 {
		return 0
	}
	return 1.0 / d.Seconds()
}
