package model

import (
	"math"
	"testing"
	"time"
)

func TestBubbleRateMatchesPaperShape(t *testing.T) {
	// Paper Fig. 2b: bubble rate falls slightly from 42.4% (1.2B) to 40.4%
	// (6B) at 4 stages / 4 micro-batches.
	r12 := NanoGPT1B.BubbleRateEstimate(4, 4)
	r36 := NanoGPT3B.BubbleRateEstimate(4, 4)
	r60 := NanoGPT6B.BubbleRateEstimate(4, 4)
	if !(r12 > r36 && r36 > r60) {
		t.Fatalf("bubble rates not decreasing with model size: %v %v %v", r12, r36, r60)
	}
	if math.Abs(r12-0.424) > 0.02 {
		t.Fatalf("1.2B bubble rate = %v, want ~0.424", r12)
	}
	if math.Abs(r60-0.404) > 0.02 {
		t.Fatalf("6B bubble rate = %v, want ~0.404", r60)
	}
}

func TestBubbleRateDropsWithMicroBatches(t *testing.T) {
	// Paper §2.2.2: micro-batch count 8 gives ~26.2%.
	r8 := NanoGPT3B.BubbleRateEstimate(4, 8)
	if math.Abs(r8-0.262) > 0.02 {
		t.Fatalf("micro-batch-8 bubble rate = %v, want ~0.262", r8)
	}
}

func TestEpochTimeDecreasesWithModelSize(t *testing.T) {
	// Paper Fig. 2b: per-epoch time decreases as models grow (memory-capped
	// micro-batches shrink).
	e12 := NanoGPT1B.EpochSpan(4, 4)
	e36 := NanoGPT3B.EpochSpan(4, 4)
	e60 := NanoGPT6B.EpochSpan(4, 4)
	if !(e12 > e36 && e36 > e60) {
		t.Fatalf("epoch spans not decreasing: %v %v %v", e12, e36, e60)
	}
}

func TestStageMemoryDecreasesWithStage(t *testing.T) {
	// Paper Fig. 1b: stage 0 uses the most memory.
	prev := int64(math.MaxInt64)
	for s := 0; s < 4; s++ {
		used := NanoGPT3B.StageMemUsed(s, 4, 4)
		if used >= prev {
			t.Fatalf("stage %d memory %d not < previous %d", s, used, prev)
		}
		prev = used
	}
}

func TestStageMemAvailableRange(t *testing.T) {
	// Paper §2.2.1: available memory spans <3 GB to >20 GB for 3.6B.
	avail0 := NanoGPT3B.StageMemAvailable(48*GiB, 0, 4, 4)
	avail3 := NanoGPT3B.StageMemAvailable(48*GiB, 3, 4, 4)
	if avail0 > 3*GiB+GiB/10 {
		t.Fatalf("stage 0 available = %.2f GiB, want ≈<3 GiB", float64(avail0)/float64(GiB))
	}
	if avail3 < 20*GiB {
		t.Fatalf("stage 3 available = %.2f GiB, want >20 GiB", float64(avail3)/float64(GiB))
	}
}

func TestAvailableMemoryShrinksWithModelSize(t *testing.T) {
	// Paper Fig. 2a: larger models leave less bubble memory (late stages).
	a12 := NanoGPT1B.StageMemAvailable(48*GiB, 3, 4, 4)
	a36 := NanoGPT3B.StageMemAvailable(48*GiB, 3, 4, 4)
	a60 := NanoGPT6B.StageMemAvailable(48*GiB, 3, 4, 4)
	if !(a12 > a36 && a36 > a60) {
		t.Fatalf("stage-3 available not decreasing: %d %d %d", a12, a36, a60)
	}
}

func TestMicroBatchCountDoesNotChangeStageMemory(t *testing.T) {
	// 1F1B caps in-flight activations at min(M, S-s): going from M=4 to
	// M=8 must not change stage-0 memory (S=4).
	m4 := NanoGPT3B.StageMemUsed(0, 4, 4)
	m8 := NanoGPT3B.StageMemUsed(0, 4, 8)
	if m4 != m8 {
		t.Fatalf("stage-0 memory changed with micro-batch count: %d vs %d", m4, m8)
	}
}

func TestLLMByName(t *testing.T) {
	for _, name := range []string{"nanogpt-3.6b", "3.6", "3.6b", "3.6B"} {
		m, err := LLMByName(name)
		if err != nil || m.ParamsB != 3.6 {
			t.Fatalf("LLMByName(%q) = %v/%v", name, m.Name, err)
		}
	}
	if _, err := LLMByName("gpt5"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTaskByName(t *testing.T) {
	for _, p := range TaskProfiles {
		got, err := TaskByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("TaskByName(%q) failed: %v", p.Name, err)
		}
	}
	if _, err := TaskByName("bitcoin-miner"); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestTaskMemoryVsStageAvailability(t *testing.T) {
	// The paper's Fig. 9 placement outcomes: ResNet18 and PageRank fit all
	// stages; ResNet50 and Graph SGD miss stage 0; VGG19 and Image miss
	// stages 0 and 1.
	avail := make([]int64, 4)
	for s := range avail {
		avail[s] = NanoGPT3B.StageMemAvailable(48*GiB, s, 4, 4)
	}
	fits := func(task TaskProfile, stage int) bool { return task.MemBytes <= avail[stage] }
	tests := []struct {
		task      TaskProfile
		wantStage []bool
	}{
		{ResNet18, []bool{true, true, true, true}},
		{PageRank, []bool{true, true, true, true}},
		{ResNet50, []bool{false, true, true, true}},
		{GraphSGD, []bool{false, true, true, true}},
		{VGG19, []bool{false, false, true, true}},
		{Image, []bool{false, false, true, true}},
	}
	for _, tc := range tests {
		for s, want := range tc.wantStage {
			if got := fits(tc.task, s); got != want {
				t.Errorf("%s fits stage %d = %v, want %v (task %.2f GiB, avail %.2f GiB)",
					tc.task.Name, s, got, want,
					float64(tc.task.MemBytes)/float64(GiB), float64(avail[s])/float64(GiB))
			}
		}
	}
}

func TestWithBatchScaling(t *testing.T) {
	b64 := ResNet18.WithBatch(64)
	if b64.StepTime != ResNet18.StepTime {
		t.Fatalf("default batch rescaled: %v vs %v", b64.StepTime, ResNet18.StepTime)
	}
	b128 := ResNet18.WithBatch(128)
	if b128.StepTime <= ResNet18.StepTime {
		t.Fatal("batch 128 step not longer than batch 64")
	}
	if b128.MemBytes <= ResNet18.MemBytes {
		t.Fatal("batch 128 memory not larger than batch 64")
	}
	b16 := ResNet18.WithBatch(16)
	if b16.StepTime >= ResNet18.StepTime || b16.MemBytes >= ResNet18.MemBytes {
		t.Fatal("batch 16 not smaller than batch 64")
	}
	// Consistency: the batch-64 reconstruction matches the headline profile
	// within rounding.
	recon := ResNet18.StepTimeFixed + 64*ResNet18.StepTimePerSmp
	if d := recon - ResNet18.StepTime; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("batch model inconsistent with StepTime: %v vs %v", recon, ResNet18.StepTime)
	}
}

func TestWithBatchNoopForNonScalable(t *testing.T) {
	p := PageRank.WithBatch(128)
	if p.Name != PageRank.Name || p.StepTime != PageRank.StepTime {
		t.Fatal("non-scalable task was rescaled")
	}
}

func TestVGGOOMOnServerIIAtLargeBatch(t *testing.T) {
	// Paper Fig. 7b marks OOM for large batches on Server-II (10 GB).
	if _, ok := VGG19.WithBatch(64).StepTimeOn(ServerII); !ok {
		t.Fatal("VGG19 batch 64 should fit Server-II")
	}
	if _, ok := VGG19.WithBatch(96).StepTimeOn(ServerII); ok {
		t.Fatal("VGG19 batch 96 should OOM on Server-II")
	}
	if _, ok := VGG19.WithBatch(128).StepTimeOn(ServerII); ok {
		t.Fatal("VGG19 batch 128 should OOM on Server-II")
	}
}

func TestThroughputOrdering(t *testing.T) {
	// Server-I > Server-II > CPU for every task (Table 1's platform order).
	for _, task := range TaskProfiles {
		thI := task.ThroughputOn(ServerI)
		thII := task.ThroughputOn(ServerII)
		thCPU := task.ThroughputOn(ServerCPU)
		if !(thI > thII && thII > thCPU && thCPU > 0) {
			t.Errorf("%s throughput ordering violated: I=%v II=%v CPU=%v",
				task.Name, thI, thII, thCPU)
		}
	}
}

func TestEpochSpanComponents(t *testing.T) {
	// EpochSpan = (S-1)(FP+BP) + M(FP+BP) + Opt for the calibrated models.
	m := NanoGPT3B
	want := 3*(m.FPPerMB+m.BPPerMB) + 4*(m.FPPerMB+m.BPPerMB) + m.OptStep
	if got := m.EpochSpan(4, 4); got != want {
		t.Fatalf("EpochSpan = %v, want %v", got, want)
	}
}
