package model

import (
	"math"
	"testing"
	"time"
)

func TestBubbleRateMatchesPaperShape(t *testing.T) {
	// Paper Fig. 2b: bubble rate falls slightly from 42.4% (1.2B) to 40.4%
	// (6B) at 4 stages / 4 micro-batches.
	r12 := NanoGPT1B.BubbleRateEstimate(Schedule1F1B, 4, 4, 1)
	r36 := NanoGPT3B.BubbleRateEstimate(Schedule1F1B, 4, 4, 1)
	r60 := NanoGPT6B.BubbleRateEstimate(Schedule1F1B, 4, 4, 1)
	if !(r12 > r36 && r36 > r60) {
		t.Fatalf("bubble rates not decreasing with model size: %v %v %v", r12, r36, r60)
	}
	if math.Abs(r12-0.424) > 0.02 {
		t.Fatalf("1.2B bubble rate = %v, want ~0.424", r12)
	}
	if math.Abs(r60-0.404) > 0.02 {
		t.Fatalf("6B bubble rate = %v, want ~0.404", r60)
	}
}

func TestBubbleRateDropsWithMicroBatches(t *testing.T) {
	// Paper §2.2.2: micro-batch count 8 gives ~26.2%.
	r8 := NanoGPT3B.BubbleRateEstimate(Schedule1F1B, 4, 8, 1)
	if math.Abs(r8-0.262) > 0.02 {
		t.Fatalf("micro-batch-8 bubble rate = %v, want ~0.262", r8)
	}
}

func TestBubbleRateEstimateDispatchesOnSchedule(t *testing.T) {
	m := NanoGPT3B
	f, b, opt := m.FPPerMB, m.BPPerMB, m.OptStep
	for _, S := range []int{2, 4, 8} {
		for _, M := range []int{4, 8, 16} {
			busy := time.Duration(M)*(f+b) + opt
			fill1 := time.Duration(S-1) * (f + b)
			r1 := m.BubbleRateEstimate(Schedule1F1B, S, M, 1)
			if want := float64(fill1) / float64(fill1+busy); math.Abs(r1-want) > 1e-12 {
				t.Errorf("1f1b S=%d M=%d: %v, want %v", S, M, r1, want)
			}
			// GPipe and 1F1B share the closed-form mean idle; they differ in
			// memory and bubble microstructure, not fill overhead.
			if rg := m.BubbleRateEstimate(ScheduleGPipe, S, M, 1); rg != r1 {
				t.Errorf("gpipe S=%d M=%d: %v != 1f1b %v", S, M, rg, r1)
			}
			// Interleaving with V chunks divides the fill overhead by V
			// (the Megatron ideal, SNIPPETS.md snippet 3).
			for _, V := range []int{2, 4} {
				fillV := time.Duration(S-1) * (f + b) / time.Duration(V)
				rv := m.BubbleRateEstimate(ScheduleInterleaved, S, M, V)
				if want := float64(fillV) / float64(fillV+busy); math.Abs(rv-want) > 1e-12 {
					t.Errorf("interleaved S=%d M=%d V=%d: %v, want %v", S, M, V, rv, want)
				}
				if rv >= r1 {
					t.Errorf("interleaved S=%d M=%d V=%d rate %v not < 1f1b %v", S, M, V, rv, r1)
				}
			}
			// Zero-bubble keeps the (S-1)·FP warmup cascade plus a
			// GPipe-like drain penalty when M < S.
			fillZ := time.Duration(S-1) * f
			if M < S {
				fillZ += time.Duration(S-M) * f
			}
			rz := m.BubbleRateEstimate(ScheduleZeroBubble, S, M, 1)
			if want := float64(fillZ) / float64(fillZ+busy); math.Abs(rz-want) > 1e-12 {
				t.Errorf("zero-bubble S=%d M=%d: %v, want %v", S, M, rz, want)
			}
			if rz >= r1 {
				t.Errorf("zero-bubble S=%d M=%d rate %v not < 1f1b %v", S, M, rz, r1)
			}
			if M >= S && rz >= r1/2 {
				t.Errorf("zero-bubble S=%d M=%d rate %v not well below 1f1b %v", S, M, rz, r1)
			}
		}
	}
	// Rate → 0 as M grows.
	if r := m.BubbleRateEstimate(ScheduleZeroBubble, 4, 256, 1); r > 0.01 {
		t.Errorf("zero-bubble M=256 rate = %v, want ≈0", r)
	}
	if m.BubbleRateEstimate(Schedule1F1B, 1, 4, 1) != 0 {
		t.Error("single stage must have zero estimated bubbles")
	}
}

func TestStageMemUsedSchedShapes(t *testing.T) {
	m := NanoGPT3B
	S, M := 4, 8
	// GPipe stage memory is stage-independent (all M in flight) and larger
	// than 1F1B everywhere but the last... and OOMs Server-I at M=8.
	for s := 0; s < S; s++ {
		g := m.StageMemUsedSched(ScheduleGPipe, s, S, M, 1)
		o := m.StageMemUsedSched(Schedule1F1B, s, S, M, 1)
		if g < o {
			t.Errorf("gpipe stage %d mem %d < 1f1b %d", s, g, o)
		}
		if g != m.StageMemUsedSched(ScheduleGPipe, 0, S, M, 1) {
			t.Errorf("gpipe stage %d mem not uniform", s)
		}
	}
	if g := m.StageMemUsedSched(ScheduleGPipe, 0, S, M, 1); g <= ServerI.GPUMemBytes {
		t.Errorf("gpipe M=8 stage mem %d should exceed Server-I %d", g, ServerI.GPUMemBytes)
	}
	// Zero-bubble defers every W, so activations pile up to GPipe's
	// footprint — the memory price of the near-zero bubble.
	for s := 0; s < S; s++ {
		z := m.StageMemUsedSched(ScheduleZeroBubble, s, S, M, 1)
		g := m.StageMemUsedSched(ScheduleGPipe, s, S, M, 1)
		if z != g {
			t.Errorf("zero-bubble stage %d mem %d != gpipe %d", s, z, g)
		}
	}
	// Interleaved V=2: weights unchanged, chunk activations at 1/V size.
	v2 := m.StageMemUsedSched(ScheduleInterleaved, 0, S, M, 2)
	v1 := m.StageMemUsedSched(Schedule1F1B, 0, S, M, 1)
	// Stage 0, V=2: chunks 0 and 4 hold min(M,8)=8 and min(M,4)=4
	// half-size activations — 12 halves vs 1F1B's 4 full ones.
	if want := v1 - 4*m.ActMemPerMB + 12*(m.ActMemPerMB/2); v2 != want {
		t.Errorf("interleaved stage-0 mem = %d, want %d", v2, want)
	}
	// 1F1B with virtual == 1 must be the historic arithmetic, bit-exact.
	for s := 0; s < S; s++ {
		if m.StageMemUsedSched(Schedule1F1B, s, S, M, 1) != m.StageMemUsed(s, S, M) {
			t.Errorf("stage %d: StageMemUsedSched(1f1b,V=1) diverged from StageMemUsed", s)
		}
	}
}

func TestScheduleParseRoundTrip(t *testing.T) {
	for _, s := range AllSchedules() {
		got, err := ParseSchedule(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSchedule(%q) = %v/%v", s.String(), got, err)
		}
	}
	if _, err := ParseSchedule("pipedream"); err == nil {
		t.Error("unknown schedule name accepted")
	}
}

func TestEpochTimeDecreasesWithModelSize(t *testing.T) {
	// Paper Fig. 2b: per-epoch time decreases as models grow (memory-capped
	// micro-batches shrink).
	e12 := NanoGPT1B.EpochSpan(4, 4)
	e36 := NanoGPT3B.EpochSpan(4, 4)
	e60 := NanoGPT6B.EpochSpan(4, 4)
	if !(e12 > e36 && e36 > e60) {
		t.Fatalf("epoch spans not decreasing: %v %v %v", e12, e36, e60)
	}
}

func TestStageMemoryDecreasesWithStage(t *testing.T) {
	// Paper Fig. 1b: stage 0 uses the most memory.
	prev := int64(math.MaxInt64)
	for s := 0; s < 4; s++ {
		used := NanoGPT3B.StageMemUsed(s, 4, 4)
		if used >= prev {
			t.Fatalf("stage %d memory %d not < previous %d", s, used, prev)
		}
		prev = used
	}
}

func TestStageMemAvailableRange(t *testing.T) {
	// Paper §2.2.1: available memory spans <3 GB to >20 GB for 3.6B.
	avail0 := NanoGPT3B.StageMemAvailable(48*GiB, 0, 4, 4)
	avail3 := NanoGPT3B.StageMemAvailable(48*GiB, 3, 4, 4)
	if avail0 > 3*GiB+GiB/10 {
		t.Fatalf("stage 0 available = %.2f GiB, want ≈<3 GiB", float64(avail0)/float64(GiB))
	}
	if avail3 < 20*GiB {
		t.Fatalf("stage 3 available = %.2f GiB, want >20 GiB", float64(avail3)/float64(GiB))
	}
}

func TestAvailableMemoryShrinksWithModelSize(t *testing.T) {
	// Paper Fig. 2a: larger models leave less bubble memory (late stages).
	a12 := NanoGPT1B.StageMemAvailable(48*GiB, 3, 4, 4)
	a36 := NanoGPT3B.StageMemAvailable(48*GiB, 3, 4, 4)
	a60 := NanoGPT6B.StageMemAvailable(48*GiB, 3, 4, 4)
	if !(a12 > a36 && a36 > a60) {
		t.Fatalf("stage-3 available not decreasing: %d %d %d", a12, a36, a60)
	}
}

func TestMicroBatchCountDoesNotChangeStageMemory(t *testing.T) {
	// 1F1B caps in-flight activations at min(M, S-s): going from M=4 to
	// M=8 must not change stage-0 memory (S=4).
	m4 := NanoGPT3B.StageMemUsed(0, 4, 4)
	m8 := NanoGPT3B.StageMemUsed(0, 4, 8)
	if m4 != m8 {
		t.Fatalf("stage-0 memory changed with micro-batch count: %d vs %d", m4, m8)
	}
}

func TestLLMByName(t *testing.T) {
	for _, name := range []string{"nanogpt-3.6b", "3.6", "3.6b", "3.6B"} {
		m, err := LLMByName(name)
		if err != nil || m.ParamsB != 3.6 {
			t.Fatalf("LLMByName(%q) = %v/%v", name, m.Name, err)
		}
	}
	if _, err := LLMByName("gpt5"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTaskByName(t *testing.T) {
	for _, p := range TaskProfiles {
		got, err := TaskByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("TaskByName(%q) failed: %v", p.Name, err)
		}
	}
	if _, err := TaskByName("bitcoin-miner"); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestTaskMemoryVsStageAvailability(t *testing.T) {
	// The paper's Fig. 9 placement outcomes: ResNet18 and PageRank fit all
	// stages; ResNet50 and Graph SGD miss stage 0; VGG19 and Image miss
	// stages 0 and 1.
	avail := make([]int64, 4)
	for s := range avail {
		avail[s] = NanoGPT3B.StageMemAvailable(48*GiB, s, 4, 4)
	}
	fits := func(task TaskProfile, stage int) bool { return task.MemBytes <= avail[stage] }
	tests := []struct {
		task      TaskProfile
		wantStage []bool
	}{
		{ResNet18, []bool{true, true, true, true}},
		{PageRank, []bool{true, true, true, true}},
		{ResNet50, []bool{false, true, true, true}},
		{GraphSGD, []bool{false, true, true, true}},
		{VGG19, []bool{false, false, true, true}},
		{Image, []bool{false, false, true, true}},
	}
	for _, tc := range tests {
		for s, want := range tc.wantStage {
			if got := fits(tc.task, s); got != want {
				t.Errorf("%s fits stage %d = %v, want %v (task %.2f GiB, avail %.2f GiB)",
					tc.task.Name, s, got, want,
					float64(tc.task.MemBytes)/float64(GiB), float64(avail[s])/float64(GiB))
			}
		}
	}
}

func TestWithBatchScaling(t *testing.T) {
	b64 := ResNet18.WithBatch(64)
	if b64.StepTime != ResNet18.StepTime {
		t.Fatalf("default batch rescaled: %v vs %v", b64.StepTime, ResNet18.StepTime)
	}
	b128 := ResNet18.WithBatch(128)
	if b128.StepTime <= ResNet18.StepTime {
		t.Fatal("batch 128 step not longer than batch 64")
	}
	if b128.MemBytes <= ResNet18.MemBytes {
		t.Fatal("batch 128 memory not larger than batch 64")
	}
	b16 := ResNet18.WithBatch(16)
	if b16.StepTime >= ResNet18.StepTime || b16.MemBytes >= ResNet18.MemBytes {
		t.Fatal("batch 16 not smaller than batch 64")
	}
	// Consistency: the batch-64 reconstruction matches the headline profile
	// within rounding.
	recon := ResNet18.StepTimeFixed + 64*ResNet18.StepTimePerSmp
	if d := recon - ResNet18.StepTime; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("batch model inconsistent with StepTime: %v vs %v", recon, ResNet18.StepTime)
	}
}

func TestWithBatchNoopForNonScalable(t *testing.T) {
	p := PageRank.WithBatch(128)
	if p.Name != PageRank.Name || p.StepTime != PageRank.StepTime {
		t.Fatal("non-scalable task was rescaled")
	}
}

func TestVGGOOMOnServerIIAtLargeBatch(t *testing.T) {
	// Paper Fig. 7b marks OOM for large batches on Server-II (10 GB).
	if _, ok := VGG19.WithBatch(64).StepTimeOn(ServerII); !ok {
		t.Fatal("VGG19 batch 64 should fit Server-II")
	}
	if _, ok := VGG19.WithBatch(96).StepTimeOn(ServerII); ok {
		t.Fatal("VGG19 batch 96 should OOM on Server-II")
	}
	if _, ok := VGG19.WithBatch(128).StepTimeOn(ServerII); ok {
		t.Fatal("VGG19 batch 128 should OOM on Server-II")
	}
}

func TestThroughputOrdering(t *testing.T) {
	// Server-I > Server-II > CPU for every task (Table 1's platform order).
	for _, task := range TaskProfiles {
		thI := task.ThroughputOn(ServerI)
		thII := task.ThroughputOn(ServerII)
		thCPU := task.ThroughputOn(ServerCPU)
		if !(thI > thII && thII > thCPU && thCPU > 0) {
			t.Errorf("%s throughput ordering violated: I=%v II=%v CPU=%v",
				task.Name, thI, thII, thCPU)
		}
	}
}

func TestEpochSpanComponents(t *testing.T) {
	// EpochSpan = (S-1)(FP+BP) + M(FP+BP) + Opt for the calibrated models.
	m := NanoGPT3B
	want := 3*(m.FPPerMB+m.BPPerMB) + 4*(m.FPPerMB+m.BPPerMB) + m.OptStep
	if got := m.EpochSpan(4, 4); got != want {
		t.Fatalf("EpochSpan = %v, want %v", got, want)
	}
}
