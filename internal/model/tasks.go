package model

import (
	"fmt"
	"time"
)

// TaskKind groups the paper's three side-task categories (§6.1.4).
type TaskKind int

// Side-task categories.
const (
	KindTraining TaskKind = iota + 1 // model training (ResNet/VGG)
	KindGraph                        // graph analytics (PageRank, SGD MF)
	KindImage                        // image processing (resize+watermark)
)

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	switch k {
	case KindTraining:
		return "training"
	case KindGraph:
		return "graph"
	case KindImage:
		return "image"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// TaskProfile is the performance model of one side task: the quantities the
// paper's automated profiler measures (§4.3) plus the GPU-sharing
// characteristics that determine its co-location interference.
type TaskProfile struct {
	// Name identifies the task ("resnet18", "pagerank", ...).
	Name string
	Kind TaskKind

	// StepTime is the solo per-step duration on the reference (Server-I
	// class) GPU. ResNet18 batch-64 is 30.4 ms (paper §2.3).
	StepTime time.Duration
	// StepJitter is the relative step-time variation (uniform ±JitterFrac);
	// occasional overruns past the profiled estimate are what give the
	// iterative interface its residual ~1% overhead.
	StepJitter float64
	// MemBytes is the GPU memory footprint (model, optimizer, buffers).
	MemBytes int64
	// Demand is the SM fraction the task's kernels occupy.
	Demand float64
	// Weight is the MPS scheduling pressure of its kernels: how hard they
	// squeeze a co-located training kernel. Graph SGD's compute intensity
	// (weight 6.5 vs the training context's 2) is what produces the
	// paper's 231% MPS overhead.
	Weight float64
	// HostOverhead is per-step CPU-side time (data loading, the interface
	// loop) — the per-iteration share of "FreeRide runtime" in Fig. 9.
	HostOverhead time.Duration
	// CreateTime is CreateSideTask(): loading context into host memory.
	CreateTime time.Duration
	// InitTime is InitSideTask(): loading context into GPU memory.
	InitTime time.Duration

	// SpeedServerII and SpeedCPU are throughput multipliers of Server-II
	// (RTX 3080) and Server-CPU relative to Server-I for this task; they
	// feed the Table-1 comparison and the cost model's C_sideTasks.
	SpeedServerII float64
	SpeedCPU      float64

	// Batch scaling (training tasks only): StepTime and MemBytes above are
	// for DefaultBatch; other batch sizes scale linearly per sample.
	BatchScalable  bool
	DefaultBatch   int
	StepTimeFixed  time.Duration // batch-independent step component
	StepTimePerSmp time.Duration // per-sample step component
	MemFixed       int64         // batch-independent memory
	MemPerSample   int64         // per-sample activation memory
}

// Profiles for the six side tasks of paper §6.1.4, calibrated so that the
// co-location outcomes of Tables 1–2 and Figures 7–9 are reproduced in
// shape. Memory footprints are chosen to interact with the per-stage
// available memory exactly as the paper reports: ResNet18/PageRank fit
// everywhere, ResNet50/Graph-SGD miss stage 0, VGG19/Image miss stages 0–1
// (Fig. 9's "No side task: OOM" shares).
var (
	ResNet18 = TaskProfile{
		Name: "resnet18", Kind: KindTraining,
		StepTime: 30400 * time.Microsecond, StepJitter: 0.10,
		MemBytes: gib(2.63),
		Demand:   0.55, Weight: 0.30,
		HostOverhead: 1200 * time.Microsecond,
		CreateTime:   1500 * time.Millisecond, InitTime: 400 * time.Millisecond,
		SpeedServerII: 0.90, SpeedCPU: 0.015,
		BatchScalable: true, DefaultBatch: 64,
		StepTimeFixed: 4 * time.Millisecond, StepTimePerSmp: 412500 * time.Nanosecond,
		MemFixed: gib(0.80), MemPerSample: gib(1.83) / 64, // ~29.3 MiB/sample
	}
	ResNet50 = TaskProfile{
		Name: "resnet50", Kind: KindTraining,
		StepTime: 90 * time.Millisecond, StepJitter: 0.10,
		MemBytes: gib(5.1),
		Demand:   0.65, Weight: 0.35,
		HostOverhead: 1500 * time.Microsecond,
		CreateTime:   2 * time.Second, InitTime: 600 * time.Millisecond,
		SpeedServerII: 0.83, SpeedCPU: 0.014,
		BatchScalable: true, DefaultBatch: 64,
		StepTimeFixed: 10 * time.Millisecond, StepTimePerSmp: 1250 * time.Microsecond,
		MemFixed: gib(1.2), MemPerSample: gib(3.9) / 64, // ~62.4 MiB/sample
	}
	VGG19 = TaskProfile{
		Name: "vgg19", Kind: KindTraining,
		StepTime: 282 * time.Millisecond, StepJitter: 0.08,
		MemBytes: gib(9.8),
		Demand:   0.75, Weight: 0.40,
		HostOverhead: 2 * time.Millisecond,
		CreateTime:   3 * time.Second, InitTime: 900 * time.Millisecond,
		SpeedServerII: 0.56, SpeedCPU: 0.013,
		BatchScalable: true, DefaultBatch: 64,
		StepTimeFixed: 26 * time.Millisecond, StepTimePerSmp: 4 * time.Millisecond,
		MemFixed: gib(2.6), MemPerSample: gib(7.2) / 64, // ~115.2 MiB/sample
	}
	PageRank = TaskProfile{
		Name: "pagerank", Kind: KindGraph,
		StepTime: 3 * time.Millisecond, StepJitter: 0.15,
		MemBytes: gib(2.5),
		Demand:   0.90, Weight: 0.30,
		HostOverhead: 1200 * time.Microsecond,
		CreateTime:   4 * time.Second, InitTime: 800 * time.Millisecond,
		SpeedServerII: 0.32, SpeedCPU: 0.028,
	}
	GraphSGD = TaskProfile{
		Name: "graphsgd", Kind: KindGraph,
		StepTime: 238 * time.Millisecond, StepJitter: 0.12,
		MemBytes: gib(3.5),
		Demand:   0.85, Weight: 6.5,
		HostOverhead: 1500 * time.Microsecond,
		CreateTime:   4 * time.Second, InitTime: 800 * time.Millisecond,
		SpeedServerII: 0.27, SpeedCPU: 0.096,
	}
	Image = TaskProfile{
		Name: "image", Kind: KindImage,
		StepTime: 82 * time.Millisecond, StepJitter: 0.10,
		MemBytes: gib(9.6),
		Demand:   0.30, Weight: 0.30,
		HostOverhead: 1500 * time.Microsecond,
		CreateTime:   1 * time.Second, InitTime: 500 * time.Millisecond,
		SpeedServerII: 0.47, SpeedCPU: 0.060,
	}
)

// TaskProfiles lists the built-in side tasks.
var TaskProfiles = []TaskProfile{ResNet18, ResNet50, VGG19, PageRank, GraphSGD, Image}

// TaskByName resolves a built-in profile.
func TaskByName(name string) (TaskProfile, error) {
	for _, t := range TaskProfiles {
		if t.Name == name {
			return t, nil
		}
	}
	return TaskProfile{}, fmt.Errorf("model: unknown side task %q", name)
}

// FitTime is the worst-case pause-time fit: the bubble duration a task
// needs to reliably complete one step — a step at the profiled jitter
// ceiling plus the per-step host overhead. The iterative harness's
// program-directed limit skips bubbles shorter than its mean step; the
// manager's online re-planner demotes a task whose *estimated mean* bubble
// falls below this worst-case figure, so admission keeps a jitter margin
// the runtime check doesn't need.
func (t TaskProfile) FitTime() time.Duration {
	if t.StepTime <= 0 {
		return 0
	}
	step := t.StepTime + time.Duration(float64(t.StepTime)*t.StepJitter)
	return step + t.HostOverhead
}

// WithBatch returns the profile rescaled for a training batch size. It is a
// no-op for non-batch-scalable tasks.
func (t TaskProfile) WithBatch(batch int) TaskProfile {
	if !t.BatchScalable || batch <= 0 || batch == t.DefaultBatch {
		return t
	}
	out := t
	out.Name = fmt.Sprintf("%s-b%d", t.Name, batch)
	out.StepTime = t.StepTimeFixed + time.Duration(batch)*t.StepTimePerSmp
	out.MemBytes = t.MemFixed + int64(batch)*t.MemPerSample
	out.DefaultBatch = batch
	return out
}
