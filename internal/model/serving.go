package model

import "time"

// Serving closed forms: the memory and timing model of the forward-only
// per-request-batch pipeline cycle (fill / execute / drain). Inference
// carries no gradients or optimizer state — weights are fp16 only, 2 of the
// ~16 bytes/param the training closed form budgets — and the per-micro-batch
// footprint is the KV cache rather than the full activation stash, modeled
// as a quarter of the training activation footprint. Every stage holds the
// same M in-flight micro-batches, so serving memory is uniform across
// stages (no 1F1B warmup pyramid).

// ServeStageMemUsed is the per-stage GPU memory a serving replica holds:
// framework overhead, fp16 weights, and the KV/activation footprint of the
// M in-flight micro-batches.
func (m LLM) ServeStageMemUsed(microBatches int) int64 {
	return m.BaseMem + m.WeightMemPerStage/8 + int64(microBatches)*(m.ActMemPerMB/4)
}

// ServeStageMemAvailable is the headroom a serving stage can offer side
// tasks — the admission input of Algorithm 1 under the serving workload.
func (m LLM) ServeStageMemAvailable(deviceMem int64, microBatches int) int64 {
	avail := deviceMem - m.ServeStageMemUsed(microBatches)
	if avail < 0 {
		return 0
	}
	return avail
}

// ServeFillTime is how long stage s idles at the head of a batch before its
// first micro-batch arrives: s forward+transfer hops.
func (m LLM) ServeFillTime(stage int) time.Duration {
	return time.Duration(stage) * (m.FPPerMB + m.CommLatency)
}

// ServeDrainTime is how long stage s idles at the tail of a batch after its
// last micro-batch leaves: the (S-1-s) hops still draining downstream.
func (m LLM) ServeDrainTime(stage, stages int) time.Duration {
	return time.Duration(stages-1-stage) * (m.FPPerMB + m.CommLatency)
}

// ServeBatchSpan is the makespan of one batch through the forward-only
// pipeline: the (S-1)-hop fill cascade plus M back-to-back forwards on the
// critical stage.
func (m LLM) ServeBatchSpan(stages, microBatches int) time.Duration {
	return time.Duration(stages-1)*(m.FPPerMB+m.CommLatency) +
		time.Duration(microBatches)*m.FPPerMB
}

// ServeBubbleRateEstimate is the closed-form fraction of a batch span each
// stage idles in its fill and drain cascades — the serving analogue of
// BubbleRateEstimate, and the floor of the harvesting opportunity (the
// inter-batch gaps under a given arrival rate come on top).
func (m LLM) ServeBubbleRateEstimate(stages, microBatches int) float64 {
	span := m.ServeBatchSpan(stages, microBatches)
	if span <= 0 || stages <= 0 {
		return 0
	}
	var idle time.Duration
	for s := 0; s < stages; s++ {
		idle += m.ServeFillTime(s) + m.ServeDrainTime(s, stages)
	}
	return float64(idle) / (float64(stages) * float64(span))
}
