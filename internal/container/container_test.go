package container

import (
	"errors"
	"testing"
	"time"

	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

type fixture struct {
	eng *simtime.Virtual
	rt  *Runtime
	dev *simgpu.Device
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
	return &fixture{eng: eng, rt: NewRuntime(procs), dev: dev}
}

func TestContainerRunsBody(t *testing.T) {
	f := newFixture(t)
	ran := false
	c, err := f.rt.Run(Spec{Name: "t1", Device: f.dev}, func(p *simproc.Process, gpu *simgpu.Client) error {
		ran = gpu != nil
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	f.eng.MustDrain(100)
	if !ran {
		t.Fatal("body did not run with GPU client")
	}
	exited, exitErr, _ := c.ExitInfo()
	if !exited || exitErr != nil {
		t.Fatalf("ExitInfo = %v/%v, want exited cleanly", exited, exitErr)
	}
}

func TestContainerCPUOnly(t *testing.T) {
	f := newFixture(t)
	var gotGPU *simgpu.Client
	f.rt.Run(Spec{Name: "cpu"}, func(p *simproc.Process, gpu *simgpu.Client) error {
		gotGPU = gpu
		return nil
	})
	f.eng.MustDrain(100)
	if gotGPU != nil {
		t.Fatal("CPU-only container received a GPU client")
	}
}

func TestKillDestroysGPUContext(t *testing.T) {
	f := newFixture(t)
	c, _ := f.rt.Run(Spec{Name: "t1", Device: f.dev, GPUMemLimit: 8 << 30},
		func(p *simproc.Process, gpu *simgpu.Client) error {
			if err := gpu.AllocMem(4 << 30); err != nil {
				return err
			}
			return gpu.Exec(p, &simgpu.KernelSpec{Name: "hog", Duration: time.Hour})
		})
	f.eng.RunUntil(time.Second)
	if f.dev.MemUsed() != 4<<30 {
		t.Fatalf("device mem = %d, want 4GiB", f.dev.MemUsed())
	}
	f.eng.Schedule(0, "kill", func() { c.Kill() })
	f.eng.RunUntil(2 * time.Second)
	if c.Alive() {
		t.Fatal("container alive after kill")
	}
	if f.dev.MemUsed() != 0 {
		t.Fatalf("device mem = %d after kill, want 0 (context destroyed)", f.dev.MemUsed())
	}
	exited, err, at := c.ExitInfo()
	if !exited || !errors.Is(err, simproc.ErrKilled) {
		t.Fatalf("ExitInfo = %v/%v, want killed", exited, err)
	}
	if at != time.Second {
		t.Fatalf("exit at %v, want 1s", at)
	}
}

func TestOOMExitReleasesEverything(t *testing.T) {
	f := newFixture(t)
	c, _ := f.rt.Run(Spec{Name: "leaky", Device: f.dev, GPUMemLimit: 1 << 30},
		func(p *simproc.Process, gpu *simgpu.Client) error {
			for {
				if err := gpu.AllocMem(256 << 20); err != nil {
					return err // OOM kills the task, not the device
				}
				p.Sleep(100 * time.Millisecond)
			}
		})
	f.eng.RunUntil(10 * time.Second)
	exited, err, _ := c.ExitInfo()
	if !exited || !errors.Is(err, simgpu.ErrClientOOM) {
		t.Fatalf("ExitInfo = %v/%v, want client OOM", exited, err)
	}
	if f.dev.MemUsed() != 0 {
		t.Fatalf("device mem = %d, want 0", f.dev.MemUsed())
	}
}

func TestStopContKeepKernelRunning(t *testing.T) {
	// SIGTSTP must not abort in-flight GPU work — the asynchronous-kernel
	// property the imperative interface's overhead comes from.
	f := newFixture(t)
	var execErr error
	var kernelDone, resumedAt time.Duration
	c, _ := f.rt.Run(Spec{Name: "t", Device: f.dev},
		func(p *simproc.Process, gpu *simgpu.Client) error {
			execErr = gpu.Exec(p, &simgpu.KernelSpec{Name: "k", Duration: 2 * time.Second})
			resumedAt = p.Now()
			return nil
		})
	f.eng.Schedule(time.Second, "stop", func() { c.Stop() })
	f.eng.Schedule(5*time.Second, "cont", func() { c.Cont() })
	f.eng.Schedule(0, "watch", func() {})
	// Track device idle moment: kernel should complete at 2s regardless.
	f.eng.RunUntil(3 * time.Second)
	if f.dev.KernelsCompleted() != 1 {
		t.Fatal("kernel did not complete while process was stopped")
	}
	kernelDone = 2 * time.Second
	f.eng.MustDrain(100)
	if execErr != nil {
		t.Fatalf("Exec err = %v", execErr)
	}
	if resumedAt != 5*time.Second {
		t.Fatalf("process resumed at %v, want 5s (after SIGCONT)", resumedAt)
	}
	_ = kernelDone
}

func TestDuplicateNameRejected(t *testing.T) {
	f := newFixture(t)
	f.rt.Run(Spec{Name: "x"}, func(p *simproc.Process, _ *simgpu.Client) error {
		p.Sleep(time.Hour)
		return nil
	})
	if _, err := f.rt.Run(Spec{Name: "x"}, func(*simproc.Process, *simgpu.Client) error { return nil }); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Run err = %v, want ErrDuplicate", err)
	}
}

func TestRemoveLifecycle(t *testing.T) {
	f := newFixture(t)
	f.rt.Run(Spec{Name: "x"}, func(p *simproc.Process, _ *simgpu.Client) error {
		p.Sleep(time.Second)
		return nil
	})
	f.eng.RunUntil(100 * time.Millisecond)
	if err := f.rt.Remove("x"); err == nil {
		t.Fatal("Remove of live container succeeded")
	}
	f.eng.MustDrain(100)
	if err := f.rt.Remove("x"); err != nil {
		t.Fatalf("Remove after exit: %v", err)
	}
	if err := f.rt.Remove("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Remove = %v, want ErrNotFound", err)
	}
	if _, err := f.rt.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after remove = %v, want ErrNotFound", err)
	}
}

func TestList(t *testing.T) {
	f := newFixture(t)
	f.rt.Run(Spec{Name: "a"}, func(*simproc.Process, *simgpu.Client) error { return nil })
	f.rt.Run(Spec{Name: "b"}, func(p *simproc.Process, _ *simgpu.Client) error {
		p.Sleep(time.Hour)
		return nil
	})
	f.eng.RunUntil(time.Second)
	if got := len(f.rt.List()); got != 2 {
		t.Fatalf("List = %d containers, want 2", got)
	}
	c, err := f.rt.Get("b")
	if err != nil || !c.Alive() {
		t.Fatalf("Get(b) = %v/%v, want alive", c, err)
	}
	if c.StartedAt() != 0 {
		t.Fatalf("StartedAt = %v, want 0", c.StartedAt())
	}
}
