// Package container is the Docker substitute: it runs side-task processes in
// named containers that bundle a simulated process with its GPU context and
// an MPS memory limit, and it guarantees the isolation property FreeRide
// relies on (paper §4.6, §8): when the containerized process dies — normally,
// by SIGKILL from the framework-enforced limit, or by an OOM from the MPS
// memory cap — its GPU context is destroyed with it, aborting in-flight
// kernels and releasing all device memory, while every other tenant of the
// GPU is untouched.
package container

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"freeride/internal/simgpu"
	"freeride/internal/simproc"
)

// Errors returned by the runtime.
var (
	ErrNotFound  = errors.New("container: not found")
	ErrDuplicate = errors.New("container: duplicate name")
)

// Spec describes a container to run.
type Spec struct {
	// Name must be unique within the runtime.
	Name string
	// Device is the GPU the container gets access to; nil for CPU-only.
	Device *simgpu.Device
	// GPUMemLimit is the MPS memory cap for the container's GPU client;
	// 0 means unlimited.
	GPUMemLimit int64
	// GPUWeight optionally overrides the client scheduling weight.
	GPUWeight float64
}

// Body is the containerized program. It receives the process handle and the
// container's GPU client (nil when Spec.Device was nil).
type Body func(p *simproc.Process, gpu *simgpu.Client) error

// Container is one running (or finished) container.
type Container struct {
	name string
	proc *simproc.Process
	gpu  *simgpu.Client

	mu        sync.Mutex
	startedAt time.Duration
	exitedAt  time.Duration
	exited    bool
	exitErr   error
}

// Runtime creates and tracks containers over one process runtime.
type Runtime struct {
	procs *simproc.Runtime

	mu         sync.Mutex
	containers map[string]*Container
}

// NewRuntime returns a container runtime.
func NewRuntime(procs *simproc.Runtime) *Runtime {
	return &Runtime{procs: procs, containers: make(map[string]*Container)}
}

// Run creates and starts a container whose body is a goroutine process. The
// body begins executing at the current engine time.
func (rt *Runtime) Run(spec Spec, body Body) (*Container, error) {
	c, gpu, err := rt.create(spec)
	if err != nil {
		return nil, err
	}
	c.proc = rt.procs.Spawn("ctr/"+spec.Name, func(p *simproc.Process) error {
		return body(p, gpu)
	})
	rt.watch(c, gpu)
	return c, nil
}

// InlineBody is a containerized event-loop program: start receives the
// inline process and the container's GPU client and sets up its
// continuation machine (see simproc.SpawnInline).
type InlineBody func(p *simproc.Process, gpu *simgpu.Client)

// RunInline creates and starts a container whose body runs as an event-loop
// process on the engine goroutine — no process goroutine, no park/resume
// handshakes. Isolation semantics are identical to Run's: when the process
// exits or is killed, its GPU context is destroyed with it.
func (rt *Runtime) RunInline(spec Spec, start InlineBody) (*Container, error) {
	c, gpu, err := rt.create(spec)
	if err != nil {
		return nil, err
	}
	c.proc = rt.procs.SpawnInline("ctr/"+spec.Name, func(p *simproc.Process) {
		start(p, gpu)
	})
	rt.watch(c, gpu)
	return c, nil
}

// create reserves the container name and provisions its GPU client.
func (rt *Runtime) create(spec Spec) (*Container, *simgpu.Client, error) {
	if spec.Name == "" {
		return nil, nil, errors.New("container: empty name")
	}
	rt.mu.Lock()
	if _, dup := rt.containers[spec.Name]; dup {
		rt.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrDuplicate, spec.Name)
	}
	// Reserve the name before spawning so concurrent Runs cannot collide.
	c := &Container{name: spec.Name}
	rt.containers[spec.Name] = c
	rt.mu.Unlock()

	var gpu *simgpu.Client
	if spec.Device != nil {
		var err error
		gpu, err = spec.Device.NewClient(simgpu.ClientConfig{
			Name:          "ctr/" + spec.Name,
			MemLimitBytes: spec.GPUMemLimit,
			Weight:        spec.GPUWeight,
		})
		if err != nil {
			rt.mu.Lock()
			delete(rt.containers, spec.Name)
			rt.mu.Unlock()
			return nil, nil, fmt.Errorf("container %s: gpu client: %w", spec.Name, err)
		}
	}
	c.gpu = gpu
	c.startedAt = rt.procs.Engine().Now()
	return c, gpu, nil
}

// watch installs the exit hook tying the GPU context's life to the process.
func (rt *Runtime) watch(c *Container, gpu *simgpu.Client) {
	c.proc.OnExit(func(err error) {
		// The process is gone: its CUDA context dies with it, aborting any
		// in-flight kernels and releasing device memory.
		if gpu != nil {
			gpu.Destroy()
		}
		c.mu.Lock()
		c.exited = true
		c.exitErr = err
		c.exitedAt = rt.procs.Engine().Now()
		c.mu.Unlock()
	})
}

// Get looks up a container by name.
func (rt *Runtime) Get(name string) (*Container, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return c, nil
}

// List returns all containers, running and exited.
func (rt *Runtime) List() []*Container {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Container, 0, len(rt.containers))
	for _, c := range rt.containers {
		out = append(out, c)
	}
	return out
}

// Remove deletes an exited container's record. Removing a live container
// fails; kill it first.
func (rt *Runtime) Remove(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if c.Alive() {
		return fmt.Errorf("container: %s is running", name)
	}
	delete(rt.containers, name)
	return nil
}

// Name reports the container name.
func (c *Container) Name() string { return c.name }

// Process returns the containerized process.
func (c *Container) Process() *simproc.Process { return c.proc }

// GPU returns the container's GPU client (nil for CPU-only containers).
// After exit the client is destroyed.
func (c *Container) GPU() *simgpu.Client { return c.gpu }

// Alive reports whether the containerized process is still live.
func (c *Container) Alive() bool { return c.proc.Alive() }

// ExitInfo reports termination state: exited=false means still running.
func (c *Container) ExitInfo() (exited bool, err error, at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exited, c.exitErr, c.exitedAt
}

// StartedAt reports the engine time the container started.
func (c *Container) StartedAt() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.startedAt
}

// Stop delivers SIGTSTP to the containerized process.
func (c *Container) Stop() { c.proc.Signal(simproc.SigStop) }

// Cont delivers SIGCONT.
func (c *Container) Cont() { c.proc.Signal(simproc.SigCont) }

// Kill delivers SIGKILL. The GPU context teardown happens via the exit hook.
func (c *Container) Kill() { c.proc.Signal(simproc.SigKill) }
