// Package simfault is FreeRide's deterministic fault-injection plane: a
// seeded, virtual-time-driven schedule of control-plane and data-plane
// faults (worker crashes, link severs, RPC drop/delay windows, kernel
// failures, wedged reporters) delivered through closure hooks that the
// session wires into freerpc, simgpu and core.Worker.
//
// The package deliberately knows nothing about those components: a fault
// kind maps to a hook signature, and whoever assembles the system decides
// what the hook does. That keeps simfault dependency-free (only simtime)
// and makes the zero-fault oracle cheap to state: with every hook wired and
// an empty schedule, nothing in the system observes the fault plane at all.
//
// Determinism: Generate derives the whole schedule from a seed via its own
// rng, events fire on the engine clock, and injectors share the engine's
// single-dispatch guarantee — so two runs with the same seed see byte-equal
// fault sequences at identical virtual instants.
package simfault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"freeride/internal/simtime"
)

// Kind enumerates the injectable fault kinds.
type Kind int

const (
	// KindCrashWorker hard-kills a worker: its tasks' containers die, its
	// state is dropped, and its control link closes (a failed host).
	KindCrashWorker Kind = iota + 1
	// KindSeverLink closes the manager<->worker control link without
	// touching the worker itself (a network partition).
	KindSeverLink
	// KindDropRPC silently discards every frame on the control link for a
	// window (an asymmetric partition / overloaded switch).
	KindDropRPC
	// KindDelayRPC adds extra one-way latency to the control link for a
	// window (congestion).
	KindDelayRPC
	// KindFailKernel arms the worker's device so the next side-task kernel
	// launch completes with an error (an ECC fault / Xid reported to the
	// side task, never to the training job).
	KindFailKernel
	// KindWedgeTask suppresses the worker's state/exit notifications for a
	// window: the worker keeps running but stops reporting (a wedged
	// reporter thread).
	KindWedgeTask

	kindMax
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrashWorker:
		return "crash-worker"
	case KindSeverLink:
		return "sever-link"
	case KindDropRPC:
		return "drop-rpc"
	case KindDelayRPC:
		return "delay-rpc"
	case KindFailKernel:
		return "fail-kernel"
	case KindWedgeTask:
		return "wedge-task"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of String.
func ParseKind(s string) (Kind, error) {
	for k := KindCrashWorker; k < kindMax; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("simfault: unknown fault kind %q", s)
}

// AllKinds lists every injectable kind, in enum order.
func AllKinds() []Kind {
	ks := make([]Kind, 0, int(kindMax)-1)
	for k := KindCrashWorker; k < kindMax; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual instant the fault fires, relative to engine epoch.
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Worker indexes the target worker (and its link/device).
	Worker int
	// Window bounds the fault's duration for windowed kinds (drop-rpc,
	// delay-rpc, wedge-task); ignored by instantaneous kinds.
	Window time.Duration
	// Extra is the added one-way latency for delay-rpc; ignored otherwise.
	Extra time.Duration
}

// Schedule is a full fault plan. A non-nil Schedule with no events is the
// zero-fault oracle arm: every hook wired, nothing injected.
type Schedule struct {
	// Seed records the generator seed (informational; Generate sets it).
	Seed int64
	// Events fire in At order. Generate returns them sorted; hand-built
	// schedules are sorted by the injector at Start.
	Events []Event
}

// Generate derives a schedule from a seed: n events uniform over the
// horizon, kinds drawn uniformly from kinds, targets uniform over workers.
// Windowed kinds get windows in [horizon/20, horizon/5] and delay-rpc an
// extra latency in [1ms, 5ms]. Same inputs produce byte-equal schedules.
func Generate(seed int64, horizon time.Duration, n int, kinds []Kind, workers int) *Schedule {
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	if workers < 1 {
		workers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}
	for i := 0; i < n; i++ {
		ev := Event{
			At:     time.Duration(rng.Int63n(int64(horizon) + 1)),
			Kind:   kinds[rng.Intn(len(kinds))],
			Worker: rng.Intn(workers),
		}
		switch ev.Kind {
		case KindDropRPC, KindDelayRPC, KindWedgeTask:
			lo, hi := int64(horizon)/20, int64(horizon)/5
			ev.Window = time.Duration(lo + rng.Int63n(hi-lo+1))
		}
		if ev.Kind == KindDelayRPC {
			ev.Extra = time.Millisecond + time.Duration(rng.Int63n(int64(4*time.Millisecond)+1))
		}
		s.Events = append(s.Events, ev)
	}
	sortEvents(s.Events)
	return s
}

// sortEvents orders events by At, ties broken by insertion order (stable).
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

// Hooks is the per-worker injection surface. Any nil hook makes that kind a
// counted no-op for the worker. Hooks run on the engine dispatch, so they
// may touch engine-owned state directly.
type Hooks struct {
	// CrashWorker hard-kills the worker (drop state, close link).
	CrashWorker func()
	// SeverLink closes the control link only.
	SeverLink func()
	// DropRPC discards link frames for the window.
	DropRPC func(window time.Duration)
	// DelayRPC adds extra one-way link latency for the window.
	DelayRPC func(window, extra time.Duration)
	// FailKernel arms the device to fail the next side-task kernel.
	FailKernel func()
	// WedgeTask suppresses the worker's notifications for the window.
	WedgeTask func(window time.Duration)
}

// Stats counts what the injector actually delivered.
type Stats struct {
	// Injected counts events whose hook ran, by kind (index Kind).
	Injected [int(kindMax)]uint64
	// Skipped counts events with no bound target or nil hook.
	Skipped uint64
}

// Total sums Injected over all kinds.
func (s Stats) Total() uint64 {
	var n uint64
	for _, c := range s.Injected {
		n += c
	}
	return n
}

// Count reports the injected count for one kind.
func (s Stats) Count(k Kind) uint64 {
	if k <= 0 || k >= kindMax {
		return 0
	}
	return s.Injected[int(k)]
}

// Injector schedules a Schedule's events on an engine and dispatches them
// to per-worker hooks. Bind all workers, then Start once; both are called
// during assembly (before the engine runs), so no locking is needed — after
// Start everything happens inside engine callbacks.
type Injector struct {
	eng   simtime.Engine
	sched *Schedule
	hooks map[int]Hooks
	stats Stats
}

// NewInjector builds an injector for sched on eng.
func NewInjector(eng simtime.Engine, sched *Schedule) *Injector {
	return &Injector{eng: eng, sched: sched, hooks: make(map[int]Hooks)}
}

// Bind attaches the hook set for one worker index.
func (in *Injector) Bind(worker int, h Hooks) { in.hooks[worker] = h }

// Start schedules every event. Events whose At is already past fire as
// soon as possible (delay 0), preserving schedule order.
func (in *Injector) Start() {
	evs := append([]Event(nil), in.sched.Events...)
	sortEvents(evs)
	now := in.eng.Now()
	for _, ev := range evs {
		ev := ev
		in.eng.Schedule(ev.At-now, "fault:"+ev.Kind.String(), func() { in.fire(ev) })
	}
}

// fire dispatches one event to its worker's hook.
func (in *Injector) fire(ev Event) {
	h, ok := in.hooks[ev.Worker]
	if !ok {
		in.stats.Skipped++
		return
	}
	ran := true
	switch ev.Kind {
	case KindCrashWorker:
		if h.CrashWorker != nil {
			h.CrashWorker()
		} else {
			ran = false
		}
	case KindSeverLink:
		if h.SeverLink != nil {
			h.SeverLink()
		} else {
			ran = false
		}
	case KindDropRPC:
		if h.DropRPC != nil {
			h.DropRPC(ev.Window)
		} else {
			ran = false
		}
	case KindDelayRPC:
		if h.DelayRPC != nil {
			h.DelayRPC(ev.Window, ev.Extra)
		} else {
			ran = false
		}
	case KindFailKernel:
		if h.FailKernel != nil {
			h.FailKernel()
		} else {
			ran = false
		}
	case KindWedgeTask:
		if h.WedgeTask != nil {
			h.WedgeTask(ev.Window)
		} else {
			ran = false
		}
	default:
		ran = false
	}
	if ran {
		in.stats.Injected[int(ev.Kind)]++
	} else {
		in.stats.Skipped++
	}
}

// Stats returns the delivery counters accumulated so far.
func (in *Injector) Stats() Stats { return in.stats }
