package simfault

import (
	"reflect"
	"testing"
	"time"

	"freeride/internal/simtime"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(42, 10*time.Second, 16, nil, 4)
	b := Generate(42, 10*time.Second, 16, nil, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed schedules differ:\n%v\n%v", a, b)
	}
	c := Generate(43, 10*time.Second, 16, nil, 4)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	horizon := 5 * time.Second
	s := Generate(7, horizon, 32, nil, 3)
	if len(s.Events) != 32 {
		t.Fatalf("got %d events, want 32", len(s.Events))
	}
	for i, ev := range s.Events {
		if ev.At < 0 || ev.At > horizon {
			t.Fatalf("event %d at %v outside horizon", i, ev.At)
		}
		if i > 0 && ev.At < s.Events[i-1].At {
			t.Fatalf("events not sorted at %d", i)
		}
		if ev.Worker < 0 || ev.Worker >= 3 {
			t.Fatalf("event %d targets worker %d", i, ev.Worker)
		}
		switch ev.Kind {
		case KindDropRPC, KindDelayRPC, KindWedgeTask:
			if ev.Window <= 0 {
				t.Fatalf("windowed event %d has no window", i)
			}
		}
		if ev.Kind == KindDelayRPC && ev.Extra <= 0 {
			t.Fatalf("delay event %d has no extra latency", i)
		}
	}
}

func TestParseKindRoundTrips(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatalf("ParseKind accepted garbage")
	}
}

func TestInjectorDispatchesAtScheduledInstants(t *testing.T) {
	eng := simtime.NewVirtual()
	sched := &Schedule{Events: []Event{
		{At: 10 * time.Millisecond, Kind: KindCrashWorker, Worker: 0},
		{At: 20 * time.Millisecond, Kind: KindDropRPC, Worker: 1, Window: time.Second},
		{At: 30 * time.Millisecond, Kind: KindDelayRPC, Worker: 0, Window: time.Second, Extra: 2 * time.Millisecond},
		{At: 40 * time.Millisecond, Kind: KindFailKernel, Worker: 2}, // unbound worker
	}}
	in := NewInjector(eng, sched)
	var crashAt time.Duration
	var dropWin, delayWin, delayExtra time.Duration
	in.Bind(0, Hooks{
		CrashWorker: func() { crashAt = eng.Now() },
		DelayRPC:    func(w, e time.Duration) { delayWin, delayExtra = w, e },
	})
	in.Bind(1, Hooks{DropRPC: func(w time.Duration) { dropWin = w }})
	in.Start()
	eng.RunFor(time.Second)

	if crashAt != 10*time.Millisecond {
		t.Fatalf("crash fired at %v", crashAt)
	}
	if dropWin != time.Second {
		t.Fatalf("drop window %v", dropWin)
	}
	if delayWin != time.Second || delayExtra != 2*time.Millisecond {
		t.Fatalf("delay %v/%v", delayWin, delayExtra)
	}
	st := in.Stats()
	if st.Total() != 3 || st.Skipped != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Count(KindCrashWorker) != 1 || st.Count(KindDropRPC) != 1 || st.Count(KindDelayRPC) != 1 {
		t.Fatalf("per-kind counts wrong: %+v", st)
	}
}
