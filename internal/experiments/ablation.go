package experiments

import (
	"fmt"
	"time"

	"freeride"
	"freeride/internal/model"
)

// AblationRow is one configuration of a design-choice sweep.
type AblationRow struct {
	Label string
	I     float64
	S     float64
	Steps uint64
	Kills uint64
}

// AblationResult is one sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Render prints the sweep.
func (r *AblationResult) Render() string {
	t := &Table{
		Title:  "Ablation — " + r.Name,
		Header: []string{"config", "I", "S", "steps", "kills"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Label, pct(row.I), pct(row.S), fmt.Sprintf("%d", row.Steps), fmt.Sprintf("%d", row.Kills))
	}
	return t.Render()
}

func runAblationPoint(cfg freeride.Config, task model.TaskProfile) (AblationRow, error) {
	res, err := runOne(cfg, []model.TaskProfile{task})
	if err != nil {
		return AblationRow{}, err
	}
	var kills uint64
	for _, ws := range res.WorkerStats {
		kills += ws.GraceKills + ws.InitKills
	}
	return AblationRow{
		I:     res.Cost.I,
		S:     res.Cost.S,
		Steps: res.TotalSteps(),
		Kills: kills,
	}, nil
}

// ablationPoint is one fully configured sweep cell.
type ablationPoint struct {
	label string
	cfg   freeride.Config
	task  model.TaskProfile
}

// runAblationSweep evaluates the points on the worker pool, preserving
// their order in the result.
func runAblationSweep(opts Options, name string, points []ablationPoint) (*AblationResult, error) {
	rows := make([]AblationRow, len(points))
	err := forEachIndex(opts.Parallelism, len(points), func(i int) error {
		p := points[i]
		row, err := runAblationPoint(p.cfg, p.task)
		if err != nil {
			return fmt.Errorf("ablation %s %s: %w", name, p.label, err)
		}
		row.Label = p.label
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: name, Rows: rows}, nil
}

// RunAblationGrace sweeps the framework-enforced grace period. Well-behaved
// iterative tasks should be insensitive to it (the program-directed limit
// does the work); only a pathologically short grace kills legitimate tasks.
func RunAblationGrace(opts Options) (*AblationResult, error) {
	opts.normalize()
	var points []ablationPoint
	for _, grace := range []time.Duration{
		20 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second,
	} {
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		cfg.Grace = grace
		points = append(points, ablationPoint{
			label: fmt.Sprintf("grace=%v", grace), cfg: cfg, task: model.GraphSGD,
		})
	}
	return runAblationSweep(opts, "grace period (graphsgd iterative)", points)
}

// RunAblationRPCLatency sweeps control-plane latency: higher latency delays
// starts/pauses and erodes harvested steps, but must never corrupt training.
func RunAblationRPCLatency(opts Options) (*AblationResult, error) {
	opts.normalize()
	var points []ablationPoint
	for _, lat := range []time.Duration{
		0, 200 * time.Microsecond, 2 * time.Millisecond, 20 * time.Millisecond,
	} {
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		cfg.RPCLatency = lat
		points = append(points, ablationPoint{
			label: fmt.Sprintf("rpc=%v", lat), cfg: cfg, task: model.ResNet18,
		})
	}
	return runAblationSweep(opts, "RPC latency (resnet18 iterative)", points)
}

// RunAblationSafetyMargin sweeps the reporter's bubble safety margin:
// larger margins trade harvested steps (lower S) for extra protection
// against overruns (lower I).
func RunAblationSafetyMargin(opts Options) (*AblationResult, error) {
	opts.normalize()
	var points []ablationPoint
	for _, margin := range []time.Duration{
		0, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond,
	} {
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		cfg.SafetyMargin = margin
		points = append(points, ablationPoint{
			label: fmt.Sprintf("margin=%v", margin), cfg: cfg, task: model.ResNet18,
		})
	}
	return runAblationSweep(opts, "bubble safety margin (resnet18 iterative)", points)
}

// RunAblationMultiTask exercises the §8 extension: multiple side tasks
// queued per worker, served sequentially as predecessors finish or die.
func RunAblationMultiTask(opts Options) (*AblationResult, error) {
	opts.normalize()
	out := &AblationResult{Name: "multiple tasks per worker (pagerank + resnet18)"}
	cfg := opts.baseConfig()
	cfg.Method = freeride.MethodIterative
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		return nil, err
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	// Two tasks per worker: Algorithm 1 balances 8 instances over 4
	// workers.
	for i := 0; i < 4; i++ {
		if err := sess.Submit(model.PageRank, i); err != nil {
			return nil, err
		}
		if err := sess.Submit(model.ResNet18, i); err != nil {
			return nil, err
		}
	}
	res, err := sess.Run()
	if err != nil {
		return nil, err
	}
	rep := res.CostReport(tNo)
	out.Rows = append(out.Rows, AblationRow{
		Label: "2-per-worker",
		I:     rep.I,
		S:     rep.S,
		Steps: res.TotalSteps(),
	})
	return out, nil
}

// RunAblationInterleaved measures FreeRide's harvest when the pipeline
// already uses interleaved (virtual-stage) scheduling — the bubble-
// *reduction* alternative from the paper's related work. Interleaving
// shrinks the bubbles FreeRide feeds on, so the harvest (S) should drop
// while the overhead stays ~1%: the two approaches compose but compete for
// the same idle time.
func RunAblationInterleaved(opts Options) (*AblationResult, error) {
	opts.normalize()
	var points []ablationPoint
	for _, virtual := range []int{1, 2} {
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		cfg.VirtualStages = virtual
		points = append(points, ablationPoint{
			label: fmt.Sprintf("virtual=%d", virtual), cfg: cfg, task: model.ResNet18,
		})
	}
	return runAblationSweep(opts, "interleaved pipeline (resnet18 iterative)", points)
}
