package experiments

import (
	"fmt"
	"strings"
	"time"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/model"
)

// Figure9Row is one stacked bar of paper Figure 9: how the total bubble
// time divides between productive side-task execution, FreeRide's own
// runtime, bubbles too short for another step, and bubbles unusable because
// no deployed task fits their stage's memory.
type Figure9Row struct {
	Task string
	// Fractions sum to ~1.
	Running      float64
	Runtime      float64
	Insufficient float64
	OOM          float64
	TotalBubble  time.Duration
}

// Figure9Result reproduces paper Figure 9.
type Figure9Result struct {
	Rows []Figure9Row
}

// RunFigure9 measures the bubble-time breakdown for each side task (and the
// mixed workload) under the iterative interface. The per-task runs are
// independent simulations and execute on the bounded worker pool
// (Options.Parallelism); each job writes only its own row, so the output is
// identical to the sequential run.
func RunFigure9(opts Options) (*Figure9Result, error) {
	opts.normalize()
	n := len(evalTasks) + 1 // six tasks + mixed
	rows := make([]Figure9Row, n)
	err := forEachIndex(opts.Parallelism, n, func(i int) error {
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		if i < len(evalTasks) {
			task := evalTasks[i]
			res, err := runOne(cfg, []model.TaskProfile{task})
			if err != nil {
				return fmt.Errorf("fig9 %s: %w", task.Name, err)
			}
			row, err := breakdown(task.Name, cfg, res, []model.TaskProfile{task})
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		}
		res, err := runMixed(cfg)
		if err != nil {
			return fmt.Errorf("fig9 mixed: %w", err)
		}
		row, err := breakdown("mixed", cfg, res,
			[]model.TaskProfile{model.PageRank, model.ResNet18, model.Image, model.VGG19})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure9Result{Rows: rows}, nil
}

// breakdown derives the four shares from the run's counters.
//
//   - Running: GPU kernel time of completed steps.
//   - Insufficient: bubble remainders the program-directed check skipped.
//   - OOM: bubble time on stages where no deployed task fits (for the
//     per-task runs, stages the task is ineligible for; for mixed, none).
//   - Runtime: everything else — the interface's host time, state
//     transitions and their RPC latency, and serving slack.
func breakdown(name string, cfg freeride.Config, res *freeride.Result, tasks []model.TaskProfile) (Figure9Row, error) {
	total := res.ManagerStats.BubbleTimeTotal
	if total <= 0 {
		return Figure9Row{}, fmt.Errorf("fig9 %s: no bubble time recorded", name)
	}

	// Bubble time on stages no task could use (paper "No side task: OOM").
	// Estimate stage shares from the session's profile-less view: recompute
	// eligibility from the model memory layout.
	eligible := map[int]bool{}
	for _, task := range tasks {
		for stage := 0; stage < cfg.Stages; stage++ {
			avail := cfg.LLM.StageMemAvailable(model.ServerI.GPUMemBytes, stage, cfg.Stages, cfg.MicroBatches)
			// Same predicate as Algorithm-1 admission (incl. MPS-limit
			// slack): a stage the manager would reject must count as OOM.
			if core.AdmitsMem(avail, task.MemBytes, core.DefaultMemSlack) {
				eligible[stage] = true
			}
		}
	}
	// Per-stage bubble time is uniform enough across stages (paper §2.2.1)
	// that stage count ratios approximate the time split.
	oomFrac := float64(cfg.Stages-len(eligible)) / float64(cfg.Stages)

	var running, host, insuff time.Duration
	for _, tw := range res.Tasks {
		running += tw.KernelTime
		host += tw.HostTime
		insuff += tw.InsuffWait
	}
	row := Figure9Row{
		Task:         name,
		TotalBubble:  total,
		OOM:          oomFrac,
		Running:      float64(running) / float64(total),
		Insufficient: float64(insuff) / float64(total),
	}
	row.Runtime = 1 - row.OOM - row.Running - row.Insufficient
	if row.Runtime < 0 {
		row.Runtime = 0
	}
	return row, nil
}

// Render prints the stacked bars.
func (r *Figure9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: bubble time breakdown (R=running, r=FreeRide runtime, i=insufficient time, O=no task: OOM)\n")
	const width = 60
	for _, row := range r.Rows {
		bar := stackedBar(width, []float64{row.Running, row.Runtime, row.Insufficient, row.OOM}, []byte{'R', 'r', 'i', 'O'})
		fmt.Fprintf(&b, "%-9s |%s| run %5.1f%% rt %5.1f%% insuff %5.1f%% oom %5.1f%%\n",
			row.Task, bar, 100*row.Running, 100*row.Runtime, 100*row.Insufficient, 100*row.OOM)
	}
	return b.String()
}

func stackedBar(width int, fracs []float64, chars []byte) string {
	bar := make([]byte, 0, width)
	for i, f := range fracs {
		n := int(f*float64(width) + 0.5)
		for j := 0; j < n && len(bar) < width; j++ {
			bar = append(bar, chars[i])
		}
	}
	for len(bar) < width {
		bar = append(bar, ' ')
	}
	return string(bar)
}
