package experiments

import (
	"fmt"
	"strings"
	"time"

	"freeride"
	"freeride/internal/bubble"
	"freeride/internal/model"
	"freeride/internal/pipeline"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
	"freeride/internal/trace"
)

// Figure1Result reproduces paper Figure 1: one training epoch's per-stage
// op timeline with SM occupancy (a) and per-stage memory utilization (b).
type Figure1Result struct {
	EpochStart time.Duration
	EpochEnd   time.Duration
	// Ops per stage within the epoch.
	Ops [][]pipeline.OpSpan
	// Occupancy traces per stage (training client).
	Occ []*trace.Series
	// MemUsed / MemTotal per stage.
	MemUsed  []int64
	MemTotal []int64
	// Bubbles recovered from the traces, per stage.
	Bubbles []trace.IntervalSet
}

// RunFigure1 trains two epochs of the 3.6B model and extracts the second.
func RunFigure1(opts Options) (*Figure1Result, error) {
	opts.normalize()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 4)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name:     fmt.Sprintf("gpu%d", i),
			MemBytes: model.ServerI.GPUMemBytes,
		})
	}
	tr, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 2, RecordOps: true,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.Start(); err != nil {
		return nil, err
	}
	eng.Drain(10_000_000)
	if !tr.Done().IsSet() {
		return nil, fmt.Errorf("fig1: training incomplete")
	}
	starts, ends := tr.EpochTimes()
	out := &Figure1Result{EpochStart: starts[1], EpochEnd: ends[1]}
	for s := 0; s < 4; s++ {
		var ops []pipeline.OpSpan
		for _, op := range tr.OpLog(s) {
			if op.Start >= starts[1] && op.End <= ends[1] {
				ops = append(ops, op)
			}
		}
		out.Ops = append(out.Ops, ops)
		occ := tr.Client(s).OccTrace()
		out.Occ = append(out.Occ, occ)
		out.MemUsed = append(out.MemUsed, model.NanoGPT3B.StageMemUsed(s, 4, 4))
		out.MemTotal = append(out.MemTotal, model.ServerI.GPUMemBytes)
		out.Bubbles = append(out.Bubbles, occ.Below(0.05, starts[1], ends[1]))
	}
	return out, nil
}

// Render draws an ASCII version of Figure 1: per-stage op lanes with
// shaded bubbles, then the memory bar chart.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	span := r.EpochEnd - r.EpochStart
	const cols = 96
	fmt.Fprintf(&b, "Figure 1(a): pipeline ops and bubbles over one epoch (%.2fs, '.'=bubble)\n", span.Seconds())
	for s := len(r.Ops) - 1; s >= 0; s-- {
		lane := make([]byte, cols)
		for i := range lane {
			lane[i] = '.'
		}
		for _, op := range r.Ops[s] {
			c := byte('F')
			switch op.Op.Kind {
			case pipeline.OpBackward:
				c = 'B'
			case pipeline.OpOptimize:
				c = 'O'
			}
			from := int(float64(op.Start-r.EpochStart) / float64(span) * cols)
			to := int(float64(op.End-r.EpochStart) / float64(span) * cols)
			for i := from; i < to && i < cols; i++ {
				if i >= 0 {
					lane[i] = c
				}
			}
		}
		bubbleTime := r.Bubbles[s].Total()
		fmt.Fprintf(&b, "stage %d |%s| bubbles %.2fs (%.1f%%)\n",
			s, lane, bubbleTime.Seconds(), 100*float64(bubbleTime)/float64(span))
	}
	fmt.Fprintf(&b, "\nFigure 1(b): GPU memory utilization per stage ('#'=training, '-'=unutilized)\n")
	for s := range r.MemUsed {
		frac := float64(r.MemUsed[s]) / float64(r.MemTotal[s])
		used := int(frac * 48)
		fmt.Fprintf(&b, "stage %d |%s%s| %4.1f / %.0f GB\n",
			s, strings.Repeat("#", used), strings.Repeat("-", 48-used),
			float64(r.MemUsed[s])/float64(model.GiB), float64(r.MemTotal[s])/float64(model.GiB))
	}
	return b.String()
}

// Figure2Point is one bubble in the Figure 2(a) scatter.
type Figure2Point struct {
	Model    string
	Duration time.Duration
	MemAvail int64
	Type     bubble.Type
	Stage    int
}

// Figure2Stat is one bar group of Figure 2(b).
type Figure2Stat struct {
	Model      string
	MicroBatch int
	EpochTime  time.Duration
	BubbleTime time.Duration // mean per-stage bubble time per epoch
	BubbleRate float64
}

// Figure2Result reproduces paper Figure 2: bubble shape distribution and
// duration/bubble-rate statistics across model sizes (plus the micro-batch-8
// data point of §2.2.2).
type Figure2Result struct {
	Points []Figure2Point
	Stats  []Figure2Stat
}

// RunFigure2 profiles bubbles for 1.2B/3.6B/6B at 4 micro-batches and for
// 3.6B at 8 micro-batches. The four profiling runs are independent (each
// spins up a private session) and execute on the bounded worker pool
// (Options.Parallelism); results are assembled in config order afterwards,
// so the output is identical to the sequential run.
func RunFigure2(opts Options) (*Figure2Result, error) {
	opts.normalize()
	configs := []struct {
		llm model.LLM
		mbs int
	}{
		{model.NanoGPT1B, 4},
		{model.NanoGPT3B, 4},
		{model.NanoGPT6B, 4},
		{model.NanoGPT3B, 8},
	}
	profs := make([]*bubble.Profile, len(configs))
	err := forEachIndex(opts.Parallelism, len(configs), func(i int) error {
		c := configs[i]
		prof, err := profileFor(c.llm, c.mbs)
		if err != nil {
			return fmt.Errorf("fig2 %s/mb%d: %w", c.llm.Name, c.mbs, err)
		}
		profs[i] = prof
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Figure2Result{}
	for i, c := range configs {
		prof := profs[i]
		if c.mbs == 4 {
			for _, sp := range prof.Stages {
				for _, tpl := range sp.Templates {
					out.Points = append(out.Points, Figure2Point{
						Model:    c.llm.Name,
						Duration: tpl.Duration,
						MemAvail: sp.MemAvailable,
						Type:     tpl.Type,
						Stage:    tpl.Stage,
					})
				}
			}
		}
		meanBubble := prof.TotalBubbleTime() / time.Duration(len(prof.Stages))
		out.Stats = append(out.Stats, Figure2Stat{
			Model:      c.llm.Name,
			MicroBatch: c.mbs,
			EpochTime:  prof.EpochSpan,
			BubbleTime: meanBubble,
			BubbleRate: prof.BubbleRate(),
		})
	}
	return out, nil
}

// profileFor runs the offline bubble profiler for one configuration.
func profileFor(llm model.LLM, mbs int) (*bubble.Profile, error) {
	cfg := freeride.DefaultConfig()
	cfg.LLM = llm
	cfg.MicroBatches = mbs
	cfg.Epochs = 2
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return sess.Profile, nil
}

// Render prints the distribution summary and the statistics bars.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(a): bubble shapes under different model sizes\n")
	t := &Table{Header: []string{"model", "stage", "type", "duration", "avail mem (GB)"}}
	for _, p := range r.Points {
		t.AddRow(p.Model, fmt.Sprintf("%d", p.Stage), p.Type.String(),
			fmt.Sprintf("%.2fs", p.Duration.Seconds()),
			fmt.Sprintf("%.1f", float64(p.MemAvail)/float64(model.GiB)))
	}
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nFigure 2(b): durations and bubble rates\n")
	t2 := &Table{Header: []string{"model", "micro-batches", "epoch time", "bubble time", "bubble rate"}}
	for _, s := range r.Stats {
		t2.AddRow(s.Model, fmt.Sprintf("%d", s.MicroBatch), secs(s.EpochTime),
			secs(s.BubbleTime), pct(s.BubbleRate))
	}
	b.WriteString(t2.Render())
	return b.String()
}
