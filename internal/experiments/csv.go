package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the table as CSV so downstream users can regenerate the
// paper's plots with their own tooling.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders each result as machine-readable rows.

// WriteCSV emits Table-1 rows.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "bubbles_steps_per_s", "server_ii_steps_per_s", "server_cpu_steps_per_s", "ratio_vs_ii", "ratio_vs_cpu"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Task,
			fmtF(row.Bubbles), fmtF(row.ServerII), fmtF(row.ServerCPU),
			fmtF(row.RatioII()), fmtF(row.RatioCPU()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits Table-2 rows.
func (r *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "method", "time_increase", "cost_savings", "steps", "t_no_s", "t_with_s"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Task, row.Method.String(),
			fmtF(row.I), fmtF(row.S),
			strconv.FormatUint(row.Steps, 10),
			fmtF(row.TNo.Seconds()), fmtF(row.TWith.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits one row per sensitivity point.
func (r *Figure7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "x", "time_increase", "cost_savings", "oom"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{row.Task, row.X, fmtF(row.I), fmtF(row.S), strconv.FormatBool(row.OOM)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits one row per breakdown bar.
func (r *Figure9Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "running", "runtime", "insufficient", "oom", "total_bubble_s"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Task,
			fmtF(row.Running), fmtF(row.Runtime), fmtF(row.Insufficient), fmtF(row.OOM),
			fmtF(row.TotalBubble.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the bubble scatter and statistics (two sections).
func (r *Figure2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"section", "model", "microbatches", "stage", "type", "duration_s", "mem_avail_bytes", "epoch_s", "bubble_s", "bubble_rate"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{"point", p.Model, "4", strconv.Itoa(p.Stage), p.Type.String(),
			fmtF(p.Duration.Seconds()), strconv.FormatInt(p.MemAvail, 10), "", "", ""}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for _, s := range r.Stats {
		rec := []string{"stat", s.Model, strconv.Itoa(s.MicroBatch), "", "", "", "",
			fmtF(s.EpochTime.Seconds()), fmtF(s.BubbleTime.Seconds()), fmtF(s.BubbleRate)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(f float64) string { return fmt.Sprintf("%.6g", f) }
