package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

// oracleOpts shrinks the grid's epochs (the bubble pattern repeats per
// epoch) while keeping every method × workload cell.
func oracleOpts(mode core.ManagerMode) Options {
	o := Options{Epochs: 4, WorkScale: sidetask.WorkNone, Seed: 1, ManagerMode: mode}
	o.normalize()
	return o
}

// runOracleGrid executes the FreeRide cells of the Table 2 grid (the ones a
// manager participates in: both interfaces × six tasks + mixed) and returns
// each cell's full Result — training time, per-task work and transitions,
// manager and worker counters, cost metrics.
func runOracleGrid(t *testing.T, mode core.ManagerMode) map[string]*freeride.Result {
	t.Helper()
	out := make(map[string]*freeride.Result)
	for _, method := range []freeride.Method{freeride.MethodIterative, freeride.MethodImperative} {
		for i := range evalTasks {
			cfg := oracleOpts(mode).baseConfig()
			cfg.Method = method
			res, err := runOne(cfg, []model.TaskProfile{evalTasks[i]})
			if err != nil {
				t.Fatalf("%v/%s under %v: %v", method, evalTasks[i].Name, mode, err)
			}
			out[fmt.Sprintf("%v/%s", method, evalTasks[i].Name)] = res
		}
		cfg := oracleOpts(mode).baseConfig()
		cfg.Method = method
		res, err := runMixed(cfg)
		if err != nil {
			t.Fatalf("%v/mixed under %v: %v", method, mode, err)
		}
		out[fmt.Sprintf("%v/mixed", method)] = res
	}
	return out
}

// TestPollingVsEventDrivenBitIdentical is the differential oracle: the
// event-driven manager must reproduce the polling loop's behaviour
// bit-for-bit across the full grid — identical training times, task steps
// and kernel/host/insufficient times, exit states, manager stats (including
// RPC and bubble counters and served bubble time) and worker stats.
func TestPollingVsEventDrivenBitIdentical(t *testing.T) {
	event := runOracleGrid(t, core.ManagerEventDriven)
	poll := runOracleGrid(t, core.ManagerPolling)
	if len(event) != len(poll) {
		t.Fatalf("cell counts differ: %d vs %d", len(event), len(poll))
	}
	for key, er := range event {
		pr, ok := poll[key]
		if !ok {
			t.Fatalf("cell %s missing from polling grid", key)
		}
		// The configs intentionally differ in ManagerMode; everything
		// observable must not.
		er.Config, pr.Config = freeride.Config{}, freeride.Config{}
		if !reflect.DeepEqual(er, pr) {
			t.Errorf("cell %s diverged:\nevent-driven: %+v\npolling:      %+v", key, er, pr)
		}
		if er.TotalSteps() == 0 {
			t.Errorf("cell %s ran no side-task steps (inert oracle)", key)
		}
	}
}

// TestTable2GridRunsEventDriven pins the grid harness itself to the new
// default mode and sanity-checks the headline metrics' signs.
func TestTable2GridRunsEventDriven(t *testing.T) {
	res, err := RunTable2(oracleOpts(core.ManagerEventDriven))
	if err != nil {
		t.Fatal(err)
	}
	meanI, meanS := res.Averages(freeride.MethodIterative)
	if meanI < 0 || meanI > 0.03 {
		t.Errorf("iterative mean I = %.4f, want small positive", meanI)
	}
	if meanS <= 0 {
		t.Errorf("iterative mean S = %.4f, want positive", meanS)
	}
}
