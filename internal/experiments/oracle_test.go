package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

// oracleOpts shrinks the grid's epochs (the bubble pattern repeats per
// epoch) while keeping every method × workload cell.
func oracleOpts(mode core.ManagerMode) Options {
	o := Options{Epochs: 4, WorkScale: sidetask.WorkNone, Seed: 1, ManagerMode: mode}
	o.normalize()
	return o
}

// runOracleGrid executes the FreeRide cells of the Table 2 grid (the ones a
// manager participates in: both interfaces × six tasks + mixed) and returns
// each cell's full Result — training time, per-task work and transitions,
// manager and worker counters, cost metrics. tweak, when non-nil, adjusts
// each cell's config before the run (the rebalance oracle uses it).
func runOracleGrid(t *testing.T, mode core.ManagerMode, tweak func(*freeride.Config)) map[string]*freeride.Result {
	t.Helper()
	cellCfg := func(method freeride.Method) freeride.Config {
		cfg := oracleOpts(mode).baseConfig()
		cfg.Method = method
		if tweak != nil {
			tweak(&cfg)
		}
		return cfg
	}
	out := make(map[string]*freeride.Result)
	for _, method := range []freeride.Method{freeride.MethodIterative, freeride.MethodImperative} {
		for i := range evalTasks {
			res, err := runOne(cellCfg(method), []model.TaskProfile{evalTasks[i]})
			if err != nil {
				t.Fatalf("%v/%s under %v: %v", method, evalTasks[i].Name, mode, err)
			}
			out[fmt.Sprintf("%v/%s", method, evalTasks[i].Name)] = res
		}
		res, err := runMixed(cellCfg(method))
		if err != nil {
			t.Fatalf("%v/mixed under %v: %v", method, mode, err)
		}
		out[fmt.Sprintf("%v/mixed", method)] = res
	}
	return out
}

// compareOracleGrids asserts two grids are bit-identical modulo the config
// fields the comparison intentionally varies.
func compareOracleGrids(t *testing.T, a, b map[string]*freeride.Result, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: cell counts differ: %d vs %d", what, len(a), len(b))
	}
	for key, ar := range a {
		br, ok := b[key]
		if !ok {
			t.Fatalf("%s: cell %s missing", what, key)
		}
		// The configs intentionally differ; everything observable must not.
		ar.Config, br.Config = freeride.Config{}, freeride.Config{}
		// StepEvents counts the dispatch substrate's engine events (a fused
		// step loop legitimately dispatches half as many as the two-event
		// form); it is bookkeeping, not a reproduction metric.
		for i := range ar.Tasks {
			ar.Tasks[i].StepEvents = 0
		}
		for i := range br.Tasks {
			br.Tasks[i].StepEvents = 0
		}
		if !reflect.DeepEqual(ar, br) {
			t.Errorf("%s: cell %s diverged:\n%+v\nvs\n%+v", what, key, ar, br)
		}
		if ar.TotalSteps() == 0 {
			t.Errorf("%s: cell %s ran no side-task steps (inert oracle)", what, key)
		}
	}
}

// TestPollingVsEventDrivenBitIdentical is the differential oracle: the
// event-driven manager must reproduce the polling loop's behaviour
// bit-for-bit across the full grid — identical training times, task steps
// and kernel/host/insufficient times, exit states, manager stats (including
// RPC and bubble counters and served bubble time) and worker stats.
func TestPollingVsEventDrivenBitIdentical(t *testing.T) {
	event := runOracleGrid(t, core.ManagerEventDriven, nil)
	poll := runOracleGrid(t, core.ManagerPolling, nil)
	compareOracleGrids(t, event, poll, "event vs polling")
}

// TestIncrementalVsFullRebalanceGridBitIdentical is the end-to-end scheduler
// differential: the whole FreeRide grid — training, bubbles, manager,
// workers, kills, cost metrics — must be bit-identical whether the GPU
// scheduler runs the incremental rebalance or the retained full-recompute
// oracle. The simgpu-level oracle asserts float-exact allocations on random
// workloads; this asserts nothing observable changes at system scale.
func TestIncrementalVsFullRebalanceGridBitIdentical(t *testing.T) {
	inc := runOracleGrid(t, core.ManagerEventDriven, nil)
	ful := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.FullRebalance = true
	})
	compareOracleGrids(t, inc, ful, "incremental vs full rebalance")
}

// TestShareCacheGridBitIdentical is the end-to-end water-fill-cache
// differential: the whole FreeRide grid must be bit-identical whether the
// incremental scheduler serves allocations from the share cache or
// recomputes them on every rebalance. The simgpu-level oracle asserts
// float-exactness on random workloads; this asserts nothing observable
// changes at system scale.
func TestShareCacheGridBitIdentical(t *testing.T) {
	cached := runOracleGrid(t, core.ManagerEventDriven, nil)
	recomputed := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.NoShareCache = true
	})
	compareOracleGrids(t, cached, recomputed, "share cache vs recompute")
}

// TestStepFuseGridBitIdentical is the end-to-end step-fusion differential:
// the whole FreeRide grid — training times, task steps, kernel/host times,
// cost metrics, manager and worker stats — must be bit-identical whether
// the side-task step loop fuses the host overhead into the kernel launch
// (one engine event per step) or dispatches the retained two-event form.
// Only the StepEvents accounting may differ (normalized by the comparator).
func TestStepFuseGridBitIdentical(t *testing.T) {
	fused := runOracleGrid(t, core.ManagerEventDriven, nil)
	unfused := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.NoStepFuse = true
	})
	compareOracleGrids(t, fused, unfused, "fused vs two-event step loop")
}

// TestScheduleGeneratorGridBitIdentical is the schedule-zoo refactor's
// end-to-end differential: the whole FreeRide grid — training times, bubble
// profiles, task work, manager/worker counters, cost metrics — must be
// bit-identical whether op lists come from the new schedule generators or
// the retained legacy 1F1B/GPipe emitters (Config.LegacySchedule, the
// in-process half of the FREERIDE_ORACLE_SCHEDULE CI arm).
func TestScheduleGeneratorGridBitIdentical(t *testing.T) {
	gen := runOracleGrid(t, core.ManagerEventDriven, nil)
	leg := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.LegacySchedule = true
	})
	compareOracleGrids(t, gen, leg, "generator vs legacy schedule")
}

// TestTable2GridRunsEventDriven pins the grid harness itself to the new
// default mode and sanity-checks the headline metrics' signs.
func TestTable2GridRunsEventDriven(t *testing.T) {
	res, err := RunTable2(oracleOpts(core.ManagerEventDriven))
	if err != nil {
		t.Fatal(err)
	}
	meanI, meanS := res.Averages(freeride.MethodIterative)
	if meanI < 0 || meanI > 0.03 {
		t.Errorf("iterative mean I = %.4f, want small positive", meanI)
	}
	if meanS <= 0 {
		t.Errorf("iterative mean S = %.4f, want positive", meanS)
	}
}
