package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"freeride/internal/sidetask"
)

func TestForEachIndexCoversAllOnce(t *testing.T) {
	for _, parallel := range []int{1, 3, 16} {
		const n = 100
		var counts [n]int32
		err := forEachIndex(parallel, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", parallel, i, c)
			}
		}
	}
}

func TestForEachIndexPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := forEachIndex(4, 50, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if atomic.LoadInt32(&ran) > 50 {
		t.Fatalf("ran %d jobs", ran)
	}
}

// TestParallelRunnerDeterminism reruns a small Table 2 grid with different
// worker counts: identical seeds must produce identical rows regardless of
// scheduling — the acceptance criterion for the concurrent grid runner.
func TestParallelRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	opts := Options{Epochs: 2, WorkScale: sidetask.WorkNone, Seed: 1}

	opts.Parallelism = 1
	seq, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatalf("parallel grid diverged from sequential:\nseq %+v\npar %+v", seq.Rows, par.Rows)
	}
}
