package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"freeride/internal/sidetask"
)

func TestForEachIndexCoversAllOnce(t *testing.T) {
	for _, parallel := range []int{1, 3, 16} {
		const n = 100
		var counts [n]int32
		err := forEachIndex(parallel, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", parallel, i, c)
			}
		}
	}
}

func TestForEachIndexPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := forEachIndex(4, 50, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if atomic.LoadInt32(&ran) > 50 {
		t.Fatalf("ran %d jobs", ran)
	}
}

// TestFigureGridsParallelDeterminism reruns the figure grids that joined
// the worker pool (Figure 8's rigs, Figure 9's breakdown, Figure 2's
// profiling sweeps) with different worker counts: identical seeds must
// produce identical results regardless of scheduling.
func TestFigureGridsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full grids in -short mode")
	}
	opts := Options{Epochs: 2, WorkScale: sidetask.WorkNone, Seed: 1}

	opts.Parallelism = 1
	fig8Seq, err := RunFigure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig9Seq, err := RunFigure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig2Seq, err := RunFigure2(opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Parallelism = 8
	fig8Par, err := RunFigure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig9Par, err := RunFigure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig2Par, err := RunFigure2(opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fig8Seq, fig8Par) {
		t.Errorf("parallel Figure 8 diverged from sequential:\nseq %+v\npar %+v", fig8Seq, fig8Par)
	}
	if !reflect.DeepEqual(fig9Seq.Rows, fig9Par.Rows) {
		t.Errorf("parallel Figure 9 diverged from sequential:\nseq %+v\npar %+v", fig9Seq.Rows, fig9Par.Rows)
	}
	if !reflect.DeepEqual(fig2Seq, fig2Par) {
		t.Errorf("parallel Figure 2 diverged from sequential:\nseq %+v\npar %+v", fig2Seq, fig2Par)
	}
}

// TestParallelRunnerDeterminism reruns a small Table 2 grid with different
// worker counts: identical seeds must produce identical rows regardless of
// scheduling — the acceptance criterion for the concurrent grid runner.
func TestParallelRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	opts := Options{Epochs: 2, WorkScale: sidetask.WorkNone, Seed: 1}

	opts.Parallelism = 1
	seq, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatalf("parallel grid diverged from sequential:\nseq %+v\npar %+v", seq.Rows, par.Rows)
	}
}
