package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/pipeline"
)

// ScheduleSweepRow is one (schedule × stages × micro-batches) cell of the
// harvest-vs-bubble-ratio sweep: the simulated bubble rate (from the offline
// profiling pass), the closed-form estimate, and the harvest a ResNet18
// everywhere-placement extracts from that bubble budget.
type ScheduleSweepRow struct {
	Kind         pipeline.ScheduleKind
	Stages       int
	MicroBatches int
	Virtual      int

	// OOM marks cells whose training footprint exceeds Server I's GPU
	// memory on some stage (the schedule-aware memory model says the main
	// job itself cannot run — e.g. GPipe/zero-bubble at M=8 hold all M
	// activations). OOM cells are flagged deterministically and skipped.
	OOM bool

	// BubbleSim is the mean per-stage bubble rate the profiler measures on
	// the simulated pipeline; BubbleEst the schedule's closed form
	// (model.BubbleRateEstimate). For interleaved the estimate is the
	// Megatron ideal — a lower bound under chunk contention.
	BubbleSim float64
	BubbleEst float64

	TrainTime time.Duration
	BaseTime  time.Duration
	// Harvested is total side-task kernel time extracted from the bubbles.
	Harvested time.Duration
	Steps     uint64
	// Instances is how many stages fit a ResNet18 next to the main job.
	Instances int
}

// HarvestRate is harvested kernel seconds per second of baseline training —
// the sweep's y-axis against the bubble-ratio x-axis.
func (r ScheduleSweepRow) HarvestRate() float64 {
	if r.BaseTime <= 0 {
		return 0
	}
	return float64(r.Harvested) / float64(r.BaseTime)
}

// ScheduleSweepResult is the schedule × stages × micro-batches grid.
type ScheduleSweepResult struct {
	Opts Options
	Rows []ScheduleSweepRow
}

// scheduleSweepCells builds the deterministic cell skeleton: every schedule
// kind over the requested (stages, micro-batches) axes, interleaved running
// with V=2 virtual chunks per device. Cross widens the axes from the default
// S=4 × M {4,8} slice to the full S {2,4,8} × M {4,8,16} product.
func scheduleSweepCells(opts Options, llm model.LLM) []ScheduleSweepRow {
	stagesAxis := []int{4}
	mbAxis := []int{4, 8}
	if opts.Cross {
		stagesAxis = []int{2, 4, 8}
		mbAxis = []int{4, 8, 16}
	}
	var cells []ScheduleSweepRow
	for _, kind := range model.AllSchedules() {
		for _, S := range stagesAxis {
			for _, M := range mbAxis {
				V := 1
				if kind == model.ScheduleInterleaved {
					V = 2
				}
				row := ScheduleSweepRow{
					Kind: kind, Stages: S, MicroBatches: M, Virtual: V,
					BubbleEst: llm.BubbleRateEstimate(kind, S, M, V),
				}
				for s := 0; s < S; s++ {
					if llm.StageMemUsedSched(kind, s, S, M, V) > model.ServerI.GPUMemBytes {
						row.OOM = true
						break
					}
				}
				cells = append(cells, row)
			}
		}
	}
	return cells
}

// RunScheduleSweep runs the harvest-vs-bubble-ratio sweep: every schedule
// generator over the (stages, micro-batches) grid, one ResNet18 instance per
// eligible stage, FreeRide iterative. The sweep answers the schedule-zoo
// question directly: as better schedules shrink the bubble ratio (1F1B →
// interleaved → zero-bubble), how much harvestable supply is left? Cells the
// memory model rules out (GPipe/zero-bubble footprints at high M) are
// flagged OOM and skipped deterministically. Shard/ShardCount split the grid
// for CI parallelism: shard k of n runs cells where index mod n == k.
func RunScheduleSweep(opts Options) (*ScheduleSweepResult, error) {
	opts.normalize()
	baseCfg := opts.baseConfig()
	baseCfg.Method = freeride.MethodIterative

	cells := scheduleSweepCells(opts, baseCfg.LLM)
	var idxs []int
	for i := range cells {
		if i%opts.ShardCount == opts.Shard {
			idxs = append(idxs, i)
		}
	}
	err := forEachIndex(opts.Parallelism, len(idxs), func(j int) error {
		row := &cells[idxs[j]]
		if row.OOM {
			return nil
		}
		if err := runScheduleCell(baseCfg, row); err != nil {
			return fmt.Errorf("schedule sweep %v S=%d M=%d: %w",
				row.Kind, row.Stages, row.MicroBatches, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &ScheduleSweepResult{Opts: opts}
	for _, i := range idxs {
		out.Rows = append(out.Rows, cells[i])
	}
	return out, nil
}

// runScheduleCell executes one non-OOM cell and fills its measurements.
func runScheduleCell(baseCfg freeride.Config, row *ScheduleSweepRow) error {
	cfg := baseCfg
	cfg.Schedule = row.Kind
	cfg.Stages = row.Stages
	cfg.MicroBatches = row.MicroBatches
	cfg.VirtualStages = row.Virtual

	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		return err
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return err
	}
	row.BubbleSim = sess.Profile.BubbleRate()
	n, err := sess.SubmitEverywhere(model.ResNet18)
	if err != nil {
		return err
	}
	res, err := sess.Run()
	if err != nil {
		return err
	}
	res.CostReport(tNo)
	row.TrainTime = res.TrainTime
	row.BaseTime = tNo
	row.Harvested = harvestedKernelTime(res)
	row.Steps = res.TotalSteps()
	row.Instances = n
	return nil
}

// Render prints the sweep as a text table plus the harvest-vs-bubble-ratio
// readout the sweep exists for.
func (r *ScheduleSweepResult) Render() string {
	t := &Table{
		Title: "Schedule sweep — harvest vs bubble ratio across the schedule zoo " +
			"(ResNet18 everywhere, FreeRide iterative)",
		Header: []string{"schedule", "S", "M", "V", "bubble_sim", "bubble_est",
			"harvest_s", "harvest_rate", "train_s", "base_s", "steps", "tasks", "oom"},
	}
	for _, row := range r.Rows {
		if row.OOM {
			t.AddRow(row.Kind.String(), strconv.Itoa(row.Stages),
				strconv.Itoa(row.MicroBatches), strconv.Itoa(row.Virtual),
				"-", pct(row.BubbleEst), "-", "-", "-", "-", "-", "-", "OOM")
			continue
		}
		t.AddRow(
			row.Kind.String(), strconv.Itoa(row.Stages),
			strconv.Itoa(row.MicroBatches), strconv.Itoa(row.Virtual),
			pct(row.BubbleSim), pct(row.BubbleEst),
			secs(row.Harvested), fmtF(row.HarvestRate()),
			secs(row.TrainTime), secs(row.BaseTime),
			strconv.FormatUint(row.Steps, 10), strconv.Itoa(row.Instances), "",
		)
	}
	out := t.Render()

	// The headline comparison: for each (S, M) that ran both, how much of
	// 1F1B's harvest survives under the schedule with the smallest bubble
	// budget?
	type axis struct{ s, m int }
	oneF := map[axis]ScheduleSweepRow{}
	for _, row := range r.Rows {
		if row.Kind == model.Schedule1F1B && !row.OOM {
			oneF[axis{row.Stages, row.MicroBatches}] = row
		}
	}
	var n int
	var harvestFrac, bubbleFrac float64
	for _, row := range r.Rows {
		if row.Kind != model.ScheduleZeroBubble || row.OOM {
			continue
		}
		base, ok := oneF[axis{row.Stages, row.MicroBatches}]
		if !ok || base.Harvested <= 0 || base.BubbleSim <= 0 {
			continue
		}
		harvestFrac += float64(row.Harvested) / float64(base.Harvested)
		bubbleFrac += row.BubbleSim / base.BubbleSim
		n++
	}
	if n > 0 {
		out += fmt.Sprintf(
			"\nharvest tracks the bubble budget: zero-bubble keeps %.0f%% of the "+
				"bubble ratio and %.0f%% of the harvested GPU-seconds of 1F1B on the "+
				"same cells — as the schedule drives the bubble ratio toward zero, "+
				"harvesting stops paying.\n", 100*bubbleFrac/float64(n), 100*harvestFrac/float64(n))
	}
	return out
}

// WriteCSV emits one row per sweep cell (OOM cells included, flagged).
func (r *ScheduleSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"schedule", "stages", "micro_batches", "virtual",
		"oom", "bubble_sim", "bubble_est", "harvest_s", "harvest_rate",
		"train_s", "base_train_s", "steps", "instances"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Kind.String(), strconv.Itoa(row.Stages),
			strconv.Itoa(row.MicroBatches), strconv.Itoa(row.Virtual),
			strconv.FormatBool(row.OOM),
			fmtF(row.BubbleSim), fmtF(row.BubbleEst),
			fmtF(row.Harvested.Seconds()), fmtF(row.HarvestRate()),
			fmtF(row.TrainTime.Seconds()), fmtF(row.BaseTime.Seconds()),
			strconv.FormatUint(row.Steps, 10), strconv.Itoa(row.Instances),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
