package experiments

import (
	"fmt"
	"time"

	"freeride"
	"freeride/internal/model"
)

// Table2Row is one cell pair of paper Table 2.
type Table2Row struct {
	Task   string
	Method freeride.Method
	I      float64 // time increase
	S      float64 // cost savings
	Steps  uint64
	// StepEvents counts the engine events the side tasks' step loops
	// dispatched (StepEvents/Steps is the bench's sidetask_events_per_step).
	StepEvents uint64
	TNo        time.Duration
	TWith      time.Duration
}

// Table2Result reproduces paper Table 2: time increase I and cost savings S
// of DeepSpeed training with side tasks under FreeRide (iterative and
// imperative), direct MPS, and naive co-location — for the six side tasks
// and the mixed workload.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Methods are the four co-location approaches compared.
var Table2Methods = []freeride.Method{
	freeride.MethodIterative,
	freeride.MethodImperative,
	freeride.MethodMPS,
	freeride.MethodNaive,
}

// RunTable2 executes all method × workload combinations (6 tasks + mixed).
// The cells are independent simulations and run on a bounded worker pool;
// row order and every cell value are identical to the sequential run.
func RunTable2(opts Options) (*Table2Result, error) {
	opts.normalize()
	type job struct {
		method freeride.Method
		task   *model.TaskProfile // nil = mixed workload
	}
	var jobs []job
	for _, method := range Table2Methods {
		for i := range evalTasks {
			jobs = append(jobs, job{method: method, task: &evalTasks[i]})
		}
		jobs = append(jobs, job{method: method})
	}

	rows := make([]Table2Row, len(jobs))
	err := forEachIndex(opts.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		cfg := opts.baseConfig()
		cfg.Method = j.method
		var (
			res  *freeride.Result
			err  error
			name string
		)
		if j.task != nil {
			name = j.task.Name
			res, err = runOne(cfg, []model.TaskProfile{*j.task})
		} else {
			name = "mixed"
			res, err = runMixed(cfg)
		}
		if err != nil {
			return fmt.Errorf("table2 %v/%s: %w", j.method, name, err)
		}
		rows[i] = Table2Row{
			Task:       name,
			Method:     j.method,
			I:          res.Cost.I,
			S:          res.Cost.S,
			Steps:      res.TotalSteps(),
			StepEvents: res.TotalStepEvents(),
			TNo:        res.Cost.TNo,
			TWith:      res.Cost.TWith,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows}, nil
}

// Row finds a cell pair by task and method.
func (r *Table2Result) Row(task string, method freeride.Method) (Table2Row, bool) {
	for _, row := range r.Rows {
		if row.Task == task && row.Method == method {
			return row, true
		}
	}
	return Table2Row{}, false
}

// Averages reports mean I and S per method (the paper's headline "7.8%
// average cost savings with 1.1% overhead" aggregates the iterative rows).
func (r *Table2Result) Averages(method freeride.Method) (meanI, meanS float64) {
	n := 0
	for _, row := range r.Rows {
		if row.Method != method || row.Task == "mixed" {
			continue
		}
		meanI += row.I
		meanS += row.S
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return meanI / float64(n), meanS / float64(n)
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render() string {
	t := &Table{
		Title: "Table 2: time increase I and cost savings S of running DeepSpeed with side tasks",
		Header: []string{"Side task",
			"Iterative I", "S", "Imperative I", "S", "MPS I", "S", "Naive I", "S"},
	}
	tasks := append([]string{}, taskNames(evalTasks)...)
	tasks = append(tasks, "mixed")
	for _, task := range tasks {
		cells := []string{task}
		for _, m := range Table2Methods {
			row, ok := r.Row(task, m)
			if !ok {
				cells = append(cells, "-", "-")
				continue
			}
			cells = append(cells, pct(row.I), pct(row.S))
		}
		t.AddRow(cells...)
	}
	iter, iterS := r.Averages(freeride.MethodIterative)
	return t.Render() + fmt.Sprintf("average (iterative, excl. mixed): I=%s S=%s\n", pct(iter), pct(iterS))
}

func taskNames(ps []model.TaskProfile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
