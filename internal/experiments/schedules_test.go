package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"freeride/internal/model"
	"freeride/internal/sidetask"
)

func scheduleSweepOpts() Options {
	return Options{Epochs: 4, WorkScale: sidetask.WorkNone, Seed: 1}
}

func TestScheduleSweepDefaultSlice(t *testing.T) {
	res, err := RunScheduleSweep(scheduleSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Default slice: 4 schedules × S=4 × M {4,8}.
	if len(res.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(res.Rows))
	}
	type axis struct{ s, m int }
	byKind := map[model.Schedule]map[axis]ScheduleSweepRow{}
	for _, row := range res.Rows {
		if byKind[row.Kind] == nil {
			byKind[row.Kind] = map[axis]ScheduleSweepRow{}
		}
		byKind[row.Kind][axis{row.Stages, row.MicroBatches}] = row
	}

	// The memory model rules out the all-M-activations footprints at M=8
	// (GPipe and zero-bubble hold 8×6.4 GiB) and interleaved S=4 M=8; the
	// rest must have run.
	for _, row := range res.Rows {
		wantOOM := row.MicroBatches == 8 && row.Kind != model.Schedule1F1B
		if row.OOM != wantOOM {
			t.Errorf("%v S=%d M=%d: OOM=%v, want %v", row.Kind, row.Stages,
				row.MicroBatches, row.OOM, wantOOM)
		}
		if row.OOM {
			if row.TrainTime != 0 || row.Harvested != 0 {
				t.Errorf("%v M=%d: OOM cell has measurements", row.Kind, row.MicroBatches)
			}
			continue
		}
		if row.TrainTime <= 0 || row.Instances == 0 || row.Steps == 0 {
			t.Errorf("%v S=%d M=%d: inert cell %+v", row.Kind, row.Stages,
				row.MicroBatches, row)
		}
		// The profiled bubble rate must agree with the closed form (exact
		// for V=1 kinds, lower bound under interleaved contention).
		if row.Virtual == 1 {
			if math.Abs(row.BubbleSim-row.BubbleEst) > 0.02 {
				t.Errorf("%v S=%d M=%d: sim %.4f vs est %.4f", row.Kind,
					row.Stages, row.MicroBatches, row.BubbleSim, row.BubbleEst)
			}
		} else if row.BubbleSim < row.BubbleEst-0.005 {
			t.Errorf("%v S=%d M=%d: sim %.4f below ideal bound %.4f", row.Kind,
				row.Stages, row.MicroBatches, row.BubbleSim, row.BubbleEst)
		}
	}

	// The sweep's reason to exist: less bubble ratio → less harvest. At
	// S=4 M=4 the ordering zero-bubble < interleaved < 1F1B must hold for
	// both the bubble rate and the harvested seconds.
	a := axis{4, 4}
	zb, il, of := byKind[model.ScheduleZeroBubble][a], byKind[model.ScheduleInterleaved][a], byKind[model.Schedule1F1B][a]
	if !(zb.BubbleSim < il.BubbleSim && il.BubbleSim < of.BubbleSim) {
		t.Errorf("bubble ordering violated: zb %.4f il %.4f 1f1b %.4f",
			zb.BubbleSim, il.BubbleSim, of.BubbleSim)
	}
	if !(zb.Harvested < il.Harvested && il.Harvested < of.Harvested) {
		t.Errorf("harvest ordering violated: zb %v il %v 1f1b %v",
			zb.Harvested, il.Harvested, of.Harvested)
	}

	out := res.Render()
	if !strings.Contains(out, "harvesting stops paying") {
		t.Errorf("render missing the harvest-vs-bubble readout:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 9 {
		t.Errorf("CSV has %d lines, want 9 (header + 8 cells)", got)
	}
}

func TestScheduleSweepShardsPartition(t *testing.T) {
	whole, err := RunScheduleSweep(scheduleSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	var merged []ScheduleSweepRow
	for k := 0; k < 3; k++ {
		opts := scheduleSweepOpts()
		opts.Shard, opts.ShardCount = k, 3
		part, err := RunScheduleSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part.Rows...)
	}
	if len(merged) != len(whole.Rows) {
		t.Fatalf("shards yield %d rows, whole %d", len(merged), len(whole.Rows))
	}
	// Every whole-sweep cell appears exactly once across the shards with
	// identical measurements (cells are independent simulations).
	for _, want := range whole.Rows {
		found := 0
		for _, got := range merged {
			if got == want {
				found++
			}
		}
		if found != 1 {
			t.Errorf("cell %v S=%d M=%d found %d times across shards",
				want.Kind, want.Stages, want.MicroBatches, found)
		}
	}
}
