package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Rendered is the common surface of every experiment result: a text
// rendering of the table/figure the harness reproduces. Every Run* harness
// returns a concrete type implementing it.
type Rendered interface{ Render() string }

// CSVWriter is the optional second surface: sweeps that emit machine-read
// CSV (for the CI artifact pipeline) implement it alongside Render. The CLI
// discovers it by type assertion — registering a new sweep with a WriteCSV
// method is all it takes to get -csv support.
type CSVWriter interface{ WriteCSV(w io.Writer) error }

// Entry is one registered experiment: a stable CLI id, a one-line
// description, and the runner. Runners take the shared Options (epochs,
// seed, work scale, shard, cross) and return their typed result through the
// Rendered interface.
type Entry struct {
	Name string
	Desc string
	Run  func(Options) (Rendered, error)
}

// registry preserves registration order — the order `-run all` executes in
// and `-run list` prints.
var registry []Entry

// Register adds an experiment runner under a unique id. It panics on a
// duplicate id: registration happens at init time, so a collision is a
// programming error, not a runtime condition.
func Register(name, desc string, run func(Options) (Rendered, error)) {
	for _, e := range registry {
		if e.Name == name {
			panic(fmt.Sprintf("experiments: duplicate id %q", name))
		}
	}
	registry = append(registry, Entry{Name: name, Desc: desc, Run: run})
}

// Registered returns the experiments in registration order.
func Registered() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by id.
func Lookup(name string) (Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// wrap lifts a concretely-typed harness into the registry signature.
func wrap[T Rendered](fn func(Options) (T, error)) func(Options) (Rendered, error) {
	return func(o Options) (Rendered, error) {
		r, err := fn(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// ablationSuiteResult composes the five ablation harnesses into one
// registry entry, matching the CLI's historical `ablations` id.
type ablationSuiteResult struct {
	parts []*AblationResult
}

func (r *ablationSuiteResult) Render() string {
	var b strings.Builder
	for _, p := range r.parts {
		b.WriteString(p.Render())
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

func runAblationSuite(o Options) (Rendered, error) {
	suite := &ablationSuiteResult{}
	for _, f := range []func(Options) (*AblationResult, error){
		RunAblationGrace,
		RunAblationRPCLatency,
		RunAblationSafetyMargin,
		RunAblationMultiTask,
		RunAblationInterleaved,
	} {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		suite.parts = append(suite.parts, r)
	}
	return suite, nil
}

func init() {
	Register("table1", "side-task throughput across platforms", wrap(RunTable1))
	Register("table2", "time increase and cost savings per method", wrap(RunTable2))
	Register("fig1", "epoch timeline, SM occupancy and per-stage memory", wrap(RunFigure1))
	Register("fig2", "bubble shapes and rates across model sizes", wrap(RunFigure2))
	Register("fig7ab", "sensitivity to side-task batch size", wrap(RunFigure7BatchSize))
	Register("fig7cd", "sensitivity to main model size", wrap(RunFigure7ModelSize))
	Register("fig7ef", "sensitivity to micro-batch count", wrap(RunFigure7MicroBatch))
	Register("fig8", "GPU resource limit demonstrations", wrap(RunFigure8))
	Register("fig9", "bubble time breakdown", wrap(RunFigure9))
	Register("faults", "fault-injection sweep: harvest vs recovery overhead", wrap(RunFaultSweep))
	Register("drift", "dynamic-bubble drift sweep: online re-profiling vs profile-once", wrap(RunDriftSweep))
	Register("schedules", "schedule-zoo sweep: harvest vs bubble ratio per schedule", wrap(RunScheduleSweep))
	Register("ablations", "grace period / RPC latency / safety margin sweeps", runAblationSuite)
	Register("serving", "inference-serving sweep: harvested GPU-seconds vs p99 SLO violations", wrap(RunServingSweep))
}
