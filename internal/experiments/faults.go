package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/simfault"
)

// FaultSweepRow is one (kind × event-count) cell of the fault sweep: the
// harvested GPU seconds and recovery counters of a seeded fault run,
// against the zero-fault lease-enabled baseline.
type FaultSweepRow struct {
	Kind   simfault.Kind
	Events int // scheduled fault events
	// Injected counts events that actually fired (always == Events on the
	// virtual clock; kept for schedule sanity).
	Injected uint64
	// TrainTime is the main job's total training time under faults;
	// BaseTime is the same workload's zero-fault (lease-enabled) time. The
	// difference is the recovery overhead charged to training — the
	// graceful-degradation contract keeps it at zero for control-plane-only
	// fault kinds.
	TrainTime time.Duration
	BaseTime  time.Duration
	// Harvested is the summed side-task kernel time (GPU-seconds of useful
	// harvest); BaseHarvest the zero-fault reference.
	Harvested   time.Duration
	BaseHarvest time.Duration
	// Recovery counters from the manager.
	WorkersLost  uint64
	Restarted    uint64
	Replacements uint64
	Parked       uint64
	LostWork     time.Duration
	// RetiredForever counts tasks that ended exited-with-error (not clean
	// stops, not parked): with an eligible peer available this must be zero.
	RetiredForever int
}

// RecoveryOverhead is the training-time delta vs the zero-fault run.
func (r FaultSweepRow) RecoveryOverhead() time.Duration { return r.TrainTime - r.BaseTime }

// FaultSweepResult is the full kind × rate grid.
type FaultSweepResult struct {
	Opts Options
	Rows []FaultSweepRow
}

// faultSweepCounts is the per-kind event-count axis of the sweep grid.
var faultSweepCounts = []int{1, 3}

// RunFaultSweep measures robustness under the deterministic fault plane: a
// kind × rate grid of seeded fault schedules over the standard workload
// (one ResNet18 instance per eligible stage), reporting harvested
// GPU-seconds against recovery overhead. The zero-fault baseline runs with
// the fault hooks wired and the lease enabled, so every delta in the grid
// is attributable to the injected events alone.
func RunFaultSweep(opts Options) (*FaultSweepResult, error) {
	opts.normalize()
	baseCfg := opts.baseConfig()
	baseCfg.Method = freeride.MethodIterative
	tasks := []model.TaskProfile{model.ResNet18}

	// Zero-fault reference: hooks wired, empty schedule.
	refCfg := baseCfg
	refCfg.Faults = &simfault.Schedule{Seed: opts.Seed}
	ref, err := runOne(refCfg, tasks)
	if err != nil {
		return nil, fmt.Errorf("fault sweep baseline: %w", err)
	}
	baseHarvest := harvestedKernelTime(ref)

	out := &FaultSweepResult{Opts: opts}
	cellIdx := -1
	for ki, kind := range simfault.AllKinds() {
		for _, n := range faultSweepCounts {
			// Shard k of n runs cells where index mod n == k; the skeleton
			// order (kind × count) is deterministic, so shards partition
			// exactly.
			cellIdx++
			if cellIdx%opts.ShardCount != opts.Shard {
				continue
			}
			cfg := baseCfg
			seed := opts.Seed*1000 + int64(ki)*10 + int64(n)
			cfg.Faults = simfault.Generate(seed, ref.TrainTime, n,
				[]simfault.Kind{kind}, cfg.Stages)
			res, err := runOne(cfg, tasks)
			if err != nil {
				return nil, fmt.Errorf("fault sweep %v×%d: %w", kind, n, err)
			}
			row := FaultSweepRow{
				Kind:         kind,
				Events:       n,
				Injected:     res.FaultStats.Total(),
				TrainTime:    res.TrainTime,
				BaseTime:     ref.TrainTime,
				Harvested:    harvestedKernelTime(res),
				BaseHarvest:  baseHarvest,
				WorkersLost:  res.ManagerStats.WorkersLost,
				Restarted:    res.ManagerStats.RestartedTasks,
				Replacements: res.ManagerStats.Replacements,
				Parked:       res.ManagerStats.ParkedTasks,
				LostWork:     res.ManagerStats.LostWork,
			}
			for _, tw := range res.Tasks {
				if tw.Exited && tw.ExitErr != "" && !tw.Parked {
					row.RetiredForever++
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func harvestedKernelTime(res *freeride.Result) time.Duration {
	var sum time.Duration
	for _, tw := range res.Tasks {
		sum += tw.KernelTime
	}
	return sum
}

// Render prints the sweep as a text table.
func (r *FaultSweepResult) Render() string {
	t := &Table{
		Title: "Fault sweep — harvested GPU seconds vs recovery overhead " +
			"(zero-fault lease-enabled baseline)",
		Header: []string{"kind", "events", "harvest_s", "base_harvest_s",
			"train_s", "overhead_s", "lost", "restarted", "replacements",
			"parked", "lostwork_s", "retired"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Kind.String(), strconv.Itoa(row.Events),
			secs(row.Harvested), secs(row.BaseHarvest),
			secs(row.TrainTime), secs(row.RecoveryOverhead()),
			strconv.FormatUint(row.WorkersLost, 10),
			strconv.FormatUint(row.Restarted, 10),
			strconv.FormatUint(row.Replacements, 10),
			strconv.FormatUint(row.Parked, 10),
			secs(row.LostWork),
			strconv.Itoa(row.RetiredForever),
		)
	}
	return t.Render()
}

// WriteCSV emits one row per sweep cell.
func (r *FaultSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "events", "injected", "harvest_s",
		"base_harvest_s", "train_s", "base_train_s", "overhead_s",
		"workers_lost", "restarted", "replacements", "parked", "lostwork_s",
		"retired_forever"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Kind.String(), strconv.Itoa(row.Events),
			strconv.FormatUint(row.Injected, 10),
			fmtF(row.Harvested.Seconds()), fmtF(row.BaseHarvest.Seconds()),
			fmtF(row.TrainTime.Seconds()), fmtF(row.BaseTime.Seconds()),
			fmtF(row.RecoveryOverhead().Seconds()),
			strconv.FormatUint(row.WorkersLost, 10),
			strconv.FormatUint(row.Restarted, 10),
			strconv.FormatUint(row.Replacements, 10),
			strconv.FormatUint(row.Parked, 10),
			fmtF(row.LostWork.Seconds()),
			strconv.Itoa(row.RetiredForever),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
