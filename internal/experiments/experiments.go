// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2 and §6) on the simulated testbed. Each harness returns a
// typed result plus a text rendering that prints the same rows/series the
// paper reports; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

// Options scale the experiment suite.
type Options struct {
	// Epochs per training run. The paper uses 128; the default 16 keeps
	// the full suite fast while leaving ratios unchanged (epochs are
	// repetitive).
	Epochs int
	// WorkScale controls real side-task computation.
	WorkScale sidetask.WorkScale
	// Seed drives task randomness.
	Seed int64
	// Parallelism bounds how many independent simulations of a grid run
	// concurrently (0 = GOMAXPROCS, 1 = sequential). Sessions are fully
	// isolated and identically seeded, so results are independent of the
	// worker count; only wall-clock changes.
	Parallelism int
	// ManagerMode drives the Algorithm-2 loop: event-driven (default) or
	// the polling oracle. Results are bit-identical either way (asserted by
	// the differential test); only simulation wall-clock changes.
	ManagerMode core.ManagerMode
	// FullRebalance forces the GPU scheduler's full-recompute oracle pass
	// instead of the incremental one. Results are bit-identical either way
	// (asserted by the differential test); only wall-clock changes.
	FullRebalance bool
	// NoShareCache disables the GPU scheduler's water-fill share cache,
	// recomputing allocations on every rebalance. Results are bit-identical
	// either way; only wall-clock changes.
	NoShareCache bool
	// NoStepFuse forces the side-task step loop's unfused two-event form
	// instead of the fused host-lead launch. Results are bit-identical
	// either way; only event counts and wall-clock change.
	NoStepFuse bool
	// Cross widens grid sweeps that support it (currently the schedule
	// sweep) from their fast default slice to the full cross product.
	Cross bool
	// Shard/ShardCount split a grid sweep across CI jobs: shard k of n runs
	// only cells whose index mod n equals k. The cell skeleton (and thus the
	// index → cell mapping) is deterministic, so shards partition exactly.
	Shard      int
	ShardCount int
}

// DefaultOptions returns the fast-suite defaults.
func DefaultOptions() Options {
	return Options{Epochs: 16, WorkScale: sidetask.WorkSmall, Seed: 1}
}

func (o *Options) normalize() {
	if o.Epochs <= 0 {
		o.Epochs = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShardCount <= 0 {
		o.ShardCount = 1
	}
	if o.Shard < 0 || o.Shard >= o.ShardCount {
		o.Shard = 0
	}
}

func (o Options) baseConfig() freeride.Config {
	cfg := freeride.DefaultConfig()
	cfg.Epochs = o.Epochs
	cfg.WorkScale = o.WorkScale
	cfg.Seed = o.Seed
	cfg.ManagerMode = o.ManagerMode
	cfg.FullRebalance = o.FullRebalance
	cfg.NoShareCache = o.NoShareCache
	cfg.NoStepFuse = o.NoStepFuse
	return cfg
}

// runOne executes a single co-location run and returns the result plus its
// cost report against the matching no-side-task baseline.
func runOne(cfg freeride.Config, tasks []model.TaskProfile) (*freeride.Result, error) {
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		return nil, err
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	for _, task := range tasks {
		if _, err := sess.SubmitEverywhere(task); err != nil {
			return nil, fmt.Errorf("submit %s: %w", task.Name, err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		return nil, err
	}
	res.CostReport(tNo)
	return res, nil
}

// runMixed executes the paper's mixed workload: PageRank, ResNet18, Image
// and VGG19, one instance each; Algorithm 1's memory filter and least-loaded
// choice land them on stages 0–3 respectively.
func runMixed(cfg freeride.Config) (*freeride.Result, error) {
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		return nil, err
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	// Submission order matters for the baselines (explicit stages) and is
	// resolved by Algorithm 1 for the FreeRide methods.
	mix := []struct {
		task  model.TaskProfile
		stage int
	}{
		{model.PageRank, 0},
		{model.ResNet18, 1},
		{model.Image, 2},
		{model.VGG19, 3},
	}
	for _, m := range mix {
		if err := sess.Submit(m.task, m.stage); err != nil {
			return nil, fmt.Errorf("submit %s: %w", m.task.Name, err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		return nil, err
	}
	res.CostReport(tNo)
	return res, nil
}

// Table is a minimal text-table renderer for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces an aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func secs(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// evalTasks are the six side tasks of paper §6.1.4 in Table-2 order.
var evalTasks = []model.TaskProfile{
	model.ResNet18, model.ResNet50, model.VGG19,
	model.PageRank, model.GraphSGD, model.Image,
}
