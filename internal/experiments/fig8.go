package experiments

import (
	"fmt"
	"strings"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/container"
	"freeride/internal/core"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
	"freeride/internal/trace"
)

// Figure8Series is one curve of Figure 8: a time series sampled over the
// scenario window.
type Figure8Series struct {
	Name   string
	Points []trace.Point
}

// Figure8Result reproduces paper Figure 8: the effect of FreeRide's GPU
// resource limits on a misbehaving side task.
//
//	(a) execution-time limit: the task keeps computing past the bubble;
//	    with the framework-enforced mechanism it is SIGKILLed after the
//	    grace period.
//	(b) memory limit: the task keeps allocating; with the MPS cap it is
//	    OOM-killed at 8 GB.
type Figure8Result struct {
	// Panel (a): SM occupancy of the side task with and without the limit.
	OccWithLimit    Figure8Series
	OccWithoutLimit Figure8Series
	BubbleEnd       time.Duration
	KilledAt        time.Duration
	GraceKills      uint64

	// Panel (b): task GPU memory with and without the 8 GB cap.
	MemWithLimit    Figure8Series
	MemWithoutLimit Figure8Series
	MemCap          int64
	OOMKilled       bool
}

// hogTask launches long kernels regardless of the bubble deadline (its
// profile lies about the step time, defeating the program-directed check).
type hogTask struct{ kernel time.Duration }

func (h hogTask) CreateSideTask(*sidetask.Ctx) error { return nil }
func (h hogTask) InitSideTask(ctx *sidetask.Ctx) error {
	return ctx.GPU.AllocMem(model.GiB)
}
func (h hogTask) StopSideTask(*sidetask.Ctx) error { return nil }
func (h hogTask) RunNextStep(ctx *sidetask.Ctx) error {
	return ctx.GPU.Exec(ctx.Proc, &simgpu.KernelSpec{
		Name: "hog", Duration: h.kernel, Demand: 0.9, Weight: 0.9,
	})
}

// leakTask allocates 512 MiB per step without bound.
type leakTask struct{}

func (leakTask) CreateSideTask(*sidetask.Ctx) error { return nil }
func (leakTask) InitSideTask(ctx *sidetask.Ctx) error {
	return ctx.GPU.AllocMem(model.GiB)
}
func (leakTask) StopSideTask(*sidetask.Ctx) error { return nil }
func (leakTask) RunNextStep(ctx *sidetask.Ctx) error {
	if err := ctx.GPU.AllocMem(model.GiB / 2); err != nil {
		return err
	}
	return ctx.GPU.Exec(ctx.Proc, &simgpu.KernelSpec{
		Name: "leak-step", Duration: 100 * time.Millisecond, Demand: 0.5,
	})
}

// fig8Rig is a single-GPU manager+worker assembly with scripted bubbles.
type fig8Rig struct {
	eng    *simtime.Virtual
	dev    *simgpu.Device
	worker *core.Worker
	mgr    *core.Manager
}

func newFig8Rig(enforce bool, factory core.HarnessFactory) *fig8Rig {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0", MemBytes: model.ServerI.GPUMemBytes})
	ctrs := container.NewRuntime(procs)
	mgr := core.NewManager(eng, core.ManagerOptions{Tick: time.Millisecond})
	w := core.NewWorker(eng, dev, ctrs, core.WorkerConfig{
		Name:               "worker0",
		Grace:              300 * time.Millisecond,
		Factory:            factory,
		DisableEnforcement: !enforce,
	})
	wmux := freerpc.NewMux()
	w.RegisterOn(wmux)
	mgrEnd, wEnd := freerpc.MemPipe(eng, 200*time.Microsecond)
	mgrPeer := freerpc.NewPeer(eng, mgrEnd, mgr.Mux())
	wPeer := freerpc.NewPeer(eng, wEnd, wmux)
	w.SetNotify(func(method string, params any) { _ = wPeer.Notify(method, params) })
	mgr.AddWorker("worker0", 0, 40*model.GiB, mgrPeer)
	return &fig8Rig{eng: eng, dev: dev, worker: w, mgr: mgr}
}

// RunFigure8 executes both limit scenarios, each with and without the
// corresponding mechanism. The four scenarios build fully private rigs
// (engine, device, manager, worker — nothing shared), so they run as
// independent jobs on the bounded worker pool (Options.Parallelism), each
// writing only its own result fields.
func RunFigure8(opts Options) (*Figure8Result, error) {
	opts.normalize()
	out := &Figure8Result{MemCap: 8 * model.GiB}
	scenarios := []func() error{
		func() error { return fig8TimeLimit(opts, true, out) },
		func() error { return fig8TimeLimit(opts, false, out) },
		func() error { return fig8MemLimit(opts, true, out) },
		func() error { return fig8MemLimit(opts, false, out) },
	}
	if err := forEachIndex(opts.Parallelism, len(scenarios), func(i int) error {
		return scenarios[i]()
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// fig8TimeLimit runs one Panel (a) scenario: a hog task that defeats the
// program-directed check, with or without the framework-enforced kill.
func fig8TimeLimit(opts Options, enforce bool, out *Figure8Result) error {
	hogFactory := func(spec core.TaskSpec) (*sidetask.Harness, error) {
		p := spec.Profile
		p.StepTime = time.Millisecond // defeats the program-directed check
		p.StepJitter = 0
		p.CreateTime = 100 * time.Millisecond
		p.InitTime = 50 * time.Millisecond
		return sidetask.NewIterativeHarness(spec.Name, p, hogTask{kernel: 10 * time.Second}, spec.Seed), nil
	}
	rig := newFig8Rig(enforce, hogFactory)
	spec := core.TaskSpec{Name: "hog", Profile: model.ResNet18, Mode: sidetask.ModeIterative, Seed: opts.Seed}
	if err := rig.mgr.Submit(spec); err != nil {
		return fmt.Errorf("fig8a submit: %w", err)
	}
	rig.mgr.Start()
	rig.eng.RunFor(time.Second) // create + init
	base := rig.eng.Now()
	bubbleEnd := base + 600*time.Millisecond
	rig.mgr.AddBubble(bubble.Bubble{Stage: 0, Type: bubble.TypeA, Start: base, Duration: 600 * time.Millisecond, MemAvailable: 40 * model.GiB})
	rig.eng.RunFor(4 * time.Second)

	if _, ok := rig.worker.Harness("hog"); !ok {
		return fmt.Errorf("fig8a: hog task missing")
	}
	series := Figure8Series{Name: "with limit", Points: sampleSeries(rig.dev.Occupancy(), base-200*time.Millisecond, base+4*time.Second, 50*time.Millisecond)}
	if enforce {
		out.OccWithLimit = series
		out.BubbleEnd = bubbleEnd
		out.GraceKills = rig.worker.Stats().GraceKills
		out.KilledAt = bubbleEnd + 300*time.Millisecond
	} else {
		series.Name = "without limit"
		out.OccWithoutLimit = series
	}
	return nil
}

// fig8MemLimit runs one Panel (b) scenario: a leaking task with or without
// the MPS memory cap.
func fig8MemLimit(opts Options, withCap bool, out *Figure8Result) error {
	leakFactory := func(spec core.TaskSpec) (*sidetask.Harness, error) {
		p := spec.Profile
		p.StepTime = 100 * time.Millisecond
		p.StepJitter = 0
		p.CreateTime = 100 * time.Millisecond
		p.InitTime = 50 * time.Millisecond
		return sidetask.NewIterativeHarness(spec.Name, p, leakTask{}, spec.Seed), nil
	}
	rig := newFig8Rig(true, leakFactory)
	profile := model.ResNet18
	if withCap {
		// The manager imposes limit = profiled mem + slack; craft the
		// profile so the cap lands at 8 GB.
		profile.MemBytes = 8*model.GiB - 256<<20
	} else {
		profile.MemBytes = model.GiB // limit exists but we report the uncapped growth
	}
	spec := core.TaskSpec{Name: "leaky", Profile: profile, Mode: sidetask.ModeIterative, Seed: opts.Seed}
	var cont *container.Container
	if withCap {
		if err := rig.mgr.Submit(spec); err != nil {
			return fmt.Errorf("fig8b submit: %w", err)
		}
	} else {
		// Without the MPS cap the task is deployed outside the manager
		// (a raw container with no memory limit).
		h, err := leakFactory(spec)
		if err != nil {
			return err
		}
		procs := simproc.NewRuntime(rig.eng)
		ctrs := container.NewRuntime(procs)
		c, err := ctrs.Run(container.Spec{Name: "leaky-nolimit", Device: rig.dev}, h.Run)
		if err != nil {
			return err
		}
		cont = c
		rig.eng.Schedule(200*time.Millisecond, "kick", func() {
			h.Deliver(sidetask.Command{Transition: sidetask.TransitionInit})
			h.Deliver(sidetask.Command{Transition: sidetask.TransitionStart, BubbleEnd: 1 << 62})
		})
	}
	if withCap {
		rig.mgr.Start()
		rig.eng.RunFor(time.Second)
		base := rig.eng.Now()
		rig.mgr.AddBubble(bubble.Bubble{Stage: 0, Type: bubble.TypeA, Start: base, Duration: 10 * time.Second, MemAvailable: 40 * model.GiB})
	}
	rig.eng.RunFor(6 * time.Second)

	var tr *trace.Series
	if withCap {
		// The managed container's client trace.
		tr = rig.dev.MemTrace()
	} else {
		tr = cont.GPU().MemTrace()
		if tr == nil {
			tr = rig.dev.MemTrace()
		}
	}
	pts := sampleSeries(tr, 0, rig.eng.Now(), 100*time.Millisecond)
	if withCap {
		out.MemWithLimit = Figure8Series{Name: "with 8GB limit", Points: pts}
		out.OOMKilled = rig.dev.MemUsed() == 0
	} else {
		out.MemWithoutLimit = Figure8Series{Name: "without limit", Points: pts}
	}
	return nil
}

func sampleSeries(s *trace.Series, from, to, step time.Duration) []trace.Point {
	var out []trace.Point
	for t := from; t <= to; t += step {
		if t < 0 {
			continue
		}
		out = append(out, trace.Point{T: t, V: s.At(t)})
	}
	return out
}

// Render draws both panels as ASCII sparkline tables.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8(a): framework-enforced time limit (bubble ends at %v; grace 300ms)\n", r.BubbleEnd)
	fmt.Fprintf(&b, "  with limit:    %s\n", sparkline(r.OccWithLimit.Points, 1.0))
	fmt.Fprintf(&b, "  without limit: %s\n", sparkline(r.OccWithoutLimit.Points, 1.0))
	fmt.Fprintf(&b, "  grace kills: %d (task terminated ~%v)\n\n", r.GraceKills, r.KilledAt)
	fmt.Fprintf(&b, "Figure 8(b): MPS memory limit (cap %.0f GB)\n", float64(r.MemCap)/float64(model.GiB))
	maxMem := float64(16 * model.GiB)
	fmt.Fprintf(&b, "  with limit:    %s\n", sparkline(r.MemWithLimit.Points, maxMem))
	fmt.Fprintf(&b, "  without limit: %s\n", sparkline(r.MemWithoutLimit.Points, maxMem))
	fmt.Fprintf(&b, "  OOM-killed with cap: %v\n", r.OOMKilled)
	return b.String()
}

var sparkChars = []rune(" ▁▂▃▄▅▆▇█")

func sparkline(pts []trace.Point, maxV float64) string {
	var b strings.Builder
	for _, p := range pts {
		idx := int(p.V / maxV * float64(len(sparkChars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkChars) {
			idx = len(sparkChars) - 1
		}
		b.WriteRune(sparkChars[idx])
	}
	return b.String()
}
