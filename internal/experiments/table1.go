package experiments

import (
	"fmt"

	"freeride"
	"freeride/internal/model"
)

// Table1Row compares one side task's throughput on bubbles vs the dedicated
// platforms (paper Table 1, iterations per second).
type Table1Row struct {
	Task string
	// Bubbles is aggregate steps/s harvested via the iterative interface
	// across all eligible workers.
	Bubbles float64
	// ServerII and ServerCPU are dedicated-platform throughputs.
	ServerII  float64
	ServerCPU float64
	// Workers is how many stages served the task.
	Workers int
}

// RatioII reports Bubbles/ServerII (paper: 1.06–2.82×).
func (r Table1Row) RatioII() float64 {
	if r.ServerII == 0 {
		return 0
	}
	return r.Bubbles / r.ServerII
}

// RatioCPU reports Bubbles/ServerCPU (paper: 7–59.9×).
func (r Table1Row) RatioCPU() float64 {
	if r.ServerCPU == 0 {
		return 0
	}
	return r.Bubbles / r.ServerCPU
}

// Table1Result reproduces paper Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 measures every side task's bubble throughput under the
// iterative interface and compares with Server-II / Server-CPU.
func RunTable1(opts Options) (*Table1Result, error) {
	opts.normalize()
	out := &Table1Result{}
	for _, task := range evalTasks {
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		res, err := runOne(cfg, []model.TaskProfile{task})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", task.Name, err)
		}
		workers := 0
		for _, tw := range res.Tasks {
			if tw.Steps > 0 {
				workers++
			}
		}
		out.Rows = append(out.Rows, Table1Row{
			Task:      task.Name,
			Bubbles:   float64(res.TotalSteps()) / res.TrainTime.Seconds(),
			ServerII:  task.ThroughputOn(model.ServerII),
			ServerCPU: task.ThroughputOn(model.ServerCPU),
			Workers:   workers,
		})
	}
	return out, nil
}

// Render prints the table in the paper's layout plus the derived ratios.
func (r *Table1Result) Render() string {
	t := &Table{
		Title:  "Table 1: side task throughput (steps/s) on different platforms",
		Header: []string{"Side task", "Iterative(bubbles)", "Server-II", "Server-CPU", "x vs II", "x vs CPU"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Task,
			fmt.Sprintf("%.2f", row.Bubbles),
			fmt.Sprintf("%.2f", row.ServerII),
			fmt.Sprintf("%.2f", row.ServerCPU),
			fmt.Sprintf("%.2f", row.RatioII()),
			fmt.Sprintf("%.1f", row.RatioCPU()),
		)
	}
	return t.Render()
}
