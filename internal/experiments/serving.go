package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/serve"
)

// ServingSweepRow is one (trace × rate × SLO × guard) cell of the serving
// sweep: the FreeRide-iterative arm with side tasks harvesting the fill,
// drain and inter-batch bubbles, against the no-side-task baseline on the
// same arrival trace.
type ServingSweepRow struct {
	Trace serve.TraceKind
	// Rate is the mean arrival rate (req/s); Burstiness the trace's shape
	// knob (0 for Poisson).
	Rate       float64
	Burstiness float64
	SLO        time.Duration
	// Guard is the SLO admission guard: pause-to-running fits are deferred
	// when the remaining bubble is shorter than Guard × the task's fit
	// time. 0 disarms the guard (structural identity with the unguarded
	// reconcile loop).
	Guard float64

	// Request-latency distribution of the harvesting arm.
	Requests   int
	Batches    int
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
	Violations int
	// Baseline (MethodNone, same trace): the serving latency floor.
	BaseP50        time.Duration
	BaseP99        time.Duration
	BaseViolations int

	// Harvested is side-task kernel time extracted from serving bubbles;
	// Steps the completed side-task steps; SLODeferred how many fits the
	// guard refused.
	Harvested   time.Duration
	Steps       uint64
	SLODeferred uint64
	Instances   int
	// TotalTime is the serving makespan (first dispatch → last drain).
	TotalTime time.Duration
}

// HarvestRate is harvested side-task kernel seconds per second of serving
// makespan — the sweep's y-axis against the violation count.
func (r ServingSweepRow) HarvestRate() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Harvested) / float64(r.TotalTime)
}

// ExcessViolations is the harvesting arm's SLO violations beyond the
// baseline's on the same trace — the contention cost of harvesting.
func (r ServingSweepRow) ExcessViolations() int { return r.Violations - r.BaseViolations }

// ServingSweepResult is the trace × rate × SLO × guard grid.
type ServingSweepResult struct {
	Opts Options
	Rows []ServingSweepRow
}

// servingSweepCells builds the deterministic cell skeleton. The default
// slice pairs each trace with its characteristic burstiness (Poisson 0,
// bursty 3) over rates {2,4} req/s, SLOs {6s,4s}, guards {0,1,4}; Cross
// adds the diurnal trace and a tighter 3s SLO.
func servingSweepCells(opts Options) []ServingSweepRow {
	traces := []struct {
		kind  serve.TraceKind
		burst float64
	}{
		{serve.TracePoisson, 0},
		{serve.TraceBursty, 3},
	}
	rates := []float64{2, 4}
	slos := []time.Duration{6 * time.Second, 4 * time.Second}
	guards := []float64{0, 1, 4}
	if opts.Cross {
		traces = append(traces, struct {
			kind  serve.TraceKind
			burst float64
		}{serve.TraceDiurnal, 2})
		slos = append(slos, 3*time.Second)
	}
	var cells []ServingSweepRow
	for _, tr := range traces {
		for _, rate := range rates {
			for _, slo := range slos {
				for _, g := range guards {
					cells = append(cells, ServingSweepRow{
						Trace: tr.kind, Rate: rate, Burstiness: tr.burst,
						SLO: slo, Guard: g,
					})
				}
			}
		}
	}
	return cells
}

// RunServingSweep runs the inference-serving workload end to end: open-loop
// arrival traces drive forward-only pipeline batches, side tasks harvest
// the fill/drain/inter-batch bubbles, and the SLO admission guard trades
// harvested GPU-seconds against p99 violations. Every guard arm of a
// (trace, rate) pair shares the same seeded arrivals, so the guard axis is
// directly comparable. Shard/ShardCount split the grid like the other
// sweeps: shard k of n runs cells where index mod n == k.
func RunServingSweep(opts Options) (*ServingSweepResult, error) {
	opts.normalize()
	baseCfg := opts.baseConfig()
	baseCfg.Method = freeride.MethodIterative

	cells := servingSweepCells(opts)
	var idxs []int
	for i := range cells {
		if i%opts.ShardCount == opts.Shard {
			idxs = append(idxs, i)
		}
	}
	err := forEachIndex(opts.Parallelism, len(idxs), func(j int) error {
		row := &cells[idxs[j]]
		if err := runServingCell(baseCfg, row); err != nil {
			return fmt.Errorf("serving sweep %v rate=%g slo=%v g=%g: %w",
				row.Trace, row.Rate, row.SLO, row.Guard, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &ServingSweepResult{Opts: opts}
	for _, i := range idxs {
		out.Rows = append(out.Rows, cells[i])
	}
	return out, nil
}

// runServingCell executes one cell: the harvesting arm (FreeRide iterative,
// one ResNet18 per eligible stage) and the MethodNone baseline on the same
// trace, filling the row's measurements.
func runServingCell(baseCfg freeride.Config, row *ServingSweepRow) error {
	sc := freeride.ServingConfig{
		Trace:      row.Trace,
		Rate:       row.Rate,
		Burstiness: row.Burstiness,
		SLO:        row.SLO,
		Guard:      row.Guard,
	}

	cfg := baseCfg
	cfg.Serving = &sc
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return err
	}
	n, err := sess.SubmitEverywhere(model.ResNet18)
	if err != nil {
		return err
	}
	res, err := sess.Run()
	if err != nil {
		return err
	}
	st := res.ServingStats
	row.Requests = st.Requests
	row.Batches = st.Batches
	row.P50, row.P99, row.Max = st.P50, st.P99, st.Max
	row.Violations = st.Violations
	row.Harvested = harvestedKernelTime(res)
	row.Steps = res.TotalSteps()
	row.SLODeferred = res.ManagerStats.SLODeferred
	row.Instances = n
	row.TotalTime = st.TotalTime

	// Baseline: same trace and SLO, no side tasks, no residency tax.
	bcfg := baseCfg
	bcfg.Method = freeride.MethodNone
	bsc := sc
	bsc.Guard = 0
	bcfg.Serving = &bsc
	bsess, err := freeride.NewSession(bcfg)
	if err != nil {
		return err
	}
	bres, err := bsess.Run()
	if err != nil {
		return err
	}
	bst := bres.ServingStats
	row.BaseP50, row.BaseP99 = bst.P50, bst.P99
	row.BaseViolations = bst.Violations
	return nil
}

// Render prints the sweep as a text table plus the harvest-vs-violations
// readout the sweep exists for.
func (r *ServingSweepResult) Render() string {
	t := &Table{
		Title: "Serving sweep — harvested GPU-seconds vs p99 SLO violations " +
			"(ResNet18 everywhere, FreeRide iterative vs no-side-task baseline)",
		Header: []string{"trace", "rate", "slo_s", "guard", "p99_s", "base_p99_s",
			"viol", "base_viol", "deferred", "harvest_s", "harvest_rate", "steps",
			"tasks", "reqs", "span_s"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Trace.String(), fmtF(row.Rate), fmtF(row.SLO.Seconds()), fmtF(row.Guard),
			secs(row.P99), secs(row.BaseP99),
			strconv.Itoa(row.Violations), strconv.Itoa(row.BaseViolations),
			strconv.FormatUint(row.SLODeferred, 10),
			secs(row.Harvested), fmtF(row.HarvestRate()),
			strconv.FormatUint(row.Steps, 10), strconv.Itoa(row.Instances),
			strconv.Itoa(row.Requests), secs(row.TotalTime),
		)
	}
	out := t.Render()

	// The headline tradeoff: aggregated over (trace, rate, SLO) groups,
	// what does tightening the guard from 0 to its max cost in harvest and
	// buy in violations?
	var gMin, gMax float64
	for i, row := range r.Rows {
		if i == 0 || row.Guard < gMin {
			gMin = row.Guard
		}
		if i == 0 || row.Guard > gMax {
			gMax = row.Guard
		}
	}
	if gMax > gMin {
		var hLoose, hTight time.Duration
		var vLoose, vTight int
		for _, row := range r.Rows {
			switch row.Guard {
			case gMin:
				hLoose += row.Harvested
				vLoose += row.ExcessViolations()
			case gMax:
				hTight += row.Harvested
				vTight += row.ExcessViolations()
			}
		}
		out += fmt.Sprintf(
			"\nSLO guard tradeoff: tightening the guard %g → %g trades harvest "+
				"%.2fs → %.2fs against excess violations %d → %d over the same "+
				"arrival traces.\n",
			gMin, gMax, hLoose.Seconds(), hTight.Seconds(), vLoose, vTight)
	}
	return out
}

// WriteCSV emits one row per sweep cell.
func (r *ServingSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "rate", "burstiness", "slo_s", "guard",
		"requests", "batches", "p50_s", "p99_s", "max_s", "violations",
		"base_p50_s", "base_p99_s", "base_violations", "harvest_s",
		"harvest_rate", "steps", "slo_deferred", "instances", "span_s"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Trace.String(), fmtF(row.Rate), fmtF(row.Burstiness),
			fmtF(row.SLO.Seconds()), fmtF(row.Guard),
			strconv.Itoa(row.Requests), strconv.Itoa(row.Batches),
			fmtF(row.P50.Seconds()), fmtF(row.P99.Seconds()), fmtF(row.Max.Seconds()),
			strconv.Itoa(row.Violations),
			fmtF(row.BaseP50.Seconds()), fmtF(row.BaseP99.Seconds()),
			strconv.Itoa(row.BaseViolations),
			fmtF(row.Harvested.Seconds()), fmtF(row.HarvestRate()),
			strconv.FormatUint(row.Steps, 10),
			strconv.FormatUint(row.SLODeferred, 10),
			strconv.Itoa(row.Instances),
			fmtF(row.TotalTime.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
