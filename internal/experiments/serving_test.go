package experiments

import (
	"reflect"
	"testing"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/model"
)

// TestZeroServingOracleBitIdentical is the dormant-plane gate: arming the
// SLO admission guard in its zero configuration (Oracle.ServingGuard — the
// FREERIDE_ORACLE_SERVING row) on the full training grid must be
// bit-identical to the unarmed grid. Guard 0 is structural identity: the
// reconcile loop's guard clause requires a positive guard before it can
// defer a fit, so the armed manager takes every decision the unarmed one
// does.
func TestZeroServingOracleBitIdentical(t *testing.T) {
	base := runOracleGrid(t, core.ManagerEventDriven, nil)
	armed := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.Oracle.ServingGuard = true
	})
	compareOracleGrids(t, base, armed, "serving guard armed vs unarmed")
	for key, res := range armed {
		if res.ManagerStats.SLODeferred != 0 {
			t.Errorf("%s: zero guard deferred %d fits", key, res.ManagerStats.SLODeferred)
		}
	}
}

// TestOracleGroupBackCompatBitIdentical pins the deprecated flat oracle
// fields to their grouped spellings: a config setting Config.X and one
// setting Config.Oracle.X must produce bit-identical results INCLUDING the
// normalized Config — the fold (flat → group) and mirror (group → flat)
// both ran, so either spelling observes the same session.
func TestOracleGroupBackCompatBitIdentical(t *testing.T) {
	toggles := []struct {
		name    string
		flat    func(*freeride.Config)
		grouped func(*freeride.Config)
	}{
		{"FullRebalance",
			func(c *freeride.Config) { c.FullRebalance = true },
			func(c *freeride.Config) { c.Oracle.FullRebalance = true }},
		{"NoShareCache",
			func(c *freeride.Config) { c.NoShareCache = true },
			func(c *freeride.Config) { c.Oracle.NoShareCache = true }},
		{"NoStepFuse",
			func(c *freeride.Config) { c.NoStepFuse = true },
			func(c *freeride.Config) { c.Oracle.NoStepFuse = true }},
		{"LegacySchedule",
			func(c *freeride.Config) { c.LegacySchedule = true },
			func(c *freeride.Config) { c.Oracle.LegacySchedule = true }},
	}
	runCell := func(tweak func(*freeride.Config)) *freeride.Result {
		cfg := oracleOpts(core.ManagerEventDriven).baseConfig()
		cfg.Method = freeride.MethodIterative
		tweak(&cfg)
		res, err := runOne(cfg, []model.TaskProfile{model.ResNet18})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tog := range toggles {
		flat := runCell(tog.flat)
		grouped := runCell(tog.grouped)
		if !reflect.DeepEqual(flat, grouped) {
			t.Errorf("%s: flat vs grouped spelling diverged (config folding broken)", tog.name)
		}
		if flat.TotalSteps() == 0 {
			t.Errorf("%s: cell ran no side-task steps (inert comparison)", tog.name)
		}
	}
}

func TestServingSweepDeterministic(t *testing.T) {
	opts := Options{Epochs: 4, Seed: 1}
	a, err := RunServingSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServingSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed serving sweeps diverged")
	}
}

// Different seeds must generate different arrival traces, visible end to
// end as a different latency distribution somewhere in the grid.
func TestServingSweepSeedDivergence(t *testing.T) {
	a, err := RunServingSweep(Options{Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServingSweep(Options{Epochs: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	diverged := false
	for i := range a.Rows {
		if a.Rows[i].P99 != b.Rows[i].P99 || a.Rows[i].TotalTime != b.Rows[i].TotalTime {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seeds 1 and 2 produced identical latency distributions across the whole grid")
	}
}

// TestServingGuardTradeoffMonotone pins the sweep's reason to exist: within
// every (trace, rate, SLO) group — same seeded arrivals across the guard
// axis — tightening the SLO admission guard must not increase harvest and
// must not increase violations; across the grid the max guard must cost
// strictly some harvest and actually defer fits.
func TestServingGuardTradeoffMonotone(t *testing.T) {
	r, err := RunServingSweep(Options{Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	type axis struct {
		trace string
		rate  float64
		slo   int64
	}
	groups := map[axis][]ServingSweepRow{}
	for _, row := range r.Rows {
		k := axis{row.Trace.String(), row.Rate, int64(row.SLO)}
		groups[k] = append(groups[k], row)
	}
	var hLoose, hTight int64
	var deferred uint64
	for k, rows := range groups {
		for i := 1; i < len(rows); i++ {
			if rows[i].Guard < rows[i-1].Guard {
				t.Fatalf("%+v: guard axis not ascending", k)
			}
			if rows[i].Harvested > rows[i-1].Harvested {
				t.Errorf("%+v: harvest rose %v → %v as guard tightened %g → %g",
					k, rows[i-1].Harvested, rows[i].Harvested, rows[i-1].Guard, rows[i].Guard)
			}
			if rows[i].Violations > rows[i-1].Violations {
				t.Errorf("%+v: violations rose %d → %d as guard tightened %g → %g",
					k, rows[i-1].Violations, rows[i].Violations, rows[i-1].Guard, rows[i].Guard)
			}
		}
		hLoose += int64(rows[0].Harvested)
		hTight += int64(rows[len(rows)-1].Harvested)
		deferred += rows[len(rows)-1].SLODeferred
	}
	if hTight >= hLoose {
		t.Errorf("max guard harvested %d ≥ unguarded %d — the guard costs nothing", hTight, hLoose)
	}
	if deferred == 0 {
		t.Error("max guard deferred no fits anywhere — the guard is inert")
	}
}

// TestServingSweepShardsPartition asserts the shard filter partitions the
// grid exactly: the union of all shards equals the unsharded sweep.
func TestServingSweepShardsPartition(t *testing.T) {
	full, err := RunServingSweep(Options{Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var union []ServingSweepRow
	for k := 0; k < 3; k++ {
		part, err := RunServingSweep(Options{Epochs: 4, Seed: 1, Shard: k, ShardCount: 3})
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, part.Rows...)
	}
	if len(union) != len(full.Rows) {
		t.Fatalf("shards cover %d rows, full sweep has %d", len(union), len(full.Rows))
	}
	matched := 0
	for _, row := range full.Rows {
		for _, u := range union {
			if reflect.DeepEqual(row, u) {
				matched++
				break
			}
		}
	}
	if matched != len(full.Rows) {
		t.Errorf("only %d/%d full-sweep rows found across the shards", matched, len(full.Rows))
	}
}
