package experiments

import (
	"math"
	"strings"
	"testing"

	"freeride"
	"freeride/internal/sidetask"
)

// fastOpts keeps the suite quick: 8 epochs, no real side-task computation.
func fastOpts() Options {
	return Options{Epochs: 8, WorkScale: sidetask.WorkNone, Seed: 1}
}

func TestTable1ShapeHolds(t *testing.T) {
	res, err := RunTable1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper: bubbles beat the dedicated lower-tier GPU (1.06–2.82×)
		// and the CPU by far (7–59.9×).
		if row.RatioII() < 1.0 {
			t.Errorf("%s: bubbles/Server-II ratio %.2f < 1 — harvesting loses to a 3080", row.Task, row.RatioII())
		}
		if row.RatioII() > 4.0 {
			t.Errorf("%s: bubbles/Server-II ratio %.2f implausibly high", row.Task, row.RatioII())
		}
		if row.RatioCPU() < 5 {
			t.Errorf("%s: bubbles/CPU ratio %.1f < 5", row.Task, row.RatioCPU())
		}
	}
	if out := res.Render(); !strings.Contains(out, "resnet18") {
		t.Error("render missing task rows")
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	res, err := RunTable2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*7 {
		t.Fatalf("rows = %d, want 28", len(res.Rows))
	}
	// Headline claims (paper §1): iterative FreeRide ≈1% overhead with
	// positive single/low-double-digit savings on every task.
	for _, row := range res.Rows {
		if row.Method != freeride.MethodIterative {
			continue
		}
		if row.I > 0.03 {
			t.Errorf("iterative %s: I = %.3f > 3%%", row.Task, row.I)
		}
		if row.S < 0.01 {
			t.Errorf("iterative %s: S = %.3f not positive", row.Task, row.S)
		}
	}
	meanI, meanS := res.Averages(freeride.MethodIterative)
	if meanI > 0.02 {
		t.Errorf("iterative mean I = %.3f, want ~0.011", meanI)
	}
	if meanS < 0.04 || meanS > 0.15 {
		t.Errorf("iterative mean S = %.3f, want ~0.078 band", meanS)
	}
	// Imperative: comparable savings, higher overhead.
	for _, task := range []string{"resnet18", "graphsgd", "image"} {
		iter, _ := res.Row(task, freeride.MethodIterative)
		imp, _ := res.Row(task, freeride.MethodImperative)
		if imp.I < iter.I {
			t.Errorf("%s: imperative I %.4f < iterative %.4f", task, imp.I, iter.I)
		}
	}
	// MPS: worst on Graph SGD (~200%+), mild on image (<15%); FreeRide
	// beats it everywhere.
	sgdMPS, _ := res.Row("graphsgd", freeride.MethodMPS)
	if sgdMPS.I < 1.5 {
		t.Errorf("MPS graphsgd I = %.2f, want > 150%%", sgdMPS.I)
	}
	imgMPS, _ := res.Row("image", freeride.MethodMPS)
	if imgMPS.I > 0.2 {
		t.Errorf("MPS image I = %.2f, want mild (<20%%)", imgMPS.I)
	}
	// Naive: tens of percent overhead, negative savings for resnet18.
	rnNaive, _ := res.Row("resnet18", freeride.MethodNaive)
	if rnNaive.I < 0.2 || rnNaive.I > 0.8 {
		t.Errorf("naive resnet18 I = %.2f, want ~0.5", rnNaive.I)
	}
	if rnNaive.S > 0 {
		t.Errorf("naive resnet18 S = %.2f, want negative", rnNaive.S)
	}
	// Mixed workload: low overhead, solid savings (paper: 1.1% / 10.1%).
	mixed, ok := res.Row("mixed", freeride.MethodIterative)
	if !ok {
		t.Fatal("mixed row missing")
	}
	if mixed.I > 0.03 || mixed.S < 0.03 {
		t.Errorf("mixed iterative I/S = %.3f/%.3f, want ~0.011/0.10", mixed.I, mixed.S)
	}
	if out := res.Render(); !strings.Contains(out, "mixed") {
		t.Error("render missing mixed row")
	}
}

func TestFigure1Structure(t *testing.T) {
	res, err := RunFigure1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 4 {
		t.Fatalf("stages = %d, want 4", len(res.Ops))
	}
	// Memory decreases with stage (Fig 1b).
	for s := 1; s < 4; s++ {
		if res.MemUsed[s] >= res.MemUsed[s-1] {
			t.Errorf("stage %d memory %d not < stage %d", s, res.MemUsed[s], s-1)
		}
	}
	// Every stage shows bubbles within the epoch.
	for s, bs := range res.Bubbles {
		if bs.Total() <= 0 {
			t.Errorf("stage %d shows no bubbles", s)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "stage 3") || !strings.Contains(out, "Figure 1(b)") {
		t.Error("render incomplete")
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	res, err := RunFigure2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats = %d, want 4", len(res.Stats))
	}
	var r12, r36, r60, r36mb8 float64
	var e12, e36, e60 float64
	for _, s := range res.Stats {
		switch {
		case s.Model == "nanogpt-1.2b":
			r12, e12 = s.BubbleRate, s.EpochTime.Seconds()
		case s.Model == "nanogpt-3.6b" && s.MicroBatch == 4:
			r36, e36 = s.BubbleRate, s.EpochTime.Seconds()
		case s.Model == "nanogpt-6b":
			r60, e60 = s.BubbleRate, s.EpochTime.Seconds()
		case s.MicroBatch == 8:
			r36mb8 = s.BubbleRate
		}
	}
	// Paper Fig 2b: ~42.4% → ~40.4%, epoch time decreasing; mb8 ≈ 26.2%.
	if !(r12 > r36 && r36 > r60) {
		t.Errorf("bubble rates not decreasing: %.3f %.3f %.3f", r12, r36, r60)
	}
	if math.Abs(r12-0.424) > 0.03 || math.Abs(r60-0.404) > 0.03 {
		t.Errorf("bubble rates %.3f/%.3f outside paper band", r12, r60)
	}
	if math.Abs(r36mb8-0.262) > 0.03 {
		t.Errorf("micro-batch-8 rate %.3f, want ~0.262", r36mb8)
	}
	if !(e12 > e36 && e36 > e60) {
		t.Errorf("epoch times not decreasing: %.2f %.2f %.2f", e12, e36, e60)
	}
	if len(res.Points) == 0 {
		t.Error("no scatter points")
	}
}

func TestFigure7BatchSize(t *testing.T) {
	res, err := RunFigure7BatchSize(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(res.Rows))
	}
	oomSeen := false
	for _, row := range res.Rows {
		if row.I > 0.03 {
			t.Errorf("%s %s: I = %.3f > 3%%", row.Task, row.X, row.I)
		}
		if row.OOM {
			oomSeen = true
		} else if row.S <= 0 {
			t.Errorf("%s %s: S = %.3f not positive", row.Task, row.X, row.S)
		}
	}
	// Paper Fig 7b: large VGG19 batches OOM on Server-II.
	if !oomSeen {
		t.Error("no OOM cells; expected for vgg19 b96/b128")
	}
}

func TestFigure7ModelSize(t *testing.T) {
	res, err := RunFigure7ModelSize(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.I > 0.05 {
			t.Errorf("%s %s: I = %.3f > 5%%", row.Task, row.X, row.I)
		}
	}
}

func TestFigure7MicroBatch(t *testing.T) {
	res, err := RunFigure7MicroBatch(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(res.Rows))
	}
	// Paper Fig 7f: savings shrink as micro-batch count rises (lower
	// bubble rate). Check resnet18's trend.
	var s4, s8 float64
	for _, row := range res.Rows {
		if row.Task == "resnet18" && row.X == "mb4" {
			s4 = row.S
		}
		if row.Task == "resnet18" && row.X == "mb8" {
			s8 = row.S
		}
	}
	if s8 >= s4 {
		t.Errorf("resnet18 savings did not shrink with micro-batches: mb4 %.3f vs mb8 %.3f", s4, s8)
	}
}

func TestFigure8LimitMechanisms(t *testing.T) {
	res, err := RunFigure8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.GraceKills != 1 {
		t.Errorf("grace kills = %d, want 1", res.GraceKills)
	}
	// With the limit, occupancy must be zero well after the kill; without
	// it the hog keeps running.
	last := res.OccWithLimit.Points[len(res.OccWithLimit.Points)-1]
	if last.V != 0 {
		t.Errorf("with limit: occupancy %v at end, want 0", last.V)
	}
	lastNo := res.OccWithoutLimit.Points[len(res.OccWithoutLimit.Points)-1]
	if lastNo.V == 0 {
		t.Error("without limit: hog stopped by itself?")
	}
	// Memory: capped run dies (device back to 0); uncapped grows past 8GB.
	if !res.OOMKilled {
		t.Error("capped leaky task not OOM-killed")
	}
	var maxNoCap float64
	for _, p := range res.MemWithoutLimit.Points {
		if p.V > maxNoCap {
			maxNoCap = p.V
		}
	}
	if maxNoCap < float64(res.MemCap) {
		t.Errorf("uncapped leak reached only %.1f GB, want > 8", maxNoCap/float64(1<<30))
	}
	if out := res.Render(); !strings.Contains(out, "Figure 8(b)") {
		t.Error("render incomplete")
	}
}

func TestFigure9Breakdown(t *testing.T) {
	res, err := RunFigure9(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	for _, row := range res.Rows {
		sum := row.Running + row.Runtime + row.Insufficient + row.OOM
		if math.Abs(sum-1.0) > 0.02 {
			t.Errorf("%s: shares sum to %.3f", row.Task, sum)
		}
		switch row.Task {
		case "vgg19", "image":
			// Paper: these miss stages 0–1, so ~half the bubble time is
			// "No side task: OOM".
			if math.Abs(row.OOM-0.5) > 0.05 {
				t.Errorf("%s OOM share = %.2f, want ~0.5", row.Task, row.OOM)
			}
		case "resnet18", "pagerank", "mixed":
			if row.OOM != 0 {
				t.Errorf("%s OOM share = %.2f, want 0", row.Task, row.OOM)
			}
		}
		if row.Task == "pagerank" {
			// Paper: short steps → high runtime share.
			if row.Runtime < 0.15 {
				t.Errorf("pagerank runtime share = %.2f, want substantial", row.Runtime)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "mixed") {
		t.Error("render incomplete")
	}
}

func TestCSVExports(t *testing.T) {
	opts := fastOpts()
	opts.Epochs = 4

	t1, err := RunTable1(opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := t1.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 7 { // header + 6 tasks
		t.Fatalf("table1 CSV lines = %d, want 7:\n%s", lines, b.String())
	}

	f9, err := RunFigure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f9.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pagerank") {
		t.Fatal("figure9 CSV missing rows")
	}

	f2, err := RunFigure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "stat,nanogpt-3.6b,8") {
		t.Fatalf("figure2 CSV missing micro-batch-8 stat:\n%s", b.String())
	}

	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	b.Reset()
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("table CSV = %q", b.String())
	}
}

func TestAblationInterleavedComposesWithFreeRide(t *testing.T) {
	res, err := RunAblationInterleaved(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	plain, inter := res.Rows[0], res.Rows[1]
	// Interleaving shrinks the harvest but both stay low-overhead and
	// positive-savings.
	if inter.Steps >= plain.Steps {
		t.Errorf("interleaved steps %d >= plain %d — bubbles did not shrink", inter.Steps, plain.Steps)
	}
	for _, row := range res.Rows {
		if row.I > 0.03 {
			t.Errorf("%s: I = %.3f > 3%%", row.Label, row.I)
		}
		if row.S <= 0 {
			t.Errorf("%s: S = %.3f not positive", row.Label, row.S)
		}
	}
}
