package experiments

import (
	"runtime"
	"sync"
)

// forEachIndex runs fn(0..n-1) on a bounded worker pool of the given width
// (0 or negative selects GOMAXPROCS) and returns the first error observed.
//
// Every experiment grid is a cross product of independent simulations: each
// session owns a private engine, and the package-level profile/baseline
// caches in package freeride are singleflight-guarded, so jobs can run
// concurrently. Determinism is preserved by construction — each job writes
// only its own result slot, so the output order never depends on
// scheduling, and each simulation is seeded identically regardless of which
// worker runs it.
func forEachIndex(parallel, n int, fn func(i int) error) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if firstErr != nil || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
		}
	}
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go worker()
	}
	wg.Wait()
	return firstErr
}
