package experiments

import (
	"fmt"

	"freeride"
	"freeride/internal/model"
)

// Figure7Row is one bar of a Figure 7 panel.
type Figure7Row struct {
	Task string
	// X is the swept parameter (batch size, model params-B, micro-batches).
	X string
	I float64
	S float64
	// OOM marks configurations whose dedicated Server-II comparison cannot
	// run (paper's "OOM" annotation: S undefined).
	OOM bool
}

// Figure7Result holds one sensitivity panel pair (time increase + savings).
type Figure7Result struct {
	Panel string
	Rows  []Figure7Row
}

// RunFigure7BatchSize reproduces Figure 7(a,b): FreeRide-iterative with
// model-training side tasks at batch sizes 16..128.
func RunFigure7BatchSize(opts Options) (*Figure7Result, error) {
	opts.normalize()
	batches := []int{16, 32, 64, 96, 128}
	bases := []model.TaskProfile{model.ResNet18, model.ResNet50, model.VGG19}
	type job struct {
		base model.TaskProfile
		bs   int
	}
	var jobs []job
	for _, base := range bases {
		for _, bs := range batches {
			jobs = append(jobs, job{base: base, bs: bs})
		}
	}
	rows := make([]Figure7Row, len(jobs))
	err := forEachIndex(opts.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		task := j.base.WithBatch(j.bs)
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		res, err := runOne(cfg, []model.TaskProfile{task})
		if err != nil {
			return fmt.Errorf("fig7ab %s: %w", task.Name, err)
		}
		_, fits := task.StepTimeOn(model.ServerII)
		rows[i] = Figure7Row{
			Task: j.base.Name,
			X:    fmt.Sprintf("b%d", j.bs),
			I:    res.Cost.I,
			S:    res.Cost.S,
			OOM:  !fits,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure7Result{Panel: "fig7ab: batch size sensitivity", Rows: rows}, nil
}

// RunFigure7ModelSize reproduces Figure 7(c,d): all six side tasks against
// 1.2B/3.6B/6B main models.
func RunFigure7ModelSize(opts Options) (*Figure7Result, error) {
	opts.normalize()
	type job struct {
		task model.TaskProfile
		llm  model.LLM
	}
	var jobs []job
	for _, task := range evalTasks {
		for _, llm := range model.LLMPresets {
			jobs = append(jobs, job{task: task, llm: llm})
		}
	}
	rows := make([]Figure7Row, len(jobs))
	err := forEachIndex(opts.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		cfg.LLM = j.llm
		res, err := runOne(cfg, []model.TaskProfile{j.task})
		if err != nil {
			return fmt.Errorf("fig7cd %s/%s: %w", j.task.Name, j.llm.Name, err)
		}
		rows[i] = Figure7Row{
			Task: j.task.Name,
			X:    fmt.Sprintf("%.1fB", j.llm.ParamsB),
			I:    res.Cost.I,
			S:    res.Cost.S,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure7Result{Panel: "fig7cd: model size sensitivity", Rows: rows}, nil
}

// RunFigure7MicroBatch reproduces Figure 7(e,f): micro-batch counts 4/6/8.
func RunFigure7MicroBatch(opts Options) (*Figure7Result, error) {
	opts.normalize()
	type job struct {
		task model.TaskProfile
		mbs  int
	}
	var jobs []job
	for _, task := range evalTasks {
		for _, mbs := range []int{4, 6, 8} {
			jobs = append(jobs, job{task: task, mbs: mbs})
		}
	}
	rows := make([]Figure7Row, len(jobs))
	err := forEachIndex(opts.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		cfg := opts.baseConfig()
		cfg.Method = freeride.MethodIterative
		cfg.MicroBatches = j.mbs
		res, err := runOne(cfg, []model.TaskProfile{j.task})
		if err != nil {
			return fmt.Errorf("fig7ef %s/mb%d: %w", j.task.Name, j.mbs, err)
		}
		rows[i] = Figure7Row{
			Task: j.task.Name,
			X:    fmt.Sprintf("mb%d", j.mbs),
			I:    res.Cost.I,
			S:    res.Cost.S,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure7Result{Panel: "fig7ef: micro-batch count sensitivity", Rows: rows}, nil
}

// Render prints the panel.
func (r *Figure7Result) Render() string {
	t := &Table{
		Title:  "Figure 7 panel — " + r.Panel,
		Header: []string{"task", "x", "time increase I", "cost savings S"},
	}
	for _, row := range r.Rows {
		s := pct(row.S)
		if row.OOM {
			s = "OOM"
		}
		t.AddRow(row.Task, row.X, pct(row.I), s)
	}
	return t.Render()
}
