package experiments

import (
	"fmt"

	"freeride"
	"freeride/internal/model"
)

// Figure7Row is one bar of a Figure 7 panel.
type Figure7Row struct {
	Task string
	// X is the swept parameter (batch size, model params-B, micro-batches).
	X string
	I float64
	S float64
	// OOM marks configurations whose dedicated Server-II comparison cannot
	// run (paper's "OOM" annotation: S undefined).
	OOM bool
}

// Figure7Result holds one sensitivity panel pair (time increase + savings).
type Figure7Result struct {
	Panel string
	Rows  []Figure7Row
}

// RunFigure7BatchSize reproduces Figure 7(a,b): FreeRide-iterative with
// model-training side tasks at batch sizes 16..128.
func RunFigure7BatchSize(opts Options) (*Figure7Result, error) {
	opts.normalize()
	out := &Figure7Result{Panel: "fig7ab: batch size sensitivity"}
	batches := []int{16, 32, 64, 96, 128}
	for _, base := range []model.TaskProfile{model.ResNet18, model.ResNet50, model.VGG19} {
		for _, bs := range batches {
			task := base.WithBatch(bs)
			cfg := opts.baseConfig()
			cfg.Method = freeride.MethodIterative
			res, err := runOne(cfg, []model.TaskProfile{task})
			if err != nil {
				return nil, fmt.Errorf("fig7ab %s: %w", task.Name, err)
			}
			_, fits := task.StepTimeOn(model.ServerII)
			out.Rows = append(out.Rows, Figure7Row{
				Task: base.Name,
				X:    fmt.Sprintf("b%d", bs),
				I:    res.Cost.I,
				S:    res.Cost.S,
				OOM:  !fits,
			})
		}
	}
	return out, nil
}

// RunFigure7ModelSize reproduces Figure 7(c,d): all six side tasks against
// 1.2B/3.6B/6B main models.
func RunFigure7ModelSize(opts Options) (*Figure7Result, error) {
	opts.normalize()
	out := &Figure7Result{Panel: "fig7cd: model size sensitivity"}
	for _, task := range evalTasks {
		for _, llm := range model.LLMPresets {
			cfg := opts.baseConfig()
			cfg.Method = freeride.MethodIterative
			cfg.LLM = llm
			res, err := runOne(cfg, []model.TaskProfile{task})
			if err != nil {
				return nil, fmt.Errorf("fig7cd %s/%s: %w", task.Name, llm.Name, err)
			}
			out.Rows = append(out.Rows, Figure7Row{
				Task: task.Name,
				X:    fmt.Sprintf("%.1fB", llm.ParamsB),
				I:    res.Cost.I,
				S:    res.Cost.S,
			})
		}
	}
	return out, nil
}

// RunFigure7MicroBatch reproduces Figure 7(e,f): micro-batch counts 4/6/8.
func RunFigure7MicroBatch(opts Options) (*Figure7Result, error) {
	opts.normalize()
	out := &Figure7Result{Panel: "fig7ef: micro-batch count sensitivity"}
	for _, task := range evalTasks {
		for _, mbs := range []int{4, 6, 8} {
			cfg := opts.baseConfig()
			cfg.Method = freeride.MethodIterative
			cfg.MicroBatches = mbs
			res, err := runOne(cfg, []model.TaskProfile{task})
			if err != nil {
				return nil, fmt.Errorf("fig7ef %s/mb%d: %w", task.Name, mbs, err)
			}
			out.Rows = append(out.Rows, Figure7Row{
				Task: task.Name,
				X:    fmt.Sprintf("mb%d", mbs),
				I:    res.Cost.I,
				S:    res.Cost.S,
			})
		}
	}
	return out, nil
}

// Render prints the panel.
func (r *Figure7Result) Render() string {
	t := &Table{
		Title:  "Figure 7 panel — " + r.Panel,
		Header: []string{"task", "x", "time increase I", "cost savings S"},
	}
	for _, row := range r.Rows {
		s := pct(row.S)
		if row.OOM {
			s = "OOM"
		}
		t.AddRow(row.Task, row.X, pct(row.I), s)
	}
	return t.Render()
}
