package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"freeride"
	"freeride/internal/bubble"
	"freeride/internal/core"
)

// TestZeroDriftOracleBitIdentical is the drift plane's do-no-harm oracle:
// with the whole dynamic-bubbles stack wired — drifter in the reporter,
// per-worker estimators baselined from the one-shot profile, detector fed
// on every AddBubble, re-plan machinery armed — and an EMPTY drift
// schedule, the entire Table 2 grid must be bit-identical to runs with no
// drift plane at all. The per-epoch windowing makes this exact: every
// window sum equals the baseline to the bit, so the CUSUM never
// accumulates and admission never consults the online estimate.
func TestZeroDriftOracleBitIdentical(t *testing.T) {
	plain := runOracleGrid(t, core.ManagerEventDriven, nil)
	armed := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.Drift = &bubble.DriftSchedule{}
		cfg.Replan = &bubble.DetectorConfig{}
	})
	for key, res := range armed {
		st := res.ManagerStats
		if st.DriftEvents != 0 || st.Replans != 0 || st.Demotions != 0 ||
			st.Revivals != 0 || st.StaleAdmissions != 0 {
			t.Errorf("cell %s: drift counters fired under zero drift: %+v", key, st)
		}
	}
	compareOracleGrids(t, armed, plain, "zero-drift vs no drift plane")
}

// driftOpts is the shrunk sweep configuration the drift tests share.
func driftOpts(seed int64) Options {
	o := oracleOpts(core.ManagerEventDriven)
	o.Seed = seed
	return o
}

// TestDriftSweepDeterministic pins the determinism contract: the same seed
// reproduces the full sweep — drift instants, detections, demotions,
// re-placements, final metrics — DeepEqual.
func TestDriftSweepDeterministic(t *testing.T) {
	a, err := RunDriftSweep(driftOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDriftSweep(driftOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed sweeps diverged:\n%+v\nvs\n%+v", a, b)
	}
	if want := len(bubble.AllDriftKinds()) * len(driftSweepMagnitudes) * len(driftDetectors); len(a.Rows) != want {
		t.Fatalf("sweep produced %d rows, want %d", len(a.Rows), want)
	}
	for _, row := range a.Rows {
		if row.DriftEvents == 0 {
			t.Errorf("%v f=%.2g %s: drift injected but never detected",
				row.Kind, row.Magnitude, row.Detector)
		}
		if row.Replans == 0 || row.Demotions == 0 {
			t.Errorf("%v f=%.2g %s: no re-plan/demotion (replans=%d demotions=%d) — "+
				"the home stage must shrink below the task's fit",
				row.Kind, row.Magnitude, row.Detector, row.Replans, row.Demotions)
		}
		if row.Parked != 0 {
			t.Errorf("%v f=%.2g %s: task parked (%d) with a fitting escape stage available",
				row.Kind, row.Magnitude, row.Detector, row.Parked)
		}
	}
}

// TestOnlineReprofilingBeatsProfileOnce is the acceptance pin: under every
// non-zero drift kind, online re-profiling must harvest strictly more GPU
// time than the paper's profile-once design (aggregated over the magnitude
// and detector axes — individual cells may tie when the drift leaves no
// profitable escape), and must strictly reduce the stale-admission overrun
// SLO (bubble time spent admitted into bubbles too small to step).
func TestOnlineReprofilingBeatsProfileOnce(t *testing.T) {
	res, err := RunDriftSweep(driftOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		online, once           time.Duration
		onlineStale, onceStale time.Duration
	}
	byKind := make(map[bubble.DriftKind]*agg)
	for _, row := range res.Rows {
		a := byKind[row.Kind]
		if a == nil {
			a = &agg{}
			byKind[row.Kind] = a
		}
		a.online += row.Harvested
		a.once += row.OnceHarvested
		a.onlineStale += row.StaleWait
		a.onceStale += row.OnceStaleWait
	}
	for _, kind := range bubble.AllDriftKinds() {
		a := byKind[kind]
		if a == nil {
			t.Errorf("%v: no rows", kind)
			continue
		}
		if a.online <= a.once {
			t.Errorf("%v: online harvested %v <= profile-once %v",
				kind, a.online, a.once)
		}
		if a.onlineStale >= a.onceStale {
			t.Errorf("%v: online stale-admission overrun %v >= profile-once %v",
				kind, a.onlineStale, a.onceStale)
		}
	}
}

// TestDriftSweepRendering sanity-checks the table and CSV emitters.
func TestDriftSweepRendering(t *testing.T) {
	r := &DriftSweepResult{Rows: []DriftSweepRow{{
		Kind: bubble.DriftFreeze, Magnitude: 1, Detector: "fast",
		TrainTime: 2 * time.Second, BaseTime: 2 * time.Second,
		Harvested: 3 * time.Second, OnceHarvested: time.Second,
		BaseHarvest: 2 * time.Second,
		DriftEvents: 4, Replans: 4, Demotions: 1,
	}}}
	if s := r.Render(); s == "" {
		t.Error("empty render")
	}
	var b bytes.Buffer
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() == "" {
		t.Error("empty csv")
	}
	if got := r.Rows[0].OnlineGain(); got != 2*time.Second {
		t.Errorf("OnlineGain() = %v, want 2s", got)
	}
}
