package experiments

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/model"
	"freeride/internal/simfault"
)

// TestZeroFaultOracleBitIdentical is the fault plane's do-no-harm oracle:
// with every hook wired (transport fault filters, device fault arming,
// worker crash/wedge surfaces, manager leases/pings/recovery machinery) and
// an EMPTY schedule, the entire Table 2 grid must be bit-identical to runs
// with no fault plane at all. Pings are the one intentional difference (the
// lease detector probes on its own counter) and are zeroed before compare.
func TestZeroFaultOracleBitIdentical(t *testing.T) {
	plain := runOracleGrid(t, core.ManagerEventDriven, nil)
	wired := runOracleGrid(t, core.ManagerEventDriven, func(cfg *freeride.Config) {
		cfg.Faults = &simfault.Schedule{}
	})
	for key, res := range wired {
		if res.ManagerStats.Pings == 0 {
			t.Errorf("cell %s: lease detector sent no pings (hooks not wired?)", key)
		}
		res.ManagerStats.Pings = 0
	}
	for _, res := range plain {
		res.ManagerStats.Pings = 0
	}
	compareOracleGrids(t, wired, plain, "zero-fault vs no fault plane")
}

// faultOpts is the shrunk sweep configuration the fault tests share.
func faultOpts(seed int64) Options {
	o := oracleOpts(core.ManagerEventDriven)
	o.Seed = seed
	return o
}

// TestFaultSweepDeterministic pins the determinism contract: the same seed
// must reproduce the full sweep — schedules, injection instants, recovery
// decisions, final metrics — DeepEqual, and a different seed must actually
// produce a different schedule (no degenerate generator).
func TestFaultSweepDeterministic(t *testing.T) {
	a, err := RunFaultSweep(faultOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultSweep(faultOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed sweeps diverged:\n%+v\nvs\n%+v", a, b)
	}
	s1 := simfault.Generate(1, time.Minute, 8, nil, 4)
	s2 := simfault.Generate(2, time.Minute, 8, nil, 4)
	if reflect.DeepEqual(s1.Events, s2.Events) {
		t.Errorf("different seeds produced identical schedules: %+v", s1.Events)
	}
	for _, row := range a.Rows {
		if row.Injected != uint64(row.Events) {
			t.Errorf("%v×%d: injected %d of %d scheduled events",
				row.Kind, row.Events, row.Injected, row.Events)
		}
	}
}

// TestCrashSweepRecovers is the acceptance pin for self-healing: a
// crash-worker schedule over the SubmitEverywhere workload (every stage
// hosts a task, every stage has eligible peers) must restart the lost tasks
// elsewhere — RestartedTasks > 0 and no task retired forever — while the
// main training job's time stays unchanged.
func TestCrashSweepRecovers(t *testing.T) {
	res, err := RunFaultSweep(faultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	crashRows := 0
	for _, row := range res.Rows {
		if row.Kind != simfault.KindCrashWorker {
			continue
		}
		crashRows++
		if row.WorkersLost == 0 {
			t.Errorf("crash×%d: no workers lost", row.Events)
		}
		if row.Restarted == 0 {
			t.Errorf("crash×%d: no tasks restarted", row.Events)
		}
		if row.RetiredForever != 0 {
			t.Errorf("crash×%d: %d tasks retired forever with eligible peers available",
				row.Events, row.RetiredForever)
		}
		// A crash physically frees the dead worker's side-task residency
		// tax until the replacement lands, so training may run marginally
		// FASTER under crash faults — but recovery must never slow it.
		if over := row.RecoveryOverhead(); over > 0 {
			t.Errorf("crash×%d: recovery slowed training by %v (%v vs %v)",
				row.Events, over, row.TrainTime, row.BaseTime)
		} else if -over > row.BaseTime/100 {
			t.Errorf("crash×%d: training time drifted %v beyond the tax-relief "+
				"margin (%v vs %v)", row.Events, over, row.TrainTime, row.BaseTime)
		}
	}
	if crashRows == 0 {
		t.Fatal("sweep produced no crash-worker rows")
	}
}

// TestChaosScheduleSuiteGreen is the CI chaos hook: it runs the full
// workload mix under a generated all-kinds fault schedule seeded by
// FREERIDE_CHAOS_SEED (default 1) and asserts the system's liveness
// invariants — the run completes, training finishes, and every task either
// steps, parks, or exits for a reported reason. CI runs it under a seed
// matrix; any seed must hold the invariants.
func TestChaosScheduleSuiteGreen(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("FREERIDE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FREERIDE_CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	opts := faultOpts(seed)
	cfg := opts.baseConfig()
	cfg.Method = freeride.MethodIterative

	// Horizon from a fault-free probe run, then a dense all-kinds schedule.
	probe := cfg
	probe.Faults = &simfault.Schedule{}
	ref, err := runOne(probe, []model.TaskProfile{model.ResNet18})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = simfault.Generate(seed, ref.TrainTime, 12, nil, cfg.Stages)
	res, err := runOne(cfg, []model.TaskProfile{model.ResNet18})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Total() != 12 {
		t.Errorf("injected %d of 12 scheduled events", res.FaultStats.Total())
	}
	if res.TrainTime <= 0 {
		t.Errorf("training did not complete: %v", res.TrainTime)
	}
	for _, tw := range res.Tasks {
		if tw.Steps == 0 && !tw.Parked && !tw.Exited {
			t.Errorf("task %s: no steps, not parked, not exited", tw.Name)
		}
		if tw.Exited && !tw.Parked && tw.ExitErr != "" {
			t.Errorf("task %s: retired forever: %s", tw.Name, tw.ExitErr)
		}
	}
}

// TestFaultSweepRendering sanity-checks the table and CSV emitters.
func TestFaultSweepRendering(t *testing.T) {
	r := &FaultSweepResult{Rows: []FaultSweepRow{{
		Kind: simfault.KindCrashWorker, Events: 1, Injected: 1,
		TrainTime: 2 * time.Second, BaseTime: 2 * time.Second,
		Harvested: time.Second, BaseHarvest: time.Second,
		WorkersLost: 1, Restarted: 1, Replacements: 1,
	}}}
	if s := r.Render(); s == "" {
		t.Error("empty render")
	}
	var b bytes.Buffer
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() == "" {
		t.Error("empty csv")
	}
	_ = fmt.Sprintf("%v", r.Rows[0].RecoveryOverhead())
}
