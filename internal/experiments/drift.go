package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"freeride"
	"freeride/internal/bubble"
	"freeride/internal/model"
)

// DriftSweepRow is one (drift kind × magnitude × detector latency) cell:
// the same seeded drift schedule run twice — once with online re-profiling
// armed ("online") and once trusting the one-shot profile forever
// ("profile-once", the paper's behaviour) — against the zero-drift
// detector-armed reference.
type DriftSweepRow struct {
	Kind      bubble.DriftKind
	Magnitude float64
	// Detector names the latency arm ("fast" or "slow" preset).
	Detector string

	// TrainTime is the main job under drift (online arm); BaseTime the
	// zero-drift reference. Harvesting the grown bubbles is not free — the
	// re-admitted task's kernels pay their co-location tax, so the online
	// arm trades some training-time increase for its harvest gain (the
	// I-vs-S tradeoff Table 2 prices); the profile-once arm "saves" that
	// tax only by leaving the GPU idle.
	TrainTime time.Duration
	BaseTime  time.Duration

	// Harvested is the online arm's side-task kernel time; OnceHarvested
	// the profile-once arm's under the same drift; BaseHarvest the
	// zero-drift reference. Online beating profile-once is the robustness
	// gap the sweep measures.
	Harvested     time.Duration
	OnceHarvested time.Duration
	BaseHarvest   time.Duration

	// StaleWait is the SLO column — stale-admission overrun: bubble time
	// the task sat admitted into bubbles too small to fit a step (the
	// iterative runtime waits those out; an imperative task would overrun
	// its pause into the grace window instead). OnceStaleWait is the
	// profile-once arm's figure.
	StaleWait     time.Duration
	OnceStaleWait time.Duration
	// GraceKills / OnceGraceKills count pause-overrun kills per arm.
	GraceKills     uint64
	OnceGraceKills uint64

	// Online-arm drift/recovery counters.
	DriftEvents     uint64
	Replans         uint64
	Demotions       uint64
	Revivals        uint64
	StaleAdmissions uint64
	Restarted       uint64
	Parked          uint64
	LostWork        time.Duration
}

// OnlineGain is the harvested-GPU-seconds advantage of online re-profiling
// over profile-once under the same drift.
func (r DriftSweepRow) OnlineGain() time.Duration { return r.Harvested - r.OnceHarvested }

// DriftSweepResult is the full kind × magnitude × detector grid.
type DriftSweepResult struct {
	Opts Options
	Rows []DriftSweepRow
}

// driftSweepMagnitudes is the magnitude axis: f scales affected bubbles by
// (1+f) or 1/(1+f) per kind.
var driftSweepMagnitudes = []float64{1.0, 2.0}

// driftDetectors is the detector-latency axis.
var driftDetectors = []struct {
	name string
	cfg  bubble.DetectorConfig
}{
	{"fast", bubble.FastDetector()},
	{"slow", bubble.SlowDetector()},
}

// driftEventFor builds the sweep's canonical single-event schedule for a
// kind: the drift lands a third of the way through training and targets
// the stage that shrinks the workload's home bubbles while leaving a
// fitting escape stage (the interesting re-planning case).
func driftEventFor(kind bubble.DriftKind, mag float64, horizon time.Duration) bubble.DriftEvent {
	ev := bubble.DriftEvent{At: horizon / 3, Kind: kind, Magnitude: mag}
	switch kind {
	case bubble.DriftFreeze:
		// Freezing stage 2 grows its bubbles and shrinks every other
		// stage's (including the task's home).
		ev.Stage = 2
	case bubble.DriftRebalance:
		// Stage 1 sheds layers; its successor stage 2 absorbs them.
		ev.Stage = 1
	case bubble.DriftStraggler:
		// Stage 1 straggles for half the run; the stages waiting on it
		// inflate.
		ev.Stage = 1
		ev.Window = horizon / 2
	}
	return ev
}

// RunDriftSweep measures the robustness gap between the paper's
// profile-once design and online re-profiling: a drift kind × magnitude ×
// detector-latency grid over a single memory-heavy iterative task
// (Graph-SGD — excluded from stage 0 by Algorithm 1's memory filter, homed
// on stage 1 by least-loaded placement), whose home bubbles every drift
// kind shrinks below its pause-time fit while another stage grows. The
// online arm must notice, demote, and re-admit into the grown bubbles;
// the profile-once arm rides the stale plan down.
func RunDriftSweep(opts Options) (*DriftSweepResult, error) {
	opts.normalize()
	baseCfg := opts.baseConfig()
	baseCfg.Method = freeride.MethodIterative
	if baseCfg.Epochs < 12 {
		// The sweep needs room for drift ~1/3 in, slow-arm detection
		// latency, and a post-replan harvest phase.
		baseCfg.Epochs = 12
	}
	task := model.GraphSGD

	// Zero-drift reference: full drift plane wired (empty schedule,
	// detector armed), bit-identical to an unarmed run by the drift oracle.
	refCfg := baseCfg
	refCfg.Drift = &bubble.DriftSchedule{Seed: opts.Seed}
	det := bubble.DetectorConfig{}
	refCfg.Replan = &det
	ref, err := runDriftCell(refCfg, task)
	if err != nil {
		return nil, fmt.Errorf("drift sweep baseline: %w", err)
	}
	baseHarvest := harvestedKernelTime(ref)

	out := &DriftSweepResult{Opts: opts}
	cellIdx := -1
	for ki, kind := range bubble.AllDriftKinds() {
		for mi, mag := range driftSweepMagnitudes {
			// Shard k of n runs (kind × magnitude) cells where index mod n
			// == k; the profile-once arm is shared by a cell's detector
			// rows, so the cell is the shard unit.
			cellIdx++
			if cellIdx%opts.ShardCount != opts.Shard {
				continue
			}
			seed := opts.Seed*1000 + int64(ki)*10 + int64(mi)
			sched := &bubble.DriftSchedule{
				Seed:   seed,
				Events: []bubble.DriftEvent{driftEventFor(kind, mag, ref.TrainTime)},
			}

			// Profile-once arm: same drift, no detector — shared across
			// the detector axis.
			onceCfg := baseCfg
			onceCfg.Drift = sched
			once, err := runDriftCell(onceCfg, task)
			if err != nil {
				return nil, fmt.Errorf("drift sweep %v f=%.2g once: %w", kind, mag, err)
			}

			for _, d := range driftDetectors {
				cfg := baseCfg
				cfg.Drift = sched
				dc := d.cfg
				cfg.Replan = &dc
				res, err := runDriftCell(cfg, task)
				if err != nil {
					return nil, fmt.Errorf("drift sweep %v f=%.2g %s: %w", kind, mag, d.name, err)
				}
				st := res.ManagerStats
				out.Rows = append(out.Rows, DriftSweepRow{
					Kind:            kind,
					Magnitude:       mag,
					Detector:        d.name,
					TrainTime:       res.TrainTime,
					BaseTime:        ref.TrainTime,
					Harvested:       harvestedKernelTime(res),
					OnceHarvested:   harvestedKernelTime(once),
					BaseHarvest:     baseHarvest,
					StaleWait:       insuffWait(res),
					OnceStaleWait:   insuffWait(once),
					GraceKills:      graceKills(res),
					OnceGraceKills:  graceKills(once),
					DriftEvents:     st.DriftEvents,
					Replans:         st.Replans,
					Demotions:       st.Demotions,
					Revivals:        st.Revivals,
					StaleAdmissions: st.StaleAdmissions,
					Restarted:       st.RestartedTasks,
					Parked:          st.ParkedTasks,
					LostWork:        st.LostWork,
				})
			}
		}
	}
	return out, nil
}

// runDriftCell is runOne for a single-instance workload: the sweep places
// exactly one task so its journey (home stage, demotion, re-admission) is
// attributable.
func runDriftCell(cfg freeride.Config, task model.TaskProfile) (*freeride.Result, error) {
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		return nil, err
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if err := sess.Submit(task, 0); err != nil {
		return nil, fmt.Errorf("submit %s: %w", task.Name, err)
	}
	res, err := sess.Run()
	if err != nil {
		return nil, err
	}
	res.CostReport(tNo)
	return res, nil
}

func insuffWait(res *freeride.Result) time.Duration {
	var sum time.Duration
	for _, tw := range res.Tasks {
		sum += tw.InsuffWait
	}
	return sum
}

func graceKills(res *freeride.Result) uint64 {
	var sum uint64
	for _, ws := range res.WorkerStats {
		sum += ws.GraceKills
	}
	return sum
}

// Render prints the sweep as a text table.
func (r *DriftSweepResult) Render() string {
	t := &Table{
		Title: "Drift sweep — online re-profiling vs profile-once " +
			"(zero-drift detector-armed baseline)",
		Header: []string{"kind", "mag", "detector", "harvest_s", "once_s",
			"base_s", "gain_s", "stale_wait_s", "once_stale_s", "detects",
			"replans", "demoted", "revived", "stale_adm", "parked", "lostwork_s"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Kind.String(), fmtF(row.Magnitude), row.Detector,
			secs(row.Harvested), secs(row.OnceHarvested), secs(row.BaseHarvest),
			secs(row.OnlineGain()),
			secs(row.StaleWait), secs(row.OnceStaleWait),
			strconv.FormatUint(row.DriftEvents, 10),
			strconv.FormatUint(row.Replans, 10),
			strconv.FormatUint(row.Demotions, 10),
			strconv.FormatUint(row.Revivals, 10),
			strconv.FormatUint(row.StaleAdmissions, 10),
			strconv.FormatUint(row.Parked, 10),
			secs(row.LostWork),
		)
	}
	return t.Render()
}

// WriteCSV emits one row per sweep cell.
func (r *DriftSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "magnitude", "detector", "harvest_s",
		"once_harvest_s", "base_harvest_s", "gain_s", "train_s", "base_train_s",
		"stale_wait_s", "once_stale_wait_s", "grace_kills", "once_grace_kills",
		"drift_events", "replans", "demotions", "revivals", "stale_admissions",
		"restarted", "parked", "lostwork_s"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Kind.String(), fmtF(row.Magnitude), row.Detector,
			fmtF(row.Harvested.Seconds()), fmtF(row.OnceHarvested.Seconds()),
			fmtF(row.BaseHarvest.Seconds()), fmtF(row.OnlineGain().Seconds()),
			fmtF(row.TrainTime.Seconds()), fmtF(row.BaseTime.Seconds()),
			fmtF(row.StaleWait.Seconds()), fmtF(row.OnceStaleWait.Seconds()),
			strconv.FormatUint(row.GraceKills, 10),
			strconv.FormatUint(row.OnceGraceKills, 10),
			strconv.FormatUint(row.DriftEvents, 10),
			strconv.FormatUint(row.Replans, 10),
			strconv.FormatUint(row.Demotions, 10),
			strconv.FormatUint(row.Revivals, 10),
			strconv.FormatUint(row.StaleAdmissions, 10),
			strconv.FormatUint(row.Restarted, 10),
			strconv.FormatUint(row.Parked, 10),
			fmtF(row.LostWork.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
