package freerpc

import (
	"encoding/json"
	"testing"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

type localArgs struct {
	N int    `json:"n"`
	S string `json:"s"`
}

// TestLocalFastPathTyped verifies that a typed params struct crosses a
// MemPipe as the same value, with no JSON round-trip, and that the typed
// result comes back as-is.
func TestLocalFastPathTyped(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	var received any
	HandleFunc(mux, "Take", func(p localArgs) (any, error) {
		received = p
		return localArgs{N: p.N + 1, S: p.S + "!"}, nil
	})
	c1, c2 := MemPipe(eng, time.Millisecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	var result any
	client.Go("Take", localArgs{N: 41, S: "hi"}, 0, func(res any, err error) {
		if err != nil {
			t.Fatalf("Go: %v", err)
		}
		result = res
	})
	eng.MustDrain(10)

	if got, ok := received.(localArgs); !ok || got.N != 41 || got.S != "hi" {
		t.Fatalf("handler received %#v, want typed localArgs{41, hi}", received)
	}
	got, ok := result.(localArgs)
	if !ok {
		t.Fatalf("result is %T, want localArgs (typed fast path)", result)
	}
	if got.N != 42 || got.S != "hi!" {
		t.Fatalf("result = %#v", got)
	}
}

// TestLocalForeignParamsBridge verifies that mismatched param types (e.g. a
// hand-rolled map) still reach a typed handler over the fast path, bridged
// through JSON once.
func TestLocalForeignParamsBridge(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	var got localArgs
	HandleFunc(mux, "Take", func(p localArgs) (any, error) { got = p; return nil, nil })
	c1, c2 := MemPipe(eng, time.Millisecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	if err := client.Notify("Take", map[string]any{"n": 7, "s": "map"}); err != nil {
		t.Fatal(err)
	}
	eng.MustDrain(10)
	if got.N != 7 || got.S != "map" {
		t.Fatalf("bridged params = %#v", got)
	}
}

// TestLocalRawHandlerBridge verifies raw (Handle-registered) handlers still
// serve fast-path requests via the JSON bridge.
func TestLocalRawHandlerBridge(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	mux.Handle("Raw", func(raw json.RawMessage) (any, error) {
		var p localArgs
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		return p.N * 2, nil
	})
	c1, c2 := MemPipe(eng, time.Millisecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	var result any
	client.Go("Raw", localArgs{N: 21}, 0, func(res any, err error) {
		if err != nil {
			t.Fatalf("Go: %v", err)
		}
		result = res
	})
	eng.MustDrain(10)
	n, err := DecodeResult[int](result)
	if err != nil || n != 42 {
		t.Fatalf("DecodeResult = %d, %v; want 42", n, err)
	}
}

// TestDecodeResult covers the three result shapes: typed value, raw JSON,
// and a foreign type needing the bridge.
func TestDecodeResult(t *testing.T) {
	if v, err := DecodeResult[int](7); v != 7 || err != nil {
		t.Fatalf("typed: %d, %v", v, err)
	}
	if v, err := DecodeResult[int](json.RawMessage("9")); v != 9 || err != nil {
		t.Fatalf("raw: %d, %v", v, err)
	}
	if v, err := DecodeResult[localArgs](map[string]any{"n": 3}); v.N != 3 || err != nil {
		t.Fatalf("bridge: %#v, %v", v, err)
	}
	if v, err := DecodeResult[int](nil); v != 0 || err != nil {
		t.Fatalf("nil: %d, %v", v, err)
	}
}

// TestLocalCallTypedResult verifies the blocking Call API decodes a typed
// fast-path result into the caller's pointer without JSON.
func TestLocalCallTypedResult(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	HandleFunc(mux, "Get", func(p localArgs) (any, error) {
		return localArgs{N: p.N * 10}, nil
	})
	c1, c2 := MemPipe(eng, time.Millisecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	procs := simproc.NewRuntime(eng)
	var out localArgs
	var callErr error
	procs.Spawn("caller", func(p *simproc.Process) error {
		callErr = client.Call(p, "Get", localArgs{N: 4}, &out, 0)
		return nil
	})
	eng.MustDrain(100)
	if callErr != nil {
		t.Fatal(callErr)
	}
	if out.N != 40 {
		t.Fatalf("out.N = %d, want 40", out.N)
	}
}
