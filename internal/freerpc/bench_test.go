package freerpc

import (
	"testing"
	"time"

	"freeride/internal/simtime"
)

type benchParams struct {
	A int64  `json:"a"`
	B int64  `json:"b"`
	S string `json:"s"`
}

func benchPair(b *testing.B) (*simtime.Virtual, *Peer, *Peer, *Mux) {
	b.Helper()
	eng := simtime.NewVirtual()
	mux := NewMux()
	c1, c2 := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)
	server := NewPeer(eng, c2, mux)
	_ = server
	return eng, client, server, mux
}

// BenchmarkRPC measures a full Go round-trip (request + typed response)
// over the in-memory transport — the manager↔worker hot path. With the
// typed fast path this involves no JSON at all.
func BenchmarkRPC(b *testing.B) {
	eng, client, _, mux := benchPair(b)
	HandleFunc(mux, "Echo", func(p benchParams) (any, error) { return p, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.Go("Echo", benchParams{A: 1, B: 2, S: "x"}, 0, func(result any, err error) {
			if err != nil {
				b.Fatal(err)
			}
		})
		eng.MustDrain(4)
	}
}

// BenchmarkRPCNotify measures one-way notifications (bubble reports).
func BenchmarkRPCNotify(b *testing.B) {
	eng, client, _, mux := benchPair(b)
	var got int64
	HandleFunc(mux, "Report", func(p benchParams) (any, error) { got += p.A; return nil, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Notify("Report", benchParams{A: 1}); err != nil {
			b.Fatal(err)
		}
		eng.MustDrain(2)
	}
	if got != int64(b.N) {
		b.Fatalf("delivered %d of %d notifications", got, b.N)
	}
}
