package freerpc

import (
	"encoding/json"
	"fmt"
)

// Msg is the typed envelope of the in-memory fast path: the analogue of the
// JSON wire envelope with params and results carried as live Go values.
// Requests have a non-empty Method; responses echo the request ID. An ID of
// zero marks a notification.
//
// Because no serialization boundary is crossed, reference types inside
// Params/Result (slices, maps, pointers) are shared between sender and
// receiver. FreeRide's wire DTOs are flat value structs, so the usual
// box-at-interface-conversion copy is a full copy; custom params should
// follow the same rule and be treated as immutable after sending.
type Msg struct {
	ID     uint64
	Method string
	Params any
	Result any
	Err    string
}

// LocalConn is a Conn whose two ends live in one process, able to hand
// typed messages across without serialization. MemPipe conns implement it;
// net.Conn adapters do not.
type LocalConn interface {
	Conn
	// SendMsg transmits one typed message asynchronously, with the same
	// delivery latency and ordering as Send.
	SendMsg(m Msg) error
	// SetMsgHandler installs the typed receiver, displacing frame delivery
	// for this endpoint.
	SetMsgHandler(fn func(m Msg))
}

// DecodeResult converts an RPC result — a live value on the in-memory fast
// path, json.RawMessage off the wire — into T. A value of a foreign type
// (e.g. a handler that returned a map) is bridged through JSON.
func DecodeResult[T any](v any) (T, error) {
	var out T
	switch x := v.(type) {
	case nil:
		return out, nil
	case T:
		return x, nil
	case json.RawMessage:
		if len(x) == 0 {
			return out, nil
		}
		if err := json.Unmarshal(x, &out); err != nil {
			return out, fmt.Errorf("freerpc: decode result: %w", err)
		}
		return out, nil
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return out, fmt.Errorf("freerpc: bridge result: %w", err)
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return out, fmt.Errorf("freerpc: bridge result: %w", err)
		}
		return out, nil
	}
}
