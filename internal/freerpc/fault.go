// Transport-level fault injection for the in-memory pipe: the freerpc half
// of the simfault plane. A LinkFault owns both ends of a MemPipe and can
// drop frames for a window, inflate the one-way latency for a window, or
// sever the link outright. Faults apply symmetrically (both directions) —
// the modelled failure is the path between manager and worker, not one NIC.
package freerpc

import "time"

// LinkFault injects faults into a MemPipe link. Obtain one with
// InjectFaults; all methods must be called from engine-callback context (or
// before the engine runs), like every other control-plane entry point.
type LinkFault struct {
	ends [2]*memConn
}

// InjectFaults installs a fault hook on a MemPipe conn (either end) and
// returns the controller for the whole link. Installing on a non-MemPipe
// conn returns nil: the live transport fails the real way, through the OS.
// Installation itself changes nothing observable — until a fault method is
// called, the armed branch reads zero windows and injects nothing.
func InjectFaults(c Conn) *LinkFault {
	mc, ok := c.(*memConn)
	if !ok {
		return nil
	}
	f := &LinkFault{ends: [2]*memConn{mc, mc.peer}}
	for _, e := range f.ends {
		e.mu.Lock()
		e.faulty = true
		e.mu.Unlock()
	}
	return f
}

// DropFor discards every frame sent on the link during [now, now+window).
// Senders observe success; the frames simply never arrive, so callers'
// timeout/retry paths are what fires.
func (f *LinkFault) DropFor(window time.Duration) {
	until := f.ends[0].eng.Now() + window
	for _, e := range f.ends {
		e.mu.Lock()
		if until > e.dropUntil {
			e.dropUntil = until
		}
		e.mu.Unlock()
	}
}

// DelayFor adds extra one-way latency to every frame sent during
// [now, now+window).
func (f *LinkFault) DelayFor(window, extra time.Duration) {
	until := f.ends[0].eng.Now() + window
	for _, e := range f.ends {
		e.mu.Lock()
		if until > e.delayUntil {
			e.delayUntil = until
		}
		e.extraDelay = extra
		e.mu.Unlock()
	}
}

// Sever closes the link from end 0; the FIN reaches the peer after one
// latency, exactly like a local Close.
func (f *LinkFault) Sever() { _ = f.ends[0].Close() }

// Dropped reports the total frames discarded on the link, both directions.
func (f *LinkFault) Dropped() uint64 {
	var n uint64
	for _, e := range f.ends {
		e.mu.Lock()
		n += e.dropped
		e.mu.Unlock()
	}
	return n
}
