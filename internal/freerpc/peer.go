package freerpc

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Handler serves one RPC method. Handlers run in engine-callback context and
// must not block; long work should be scheduled or handed to a process.
type Handler func(params json.RawMessage) (any, error)

// Mux is a method dispatch table shared by any number of peers (the worker
// registers its methods once and serves every manager connection with them).
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewMux returns an empty dispatch table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Handle registers h for method, replacing any previous registration.
func (m *Mux) Handle(method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = h
}

// HandleFunc registers a typed handler: params are unmarshalled into a fresh
// P before invoking fn.
func HandleFunc[P any](m *Mux, method string, fn func(params P) (any, error)) {
	m.Handle(method, func(raw json.RawMessage) (any, error) {
		var p P
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
		}
		return fn(p)
	})
}

func (m *Mux) lookup(method string) (Handler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.handlers[method]
	return h, ok
}

// envelope is the wire message: requests carry Method, responses don't.
type envelope struct {
	ID     uint64          `json:"id,omitempty"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// RemoteError is a failure reported by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("freerpc: remote %s: %s", e.Method, e.Msg)
}

// Peer is one endpoint of an RPC connection: it can both serve methods (via
// its Mux) and issue calls.
type Peer struct {
	eng  simtime.Engine
	conn Conn
	mux  *Mux

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCall
	closed  bool
}

type pendingCall struct {
	method string
	done   func(result json.RawMessage, err error)
	timer  *simtime.Timer
}

// NewPeer wraps conn. mux may be nil for call-only endpoints.
func NewPeer(eng simtime.Engine, conn Conn, mux *Mux) *Peer {
	p := &Peer{eng: eng, conn: conn, mux: mux, pending: make(map[uint64]*pendingCall)}
	conn.SetRecvHandler(p.onFrame)
	conn.OnClose(p.failAll)
	return p
}

// Conn returns the underlying transport.
func (p *Peer) Conn() Conn { return p.conn }

// Close tears down the connection; pending calls fail with ErrClosed.
func (p *Peer) Close() { _ = p.conn.Close() }

func (p *Peer) onFrame(frame []byte) {
	var env envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return // malformed frame: drop
	}
	if env.Method != "" {
		p.serveRequest(&env)
		return
	}
	p.mu.Lock()
	call, ok := p.pending[env.ID]
	if ok {
		delete(p.pending, env.ID)
	}
	p.mu.Unlock()
	if !ok {
		return // response to a timed-out or unknown call
	}
	if call.timer != nil {
		call.timer.Cancel()
	}
	if env.Error != "" {
		call.done(nil, &RemoteError{Method: call.method, Msg: env.Error})
		return
	}
	call.done(env.Result, nil)
}

func (p *Peer) serveRequest(env *envelope) {
	var resp envelope
	resp.ID = env.ID
	if p.mux == nil {
		resp.Error = "no handler table"
	} else if h, ok := p.mux.lookup(env.Method); !ok {
		resp.Error = fmt.Sprintf("unknown method %q", env.Method)
	} else {
		result, err := h(env.Params)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			raw, merr := json.Marshal(result)
			if merr != nil {
				resp.Error = fmt.Sprintf("marshal result: %v", merr)
			} else {
				resp.Result = raw
			}
		}
	}
	if env.ID == 0 {
		return // notification: no response
	}
	frame, err := json.Marshal(resp)
	if err != nil {
		return
	}
	_ = p.conn.Send(frame)
}

// failAll fails every pending call with ErrClosed.
func (p *Peer) failAll() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := p.pending
	p.pending = make(map[uint64]*pendingCall)
	p.mu.Unlock()
	for _, c := range pending {
		if c.timer != nil {
			c.timer.Cancel()
		}
		c.done(nil, ErrClosed)
	}
}

// Go issues an asynchronous call; done fires in engine-callback context with
// the raw result. A zero timeout means no deadline.
func (p *Peer) Go(method string, params any, timeout time.Duration, done func(result json.RawMessage, err error)) {
	if done == nil {
		done = func(json.RawMessage, error) {}
	}
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			done(nil, fmt.Errorf("freerpc: marshal params: %w", err))
			return
		}
		raw = b
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		done(nil, ErrClosed)
		return
	}
	p.nextID++
	id := p.nextID
	call := &pendingCall{method: method, done: done}
	p.pending[id] = call
	p.mu.Unlock()

	if timeout > 0 {
		call.timer = p.eng.Schedule(timeout, "rpc-timeout:"+method, func() {
			p.mu.Lock()
			_, still := p.pending[id]
			if still {
				delete(p.pending, id)
			}
			p.mu.Unlock()
			if still {
				done(nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout))
			}
		})
	}

	frame, err := json.Marshal(envelope{ID: id, Method: method, Params: raw})
	if err == nil {
		err = p.conn.Send(frame)
	}
	if err != nil {
		p.mu.Lock()
		_, still := p.pending[id]
		if still {
			delete(p.pending, id)
		}
		p.mu.Unlock()
		if still {
			if call.timer != nil {
				call.timer.Cancel()
			}
			done(nil, err)
		}
	}
}

// Notify sends a one-way message (no response, no delivery guarantee beyond
// the transport's).
func (p *Peer) Notify(method string, params any) error {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("freerpc: marshal params: %w", err)
		}
		raw = b
	}
	frame, err := json.Marshal(envelope{Method: method, Params: raw})
	if err != nil {
		return err
	}
	return p.conn.Send(frame)
}

// Call issues a blocking call from process context, unmarshalling the reply
// into result (which may be nil). A zero timeout means no deadline.
func (p *Peer) Call(proc *simproc.Process, method string, params, result any, timeout time.Duration) error {
	type outcome struct {
		raw json.RawMessage
		err error
	}
	got := proc.WaitEvent("rpc:"+method, func(wake func(any)) {
		p.Go(method, params, timeout, func(raw json.RawMessage, err error) {
			wake(outcome{raw: raw, err: err})
		})
	})
	oc, ok := got.(outcome)
	if !ok {
		return fmt.Errorf("freerpc: unexpected wake payload %T", got)
	}
	if oc.err != nil {
		return oc.err
	}
	if result != nil && len(oc.raw) > 0 {
		if err := json.Unmarshal(oc.raw, result); err != nil {
			return fmt.Errorf("freerpc: unmarshal result of %s: %w", method, err)
		}
	}
	return nil
}

// Serve accepts connections from ln and wires each to a new Peer over mux.
// It returns when the listener fails (e.g. is closed). Each accepted peer
// is reported through onPeer (may be nil).
func Serve(eng simtime.Engine, ln net.Listener, mux *Mux, onPeer func(*Peer)) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		peer := NewPeer(eng, NewNetConn(eng, nc), mux)
		if onPeer != nil {
			onPeer(peer)
		}
	}
}

// Dial connects to a live RPC server over TCP.
func Dial(eng simtime.Engine, network, addr string, mux *Mux) (*Peer, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("freerpc: dial %s: %w", addr, err)
	}
	return NewPeer(eng, NewNetConn(eng, nc), mux), nil
}
