package freerpc

import (
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"sync"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Handler serves one RPC method from the wire: params arrive as raw JSON.
// Handlers run in engine-callback context and must not block; long work
// should be scheduled or handed to a process.
type Handler func(params json.RawMessage) (any, error)

// typedHandler serves one RPC method from the in-memory fast path: params
// arrive as the live value the caller passed (or as raw JSON when a foreign
// caller still serialized).
type typedHandler func(params any) (any, error)

// Mux is a method dispatch table shared by any number of peers (the worker
// registers its methods once and serves every manager connection with them).
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	typed    map[string]typedHandler
}

// NewMux returns an empty dispatch table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler), typed: make(map[string]typedHandler)}
}

// Handle registers h for method, replacing any previous registration. Local
// fast-path requests to a raw handler are bridged through JSON; register
// with HandleFunc to serve them without serialization.
func (m *Mux) Handle(method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = h
	delete(m.typed, method)
}

// HandleFunc registers a typed handler: wire requests are unmarshalled into
// a fresh P; in-memory requests whose params are already a P (the common
// case — both ends share the DTO type) are dispatched with zero JSON work.
func HandleFunc[P any](m *Mux, method string, fn func(params P) (any, error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = func(raw json.RawMessage) (any, error) {
		var p P
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
		}
		return fn(p)
	}
	m.typed[method] = func(params any) (any, error) {
		switch p := params.(type) {
		case nil:
			var zero P
			return fn(zero)
		case P:
			return fn(p)
		case json.RawMessage:
			var decoded P
			if len(p) > 0 {
				if err := json.Unmarshal(p, &decoded); err != nil {
					return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
				}
			}
			return fn(decoded)
		default:
			// Foreign-typed local params (e.g. a hand-rolled map): bridge
			// through JSON once rather than reject.
			raw, err := json.Marshal(params)
			if err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
			var decoded P
			if err := json.Unmarshal(raw, &decoded); err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
			return fn(decoded)
		}
	}
}

func (m *Mux) lookup(method string) (Handler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.handlers[method]
	return h, ok
}

// lookupLocal resolves a method for the fast path: the typed handler when
// registered, otherwise the raw handler bridged through JSON.
func (m *Mux) lookupLocal(method string) (typedHandler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if th, ok := m.typed[method]; ok {
		return th, true
	}
	h, ok := m.handlers[method]
	if !ok {
		return nil, false
	}
	return func(params any) (any, error) {
		var raw json.RawMessage
		if params != nil {
			if r, isRaw := params.(json.RawMessage); isRaw {
				raw = r
			} else {
				b, err := json.Marshal(params)
				if err != nil {
					return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
				}
				raw = b
			}
		}
		return h(raw)
	}, true
}

// envelope is the wire message: requests carry Method, responses don't.
type envelope struct {
	ID     uint64          `json:"id,omitempty"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// RemoteError is a failure reported by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("freerpc: remote %s: %s", e.Method, e.Msg)
}

// Peer is one endpoint of an RPC connection: it can both serve methods (via
// its Mux) and issue calls. On a LocalConn (MemPipe) every call and
// notification crosses as a typed Msg with zero JSON work; on a net.Conn
// the newline-delimited JSON wire protocol is used.
type Peer struct {
	eng   simtime.Engine
	conn  Conn
	local LocalConn // non-nil when conn supports the typed fast path
	mux   *Mux

	// mu rides the engine ownership regime (see simtime.Guard): free in
	// single-owner simulations, a real mutex under goroutine shells and
	// live transports.
	mu      simtime.Guard
	nextID  uint64
	pending map[uint64]*pendingCall
	closed  bool

	// callFree recycles pendingCall records: the struct never escapes to
	// callers, and call ids are never reused (nextID is monotonic), so a
	// stale reply to a completed call can never resolve the record's next
	// incarnation — it simply misses the pending map.
	callFree []*pendingCall

	// The deadline wheel: one engine timer per peer, armed at the earliest
	// outstanding call deadline, instead of one timer (plus a cancel) per
	// call. Entries are a min-heap on (at, id) and are removed lazily — a
	// reply just deletes the call from pending; the entry expires later,
	// finds nothing, and is dropped.
	wheel      []deadlineEntry
	wheelTimer *simtime.Timer
	// wheelAt records the armed instant while wheelTimer is pending (the
	// wall engine's Timer.When drifts by arming latency, so the timer
	// itself can't be asked).
	wheelAt time.Duration
	// wheelFn is the timer callback, built once per peer.
	wheelFn func()
}

type pendingCall struct {
	method string
	done   func(result any, err error)
	// timeout is the call's original deadline budget, kept for the expiry
	// error message.
	timeout time.Duration
}

// deadlineEntry is one wheel slot: call id plus its absolute deadline.
type deadlineEntry struct {
	at time.Duration
	id uint64
}

var noopDone = func(any, error) {}

// NewPeer wraps conn. mux may be nil for call-only endpoints.
func NewPeer(eng simtime.Engine, conn Conn, mux *Mux) *Peer {
	p := &Peer{eng: eng, conn: conn, mux: mux, pending: make(map[uint64]*pendingCall)}
	p.mu.Bind(eng)
	p.wheelFn = p.expireDeadlines
	if lc, ok := conn.(LocalConn); ok {
		p.local = lc
		lc.SetMsgHandler(p.onMsg)
	} else {
		conn.SetRecvHandler(p.onFrame)
	}
	conn.OnClose(p.failAll)
	return p
}

// newCallLocked takes a pendingCall from the free-list. Caller holds p.mu.
func (p *Peer) newCallLocked() *pendingCall {
	if n := len(p.callFree); n > 0 {
		c := p.callFree[n-1]
		p.callFree[n-1] = nil
		p.callFree = p.callFree[:n-1]
		return c
	}
	return &pendingCall{}
}

// recycleLocked clears and pools a completed call record. The caller must
// already have removed it from pending and copied out what it needs — once
// recycled, the record may immediately back a new call. Caller holds p.mu.
func (p *Peer) recycleLocked(c *pendingCall) {
	c.method = ""
	c.done = nil
	c.timeout = 0
	p.callFree = append(p.callFree, c)
}

// Conn returns the underlying transport.
func (p *Peer) Conn() Conn { return p.conn }

// Close tears down the connection; pending calls fail with ErrClosed.
func (p *Peer) Close() { _ = p.conn.Close() }

// --- deadline wheel --------------------------------------------------------

// armDeadlineLocked records a call deadline and keeps the wheel timer armed
// at the earliest outstanding one. Caller holds p.mu.
func (p *Peer) armDeadlineLocked(id uint64, at time.Duration) {
	p.wheelPushLocked(deadlineEntry{at: at, id: id})
	if p.wheelTimer != nil && p.wheelTimer.Pending() && p.wheelAt <= at {
		return // an earlier (or equal) expiry pass will re-arm as needed
	}
	p.wheelAt = at
	p.wheelTimer = simtime.Reschedule(p.eng, p.wheelTimer, at-p.eng.Now(), "rpc-timeouts", p.wheelFn)
}

// expireDeadlines is the wheel timer callback: it times out every still-
// pending call whose deadline has passed, drops stale entries (calls that
// already completed), and re-arms for the next outstanding deadline.
func (p *Peer) expireDeadlines() {
	// Expiries are rare (a measurement run never times out), so the
	// collection slice is allocated on demand.
	type expiry struct {
		done    func(result any, err error)
		method  string
		timeout time.Duration
	}
	var expired []expiry
	p.mu.Lock()
	now := p.eng.Now()
	for len(p.wheel) > 0 && p.wheel[0].at <= now {
		e := p.wheelPopLocked()
		if call, ok := p.pending[e.id]; ok {
			delete(p.pending, e.id)
			expired = append(expired, expiry{done: call.done, method: call.method, timeout: call.timeout})
			p.recycleLocked(call)
		}
	}
	if len(p.wheel) > 0 {
		p.wheelAt = p.wheel[0].at
		p.wheelTimer = simtime.Reschedule(p.eng, p.wheelTimer, p.wheelAt-now, "rpc-timeouts", p.wheelFn)
	}
	p.mu.Unlock()
	for _, e := range expired {
		e.done(nil, fmt.Errorf("%w: %s after %v", ErrTimeout, e.method, e.timeout))
	}
}

// wheelPushLocked / wheelPopLocked maintain the (at, id) min-heap. Caller
// holds p.mu.
func (p *Peer) wheelPushLocked(e deadlineEntry) {
	p.wheel = append(p.wheel, e)
	i := len(p.wheel) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(p.wheel[i], p.wheel[parent]) {
			break
		}
		p.wheel[i], p.wheel[parent] = p.wheel[parent], p.wheel[i]
		i = parent
	}
}

func (p *Peer) wheelPopLocked() deadlineEntry {
	h := p.wheel
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	p.wheel = h[:last]
	h = p.wheel
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && entryLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && entryLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// entryLess orders wheel entries by deadline, ties by issue order, so
// simultaneous expiries fire their callbacks deterministically.
func entryLess(a, b deadlineEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

// resolve completes the pending call for a response (from either path).
func (p *Peer) resolve(id uint64, result any, errMsg string) {
	p.mu.Lock()
	call, ok := p.pending[id]
	if !ok {
		p.mu.Unlock()
		return // response to a timed-out or unknown call
	}
	delete(p.pending, id)
	done, method := call.done, call.method
	// Recycle before running done: the record is out of the map, so even a
	// duplicate reply for this id can no longer reach it, and done itself
	// may issue a new call that reuses it. The wheel entry, if any, expires
	// lazily and finds nothing.
	p.recycleLocked(call)
	p.mu.Unlock()
	if errMsg != "" {
		done(nil, &RemoteError{Method: method, Msg: errMsg})
		return
	}
	done(result, nil)
}

// onMsg receives typed messages from a LocalConn.
func (p *Peer) onMsg(m Msg) {
	if m.Method != "" {
		p.serveLocal(m)
		return
	}
	p.resolve(m.ID, m.Result, m.Err)
}

// serveLocal dispatches a fast-path request and responds in kind.
func (p *Peer) serveLocal(m Msg) {
	var result any
	var errMsg string
	if p.mux == nil {
		errMsg = "no handler table"
	} else if th, ok := p.mux.lookupLocal(m.Method); !ok {
		errMsg = fmt.Sprintf("unknown method %q", m.Method)
	} else {
		r, err := th(m.Params)
		if err != nil {
			errMsg = err.Error()
		} else {
			result = r
		}
	}
	if m.ID == 0 {
		return // notification: no response
	}
	_ = p.local.SendMsg(Msg{ID: m.ID, Result: result, Err: errMsg})
}

func (p *Peer) onFrame(frame []byte) {
	var env envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return // malformed frame: drop
	}
	if env.Method != "" {
		p.serveRequest(&env)
		return
	}
	p.resolve(env.ID, env.Result, env.Error)
}

func (p *Peer) serveRequest(env *envelope) {
	var resp envelope
	resp.ID = env.ID
	if p.mux == nil {
		resp.Error = "no handler table"
	} else if h, ok := p.mux.lookup(env.Method); !ok {
		resp.Error = fmt.Sprintf("unknown method %q", env.Method)
	} else {
		result, err := h(env.Params)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			raw, merr := json.Marshal(result)
			if merr != nil {
				resp.Error = fmt.Sprintf("marshal result: %v", merr)
			} else {
				resp.Result = raw
			}
		}
	}
	if env.ID == 0 {
		return // notification: no response
	}
	frame, err := json.Marshal(resp)
	if err != nil {
		return
	}
	_ = p.conn.Send(frame)
}

// failAll fails every pending call with ErrClosed.
func (p *Peer) failAll() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := p.pending
	p.pending = make(map[uint64]*pendingCall)
	p.wheel = nil
	if p.wheelTimer != nil {
		p.wheelTimer.Cancel()
	}
	p.mu.Unlock()
	for _, c := range pending {
		c.done(nil, ErrClosed)
	}
}

// Go issues an asynchronous call; done fires in engine-callback context,
// never synchronously from inside Go itself — callers may hold their own
// locks across the call (the manager does) and immediate failures (closed
// peer, send error) are delivered through the engine like any reply.
// The result is a live value when the connection is in-memory and raw JSON
// (json.RawMessage) when it crossed the wire — use DecodeResult to consume
// it uniformly. A zero timeout means no deadline.
func (p *Peer) Go(method string, params any, timeout time.Duration, done func(result any, err error)) {
	if done == nil {
		done = noopDone
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.failAsync(done, ErrClosed)
		return
	}
	p.nextID++
	id := p.nextID
	call := p.newCallLocked()
	call.method, call.done, call.timeout = method, done, timeout
	p.pending[id] = call
	if timeout > 0 {
		p.armDeadlineLocked(id, p.eng.Now()+timeout)
	}
	p.mu.Unlock()

	var err error
	if p.local != nil {
		err = p.local.SendMsg(Msg{ID: id, Method: method, Params: params})
	} else {
		var raw json.RawMessage
		if params != nil {
			raw, err = json.Marshal(params)
		}
		if err == nil {
			var wire []byte
			wire, err = json.Marshal(envelope{ID: id, Method: method, Params: raw})
			if err == nil {
				err = p.conn.Send(wire)
			}
		}
	}
	if err != nil {
		p.mu.Lock()
		c, still := p.pending[id]
		if still {
			delete(p.pending, id)
			p.recycleLocked(c) // the wheel entry, if any, expires lazily
		}
		p.mu.Unlock()
		if still {
			p.failAsync(done, err)
		}
	}
}

// failAsync delivers a call failure from engine-callback context, upholding
// Go's no-synchronous-completion contract.
func (p *Peer) failAsync(done func(result any, err error), err error) {
	simtime.Detached(p.eng, 0, "rpc-fail", func() { done(nil, err) })
}

// Notify sends a one-way message (no response, no delivery guarantee beyond
// the transport's).
func (p *Peer) Notify(method string, params any) error {
	if p.local != nil {
		return p.local.SendMsg(Msg{Method: method, Params: params})
	}
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("freerpc: marshal params: %w", err)
		}
		raw = b
	}
	frame, err := json.Marshal(envelope{Method: method, Params: raw})
	if err != nil {
		return err
	}
	return p.conn.Send(frame)
}

// Call issues a blocking call from process context, decoding the reply into
// result (a pointer, may be nil). A zero timeout means no deadline.
func (p *Peer) Call(proc *simproc.Process, method string, params, result any, timeout time.Duration) error {
	type outcome struct {
		val any
		err error
	}
	got := proc.WaitEvent("rpc:"+method, func(wake func(any)) {
		p.Go(method, params, timeout, func(val any, err error) {
			wake(outcome{val: val, err: err})
		})
	})
	oc, ok := got.(outcome)
	if !ok {
		return fmt.Errorf("freerpc: unexpected wake payload %T", got)
	}
	if oc.err != nil {
		return oc.err
	}
	if result == nil || oc.val == nil {
		return nil
	}
	switch v := oc.val.(type) {
	case json.RawMessage:
		if len(v) == 0 {
			return nil
		}
		if err := json.Unmarshal(v, result); err != nil {
			return fmt.Errorf("freerpc: unmarshal result of %s: %w", method, err)
		}
		return nil
	default:
		// Fast-path result: assign directly when the types line up, bridge
		// through JSON otherwise (e.g. caller decodes into its own DTO).
		dst := reflect.ValueOf(result)
		if dst.Kind() == reflect.Pointer && !dst.IsNil() {
			sv := reflect.ValueOf(v)
			if sv.Type().AssignableTo(dst.Elem().Type()) {
				dst.Elem().Set(sv)
				return nil
			}
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("freerpc: bridge result of %s: %w", method, err)
		}
		if err := json.Unmarshal(raw, result); err != nil {
			return fmt.Errorf("freerpc: unmarshal result of %s: %w", method, err)
		}
		return nil
	}
}

// Serve accepts connections from ln and wires each to a new Peer over mux.
// It returns when the listener fails (e.g. is closed). Each accepted peer
// is reported through onPeer (may be nil).
func Serve(eng simtime.Engine, ln net.Listener, mux *Mux, onPeer func(*Peer)) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		peer := NewPeer(eng, NewNetConn(eng, nc), mux)
		if onPeer != nil {
			onPeer(peer)
		}
	}
}

// Dial connects to a live RPC server over TCP.
func Dial(eng simtime.Engine, network, addr string, mux *Mux) (*Peer, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("freerpc: dial %s: %w", addr, err)
	}
	return NewPeer(eng, NewNetConn(eng, nc), mux), nil
}
