package freerpc

import (
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"sync"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Handler serves one RPC method from the wire: params arrive as raw JSON.
// Handlers run in engine-callback context and must not block; long work
// should be scheduled or handed to a process.
type Handler func(params json.RawMessage) (any, error)

// typedHandler serves one RPC method from the in-memory fast path: params
// arrive as the live value the caller passed (or as raw JSON when a foreign
// caller still serialized).
type typedHandler func(params any) (any, error)

// Mux is a method dispatch table shared by any number of peers (the worker
// registers its methods once and serves every manager connection with them).
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	typed    map[string]typedHandler
}

// NewMux returns an empty dispatch table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler), typed: make(map[string]typedHandler)}
}

// Handle registers h for method, replacing any previous registration. Local
// fast-path requests to a raw handler are bridged through JSON; register
// with HandleFunc to serve them without serialization.
func (m *Mux) Handle(method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = h
	delete(m.typed, method)
}

// HandleFunc registers a typed handler: wire requests are unmarshalled into
// a fresh P; in-memory requests whose params are already a P (the common
// case — both ends share the DTO type) are dispatched with zero JSON work.
func HandleFunc[P any](m *Mux, method string, fn func(params P) (any, error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = func(raw json.RawMessage) (any, error) {
		var p P
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
		}
		return fn(p)
	}
	m.typed[method] = func(params any) (any, error) {
		switch p := params.(type) {
		case nil:
			var zero P
			return fn(zero)
		case P:
			return fn(p)
		case json.RawMessage:
			var decoded P
			if len(p) > 0 {
				if err := json.Unmarshal(p, &decoded); err != nil {
					return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
				}
			}
			return fn(decoded)
		default:
			// Foreign-typed local params (e.g. a hand-rolled map): bridge
			// through JSON once rather than reject.
			raw, err := json.Marshal(params)
			if err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
			var decoded P
			if err := json.Unmarshal(raw, &decoded); err != nil {
				return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
			}
			return fn(decoded)
		}
	}
}

func (m *Mux) lookup(method string) (Handler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.handlers[method]
	return h, ok
}

// lookupLocal resolves a method for the fast path: the typed handler when
// registered, otherwise the raw handler bridged through JSON.
func (m *Mux) lookupLocal(method string) (typedHandler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if th, ok := m.typed[method]; ok {
		return th, true
	}
	h, ok := m.handlers[method]
	if !ok {
		return nil, false
	}
	return func(params any) (any, error) {
		var raw json.RawMessage
		if params != nil {
			if r, isRaw := params.(json.RawMessage); isRaw {
				raw = r
			} else {
				b, err := json.Marshal(params)
				if err != nil {
					return nil, fmt.Errorf("freerpc: bad params for %s: %w", method, err)
				}
				raw = b
			}
		}
		return h(raw)
	}, true
}

// envelope is the wire message: requests carry Method, responses don't.
type envelope struct {
	ID     uint64          `json:"id,omitempty"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// RemoteError is a failure reported by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("freerpc: remote %s: %s", e.Method, e.Msg)
}

// Peer is one endpoint of an RPC connection: it can both serve methods (via
// its Mux) and issue calls. On a LocalConn (MemPipe) every call and
// notification crosses as a typed Msg with zero JSON work; on a net.Conn
// the newline-delimited JSON wire protocol is used.
type Peer struct {
	eng   simtime.Engine
	conn  Conn
	local LocalConn // non-nil when conn supports the typed fast path
	mux   *Mux

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCall
	closed  bool
}

type pendingCall struct {
	method string
	done   func(result any, err error)
	timer  *simtime.Timer
}

// NewPeer wraps conn. mux may be nil for call-only endpoints.
func NewPeer(eng simtime.Engine, conn Conn, mux *Mux) *Peer {
	p := &Peer{eng: eng, conn: conn, mux: mux, pending: make(map[uint64]*pendingCall)}
	if lc, ok := conn.(LocalConn); ok {
		p.local = lc
		lc.SetMsgHandler(p.onMsg)
	} else {
		conn.SetRecvHandler(p.onFrame)
	}
	conn.OnClose(p.failAll)
	return p
}

// Conn returns the underlying transport.
func (p *Peer) Conn() Conn { return p.conn }

// Close tears down the connection; pending calls fail with ErrClosed.
func (p *Peer) Close() { _ = p.conn.Close() }

// resolve completes the pending call for a response (from either path).
func (p *Peer) resolve(id uint64, result any, errMsg string) {
	p.mu.Lock()
	call, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
	}
	p.mu.Unlock()
	if !ok {
		return // response to a timed-out or unknown call
	}
	if call.timer != nil {
		call.timer.Cancel()
	}
	if errMsg != "" {
		call.done(nil, &RemoteError{Method: call.method, Msg: errMsg})
		return
	}
	call.done(result, nil)
}

// onMsg receives typed messages from a LocalConn.
func (p *Peer) onMsg(m Msg) {
	if m.Method != "" {
		p.serveLocal(m)
		return
	}
	p.resolve(m.ID, m.Result, m.Err)
}

// serveLocal dispatches a fast-path request and responds in kind.
func (p *Peer) serveLocal(m Msg) {
	var result any
	var errMsg string
	if p.mux == nil {
		errMsg = "no handler table"
	} else if th, ok := p.mux.lookupLocal(m.Method); !ok {
		errMsg = fmt.Sprintf("unknown method %q", m.Method)
	} else {
		r, err := th(m.Params)
		if err != nil {
			errMsg = err.Error()
		} else {
			result = r
		}
	}
	if m.ID == 0 {
		return // notification: no response
	}
	_ = p.local.SendMsg(Msg{ID: m.ID, Result: result, Err: errMsg})
}

func (p *Peer) onFrame(frame []byte) {
	var env envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return // malformed frame: drop
	}
	if env.Method != "" {
		p.serveRequest(&env)
		return
	}
	p.resolve(env.ID, env.Result, env.Error)
}

func (p *Peer) serveRequest(env *envelope) {
	var resp envelope
	resp.ID = env.ID
	if p.mux == nil {
		resp.Error = "no handler table"
	} else if h, ok := p.mux.lookup(env.Method); !ok {
		resp.Error = fmt.Sprintf("unknown method %q", env.Method)
	} else {
		result, err := h(env.Params)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			raw, merr := json.Marshal(result)
			if merr != nil {
				resp.Error = fmt.Sprintf("marshal result: %v", merr)
			} else {
				resp.Result = raw
			}
		}
	}
	if env.ID == 0 {
		return // notification: no response
	}
	frame, err := json.Marshal(resp)
	if err != nil {
		return
	}
	_ = p.conn.Send(frame)
}

// failAll fails every pending call with ErrClosed.
func (p *Peer) failAll() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := p.pending
	p.pending = make(map[uint64]*pendingCall)
	p.mu.Unlock()
	for _, c := range pending {
		if c.timer != nil {
			c.timer.Cancel()
		}
		c.done(nil, ErrClosed)
	}
}

// Go issues an asynchronous call; done fires in engine-callback context,
// never synchronously from inside Go itself — callers may hold their own
// locks across the call (the manager does) and immediate failures (closed
// peer, send error) are delivered through the engine like any reply.
// The result is a live value when the connection is in-memory and raw JSON
// (json.RawMessage) when it crossed the wire — use DecodeResult to consume
// it uniformly. A zero timeout means no deadline.
func (p *Peer) Go(method string, params any, timeout time.Duration, done func(result any, err error)) {
	if done == nil {
		done = func(any, error) {}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.failAsync(done, ErrClosed)
		return
	}
	p.nextID++
	id := p.nextID
	call := &pendingCall{method: method, done: done}
	p.pending[id] = call
	p.mu.Unlock()

	if timeout > 0 {
		call.timer = p.eng.Schedule(timeout, "rpc-timeout:"+method, func() {
			p.mu.Lock()
			_, still := p.pending[id]
			if still {
				delete(p.pending, id)
			}
			p.mu.Unlock()
			if still {
				done(nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout))
			}
		})
	}

	var err error
	if p.local != nil {
		err = p.local.SendMsg(Msg{ID: id, Method: method, Params: params})
	} else {
		var raw json.RawMessage
		if params != nil {
			raw, err = json.Marshal(params)
		}
		if err == nil {
			var wire []byte
			wire, err = json.Marshal(envelope{ID: id, Method: method, Params: raw})
			if err == nil {
				err = p.conn.Send(wire)
			}
		}
	}
	if err != nil {
		p.mu.Lock()
		_, still := p.pending[id]
		if still {
			delete(p.pending, id)
		}
		p.mu.Unlock()
		if still {
			if call.timer != nil {
				call.timer.Cancel()
			}
			p.failAsync(done, err)
		}
	}
}

// failAsync delivers a call failure from engine-callback context, upholding
// Go's no-synchronous-completion contract.
func (p *Peer) failAsync(done func(result any, err error), err error) {
	simtime.Detached(p.eng, 0, "rpc-fail", func() { done(nil, err) })
}

// Notify sends a one-way message (no response, no delivery guarantee beyond
// the transport's).
func (p *Peer) Notify(method string, params any) error {
	if p.local != nil {
		return p.local.SendMsg(Msg{Method: method, Params: params})
	}
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("freerpc: marshal params: %w", err)
		}
		raw = b
	}
	frame, err := json.Marshal(envelope{Method: method, Params: raw})
	if err != nil {
		return err
	}
	return p.conn.Send(frame)
}

// Call issues a blocking call from process context, decoding the reply into
// result (a pointer, may be nil). A zero timeout means no deadline.
func (p *Peer) Call(proc *simproc.Process, method string, params, result any, timeout time.Duration) error {
	type outcome struct {
		val any
		err error
	}
	got := proc.WaitEvent("rpc:"+method, func(wake func(any)) {
		p.Go(method, params, timeout, func(val any, err error) {
			wake(outcome{val: val, err: err})
		})
	})
	oc, ok := got.(outcome)
	if !ok {
		return fmt.Errorf("freerpc: unexpected wake payload %T", got)
	}
	if oc.err != nil {
		return oc.err
	}
	if result == nil || oc.val == nil {
		return nil
	}
	switch v := oc.val.(type) {
	case json.RawMessage:
		if len(v) == 0 {
			return nil
		}
		if err := json.Unmarshal(v, result); err != nil {
			return fmt.Errorf("freerpc: unmarshal result of %s: %w", method, err)
		}
		return nil
	default:
		// Fast-path result: assign directly when the types line up, bridge
		// through JSON otherwise (e.g. caller decodes into its own DTO).
		dst := reflect.ValueOf(result)
		if dst.Kind() == reflect.Pointer && !dst.IsNil() {
			sv := reflect.ValueOf(v)
			if sv.Type().AssignableTo(dst.Elem().Type()) {
				dst.Elem().Set(sv)
				return nil
			}
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("freerpc: bridge result of %s: %w", method, err)
		}
		if err := json.Unmarshal(raw, result); err != nil {
			return fmt.Errorf("freerpc: unmarshal result of %s: %w", method, err)
		}
		return nil
	}
}

// Serve accepts connections from ln and wires each to a new Peer over mux.
// It returns when the listener fails (e.g. is closed). Each accepted peer
// is reported through onPeer (may be nil).
func Serve(eng simtime.Engine, ln net.Listener, mux *Mux, onPeer func(*Peer)) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		peer := NewPeer(eng, NewNetConn(eng, nc), mux)
		if onPeer != nil {
			onPeer(peer)
		}
	}
}

// Dial connects to a live RPC server over TCP.
func Dial(eng simtime.Engine, network, addr string, mux *Mux) (*Peer, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("freerpc: dial %s: %w", addr, err)
	}
	return NewPeer(eng, NewNetConn(eng, nc), mux), nil
}
