package freerpc

import (
	"testing"
	"time"

	"freeride/internal/simtime"
)

func TestLinkFaultDropWindow(t *testing.T) {
	eng := simtime.NewVirtual()
	a, b := MemPipe(eng, time.Millisecond)
	var got []string
	b.SetRecvHandler(func(f []byte) { got = append(got, string(f)) })

	lf := InjectFaults(a)
	if lf == nil {
		t.Fatalf("InjectFaults returned nil for a MemPipe conn")
	}

	// One frame before the window, two inside, one after.
	if err := a.Send([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(5*time.Millisecond, "arm", func() { lf.DropFor(10 * time.Millisecond) })
	eng.Schedule(7*time.Millisecond, "in1", func() { _ = a.Send([]byte("in1")) })
	eng.Schedule(14*time.Millisecond, "in2", func() { _ = b.Send([]byte("in2")) }) // other direction drops too
	eng.Schedule(20*time.Millisecond, "post", func() { _ = a.Send([]byte("post")) })
	eng.RunFor(50 * time.Millisecond)

	if len(got) != 2 || got[0] != "pre" || got[1] != "post" {
		t.Fatalf("received %v, want [pre post]", got)
	}
	if lf.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", lf.Dropped())
	}
}

func TestLinkFaultDelayWindow(t *testing.T) {
	eng := simtime.NewVirtual()
	a, b := MemPipe(eng, time.Millisecond)
	var arrivals []time.Duration
	b.SetRecvHandler(func([]byte) { arrivals = append(arrivals, eng.Now()) })

	lf := InjectFaults(a)
	lf.DelayFor(10*time.Millisecond, 4*time.Millisecond)
	_ = a.Send([]byte("slow")) // t=0, latency 1ms + 4ms extra
	eng.Schedule(15*time.Millisecond, "fast", func() { _ = a.Send([]byte("fast")) })
	eng.RunFor(50 * time.Millisecond)

	want := []time.Duration{5 * time.Millisecond, 16 * time.Millisecond}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals %v, want %v", arrivals, want)
	}
}

func TestLinkFaultSeverClosesBothEnds(t *testing.T) {
	eng := simtime.NewVirtual()
	a, b := MemPipe(eng, time.Millisecond)
	closed := 0
	a.OnClose(func() { closed++ })
	b.OnClose(func() { closed++ })
	lf := InjectFaults(b)
	lf.Sever()
	eng.RunFor(10 * time.Millisecond)
	if closed != 2 {
		t.Fatalf("closed hooks fired %d times, want 2", closed)
	}
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after sever: %v, want ErrClosed", err)
	}
}

func TestInjectFaultsIdleIsInert(t *testing.T) {
	// An installed-but-idle LinkFault must not perturb delivery at all.
	eng := simtime.NewVirtual()
	a, b := MemPipe(eng, time.Millisecond)
	var at time.Duration
	b.SetRecvHandler(func([]byte) { at = eng.Now() })
	InjectFaults(a)
	_ = a.Send([]byte("x"))
	eng.RunFor(10 * time.Millisecond)
	if at != time.Millisecond {
		t.Fatalf("delivery at %v, want 1ms", at)
	}
}
