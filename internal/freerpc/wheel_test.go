package freerpc

import (
	"errors"
	"testing"
	"time"

	"freeride/internal/simtime"
)

// TestPendingCallRecycleStaleReply is the free-list recycle-safety test: a
// stale (duplicate) reply carrying a completed call's id must not complete
// the call that recycled its record. Ids are never reused, so the stale
// reply has to miss the pending map entirely.
func TestPendingCallRecycleStaleReply(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	HandleFunc(mux, "Echo", func(p int) (any, error) { return p, nil })
	c1, c2 := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	var got1, got2 []any
	client.Go("Echo", 11, 0, func(result any, err error) {
		if err != nil {
			t.Fatalf("call 1: %v", err)
		}
		got1 = append(got1, result)
	})
	eng.MustDrain(8)
	if len(got1) != 1 || got1[0] != 11 {
		t.Fatalf("call 1 results = %v, want [11]", got1)
	}
	if n := len(client.callFree); n != 1 {
		t.Fatalf("free list after call 1 = %d, want 1 (record not recycled)", n)
	}

	// Call 2 reuses the recycled record under a fresh id.
	client.Go("Echo", 22, 0, func(result any, err error) {
		if err != nil {
			t.Fatalf("call 2: %v", err)
		}
		got2 = append(got2, result)
	})

	// A stale duplicate reply for the completed id 1 arrives while call 2
	// is in flight: it must complete nothing — in particular not call 2,
	// whose pendingCall record is the recycled one.
	client.onMsg(Msg{ID: 1, Result: 99})
	if len(got1) != 1 {
		t.Fatalf("stale reply re-completed call 1: %v", got1)
	}
	if len(got2) != 0 {
		t.Fatalf("stale reply completed call 2: %v", got2)
	}

	eng.MustDrain(8)
	if len(got2) != 1 || got2[0] != 22 {
		t.Fatalf("call 2 results = %v, want [22]", got2)
	}
	// And a stale reply after everything settled is equally inert.
	client.onMsg(Msg{ID: 2, Result: 99})
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("late duplicate re-completed a call: %v %v", got1, got2)
	}
}

// TestPendingCallFreeListReuse pins the free-list steady state: sequential
// calls recycle one record instead of growing the pool.
func TestPendingCallFreeListReuse(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	HandleFunc(mux, "Echo", func(p int) (any, error) { return p, nil })
	c1, c2 := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	for i := 0; i < 100; i++ {
		client.Go("Echo", i, time.Second, nil)
		eng.MustDrain(8)
	}
	if n := len(client.callFree); n > 1 {
		t.Fatalf("free list grew to %d after sequential calls; records are not being reused", n)
	}
}

// TestDeadlineWheelTimeoutOrdering covers the per-peer deadline wheel: calls
// with out-of-order timeouts must expire in deadline order, each at exactly
// its own issue+timeout instant — including re-arming the shared timer when
// a later call carries an earlier deadline.
func TestDeadlineWheelTimeoutOrdering(t *testing.T) {
	eng := simtime.NewVirtual()
	// No peer on the far end: calls are sent into the void and can only
	// end by timing out.
	c1, _ := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)

	type expiry struct {
		name string
		at   time.Duration
	}
	var expiries []expiry
	call := func(name string, timeout time.Duration) {
		client.Go(name, nil, timeout, func(result any, err error) {
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("%s: err = %v, want ErrTimeout", name, err)
			}
			expiries = append(expiries, expiry{name: name, at: eng.Now()})
		})
	}
	// A (3s) arms the wheel; B (1s) must re-arm it earlier; C (2s) lands in
	// between.
	call("A", 3*time.Second)
	call("B", time.Second)
	call("C", 2*time.Second)

	eng.MustDrain(100)
	want := []expiry{{"B", time.Second}, {"C", 2 * time.Second}, {"A", 3 * time.Second}}
	if len(expiries) != len(want) {
		t.Fatalf("expiries = %v, want %v", expiries, want)
	}
	for i := range want {
		if expiries[i] != want[i] {
			t.Fatalf("expiry %d = %+v, want %+v", i, expiries[i], want[i])
		}
	}
}

// TestDeadlineWheelSimultaneousExpiry pins the tie-break: calls sharing one
// deadline expire in issue order, in a single wheel pass.
func TestDeadlineWheelSimultaneousExpiry(t *testing.T) {
	eng := simtime.NewVirtual()
	c1, _ := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)

	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		client.Go(name, nil, time.Second, func(result any, err error) {
			order = append(order, name)
		})
	}
	eng.MustDrain(100)
	if len(order) != 3 || order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("expiry order = %v, want [x y z]", order)
	}
}

// TestReplyBeatsDeadline asserts the lazy wheel never times out a call whose
// reply arrived first, even though its entry is still queued in the wheel
// when the timer fires.
func TestReplyBeatsDeadline(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	HandleFunc(mux, "Echo", func(p int) (any, error) { return p, nil })
	c1, c2 := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	var results []any
	var errs []error
	client.Go("Echo", 7, time.Second, func(result any, err error) {
		results = append(results, result)
		errs = append(errs, err)
	})
	// Run well past the deadline: the wheel fires, finds the call gone,
	// and must not double-complete it.
	eng.RunUntil(5 * time.Second)
	if len(results) != 1 || errs[0] != nil || results[0] != 7 {
		t.Fatalf("results = %v errs = %v, want one clean reply", results, errs)
	}
}

// TestGoRoundTripAllocFree pins the measurement-run contract: a Peer.Go
// round-trip over a LocalConn — pre-boxed params, armed deadline, typed
// handler, engine-delivered reply — allocates nothing once pools are warm.
// This is the NoTraces-equivalent setting of the grids: timeouts are armed
// (the manager always sets one) but never fire.
func TestGoRoundTripAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	type params struct {
		A int64 `json:"a"`
	}
	HandleFunc(mux, "Echo", func(p params) (any, error) { return nil, nil })
	c1, c2 := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	boxed := any(params{A: 1}) // boxed once; the caller's job in 0-alloc paths
	done := func(result any, err error) {
		if err != nil {
			t.Fatalf("call failed: %v", err)
		}
	}
	// Short timeout: wheel entries expire (empty) during the run, so the
	// wheel stays in steady state instead of accumulating entries.
	const timeout = 10 * time.Microsecond
	roundTrip := func() {
		client.Go("Echo", boxed, timeout, done)
		eng.MustDrain(8)
	}
	for i := 0; i < 64; i++ {
		roundTrip()
	}
	allocs := testing.AllocsPerRun(2000, roundTrip)
	if allocs != 0 {
		t.Fatalf("Peer.Go round-trip allocates %.2f objects/op, want 0", allocs)
	}
}

// TestNotifyAllocFree pins the worker→manager push path: a pre-boxed
// notification over a LocalConn allocates nothing.
func TestNotifyAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	mux := NewMux()
	type status struct {
		Name  string `json:"name"`
		State int    `json:"state"`
	}
	HandleFunc(mux, "Report", func(p status) (any, error) { return nil, nil })
	c1, c2 := MemPipe(eng, time.Microsecond)
	client := NewPeer(eng, c1, nil)
	NewPeer(eng, c2, mux)

	boxed := any(status{Name: "t", State: 3})
	push := func() {
		_ = client.Notify("Report", boxed)
		eng.MustDrain(2)
	}
	for i := 0; i < 64; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(2000, push)
	if allocs != 0 {
		t.Fatalf("Notify allocates %.2f objects/op, want 0", allocs)
	}
}
