// Package freerpc is FreeRide's RPC layer — the stdlib substitute for the
// paper's gRPC (§4.6). Communication among the pipeline training system,
// the side task manager, and the side task workers uses request/response
// messages over a Conn, with two transports:
//
//   - MemPipe: an in-memory pipe whose delivery is scheduled on the
//     simulation engine with a configurable one-way latency (deterministic
//     experiments). MemPipe conns implement LocalConn, so peers exchange
//     typed Msg envelopes directly — params structs (bubble DTOs, task
//     specs, worker stats) and results cross without any JSON marshalling.
//     Handlers registered with HandleFunc receive the caller's value as-is
//     when the types match, and a one-time JSON bridge otherwise.
//   - NewNetConn: a real net.Conn carrying newline-delimited JSON frames
//     (the live freeride-managerd / freeride-workerd daemons). This is the
//     wire protocol; HandleFunc's raw-JSON path serves it.
//
// The split means the simulator pays only for what the paper's system pays
// for: the modelled RPC latency (part of the "FreeRide runtime" in the
// Fig. 9 bubble-time breakdown) is preserved exactly — delivery of a typed
// Msg is scheduled identically to a frame — while the serialization cost,
// which the paper's gRPC substitute never modelled, is gone from the
// simulation hot path.
package freerpc

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync"
	"time"

	"freeride/internal/simtime"
)

// Errors returned by the transport and peers.
var (
	ErrClosed  = errors.New("freerpc: connection closed")
	ErrTimeout = errors.New("freerpc: call timed out")
)

// Conn is a bidirectional frame transport. Recv handlers are always invoked
// from engine-callback context.
type Conn interface {
	// Send transmits one frame asynchronously.
	Send(frame []byte) error
	// SetRecvHandler installs the frame receiver. Must be set before the
	// first frame arrives; calls are serialized by the engine.
	SetRecvHandler(fn func(frame []byte))
	// Close tears the connection down; the peer's handler receives no
	// further frames and its OnClose fires.
	Close() error
	// OnClose registers a callback fired once when the connection closes
	// (locally or remotely), from engine-callback context.
	OnClose(fn func())
}

// memConn is one end of an in-memory pipe. It is a LocalConn: peers hand
// typed Msg values straight across (zero JSON); the frame-based Send remains
// for transport-level tests and foreign users.
type memConn struct {
	eng     simtime.Engine
	latency time.Duration

	// mu rides the engine ownership regime (see simtime.Guard).
	mu      simtime.Guard
	peer    *memConn
	recv    func([]byte)
	recvMsg func(Msg)
	closed  bool
	onClose []func()
	// Fault-injection state (see LinkFault). faulty is set once when a
	// LinkFault is installed; the zero values behind it inject nothing, so
	// an armed-but-idle fault plane takes one predictable branch and a
	// plain conn pays a single bool test.
	faulty     bool
	dropUntil  time.Duration
	delayUntil time.Duration
	extraDelay time.Duration
	dropped    uint64
	// msgPool recycles typed-message delivery events (the carried Msg plus
	// the pre-built engine callback), so SendMsg schedules without
	// allocating a closure per message — the control plane's hottest
	// allocation site after the per-call bookkeeping.
	msgPool []*msgEvent
}

// msgEvent is one in-flight typed message: pooled on the sending end, its
// fire callback is built once and reused for every delivery.
type msgEvent struct {
	conn *memConn // sending end; delivery goes to conn.peer
	m    Msg
	fire func()
}

// deliver hands the message to the receiving end and recycles the event.
func (e *msgEvent) deliver() {
	c := e.conn
	m := e.m
	e.m = Msg{}
	c.mu.Lock()
	// Recycle before invoking the receiver: the handler may send again
	// (request → response) and reuse this very event.
	c.msgPool = append(c.msgPool, e)
	peer := c.peer
	c.mu.Unlock()

	peer.mu.Lock()
	closed, recv := peer.closed, peer.recvMsg
	peer.mu.Unlock()
	if closed || recv == nil {
		return
	}
	recv(m)
}

var _ LocalConn = (*memConn)(nil)

// MemPipe returns a connected pair of in-memory Conns with the given one-way
// delivery latency.
func MemPipe(eng simtime.Engine, latency time.Duration) (Conn, Conn) {
	a := &memConn{eng: eng, latency: latency}
	b := &memConn{eng: eng, latency: latency}
	a.mu.Bind(eng)
	b.mu.Bind(eng)
	a.peer, b.peer = b, a
	return a, b
}

func (c *memConn) Send(frame []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	lat := c.latency
	if c.faulty {
		var dropped bool
		if lat, dropped = c.faultLatencyLocked(lat); dropped {
			c.mu.Unlock()
			return nil
		}
	}
	peer := c.peer
	c.mu.Unlock()

	// Copy: the sender may reuse the buffer.
	buf := make([]byte, len(frame))
	copy(buf, frame)
	simtime.Detached(c.eng, lat, "rpc-deliver", func() {
		peer.mu.Lock()
		closed, recv := peer.closed, peer.recv
		peer.mu.Unlock()
		if closed || recv == nil {
			return
		}
		recv(buf)
	})
	return nil
}

// SendMsg delivers a typed message to the peer after one latency — the same
// scheduling as Send, minus the serialization. Delivery events come from the
// sender's pool, so steady-state messaging allocates nothing.
func (c *memConn) SendMsg(m Msg) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	lat := c.latency
	if c.faulty {
		var dropped bool
		if lat, dropped = c.faultLatencyLocked(lat); dropped {
			c.mu.Unlock()
			return nil
		}
	}
	var e *msgEvent
	if n := len(c.msgPool); n > 0 {
		e = c.msgPool[n-1]
		c.msgPool[n-1] = nil
		c.msgPool = c.msgPool[:n-1]
	} else {
		e = &msgEvent{conn: c}
		e.fire = e.deliver
	}
	e.m = m
	c.mu.Unlock()

	simtime.Detached(c.eng, lat, "rpc-deliver", e.fire)
	return nil
}

// faultLatencyLocked applies the injected link fault to one outgoing
// message: inside a drop window the message is silently discarded (the
// sender sees success — exactly a lost frame), inside a delay window the
// one-way latency is inflated. Caller holds c.mu and has checked c.faulty.
func (c *memConn) faultLatencyLocked(lat time.Duration) (time.Duration, bool) {
	now := c.eng.Now()
	if now < c.dropUntil {
		c.dropped++
		return lat, true
	}
	if now < c.delayUntil {
		lat += c.extraDelay
	}
	return lat, false
}

func (c *memConn) SetRecvHandler(fn func([]byte)) {
	c.mu.Lock()
	c.recv = fn
	c.mu.Unlock()
}

func (c *memConn) SetMsgHandler(fn func(Msg)) {
	c.mu.Lock()
	c.recvMsg = fn
	c.mu.Unlock()
}

func (c *memConn) OnClose(fn func()) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fn()
		return
	}
	c.onClose = append(c.onClose, fn)
	c.mu.Unlock()
}

func (c *memConn) Close() error {
	c.closeLocal()
	// Propagate to the peer after one latency (FIN in flight).
	peer := c.peer
	simtime.Detached(c.eng, c.latency, "rpc-close", peer.closeLocal)
	return nil
}

func (c *memConn) closeLocal() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	hooks := c.onClose
	c.onClose = nil
	c.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// netConn adapts a real net.Conn to the Conn interface with
// newline-delimited frames. Incoming frames are re-dispatched through the
// engine so handlers keep the single-threaded callback guarantee.
type netConn struct {
	eng simtime.Engine
	nc  net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	recv    func([]byte)
	closed  bool
	onClose []func()
	started bool
}

var _ Conn = (*netConn)(nil)

// NewNetConn wraps nc. The read loop starts at the first SetRecvHandler.
// A net-backed conn schedules frame delivery from its read-pump goroutine,
// so it declares the shared engine regime up front (a no-op on the wall
// engine the live daemons run on).
func NewNetConn(eng simtime.Engine, nc net.Conn) Conn {
	simtime.EscalateShared(eng)
	return &netConn{eng: eng, nc: nc}
}

func (c *netConn) Send(frame []byte) error {
	if bytes.IndexByte(frame, '\n') >= 0 {
		return errors.New("freerpc: frame contains newline")
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.nc.Write(append(frame, '\n')); err != nil {
		return err
	}
	return nil
}

func (c *netConn) SetRecvHandler(fn func([]byte)) {
	c.mu.Lock()
	c.recv = fn
	start := !c.started
	c.started = true
	c.mu.Unlock()
	if start {
		go c.readLoop()
	}
}

func (c *netConn) readLoop() {
	scanner := bufio.NewScanner(c.nc)
	scanner.Buffer(make([]byte, 64<<10), 16<<20)
	for scanner.Scan() {
		line := make([]byte, len(scanner.Bytes()))
		copy(line, scanner.Bytes())
		simtime.Detached(c.eng, 0, "rpc-recv", func() {
			c.mu.Lock()
			recv, closed := c.recv, c.closed
			c.mu.Unlock()
			if !closed && recv != nil {
				recv(line)
			}
		})
	}
	simtime.Detached(c.eng, 0, "rpc-eof", func() { c.closeLocal() })
}

func (c *netConn) OnClose(fn func()) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fn()
		return
	}
	c.onClose = append(c.onClose, fn)
	c.mu.Unlock()
}

func (c *netConn) Close() error {
	c.closeLocal()
	return nil
}

func (c *netConn) closeLocal() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	hooks := c.onClose
	c.onClose = nil
	c.mu.Unlock()
	_ = c.nc.Close()
	for _, h := range hooks {
		h()
	}
}
