package freerpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

type echoArgs struct {
	Text string `json:"text"`
	N    int    `json:"n"`
}

func newPair(latency time.Duration) (*simtime.Virtual, *simproc.Runtime, *Peer, *Peer, *Mux) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	serverMux := NewMux()
	a, b := MemPipe(eng, latency)
	client := NewPeer(eng, a, nil)
	server := NewPeer(eng, b, serverMux)
	return eng, procs, client, server, serverMux
}

func TestCallRoundTrip(t *testing.T) {
	eng, procs, client, _, mux := newPair(200 * time.Microsecond)
	HandleFunc(mux, "Echo", func(p echoArgs) (any, error) {
		return echoArgs{Text: p.Text + "!", N: p.N * 2}, nil
	})
	var got echoArgs
	var at time.Duration
	procs.Spawn("caller", func(p *simproc.Process) error {
		if err := client.Call(p, "Echo", echoArgs{Text: "hi", N: 21}, &got, 0); err != nil {
			return err
		}
		at = p.Now()
		return nil
	})
	eng.MustDrain(100)
	if got.Text != "hi!" || got.N != 42 {
		t.Fatalf("Echo = %+v", got)
	}
	if at != 400*time.Microsecond {
		t.Fatalf("round trip took %v, want 400µs (2 hops)", at)
	}
}

func TestCallRemoteError(t *testing.T) {
	eng, procs, client, _, mux := newPair(0)
	mux.Handle("Fail", func(json.RawMessage) (any, error) {
		return nil, errors.New("nope")
	})
	var callErr error
	procs.Spawn("caller", func(p *simproc.Process) error {
		callErr = client.Call(p, "Fail", nil, nil, 0)
		return nil
	})
	eng.MustDrain(100)
	var re *RemoteError
	if !errors.As(callErr, &re) {
		t.Fatalf("err = %v, want RemoteError", callErr)
	}
	if re.Msg != "nope" || re.Method != "Fail" {
		t.Fatalf("RemoteError = %+v", re)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	eng, procs, client, _, _ := newPair(0)
	var callErr error
	procs.Spawn("caller", func(p *simproc.Process) error {
		callErr = client.Call(p, "Nope", nil, nil, 0)
		return nil
	})
	eng.MustDrain(100)
	var re *RemoteError
	if !errors.As(callErr, &re) {
		t.Fatalf("err = %v, want RemoteError for unknown method", callErr)
	}
}

func TestCallTimeout(t *testing.T) {
	eng, procs, client, _, mux := newPair(time.Second) // very slow link
	mux.Handle("Slow", func(json.RawMessage) (any, error) { return "done", nil })
	var callErr error
	var at time.Duration
	procs.Spawn("caller", func(p *simproc.Process) error {
		callErr = client.Call(p, "Slow", nil, nil, 500*time.Millisecond)
		at = p.Now()
		return nil
	})
	eng.MustDrain(100)
	if !errors.Is(callErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", callErr)
	}
	if at != 500*time.Millisecond {
		t.Fatalf("timed out at %v, want 500ms", at)
	}
}

func TestLateResponseAfterTimeoutIgnored(t *testing.T) {
	eng, procs, client, _, mux := newPair(time.Second)
	mux.Handle("Slow", func(json.RawMessage) (any, error) { return 1, nil })
	calls := 0
	procs.Spawn("caller", func(p *simproc.Process) error {
		_ = client.Call(p, "Slow", nil, nil, 100*time.Millisecond)
		calls++
		p.Sleep(10 * time.Second) // outlive the late response
		calls++
		return nil
	})
	eng.MustDrain(100)
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (late response must not wake anything)", calls)
	}
}

func TestNotify(t *testing.T) {
	eng, _, client, _, mux := newPair(time.Millisecond)
	var got []int
	HandleFunc(mux, "Push", func(n int) (any, error) {
		got = append(got, n)
		return nil, nil
	})
	for i := 1; i <= 3; i++ {
		if err := client.Notify("Push", i); err != nil {
			t.Fatalf("Notify: %v", err)
		}
	}
	eng.MustDrain(100)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("notifications = %v, want [1 2 3]", got)
	}
}

func TestCloseFailsPendingCalls(t *testing.T) {
	eng, procs, client, server, mux := newPair(50 * time.Millisecond)
	mux.Handle("Hang", func(json.RawMessage) (any, error) { return nil, nil })
	var callErr error
	procs.Spawn("caller", func(p *simproc.Process) error {
		callErr = client.Call(p, "Hang", nil, nil, 0)
		return nil
	})
	// Close the client side before the response can arrive.
	eng.Schedule(10*time.Millisecond, "close", func() { client.Close() })
	eng.MustDrain(100)
	if !errors.Is(callErr, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", callErr)
	}
	_ = server
}

func TestBidirectionalCalls(t *testing.T) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	muxA, muxB := NewMux(), NewMux()
	ca, cb := MemPipe(eng, time.Millisecond)
	peerA := NewPeer(eng, ca, muxA)
	peerB := NewPeer(eng, cb, muxB)
	HandleFunc(muxA, "A.Name", func(struct{}) (any, error) { return "A", nil })
	HandleFunc(muxB, "B.Name", func(struct{}) (any, error) { return "B", nil })
	var fromA, fromB string
	procs.Spawn("x", func(p *simproc.Process) error {
		if err := peerA.Call(p, "B.Name", struct{}{}, &fromB, 0); err != nil {
			return err
		}
		return peerB.Call(p, "A.Name", struct{}{}, &fromA, 0)
	})
	eng.MustDrain(100)
	if fromA != "A" || fromB != "B" {
		t.Fatalf("bidirectional = %q/%q, want A/B", fromA, fromB)
	}
}

func TestGoAsync(t *testing.T) {
	eng, _, client, _, mux := newPair(time.Millisecond)
	HandleFunc(mux, "Add", func(p echoArgs) (any, error) { return p.N + 1, nil })
	var result int
	client.Go("Add", echoArgs{N: 41}, 0, func(res any, err error) {
		if err != nil {
			t.Errorf("Go err: %v", err)
			return
		}
		v, derr := DecodeResult[int](res)
		if derr != nil {
			t.Errorf("decode: %v", derr)
		}
		result = v
	})
	eng.MustDrain(100)
	if result != 42 {
		t.Fatalf("async result = %d, want 42", result)
	}
}

// Property: the envelope codec round-trips arbitrary payload strings.
func TestEnvelopeRoundTrip(t *testing.T) {
	f := func(id uint64, method, payload string) bool {
		raw, err := json.Marshal(payload)
		if err != nil {
			return false
		}
		env := envelope{ID: id, Method: method, Params: raw}
		b, err := json.Marshal(env)
		if err != nil {
			return false
		}
		var back envelope
		if err := json.Unmarshal(b, &back); err != nil {
			return false
		}
		var p2 string
		if err := json.Unmarshal(back.Params, &p2); err != nil {
			return false
		}
		return back.ID == id && back.Method == method && p2 == payload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransportLive(t *testing.T) {
	// Live-mode integration: wall-clock engine, real TCP loopback.
	eng := simtime.NewWall()
	procs := simproc.NewRuntime(eng)
	mux := NewMux()
	HandleFunc(mux, "Echo", func(p echoArgs) (any, error) {
		return echoArgs{Text: p.Text, N: p.N + 1}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() { _ = Serve(eng, ln, mux, nil) }()

	client, err := Dial(eng, "tcp", ln.Addr().String(), nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	done := make(chan error, 1)
	var got echoArgs
	procs.Spawn("caller", func(p *simproc.Process) error {
		err := client.Call(p, "Echo", echoArgs{Text: "live", N: 1}, &got, 5*time.Second)
		done <- err
		return err
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("live call: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("live call did not complete")
	}
	if got.Text != "live" || got.N != 2 {
		t.Fatalf("live Echo = %+v", got)
	}
}

func TestTCPServerManyClients(t *testing.T) {
	eng := simtime.NewWall()
	mux := NewMux()
	var mu sync.Mutex
	seen := map[string]bool{}
	HandleFunc(mux, "Hello", func(name string) (any, error) {
		mu.Lock()
		seen[name] = true
		mu.Unlock()
		return "ok", nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() { _ = Serve(eng, ln, mux, nil) }()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		name := fmt.Sprintf("client%d", i)
		go func() {
			defer wg.Done()
			c, err := Dial(eng, "tcp", ln.Addr().String(), nil)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			ok := make(chan struct{})
			c.Go("Hello", name, 5*time.Second, func(res any, err error) {
				if err != nil {
					t.Errorf("call: %v", err)
				}
				close(ok)
			})
			select {
			case <-ok:
			case <-time.After(10 * time.Second):
				t.Error("call timed out")
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("server saw %d clients, want 4", len(seen))
	}
}

func BenchmarkMemPipeCall(b *testing.B) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	mux := NewMux()
	HandleFunc(mux, "Echo", func(p echoArgs) (any, error) { return p, nil })
	ca, cb := MemPipe(eng, 100*time.Microsecond)
	client := NewPeer(eng, ca, nil)
	NewPeer(eng, cb, mux)
	b.ReportAllocs()
	b.ResetTimer()
	procs.Spawn("bench", func(p *simproc.Process) error {
		for i := 0; i < b.N; i++ {
			var out echoArgs
			if err := client.Call(p, "Echo", echoArgs{Text: "x", N: i}, &out, 0); err != nil {
				b.Error(err)
				return err
			}
		}
		return nil
	})
	eng.Drain(0)
}
