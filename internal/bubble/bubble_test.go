package bubble

import (
	"math"
	"testing"
	"time"

	"freeride/internal/model"
	"freeride/internal/pipeline"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

func trainedRig(t *testing.T, llm model.LLM, mbs, epochs int) (*simtime.Virtual, *pipeline.Trainer) {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 4)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu" + string(rune('0'+i))})
	}
	tr, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model: llm, Stages: 4, MicroBatches: mbs, Epochs: epochs, RecordOps: true,
	})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	if err := tr.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	eng.Drain(50_000_000)
	if !tr.Done().IsSet() {
		t.Fatal("training incomplete")
	}
	return eng, tr
}

func TestProfileBubbleRate(t *testing.T) {
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 2)
	prof, err := ProfileTrainer(tr, 1, 0)
	if err != nil {
		t.Fatalf("ProfileTrainer: %v", err)
	}
	if r := prof.BubbleRate(); math.Abs(r-0.42) > 0.03 {
		t.Fatalf("bubble rate = %.3f, want ~0.42", r)
	}
}

func TestProfileDurationsSpanPaperRange(t *testing.T) {
	// Paper §2.2.1: durations range ~0.22s to ~1.04s for the 3.6B model.
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	prof, err := ProfileTrainer(tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := prof.Durations()
	if len(ds) == 0 {
		t.Fatal("no bubbles found")
	}
	minD, maxD := ds[0], ds[0]
	for _, d := range ds {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD < 100*time.Millisecond || minD > 400*time.Millisecond {
		t.Errorf("min bubble %v outside ~0.22s band", minD)
	}
	if maxD < 900*time.Millisecond || maxD > 1600*time.Millisecond {
		t.Errorf("max bubble %v outside ~1.04s band", maxD)
	}
}

func TestProfileTypeStructure(t *testing.T) {
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	prof, err := ProfileTrainer(tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0: "Type-A bubbles appear at the start and end of each epoch in
	// all stages except for the first stage" (paper §2.2.1) — stage 0
	// issues the first FP and retires the last BP, so it has no Type-A at
	// all; it does have the Type-B warmup wait.
	s0 := prof.Stages[0]
	var s0A, s0B int
	for _, tpl := range s0.Templates {
		switch tpl.Type {
		case TypeA:
			s0A++
		case TypeB:
			s0B++
		}
		if tpl.Offset < 0 || tpl.Offset+tpl.Duration > prof.EpochSpan {
			t.Errorf("template %+v outside epoch span %v", tpl, prof.EpochSpan)
		}
	}
	if s0B != 1 {
		t.Errorf("stage 0 Type-B count = %d, want 1", s0B)
	}
	if s0A != 0 {
		t.Errorf("stage 0 Type-A count = %d, want 0", s0A)
	}
	// Stage 3 (last): no Type-B; lead-in Type-A present.
	s3 := prof.Stages[3]
	for _, tpl := range s3.Templates {
		if tpl.Type == TypeB {
			t.Errorf("stage 3 has Type-B bubble %+v", tpl)
		}
	}
	if len(s3.Templates) == 0 || s3.Templates[0].Type != TypeA || s3.Templates[0].Offset != 0 {
		t.Errorf("stage 3 first bubble = %+v, want lead-in Type-A at offset 0", s3.Templates)
	}
}

func TestTypeABubbleDurationIncreasesWithStage(t *testing.T) {
	// Paper: "The duration increases for Type-A bubbles ... from Stage 0 to
	// Stage 3" (lead-in bubbles).
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	prof, _ := ProfileTrainer(tr, 0, 0)
	prev := time.Duration(0)
	for s := 1; s < 4; s++ {
		lead := prof.Stages[s].Templates[0]
		if lead.Offset != 0 || lead.Type != TypeA {
			t.Fatalf("stage %d first template %+v not a lead-in Type-A", s, lead)
		}
		if lead.Duration <= prev {
			t.Fatalf("stage %d lead-in %v not > stage %d", s, lead.Duration, s-1)
		}
		prev = lead.Duration
	}
}

func TestMemAvailableIncreasesWithStage(t *testing.T) {
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	prof, _ := ProfileTrainer(tr, 0, 0)
	for s := 1; s < 4; s++ {
		if prof.Stages[s].MemAvailable <= prof.Stages[s-1].MemAvailable {
			t.Fatalf("stage %d available %d not > stage %d's %d",
				s, prof.Stages[s].MemAvailable, s-1, prof.Stages[s-1].MemAvailable)
		}
	}
	if prof.Stages[0].MemAvailable > 3*model.GiB+model.GiB/10 {
		t.Fatalf("stage 0 available = %d, want <~3 GiB", prof.Stages[0].MemAvailable)
	}
	if prof.Stages[3].MemAvailable < 20*model.GiB {
		t.Fatalf("stage 3 available = %d, want >20 GiB", prof.Stages[3].MemAvailable)
	}
}

func TestBubblesDoNotOverlapOps(t *testing.T) {
	// Property: every profiled bubble lies strictly within op gaps — no
	// overlap with any recorded op on the same stage.
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 2)
	prof, _ := ProfileTrainer(tr, 1, 0)
	starts, _ := tr.EpochTimes()
	anchor := starts[1]
	for s, sp := range prof.Stages {
		for _, tpl := range sp.Templates {
			b0 := anchor + tpl.Offset
			b1 := b0 + tpl.Duration
			for _, op := range tr.OpLog(s) {
				if op.Start < b1 && b0 < op.End {
					t.Fatalf("stage %d bubble [%v,%v) overlaps op %+v", s, b0, b1, op)
				}
			}
		}
	}
}

func TestProfileUnprofiledEpochFails(t *testing.T) {
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	if _, err := ProfileTrainer(tr, 5, 0); err == nil {
		t.Fatal("profiling an unfinished epoch succeeded")
	}
}

func TestReporterStampsTemplates(t *testing.T) {
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	prof, _ := ProfileTrainer(tr, 0, 0)
	rep := NewReporter(prof, 10*time.Millisecond)
	var got []Bubble
	rep.SetSink(func(b Bubble) { got = append(got, b) })
	rep.EmitEpoch(100 * time.Second)
	want := 0
	for _, sp := range prof.Stages {
		want += len(sp.Templates)
	}
	if len(got) != want {
		t.Fatalf("reported %d bubbles, want %d", len(got), want)
	}
	for _, b := range got {
		if b.Start < 100*time.Second {
			t.Fatalf("bubble %+v starts before epoch anchor", b)
		}
		if b.Duration <= 0 {
			t.Fatalf("bubble %+v has nonpositive duration", b)
		}
	}
}

func TestReporterSafetyMarginShrinks(t *testing.T) {
	prof := &Profile{
		EpochSpan: time.Second,
		Stages: []StageProfile{{
			Stage: 0,
			Templates: []Template{
				{Stage: 0, Type: TypeA, Offset: 0, Duration: 100 * time.Millisecond},
				{Stage: 0, Type: TypeC, Offset: 500 * time.Millisecond, Duration: 5 * time.Millisecond},
			},
		}},
	}
	rep := NewReporter(prof, 20*time.Millisecond)
	var got []Bubble
	rep.SetSink(func(b Bubble) { got = append(got, b) })
	rep.EmitEpoch(0)
	if len(got) != 1 {
		t.Fatalf("reported %d bubbles, want 1 (margin swallows the 5ms one)", len(got))
	}
	if got[0].Duration != 80*time.Millisecond {
		t.Fatalf("duration = %v, want 80ms", got[0].Duration)
	}
}

func TestReporterAttachEmitsEveryEpoch(t *testing.T) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 4)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "g" + string(rune('0'+i))})
	}
	tr, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3, RecordOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := &Profile{
		EpochSpan: time.Second,
		Stages: []StageProfile{{
			Stage:     1,
			Templates: []Template{{Stage: 1, Type: TypeA, Offset: 0, Duration: 100 * time.Millisecond}},
		}},
	}
	rep := NewReporter(prof, 0)
	count := 0
	rep.SetSink(func(Bubble) { count++ })
	rep.Attach(tr)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(50_000_000)
	if count != 3 {
		t.Fatalf("sink fired %d times, want 3 (one per epoch)", count)
	}
}

func TestBubbleEnd(t *testing.T) {
	b := Bubble{Start: time.Second, Duration: 200 * time.Millisecond}
	if b.End() != 1200*time.Millisecond {
		t.Fatalf("End = %v", b.End())
	}
}

func TestTraceProfilerCrossValidatesOpLogProfiler(t *testing.T) {
	// The occupancy-trace profiler (the paper's actual mechanism) and the
	// op-log profiler must agree on totals and rates.
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 2)
	fromOps, err := ProfileTrainer(tr, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fromTraces, err := ProfileFromTraces(tr, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromOps.EpochSpan != fromTraces.EpochSpan {
		t.Fatalf("spans differ: %v vs %v", fromOps.EpochSpan, fromTraces.EpochSpan)
	}
	if math.Abs(fromOps.BubbleRate()-fromTraces.BubbleRate()) > 0.02 {
		t.Fatalf("bubble rates differ: %.4f vs %.4f", fromOps.BubbleRate(), fromTraces.BubbleRate())
	}
	for s := range fromOps.Stages {
		a := fromOps.Stages[s].BubbleTime
		b := fromTraces.Stages[s].BubbleTime
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		// The trace profiler merges gaps separated only by comm latency,
		// so small differences are expected.
		if diff > 100*time.Millisecond {
			t.Errorf("stage %d bubble time: ops %v vs traces %v", s, a, b)
		}
		if fromOps.Stages[s].MemAvailable != fromTraces.Stages[s].MemAvailable {
			t.Errorf("stage %d mem availability differs", s)
		}
	}
	// Both see the Type-B bubble on stage 0.
	hasB := func(p *Profile, stage int) bool {
		for _, tpl := range p.Stages[stage].Templates {
			if tpl.Type == TypeB {
				return true
			}
		}
		return false
	}
	if !hasB(fromOps, 0) || !hasB(fromTraces, 0) {
		t.Error("Type-B bubble missing from one profiler on stage 0")
	}
}

func TestTraceProfilerRejectsBadEpoch(t *testing.T) {
	_, tr := trainedRig(t, model.NanoGPT3B, 4, 1)
	if _, err := ProfileFromTraces(tr, 3, 0); err == nil {
		t.Fatal("unfinished epoch accepted")
	}
}
