package bubble

import (
	"math"
	"time"
)

// Online drift detection over the report stream: the manager profiles each
// stage once up front (the paper's design) and then watches the per-epoch
// bubble supply the reporter actually delivers. The estimator windows the
// stream per epoch — the one-shot profile says how many reports a stage
// emits per epoch, so a window closes exactly when the epoch's last report
// lands — and runs a CUSUM test with hysteresis over the relative
// deviation of each window sum from the profiled baseline, plus an EWMA of
// the window sums as the online supply estimate.
//
// The windowing is what makes the zero-drift oracle exact rather than
// approximate: with no drift the reporter emits the same templates every
// epoch, each window sum equals the baseline to the bit, the relative
// deviation is exactly 0.0, and the CUSUM never accumulates — an armed
// detector over a zero-drift run is pure bookkeeping.

// Drift labels a detector firing.
type Drift int

const (
	DriftNone Drift = iota
	// DriftGrow: the window sums ran persistently above baseline.
	DriftGrow
	// DriftShrink: the window sums ran persistently below baseline.
	DriftShrink
)

// String names the direction.
func (d Drift) String() string {
	switch d {
	case DriftGrow:
		return "grow"
	case DriftShrink:
		return "shrink"
	default:
		return "none"
	}
}

// DetectorConfig tunes the estimator. The zero value selects the defaults.
type DetectorConfig struct {
	// Alpha is the EWMA weight of each new window sum (default 0.3).
	Alpha float64
	// Slack is the CUSUM dead-band k: per-window relative deviations
	// smaller than this accumulate nothing (default 0.05).
	Slack float64
	// Threshold is the CUSUM firing level h on the accumulated relative
	// deviation (default 0.8 — e.g. two windows at 45% off baseline).
	Threshold float64
	// MinWindows is how many complete windows must be observed before the
	// detector may fire (default 2).
	MinWindows int
	// Hysteresis is how many complete windows after a firing the detector
	// stays quiet, so one detection doesn't flap into a train of
	// re-detections while the EWMA converges (default 2).
	Hysteresis int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Slack <= 0 {
		c.Slack = 0.05
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.8
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 2
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	return c
}

// FastDetector reacts within a window or two — low threshold, no warmup.
func FastDetector() DetectorConfig {
	return DetectorConfig{Alpha: 0.4, Slack: 0.05, Threshold: 0.3, MinWindows: 1, Hysteresis: 1}
}

// SlowDetector needs several consistent windows before firing — the
// detector-latency axis of the drift sweep.
func SlowDetector() DetectorConfig {
	return DetectorConfig{Alpha: 0.2, Slack: 0.1, Threshold: 1.6, MinWindows: 3, Hysteresis: 2}
}

// Estimator maintains one worker's online bubble-supply estimate.
type Estimator struct {
	cfg DetectorConfig
	// reports is the window size: bubble reports per epoch from the
	// one-shot profile.
	reports int
	// baseline is the per-epoch bubble supply currently planned against
	// (seeded from the one-shot profile, re-based on detection).
	baseline float64
	// ewma tracks the window sums.
	ewma float64
	// CUSUM accumulators over relative deviation from baseline.
	cpos, cneg float64

	winSum   float64
	winCount int
	windows  int
	cool     int
	drifted  bool
	last     Drift
}

// NewEstimator seeds an estimator from the one-shot profile: perEpoch is
// the profiled per-epoch bubble supply (post safety margin) and reports
// the number of bubble reports per epoch.
func NewEstimator(cfg DetectorConfig, perEpoch time.Duration, reports int) *Estimator {
	if reports < 1 {
		reports = 1
	}
	return &Estimator{
		cfg:      cfg.withDefaults(),
		reports:  reports,
		baseline: float64(perEpoch),
		ewma:     float64(perEpoch),
	}
}

// Observe feeds one bubble report's duration. It returns DriftNone until a
// window (one epoch of reports) completes AND the CUSUM fires; a non-none
// return is a detection: the estimator has re-based itself onto the
// observed level and the caller should re-plan.
func (e *Estimator) Observe(d time.Duration) Drift {
	e.winSum += float64(d)
	e.winCount++
	if e.winCount < e.reports {
		return DriftNone
	}
	sum := e.winSum
	e.winSum, e.winCount = 0, 0
	e.windows++

	// EWMA update. Under zero drift sum == ewma exactly, so the update is
	// the identity and no float error creeps in.
	if sum != e.ewma {
		e.ewma += e.cfg.Alpha * (sum - e.ewma)
	}

	if e.cool > 0 {
		e.cool--
		return DriftNone
	}

	// CUSUM over the relative deviation from the planned baseline.
	x := 0.0
	if e.baseline > 0 {
		x = sum/e.baseline - 1
	}
	e.cpos = math.Max(0, e.cpos+x-e.cfg.Slack)
	e.cneg = math.Max(0, e.cneg-x-e.cfg.Slack)
	if e.windows < e.cfg.MinWindows {
		return DriftNone
	}

	var dir Drift
	switch {
	case e.cpos > e.cfg.Threshold:
		dir = DriftGrow
	case e.cneg > e.cfg.Threshold:
		dir = DriftShrink
	default:
		return DriftNone
	}

	// Detection: the one-shot profile is stale. Snap the estimate and the
	// baseline to the observed level (history before a level shift carries
	// no information about the new level) and hold the detector quiet for
	// the hysteresis window.
	e.drifted = true
	e.last = dir
	e.baseline = sum
	e.ewma = sum
	e.cpos, e.cneg = 0, 0
	e.cool = e.cfg.Hysteresis
	return dir
}

// Rebase replaces the baseline wholesale (a pushed profile update) and
// marks the estimator drifted: the manager now plans against this level,
// not the one-shot profile.
func (e *Estimator) Rebase(perEpoch time.Duration, reports int) {
	if reports < 1 {
		reports = 1
	}
	e.reports = reports
	e.baseline = float64(perEpoch)
	e.ewma = float64(perEpoch)
	e.winSum, e.winCount = 0, 0
	e.cpos, e.cneg = 0, 0
	e.cool = e.cfg.Hysteresis
	e.drifted = true
	e.last = DriftNone
}

// Estimate is the current per-epoch bubble-supply estimate.
func (e *Estimator) Estimate() time.Duration { return time.Duration(e.ewma) }

// MeanBubble is the estimated mean duration of a single bubble — the
// quantity Algorithm-1's pause-time fit compares against a task's step.
func (e *Estimator) MeanBubble() time.Duration {
	return time.Duration(e.ewma / float64(e.reports))
}

// Baseline is the per-epoch supply currently planned against.
func (e *Estimator) Baseline() time.Duration { return time.Duration(e.baseline) }

// Windows reports how many complete windows have been observed.
func (e *Estimator) Windows() int { return e.windows }

// Drifted reports whether the estimator has ever detected drift (or been
// re-based by a pushed profile update): until then the one-shot profile is
// authoritative and online admission must not second-guess it.
func (e *Estimator) Drifted() bool { return e.drifted }

// ShrinkSuspected reports whether the evidence points at a contracting
// bubble supply: either the last detection was a shrink, or negative CUSUM
// mass has accumulated (shrink suspected but not yet over threshold). The
// manager uses this to classify a pause-overrun grace kill as a
// recoverable stale admission rather than a task bug. Under zero drift
// both terms are exactly zero, so classification never changes.
func (e *Estimator) ShrinkSuspected() bool {
	return e.last == DriftShrink || e.cneg > 0
}
