package bubble

import (
	"sync"
	"time"

	"freeride/internal/pipeline"
)

// Reporter is the runtime half of the instrumentation: at every epoch start
// it stamps the profiled templates into concrete Bubbles and delivers them
// to a sink (the side task manager, over RPC in the full system). This
// matches the paper's design where DeepSpeed is instrumented to report the
// start timestamp and duration of each bubble (§3.2, §4.6).
type Reporter struct {
	profile *Profile
	// safety shrinks every reported duration: the manager then pauses side
	// tasks slightly before the training op really needs the GPU.
	safety time.Duration

	mu    sync.Mutex
	sink  func(Bubble)
	drift *Drifter
}

// NewReporter builds a reporter from an offline profile. The safety margin
// is subtracted from each bubble's duration (clamped at zero).
func NewReporter(profile *Profile, safety time.Duration) *Reporter {
	return &Reporter{profile: profile, safety: safety}
}

// SetSink installs the bubble consumer (engine-callback context).
func (r *Reporter) SetSink(sink func(Bubble)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = sink
}

// SetDrift installs a drift evaluator: from now on reported durations and
// memory are scaled per (stage, time) before the safety margin applies.
// Nil (the default) and identity scales leave the emitted bubbles
// untouched by the exact arithmetic the undrifted path uses.
func (r *Reporter) SetDrift(d *Drifter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drift = d
}

// StageBaseline reports the undrifted per-epoch bubble supply the reporter
// emits for a stage — total duration after the safety margin, and how many
// reports carry it. This seeds the manager's online estimator with the
// exact arithmetic EmitEpoch uses, so a zero-drift window sum matches it
// to the bit.
func (r *Reporter) StageBaseline(stage int) (total time.Duration, reports int) {
	for _, sp := range r.profile.Stages {
		if sp.Stage != stage {
			continue
		}
		for _, tpl := range sp.Templates {
			if d := tpl.Duration - r.safety; d > 0 {
				total += d
				reports++
			}
		}
		return total, reports
	}
	return 0, 0
}

// Attach hooks the reporter to a trainer's epoch-start instrumentation
// point.
func (r *Reporter) Attach(tr *pipeline.Trainer) {
	tr.OnEpochStart(func(epoch int, ts time.Duration) {
		r.EmitEpoch(ts)
	})
}

// EmitEpoch stamps and delivers all profiled bubbles for an epoch starting
// at ts.
func (r *Reporter) EmitEpoch(ts time.Duration) {
	r.mu.Lock()
	sink := r.sink
	drift := r.drift
	r.mu.Unlock()
	if sink == nil {
		return
	}
	for _, sp := range r.profile.Stages {
		// Identity scales take the exact integer path below — a wired but
		// inactive drift plane emits bit-identical bubbles.
		dscale, mscale := 1.0, 1.0
		if drift != nil {
			dscale, mscale = drift.ScaleAt(sp.Stage, ts)
		}
		mem := sp.MemAvailable
		if mscale != 1 {
			mem = int64(float64(mem) * mscale)
		}
		for _, tpl := range sp.Templates {
			dur := tpl.Duration
			if dscale != 1 {
				dur = time.Duration(float64(dur) * dscale)
			}
			d := dur - r.safety
			if d <= 0 {
				continue
			}
			sink(Bubble{
				Stage:        tpl.Stage,
				Type:         tpl.Type,
				Start:        ts + tpl.Offset,
				Duration:     d,
				MemAvailable: mem,
			})
		}
	}
}
