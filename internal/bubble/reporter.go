package bubble

import (
	"sync"
	"time"

	"freeride/internal/pipeline"
)

// Reporter is the runtime half of the instrumentation: at every epoch start
// it stamps the profiled templates into concrete Bubbles and delivers them
// to a sink (the side task manager, over RPC in the full system). This
// matches the paper's design where DeepSpeed is instrumented to report the
// start timestamp and duration of each bubble (§3.2, §4.6).
type Reporter struct {
	profile *Profile
	// safety shrinks every reported duration: the manager then pauses side
	// tasks slightly before the training op really needs the GPU.
	safety time.Duration

	mu   sync.Mutex
	sink func(Bubble)
}

// NewReporter builds a reporter from an offline profile. The safety margin
// is subtracted from each bubble's duration (clamped at zero).
func NewReporter(profile *Profile, safety time.Duration) *Reporter {
	return &Reporter{profile: profile, safety: safety}
}

// SetSink installs the bubble consumer (engine-callback context).
func (r *Reporter) SetSink(sink func(Bubble)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = sink
}

// Attach hooks the reporter to a trainer's epoch-start instrumentation
// point.
func (r *Reporter) Attach(tr *pipeline.Trainer) {
	tr.OnEpochStart(func(epoch int, ts time.Duration) {
		r.EmitEpoch(ts)
	})
}

// EmitEpoch stamps and delivers all profiled bubbles for an epoch starting
// at ts.
func (r *Reporter) EmitEpoch(ts time.Duration) {
	r.mu.Lock()
	sink := r.sink
	r.mu.Unlock()
	if sink == nil {
		return
	}
	for _, sp := range r.profile.Stages {
		for _, tpl := range sp.Templates {
			d := tpl.Duration - r.safety
			if d <= 0 {
				continue
			}
			sink(Bubble{
				Stage:        tpl.Stage,
				Type:         tpl.Type,
				Start:        ts + tpl.Offset,
				Duration:     d,
				MemAvailable: sp.MemAvailable,
			})
		}
	}
}
