package bubble

import (
	"fmt"
	"time"

	"freeride/internal/pipeline"
)

// ProfileFromTraces recovers the bubble profile from the training clients'
// SM-occupancy traces instead of the op log — the way the paper's profiler
// actually works (it watches the PyTorch profiler's estimated SM occupancy,
// §4.3). Gaps below the occupancy threshold are bubbles; classification
// uses only their position: epoch-boundary gaps are Type-A, the first
// mid-epoch gap after the warmup block is Type-B, the rest are Type-C.
//
// It exists alongside ProfileTrainer (op-log based) so the two
// implementations can cross-validate each other.
func ProfileFromTraces(tr *pipeline.Trainer, epoch int, minBubble time.Duration) (*Profile, error) {
	if minBubble <= 0 {
		minBubble = MinBubble
	}
	starts, ends := tr.EpochTimes()
	if epoch < 0 || epoch >= len(ends) {
		return nil, fmt.Errorf("bubble: epoch %d not completed (have %d)", epoch, len(ends))
	}
	epochStart, epochEnd := starts[epoch], ends[epoch]
	cfg := tr.Config()

	prof := &Profile{EpochSpan: epochEnd - epochStart}
	for s := 0; s < cfg.Stages; s++ {
		occ := tr.Client(s).OccTrace()
		gaps := occ.Below(0.05, epochStart, epochEnd)
		sp := StageProfile{Stage: s}
		sp.MemAvailable = tr.Device(s).MemBytes() -
			cfg.Model.StageMemUsedSched(cfg.Schedule, s, cfg.Stages,
				cfg.MicroBatches, cfg.VirtualPerStage)

		seenMid := false
		for _, gap := range gaps {
			d := gap.Duration()
			if d < minBubble {
				continue
			}
			typ := TypeC
			switch {
			case gap.Start <= epochStart+time.Millisecond || gap.End >= epochEnd-time.Millisecond:
				typ = TypeA
			case !seenMid:
				typ = TypeB
				seenMid = true
			}
			sp.Templates = append(sp.Templates, Template{
				Stage:    s,
				Type:     typ,
				Offset:   gap.Start - epochStart,
				Duration: d,
			})
			sp.BubbleTime += d
		}
		prof.Stages = append(prof.Stages, sp)
	}
	return prof, nil
}
