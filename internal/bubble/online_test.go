package bubble

import (
	"testing"
	"time"
)

// feedWindow delivers one complete window — `reports` reports of `per`
// each — and returns the detector's verdict on the closing report,
// asserting mid-window reports stay silent.
func feedWindow(t *testing.T, e *Estimator, per time.Duration, reports int) Drift {
	t.Helper()
	for i := 0; i < reports-1; i++ {
		if d := e.Observe(per); d != DriftNone {
			t.Fatalf("mid-window report %d fired %v", i, d)
		}
	}
	return e.Observe(per)
}

// TestEstimatorZeroDriftExactSilence pins the oracle contract: a window
// stream that exactly reproduces the baseline every epoch never moves the
// estimator — no detection, no drift flag, estimate bit-equal to the
// profile. The per-report durations vary; only the window sum matters.
func TestEstimatorZeroDriftExactSilence(t *testing.T) {
	e := NewEstimator(DetectorConfig{}, 4*time.Second, 4)
	reports := []time.Duration{
		700 * time.Millisecond, 1300 * time.Millisecond,
		900 * time.Millisecond, 1100 * time.Millisecond,
	}
	for w := 0; w < 50; w++ {
		for i, d := range reports {
			if got := e.Observe(d); got != DriftNone {
				t.Fatalf("window %d report %d fired %v under zero drift", w, i, got)
			}
		}
	}
	if e.Drifted() {
		t.Error("Drifted() true under zero drift")
	}
	if e.ShrinkSuspected() {
		t.Error("ShrinkSuspected() true under zero drift")
	}
	if got := e.Estimate(); got != 4*time.Second {
		t.Errorf("Estimate() = %v, want exactly 4s", got)
	}
	if got := e.MeanBubble(); got != time.Second {
		t.Errorf("MeanBubble() = %v, want exactly 1s", got)
	}
	if e.Windows() != 50 {
		t.Errorf("Windows() = %d, want 50", e.Windows())
	}
}

// TestEstimatorDetectsShrinkAndSnaps: a sustained 50% supply drop fires the
// default detector on the second drifted window, and the estimate snaps to
// the observed level at detection (no EWMA lag for the re-planner to fight).
func TestEstimatorDetectsShrinkAndSnaps(t *testing.T) {
	e := NewEstimator(DetectorConfig{}, 4*time.Second, 4)
	for w := 0; w < 2; w++ {
		feedWindow(t, e, time.Second, 4)
	}
	if got := feedWindow(t, e, 500*time.Millisecond, 4); got != DriftNone {
		t.Fatalf("first drifted window fired %v; default detector needs two", got)
	}
	if !e.ShrinkSuspected() {
		t.Error("accumulated negative CUSUM mass should flag ShrinkSuspected")
	}
	if got := feedWindow(t, e, 500*time.Millisecond, 4); got != DriftShrink {
		t.Fatalf("second drifted window fired %v, want shrink", got)
	}
	if !e.Drifted() || !e.ShrinkSuspected() {
		t.Error("post-detection flags: Drifted/ShrinkSuspected must hold")
	}
	if got := e.Estimate(); got != 2*time.Second {
		t.Errorf("Estimate() = %v, want exactly 2s (snap to observed)", got)
	}
	if got := e.MeanBubble(); got != 500*time.Millisecond {
		t.Errorf("MeanBubble() = %v, want exactly 500ms", got)
	}
	if got := e.Baseline(); got != 2*time.Second {
		t.Errorf("Baseline() = %v, want re-based to 2s", got)
	}
}

// TestEstimatorGrowDetection: a doubled supply fires grow on the first
// eligible window with the default thresholds.
func TestEstimatorGrowDetection(t *testing.T) {
	e := NewEstimator(DetectorConfig{}, 4*time.Second, 4)
	for w := 0; w < 2; w++ {
		feedWindow(t, e, time.Second, 4)
	}
	if got := feedWindow(t, e, 2*time.Second, 4); got != DriftGrow {
		t.Fatalf("doubled window fired %v, want grow", got)
	}
	if e.ShrinkSuspected() {
		t.Error("grow detection must not flag ShrinkSuspected")
	}
	if got := e.Estimate(); got != 8*time.Second {
		t.Errorf("Estimate() = %v, want exactly 8s", got)
	}
}

// TestEstimatorLatencyBounds pins the two sweep presets against a 50%
// shrink: the fast detector fires within its first drifted window, the slow
// one needs several consistent windows and fires strictly later.
func TestEstimatorLatencyBounds(t *testing.T) {
	latency := func(cfg DetectorConfig, warmup int) int {
		e := NewEstimator(cfg, 4*time.Second, 4)
		for w := 0; w < warmup; w++ {
			feedWindow(t, e, time.Second, 4)
		}
		for w := 1; w <= 10; w++ {
			if feedWindow(t, e, 500*time.Millisecond, 4) == DriftShrink {
				return w
			}
		}
		return -1
	}
	fast := latency(FastDetector(), 1)
	slow := latency(SlowDetector(), 3)
	if fast != 1 {
		t.Errorf("fast detector latency = %d windows, want 1", fast)
	}
	if slow < 3 || slow > 6 {
		t.Errorf("slow detector latency = %d windows, want within [3, 6]", slow)
	}
	if fast >= slow {
		t.Errorf("fast (%d) must fire strictly before slow (%d)", fast, slow)
	}
}

// TestEstimatorNoFlapOnOutlier: one jittery window 45% off baseline stays
// under the default threshold and the slack dead-band drains the residue —
// a single outlier epoch never triggers a re-plan.
func TestEstimatorNoFlapOnOutlier(t *testing.T) {
	e := NewEstimator(DetectorConfig{}, 4*time.Second, 4)
	for w := 0; w < 2; w++ {
		feedWindow(t, e, time.Second, 4)
	}
	if got := feedWindow(t, e, 1450*time.Millisecond, 4); got != DriftNone {
		t.Fatalf("single outlier window fired %v", got)
	}
	for w := 0; w < 12; w++ {
		if got := feedWindow(t, e, time.Second, 4); got != DriftNone {
			t.Fatalf("baseline window %d after outlier fired %v", w, got)
		}
	}
	if e.Drifted() {
		t.Error("one outlier must not mark the estimator drifted")
	}
}

// TestEstimatorHysteresisQuietAfterFire: after a detection the estimator is
// re-based and held quiet, so a steady post-drift stream produces exactly
// one firing — and a second genuine shift fires again.
func TestEstimatorHysteresisQuietAfterFire(t *testing.T) {
	e := NewEstimator(FastDetector(), 4*time.Second, 4)
	feedWindow(t, e, time.Second, 4)
	fires := 0
	for w := 0; w < 8; w++ {
		if feedWindow(t, e, 500*time.Millisecond, 4) != DriftNone {
			fires++
		}
	}
	if fires != 1 {
		t.Errorf("steady post-drift stream fired %d times, want exactly 1", fires)
	}
	for w := 0; w < 8; w++ {
		if feedWindow(t, e, 250*time.Millisecond, 4) != DriftNone {
			fires++
		}
	}
	if fires != 2 {
		t.Errorf("second level shift: %d total fires, want 2", fires)
	}
}

// TestEstimatorRebase: a pushed profile update replaces the baseline,
// marks the estimator drifted, and holds the detector quiet while the
// stream settles onto the pushed level.
func TestEstimatorRebase(t *testing.T) {
	e := NewEstimator(DetectorConfig{}, 4*time.Second, 4)
	feedWindow(t, e, time.Second, 4)
	e.Rebase(8*time.Second, 2)
	if !e.Drifted() {
		t.Error("Rebase must mark the estimator drifted")
	}
	if e.ShrinkSuspected() {
		t.Error("Rebase must clear shrink evidence")
	}
	if got := e.Baseline(); got != 8*time.Second {
		t.Errorf("Baseline() = %v, want 8s", got)
	}
	if got := e.MeanBubble(); got != 4*time.Second {
		t.Errorf("MeanBubble() = %v, want 4s (8s over 2 reports)", got)
	}
	// The stream now matches the pushed profile: no further firings.
	for w := 0; w < 6; w++ {
		if got := feedWindow(t, e, 4*time.Second, 2); got != DriftNone {
			t.Fatalf("window %d after rebase fired %v", w, got)
		}
	}
}

// TestDriftKindDetectionLatency closes the loop between the drift generator
// and the detector: for every kind, scaling the home stage's window sums by
// the Drifter's own ScaleAt must fire the fast detector within one epoch of
// the event activating, in the shrink direction (each sweep kind shrinks
// the home stage).
func TestDriftKindDetectionLatency(t *testing.T) {
	const home = 1
	epoch := 4 * time.Second
	for _, kind := range AllDriftKinds() {
		ev := DriftEvent{At: 10 * epoch, Kind: kind, Stage: home, Magnitude: 1}
		if kind == DriftFreeze {
			ev.Stage = 2 // freezing another stage shrinks the home stage
		}
		if kind == DriftStraggler {
			ev.Window = 20 * epoch
		}
		d := NewDrifter(&DriftSchedule{Events: []DriftEvent{ev}}, 4)
		e := NewEstimator(FastDetector(), epoch, 4)
		fired, lat := Drift(DriftNone), 0
		for w := 0; w < 15 && fired == DriftNone; w++ {
			now := time.Duration(w) * epoch
			scale, _ := d.ScaleAt(home, now)
			if scale != 1 {
				lat++
			}
			fired = feedWindow(t, e, time.Duration(float64(epoch/4)*scale), 4)
		}
		if fired != DriftShrink {
			t.Errorf("%v: detector fired %v, want shrink", kind, fired)
		}
		if lat != 1 {
			t.Errorf("%v: detection latency %d drifted epochs, want 1", kind, lat)
		}
	}
}
