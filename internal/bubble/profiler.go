package bubble

import (
	"fmt"
	"time"

	"freeride/internal/pipeline"
)

// MinBubble is the default minimum gap treated as a bubble; smaller gaps
// (communication hiccups) are not worth a side-task state transition.
const MinBubble = 20 * time.Millisecond

// ProfileTrainer extracts the per-stage bubble profile from a completed
// (RecordOps-enabled) training epoch. This implements the paper's offline
// bubble profiling: run the pipeline once under the profiler, measure each
// bubble's duration and available GPU memory, keyed to the epoch period
// (§4.3).
func ProfileTrainer(tr *pipeline.Trainer, epoch int, minBubble time.Duration) (*Profile, error) {
	if minBubble <= 0 {
		minBubble = MinBubble
	}
	starts, ends := tr.EpochTimes()
	if epoch < 0 || epoch >= len(ends) {
		return nil, fmt.Errorf("bubble: epoch %d not completed (have %d)", epoch, len(ends))
	}
	epochStart, epochEnd := starts[epoch], ends[epoch]
	cfg := tr.Config()

	prof := &Profile{EpochSpan: epochEnd - epochStart}
	for s := 0; s < cfg.Stages; s++ {
		log := opsInWindow(tr.OpLog(s), epochStart, epochEnd)
		if len(log) == 0 {
			return nil, fmt.Errorf("bubble: stage %d has no recorded ops (RecordOps off?)", s)
		}
		sp := StageProfile{Stage: s}
		sp.MemAvailable = tr.Device(s).MemBytes() -
			cfg.Model.StageMemUsedSched(cfg.Schedule, s, cfg.Stages,
				cfg.MicroBatches, cfg.VirtualPerStage)

		add := func(from, to time.Duration, typ Type) {
			d := to - from
			if d < minBubble {
				return
			}
			sp.Templates = append(sp.Templates, Template{
				Stage:    s,
				Type:     typ,
				Offset:   from - epochStart,
				Duration: d,
			})
			sp.BubbleTime += d
		}

		// Lead-in gap: Type-A (cascading forward dependency).
		add(epochStart, log[0].Start, TypeA)
		// Gaps between consecutive ops. The schedule-agnostic Type-B rule:
		// the first mid-epoch gap sitting between a forward and the stage's
		// first activation-gradient backward is the warmup-to-steady-state
		// wait. For 1F1B and GPipe this picks exactly the gap the historic
		// fpSeen==warmup rule did (no F→F gap clears minBubble before the
		// first backward — upstream feeds warmup forwards every FPPerMB,
		// leaving only sub-minBubble comm gaps); chunk-multiplexed and B/W
		// logs need no per-kind warmup table.
		bpSeen := false
		for i := 0; i+1 < len(log); i++ {
			next := log[i+1].Op.Kind
			nextBP := next == pipeline.OpBackward || next == pipeline.OpBackwardInput
			typ := TypeC
			if !bpSeen && nextBP && log[i].Op.Kind == pipeline.OpForward {
				// The warmup-to-first-backward wait: Type-B.
				typ = TypeB
			}
			if nextBP {
				bpSeen = true
			}
			add(log[i].End, log[i+1].Start, typ)
		}
		// Tail gap: Type-A (cascading backward dependency).
		add(log[len(log)-1].End, epochEnd, TypeA)

		prof.Stages = append(prof.Stages, sp)
	}
	return prof, nil
}

func opsInWindow(log []pipeline.OpSpan, t0, t1 time.Duration) []pipeline.OpSpan {
	var out []pipeline.OpSpan
	for _, span := range log {
		if span.Start >= t0 && span.End <= t1 {
			out = append(out, span)
		}
	}
	return out
}
