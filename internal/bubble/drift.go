package bubble

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Bubble-trace drift: seeded, virtual-time schedules that reshape the
// reported bubble profile mid-run, the way real training pipelines change
// shape online (TimelyFreeze-style parameter freezing, elastic micro-batch
// resizing, stage rebalancing, stragglers). A DriftSchedule composes with
// the reporter exactly like simfault.Schedule composes with the fault
// hooks: nil means no drift plane at all, an empty schedule wires the
// plane with identity scaling (the zero-drift oracle arm), and events act
// on the engine clock only — never wall time — so same-seed runs are
// bit-identical.

// DriftKind enumerates the supported drift families.
type DriftKind int

const (
	// DriftFreeze models parameter freezing: the frozen stage stops doing
	// backward work, so its own bubbles GROW by (1+Magnitude) while every
	// other stage's bubbles shrink by the same factor (the pipeline
	// re-packs around the idle stage). Frozen-stage memory grows mildly
	// (activations for the frozen layers are no longer kept).
	DriftFreeze DriftKind = iota + 1
	// DriftResize models elastic micro-batch resizing: more micro-batches
	// over the same global batch shrink every stage's bubbles by
	// 1/(1+Magnitude) and per-stage free memory by 1/(1+Magnitude/4).
	// A negative magnitude grows them (fewer micro-batches).
	DriftResize
	// DriftRebalance models a stage re-partition: the named stage sheds
	// layers (bubbles shrink by 1/(1+Magnitude)) and its successor absorbs
	// them (bubbles grow by (1+Magnitude)). Memory is unchanged — the
	// optimizer state moves with the layers, roughly cancelling.
	DriftRebalance
	// DriftStraggler models a straggler/preemption window: the named stage
	// slows down, so its own bubbles shrink by 1/(1+Magnitude) while every
	// stage waiting on it inflates by (1+Magnitude). Straggler events are
	// windowed (Window > 0) — the pipeline recovers when the straggler
	// does.
	DriftStraggler

	driftKindMax = DriftStraggler
)

// String names the kind the way the experiment tables do.
func (k DriftKind) String() string {
	switch k {
	case DriftFreeze:
		return "freeze-stage"
	case DriftResize:
		return "resize-microbatch"
	case DriftRebalance:
		return "rebalance-stages"
	case DriftStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("drift(%d)", int(k))
	}
}

// ParseDriftKind is String's inverse.
func ParseDriftKind(s string) (DriftKind, error) {
	for k := DriftKind(1); k <= driftKindMax; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("bubble: unknown drift kind %q", s)
}

// AllDriftKinds lists every kind in declaration order.
func AllDriftKinds() []DriftKind {
	out := make([]DriftKind, 0, int(driftKindMax))
	for k := DriftKind(1); k <= driftKindMax; k++ {
		out = append(out, k)
	}
	return out
}

// DriftEvent is one profile reshape on the virtual clock.
type DriftEvent struct {
	// At is the engine time the drift takes effect.
	At time.Duration
	// Kind selects the drift family.
	Kind DriftKind
	// Stage targets the affected stage (ignored by DriftResize).
	Stage int
	// Magnitude is the drift strength f: affected durations scale by
	// (1+f) or 1/(1+f) per kind. Values are clamped so 1+f stays >= 1/8.
	Magnitude float64
	// Window bounds windowed kinds (straggler); 0 means permanent.
	Window time.Duration
	// MicroBatches, for DriftResize only, carries the actual new per-epoch
	// micro-batch count: with it set (> 0) the schedule layer regenerates
	// the real op lists from the event's At time onward (the drift→schedule
	// regeneration hook), instead of only scaling the reported trace via
	// Magnitude. 0 keeps the report-scaling-only behaviour.
	MicroBatches int
}

// DriftSchedule is a seeded list of drift events. The zero value (empty
// schedule) wires the drift plane with identity scaling.
type DriftSchedule struct {
	Seed   int64
	Events []DriftEvent
}

// GenerateDrift builds a reproducible random schedule: n events over
// [0,horizon], drawn from kinds (nil = all kinds) across `stages` pipeline
// stages. Magnitudes are drawn from {0.5, 1.0, ..., 3.0}; straggler
// windows span [horizon/8, horizon/4).
func GenerateDrift(seed int64, horizon time.Duration, n int, kinds []DriftKind, stages int) *DriftSchedule {
	if len(kinds) == 0 {
		kinds = AllDriftKinds()
	}
	if stages < 1 {
		stages = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &DriftSchedule{Seed: seed}
	for i := 0; i < n; i++ {
		ev := DriftEvent{
			At:        time.Duration(rng.Int63n(int64(horizon) + 1)),
			Kind:      kinds[rng.Intn(len(kinds))],
			Stage:     rng.Intn(stages),
			Magnitude: 0.5 + 0.5*float64(rng.Intn(6)),
		}
		if ev.Kind == DriftStraggler {
			lo := int64(horizon) / 8
			ev.Window = time.Duration(lo + rng.Int63n(lo+1))
		}
		s.Events = append(s.Events, ev)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

// Drift-scale clamps: composed duration scales stay within [1/64, 64] and
// memory scales within [1/8, 8], so no composition of events can zero a
// stage out or overflow it.
const (
	minDurScale = 1.0 / 64
	maxDurScale = 64.0
	minMemScale = 1.0 / 8
	maxMemScale = 8.0
)

// Drifter evaluates a schedule: given a stage and the current engine time
// it yields the duration and memory scale factors for that stage's
// reported bubbles, composing all active events multiplicatively. A nil
// Drifter (or one over an empty schedule) is the identity — ScaleAt
// returns exactly (1, 1) with no floating-point work, which is what keeps
// the zero-drift oracle bit-identical.
type Drifter struct {
	events []DriftEvent
	stages int
}

// NewDrifter compiles a schedule for a `stages`-stage pipeline. Events are
// evaluated in At order; the schedule is copied and re-sorted defensively.
func NewDrifter(s *DriftSchedule, stages int) *Drifter {
	d := &Drifter{stages: stages}
	if s != nil {
		d.events = append(d.events, s.Events...)
		sort.SliceStable(d.events, func(i, j int) bool { return d.events[i].At < d.events[j].At })
	}
	return d
}

// ScaleAt reports the (duration, memory) scale factors for stage at engine
// time now. Inactive schedules return exactly (1, 1).
func (d *Drifter) ScaleAt(stage int, now time.Duration) (dur, mem float64) {
	dur, mem = 1, 1
	if d == nil {
		return
	}
	for i := range d.events {
		ev := &d.events[i]
		if ev.At > now {
			break // sorted: nothing later is active
		}
		if ev.Window > 0 && now >= ev.At+ev.Window {
			continue
		}
		f := ev.Magnitude
		if f < -0.875 {
			f = -0.875 // keep 1+f >= 1/8
		}
		g := 1 + f
		switch ev.Kind {
		case DriftFreeze:
			if stage == ev.Stage {
				dur *= g
				mem *= 1 + f/4
			} else {
				dur /= g
			}
		case DriftResize:
			dur /= g
			mem /= 1 + f/4
		case DriftRebalance:
			if stage == ev.Stage {
				dur /= g
			} else if d.stages > 0 && stage == (ev.Stage+1)%d.stages {
				dur *= g
			}
		case DriftStraggler:
			if stage == ev.Stage {
				dur /= g
			} else {
				dur *= g
			}
		}
	}
	if dur < minDurScale {
		dur = minDurScale
	} else if dur > maxDurScale {
		dur = maxDurScale
	}
	if mem < minMemScale {
		mem = minMemScale
	} else if mem > maxMemScale {
		mem = maxMemScale
	}
	return
}
