// Package bubble defines bubble records, recovers per-stage bubble shapes
// from an instrumented profiling run (paper §4.3 "Profiling bubbles"), and
// re-emits them at runtime anchored to epoch starts (the analog of the
// paper's 55-line DeepSpeed instrumentation, §4.6).
//
// Classification follows paper §2.2.1:
//
//   - Type-A: at the start/end of an epoch, from the cascading FP (start)
//     and BP (end) dependencies; absent at stage 0 (start) / tail stages.
//   - Type-B: mid-epoch, between the warmup forwards and the first
//     backward, caused by the round trip to the last stage.
//   - Type-C: the remaining small mid-epoch gaps from unaligned FP/BP.
package bubble

import (
	"fmt"
	"time"
)

// Type is the bubble category.
type Type int

// Bubble categories of paper §2.2.1.
const (
	TypeA Type = iota + 1
	TypeB
	TypeC
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeB:
		return "B"
	case TypeC:
		return "C"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Bubble is one concrete idle period on one stage's GPU.
type Bubble struct {
	Stage    int
	Type     Type
	Start    time.Duration // absolute engine time
	Duration time.Duration
	// MemAvailable is the device memory not used by training during this
	// bubble (constant within a stage, paper §2.2.1).
	MemAvailable int64
}

// End reports Start+Duration.
func (b Bubble) End() time.Duration { return b.Start + b.Duration }

// Template is a bubble shape anchored to the epoch start; the profiler
// extracts templates once and the reporter stamps them into Bubbles each
// epoch ("bubbles have the same characteristics during training, as epochs
// are repetitive and stable", paper §2.2.1).
type Template struct {
	Stage    int
	Type     Type
	Offset   time.Duration // from epoch start
	Duration time.Duration
}

// StageProfile aggregates one stage's bubble shape.
type StageProfile struct {
	Stage        int
	Templates    []Template
	MemAvailable int64
	// BubbleTime is the summed template duration per epoch.
	BubbleTime time.Duration
}

// Profile is the result of offline bubble profiling for one (model,
// schedule, hardware) combination.
type Profile struct {
	EpochSpan time.Duration
	Stages    []StageProfile
}

// TotalBubbleTime sums bubble time across stages for one epoch.
func (p *Profile) TotalBubbleTime() time.Duration {
	var sum time.Duration
	for _, s := range p.Stages {
		sum += s.BubbleTime
	}
	return sum
}

// BubbleRate reports mean per-stage bubble time over the epoch span
// (the paper's "bubble rate", §2.2.2).
func (p *Profile) BubbleRate() float64 {
	if p.EpochSpan <= 0 || len(p.Stages) == 0 {
		return 0
	}
	mean := float64(p.TotalBubbleTime()) / float64(len(p.Stages))
	return mean / float64(p.EpochSpan)
}

// Durations returns all template durations (for the Figure-2 distribution).
func (p *Profile) Durations() []time.Duration {
	var out []time.Duration
	for _, s := range p.Stages {
		for _, t := range s.Templates {
			out = append(out, t.Duration)
		}
	}
	return out
}
