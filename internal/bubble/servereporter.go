package bubble

import (
	"sync"
	"time"
)

// ServeReporter is the request-driven bubble reporter of the serving
// workload. Where the training Reporter replays a profiled per-epoch
// template, serving bubbles are gated by arrivals, so the reporter emits
// them per batch from the closed forms plus a causal prediction:
//
//   - At batch dispatch: each stage's fill bubble (TypeA — idle until its
//     first micro-batch cascades in) and drain bubble (TypeB — idle after
//     its last micro-batch leaves, anchored at span−drain).
//   - At batch drain: a per-stage inter-batch gap bubble (TypeC) whose
//     duration is an EWMA over the previously observed drain→dispatch
//     gaps. The prediction is causal — the reporter never peeks at the
//     arrival trace — so a burst arriving earlier than predicted leaves
//     side tasks running into the next batch's compute. That contention is
//     exactly the p99 tension the manager's SLO admission guard trades
//     against harvest.
//
// A safety margin shrinks every emitted duration, like the training
// reporter's.
type ServeReporter struct {
	fill     []time.Duration
	drain    []time.Duration
	span     time.Duration
	memAvail []int64
	safety   time.Duration

	mu      sync.Mutex
	sink    func(Bubble)
	lastEnd time.Duration
	haveEnd bool
	gapEWMA time.Duration
	haveGap bool
}

// gapAlpha is the EWMA weight of the newest observed inter-batch gap.
const gapAlpha = 0.5

// NewServeReporter builds a reporter from the per-stage closed forms: fill
// and drain idle times, the batch span, and the serving memory headroom.
func NewServeReporter(fill, drain []time.Duration, span time.Duration, memAvail []int64, safety time.Duration) *ServeReporter {
	return &ServeReporter{
		fill:     fill,
		drain:    drain,
		span:     span,
		memAvail: memAvail,
		safety:   safety,
	}
}

// SetSink installs the bubble consumer (the manager link).
func (r *ServeReporter) SetSink(fn func(Bubble)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = fn
}

// BatchStart observes a batch dispatch: folds the realized drain→dispatch
// gap into the predictor and emits the batch's fill and drain bubbles.
func (r *ServeReporter) BatchStart(ts time.Duration) {
	r.mu.Lock()
	if r.haveEnd {
		gap := ts - r.lastEnd
		if gap < 0 {
			gap = 0
		}
		if !r.haveGap {
			r.gapEWMA = gap
			r.haveGap = true
		} else {
			r.gapEWMA = time.Duration(gapAlpha*float64(gap) + (1-gapAlpha)*float64(r.gapEWMA))
		}
	}
	sink := r.sink
	r.mu.Unlock()
	if sink == nil {
		return
	}
	for s := range r.fill {
		if d := r.fill[s] - r.safety; d > 0 {
			sink(Bubble{Stage: s, Type: TypeA, Start: ts, Duration: d, MemAvailable: r.memAvail[s]})
		}
		if d := r.drain[s] - r.safety; d > 0 {
			sink(Bubble{Stage: s, Type: TypeB, Start: ts + r.span - r.drain[s], Duration: d, MemAvailable: r.memAvail[s]})
		}
	}
}

// BatchEnd observes a batch drain: emits the predicted inter-batch gap as a
// TypeC bubble on every stage (no emission before the first gap has been
// observed — the predictor starts causal and empty).
func (r *ServeReporter) BatchEnd(ts time.Duration) {
	r.mu.Lock()
	r.lastEnd = ts
	r.haveEnd = true
	pred := r.gapEWMA
	have := r.haveGap
	sink := r.sink
	r.mu.Unlock()
	if sink == nil || !have {
		return
	}
	if d := pred - r.safety; d > 0 {
		for s := range r.fill {
			sink(Bubble{Stage: s, Type: TypeC, Start: ts, Duration: d, MemAvailable: r.memAvail[s]})
		}
	}
}
