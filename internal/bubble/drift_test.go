package bubble

import (
	"reflect"
	"testing"
	"time"
)

func TestGenerateDriftDeterministic(t *testing.T) {
	a := GenerateDrift(7, time.Minute, 16, nil, 4)
	b := GenerateDrift(7, time.Minute, 16, nil, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed schedules diverged:\n%+v\nvs\n%+v", a, b)
	}
	c := GenerateDrift(8, time.Minute, 16, nil, 4)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Errorf("different seeds produced identical schedules: %+v", a.Events)
	}
	for i, ev := range a.Events {
		if i > 0 && ev.At < a.Events[i-1].At {
			t.Errorf("events not sorted by At: %v after %v", ev.At, a.Events[i-1].At)
		}
		if ev.Kind < DriftFreeze || ev.Kind > driftKindMax {
			t.Errorf("event %d: kind %v out of range", i, ev.Kind)
		}
		if ev.Stage < 0 || ev.Stage >= 4 {
			t.Errorf("event %d: stage %d out of range", i, ev.Stage)
		}
		if ev.Magnitude < 0.5 || ev.Magnitude > 3.0 {
			t.Errorf("event %d: magnitude %v outside {0.5..3.0}", i, ev.Magnitude)
		}
		if ev.Kind == DriftStraggler {
			if ev.Window < time.Minute/8 || ev.Window > time.Minute/4 {
				t.Errorf("event %d: straggler window %v outside [horizon/8, horizon/4]",
					i, ev.Window)
			}
		} else if ev.Window != 0 {
			t.Errorf("event %d: non-straggler kind %v has a window", i, ev.Kind)
		}
	}
}

func TestParseDriftKindRoundTrip(t *testing.T) {
	for _, k := range AllDriftKinds() {
		got, err := ParseDriftKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseDriftKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseDriftKind("nope"); err == nil {
		t.Error("ParseDriftKind accepted an unknown kind")
	}
}

// TestDrifterIdentityExact pins the zero-drift oracle's foundation: a nil
// drifter, an empty schedule, and a not-yet-active event must all return
// exactly (1, 1) — no floating-point work at all.
func TestDrifterIdentityExact(t *testing.T) {
	var nilD *Drifter
	if dur, mem := nilD.ScaleAt(0, time.Hour); dur != 1 || mem != 1 {
		t.Errorf("nil drifter: (%v, %v), want exactly (1, 1)", dur, mem)
	}
	empty := NewDrifter(&DriftSchedule{Seed: 3}, 4)
	if dur, mem := empty.ScaleAt(2, time.Hour); dur != 1 || mem != 1 {
		t.Errorf("empty schedule: (%v, %v), want exactly (1, 1)", dur, mem)
	}
	future := NewDrifter(&DriftSchedule{Events: []DriftEvent{
		{At: 10 * time.Second, Kind: DriftResize, Magnitude: 1},
	}}, 4)
	if dur, mem := future.ScaleAt(0, 9*time.Second); dur != 1 || mem != 1 {
		t.Errorf("pre-event: (%v, %v), want exactly (1, 1)", dur, mem)
	}
}

func TestDrifterKindSemantics(t *testing.T) {
	at := 10 * time.Second
	cases := []struct {
		name  string
		ev    DriftEvent
		stage int
		dur   float64
		mem   float64
	}{
		{"freeze-self", DriftEvent{At: at, Kind: DriftFreeze, Stage: 1, Magnitude: 1}, 1, 2, 1.25},
		{"freeze-other", DriftEvent{At: at, Kind: DriftFreeze, Stage: 1, Magnitude: 1}, 0, 0.5, 1},
		{"resize", DriftEvent{At: at, Kind: DriftResize, Magnitude: 1}, 2, 0.5, 1 / 1.25},
		{"rebalance-self", DriftEvent{At: at, Kind: DriftRebalance, Stage: 1, Magnitude: 1}, 1, 0.5, 1},
		{"rebalance-successor", DriftEvent{At: at, Kind: DriftRebalance, Stage: 1, Magnitude: 1}, 2, 2, 1},
		{"rebalance-bystander", DriftEvent{At: at, Kind: DriftRebalance, Stage: 1, Magnitude: 1}, 3, 1, 1},
		{"rebalance-wraps", DriftEvent{At: at, Kind: DriftRebalance, Stage: 3, Magnitude: 1}, 0, 2, 1},
		{"straggler-self", DriftEvent{At: at, Kind: DriftStraggler, Stage: 1, Magnitude: 1, Window: 5 * time.Second}, 1, 0.5, 1},
		{"straggler-waiter", DriftEvent{At: at, Kind: DriftStraggler, Stage: 1, Magnitude: 1, Window: 5 * time.Second}, 3, 2, 1},
	}
	for _, tc := range cases {
		d := NewDrifter(&DriftSchedule{Events: []DriftEvent{tc.ev}}, 4)
		if dur, mem := d.ScaleAt(tc.stage, at); dur != tc.dur || mem != tc.mem {
			t.Errorf("%s: (%v, %v), want (%v, %v)", tc.name, dur, mem, tc.dur, tc.mem)
		}
	}
}

func TestDrifterWindowExpiry(t *testing.T) {
	d := NewDrifter(&DriftSchedule{Events: []DriftEvent{
		{At: 10 * time.Second, Kind: DriftStraggler, Stage: 0, Magnitude: 1, Window: 5 * time.Second},
	}}, 4)
	if dur, _ := d.ScaleAt(0, 14*time.Second); dur != 0.5 {
		t.Errorf("inside window: dur %v, want 0.5", dur)
	}
	// Window end is exclusive: at At+Window the pipeline has recovered and
	// the identity must be exact again.
	if dur, mem := d.ScaleAt(0, 15*time.Second); dur != 1 || mem != 1 {
		t.Errorf("after window: (%v, %v), want exactly (1, 1)", dur, mem)
	}
}

func TestDrifterComposesAndClamps(t *testing.T) {
	// Two stacked resizes compose multiplicatively.
	two := NewDrifter(&DriftSchedule{Events: []DriftEvent{
		{At: 0, Kind: DriftResize, Magnitude: 1},
		{At: time.Second, Kind: DriftResize, Magnitude: 1},
	}}, 4)
	if dur, _ := two.ScaleAt(0, time.Second); dur != 0.25 {
		t.Errorf("composed dur %v, want 0.25", dur)
	}
	// Eight stacked max-magnitude freezes would scale duration 4^8 and
	// memory 1.75^8; the clamps cap them.
	var evs []DriftEvent
	for i := 0; i < 8; i++ {
		evs = append(evs, DriftEvent{Kind: DriftFreeze, Stage: 0, Magnitude: 3})
	}
	big := NewDrifter(&DriftSchedule{Events: evs}, 4)
	if dur, mem := big.ScaleAt(0, time.Second); dur != maxDurScale || mem != maxMemScale {
		t.Errorf("clamped high: (%v, %v), want (%v, %v)", dur, mem, maxDurScale, maxMemScale)
	}
	if dur, mem := big.ScaleAt(1, time.Second); dur != minDurScale || mem != 1 {
		t.Errorf("clamped low: (%v, %v), want (%v, 1)", dur, mem, minDurScale)
	}
	// A magnitude below -0.875 is clamped so 1+f stays >= 1/8.
	neg := NewDrifter(&DriftSchedule{Events: []DriftEvent{
		{Kind: DriftResize, Magnitude: -0.99},
	}}, 4)
	if dur, _ := neg.ScaleAt(0, time.Second); dur != 8 {
		t.Errorf("negative-magnitude clamp: dur %v, want 8", dur)
	}
}
