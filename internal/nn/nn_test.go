package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r := int(rows%6) + 1
		c := int(cols%6) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		back := Transpose(Transpose(m))
		for i := range m.Data {
			if back.Data[i] != m.Data[i] {
				return false
			}
		}
		return back.Rows == r && back.Cols == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := NewMatrix(1, 4)
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln(4)", loss)
	}
	// Gradient: softmax - onehot = 0.25 everywhere except -0.75 at label.
	for j := 0; j < 4; j++ {
		want := 0.25
		if j == 2 {
			want = -0.75
		}
		if math.Abs(grad.At(0, j)-want) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", j, grad.At(0, j), want)
		}
	}
}

func TestSoftmaxCrossEntropyBadLabel(t *testing.T) {
	logits := NewMatrix(1, 3)
	if _, _, err := SoftmaxCrossEntropy(logits, []int{7}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 1}); err == nil {
		t.Fatal("label-count mismatch accepted")
	}
}

// Numerical gradient check: the analytic dL/dW of a Dense layer matches
// finite differences.
func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	layer := NewDense(5, 3, rng)
	x := NewMatrix(4, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int{0, 1, 2, 1}

	lossAt := func() float64 {
		out, err := layer.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		loss, _, err := SoftmaxCrossEntropy(out, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	// Analytic gradients.
	out, _ := layer.Forward(x)
	_, grad, _ := SoftmaxCrossEntropy(out, labels)
	if _, err := layer.Backward(grad); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-6
	for _, idx := range []int{0, 3, 7, 14} {
		orig := layer.W.Data[idx]
		layer.W.Data[idx] = orig + eps
		up := lossAt()
		layer.W.Data[idx] = orig - eps
		down := lossAt()
		layer.W.Data[idx] = orig
		numeric := (up - down) / (2 * eps)
		analytic := layer.GradW.Data[idx]
		if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("grad W[%d]: analytic %v vs numeric %v", idx, analytic, numeric)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := &ReLU{}
	x := &Matrix{Rows: 1, Cols: 4, Data: []float64{-1, 2, 0, 3}}
	out := r.Forward(x)
	want := []float64{0, 2, 0, 3}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("ReLU fwd = %v", out.Data)
		}
	}
	g := &Matrix{Rows: 1, Cols: 4, Data: []float64{5, 5, 5, 5}}
	back := r.Backward(g)
	wantG := []float64{0, 5, 0, 5}
	for i := range wantG {
		if back.Data[i] != wantG[i] {
			t.Fatalf("ReLU bwd = %v", back.Data)
		}
	}
}

func TestTrainerLossDecreases(t *testing.T) {
	tr, err := NewTrainer([]int{16, 32, 4}, 512, 32, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	first, err := tr.TrainStep()
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		last, err = tr.TrainStep()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first*0.5 {
		t.Fatalf("loss did not halve: first=%.4f last=%.4f", first, last)
	}
	if tr.Steps() != 61 {
		t.Fatalf("Steps = %d, want 61", tr.Steps())
	}
}

func TestSGDMomentumMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(2, 2, rng)
	for i := range layer.GradW.Data {
		layer.GradW.Data[i] = 1.0
	}
	opt := NewSGD(0.1, 0.9)
	before := layer.W.Data[0]
	opt.Update(layer)
	step1 := before - layer.W.Data[0]
	opt.Update(layer)
	step2 := (before - step1) - layer.W.Data[0]
	if step2 <= step1 {
		t.Fatalf("momentum did not accelerate: step1=%v step2=%v", step1, step2)
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := NewMLP([]int{5}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("single-dim MLP accepted")
	}
}

func TestDatasetBatchShape(t *testing.T) {
	d := SyntheticDataset(100, 8, 3, 1)
	x, y := d.Batch(16)
	if x.Rows != 16 || x.Cols != 8 || len(y) != 16 {
		t.Fatalf("batch shape %dx%d/%d", x.Rows, x.Cols, len(y))
	}
	for _, label := range y {
		if label < 0 || label >= 3 {
			t.Fatalf("label %d out of range", label)
		}
	}
}

func BenchmarkTrainStep(b *testing.B) {
	tr, err := NewTrainer([]int{32, 64, 8}, 1024, 32, 0.005, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainStep(); err != nil {
			b.Fatal(err)
		}
	}
}
