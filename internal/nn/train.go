package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Optimizer updates a Dense layer from its accumulated gradients.
type Optimizer interface {
	Update(layer *Dense)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Dense]*sgdState
}

type sgdState struct {
	vW []float64
	vB []float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Dense]*sgdState)}
}

// Update applies one SGD step.
func (s *SGD) Update(layer *Dense) {
	st, ok := s.velocity[layer]
	if !ok {
		st = &sgdState{vW: make([]float64, len(layer.W.Data)), vB: make([]float64, len(layer.B))}
		s.velocity[layer] = st
	}
	for i := range layer.W.Data {
		st.vW[i] = s.Momentum*st.vW[i] - s.LR*layer.GradW.Data[i]
		layer.W.Data[i] += st.vW[i]
	}
	for i := range layer.B {
		st.vB[i] = s.Momentum*st.vB[i] - s.LR*layer.GradB[i]
		layer.B[i] += st.vB[i]
	}
}

// Adam is the Adam optimizer (the paper's side-task example uses Adam).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t     int
	state map[*Dense]*adamState
}

type adamState struct {
	mW, vW []float64
	mB, vB []float64
}

// NewAdam returns an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, state: make(map[*Dense]*adamState)}
}

// Update applies one Adam step. Callers must invoke it once per layer per
// optimization step; the bias-correction timestep advances per layer-set
// pass (call Tick once per step).
func (a *Adam) Update(layer *Dense) {
	st, ok := a.state[layer]
	if !ok {
		st = &adamState{
			mW: make([]float64, len(layer.W.Data)), vW: make([]float64, len(layer.W.Data)),
			mB: make([]float64, len(layer.B)), vB: make([]float64, len(layer.B)),
		}
		a.state[layer] = st
	}
	t := float64(a.t)
	if t < 1 {
		t = 1
	}
	c1 := 1 - math.Pow(a.Beta1, t)
	c2 := 1 - math.Pow(a.Beta2, t)
	for i := range layer.W.Data {
		g := layer.GradW.Data[i]
		st.mW[i] = a.Beta1*st.mW[i] + (1-a.Beta1)*g
		st.vW[i] = a.Beta2*st.vW[i] + (1-a.Beta2)*g*g
		layer.W.Data[i] -= a.LR * (st.mW[i] / c1) / (math.Sqrt(st.vW[i]/c2) + a.Eps)
	}
	for i := range layer.B {
		g := layer.GradB[i]
		st.mB[i] = a.Beta1*st.mB[i] + (1-a.Beta1)*g
		st.vB[i] = a.Beta2*st.vB[i] + (1-a.Beta2)*g*g
		layer.B[i] -= a.LR * (st.mB[i] / c1) / (math.Sqrt(st.vB[i]/c2) + a.Eps)
	}
}

// Tick advances Adam's bias-correction timestep; call once per train step.
func (a *Adam) Tick() { a.t++ }

// MLP is a multi-layer perceptron classifier.
type MLP struct {
	layers []*Dense
	relus  []*ReLU
}

// NewMLP builds layers sized dims[0] -> dims[1] -> ... -> dims[n-1].
func NewMLP(dims []int, rng *rand.Rand) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least 2 dims, got %v", dims)
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, NewDense(dims[i], dims[i+1], rng))
		if i+2 < len(dims) {
			m.relus = append(m.relus, &ReLU{})
		}
	}
	return m, nil
}

// Forward computes logits.
func (m *MLP) Forward(x *Matrix) (*Matrix, error) {
	h := x
	var err error
	for i, l := range m.layers {
		h, err = l.Forward(h)
		if err != nil {
			return nil, err
		}
		if i < len(m.relus) {
			h = m.relus[i].Forward(h)
		}
	}
	return h, nil
}

// Backward propagates the logits gradient through all layers.
func (m *MLP) Backward(grad *Matrix) error {
	g := grad
	var err error
	for i := len(m.layers) - 1; i >= 0; i-- {
		if i < len(m.relus) {
			g = m.relus[i].Backward(g)
		}
		g, err = m.layers[i].Backward(g)
		if err != nil {
			return err
		}
	}
	return nil
}

// Layers exposes the trainable layers for the optimizer.
func (m *MLP) Layers() []*Dense { return m.layers }

// Dataset is a synthetic classification problem with planted linear
// structure plus noise, standing in for the image datasets of the paper's
// training side tasks.
type Dataset struct {
	X       *Matrix
	Y       []int
	classes int
	rng     *rand.Rand
}

// SyntheticDataset generates n samples of dim features in k classes.
func SyntheticDataset(n, dim, k int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	proto := NewMatrix(k, dim)
	for i := range proto.Data {
		proto.Data[i] = rng.NormFloat64()
	}
	x := NewMatrix(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		y[i] = c
		for j := 0; j < dim; j++ {
			x.Set(i, j, proto.At(c, j)+0.3*rng.NormFloat64())
		}
	}
	return &Dataset{X: x, Y: y, classes: k, rng: rng}
}

// Batch samples a batch with replacement.
func (d *Dataset) Batch(size int) (*Matrix, []int) {
	x := NewMatrix(size, d.X.Cols)
	y := make([]int, size)
	for i := 0; i < size; i++ {
		idx := d.rng.Intn(d.X.Rows)
		copy(x.Data[i*x.Cols:(i+1)*x.Cols], d.X.Data[idx*d.X.Cols:(idx+1)*d.X.Cols])
		y[i] = d.Y[idx]
	}
	return x, y
}

// Trainer bundles model, data and optimizer into the step-wise workload the
// iterative interface wraps: one TrainStep = one batch forward + backward +
// update (exactly the loop in the paper's Figure 6).
type Trainer struct {
	model *MLP
	data  *Dataset
	opt   *Adam
	batch int
	steps int
	loss  float64
}

// NewTrainer assembles a training side-task workload.
func NewTrainer(dims []int, dataN, batch int, lr float64, seed int64) (*Trainer, error) {
	rng := rand.New(rand.NewSource(seed))
	m, err := NewMLP(dims, rng)
	if err != nil {
		return nil, err
	}
	return &Trainer{
		model: m,
		data:  SyntheticDataset(dataN, dims[0], dims[len(dims)-1], seed+1),
		opt:   NewAdam(lr),
		batch: batch,
	}, nil
}

// TrainStep runs one optimization step and returns the batch loss.
func (t *Trainer) TrainStep() (float64, error) {
	x, y := t.data.Batch(t.batch)
	logits, err := t.model.Forward(x)
	if err != nil {
		return 0, err
	}
	loss, grad, err := SoftmaxCrossEntropy(logits, y)
	if err != nil {
		return 0, err
	}
	if err := t.model.Backward(grad); err != nil {
		return 0, err
	}
	t.opt.Tick()
	for _, l := range t.model.Layers() {
		t.opt.Update(l)
	}
	t.steps++
	t.loss = loss
	return loss, nil
}

// Steps reports completed train steps.
func (t *Trainer) Steps() int { return t.steps }

// Loss reports the last batch loss.
func (t *Trainer) Loss() float64 { return t.loss }
