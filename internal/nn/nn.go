// Package nn is a small, real neural-network training substrate: dense
// layers, ReLU, softmax cross-entropy, SGD and Adam, over float64 matrices.
//
// The paper's model-training side tasks (ResNet18/50, VGG19) run real
// PyTorch training; reproducing cuDNN is out of scope here, so the
// side-task layer pairs the *calibrated GPU cost* of those CNNs (see
// internal/model) with *real* gradient-descent steps from this package on a
// proportional MLP. The step-wise structure — load batch, forward, loss,
// backward, optimizer update — is the part FreeRide's iterative interface
// depends on, and it is fully real.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes the element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MatMul computes a @ b.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("nn: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Dense is a fully connected layer with bias.
type Dense struct {
	W *Matrix // in x out
	B []float64

	// cached for backward
	lastIn *Matrix

	GradW *Matrix
	GradB []float64
}

// NewDense initializes with He-uniform weights from the seeded rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W:     NewMatrix(in, out),
		B:     make([]float64, out),
		GradW: NewMatrix(in, out),
		GradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.W.Data {
		d.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes x@W + b.
func (d *Dense) Forward(x *Matrix) (*Matrix, error) {
	out, err := MatMul(x, d.W)
	if err != nil {
		return nil, err
	}
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			out.Data[i*out.Cols+j] += d.B[j]
		}
	}
	d.lastIn = x
	return out, nil
}

// Backward accumulates parameter gradients and returns dL/dx.
func (d *Dense) Backward(gradOut *Matrix) (*Matrix, error) {
	xt := Transpose(d.lastIn)
	gw, err := MatMul(xt, gradOut)
	if err != nil {
		return nil, err
	}
	copy(d.GradW.Data, gw.Data)
	for j := 0; j < gradOut.Cols; j++ {
		var sum float64
		for i := 0; i < gradOut.Rows; i++ {
			sum += gradOut.At(i, j)
		}
		d.GradB[j] = sum
	}
	wt := Transpose(d.W)
	return MatMul(gradOut, wt)
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward gates gradients by the forward mask.
func (r *ReLU) Backward(gradOut *Matrix) *Matrix {
	out := NewMatrix(gradOut.Rows, gradOut.Cols)
	for i, v := range gradOut.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// SoftmaxCrossEntropy computes the mean loss and the logits gradient for
// integer class labels.
func SoftmaxCrossEntropy(logits *Matrix, labels []int) (loss float64, grad *Matrix, err error) {
	if len(labels) != logits.Rows {
		return 0, nil, fmt.Errorf("nn: %d labels for %d rows", len(labels), logits.Rows)
	}
	grad = NewMatrix(logits.Rows, logits.Cols)
	n := float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Data[i*logits.Cols : (i+1)*logits.Cols]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		probs := grad.Data[i*logits.Cols : (i+1)*logits.Cols]
		for j, v := range row {
			e := math.Exp(v - maxV)
			probs[j] = e
			sum += e
		}
		label := labels[i]
		if label < 0 || label >= logits.Cols {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, logits.Cols)
		}
		for j := range probs {
			probs[j] /= sum
		}
		loss += -math.Log(math.Max(probs[label], 1e-12))
		probs[label] -= 1
		for j := range probs {
			probs[j] /= n
		}
	}
	return loss / n, grad, nil
}
