package pipeline

import (
	"math"
	"testing"
	"time"

	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

type rig struct {
	eng     *simtime.Virtual
	procs   *simproc.Runtime
	devices []*simgpu.Device
	trainer *Trainer
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, cfg.Stages)
	for i := range devices {
		// Oversized devices: rig tests exercise schedule timing, not memory
		// admission (GPipe/zero-bubble hold all M activations and deep 1F1B
		// configs exceed the 48 GiB default).
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name: "gpu" + string(rune('0'+i)), MemBytes: 1 << 40,
		})
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &rig{eng: eng, procs: procs, devices: devices, trainer: tr}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.trainer.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	r.eng.Drain(20_000_000)
	if !r.trainer.Done().IsSet() {
		t.Fatal("training did not complete")
	}
	if err := r.trainer.Err(); err != nil {
		t.Fatalf("training failed: %v", err)
	}
}

func TestTrainingCompletesWithExpectedSpan(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	if len(starts) != 3 || len(ends) != 3 {
		t.Fatalf("epochs recorded = %d/%d, want 3/3", len(starts), len(ends))
	}
	// Analytic span plus a little comm latency.
	analytic := model.NanoGPT3B.EpochSpan(4, 4)
	got := ends[0] - starts[0]
	if got < analytic || got > analytic+100*time.Millisecond {
		t.Fatalf("epoch span = %v, want within [%v, %v+100ms]", got, analytic, analytic)
	}
}

func TestEpochsAreRepetitive(t *testing.T) {
	// Paper §2.2: "epochs are repetitive and stable".
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 5}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	first := ends[0] - starts[0]
	for e := 1; e < 5; e++ {
		span := ends[e] - starts[e]
		if span != first {
			t.Fatalf("epoch %d span %v != epoch 0 span %v", e, span, first)
		}
	}
}

func TestBubbleRateMatchesPaper(t *testing.T) {
	// The emergent per-stage idle fraction must land near the paper's 42%
	// for 3.6B / 4 stages / 4 micro-batches.
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 2}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	span := ends[1] - starts[1]
	for s := 0; s < 4; s++ {
		busy := r.devices[s].Occupancy().Integrate(starts[1], ends[1])
		rate := 1 - busy/span.Seconds()
		if math.Abs(rate-0.42) > 0.03 {
			t.Errorf("stage %d bubble rate = %.3f, want ~0.42", s, rate)
		}
	}
}

func TestMicroBatch8DropsBubbleRate(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 8, Epochs: 2}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	span := ends[1] - starts[1]
	busy := r.devices[0].Occupancy().Integrate(starts[1], ends[1])
	rate := 1 - busy/span.Seconds()
	if math.Abs(rate-0.262) > 0.03 {
		t.Fatalf("micro-batch-8 bubble rate = %.3f, want ~0.262", rate)
	}
}

func TestGPipeHasLargerBubbles(t *testing.T) {
	run := func(kind ScheduleKind) float64 {
		cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1, Schedule: kind}
		r := newRig(t, cfg)
		r.run(t)
		starts, ends := r.trainer.EpochTimes()
		span := ends[0] - starts[0]
		busy := r.devices[1].Occupancy().Integrate(starts[0], ends[0])
		return 1 - busy/span.Seconds()
	}
	oneF := run(Schedule1F1B)
	gp := run(ScheduleGPipe)
	if gp <= oneF {
		t.Fatalf("GPipe bubble rate %.3f not larger than 1F1B %.3f", gp, oneF)
	}
}

func TestStageMemoryAllocated(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1}
	r := newRig(t, cfg)
	if err := r.trainer.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for s := 0; s < 4; s++ {
		want := model.NanoGPT3B.StageMemUsed(s, 4, 4)
		if got := r.devices[s].MemUsed(); got != want {
			t.Fatalf("stage %d device mem = %d, want %d", s, got, want)
		}
	}
	r.eng.Drain(20_000_000)
}

func TestOpLogDependencyOrder(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1, RecordOps: true}
	r := newRig(t, cfg)
	r.run(t)
	// Collect spans indexed by (stage, kind, mb).
	type key struct {
		s  int
		k  OpKind
		mb int
	}
	spans := map[key]OpSpan{}
	for s := 0; s < 4; s++ {
		for _, span := range r.trainer.OpLog(s) {
			spans[key{s, span.Op.Kind, span.Op.MB}] = span
		}
	}
	for m := 0; m < 4; m++ {
		for s := 1; s < 4; s++ {
			up := spans[key{s - 1, OpForward, m}]
			down := spans[key{s, OpForward, m}]
			if down.Start < up.End {
				t.Errorf("FP(%d,%d) started %v before FP(%d,%d) ended %v", s, m, down.Start, s-1, m, up.End)
			}
		}
		for s := 2; s >= 0; s-- {
			down := spans[key{s + 1, OpBackward, m}]
			up := spans[key{s, OpBackward, m}]
			if up.Start < down.End {
				t.Errorf("BP(%d,%d) started %v before BP(%d,%d) ended %v", s, m, up.Start, s+1, m, down.End)
			}
		}
		fp := spans[key{2, OpForward, m}]
		bp := spans[key{2, OpBackward, m}]
		if bp.Start < fp.End {
			t.Errorf("BP(2,%d) started before FP(2,%d) ended", m, m)
		}
	}
}

func TestTypeABubbleGrowsWithStage(t *testing.T) {
	// Paper §2.2.1: start-of-epoch Type-A bubble duration increases from
	// stage 0 to stage 3 (cascading FP dependency).
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1, RecordOps: true}
	r := newRig(t, cfg)
	r.run(t)
	starts, _ := r.trainer.EpochTimes()
	prev := time.Duration(-1)
	for s := 0; s < 4; s++ {
		log := r.trainer.OpLog(s)
		lead := log[0].Start - starts[0]
		if lead <= prev {
			t.Fatalf("stage %d lead-in bubble %v not > stage %d's %v", s, lead, s-1, prev)
		}
		prev = lead
	}
}

func TestTrainerValidation(t *testing.T) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{})
	if _, err := New(eng, procs, []*simgpu.Device{dev}, Config{Stages: 2, MicroBatches: 4, Epochs: 1, Model: model.NanoGPT3B}); err == nil {
		t.Fatal("device/stage mismatch accepted")
	}
	if _, err := New(eng, procs, nil, Config{Stages: 0, MicroBatches: 4, Epochs: 1}); err == nil {
		t.Fatal("zero stages accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 2, MicroBatches: 2, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "a"}),
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "b"}),
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
	eng.Drain(1_000_000)
}

func TestEpochHooksFire(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3}
	r := newRig(t, cfg)
	var started, ended []int
	r.trainer.OnEpochStart(func(e int, ts time.Duration) { started = append(started, e) })
	r.trainer.OnEpochEnd(func(e int, ts time.Duration) { ended = append(ended, e) })
	r.run(t)
	if len(started) != 3 || len(ended) != 3 {
		t.Fatalf("hooks fired %d/%d times, want 3/3", len(started), len(ended))
	}
	for i := 0; i < 3; i++ {
		if started[i] != i || ended[i] != i {
			t.Fatalf("hook order: started=%v ended=%v", started, ended)
		}
	}
}

func BenchmarkEpoch(b *testing.B) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 4)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "g" + string(rune('0'+i))})
	}
	tr, err := New(eng, procs, devices, Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: b.N})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := tr.Start(); err != nil {
		b.Fatal(err)
	}
	eng.Drain(0)
}

func TestTwoStagePipeline(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 2, MicroBatches: 4, Epochs: 2}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "a"}),
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "b"}),
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(10_000_000)
	if !tr.Done().IsSet() || tr.Err() != nil {
		t.Fatalf("2-stage training failed: %v", tr.Err())
	}
	// Bubble rate ~ (S-1)/(M+S-1) = 1/5 = 20%.
	starts, ends := tr.EpochTimes()
	span := ends[1] - starts[1]
	busy := devices[0].Occupancy().Integrate(starts[1], ends[1])
	rate := 1 - busy/span.Seconds()
	if rate < 0.12 || rate > 0.28 {
		t.Fatalf("2-stage bubble rate = %.3f, want ~0.20", rate)
	}
}

func TestEightStagePipeline(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 8, MicroBatches: 4, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 8)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "g" + string(rune('0'+i))})
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(20_000_000)
	if !tr.Done().IsSet() || tr.Err() != nil {
		t.Fatalf("8-stage training failed: %v", tr.Err())
	}
	// Deeper pipelines have a higher bubble rate: (S-1)/(M+S-1) = 7/11.
	starts, ends := tr.EpochTimes()
	span := ends[0] - starts[0]
	busy := devices[0].Occupancy().Integrate(starts[0], ends[0])
	rate := 1 - busy/span.Seconds()
	if rate < 0.5 {
		t.Fatalf("8-stage bubble rate = %.3f, want > 0.5", rate)
	}
}

func TestSingleStageNoBubbles(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 1, MicroBatches: 4, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "solo"})}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(10_000_000)
	starts, ends := tr.EpochTimes()
	span := ends[0] - starts[0]
	busy := devices[0].Occupancy().Integrate(starts[0], ends[0])
	rate := 1 - busy/span.Seconds()
	if rate > 0.01 {
		t.Fatalf("single-stage bubble rate = %.3f, want ~0 (no pipeline, no bubbles)", rate)
	}
}

func TestTrainingFailsCleanlyOnInsufficientMemory(t *testing.T) {
	// Devices too small for the model: Start reports the OOM.
	cfg := Config{Model: model.NanoGPT6B, Stages: 2, MicroBatches: 4, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "tiny0", MemBytes: 8 << 30}),
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "tiny1", MemBytes: 8 << 30}),
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err == nil {
		t.Fatal("Start succeeded on 8GB devices for a 6B model")
	}
}

func TestInterleavedScheduleReducesBubbles(t *testing.T) {
	// Megatron-style virtual stages (the bubble-reduction approach of the
	// paper's related work): with V chunks per GPU, the per-stage bubble
	// rate should drop well below plain 1F1B's ~42% — roughly toward
	// (S-1)/(V·M + S-1).
	run := func(virtual int) float64 {
		cfg := Config{
			Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4,
			Epochs: 2, VirtualPerStage: virtual,
		}
		r := newRig(t, cfg)
		r.run(t)
		starts, ends := r.trainer.EpochTimes()
		span := ends[1] - starts[1]
		busy := r.devices[1].Occupancy().Integrate(starts[1], ends[1])
		return 1 - busy/span.Seconds()
	}
	plain := run(1)
	interleaved := run(2)
	if interleaved >= plain-0.05 {
		t.Fatalf("interleaving did not reduce bubbles: plain %.3f vs V=2 %.3f", plain, interleaved)
	}
	if interleaved < 0.10 || interleaved > 0.40 {
		t.Fatalf("V=2 bubble rate = %.3f, outside plausible band", interleaved)
	}
}

func TestInterleavedSameComputePerDevice(t *testing.T) {
	// Chunking must conserve total per-device work: the same SM-seconds
	// flow through each GPU regardless of V.
	run := func(virtual int) float64 {
		cfg := Config{
			Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4,
			Epochs: 1, VirtualPerStage: virtual,
		}
		r := newRig(t, cfg)
		r.run(t)
		return r.devices[2].WorkDone()
	}
	w1 := run(1)
	w2 := run(2)
	diff := w1 - w2
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01*w1 {
		t.Fatalf("per-device work differs: V=1 %.3f vs V=2 %.3f", w1, w2)
	}
}

// simBubbleRate runs one training config and returns the per-stage bubble
// rate averaged across stages (occupancy-integrated over epoch 1).
func simBubbleRate(t *testing.T, kind ScheduleKind, stages, mbs, virtual int) float64 {
	t.Helper()
	cfg := Config{
		Model: model.NanoGPT3B, Stages: stages, MicroBatches: mbs,
		Epochs: 2, Schedule: kind, VirtualPerStage: virtual,
	}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	span := ends[1] - starts[1]
	var sum float64
	for s := 0; s < stages; s++ {
		busy := r.devices[s].Occupancy().Integrate(starts[1], ends[1])
		sum += 1 - busy/span.Seconds()
	}
	return sum / float64(stages)
}

// The schedule-zoo acceptance pin: across every schedule × stages {2,4,8} ×
// micro-batches {4,8,16}, the simulated bubble ratio matches the closed-form
// BubbleRateEstimate. The V=1 schedules match within 0.01 (the residue is
// the 2 ms comm latency). Interleaved chunks contend for the shared device,
// so its Megatron-ideal closed form is a lower bound: the simulation must
// sit above it, within a bounded contention overhead in the steady regime
// (M ≥ S·V), and always below plain 1F1B.
func TestEstimateMatchesSimulatedBubbleRatio(t *testing.T) {
	m := model.NanoGPT3B
	for _, S := range []int{2, 4, 8} {
		for _, M := range []int{4, 8, 16} {
			oneF := simBubbleRate(t, Schedule1F1B, S, M, 1)
			for _, kind := range []ScheduleKind{Schedule1F1B, ScheduleGPipe, ScheduleZeroBubble} {
				sim := oneF
				if kind != Schedule1F1B {
					sim = simBubbleRate(t, kind, S, M, 1)
				}
				est := m.BubbleRateEstimate(kind, S, M, 1)
				if math.Abs(sim-est) > 0.01 {
					t.Errorf("%v S=%d M=%d: sim %.4f vs est %.4f", kind, S, M, sim, est)
				}
			}
			V := 2
			sim := simBubbleRate(t, ScheduleInterleaved, S, M, V)
			est := m.BubbleRateEstimate(ScheduleInterleaved, S, M, V)
			if sim < est-0.005 {
				t.Errorf("interleaved S=%d M=%d: sim %.4f below ideal bound %.4f", S, M, sim, est)
			}
			if sim >= oneF {
				t.Errorf("interleaved S=%d M=%d: sim %.4f not below 1F1B %.4f", S, M, sim, oneF)
			}
			if M >= S*V && sim-est > 0.08 {
				t.Errorf("interleaved S=%d M=%d: contention overhead %.4f above bound", S, M, sim-est)
			}
		}
	}
}

func TestZeroBubbleScheduleNearFloor(t *testing.T) {
	// The B/W split leaves only the (S-1)·FP warmup cascade un-fillable:
	// at S=4/M=8 the bubble rate collapses from 1F1B's ~27% to ~11%.
	zb := simBubbleRate(t, ScheduleZeroBubble, 4, 8, 1)
	oneF := simBubbleRate(t, Schedule1F1B, 4, 8, 1)
	if zb >= oneF/2 {
		t.Fatalf("zero-bubble rate %.4f not well below 1F1B %.4f", zb, oneF)
	}
	m := model.NanoGPT3B
	fill := 3 * m.FPPerMB
	busy := 8*(m.FPPerMB+m.BPPerMB) + m.OptStep
	floor := float64(fill) / float64(fill+busy)
	if math.Abs(zb-floor) > 0.01 {
		t.Fatalf("zero-bubble rate %.4f vs (S-1)·FP floor %.4f", zb, floor)
	}
}

func TestZeroBubbleOpLogShape(t *testing.T) {
	cfg := Config{
		Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1,
		Schedule: ScheduleZeroBubble, RecordOps: true,
	}
	r := newRig(t, cfg)
	r.run(t)
	for s := 0; s < 4; s++ {
		log := r.trainer.OpLog(s)
		var b, w, fused int
		for _, span := range log {
			switch span.Op.Kind {
			case OpBackwardInput:
				b++
			case OpBackwardWeight:
				w++
			case OpBackward:
				fused++
			}
		}
		if b != 4 || w != 4 || fused != 0 {
			t.Errorf("stage %d: B=%d W=%d fused=%d, want 4/4/0", s, b, w, fused)
		}
		// The optimizer barrier moved behind the deferred W tail.
		if last := log[len(log)-1].Op.Kind; last != OpOptimize {
			t.Errorf("stage %d last op %v, want OPT", s, last)
		}
		// Split halves each cost FP (BP = 2·FP for the calibrated models).
		for _, span := range log {
			if span.Op.Kind == OpBackwardInput || span.Op.Kind == OpBackwardWeight {
				if d := span.End - span.Start; d != model.NanoGPT3B.FPPerMB {
					t.Fatalf("stage %d %v took %v, want %v", s, span.Op, d, model.NanoGPT3B.FPPerMB)
				}
			}
		}
	}
}

func TestInterleavedFirstClassKind(t *testing.T) {
	// ScheduleInterleaved as a kind (virtual defaulted to 2 by normalize)
	// behaves like 1F1B+VirtualPerStage — and beats plain 1F1B's bubbles.
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 2,
		Schedule: ScheduleInterleaved}
	r := newRig(t, cfg)
	if got := r.trainer.Config().VirtualPerStage; got != 2 {
		t.Fatalf("interleaved defaulted V=%d, want 2", got)
	}
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	span := ends[1] - starts[1]
	busy := r.devices[1].Occupancy().Integrate(starts[1], ends[1])
	rate := 1 - busy/span.Seconds()
	plain := simBubbleRate(t, Schedule1F1B, 4, 4, 1)
	if rate >= plain-0.05 {
		t.Fatalf("interleaved kind rate %.4f not below 1F1B %.4f", rate, plain)
	}
}

func TestMBScheduleResizesEpochs(t *testing.T) {
	// The drift→schedule regeneration hook: epoch 0 runs M=4, later epochs
	// M=8 — real op lists, so the epoch spans change accordingly.
	cfg := Config{
		Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3,
		MBCap: 8,
		MBSchedule: func(epoch int, _ time.Duration) int {
			if epoch == 0 {
				return 4
			}
			return 8
		},
	}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	want4 := model.NanoGPT3B.EpochSpan(4, 4)
	want8 := model.NanoGPT3B.EpochSpan(4, 8)
	if got := ends[0] - starts[0]; got < want4 || got > want4+100*time.Millisecond {
		t.Fatalf("epoch 0 span %v, want ≈%v", got, want4)
	}
	for e := 1; e < 3; e++ {
		if got := ends[e] - starts[e]; got < want8 || got > want8+100*time.Millisecond {
			t.Fatalf("epoch %d span %v, want ≈%v", e, got, want8)
		}
	}
}

func TestMBScheduleConstantHookBitIdentical(t *testing.T) {
	// A wired hook that never changes the count must reproduce the plain
	// run's epoch times exactly — the zero-resize oracle.
	base := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3}
	r1 := newRig(t, base)
	r1.run(t)
	hooked := base
	hooked.MBSchedule = func(int, time.Duration) int { return 4 }
	r2 := newRig(t, hooked)
	r2.run(t)
	s1, e1 := r1.trainer.EpochTimes()
	s2, e2 := r2.trainer.EpochTimes()
	for i := range s1 {
		if s1[i] != s2[i] || e1[i] != e2[i] {
			t.Fatalf("epoch %d times diverged: (%v,%v) vs (%v,%v)", i, s1[i], e1[i], s2[i], e2[i])
		}
	}
}

func TestLegacyScheduleArmBitIdentical(t *testing.T) {
	// Config.LegacySchedule routes 1F1B/GPipe through the retained
	// pre-generator emitters; epoch times must match the generator exactly.
	for _, kind := range []ScheduleKind{Schedule1F1B, ScheduleGPipe} {
		base := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 2, Schedule: kind}
		r1 := newRig(t, base)
		r1.run(t)
		leg := base
		leg.LegacySchedule = true
		r2 := newRig(t, leg)
		r2.run(t)
		s1, e1 := r1.trainer.EpochTimes()
		s2, e2 := r2.trainer.EpochTimes()
		for i := range s1 {
			if s1[i] != s2[i] || e1[i] != e2[i] {
				t.Fatalf("%v epoch %d diverged: (%v,%v) vs (%v,%v)", kind, i, s1[i], e1[i], s2[i], e2[i])
			}
		}
	}
}

func TestInterleavedOpLogDependencies(t *testing.T) {
	// FP of chunk v must still follow FP of chunk v-1 for each micro-batch
	// (verified through the virtual latches by completion of training, and
	// spot-checked on the device logs: ops from both chunks interleave).
	cfg := Config{
		Model: model.NanoGPT3B, Stages: 2, MicroBatches: 2,
		Epochs: 1, VirtualPerStage: 2, RecordOps: true,
	}
	r := newRig(t, cfg)
	r.run(t)
	// Each device log holds ops from 2 chunks: 2 chunks × (2 FP + 2 BP + OPT).
	for s := 0; s < 2; s++ {
		log := r.trainer.OpLog(s)
		if len(log) != 2*(2+2+1) {
			t.Fatalf("device %d logged %d ops, want 10", s, len(log))
		}
	}
}
