package pipeline

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

type rig struct {
	eng     *simtime.Virtual
	procs   *simproc.Runtime
	devices []*simgpu.Device
	trainer *Trainer
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, cfg.Stages)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu" + string(rune('0'+i))})
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &rig{eng: eng, procs: procs, devices: devices, trainer: tr}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.trainer.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	r.eng.Drain(20_000_000)
	if !r.trainer.Done().IsSet() {
		t.Fatal("training did not complete")
	}
	if err := r.trainer.Err(); err != nil {
		t.Fatalf("training failed: %v", err)
	}
}

func TestScheduleGeneration1F1B(t *testing.T) {
	// Stage 3 of 4 (last): warmup 1 → FP0 BP0 FP1 BP1 ... OPT.
	ops, err := StageSchedule(Schedule1F1B, 3, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{OpForward, 0}, {OpBackward, 0}, {OpForward, 1}, {OpBackward, 1},
		{OpForward, 2}, {OpBackward, 2}, {OpForward, 3}, {OpBackward, 3},
		{OpOptimize, 0},
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %v, want %v (full %v)", i, ops[i], want[i], ops)
		}
	}
	// Stage 0 of 4: all 4 warmup forwards first.
	ops0, _ := StageSchedule(Schedule1F1B, 0, 4, 4)
	for i := 0; i < 4; i++ {
		if ops0[i].Kind != OpForward {
			t.Fatalf("stage0 op %d = %v, want forward", i, ops0[i])
		}
	}
}

// Property: every schedule contains each FP and BP exactly once, FP(m)
// precedes BP(m), and micro-batch order within a kind is ascending.
func TestSchedulePropertyComplete(t *testing.T) {
	f := func(stageRaw, stagesRaw, mbRaw uint8, gpipe bool) bool {
		stages := int(stagesRaw%8) + 1
		stage := int(stageRaw) % stages
		mbs := int(mbRaw%12) + 1
		kind := Schedule1F1B
		if gpipe {
			kind = ScheduleGPipe
		}
		ops, err := StageSchedule(kind, stage, stages, mbs)
		if err != nil {
			return false
		}
		fpAt := make(map[int]int)
		bpAt := make(map[int]int)
		lastFP, lastBP := -1, -1
		for i, op := range ops {
			switch op.Kind {
			case OpForward:
				if _, dup := fpAt[op.MB]; dup || op.MB <= lastFP {
					return false
				}
				fpAt[op.MB] = i
				lastFP = op.MB
			case OpBackward:
				if _, dup := bpAt[op.MB]; dup || op.MB <= lastBP {
					return false
				}
				bpAt[op.MB] = i
				lastBP = op.MB
			}
		}
		if len(fpAt) != mbs || len(bpAt) != mbs {
			return false
		}
		for m := 0; m < mbs; m++ {
			if fpAt[m] >= bpAt[m] {
				return false
			}
		}
		return ops[len(ops)-1].Kind == OpOptimize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleRejectsBadArgs(t *testing.T) {
	if _, err := StageSchedule(Schedule1F1B, 4, 4, 4); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
	if _, err := StageSchedule(Schedule1F1B, 0, 4, 0); err == nil {
		t.Fatal("zero micro-batches accepted")
	}
	if _, err := StageSchedule(ScheduleKind(99), 0, 4, 4); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestTrainingCompletesWithExpectedSpan(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	if len(starts) != 3 || len(ends) != 3 {
		t.Fatalf("epochs recorded = %d/%d, want 3/3", len(starts), len(ends))
	}
	// Analytic span plus a little comm latency.
	analytic := model.NanoGPT3B.EpochSpan(4, 4)
	got := ends[0] - starts[0]
	if got < analytic || got > analytic+100*time.Millisecond {
		t.Fatalf("epoch span = %v, want within [%v, %v+100ms]", got, analytic, analytic)
	}
}

func TestEpochsAreRepetitive(t *testing.T) {
	// Paper §2.2: "epochs are repetitive and stable".
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 5}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	first := ends[0] - starts[0]
	for e := 1; e < 5; e++ {
		span := ends[e] - starts[e]
		if span != first {
			t.Fatalf("epoch %d span %v != epoch 0 span %v", e, span, first)
		}
	}
}

func TestBubbleRateMatchesPaper(t *testing.T) {
	// The emergent per-stage idle fraction must land near the paper's 42%
	// for 3.6B / 4 stages / 4 micro-batches.
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 2}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	span := ends[1] - starts[1]
	for s := 0; s < 4; s++ {
		busy := r.devices[s].Occupancy().Integrate(starts[1], ends[1])
		rate := 1 - busy/span.Seconds()
		if math.Abs(rate-0.42) > 0.03 {
			t.Errorf("stage %d bubble rate = %.3f, want ~0.42", s, rate)
		}
	}
}

func TestMicroBatch8DropsBubbleRate(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 8, Epochs: 2}
	r := newRig(t, cfg)
	r.run(t)
	starts, ends := r.trainer.EpochTimes()
	span := ends[1] - starts[1]
	busy := r.devices[0].Occupancy().Integrate(starts[1], ends[1])
	rate := 1 - busy/span.Seconds()
	if math.Abs(rate-0.262) > 0.03 {
		t.Fatalf("micro-batch-8 bubble rate = %.3f, want ~0.262", rate)
	}
}

func TestGPipeHasLargerBubbles(t *testing.T) {
	run := func(kind ScheduleKind) float64 {
		cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1, Schedule: kind}
		r := newRig(t, cfg)
		r.run(t)
		starts, ends := r.trainer.EpochTimes()
		span := ends[0] - starts[0]
		busy := r.devices[1].Occupancy().Integrate(starts[0], ends[0])
		return 1 - busy/span.Seconds()
	}
	oneF := run(Schedule1F1B)
	gp := run(ScheduleGPipe)
	if gp <= oneF {
		t.Fatalf("GPipe bubble rate %.3f not larger than 1F1B %.3f", gp, oneF)
	}
}

func TestStageMemoryAllocated(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1}
	r := newRig(t, cfg)
	if err := r.trainer.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for s := 0; s < 4; s++ {
		want := model.NanoGPT3B.StageMemUsed(s, 4, 4)
		if got := r.devices[s].MemUsed(); got != want {
			t.Fatalf("stage %d device mem = %d, want %d", s, got, want)
		}
	}
	r.eng.Drain(20_000_000)
}

func TestOpLogDependencyOrder(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1, RecordOps: true}
	r := newRig(t, cfg)
	r.run(t)
	// Collect spans indexed by (stage, kind, mb).
	type key struct {
		s  int
		k  OpKind
		mb int
	}
	spans := map[key]OpSpan{}
	for s := 0; s < 4; s++ {
		for _, span := range r.trainer.OpLog(s) {
			spans[key{s, span.Op.Kind, span.Op.MB}] = span
		}
	}
	for m := 0; m < 4; m++ {
		for s := 1; s < 4; s++ {
			up := spans[key{s - 1, OpForward, m}]
			down := spans[key{s, OpForward, m}]
			if down.Start < up.End {
				t.Errorf("FP(%d,%d) started %v before FP(%d,%d) ended %v", s, m, down.Start, s-1, m, up.End)
			}
		}
		for s := 2; s >= 0; s-- {
			down := spans[key{s + 1, OpBackward, m}]
			up := spans[key{s, OpBackward, m}]
			if up.Start < down.End {
				t.Errorf("BP(%d,%d) started %v before BP(%d,%d) ended %v", s, m, up.Start, s+1, m, down.End)
			}
		}
		fp := spans[key{2, OpForward, m}]
		bp := spans[key{2, OpBackward, m}]
		if bp.Start < fp.End {
			t.Errorf("BP(2,%d) started before FP(2,%d) ended", m, m)
		}
	}
}

func TestTypeABubbleGrowsWithStage(t *testing.T) {
	// Paper §2.2.1: start-of-epoch Type-A bubble duration increases from
	// stage 0 to stage 3 (cascading FP dependency).
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 1, RecordOps: true}
	r := newRig(t, cfg)
	r.run(t)
	starts, _ := r.trainer.EpochTimes()
	prev := time.Duration(-1)
	for s := 0; s < 4; s++ {
		log := r.trainer.OpLog(s)
		lead := log[0].Start - starts[0]
		if lead <= prev {
			t.Fatalf("stage %d lead-in bubble %v not > stage %d's %v", s, lead, s-1, prev)
		}
		prev = lead
	}
}

func TestTrainerValidation(t *testing.T) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{})
	if _, err := New(eng, procs, []*simgpu.Device{dev}, Config{Stages: 2, MicroBatches: 4, Epochs: 1, Model: model.NanoGPT3B}); err == nil {
		t.Fatal("device/stage mismatch accepted")
	}
	if _, err := New(eng, procs, nil, Config{Stages: 0, MicroBatches: 4, Epochs: 1}); err == nil {
		t.Fatal("zero stages accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 2, MicroBatches: 2, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "a"}),
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "b"}),
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
	eng.Drain(1_000_000)
}

func TestEpochHooksFire(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: 3}
	r := newRig(t, cfg)
	var started, ended []int
	r.trainer.OnEpochStart(func(e int, ts time.Duration) { started = append(started, e) })
	r.trainer.OnEpochEnd(func(e int, ts time.Duration) { ended = append(ended, e) })
	r.run(t)
	if len(started) != 3 || len(ended) != 3 {
		t.Fatalf("hooks fired %d/%d times, want 3/3", len(started), len(ended))
	}
	for i := 0; i < 3; i++ {
		if started[i] != i || ended[i] != i {
			t.Fatalf("hook order: started=%v ended=%v", started, ended)
		}
	}
}

func BenchmarkEpoch(b *testing.B) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 4)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "g" + string(rune('0'+i))})
	}
	tr, err := New(eng, procs, devices, Config{Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4, Epochs: b.N})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := tr.Start(); err != nil {
		b.Fatal(err)
	}
	eng.Drain(0)
}

func TestTwoStagePipeline(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 2, MicroBatches: 4, Epochs: 2}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "a"}),
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "b"}),
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(10_000_000)
	if !tr.Done().IsSet() || tr.Err() != nil {
		t.Fatalf("2-stage training failed: %v", tr.Err())
	}
	// Bubble rate ~ (S-1)/(M+S-1) = 1/5 = 20%.
	starts, ends := tr.EpochTimes()
	span := ends[1] - starts[1]
	busy := devices[0].Occupancy().Integrate(starts[1], ends[1])
	rate := 1 - busy/span.Seconds()
	if rate < 0.12 || rate > 0.28 {
		t.Fatalf("2-stage bubble rate = %.3f, want ~0.20", rate)
	}
}

func TestEightStagePipeline(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 8, MicroBatches: 4, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, 8)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "g" + string(rune('0'+i))})
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(20_000_000)
	if !tr.Done().IsSet() || tr.Err() != nil {
		t.Fatalf("8-stage training failed: %v", tr.Err())
	}
	// Deeper pipelines have a higher bubble rate: (S-1)/(M+S-1) = 7/11.
	starts, ends := tr.EpochTimes()
	span := ends[0] - starts[0]
	busy := devices[0].Occupancy().Integrate(starts[0], ends[0])
	rate := 1 - busy/span.Seconds()
	if rate < 0.5 {
		t.Fatalf("8-stage bubble rate = %.3f, want > 0.5", rate)
	}
}

func TestSingleStageNoBubbles(t *testing.T) {
	cfg := Config{Model: model.NanoGPT3B, Stages: 1, MicroBatches: 4, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "solo"})}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Drain(10_000_000)
	starts, ends := tr.EpochTimes()
	span := ends[0] - starts[0]
	busy := devices[0].Occupancy().Integrate(starts[0], ends[0])
	rate := 1 - busy/span.Seconds()
	if rate > 0.01 {
		t.Fatalf("single-stage bubble rate = %.3f, want ~0 (no pipeline, no bubbles)", rate)
	}
}

func TestTrainingFailsCleanlyOnInsufficientMemory(t *testing.T) {
	// Devices too small for the model: Start reports the OOM.
	cfg := Config{Model: model.NanoGPT6B, Stages: 2, MicroBatches: 4, Epochs: 1}
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := []*simgpu.Device{
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "tiny0", MemBytes: 8 << 30}),
		simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "tiny1", MemBytes: 8 << 30}),
	}
	tr, err := New(eng, procs, devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err == nil {
		t.Fatal("Start succeeded on 8GB devices for a 6B model")
	}
}

func TestInterleavedScheduleReducesBubbles(t *testing.T) {
	// Megatron-style virtual stages (the bubble-reduction approach of the
	// paper's related work): with V chunks per GPU, the per-stage bubble
	// rate should drop well below plain 1F1B's ~42% — roughly toward
	// (S-1)/(V·M + S-1).
	run := func(virtual int) float64 {
		cfg := Config{
			Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4,
			Epochs: 2, VirtualPerStage: virtual,
		}
		r := newRig(t, cfg)
		r.run(t)
		starts, ends := r.trainer.EpochTimes()
		span := ends[1] - starts[1]
		busy := r.devices[1].Occupancy().Integrate(starts[1], ends[1])
		return 1 - busy/span.Seconds()
	}
	plain := run(1)
	interleaved := run(2)
	if interleaved >= plain-0.05 {
		t.Fatalf("interleaving did not reduce bubbles: plain %.3f vs V=2 %.3f", plain, interleaved)
	}
	if interleaved < 0.10 || interleaved > 0.40 {
		t.Fatalf("V=2 bubble rate = %.3f, outside plausible band", interleaved)
	}
}

func TestInterleavedSameComputePerDevice(t *testing.T) {
	// Chunking must conserve total per-device work: the same SM-seconds
	// flow through each GPU regardless of V.
	run := func(virtual int) float64 {
		cfg := Config{
			Model: model.NanoGPT3B, Stages: 4, MicroBatches: 4,
			Epochs: 1, VirtualPerStage: virtual,
		}
		r := newRig(t, cfg)
		r.run(t)
		return r.devices[2].WorkDone()
	}
	w1 := run(1)
	w2 := run(2)
	diff := w1 - w2
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01*w1 {
		t.Fatalf("per-device work differs: V=1 %.3f vs V=2 %.3f", w1, w2)
	}
}

func TestInterleavedOpLogDependencies(t *testing.T) {
	// FP of chunk v must still follow FP of chunk v-1 for each micro-batch
	// (verified through the virtual latches by completion of training, and
	// spot-checked on the device logs: ops from both chunks interleave).
	cfg := Config{
		Model: model.NanoGPT3B, Stages: 2, MicroBatches: 2,
		Epochs: 1, VirtualPerStage: 2, RecordOps: true,
	}
	r := newRig(t, cfg)
	r.run(t)
	// Each device log holds ops from 2 chunks: 2 chunks × (2 FP + 2 BP + OPT).
	for s := 0; s < 2; s++ {
		log := r.trainer.OpLog(s)
		if len(log) != 2*(2+2+1) {
			t.Fatalf("device %d logged %d ops, want 10", s, len(log))
		}
	}
}
