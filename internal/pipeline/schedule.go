// Package pipeline implements the pipeline-parallel training engine — the
// DeepSpeed substitute (paper §6.1.3). Each stage runs as a simulated
// process bound to one GPU, executing its forward/backward/optimizer ops in
// schedule order and blocking on inter-stage dependencies. Bubbles are not
// scripted anywhere: they emerge as device idle time exactly as in the real
// system, from the dependency structure of the schedule (§2.1).
package pipeline

import (
	"fmt"
)

// ScheduleKind selects the pipeline schedule.
type ScheduleKind int

// Supported schedules.
const (
	// Schedule1F1B is the DeepSpeed/Megatron-style one-forward-one-backward
	// schedule the paper trains with: min(M, S-s) warmup forwards, a
	// steady state alternating BP/FP, then cooldown backwards.
	Schedule1F1B ScheduleKind = iota + 1
	// ScheduleGPipe runs all forwards then all backwards, maximizing the
	// mid-epoch bubble; included to show bubble-shape dependence on
	// scheduling (paper §2.2 discussion).
	ScheduleGPipe
)

// String implements fmt.Stringer.
func (k ScheduleKind) String() string {
	switch k {
	case Schedule1F1B:
		return "1f1b"
	case ScheduleGPipe:
		return "gpipe"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// OpKind is the type of one pipeline operation.
type OpKind int

// Operation kinds.
const (
	OpForward OpKind = iota + 1
	OpBackward
	OpOptimize
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpForward:
		return "FP"
	case OpBackward:
		return "BP"
	case OpOptimize:
		return "OPT"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one scheduled operation at a stage.
type Op struct {
	Kind OpKind
	// MB is the micro-batch index (unused for OpOptimize).
	MB int
}

// StageSchedule generates the ordered op list for one stage.
//
// For 1F1B at stage s of S with M micro-batches:
//
//	warmup w = min(M, S-s) forwards, then alternating BP/FP while
//	forwards remain, then the remaining backwards, then the optimizer.
//
// For GPipe: all M forwards, all M backwards, optimizer.
func StageSchedule(kind ScheduleKind, stage, stages, microBatches int) ([]Op, error) {
	if stage < 0 || stage >= stages {
		return nil, fmt.Errorf("pipeline: stage %d out of range [0,%d)", stage, stages)
	}
	if microBatches < 1 {
		return nil, fmt.Errorf("pipeline: micro-batches %d < 1", microBatches)
	}
	var ops []Op
	switch kind {
	case ScheduleGPipe:
		for m := 0; m < microBatches; m++ {
			ops = append(ops, Op{Kind: OpForward, MB: m})
		}
		for m := 0; m < microBatches; m++ {
			ops = append(ops, Op{Kind: OpBackward, MB: m})
		}
	case Schedule1F1B:
		warmup := stages - stage
		if warmup > microBatches {
			warmup = microBatches
		}
		for m := 0; m < warmup; m++ {
			ops = append(ops, Op{Kind: OpForward, MB: m})
		}
		nextFP := warmup
		nextBP := 0
		for nextFP < microBatches {
			ops = append(ops, Op{Kind: OpBackward, MB: nextBP})
			nextBP++
			ops = append(ops, Op{Kind: OpForward, MB: nextFP})
			nextFP++
		}
		for nextBP < microBatches {
			ops = append(ops, Op{Kind: OpBackward, MB: nextBP})
			nextBP++
		}
	default:
		return nil, fmt.Errorf("pipeline: unknown schedule %v", kind)
	}
	ops = append(ops, Op{Kind: OpOptimize})
	return ops, nil
}

// WarmupForwards reports the number of forwards stage s executes before its
// first backward — the instrumentation point for Type-B bubbles.
func WarmupForwards(kind ScheduleKind, stage, stages, microBatches int) int {
	if kind == ScheduleGPipe {
		return microBatches
	}
	w := stages - stage
	if w > microBatches {
		w = microBatches
	}
	return w
}
