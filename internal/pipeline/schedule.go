// Package pipeline implements the pipeline-parallel training engine — the
// DeepSpeed substitute (paper §6.1.3). Each stage runs as a simulated
// process bound to one GPU, executing its forward/backward/optimizer ops in
// schedule order and blocking on inter-stage dependencies. Bubbles are not
// scripted anywhere: they emerge as device idle time exactly as in the real
// system, from the dependency structure of the schedule (§2.1).
package pipeline

import (
	"fmt"

	"freeride/internal/model"
)

// ScheduleKind selects the pipeline schedule. It aliases model.Schedule so
// the cost model (closed-form bubble ratios, per-stage memory) can dispatch
// on the same kind without importing this package.
type ScheduleKind = model.Schedule

// Supported schedules (see model.Schedule for semantics).
const (
	Schedule1F1B        = model.Schedule1F1B
	ScheduleGPipe       = model.ScheduleGPipe
	ScheduleInterleaved = model.ScheduleInterleaved
	ScheduleZeroBubble  = model.ScheduleZeroBubble
)

// OpKind is the type of one pipeline operation.
type OpKind int

// Operation kinds. OpBackward is the fused backward of the classic
// schedules; zero-bubble splits it into OpBackwardInput (activation
// gradients, on the critical path — it releases the downstream stage) and
// OpBackwardWeight (weight gradients, dependency-free filler).
const (
	OpForward OpKind = iota + 1
	OpBackward
	OpOptimize
	OpBackwardInput
	OpBackwardWeight
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpForward:
		return "FP"
	case OpBackward:
		return "BP"
	case OpOptimize:
		return "OPT"
	case OpBackwardInput:
		return "B"
	case OpBackwardWeight:
		return "W"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one scheduled operation at a stage.
type Op struct {
	Kind OpKind
	// MB is the micro-batch index (unused for OpOptimize).
	MB int
}

// Dep is the cross-chunk dependency of one op: before executing, the op
// waits for completion of (On, MB) at chunk Chunk. Chunk < 0 means no
// cross-chunk wait (the op only follows its list predecessor). On is
// OpForward (wait for the upstream forward) or OpBackward (wait for the
// downstream activation gradient — OpBackwardInput completions signal the
// same latch).
type Dep struct {
	On    OpKind
	Chunk int
	MB    int
}

// noDep marks ops without a cross-chunk wait.
var noDep = Dep{Chunk: -1}

// Plan is a fully generated schedule: one op list plus parallel dependency
// edges per virtual chunk. The engine replays it verbatim — chunk v's ops
// run in list order, each op first waiting on its Dep latch.
type Plan struct {
	Kind            ScheduleKind
	Stages          int
	MicroBatches    int
	VirtualPerStage int
	// Chunks[v] is the ordered op list of virtual chunk v (v in
	// [0, Stages·VirtualPerStage)); chunk v executes on device v mod Stages.
	Chunks [][]Op
	// Deps[v][i] is the cross-chunk wait of Chunks[v][i] (noDep if none).
	Deps [][]Dep
}

// NumVirtual is the total chunk count.
func (p *Plan) NumVirtual() int { return p.Stages * p.VirtualPerStage }

// BuildPlan generates the schedule for an S-stage pipeline with M
// micro-batches and V virtual chunks per stage. This is the generator
// abstraction of the schedule zoo: every kind emits per-chunk op lists plus
// dependency edges, and the engine executes any plan the same way.
//
// The 1F1B and GPipe generators emit, per chunk, exactly the op lists the
// historic StageSchedule switch produced — the FREERIDE_ORACLE_SCHEDULE
// differential pins the whole Table 2 grid bit-identical across the two
// paths. Zero-bubble requires V == 1 and splits backwards into B/W.
func BuildPlan(kind ScheduleKind, stages, microBatches, virtualPerStage int) (*Plan, error) {
	if stages < 1 {
		return nil, fmt.Errorf("pipeline: stages %d < 1", stages)
	}
	if microBatches < 1 {
		return nil, fmt.Errorf("pipeline: micro-batches %d < 1", microBatches)
	}
	if virtualPerStage < 1 {
		virtualPerStage = 1
	}
	p := &Plan{
		Kind:            kind,
		Stages:          stages,
		MicroBatches:    microBatches,
		VirtualPerStage: virtualPerStage,
	}
	nv := p.NumVirtual()
	switch kind {
	case Schedule1F1B, ScheduleInterleaved:
		// Interleaved IS 1F1B over the deeper virtual pipeline; the kinds
		// differ only in how many chunks the config assigns per device.
		for v := 0; v < nv; v++ {
			p.Chunks = append(p.Chunks, ops1F1B(v, nv, microBatches))
		}
	case ScheduleGPipe:
		for v := 0; v < nv; v++ {
			p.Chunks = append(p.Chunks, opsGPipe(microBatches))
		}
	case ScheduleZeroBubble:
		if virtualPerStage != 1 {
			return nil, fmt.Errorf("pipeline: zero-bubble schedule does not compose with virtual stages (V=%d)", virtualPerStage)
		}
		chunks, err := opsZeroBubble(stages, microBatches)
		if err != nil {
			return nil, err
		}
		p.Chunks = chunks
	default:
		return nil, fmt.Errorf("pipeline: unknown schedule %v", kind)
	}
	p.Deps = make([][]Dep, nv)
	for v := range p.Chunks {
		p.Deps[v] = depsFor(p.Chunks[v], v, nv)
	}
	return p, nil
}

// ChunkOps generates the op list of one chunk — the per-stage view of
// BuildPlan, kept for tests and tooling.
func ChunkOps(kind ScheduleKind, chunk, stages, microBatches, virtualPerStage int) ([]Op, error) {
	p, err := BuildPlan(kind, stages, microBatches, virtualPerStage)
	if err != nil {
		return nil, err
	}
	if chunk < 0 || chunk >= len(p.Chunks) {
		return nil, fmt.Errorf("pipeline: chunk %d out of range [0,%d)", chunk, len(p.Chunks))
	}
	return p.Chunks[chunk], nil
}

// depsFor derives the cross-chunk edges of one chunk's op list: a forward at
// chunk v waits for the upstream forward of the same micro-batch, an
// activation-gradient backward (fused or split) waits for the downstream
// one. W and optimizer ops only follow their list predecessors.
func depsFor(ops []Op, v, nv int) []Dep {
	deps := make([]Dep, len(ops))
	for i, op := range ops {
		deps[i] = noDep
		switch op.Kind {
		case OpForward:
			if v > 0 {
				deps[i] = Dep{On: OpForward, Chunk: v - 1, MB: op.MB}
			}
		case OpBackward, OpBackwardInput:
			if v < nv-1 {
				deps[i] = Dep{On: OpBackward, Chunk: v + 1, MB: op.MB}
			}
		}
	}
	return deps
}

// ops1F1B is the one-forward-one-backward emitter for stage v of nv:
// warmup w = min(M, nv-v) forwards, then alternating BP/FP while forwards
// remain, then the remaining backwards, then the optimizer.
func ops1F1B(v, nv, microBatches int) []Op {
	var ops []Op
	warmup := nv - v
	if warmup > microBatches {
		warmup = microBatches
	}
	for m := 0; m < warmup; m++ {
		ops = append(ops, Op{Kind: OpForward, MB: m})
	}
	nextFP := warmup
	nextBP := 0
	for nextFP < microBatches {
		ops = append(ops, Op{Kind: OpBackward, MB: nextBP})
		nextBP++
		ops = append(ops, Op{Kind: OpForward, MB: nextFP})
		nextFP++
	}
	for nextBP < microBatches {
		ops = append(ops, Op{Kind: OpBackward, MB: nextBP})
		nextBP++
	}
	return append(ops, Op{Kind: OpOptimize})
}

// opsGPipe emits all M forwards, all M backwards, optimizer.
func opsGPipe(microBatches int) []Op {
	var ops []Op
	for m := 0; m < microBatches; m++ {
		ops = append(ops, Op{Kind: OpForward, MB: m})
	}
	for m := 0; m < microBatches; m++ {
		ops = append(ops, Op{Kind: OpBackward, MB: m})
	}
	return append(ops, Op{Kind: OpOptimize})
}

// opsZeroBubble emits the B/W-split schedule via a synchronous unit-slot
// greedy: each slot, every stage picks its highest-priority available op
// (B > F > W — B releases the downstream stage, F feeds the upstream one, W
// is pure filler), with availability judged on the previous slot's
// completions:
//
//	B: bDone < fDone and downstream B ahead (bDone[s+1] > bDone[s]).
//	F: fDone < M and upstream F ahead (fDone[s-1] > fDone[s]).
//	W: wDone < bDone.
//
// Activations are deliberately NOT capped: bounding in-flight count below M
// forces a W into a slot the backward cascade needs and the whole drain
// slips behind it (measurably, (S-2)·FP of extra fill at S=8 under a
// min(M, S-s+1) cap). Uncapped, every stage may hold up to M activations —
// GPipe's footprint, charged honestly by model.StageMemUsedSched — and the
// fill lands on ((S-1) + max(0, S-M))·FP: the warmup cascade, plus a
// GPipe-like drain penalty when there are too few micro-batches to cover
// the first backward's round trip. This is the zero-bubble memory-for-time
// trade (ZB-H2 flavour) rather than the memory-neutral ZB-H1.
//
// With the calibrated models' BP = 2·FP, the split B and W ops each cost
// exactly FP, so the slotted order is also the real-time order. The emitted
// lists stay valid for any durations — the engine replays them under real
// latches, and a global topological order exists by construction (the slot
// order itself).
func opsZeroBubble(stages, microBatches int) ([][]Op, error) {
	S, M := stages, microBatches
	ops := make([][]Op, S)
	fDone := make([]int, S)
	bDone := make([]int, S)
	wDone := make([]int, S)
	done := func() bool {
		for s := 0; s < S; s++ {
			if wDone[s] < M {
				return false
			}
		}
		return true
	}
	maxSlots := 2*(S+1)*(M+S) + 64 // generous: the greedy finishes in ~2M+3S slots
	for slot := 0; !done(); slot++ {
		if slot > maxSlots {
			return nil, fmt.Errorf("pipeline: zero-bubble generator did not converge (S=%d M=%d)", S, M)
		}
		type pick struct {
			kind OpKind
			mb   int
		}
		picks := make([]pick, S)
		for s := 0; s < S; s++ {
			switch {
			case bDone[s] < fDone[s] && (s == S-1 || bDone[s+1] > bDone[s]):
				picks[s] = pick{OpBackwardInput, bDone[s]}
			case fDone[s] < M && (s == 0 || fDone[s-1] > fDone[s]):
				picks[s] = pick{OpForward, fDone[s]}
			case wDone[s] < bDone[s]:
				picks[s] = pick{OpBackwardWeight, wDone[s]}
			}
		}
		for s := 0; s < S; s++ {
			switch picks[s].kind {
			case OpForward:
				fDone[s]++
			case OpBackwardInput:
				bDone[s]++
			case OpBackwardWeight:
				wDone[s]++
			default:
				continue
			}
			ops[s] = append(ops[s], Op{Kind: picks[s].kind, MB: picks[s].mb})
		}
	}
	for s := 0; s < S; s++ {
		// The optimizer barrier moves: it still closes the stage's epoch,
		// but now it runs after the deferred W tail, not after the last
		// fused backward.
		ops[s] = append(ops[s], Op{Kind: OpOptimize})
	}
	return ops, nil
}

// legacyStageSchedule is the pre-generator op-list switch, retained verbatim
// as the differential oracle arm (FREERIDE_ORACLE_SCHEDULE=legacy /
// Config.LegacySchedule): the refactored 1F1B and GPipe generators must
// reproduce its op lists — and therefore the whole Table 2 grid —
// bit-identically. It knows nothing of the new kinds.
func legacyStageSchedule(kind ScheduleKind, stage, stages, microBatches int) ([]Op, error) {
	if stage < 0 || stage >= stages {
		return nil, fmt.Errorf("pipeline: stage %d out of range [0,%d)", stage, stages)
	}
	if microBatches < 1 {
		return nil, fmt.Errorf("pipeline: micro-batches %d < 1", microBatches)
	}
	var ops []Op
	switch kind {
	case ScheduleGPipe:
		for m := 0; m < microBatches; m++ {
			ops = append(ops, Op{Kind: OpForward, MB: m})
		}
		for m := 0; m < microBatches; m++ {
			ops = append(ops, Op{Kind: OpBackward, MB: m})
		}
	case Schedule1F1B:
		warmup := stages - stage
		if warmup > microBatches {
			warmup = microBatches
		}
		for m := 0; m < warmup; m++ {
			ops = append(ops, Op{Kind: OpForward, MB: m})
		}
		nextFP := warmup
		nextBP := 0
		for nextFP < microBatches {
			ops = append(ops, Op{Kind: OpBackward, MB: nextBP})
			nextBP++
			ops = append(ops, Op{Kind: OpForward, MB: nextFP})
			nextFP++
		}
		for nextBP < microBatches {
			ops = append(ops, Op{Kind: OpBackward, MB: nextBP})
			nextBP++
		}
	default:
		return nil, fmt.Errorf("pipeline: legacy path has no schedule %v", kind)
	}
	ops = append(ops, Op{Kind: OpOptimize})
	return ops, nil
}
