package pipeline

// BuildServingPlan is the batch-cycle plan mode of the schedule zoo: the
// 1F1B chunks with the backward tail and the optimizer barrier stripped,
// leaving the forward-only fill/execute/drain wavefront an inference batch
// runs. Dependency edges are re-derived over the filtered lists with the
// same generator the training plans use, so a forward at stage v still
// waits on the upstream forward of its micro-batch.
func BuildServingPlan(stages, microBatches int) (*Plan, error) {
	p, err := BuildPlan(Schedule1F1B, stages, microBatches, 1)
	if err != nil {
		return nil, err
	}
	nv := p.NumVirtual()
	for v := range p.Chunks {
		fwd := make([]Op, 0, microBatches)
		for _, op := range p.Chunks[v] {
			if op.Kind == OpForward {
				fwd = append(fwd, op)
			}
		}
		p.Chunks[v] = fwd
		p.Deps[v] = depsFor(fwd, v, nv)
	}
	return p, nil
}
