package pipeline

import (
	"testing"
)

func TestScheduleGeneration1F1B(t *testing.T) {
	// Stage 3 of 4 (last): warmup 1 → FP0 BP0 FP1 BP1 ... OPT.
	ops, err := ChunkOps(Schedule1F1B, 3, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{OpForward, 0}, {OpBackward, 0}, {OpForward, 1}, {OpBackward, 1},
		{OpForward, 2}, {OpBackward, 2}, {OpForward, 3}, {OpBackward, 3},
		{OpOptimize, 0},
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %v, want %v (full %v)", i, ops[i], want[i], ops)
		}
	}
	// Stage 0 of 4: all 4 warmup forwards first.
	ops0, _ := ChunkOps(Schedule1F1B, 0, 4, 4, 1)
	for i := 0; i < 4; i++ {
		if ops0[i].Kind != OpForward {
			t.Fatalf("stage0 op %d = %v, want forward", i, ops0[i])
		}
	}
}

func TestGeneratorMatchesLegacyOpLists(t *testing.T) {
	// The schedule-zoo refactor pin: for every 1F1B/GPipe configuration the
	// generator emits exactly the op lists the historic StageSchedule switch
	// produced (the in-process half of the FREERIDE_ORACLE_SCHEDULE
	// differential).
	for _, kind := range []ScheduleKind{Schedule1F1B, ScheduleGPipe} {
		for stages := 1; stages <= 8; stages++ {
			for mbs := 1; mbs <= 16; mbs++ {
				plan, err := BuildPlan(kind, stages, mbs, 1)
				if err != nil {
					t.Fatalf("BuildPlan(%v,%d,%d): %v", kind, stages, mbs, err)
				}
				for s := 0; s < stages; s++ {
					legacy, err := legacyStageSchedule(kind, s, stages, mbs)
					if err != nil {
						t.Fatalf("legacy(%v,%d,%d,%d): %v", kind, s, stages, mbs, err)
					}
					if len(plan.Chunks[s]) != len(legacy) {
						t.Fatalf("%v S=%d M=%d s=%d: %d ops vs legacy %d",
							kind, stages, mbs, s, len(plan.Chunks[s]), len(legacy))
					}
					for i := range legacy {
						if plan.Chunks[s][i] != legacy[i] {
							t.Fatalf("%v S=%d M=%d s=%d op %d: %v vs legacy %v",
								kind, stages, mbs, s, i, plan.Chunks[s][i], legacy[i])
						}
					}
				}
			}
		}
	}
}

// backwardOf reports whether k computes the activation gradient of a
// micro-batch (fused or split backward).
func backwardOf(k OpKind) bool { return k == OpBackward || k == OpBackwardInput }

// checkChunkOps validates one chunk's op list in isolation: exact op
// counts, F(m) before its backward, W(m) after its B(m), micro-batch order
// ascending per kind, optimizer exactly once and last.
func checkChunkOps(t *testing.T, desc string, ops []Op, mbs int, zb bool) {
	t.Helper()
	fpAt := map[int]int{}
	bpAt := map[int]int{}
	wAt := map[int]int{}
	lastFP, lastBP, lastW := -1, -1, -1
	optAt := -1
	for i, op := range ops {
		switch {
		case op.Kind == OpForward:
			if _, dup := fpAt[op.MB]; dup || op.MB <= lastFP {
				t.Fatalf("%s: FP order/dup at %d: %v", desc, i, ops)
			}
			fpAt[op.MB] = i
			lastFP = op.MB
		case backwardOf(op.Kind):
			if zb != (op.Kind == OpBackwardInput) {
				t.Fatalf("%s: wrong backward flavour %v", desc, op.Kind)
			}
			if _, dup := bpAt[op.MB]; dup || op.MB <= lastBP {
				t.Fatalf("%s: B order/dup at %d: %v", desc, i, ops)
			}
			bpAt[op.MB] = i
			lastBP = op.MB
		case op.Kind == OpBackwardWeight:
			if !zb {
				t.Fatalf("%s: W op in non-zero-bubble chunk", desc)
			}
			if _, dup := wAt[op.MB]; dup || op.MB <= lastW {
				t.Fatalf("%s: W order/dup at %d: %v", desc, i, ops)
			}
			wAt[op.MB] = i
			lastW = op.MB
		case op.Kind == OpOptimize:
			if optAt >= 0 {
				t.Fatalf("%s: duplicate optimizer", desc)
			}
			optAt = i
		default:
			t.Fatalf("%s: unexpected op %v", desc, op)
		}
	}
	if len(fpAt) != mbs || len(bpAt) != mbs {
		t.Fatalf("%s: %d FP / %d B, want %d each", desc, len(fpAt), len(bpAt), mbs)
	}
	if zb && len(wAt) != mbs {
		t.Fatalf("%s: %d W, want %d", desc, len(wAt), mbs)
	}
	if optAt != len(ops)-1 {
		t.Fatalf("%s: optimizer at %d, want last (%d)", desc, optAt, len(ops)-1)
	}
	for m := 0; m < mbs; m++ {
		if fpAt[m] >= bpAt[m] {
			t.Fatalf("%s: B%d at %d not after FP%d at %d", desc, m, bpAt[m], m, fpAt[m])
		}
		if zb && wAt[m] <= bpAt[m] {
			t.Fatalf("%s: W%d at %d not after B%d at %d", desc, m, wAt[m], m, bpAt[m])
		}
	}
}

// replayPlan statically executes a plan: each chunk advances through its op
// list as soon as its cross-chunk dependency is satisfied. Any wedge is a
// dependency-unsound schedule — the engine would deadlock on it.
func replayPlan(t *testing.T, desc string, p *Plan) {
	t.Helper()
	nv := p.NumVirtual()
	next := make([]int, nv)
	type ev struct{ chunk, mb int }
	fpDone := map[ev]bool{}
	bpDone := map[ev]bool{}
	for {
		progress, done := false, true
		for v := 0; v < nv; v++ {
			for next[v] < len(p.Chunks[v]) {
				dep := p.Deps[v][next[v]]
				if dep.Chunk >= 0 {
					if dep.Chunk >= nv {
						t.Fatalf("%s: chunk %d op %d dep on bad chunk %d", desc, v, next[v], dep.Chunk)
					}
					satisfied := false
					switch dep.On {
					case OpForward:
						satisfied = fpDone[ev{dep.Chunk, dep.MB}]
					case OpBackward:
						satisfied = bpDone[ev{dep.Chunk, dep.MB}]
					default:
						t.Fatalf("%s: chunk %d op %d waits on %v", desc, v, next[v], dep.On)
					}
					if !satisfied {
						break
					}
				}
				op := p.Chunks[v][next[v]]
				switch {
				case op.Kind == OpForward:
					fpDone[ev{v, op.MB}] = true
				case backwardOf(op.Kind):
					bpDone[ev{v, op.MB}] = true
				}
				next[v]++
				progress = true
			}
			if next[v] < len(p.Chunks[v]) {
				done = false
			}
		}
		if done {
			return
		}
		if !progress {
			t.Fatalf("%s: plan deadlocked at %v", desc, next)
		}
	}
}

// The schedule-zoo property grid: every schedule × stages 2..8 ×
// micro-batches 1..16 × virtual 1..4 generates op lists that are
// dependency-sound (static replay cannot wedge), complete (exact op
// counts), and correctly ordered — including the M < S warmup-truncation
// corner.
func TestSchedulePropertyGrid(t *testing.T) {
	for _, kind := range []ScheduleKind{Schedule1F1B, ScheduleGPipe, ScheduleInterleaved, ScheduleZeroBubble} {
		for stages := 2; stages <= 8; stages++ {
			for mbs := 1; mbs <= 16; mbs++ {
				for virtual := 1; virtual <= 4; virtual++ {
					if kind == ScheduleZeroBubble && virtual > 1 {
						continue
					}
					desc := kind.String()
					plan, err := BuildPlan(kind, stages, mbs, virtual)
					if err != nil {
						t.Fatalf("BuildPlan(%s,S=%d,M=%d,V=%d): %v", desc, stages, mbs, virtual, err)
					}
					if got := len(plan.Chunks); got != stages*virtual {
						t.Fatalf("%s S=%d M=%d V=%d: %d chunks", desc, stages, mbs, virtual, got)
					}
					for v, ops := range plan.Chunks {
						checkChunkOps(t,
							desc+" chunk", ops, mbs, kind == ScheduleZeroBubble)
						if len(plan.Deps[v]) != len(ops) {
							t.Fatalf("%s chunk %d: %d deps for %d ops", desc, v, len(plan.Deps[v]), len(ops))
						}
					}
					replayPlan(t, desc, plan)
				}
			}
		}
	}
}

func TestScheduleRejectsBadArgs(t *testing.T) {
	if _, err := BuildPlan(Schedule1F1B, 4, 0, 1); err == nil {
		t.Fatal("zero micro-batches accepted")
	}
	if _, err := BuildPlan(Schedule1F1B, 0, 4, 1); err == nil {
		t.Fatal("zero stages accepted")
	}
	if _, err := BuildPlan(ScheduleKind(99), 4, 4, 1); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if _, err := BuildPlan(ScheduleZeroBubble, 4, 4, 2); err == nil {
		t.Fatal("zero-bubble with virtual stages accepted")
	}
	if _, err := ChunkOps(Schedule1F1B, 4, 4, 4, 1); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if _, err := legacyStageSchedule(ScheduleZeroBubble, 0, 4, 4); err == nil {
		t.Fatal("legacy path accepted a new-kind schedule")
	}
}
