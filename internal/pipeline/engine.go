package pipeline

import (
	"fmt"
	"sync"
	"time"

	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Config describes one pipeline training job.
type Config struct {
	Model        model.LLM
	Stages       int
	MicroBatches int
	Epochs       int
	Schedule     ScheduleKind
	// VirtualPerStage > 1 enables interleaved scheduling (Megatron-style
	// virtual pipeline stages, the bubble-*reduction* approach of the
	// paper's related work [29,34]): the model is split into
	// Stages×VirtualPerStage chunks, chunk v running on device v mod
	// Stages. Chunks sharing a device contend for its (serial) kernel
	// stream, producing a greedy interleaved schedule whose Type-A bubbles
	// shrink by roughly 1/V. Default 1 (plain 1F1B/GPipe).
	VirtualPerStage int
	// RecordOps enables the per-stage op timeline (Figure 1a).
	RecordOps bool
}

func (c *Config) normalize() error {
	if c.Stages < 1 {
		return fmt.Errorf("pipeline: stages %d < 1", c.Stages)
	}
	if c.MicroBatches < 1 {
		return fmt.Errorf("pipeline: micro-batches %d < 1", c.MicroBatches)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("pipeline: epochs %d < 1", c.Epochs)
	}
	if c.Schedule == 0 {
		c.Schedule = Schedule1F1B
	}
	if c.VirtualPerStage <= 0 {
		c.VirtualPerStage = 1
	}
	return nil
}

// numVirtual is the total virtual stage count.
func (c Config) numVirtual() int { return c.Stages * c.VirtualPerStage }

// OpSpan records one executed op for the Figure-1 timeline.
type OpSpan struct {
	Op    Op
	Start time.Duration
	End   time.Duration
}

// Trainer is one pipeline-parallel training run across a set of GPUs.
// All per-epoch dependency latches are pre-allocated at Start, so stages can
// never observe a half-installed epoch.
type Trainer struct {
	cfg     Config
	eng     simtime.Engine
	procs   *simproc.Runtime
	devices []*simgpu.Device

	// Immutable after Start:
	clients  []*simgpu.Client
	goEpochs []*simproc.Latch     // goEpochs[e] releases epoch e
	fpDone   [][][]*simproc.Latch // [epoch][stage][mb]
	bpDone   [][][]*simproc.Latch

	mu           sync.Mutex
	epochStart   []time.Duration
	epochEnd     []time.Duration
	opLog        [][]OpSpan // per stage
	onEpochStart []func(epoch int, t time.Duration)
	onEpochEnd   []func(epoch int, t time.Duration)
	arrived      int
	started      bool
	failed       error

	done *simproc.Latch
}

// New builds a trainer over one device per stage.
func New(eng simtime.Engine, procs *simproc.Runtime, devices []*simgpu.Device, cfg Config) (*Trainer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(devices) != cfg.Stages {
		return nil, fmt.Errorf("pipeline: %d devices for %d stages", len(devices), cfg.Stages)
	}
	t := &Trainer{
		cfg:     cfg,
		eng:     eng,
		procs:   procs,
		devices: devices,
		opLog:   make([][]OpSpan, cfg.Stages),
		done:    simproc.NewLatch(),
	}
	return t, nil
}

// OnEpochStart registers a hook invoked (in engine context) when each epoch
// begins. This is one of the three instrumentation points of paper §4.6.
func (t *Trainer) OnEpochStart(fn func(epoch int, ts time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEpochStart = append(t.onEpochStart, fn)
}

// OnEpochEnd registers a hook invoked when each epoch's barrier completes.
func (t *Trainer) OnEpochEnd(fn func(epoch int, ts time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEpochEnd = append(t.onEpochEnd, fn)
}

// Done returns a latch set when all epochs have finished.
func (t *Trainer) Done() *simproc.Latch { return t.done }

// Client returns the training GPU client of a stage (valid after Start).
func (t *Trainer) Client(stage int) *simgpu.Client { return t.clients[stage] }

// Device returns the GPU device of a stage.
func (t *Trainer) Device(stage int) *simgpu.Device { return t.devices[stage] }

// Config returns the training configuration.
func (t *Trainer) Config() Config { return t.cfg }

// EpochTimes returns per-epoch (start, end) pairs recorded so far.
func (t *Trainer) EpochTimes() (starts, ends []time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	starts = append([]time.Duration(nil), t.epochStart...)
	ends = append([]time.Duration(nil), t.epochEnd...)
	return starts, ends
}

// OpLog returns the recorded op timeline for a stage (RecordOps only).
func (t *Trainer) OpLog(stage int) []OpSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]OpSpan(nil), t.opLog[stage]...)
}

// Err reports a training failure (e.g. OOM during setup).
func (t *Trainer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// TotalTime reports the makespan from first epoch start to last epoch end.
func (t *Trainer) TotalTime() time.Duration {
	starts, ends := t.EpochTimes()
	if len(starts) == 0 || len(ends) == 0 {
		return 0
	}
	return ends[len(ends)-1] - starts[0]
}

// Start allocates training memory on every stage and spawns the stage
// processes. It returns immediately; completion is observable via Done.
func (t *Trainer) Start() error {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return fmt.Errorf("pipeline: already started")
	}
	t.started = true
	t.mu.Unlock()

	clients := make([]*simgpu.Client, t.cfg.Stages)
	for s := 0; s < t.cfg.Stages; s++ {
		// Weight 2: the training process drives multiple CUDA streams
		// (compute + collectives), so it exerts about twice the
		// thread-block pressure of a single-stream side task when sharing
		// the device. This is what bounds the MPS baseline's damage for
		// light side tasks (paper Table 2).
		c, err := t.devices[s].NewClient(simgpu.ClientConfig{
			Name:   fmt.Sprintf("train-s%d", s),
			Weight: 2,
		})
		if err != nil {
			return fmt.Errorf("pipeline: stage %d client: %w", s, err)
		}
		need := t.cfg.Model.StageMemUsed(s, t.cfg.Stages, t.cfg.MicroBatches)
		if err := c.AllocMem(need); err != nil {
			return fmt.Errorf("pipeline: stage %d memory: %w", s, err)
		}
		clients[s] = c
	}
	t.clients = clients

	nv := t.cfg.numVirtual()
	t.goEpochs = make([]*simproc.Latch, t.cfg.Epochs)
	t.fpDone = make([][][]*simproc.Latch, t.cfg.Epochs)
	t.bpDone = make([][][]*simproc.Latch, t.cfg.Epochs)
	for e := 0; e < t.cfg.Epochs; e++ {
		t.goEpochs[e] = simproc.NewLatch()
		t.fpDone[e] = newLatchGrid(nv, t.cfg.MicroBatches)
		t.bpDone[e] = newLatchGrid(nv, t.cfg.MicroBatches)
	}

	for v := 0; v < nv; v++ {
		v := v
		t.procs.Spawn(fmt.Sprintf("pipe-v%d", v), func(p *simproc.Process) error {
			return t.runStage(p, v)
		})
	}
	t.beginEpoch(0)
	return nil
}

// beginEpoch records the epoch start, fires the instrumentation hooks and
// releases the stages. Runs in engine-callback or caller context.
func (t *Trainer) beginEpoch(epoch int) {
	now := t.eng.Now()
	t.mu.Lock()
	t.arrived = 0
	t.epochStart = append(t.epochStart, now)
	hooks := append([]func(epoch int, ts time.Duration){}, t.onEpochStart...)
	t.mu.Unlock()

	for _, h := range hooks {
		h(epoch, now)
	}
	t.goEpochs[epoch].Set()
}

// stageArrived is called by each stage at its epoch barrier; the last
// arrival closes the epoch and opens the next (or finishes training).
func (t *Trainer) stageArrived(epoch int) {
	t.mu.Lock()
	t.arrived++
	if t.arrived < t.cfg.numVirtual() {
		t.mu.Unlock()
		return
	}
	now := t.eng.Now()
	t.epochEnd = append(t.epochEnd, now)
	hooks := append([]func(epoch int, ts time.Duration){}, t.onEpochEnd...)
	last := epoch+1 >= t.cfg.Epochs
	t.mu.Unlock()

	for _, h := range hooks {
		h(epoch, now)
	}
	if last {
		t.done.Set()
		return
	}
	t.beginEpoch(epoch + 1)
}

// runStage is the body of one (virtual) stage process: Epochs times through
// the stage's schedule, blocking on cross-stage dependencies. With
// VirtualPerStage == 1 the virtual index v IS the physical stage; otherwise
// chunk v executes on device v mod Stages, its kernels FIFO-interleaving
// with the device's other chunks.
func (t *Trainer) runStage(p *simproc.Process, v int) error {
	nv := t.cfg.numVirtual()
	ops, err := StageSchedule(t.cfg.Schedule, v, nv, t.cfg.MicroBatches)
	if err != nil {
		return err
	}
	m := t.cfg.Model
	chunks := time.Duration(t.cfg.VirtualPerStage)
	phys := v % t.cfg.Stages
	client := t.clients[phys]
	fpDur := m.FPPerMB / chunks
	bpDur := m.BPPerMB / chunks
	optDur := m.OptStep / chunks

	for epoch := 0; epoch < t.cfg.Epochs; epoch++ {
		t.goEpochs[epoch].Wait(p)
		fpDone, bpDone := t.fpDone[epoch], t.bpDone[epoch]

		for _, op := range ops {
			switch op.Kind {
			case OpForward:
				if v > 0 {
					fpDone[v-1][op.MB].Wait(p)
					p.Sleep(m.CommLatency) // activation transfer
				}
				if err := t.exec(p, client, phys, op, fpDur); err != nil {
					return err
				}
				fpDone[v][op.MB].Set()
			case OpBackward:
				if v < nv-1 {
					bpDone[v+1][op.MB].Wait(p)
					p.Sleep(m.CommLatency) // gradient transfer
				}
				if err := t.exec(p, client, phys, op, bpDur); err != nil {
					return err
				}
				bpDone[v][op.MB].Set()
			case OpOptimize:
				if err := t.exec(p, client, phys, op, optDur); err != nil {
					return err
				}
			}
		}
		t.stageArrived(epoch)
	}
	return nil
}

// exec runs one op's kernel and logs its span.
func (t *Trainer) exec(p *simproc.Process, c *simgpu.Client, s int, op Op, d time.Duration) error {
	start := p.Now()
	err := c.Exec(p, simgpu.KernelSpec{
		Name:     fmt.Sprintf("s%d-%v-%d", s, op.Kind, op.MB),
		Duration: d,
		Demand:   1.0,
		Weight:   1.0,
	})
	if err != nil {
		t.mu.Lock()
		if t.failed == nil {
			t.failed = fmt.Errorf("pipeline: stage %d %v mb %d: %w", s, op.Kind, op.MB, err)
		}
		t.mu.Unlock()
		return err
	}
	if t.cfg.RecordOps {
		t.mu.Lock()
		t.opLog[s] = append(t.opLog[s], OpSpan{Op: op, Start: start, End: p.Now()})
		t.mu.Unlock()
	}
	return nil
}

func newLatchGrid(stages, mbs int) [][]*simproc.Latch {
	grid := make([][]*simproc.Latch, stages)
	for s := range grid {
		grid[s] = make([]*simproc.Latch, mbs)
		for m := range grid[s] {
			grid[s][m] = simproc.NewLatch()
		}
	}
	return grid
}
