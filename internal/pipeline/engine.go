package pipeline

import (
	"fmt"
	"sync"
	"time"

	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Config describes one pipeline training job.
type Config struct {
	Model        model.LLM
	Stages       int
	MicroBatches int
	Epochs       int
	Schedule     ScheduleKind
	// VirtualPerStage > 1 enables interleaved scheduling (Megatron-style
	// virtual pipeline stages, the bubble-*reduction* approach of the
	// paper's related work [29,34]): the model is split into
	// Stages×VirtualPerStage chunks, chunk v running on device v mod
	// Stages. Chunks sharing a device contend for its (serial) kernel
	// stream, producing a greedy interleaved schedule whose Type-A bubbles
	// shrink by roughly 1/V. Default 1 (plain 1F1B/GPipe); defaults to 2
	// when Schedule is ScheduleInterleaved.
	VirtualPerStage int
	// RecordOps enables the per-stage op timeline (Figure 1a).
	RecordOps bool
	// LegacySchedule routes 1F1B/GPipe op-list generation through the
	// retained pre-generator emitters — the FREERIDE_ORACLE_SCHEDULE
	// differential arm. Kinds the legacy switch never knew (interleaved as
	// a first-class kind, zero-bubble) always use the generator.
	LegacySchedule bool
	// MBSchedule, when set, re-evaluates the epoch's micro-batch count at
	// each epoch start (the drift→schedule regeneration hook: elastic
	// micro-batch resizing recomputes the actual op lists, not just the
	// reported trace). Values are clamped to [1, max(MicroBatches, MBCap)].
	// Nil keeps the static MicroBatches — the byte-identical default path.
	MBSchedule func(epoch int, start time.Duration) int
	// MBCap bounds MBSchedule's values; dependency latches and activation
	// memory are provisioned for max(MicroBatches, MBCap) up front.
	MBCap int
}

func (c *Config) normalize() error {
	if c.Stages < 1 {
		return fmt.Errorf("pipeline: stages %d < 1", c.Stages)
	}
	if c.MicroBatches < 1 {
		return fmt.Errorf("pipeline: micro-batches %d < 1", c.MicroBatches)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("pipeline: epochs %d < 1", c.Epochs)
	}
	if c.Schedule == 0 {
		c.Schedule = Schedule1F1B
	}
	if c.VirtualPerStage <= 0 {
		c.VirtualPerStage = 1
	}
	if c.Schedule == ScheduleInterleaved && c.VirtualPerStage < 2 {
		c.VirtualPerStage = 2
	}
	if c.Schedule == ScheduleZeroBubble && c.VirtualPerStage > 1 {
		return fmt.Errorf("pipeline: zero-bubble schedule does not compose with virtual stages (V=%d)", c.VirtualPerStage)
	}
	if c.MBCap < c.MicroBatches {
		c.MBCap = c.MicroBatches
	}
	return nil
}

// mbAlloc is the micro-batch count latches and activation memory are
// provisioned for.
func (c Config) mbAlloc() int { return c.MBCap }

// numVirtual is the total virtual stage count.
func (c Config) numVirtual() int { return c.Stages * c.VirtualPerStage }

// OpSpan records one executed op for the Figure-1 timeline.
type OpSpan struct {
	Op    Op
	Start time.Duration
	End   time.Duration
}

// Trainer is one pipeline-parallel training run across a set of GPUs.
// All per-epoch dependency latches are pre-allocated at Start, so stages can
// never observe a half-installed epoch.
type Trainer struct {
	cfg     Config
	eng     simtime.Engine
	procs   *simproc.Runtime
	devices []*simgpu.Device

	// Immutable after Start:
	clients  []*simgpu.Client
	plan     *Plan                // the generated schedule (base micro-batch count)
	goEpochs []*simproc.Latch     // goEpochs[e] releases epoch e
	fpDone   [][][]*simproc.Latch // [epoch][stage][mb]
	bpDone   [][][]*simproc.Latch
	// epochMB[e] is epoch e's micro-batch count, written by beginEpoch
	// before the epoch latch opens (MBSchedule only; nil otherwise).
	epochMB []int
	// planCache memoizes re-generated plans per micro-batch count (guarded
	// by mu; MBSchedule only).
	planCache map[int]*Plan

	mu           sync.Mutex
	epochStart   []time.Duration
	epochEnd     []time.Duration
	opLog        [][]OpSpan // per stage
	onEpochStart []func(epoch int, t time.Duration)
	onEpochEnd   []func(epoch int, t time.Duration)
	arrived      int
	started      bool
	failed       error

	done *simproc.Latch
}

// New builds a trainer over one device per stage.
func New(eng simtime.Engine, procs *simproc.Runtime, devices []*simgpu.Device, cfg Config) (*Trainer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(devices) != cfg.Stages {
		return nil, fmt.Errorf("pipeline: %d devices for %d stages", len(devices), cfg.Stages)
	}
	t := &Trainer{
		cfg:     cfg,
		eng:     eng,
		procs:   procs,
		devices: devices,
		opLog:   make([][]OpSpan, cfg.Stages),
		done:    simproc.NewLatch(eng),
	}
	return t, nil
}

// OnEpochStart registers a hook invoked (in engine context) when each epoch
// begins. This is one of the three instrumentation points of paper §4.6.
func (t *Trainer) OnEpochStart(fn func(epoch int, ts time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEpochStart = append(t.onEpochStart, fn)
}

// OnEpochEnd registers a hook invoked when each epoch's barrier completes.
func (t *Trainer) OnEpochEnd(fn func(epoch int, ts time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEpochEnd = append(t.onEpochEnd, fn)
}

// Done returns a latch set when all epochs have finished.
func (t *Trainer) Done() *simproc.Latch { return t.done }

// Client returns the training GPU client of a stage (valid after Start).
func (t *Trainer) Client(stage int) *simgpu.Client { return t.clients[stage] }

// Device returns the GPU device of a stage.
func (t *Trainer) Device(stage int) *simgpu.Device { return t.devices[stage] }

// Config returns the training configuration.
func (t *Trainer) Config() Config { return t.cfg }

// EpochTimes returns per-epoch (start, end) pairs recorded so far.
func (t *Trainer) EpochTimes() (starts, ends []time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	starts = append([]time.Duration(nil), t.epochStart...)
	ends = append([]time.Duration(nil), t.epochEnd...)
	return starts, ends
}

// OpLog returns the recorded op timeline for a stage (RecordOps only).
func (t *Trainer) OpLog(stage int) []OpSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]OpSpan(nil), t.opLog[stage]...)
}

// Err reports a training failure (e.g. OOM during setup).
func (t *Trainer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// TotalTime reports the makespan from first epoch start to last epoch end.
func (t *Trainer) TotalTime() time.Duration {
	starts, ends := t.EpochTimes()
	if len(starts) == 0 || len(ends) == 0 {
		return 0
	}
	return ends[len(ends)-1] - starts[0]
}

// Start allocates training memory on every stage and spawns the stage
// processes. It returns immediately; completion is observable via Done.
func (t *Trainer) Start() error {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return fmt.Errorf("pipeline: already started")
	}
	t.started = true
	t.mu.Unlock()

	clients := make([]*simgpu.Client, t.cfg.Stages)
	for s := 0; s < t.cfg.Stages; s++ {
		// Weight 2: the training process drives multiple CUDA streams
		// (compute + collectives), so it exerts about twice the
		// thread-block pressure of a single-stream side task when sharing
		// the device. This is what bounds the MPS baseline's damage for
		// light side tasks (paper Table 2).
		c, err := t.devices[s].NewClient(simgpu.ClientConfig{
			Name:   fmt.Sprintf("train-s%d", s),
			Weight: 2,
		})
		if err != nil {
			return fmt.Errorf("pipeline: stage %d client: %w", s, err)
		}
		// Activation memory is provisioned for the largest micro-batch
		// count the run can reach (mbAlloc == MicroBatches without the
		// resize hook).
		need := t.cfg.Model.StageMemUsedSched(t.cfg.Schedule, s, t.cfg.Stages,
			t.cfg.mbAlloc(), t.cfg.VirtualPerStage)
		if err := c.AllocMem(need); err != nil {
			return fmt.Errorf("pipeline: stage %d memory: %w", s, err)
		}
		clients[s] = c
	}
	t.clients = clients

	plan, err := t.planFor(t.cfg.MicroBatches)
	if err != nil {
		return err
	}
	t.plan = plan

	nv := t.cfg.numVirtual()
	t.goEpochs = make([]*simproc.Latch, t.cfg.Epochs)
	t.fpDone = make([][][]*simproc.Latch, t.cfg.Epochs)
	t.bpDone = make([][][]*simproc.Latch, t.cfg.Epochs)
	for e := 0; e < t.cfg.Epochs; e++ {
		t.goEpochs[e] = simproc.NewLatch(t.eng)
		t.fpDone[e] = newLatchGrid(t.eng, nv, t.cfg.mbAlloc())
		t.bpDone[e] = newLatchGrid(t.eng, nv, t.cfg.mbAlloc())
	}
	if t.cfg.MBSchedule != nil {
		t.epochMB = make([]int, t.cfg.Epochs)
	}

	for v := 0; v < nv; v++ {
		v := v
		t.procs.SpawnInline(fmt.Sprintf("pipe-v%d", v), func(p *simproc.Process) {
			t.startStage(p, v)
		})
	}
	t.beginEpoch(0)
	return nil
}

// planFor builds (and, under MBSchedule, memoizes) the schedule plan for a
// micro-batch count. The legacy oracle arm routes the kinds the historic
// StageSchedule switch knew through its retained emitters; dependency edges
// are derived identically either way.
func (t *Trainer) planFor(mbs int) (*Plan, error) {
	t.mu.Lock()
	if p, ok := t.planCache[mbs]; ok {
		t.mu.Unlock()
		return p, nil
	}
	t.mu.Unlock()
	var p *Plan
	var err error
	if t.cfg.LegacySchedule && (t.cfg.Schedule == Schedule1F1B || t.cfg.Schedule == ScheduleGPipe) {
		p, err = t.legacyPlan(mbs)
	} else {
		p, err = BuildPlan(t.cfg.Schedule, t.cfg.Stages, mbs, t.cfg.VirtualPerStage)
	}
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.planCache == nil {
		t.planCache = make(map[int]*Plan)
	}
	t.planCache[mbs] = p
	t.mu.Unlock()
	return p, nil
}

// legacyPlan assembles a plan from the pre-generator emitters.
func (t *Trainer) legacyPlan(mbs int) (*Plan, error) {
	nv := t.cfg.numVirtual()
	p := &Plan{
		Kind:            t.cfg.Schedule,
		Stages:          t.cfg.Stages,
		MicroBatches:    mbs,
		VirtualPerStage: t.cfg.VirtualPerStage,
	}
	for v := 0; v < nv; v++ {
		ops, err := legacyStageSchedule(t.cfg.Schedule, v, nv, mbs)
		if err != nil {
			return nil, err
		}
		p.Chunks = append(p.Chunks, ops)
		p.Deps = append(p.Deps, depsFor(ops, v, nv))
	}
	return p, nil
}

// beginEpoch records the epoch start, fires the instrumentation hooks and
// releases the stages. Runs in engine-callback or caller context.
func (t *Trainer) beginEpoch(epoch int) {
	now := t.eng.Now()
	if t.cfg.MBSchedule != nil {
		mb := t.cfg.MBSchedule(epoch, now)
		if mb < 1 {
			mb = t.cfg.MicroBatches
		}
		if mb > t.cfg.mbAlloc() {
			mb = t.cfg.mbAlloc()
		}
		t.epochMB[epoch] = mb
	}
	t.mu.Lock()
	t.arrived = 0
	t.epochStart = append(t.epochStart, now)
	hooks := append([]func(epoch int, ts time.Duration){}, t.onEpochStart...)
	t.mu.Unlock()

	for _, h := range hooks {
		h(epoch, now)
	}
	t.goEpochs[epoch].Set()
}

// stageArrived is called by each stage at its epoch barrier; the last
// arrival closes the epoch and opens the next (or finishes training).
func (t *Trainer) stageArrived(epoch int) {
	t.mu.Lock()
	t.arrived++
	if t.arrived < t.cfg.numVirtual() {
		t.mu.Unlock()
		return
	}
	now := t.eng.Now()
	t.epochEnd = append(t.epochEnd, now)
	hooks := append([]func(epoch int, ts time.Duration){}, t.onEpochEnd...)
	last := epoch+1 >= t.cfg.Epochs
	t.mu.Unlock()

	for _, h := range hooks {
		h(epoch, now)
	}
	if last {
		t.done.Set()
		return
	}
	t.beginEpoch(epoch + 1)
}

// stageRun is the continuation-passing body of one (virtual) stage: Epochs
// times through the stage's schedule, blocking on cross-stage dependencies —
// entirely on the engine goroutine, with no process-goroutine handshake per
// dependency, transfer or kernel. With VirtualPerStage == 1 the virtual
// index v IS the physical stage; otherwise chunk v executes on device
// v mod Stages, its kernels FIFO-interleaving with the device's other
// chunks.
type stageRun struct {
	t      *Trainer
	p      *simproc.Process
	v      int
	phys   int
	nv     int
	client *simgpu.Client
	ops    []Op
	// deps are the plan's cross-chunk edges, parallel to ops.
	deps []Dep
	// names are the per-op kernel labels, precomputed so the op loop never
	// formats strings.
	names  []string
	curMB  int
	fpDur  time.Duration
	bpDur  time.Duration
	bDur   time.Duration // zero-bubble activation-gradient half
	wDur   time.Duration // zero-bubble weight-gradient half
	optDur time.Duration
	comm   time.Duration

	epoch   int
	i       int // index into ops
	opStart time.Duration

	// spec is the reusable kernel spec of the op loop; Name/Duration are
	// rewritten per op, Demand/Weight are fixed at startStage (the launch
	// reads the spec synchronously, so reuse is safe).
	spec simgpu.KernelSpec

	// Pre-bound continuations: one closure each for the whole run.
	afterGoFn   func(any)
	afterDepFn  func(any)
	afterCommFn func(any)
	afterExecFn func(any)
}

// startStage builds and launches the stage machine (inline process body).
func (t *Trainer) startStage(p *simproc.Process, v int) {
	m := t.cfg.Model
	chunks := time.Duration(t.cfg.VirtualPerStage)
	phys := v % t.cfg.Stages
	bpDur := m.BPPerMB / chunks
	r := &stageRun{
		t:      t,
		p:      p,
		v:      v,
		phys:   phys,
		nv:     t.cfg.numVirtual(),
		client: t.clients[phys],
		fpDur:  m.FPPerMB / chunks,
		bpDur:  bpDur,
		bDur:   bpDur / 2,
		wDur:   bpDur - bpDur/2,
		optDur: m.OptStep / chunks,
		comm:   m.CommLatency,
	}
	r.spec = simgpu.KernelSpec{Demand: 1.0, Weight: 1.0}
	r.bindChunk(t.plan)
	r.afterGoFn = r.afterGo
	r.afterDepFn = r.afterDep
	r.afterCommFn = r.afterComm
	r.afterExecFn = r.afterExec
	r.waitEpoch()
}

// bindChunk points the run at its chunk of a plan, precomputing kernel
// labels.
func (r *stageRun) bindChunk(plan *Plan) {
	r.ops = plan.Chunks[r.v]
	r.deps = plan.Deps[r.v]
	r.curMB = plan.MicroBatches
	r.names = make([]string, len(r.ops))
	for i, op := range r.ops {
		r.names[i] = fmt.Sprintf("s%d-%v-%d", r.phys, op.Kind, op.MB)
	}
}

// waitEpoch blocks on the epoch-release latch.
func (r *stageRun) waitEpoch() {
	r.t.goEpochs[r.epoch].WaitThen(r.p, r.afterGoFn)
}

func (r *stageRun) afterGo(any) {
	if r.t.cfg.MBSchedule != nil {
		if mb := r.t.epochMB[r.epoch]; mb != r.curMB {
			plan, err := r.t.planFor(mb)
			if err != nil {
				r.p.Exit(err)
				return
			}
			r.bindChunk(plan)
		}
	}
	r.i = 0
	r.nextOp()
}

// nextOp dispatches ops[i], or closes the epoch when the schedule is done.
func (r *stageRun) nextOp() {
	if r.i >= len(r.ops) {
		epoch := r.epoch
		r.epoch++
		r.t.stageArrived(epoch)
		if r.epoch >= r.t.cfg.Epochs {
			r.p.Exit(nil)
			return
		}
		r.waitEpoch()
		return
	}
	if dep := r.deps[r.i]; dep.Chunk >= 0 {
		if dep.On == OpForward {
			r.t.fpDone[r.epoch][dep.Chunk][dep.MB].WaitThen(r.p, r.afterDepFn)
		} else {
			r.t.bpDone[r.epoch][dep.Chunk][dep.MB].WaitThen(r.p, r.afterDepFn)
		}
		return
	}
	r.execOp()
}

// afterDep runs once the op's cross-stage dependency is satisfied: model the
// activation/gradient transfer, then execute.
func (r *stageRun) afterDep(any) {
	r.p.SleepThen(r.comm, r.afterCommFn)
}

func (r *stageRun) afterComm(any) {
	r.execOp()
}

// execOp issues the op's kernel.
func (r *stageRun) execOp() {
	op := r.ops[r.i]
	var d time.Duration
	switch op.Kind {
	case OpForward:
		d = r.fpDur
	case OpBackward:
		d = r.bpDur
	case OpBackwardInput:
		d = r.bDur
	case OpBackwardWeight:
		d = r.wDur
	default:
		d = r.optDur
	}
	r.opStart = r.p.Now()
	r.spec.Name = r.names[r.i]
	r.spec.Duration = d
	r.client.ExecThen(r.p, &r.spec, r.afterExecFn)
}

// afterExec retires the op: record its span, release dependents, advance.
func (r *stageRun) afterExec(res any) {
	t := r.t
	op := r.ops[r.i]
	if res != nil {
		err, ok := res.(error)
		if !ok {
			err = fmt.Errorf("pipeline: unexpected completion payload %T", res)
		}
		t.mu.Lock()
		if t.failed == nil {
			t.failed = fmt.Errorf("pipeline: stage %d %v mb %d: %w", r.phys, op.Kind, op.MB, err)
		}
		t.mu.Unlock()
		r.p.Exit(err)
		return
	}
	if t.cfg.RecordOps {
		t.mu.Lock()
		t.opLog[r.phys] = append(t.opLog[r.phys], OpSpan{Op: op, Start: r.opStart, End: r.p.Now()})
		t.mu.Unlock()
	}
	switch op.Kind {
	case OpForward:
		t.fpDone[r.epoch][r.v][op.MB].Set()
	case OpBackward, OpBackwardInput:
		// The activation gradient is what the upstream stage waits on; the
		// weight-gradient W half signals nothing.
		t.bpDone[r.epoch][r.v][op.MB].Set()
	}
	r.i++
	r.nextOp()
}

func newLatchGrid(eng simtime.Engine, stages, mbs int) [][]*simproc.Latch {
	grid := make([][]*simproc.Latch, stages)
	for s := range grid {
		grid[s] = make([]*simproc.Latch, mbs)
		for m := range grid[s] {
			grid[s][m] = simproc.NewLatch(eng)
		}
	}
	return grid
}
