package sidetask

import (
	"fmt"

	"freeride/internal/graph"
	"freeride/internal/imageproc"
	"freeride/internal/model"
	"freeride/internal/nn"
)

// WorkScale controls how much *real* host computation the built-in tasks
// perform per step (the algorithms in internal/{graph,nn,imageproc}).
// Scale 0 skips real work (pure cost-model simulation, for long parameter
// sweeps); 1 is the default small-but-real configuration.
type WorkScale int

// Built-in work scales.
const (
	WorkNone  WorkScale = 0
	WorkSmall WorkScale = 1
)

// trainTask adapts a real nn.Trainer to the iterative interface with the
// ResNet/VGG cost profile — the Go translation of the paper's Figure 6.
type trainTask struct {
	profile model.TaskProfile
	scale   WorkScale
	trainer *nn.Trainer
}

var (
	_ Iterative = (*trainTask)(nil)
	_ Stepper   = (*trainTask)(nil)
)

func (t *trainTask) CreateSideTask(ctx *Ctx) error {
	// "Load the dataset, data loader, loss function and optimizer states
	// in CPU memory" — the real model and synthetic dataset are built here.
	if t.scale == WorkNone {
		return nil
	}
	var err error
	t.trainer, err = nn.NewTrainer([]int{32, 64, 10}, 2048, 32, 0.005, ctx.Rng.Int63())
	return err
}

func (t *trainTask) InitSideTask(ctx *Ctx) error {
	// Move context into GPU memory.
	return ctx.GPU.AllocMem(t.profile.MemBytes)
}

func (t *trainTask) RunNextStep(ctx *Ctx) error {
	ctx.HostWork(t.profile.HostOverhead)
	if err := t.StepWork(ctx); err != nil {
		return err
	}
	return ctx.ExecStepKernel()
}

// StepWork is the step's CPU-side work (Stepper; runs on the event loop).
func (t *trainTask) StepWork(*Ctx) error {
	if t.trainer != nil {
		if _, err := t.trainer.TrainStep(); err != nil {
			return err
		}
	}
	return nil
}

func (t *trainTask) StopSideTask(ctx *Ctx) error {
	ctx.GPU.FreeMem(t.profile.MemBytes)
	return nil
}

// pagerankTask runs real PageRank iterations on a synthetic power-law
// graph (the Orkut stand-in).
type pagerankTask struct {
	profile model.TaskProfile
	scale   WorkScale
	pr      *graph.PageRank
}

var (
	_ Iterative = (*pagerankTask)(nil)
	_ Stepper   = (*pagerankTask)(nil)
)

func (t *pagerankTask) CreateSideTask(ctx *Ctx) error {
	if t.scale == WorkNone {
		return nil
	}
	g := graph.RMAT(graph.RMATConfig{Nodes: 1 << 10, EdgeFactor: 8, Seed: ctx.Rng.Int63()})
	t.pr = graph.NewPageRank(g, 0.85)
	return nil
}

func (t *pagerankTask) InitSideTask(ctx *Ctx) error {
	return ctx.GPU.AllocMem(t.profile.MemBytes)
}

func (t *pagerankTask) RunNextStep(ctx *Ctx) error {
	ctx.HostWork(t.profile.HostOverhead)
	if err := t.StepWork(ctx); err != nil {
		return err
	}
	return ctx.ExecStepKernel()
}

// StepWork is the step's CPU-side work (Stepper; runs on the event loop).
func (t *pagerankTask) StepWork(*Ctx) error {
	if t.pr != nil {
		t.pr.Step()
	}
	return nil
}

func (t *pagerankTask) StopSideTask(ctx *Ctx) error {
	ctx.GPU.FreeMem(t.profile.MemBytes)
	return nil
}

// sgdTask runs real SGD matrix factorization passes.
type sgdTask struct {
	profile model.TaskProfile
	scale   WorkScale
	mf      *graph.SGDMF
}

var (
	_ Iterative = (*sgdTask)(nil)
	_ Stepper   = (*sgdTask)(nil)
)

func (t *sgdTask) CreateSideTask(ctx *Ctx) error {
	if t.scale == WorkNone {
		return nil
	}
	seed := ctx.Rng.Int63()
	ratings := graph.SyntheticRatings(128, 128, 4096, 8, seed)
	t.mf = graph.NewSGDMF(graph.SGDMFConfig{Users: 128, Items: 128, K: 8, Seed: seed + 1}, ratings)
	return nil
}

func (t *sgdTask) InitSideTask(ctx *Ctx) error {
	return ctx.GPU.AllocMem(t.profile.MemBytes)
}

func (t *sgdTask) RunNextStep(ctx *Ctx) error {
	ctx.HostWork(t.profile.HostOverhead)
	if err := t.StepWork(ctx); err != nil {
		return err
	}
	return ctx.ExecStepKernel()
}

// StepWork is the step's CPU-side work (Stepper; runs on the event loop).
func (t *sgdTask) StepWork(*Ctx) error {
	if t.mf != nil {
		t.mf.Step()
	}
	return nil
}

func (t *sgdTask) StopSideTask(ctx *Ctx) error {
	ctx.GPU.FreeMem(t.profile.MemBytes)
	return nil
}

// imageTask resizes and watermarks real synthetic images.
type imageTask struct {
	profile model.TaskProfile
	scale   WorkScale
	pipe    *imageproc.Pipeline
}

var (
	_ Iterative = (*imageTask)(nil)
	_ Stepper   = (*imageTask)(nil)
)

func (t *imageTask) CreateSideTask(ctx *Ctx) error {
	if t.scale == WorkNone {
		return nil
	}
	t.pipe = imageproc.NewPipeline(96, 64, 48, 32, ctx.Rng.Int63())
	return nil
}

func (t *imageTask) InitSideTask(ctx *Ctx) error {
	return ctx.GPU.AllocMem(t.profile.MemBytes)
}

func (t *imageTask) RunNextStep(ctx *Ctx) error {
	ctx.HostWork(t.profile.HostOverhead)
	if err := t.StepWork(ctx); err != nil {
		return err
	}
	return ctx.ExecStepKernel()
}

// StepWork is the step's CPU-side work (Stepper; runs on the event loop).
func (t *imageTask) StepWork(*Ctx) error {
	if t.pipe != nil {
		if _, err := t.pipe.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (t *imageTask) StopSideTask(ctx *Ctx) error {
	ctx.GPU.FreeMem(t.profile.MemBytes)
	return nil
}

// imperativeAdapter wraps any Iterative into the imperative shape: one
// monolithic loop with no step-wise cooperation — the paper's fallback
// interface. Pausing relies entirely on SIGTSTP from the worker.
type imperativeAdapter struct {
	inner Iterative
	// maxSteps bounds the workload (0 = run forever until stopped/killed).
	maxSteps int
}

var _ Imperative = (*imperativeAdapter)(nil)

func (a *imperativeAdapter) CreateSideTask(ctx *Ctx) error { return a.inner.CreateSideTask(ctx) }
func (a *imperativeAdapter) InitSideTask(ctx *Ctx) error   { return a.inner.InitSideTask(ctx) }

func (a *imperativeAdapter) RunGpuWorkload(ctx *Ctx) error {
	for i := 0; a.maxSteps == 0 || i < a.maxSteps; i++ {
		if err := a.inner.RunNextStep(ctx); err != nil {
			return err
		}
		ctx.h.mu.Lock()
		// Charge the jittered duration ExecStepKernel actually issued (the
		// nominal StepTime would drift from the simulated work under
		// StepJitter); fall back to the nominal cost for custom inner
		// implementations that bypass ExecStepKernel.
		kt := ctx.h.lastStepDur
		if kt == 0 {
			kt = ctx.Profile.StepTime
		}
		ctx.h.counters.Steps++
		ctx.h.counters.KernelTime += kt
		ctx.h.counters.HostTime += ctx.Profile.HostOverhead
		ctx.h.counters.StepEvents += uint64(ctx.h.kernelParts) + 1
		ctx.h.mu.Unlock()
	}
	return nil
}

// NewBuiltin constructs a harness for one of the paper's six side tasks in
// the given mode. The profile may be batch-rescaled beforehand.
func NewBuiltin(profile model.TaskProfile, mode Mode, scale WorkScale, seed int64) (*Harness, error) {
	var impl Iterative
	base := profile.Name
	if profile.BatchScalable {
		// Batch-suffixed profiles ("resnet18-b96") share the base impl.
		base, _, _ = cutBatchSuffix(profile.Name)
	}
	switch base {
	case "resnet18", "resnet50", "vgg19":
		impl = &trainTask{profile: profile, scale: scale}
	case "pagerank":
		impl = &pagerankTask{profile: profile, scale: scale}
	case "graphsgd":
		impl = &sgdTask{profile: profile, scale: scale}
	case "image":
		impl = &imageTask{profile: profile, scale: scale}
	default:
		return nil, fmt.Errorf("sidetask: no built-in implementation for %q", profile.Name)
	}
	switch mode {
	case ModeIterative:
		return NewIterativeHarness(profile.Name, profile, impl, seed), nil
	case ModeImperative:
		return NewImperativeHarness(profile.Name, profile, &imperativeAdapter{inner: impl}, seed), nil
	default:
		return nil, fmt.Errorf("sidetask: unknown mode %v", mode)
	}
}

func cutBatchSuffix(name string) (base string, batch string, found bool) {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			if i+2 <= len(name) && name[i+1] == 'b' {
				return name[:i], name[i+2:], true
			}
			break
		}
	}
	return name, "", false
}
