package sidetask

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"freeride/internal/container"
	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// fuseStepper is a minimal Stepper-capable task for the fusion boundary
// tests: no CPU work, one GiB of device memory, profile-shaped steps.
type fuseStepper struct{}

func (fuseStepper) CreateSideTask(*Ctx) error   { return nil }
func (fuseStepper) InitSideTask(ctx *Ctx) error { return ctx.GPU.AllocMem(model.GiB) }
func (fuseStepper) StopSideTask(ctx *Ctx) error { ctx.GPU.FreeMem(model.GiB); return nil }
func (fuseStepper) StepWork(*Ctx) error         { return nil }
func (fuseStepper) RunNextStep(ctx *Ctx) error {
	ctx.HostWork(ctx.Profile.HostOverhead)
	return ctx.ExecStepKernel()
}

// fuseProfile has a long host phase and a short kernel so scripted signals
// land deterministically inside one phase or the other. Demand 1 on a
// single client makes kernel wall time equal kernel duration exactly.
var fuseProfile = model.TaskProfile{
	Name:         "fuse-test",
	StepTime:     20 * time.Millisecond,
	HostOverhead: 50 * time.Millisecond,
	CreateTime:   100 * time.Millisecond,
	InitTime:     50 * time.Millisecond,
	MemBytes:     model.GiB,
	Demand:       1.0,
	Weight:       1.0,
}

// midStepSubstrate selects the execution arm of runMidStepRig.
type midStepSubstrate int

const (
	subGoroutine     midStepSubstrate = iota // goroutine shell (ground truth)
	subInlineUnfused                         // event loop, two-event step form
	subInlineFused                           // event loop, fused host-lead step
)

// midStepResult is one arm's full observable surface.
type midStepResult struct {
	events  []stateEvent
	c       Counters
	mem     int64
	exitAt  time.Duration
	exitErr error
	dev     *simgpu.Device
}

// runMidStepRig drives a fuseStepper harness through a script whose pause
// commands land strictly INSIDE a step — at 330ms inside the host phase
// [300, 350) and at 675ms inside the kernel phase [670, 690) — the two
// windows the step-event fusion collapses into one engine event. fault arms
// a kernel fault before the first step's launch.
func runMidStepRig(t *testing.T, mode Mode, sub midStepSubstrate, fault bool) midStepResult {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
	ctr := container.NewRuntime(procs)
	var h *Harness
	if mode == ModeImperative {
		h = NewImperativeHarness("fuse-test", fuseProfile, &imperativeAdapter{inner: fuseStepper{}}, 1)
	} else {
		h = NewIterativeHarness("fuse-test", fuseProfile, fuseStepper{}, 1)
	}
	if sub == subInlineUnfused {
		h.SetStepFuse(false)
	}
	res := midStepResult{dev: dev, exitAt: -1}
	h.SetStateListener(func(s State) {
		res.events = append(res.events, stateEvent{State: s, At: eng.Now()})
	})
	spec := container.Spec{
		Name:        fuseProfile.Name,
		Device:      dev,
		GPUMemLimit: fuseProfile.MemBytes + model.GiB,
		GPUWeight:   fuseProfile.Weight,
	}
	var cont *container.Container
	var err error
	if sub == subGoroutine {
		cont, err = ctr.Run(spec, h.Run)
	} else {
		if !h.CanInline() {
			t.Fatalf("fuseStepper (mode %v) should be inline-capable", mode)
		}
		cont, err = ctr.RunInline(spec, h.Start)
	}
	if err != nil {
		t.Fatalf("container: %v", err)
	}
	cont.Process().OnExit(func(err error) {
		res.exitAt = eng.Now()
		res.exitErr = err
	})

	if fault {
		// Armed before the first step launches at 300ms: the fused launch
		// consumes it at the step start, the unfused arms at the host-sleep
		// boundary — all must deliver it at 350ms.
		eng.Schedule(290*time.Millisecond, "arm-fault", func() {
			dev.InjectKernelFault("")
		})
	}
	eng.Schedule(200*time.Millisecond, "init", func() {
		h.Deliver(Command{Transition: TransitionInit})
	})
	eng.Schedule(300*time.Millisecond, "start", func() {
		h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 500*time.Millisecond})
	})
	// Pause inside the host phase of the step that started at 300ms.
	eng.Schedule(330*time.Millisecond, "pause-in-host", func() {
		if mode == ModeImperative {
			if cont.Alive() {
				cont.Stop()
			}
		} else {
			h.Deliver(Command{Transition: TransitionPause})
		}
	})
	eng.Schedule(600*time.Millisecond, "resume", func() {
		if mode == ModeImperative {
			if cont.Alive() {
				cont.Cont()
			}
		} else {
			h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 300*time.Millisecond})
		}
	})
	// For the imperative arm the deferred host wake lands at 600ms, so the
	// resumed step runs host 600–620 (the held remainder collapses to the
	// release boundary), kernel 620–640, host 640–690... the 675ms signal
	// lands inside a kernel phase: the in-flight kernel must run through the
	// pause in every arm (asynchronous-kernel semantics, paper §5).
	eng.Schedule(675*time.Millisecond, "pause-in-kernel", func() {
		if mode == ModeImperative {
			if cont.Alive() {
				cont.Stop()
			}
		} else {
			h.Deliver(Command{Transition: TransitionPause})
		}
	})
	eng.Schedule(700*time.Millisecond, "resume2", func() {
		if mode == ModeImperative {
			if cont.Alive() {
				cont.Cont()
			}
		} else {
			h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 200*time.Millisecond})
		}
	})
	eng.Schedule(900*time.Millisecond, "stop", func() {
		if mode == ModeImperative && cont.Process().Stopped() {
			cont.Cont()
		}
		h.Deliver(Command{Transition: TransitionStop})
		if mode == ModeImperative {
			simtime.Detached(eng, 500*time.Millisecond, "stop-kill", func() {
				if cont.Alive() {
					cont.Kill()
				}
			})
		}
	})
	eng.RunUntil(2 * time.Second)
	res.c = h.Counters()
	res.mem = dev.MemUsed()
	return res
}

// compareMidStepArms asserts two arms are bit-identical on every observable:
// state transitions with timestamps, counters (modulo the StepEvents
// substrate accounting), device memory, and the exit instant and error.
func compareMidStepArms(t *testing.T, what string, a, b midStepResult) {
	t.Helper()
	if !reflect.DeepEqual(a.events, b.events) {
		t.Errorf("%s: state transitions diverge:\n%+v\nvs\n%+v", what, a.events, b.events)
	}
	ac, bc := a.c, b.c
	ac.StepEvents, bc.StepEvents = 0, 0
	if ac != bc {
		t.Errorf("%s: counters diverge:\n%+v\nvs\n%+v", what, ac, bc)
	}
	if a.mem != b.mem {
		t.Errorf("%s: device memory diverges: %d vs %d", what, a.mem, b.mem)
	}
	if a.exitAt != b.exitAt {
		t.Errorf("%s: exit instants diverge: %v vs %v", what, a.exitAt, b.exitAt)
	}
	aerr, berr := "", ""
	if a.exitErr != nil {
		aerr = a.exitErr.Error()
	}
	if b.exitErr != nil {
		berr = b.exitErr.Error()
	}
	if aerr != berr {
		t.Errorf("%s: exit errors diverge: %q vs %q", what, aerr, berr)
	}
}

// TestMidStepPauseEquivalence pins the fused Pause/Stop boundary: signals
// landing inside the (now fused) host phase and inside the kernel phase must
// produce bit-identical lifecycles across the goroutine shell, the unfused
// inline loop and the fused inline loop — both interfaces.
func TestMidStepPauseEquivalence(t *testing.T) {
	for _, mode := range []Mode{ModeIterative, ModeImperative} {
		ground := runMidStepRig(t, mode, subGoroutine, false)
		unfused := runMidStepRig(t, mode, subInlineUnfused, false)
		fused := runMidStepRig(t, mode, subInlineFused, false)
		if ground.c.Steps == 0 {
			t.Fatalf("mode %v: scripted lifecycle ran no steps", mode)
		}
		compareMidStepArms(t, mode.String()+": goroutine vs inline-unfused", ground, unfused)
		compareMidStepArms(t, mode.String()+": goroutine vs inline-fused", ground, fused)
	}
}

// TestFusedStepFaultEquivalence injects a kernel fault into the first fused
// launch: the fused arm consumes it at the step start but must deliver it at
// the host-phase boundary — the same instant, same error, same exit as both
// unfused arms, in both interfaces.
func TestFusedStepFaultEquivalence(t *testing.T) {
	for _, mode := range []Mode{ModeIterative, ModeImperative} {
		ground := runMidStepRig(t, mode, subGoroutine, true)
		unfused := runMidStepRig(t, mode, subInlineUnfused, true)
		fused := runMidStepRig(t, mode, subInlineFused, true)
		if ground.exitErr == nil || fused.exitErr == nil {
			t.Fatalf("mode %v: injected fault produced no error exit (%v / %v)",
				mode, ground.exitErr, fused.exitErr)
		}
		compareMidStepArms(t, mode.String()+" fault: goroutine vs inline-unfused", ground, unfused)
		compareMidStepArms(t, mode.String()+" fault: goroutine vs inline-fused", ground, fused)
	}
}

// TestFusedEventsPerStep pins the tentpole's accounting: the fused inline
// loop dispatches kernelParts engine events per step (ONE for the paper's
// single-kernel iterative steps), the unfused forms kernelParts+1.
func TestFusedEventsPerStep(t *testing.T) {
	for _, tc := range []struct {
		mode  Mode
		parts uint64
	}{
		{ModeIterative, 1},
		{ModeImperative, imperativeKernelParts},
	} {
		fused := runMidStepRig(t, tc.mode, subInlineFused, false)
		unfused := runMidStepRig(t, tc.mode, subInlineUnfused, false)
		ground := runMidStepRig(t, tc.mode, subGoroutine, false)
		perStep := tc.parts
		if !fused.dev.LeadCapable() || oracleStepFuseOff() {
			perStep = tc.parts + 1 // forced-oracle arms run unfused
		}
		if got, want := fused.c.StepEvents, perStep*fused.c.Steps; got != want {
			t.Errorf("mode %v: fused StepEvents = %d over %d steps, want %d",
				tc.mode, got, fused.c.Steps, want)
		}
		if got, want := unfused.c.StepEvents, (tc.parts+1)*unfused.c.Steps; got != want {
			t.Errorf("mode %v: unfused StepEvents = %d over %d steps, want %d",
				tc.mode, got, unfused.c.Steps, want)
		}
		if got, want := ground.c.StepEvents, (tc.parts+1)*ground.c.Steps; got != want {
			t.Errorf("mode %v: goroutine StepEvents = %d over %d steps, want %d",
				tc.mode, got, ground.c.Steps, want)
		}
	}
}

// TestStepKernelPartsSumToJitteredDuration is the remainder-loss regression
// pin at the unit level: with parts=3 and a jittered (usually non-divisible)
// duration, the last part must absorb the integer-division remainder so the
// parts sum exactly to the step duration.
func TestStepKernelPartsSumToJitteredDuration(t *testing.T) {
	prof := fuseProfile
	prof.StepJitter = 0.3
	h := NewIterativeHarness("rem", prof, fuseStepper{}, 7)
	h.kernelParts = 3
	r := &inlineRun{h: h, ctx: &Ctx{Profile: prof, Rng: rand.New(rand.NewSource(7)), h: h}}
	sawRemainder := false
	for i := 0; i < 200; i++ {
		r.computeStep()
		if got := 2*r.perKernel + r.lastKernel; got != r.stepDur {
			t.Fatalf("parts sum to %v, want %v (per=%v last=%v)", got, r.stepDur, r.perKernel, r.lastKernel)
		}
		if r.stepDur%3 != 0 {
			sawRemainder = true
			if r.lastKernel == r.perKernel {
				t.Fatalf("non-divisible %v: last part %v equals per-part %v; remainder dropped",
					r.stepDur, r.lastKernel, r.perKernel)
			}
		}
	}
	if !sawRemainder {
		t.Fatal("jittered durations never produced a remainder; pin is inert")
	}
}

// TestKernelPartsRemainderEndToEnd pins the remainder fix through the real
// device clock: with a step duration of 10000001ns split into 3 kernels, the
// measured per-step kernel wall time must equal the duration exactly (the
// old division-truncated parts lost 2ns per step). Demand 1 on an otherwise
// idle device makes wall time equal duration.
func TestKernelPartsRemainderEndToEnd(t *testing.T) {
	prof := fuseProfile
	prof.StepTime = 10000001 * time.Nanosecond // % 3 == 2
	for _, sub := range []midStepSubstrate{subGoroutine, subInlineUnfused, subInlineFused} {
		eng := simtime.NewVirtual()
		procs := simproc.NewRuntime(eng)
		dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
		ctr := container.NewRuntime(procs)
		h := NewIterativeHarness("rem-e2e", prof, fuseStepper{}, 1)
		h.kernelParts = 3
		if sub == subInlineUnfused {
			h.SetStepFuse(false)
		}
		spec := container.Spec{
			Name:        prof.Name,
			Device:      dev,
			GPUMemLimit: prof.MemBytes + model.GiB,
			GPUWeight:   prof.Weight,
		}
		var err error
		if sub == subGoroutine {
			_, err = ctr.Run(spec, h.Run)
		} else {
			_, err = ctr.RunInline(spec, h.Start)
		}
		if err != nil {
			t.Fatalf("container: %v", err)
		}
		eng.Schedule(200*time.Millisecond, "init", func() {
			h.Deliver(Command{Transition: TransitionInit})
		})
		eng.Schedule(300*time.Millisecond, "start", func() {
			h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 500*time.Millisecond})
		})
		eng.Schedule(900*time.Millisecond, "stop", func() {
			h.Deliver(Command{Transition: TransitionStop})
		})
		eng.RunUntil(2 * time.Second)
		c := h.Counters()
		if c.Steps == 0 {
			t.Fatalf("substrate %d: ran no steps", sub)
		}
		if want := time.Duration(c.Steps) * prof.StepTime; c.KernelTime != want {
			t.Errorf("substrate %d: KernelTime = %v over %d steps, want exactly %v (remainder lost)",
				sub, c.KernelTime, c.Steps, want)
		}
	}
}

// TestImperativeKernelTimeJittered pins the second satellite bugfix: the
// imperative step accounting must charge the jittered duration the step
// actually issued, not the nominal profile StepTime (ResNet18 runs with 10%
// step jitter, so over the scripted run the two must differ).
func TestImperativeKernelTimeJittered(t *testing.T) {
	_, c, _ := runScriptedLifecycle(t, ModeImperative, true)
	if c.Steps == 0 {
		t.Fatal("scripted lifecycle ran no steps")
	}
	if c.KernelTime == time.Duration(c.Steps)*model.ResNet18.StepTime {
		t.Fatalf("KernelTime = %v over %d steps equals the nominal charge; StepJitter ignored",
			c.KernelTime, c.Steps)
	}
}
