// Package sidetask implements FreeRide's side-task programming framework
// (paper §3.1, §4.1–4.2, §5): the five-state life-cycle state machine, the
// iterative interface (step-wise execution with the program-directed time
// limit) and the imperative interface (transparent pause/resume through
// SIGTSTP/SIGCONT), plus the six built-in side tasks of the evaluation.
package sidetask

import "fmt"

// State is a side task's life-cycle state (paper Figure 4a).
type State int

// The five states of the paper's state machine.
const (
	// StateSubmitted: profiled and submitted to the manager; no process.
	StateSubmitted State = iota + 1
	// StateCreated: process exists, context loaded in host memory only.
	StateCreated
	// StatePaused: context loaded in GPU memory; waiting for a bubble.
	StatePaused
	// StateRunning: executing step-wise GPU work inside a bubble.
	StateRunning
	// StateStopped: terminated; all resources released.
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSubmitted:
		return "SUBMITTED"
	case StateCreated:
		return "CREATED"
	case StatePaused:
		return "PAUSED"
	case StateRunning:
		return "RUNNING"
	case StateStopped:
		return "STOPPED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Transition names the six state transitions of Figure 4a.
type Transition int

// The transitions of the paper's state machine.
const (
	TransitionCreate      Transition = iota + 1 // SUBMITTED -> CREATED
	TransitionInit                              // CREATED -> PAUSED
	TransitionStart                             // PAUSED -> RUNNING
	TransitionPause                             // RUNNING -> PAUSED
	TransitionRunNextStep                       // RUNNING -> RUNNING (self loop)
	TransitionStop                              // CREATED/PAUSED/RUNNING -> STOPPED
)

// String implements fmt.Stringer.
func (t Transition) String() string {
	switch t {
	case TransitionCreate:
		return "CreateSideTask"
	case TransitionInit:
		return "InitSideTask"
	case TransitionStart:
		return "StartSideTask"
	case TransitionPause:
		return "PauseSideTask"
	case TransitionRunNextStep:
		return "RunNextStep"
	case TransitionStop:
		return "StopSideTask"
	default:
		return fmt.Sprintf("Transition(%d)", int(t))
	}
}

// legalTransitions encodes Figure 4a's edges.
var legalTransitions = map[Transition][2]State{
	TransitionCreate:      {StateSubmitted, StateCreated},
	TransitionInit:        {StateCreated, StatePaused},
	TransitionStart:       {StatePaused, StateRunning},
	TransitionPause:       {StateRunning, StatePaused},
	TransitionRunNextStep: {StateRunning, StateRunning},
}

// Next validates a transition from state s and returns the successor state.
// TransitionStop is legal from CREATED, PAUSED and RUNNING.
func Next(s State, t Transition) (State, error) {
	if t == TransitionStop {
		switch s {
		case StateCreated, StatePaused, StateRunning:
			return StateStopped, nil
		default:
			return 0, fmt.Errorf("sidetask: illegal %v from %v", t, s)
		}
	}
	edge, ok := legalTransitions[t]
	if !ok || edge[0] != s {
		return 0, fmt.Errorf("sidetask: illegal %v from %v", t, s)
	}
	return edge[1], nil
}
