package sidetask

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"freeride/internal/container"
	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Property: under the iterative interface, no side-task kernel ever runs
// past bubbleEnd + the worst-case jitter overrun of a single step. This is
// the paper's program-directed execution-time limit (§4.5): the interface
// refuses to start a step that does not fit the remaining bubble, so only
// jitter on an already-admitted step can leak past the boundary.
func TestProgramDirectedLimitProperty(t *testing.T) {
	f := func(seed int64, bubbleMsRaw uint16, jitterRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bubbleDur := time.Duration(bubbleMsRaw%1500+40) * time.Millisecond
		jitter := float64(jitterRaw%30) / 100.0

		profile := model.ResNet18
		profile.StepJitter = jitter
		profile.CreateTime = 50 * time.Millisecond
		profile.InitTime = 20 * time.Millisecond

		eng := simtime.NewVirtual()
		procs := simproc.NewRuntime(eng)
		dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu"})
		ctrs := container.NewRuntime(procs)
		h, err := NewBuiltin(profile, ModeIterative, WorkNone, rng.Int63())
		if err != nil {
			return false
		}
		if _, err := ctrs.Run(container.Spec{Name: "t", Device: dev}, h.Run); err != nil {
			return false
		}
		eng.RunUntil(time.Second)
		eng.Schedule(0, "init", func() { h.Deliver(Command{Transition: TransitionInit}) })
		eng.RunFor(500 * time.Millisecond)
		if h.State() != StatePaused {
			return false
		}
		bubbleStart := eng.Now()
		bubbleEnd := bubbleStart + bubbleDur
		eng.Schedule(0, "start", func() {
			h.Deliver(Command{Transition: TransitionStart, BubbleEnd: bubbleEnd})
		})
		// Pause at the bubble end, as the manager would.
		eng.Schedule(bubbleDur, "pause", func() { h.Deliver(Command{Transition: TransitionPause}) })
		eng.RunUntil(bubbleEnd + 10*time.Second)

		// The worst a step admitted at the last admissible instant can do:
		// its jittered duration exceeds the mean estimate by jitter%.
		worstOverrun := time.Duration(float64(profile.StepTime) * jitter)
		idleBy := bubbleEnd + worstOverrun + time.Millisecond
		for _, p := range dev.Occupancy().Points() {
			if p.T >= idleBy && p.V > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: step counters are consistent — KernelTime+HostTime never
// exceeds total running time, and steps only increase.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(seed int64, burstRaw uint8) bool {
		bursts := int(burstRaw%4) + 1
		eng := simtime.NewVirtual()
		procs := simproc.NewRuntime(eng)
		dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu"})
		ctrs := container.NewRuntime(procs)
		profile := model.PageRank
		profile.CreateTime = 10 * time.Millisecond
		profile.InitTime = 10 * time.Millisecond
		h, err := NewBuiltin(profile, ModeIterative, WorkNone, seed)
		if err != nil {
			return false
		}
		if _, err := ctrs.Run(container.Spec{Name: "t", Device: dev}, h.Run); err != nil {
			return false
		}
		eng.RunUntil(100 * time.Millisecond)
		eng.Schedule(0, "init", func() { h.Deliver(Command{Transition: TransitionInit}) })
		eng.RunFor(100 * time.Millisecond)

		var prevSteps uint64
		var runningTotal time.Duration
		for i := 0; i < bursts; i++ {
			start := eng.Now()
			end := start + 200*time.Millisecond
			eng.Schedule(0, "start", func() {
				h.Deliver(Command{Transition: TransitionStart, BubbleEnd: end})
			})
			eng.Schedule(200*time.Millisecond, "pause", func() {
				h.Deliver(Command{Transition: TransitionPause})
			})
			eng.RunFor(400 * time.Millisecond)
			runningTotal += 200 * time.Millisecond

			c := h.Counters()
			if c.Steps < prevSteps {
				return false
			}
			prevSteps = c.Steps
			if c.KernelTime+c.HostTime > runningTotal+profile.StepTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStepEstimateOverrideTightensAdmission(t *testing.T) {
	// Doubling the step estimate halves the admitted steps in a bubble.
	run := func(estimate time.Duration) uint64 {
		eng := simtime.NewVirtual()
		procs := simproc.NewRuntime(eng)
		dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu"})
		ctrs := container.NewRuntime(procs)
		profile := model.ResNet18
		profile.StepJitter = 0
		profile.CreateTime = 10 * time.Millisecond
		profile.InitTime = 10 * time.Millisecond
		h, _ := NewBuiltin(profile, ModeIterative, WorkNone, 1)
		if estimate > 0 {
			h.SetStepEstimate(estimate)
		}
		ctrs.Run(container.Spec{Name: "t", Device: dev}, h.Run)
		eng.RunUntil(100 * time.Millisecond)
		eng.Schedule(0, "init", func() { h.Deliver(Command{Transition: TransitionInit}) })
		eng.RunFor(100 * time.Millisecond)
		end := eng.Now() + 300*time.Millisecond
		eng.Schedule(0, "start", func() {
			h.Deliver(Command{Transition: TransitionStart, BubbleEnd: end})
		})
		eng.RunFor(time.Second)
		return h.Counters().Steps
	}
	normal := run(0)
	conservative := run(150 * time.Millisecond)
	if conservative >= normal {
		t.Fatalf("conservative estimate admitted %d steps >= normal %d", conservative, normal)
	}
	if conservative == 0 {
		t.Fatal("conservative estimate admitted nothing in a 300ms bubble")
	}
}
