package sidetask

import (
	"reflect"
	"testing"
	"time"

	"freeride/internal/container"
	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// stateEvent is one observed transition with its virtual timestamp.
type stateEvent struct {
	State State
	At    time.Duration
}

// runScriptedLifecycle drives one harness through a fixed command script on
// a private rig and returns the observed state transitions (with
// timestamps), the final counters and the final device memory.
func runScriptedLifecycle(t *testing.T, mode Mode, inline bool) ([]stateEvent, Counters, int64) {
	t.Helper()
	profile := model.ResNet18
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
	ctr := container.NewRuntime(procs)
	h, err := NewBuiltin(profile, mode, WorkNone, 1)
	if err != nil {
		t.Fatalf("NewBuiltin: %v", err)
	}
	var events []stateEvent
	h.SetStateListener(func(s State) {
		events = append(events, stateEvent{State: s, At: eng.Now()})
	})
	spec := container.Spec{
		Name:        profile.Name,
		Device:      dev,
		GPUMemLimit: profile.MemBytes + model.GiB,
		GPUWeight:   profile.Weight,
	}
	var cont *container.Container
	if inline {
		if !h.CanInline() {
			t.Fatalf("built-in %s (mode %v) should be inline-capable", profile.Name, mode)
		}
		cont, err = ctr.RunInline(spec, h.Start)
	} else {
		cont, err = ctr.Run(spec, h.Run)
	}
	if err != nil {
		t.Fatalf("container: %v", err)
	}

	// Scripted lifecycle (ResNet18 creates for 1.5s, inits for 0.4s):
	// init, a 500ms bubble, a mid-run bubble extension, pause, a second
	// 300ms bubble, stop.
	eng.Schedule(1600*time.Millisecond, "init", func() {
		h.Deliver(Command{Transition: TransitionInit})
	})
	eng.Schedule(2100*time.Millisecond, "start", func() {
		h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 500*time.Millisecond})
	})
	eng.Schedule(2400*time.Millisecond, "extend", func() {
		h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 400*time.Millisecond})
	})
	eng.Schedule(2700*time.Millisecond, "pause", func() {
		if mode == ModeImperative {
			cont.Stop()
		} else {
			h.Deliver(Command{Transition: TransitionPause})
		}
	})
	eng.Schedule(3000*time.Millisecond, "start2", func() {
		if mode == ModeImperative {
			cont.Cont()
		} else {
			h.Deliver(Command{Transition: TransitionStart, BubbleEnd: eng.Now() + 300*time.Millisecond})
		}
	})
	eng.Schedule(3600*time.Millisecond, "stop", func() {
		if mode == ModeImperative && cont.Process().Stopped() {
			cont.Cont()
		}
		h.Deliver(Command{Transition: TransitionStop})
		if mode == ModeImperative {
			// The imperative body never reads its inbox mid-run; kill it
			// after a grace, like the worker does.
			simtime.Detached(eng, 500*time.Millisecond, "stop-kill", func() {
				if cont.Alive() {
					cont.Kill()
				}
			})
		}
	})
	eng.RunUntil(5 * time.Second)
	return events, h.Counters(), dev.MemUsed()
}

// TestInlineMatchesGoroutineIterative is the equivalence guarantee for the
// event-loop harness: an identical command script must produce bit-identical
// state transitions (including timestamps), counters and memory effects in
// both execution substrates.
func TestInlineMatchesGoroutineIterative(t *testing.T) {
	gEvents, gCounters, gMem := runScriptedLifecycle(t, ModeIterative, false)
	iEvents, iCounters, iMem := runScriptedLifecycle(t, ModeIterative, true)
	if !reflect.DeepEqual(gEvents, iEvents) {
		t.Errorf("state transitions diverge:\ngoroutine %+v\ninline    %+v", gEvents, iEvents)
	}
	// StepEvents is substrate accounting by design: the goroutine body
	// always dispatches the unfused sleep+kernel pair, the inline loop
	// fuses them. Everything else must match to the bit.
	gCounters.StepEvents, iCounters.StepEvents = 0, 0
	if gCounters != iCounters {
		t.Errorf("counters diverge:\ngoroutine %+v\ninline    %+v", gCounters, iCounters)
	}
	if gMem != iMem {
		t.Errorf("device memory diverges: goroutine %d, inline %d", gMem, iMem)
	}
	if gCounters.Steps == 0 {
		t.Fatal("scripted lifecycle ran no steps")
	}
}

// TestInlineMatchesGoroutineImperative covers the SIGTSTP/SIGCONT path: the
// inline imperative loop must pause and resume at the same kernel
// boundaries as the goroutine body.
func TestInlineMatchesGoroutineImperative(t *testing.T) {
	gEvents, gCounters, gMem := runScriptedLifecycle(t, ModeImperative, false)
	iEvents, iCounters, iMem := runScriptedLifecycle(t, ModeImperative, true)
	if !reflect.DeepEqual(gEvents, iEvents) {
		t.Errorf("state transitions diverge:\ngoroutine %+v\ninline    %+v", gEvents, iEvents)
	}
	// StepEvents is substrate accounting by design (see the iterative
	// variant above).
	gCounters.StepEvents, iCounters.StepEvents = 0, 0
	if gCounters != iCounters {
		t.Errorf("counters diverge:\ngoroutine %+v\ninline    %+v", gCounters, iCounters)
	}
	if gMem != iMem {
		t.Errorf("device memory diverges: goroutine %d, inline %d", gMem, iMem)
	}
	if gCounters.Steps == 0 {
		t.Fatal("scripted lifecycle ran no steps")
	}
}

// TestCanInline pins which harnesses take the event-loop path.
func TestCanInline(t *testing.T) {
	for _, mode := range []Mode{ModeIterative, ModeImperative} {
		h, err := NewBuiltin(model.PageRank, mode, WorkNone, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !h.CanInline() {
			t.Errorf("built-in pagerank (mode %v) should be inline-capable", mode)
		}
	}
	// Arbitrary user implementations keep the goroutine shell.
	h := NewIterativeHarness("custom", model.PageRank, customIter{}, 1)
	if h.CanInline() {
		t.Error("non-Stepper Iterative must not claim inline capability")
	}
}

type customIter struct{}

func (customIter) CreateSideTask(*Ctx) error { return nil }
func (customIter) InitSideTask(*Ctx) error   { return nil }
func (customIter) RunNextStep(ctx *Ctx) error {
	return ctx.ExecStepKernel()
}
func (customIter) StopSideTask(*Ctx) error { return nil }
