package sidetask

import (
	"fmt"
	"math/rand"
	"time"

	"freeride/internal/oracle"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
)

// oracleStepFuseOff reports whether FREERIDE_ORACLE_STEPFUSE=off forces the
// unfused two-event step loop suite-wide (the differential-oracle arm; the
// CI oracle matrix runs the full test grid under it and asserts the Table 2
// reproduction metrics bit-identical to the fused default). Parsing lives
// in the shared resolver (internal/oracle); enforcement stays here so every
// harness sees the forced arm regardless of how it was configured.
func oracleStepFuseOff() bool { return oracle.Env().NoStepFuse }

// CanInline reports whether this harness can run as an event-loop process
// (simproc.SpawnInline / container.RunInline): the task implementation must
// expose its per-step CPU work through Stepper so the harness can own every
// blocking point. All built-in tasks qualify, in both interfaces; arbitrary
// user implementations fall back to the goroutine shell (Run).
func (h *Harness) CanInline() bool {
	switch h.mode {
	case ModeIterative:
		_, ok := h.iter.(Stepper)
		return ok
	case ModeImperative:
		a, ok := h.imper.(*imperativeAdapter)
		if !ok {
			return false
		}
		_, ok = a.inner.(Stepper)
		return ok
	default:
		return false
	}
}

// Start is the event-loop container body (the inline counterpart of Run):
// it drives the full life cycle as continuations on the engine goroutine.
// The behaviour — state transitions, timing, counters, error strings — is
// identical to Run's; only the execution substrate differs. Requires
// CanInline.
func (h *Harness) Start(p *simproc.Process, gpu *simgpu.Client) {
	if !h.CanInline() {
		p.Exit(fmt.Errorf("sidetask %s: harness cannot run inline", h.name))
		return
	}
	r := &inlineRun{
		h: h,
		p: p,
		ctx: &Ctx{
			Proc:    p,
			GPU:     gpu,
			Profile: h.profile,
			Rng:     rand.New(rand.NewSource(h.seed)),
			h:       h,
		},
	}
	switch h.mode {
	case ModeIterative:
		r.stepper = h.iter.(Stepper)
	case ModeImperative:
		a := h.imper.(*imperativeAdapter)
		r.stepper = a.inner.(Stepper)
		r.imperative = true
		r.maxSteps = a.maxSteps
	}
	r.afterCreateFn = r.afterCreate
	r.onCommandFn = r.onCommand
	r.afterInitFn = r.afterInit
	r.afterHostFn = r.afterHost
	r.afterKernelFn = r.afterKernel
	r.onWaitCmdFn = r.onWaitCmd
	r.failFn = r.stepFail

	// The step-kernel spec is threaded by pointer through every launch; only
	// Duration mutates per part (the launch reads the spec synchronously, so
	// reuse is safe — see simgpu.KernelSpec).
	r.spec = simgpu.KernelSpec{
		Name:   h.stepKernelName,
		Demand: h.profile.Demand,
		Weight: h.profile.Weight,
	}
	r.fused = !h.noStepFuse && !oracleStepFuseOff() &&
		gpu != nil && gpu.Device().LeadCapable()
	if r.fused {
		// A fused step must observe SIGTSTP exactly where the unfused
		// host-sleep boundary did: hold a still-pending host lead on stop
		// (a kernel already past its lead keeps running through the pause,
		// like an asynchronous CUDA kernel), and release it on continue so
		// the remaining host phase resumes from the stop instant.
		p.SetSignalHook(func(sig simproc.Signal) {
			switch sig {
			case simproc.SigStop:
				gpu.HoldLead()
			case simproc.SigCont:
				gpu.ReleaseLead()
			}
		})
	}

	// SUBMITTED -> CREATED: load context into host memory.
	p.SleepThen(h.profile.CreateTime, r.afterCreateFn)
}

// inlineRun is the harness state machine: each blocking point of the
// goroutine body becomes a pre-bound continuation, so the hot RUNNING-state
// step loop allocates nothing and never leaves the engine goroutine.
type inlineRun struct {
	h       *Harness
	p       *simproc.Process
	ctx     *Ctx
	stepper Stepper

	// imperative selects the RunGpuWorkload-shaped loop (no inbox polling,
	// no program-directed deadline, profile-accounted counters); maxSteps
	// bounds it (0 = forever), mirroring imperativeAdapter.
	imperative bool
	maxSteps   int
	stepsDone  int

	// fused selects the one-event-per-step loop: the step's host overhead is
	// folded into the kernel launch as a host lead (simgpu.ExecLeadThen), so
	// the engine sees a single completion event per step instead of a host
	// sleep plus a completion. Timing, counters and RNG draws are
	// bit-identical to the unfused arm; FREERIDE_ORACLE_STEPFUSE=off or
	// Config.NoStepFuse force the two-event loop.
	fused bool

	stepStart  time.Duration
	stepDur    time.Duration // jittered total kernel duration of the step
	partsLeft  int
	perKernel  time.Duration
	lastKernel time.Duration // final part: perKernel + division remainder
	stepErr    error         // deferred StepWork failure (fused path)

	afterCreateFn func(any)
	onCommandFn   func(any)
	afterInitFn   func(any)
	afterHostFn   func(any)
	afterKernelFn func(any)
	onWaitCmdFn   func(any)
	failFn        func(any)

	// spec is the reusable step-kernel spec; Duration is rewritten before
	// every launch, all other fields are fixed at Start.
	spec simgpu.KernelSpec
}

func (r *inlineRun) afterCreate(any) {
	h := r.h
	if err := h.create(r.ctx); err != nil {
		r.p.Exit(fmt.Errorf("sidetask %s: create: %w", h.name, err))
		return
	}
	h.setState(StateCreated, r.p.Now())
	r.recv()
}

// recv is the CREATED/PAUSED command loop (commandLoop in the goroutine
// body).
func (r *inlineRun) recv() {
	r.h.inbox.RecvThen(r.p, r.onCommandFn)
}

func (r *inlineRun) onCommand(msg any) {
	if _, closed := msg.(simproc.Closed); closed {
		r.p.Exit(fmt.Errorf("sidetask %s: command channel closed", r.h.name))
		return
	}
	cmd, ok := msg.(Command)
	if !ok {
		r.recv()
		return
	}
	r.handle(cmd)
}

// handle applies one command in the current state (handle in the goroutine
// body; unexpected commands are tolerated by returning to the command loop).
func (r *inlineRun) handle(cmd Command) {
	h := r.h
	switch cmd.Transition {
	case TransitionInit:
		if h.State() != StateCreated {
			r.recv()
			return
		}
		r.p.SleepThen(h.profile.InitTime, r.afterInitFn)

	case TransitionStart:
		if h.State() != StatePaused {
			r.recv()
			return
		}
		h.mu.Lock()
		h.bubbleEnd = cmd.BubbleEnd
		h.counters.StartedRuns++
		h.mu.Unlock()
		h.setState(StateRunning, r.p.Now())
		if r.imperative {
			r.impStep()
			return
		}
		r.iterLoop()

	case TransitionStop:
		r.stop()

	default: // TransitionPause et al.: only meaningful mid-run.
		r.recv()
	}
}

func (r *inlineRun) afterInit(any) {
	h := r.h
	if err := h.init(r.ctx); err != nil {
		r.p.Exit(fmt.Errorf("sidetask %s: init: %w", h.name, err))
		return
	}
	h.setState(StatePaused, r.p.Now())
	r.recv()
}

func (r *inlineRun) stop() {
	h := r.h
	if h.mode == ModeIterative {
		if err := h.iter.StopSideTask(r.ctx); err != nil {
			r.p.Exit(fmt.Errorf("sidetask %s: stop: %w", h.name, err))
			return
		}
	}
	h.setState(StateStopped, r.p.Now())
	r.p.Exit(nil)
}

// iterLoop is the RUNNING-state loop head of the iterative interface
// (runIterative): drain worker transitions, apply the program-directed time
// limit, then start the next step.
func (r *inlineRun) iterLoop() {
	h, p := r.h, r.p
	for {
		msg, ok := h.inbox.TryRecv()
		if !ok {
			break
		}
		cmd, okc := msg.(Command)
		if !okc {
			continue
		}
		switch cmd.Transition {
		case TransitionPause:
			h.setState(StatePaused, p.Now())
			r.recv()
			return
		case TransitionStop:
			r.stop()
			return
		case TransitionStart:
			// Bubble extension / refresh.
			h.mu.Lock()
			h.bubbleEnd = cmd.BubbleEnd
			h.mu.Unlock()
		}
	}

	h.mu.Lock()
	deadline := h.bubbleEnd
	estimate := h.stepEstimate
	h.mu.Unlock()
	remaining := deadline - p.Now()
	if remaining < estimate {
		// Program-directed limit: not enough bubble left for another step.
		// Account the unusable remainder and wait for the next command.
		if remaining > 0 {
			h.mu.Lock()
			h.counters.InsuffWait += remaining
			h.mu.Unlock()
		}
		h.inbox.RecvThen(p, r.onWaitCmdFn)
		return
	}

	r.stepStart = p.Now()
	if r.fused {
		r.stepLaunch()
		return
	}
	// RunNextStep, decomposed: host-side time, CPU work, step kernel(s).
	p.SleepThen(h.profile.HostOverhead, r.afterHostFn)
}

// onWaitCmd handles the command that ends an insufficient-time wait (the
// blocking Recv inside runIterative).
func (r *inlineRun) onWaitCmd(msg any) {
	h, p := r.h, r.p
	if _, closed := msg.(simproc.Closed); closed {
		p.Exit(fmt.Errorf("sidetask %s: command channel closed", h.name))
		return
	}
	cmd, okc := msg.(Command)
	if !okc {
		r.iterLoop()
		return
	}
	switch cmd.Transition {
	case TransitionPause:
		h.setState(StatePaused, p.Now())
		r.recv()
	case TransitionStop:
		r.stop()
	case TransitionStart:
		h.mu.Lock()
		h.bubbleEnd = cmd.BubbleEnd
		h.mu.Unlock()
		r.iterLoop()
	default:
		r.iterLoop()
	}
}

// stepLaunch is the fused step body, run at the step's start instant: the
// CPU work executes now (the unfused arm runs it after the host sleep, but
// StepWork draws no virtual time and the RNG draw order is preserved), and
// the kernel launches with the host overhead as its lead — ONE engine event
// per step (the completion at stepStart+HostOverhead+<share-scaled
// duration>) instead of the unfused host sleep + completion pair.
func (r *inlineRun) stepLaunch() {
	h := r.h
	if err := r.stepper.StepWork(r.ctx); err != nil {
		// The unfused arm surfaces a StepWork failure after the host
		// sleep; keep the exit instant identical.
		r.stepErr = err
		r.p.SleepThen(h.profile.HostOverhead, r.failFn)
		return
	}
	r.computeStep()
	r.spec.Duration = r.kernelDur()
	r.ctx.GPU.ExecLeadThen(r.p, &r.spec, h.profile.HostOverhead, r.afterKernelFn)
}

// stepFail is the deferred-failure continuation of the fused path.
func (r *inlineRun) stepFail(any) {
	r.stepFailed(r.stepErr)
}

// computeStep draws the step's jittered duration and splits it into
// kernelParts; the last part absorbs the integer-division remainder so the
// parts sum exactly to the drawn duration (a plain d/parts split loses up
// to parts-1 ns per step).
func (r *inlineRun) computeStep() {
	h := r.h
	d := h.profile.StepTime
	if h.profile.StepJitter > 0 {
		f := 1 + h.profile.StepJitter*(2*r.ctx.Rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	parts := h.kernelParts
	if parts < 1 {
		parts = 1
	}
	r.stepDur = d
	r.partsLeft = parts
	r.perKernel = d / time.Duration(parts)
	r.lastKernel = d - time.Duration(parts-1)*r.perKernel
}

func (r *inlineRun) kernelDur() time.Duration {
	if r.partsLeft == 1 {
		return r.lastKernel
	}
	return r.perKernel
}

// afterHost runs the step's CPU work and issues its kernel(s) — the inline
// ExecStepKernel (unfused arm only).
func (r *inlineRun) afterHost(any) {
	if err := r.stepper.StepWork(r.ctx); err != nil {
		r.stepFailed(err)
		return
	}
	r.computeStep()
	r.launchKernel()
}

func (r *inlineRun) launchKernel() {
	r.spec.Duration = r.kernelDur()
	r.ctx.GPU.ExecThen(r.p, &r.spec, r.afterKernelFn)
}

func (r *inlineRun) afterKernel(res any) {
	if res != nil {
		err, ok := res.(error)
		if !ok {
			err = fmt.Errorf("simgpu: unexpected completion payload %T", res)
		}
		r.stepFailed(err)
		return
	}
	r.partsLeft--
	if r.partsLeft > 0 {
		// Parts 2..n launch back to back with no host lead (both arms).
		r.launchKernel()
		return
	}
	h, p := r.h, r.p
	parts := h.kernelParts
	if parts < 1 {
		parts = 1
	}
	events := uint64(parts)
	if !r.fused {
		events++ // the separate host-overhead sleep
	}
	if r.imperative {
		// imperativeAdapter accounting: host overhead plus the jittered
		// kernel duration the step actually issued (the nominal StepTime
		// would drift from the simulated work under StepJitter).
		h.mu.Lock()
		h.counters.Steps++
		h.counters.KernelTime += r.stepDur
		h.counters.HostTime += h.profile.HostOverhead
		h.counters.StepEvents += events
		h.mu.Unlock()
		r.stepsDone++
		r.impStep()
		return
	}
	h.mu.Lock()
	h.counters.Steps++
	h.counters.KernelTime += p.Now() - r.stepStart - h.profile.HostOverhead
	h.counters.HostTime += h.profile.HostOverhead
	h.counters.StepEvents += events
	h.mu.Unlock()
	r.iterLoop()
}

// stepFailed exits with the same error shape as the goroutine body: the
// iterative loop wraps step errors, the imperative workload stops first and
// wraps as a workload failure.
func (r *inlineRun) stepFailed(err error) {
	h := r.h
	if r.imperative {
		h.setState(StateStopped, r.p.Now())
		r.p.Exit(fmt.Errorf("sidetask %s: workload: %w", h.name, err))
		return
	}
	r.p.Exit(fmt.Errorf("sidetask %s: step: %w", h.name, err))
}

// impStep is the RunGpuWorkload-shaped loop head: run steps back to back
// (bubble-blind; pause/resume arrive as SIGTSTP/SIGCONT) until maxSteps.
func (r *inlineRun) impStep() {
	if r.maxSteps > 0 && r.stepsDone >= r.maxSteps {
		r.h.setState(StateStopped, r.p.Now())
		r.p.Exit(nil)
		return
	}
	r.stepStart = r.p.Now()
	if r.fused {
		r.stepLaunch()
		return
	}
	r.p.SleepThen(r.h.profile.HostOverhead, r.afterHostFn)
}
