package sidetask

import (
	"fmt"
	"math/rand"
	"time"

	"freeride/internal/simgpu"
	"freeride/internal/simproc"
)

// CanInline reports whether this harness can run as an event-loop process
// (simproc.SpawnInline / container.RunInline): the task implementation must
// expose its per-step CPU work through Stepper so the harness can own every
// blocking point. All built-in tasks qualify, in both interfaces; arbitrary
// user implementations fall back to the goroutine shell (Run).
func (h *Harness) CanInline() bool {
	switch h.mode {
	case ModeIterative:
		_, ok := h.iter.(Stepper)
		return ok
	case ModeImperative:
		a, ok := h.imper.(*imperativeAdapter)
		if !ok {
			return false
		}
		_, ok = a.inner.(Stepper)
		return ok
	default:
		return false
	}
}

// Start is the event-loop container body (the inline counterpart of Run):
// it drives the full life cycle as continuations on the engine goroutine.
// The behaviour — state transitions, timing, counters, error strings — is
// identical to Run's; only the execution substrate differs. Requires
// CanInline.
func (h *Harness) Start(p *simproc.Process, gpu *simgpu.Client) {
	if !h.CanInline() {
		p.Exit(fmt.Errorf("sidetask %s: harness cannot run inline", h.name))
		return
	}
	r := &inlineRun{
		h: h,
		p: p,
		ctx: &Ctx{
			Proc:    p,
			GPU:     gpu,
			Profile: h.profile,
			Rng:     rand.New(rand.NewSource(h.seed)),
			h:       h,
		},
	}
	switch h.mode {
	case ModeIterative:
		r.stepper = h.iter.(Stepper)
	case ModeImperative:
		a := h.imper.(*imperativeAdapter)
		r.stepper = a.inner.(Stepper)
		r.imperative = true
		r.maxSteps = a.maxSteps
	}
	r.afterCreateFn = r.afterCreate
	r.onCommandFn = r.onCommand
	r.afterInitFn = r.afterInit
	r.afterHostFn = r.afterHost
	r.afterKernelFn = r.afterKernel
	r.onWaitCmdFn = r.onWaitCmd

	// SUBMITTED -> CREATED: load context into host memory.
	p.SleepThen(h.profile.CreateTime, r.afterCreateFn)
}

// inlineRun is the harness state machine: each blocking point of the
// goroutine body becomes a pre-bound continuation, so the hot RUNNING-state
// step loop allocates nothing and never leaves the engine goroutine.
type inlineRun struct {
	h       *Harness
	p       *simproc.Process
	ctx     *Ctx
	stepper Stepper

	// imperative selects the RunGpuWorkload-shaped loop (no inbox polling,
	// no program-directed deadline, profile-accounted counters); maxSteps
	// bounds it (0 = forever), mirroring imperativeAdapter.
	imperative bool
	maxSteps   int
	stepsDone  int

	stepStart time.Duration
	partsLeft int
	perKernel time.Duration

	afterCreateFn func(any)
	onCommandFn   func(any)
	afterInitFn   func(any)
	afterHostFn   func(any)
	afterKernelFn func(any)
	onWaitCmdFn   func(any)
}

func (r *inlineRun) afterCreate(any) {
	h := r.h
	if err := h.create(r.ctx); err != nil {
		r.p.Exit(fmt.Errorf("sidetask %s: create: %w", h.name, err))
		return
	}
	h.setState(StateCreated, r.p.Now())
	r.recv()
}

// recv is the CREATED/PAUSED command loop (commandLoop in the goroutine
// body).
func (r *inlineRun) recv() {
	r.h.inbox.RecvThen(r.p, r.onCommandFn)
}

func (r *inlineRun) onCommand(msg any) {
	if _, closed := msg.(simproc.Closed); closed {
		r.p.Exit(fmt.Errorf("sidetask %s: command channel closed", r.h.name))
		return
	}
	cmd, ok := msg.(Command)
	if !ok {
		r.recv()
		return
	}
	r.handle(cmd)
}

// handle applies one command in the current state (handle in the goroutine
// body; unexpected commands are tolerated by returning to the command loop).
func (r *inlineRun) handle(cmd Command) {
	h := r.h
	switch cmd.Transition {
	case TransitionInit:
		if h.State() != StateCreated {
			r.recv()
			return
		}
		r.p.SleepThen(h.profile.InitTime, r.afterInitFn)

	case TransitionStart:
		if h.State() != StatePaused {
			r.recv()
			return
		}
		h.mu.Lock()
		h.bubbleEnd = cmd.BubbleEnd
		h.counters.StartedRuns++
		h.mu.Unlock()
		h.setState(StateRunning, r.p.Now())
		if r.imperative {
			r.impStep()
			return
		}
		r.iterLoop()

	case TransitionStop:
		r.stop()

	default: // TransitionPause et al.: only meaningful mid-run.
		r.recv()
	}
}

func (r *inlineRun) afterInit(any) {
	h := r.h
	if err := h.init(r.ctx); err != nil {
		r.p.Exit(fmt.Errorf("sidetask %s: init: %w", h.name, err))
		return
	}
	h.setState(StatePaused, r.p.Now())
	r.recv()
}

func (r *inlineRun) stop() {
	h := r.h
	if h.mode == ModeIterative {
		if err := h.iter.StopSideTask(r.ctx); err != nil {
			r.p.Exit(fmt.Errorf("sidetask %s: stop: %w", h.name, err))
			return
		}
	}
	h.setState(StateStopped, r.p.Now())
	r.p.Exit(nil)
}

// iterLoop is the RUNNING-state loop head of the iterative interface
// (runIterative): drain worker transitions, apply the program-directed time
// limit, then start the next step.
func (r *inlineRun) iterLoop() {
	h, p := r.h, r.p
	for {
		msg, ok := h.inbox.TryRecv()
		if !ok {
			break
		}
		cmd, okc := msg.(Command)
		if !okc {
			continue
		}
		switch cmd.Transition {
		case TransitionPause:
			h.setState(StatePaused, p.Now())
			r.recv()
			return
		case TransitionStop:
			r.stop()
			return
		case TransitionStart:
			// Bubble extension / refresh.
			h.mu.Lock()
			h.bubbleEnd = cmd.BubbleEnd
			h.mu.Unlock()
		}
	}

	h.mu.Lock()
	deadline := h.bubbleEnd
	estimate := h.stepEstimate
	h.mu.Unlock()
	remaining := deadline - p.Now()
	if remaining < estimate {
		// Program-directed limit: not enough bubble left for another step.
		// Account the unusable remainder and wait for the next command.
		if remaining > 0 {
			h.mu.Lock()
			h.counters.InsuffWait += remaining
			h.mu.Unlock()
		}
		h.inbox.RecvThen(p, r.onWaitCmdFn)
		return
	}

	r.stepStart = p.Now()
	// RunNextStep, decomposed: host-side time, CPU work, step kernel(s).
	p.SleepThen(h.profile.HostOverhead, r.afterHostFn)
}

// onWaitCmd handles the command that ends an insufficient-time wait (the
// blocking Recv inside runIterative).
func (r *inlineRun) onWaitCmd(msg any) {
	h, p := r.h, r.p
	if _, closed := msg.(simproc.Closed); closed {
		p.Exit(fmt.Errorf("sidetask %s: command channel closed", h.name))
		return
	}
	cmd, okc := msg.(Command)
	if !okc {
		r.iterLoop()
		return
	}
	switch cmd.Transition {
	case TransitionPause:
		h.setState(StatePaused, p.Now())
		r.recv()
	case TransitionStop:
		r.stop()
	case TransitionStart:
		h.mu.Lock()
		h.bubbleEnd = cmd.BubbleEnd
		h.mu.Unlock()
		r.iterLoop()
	default:
		r.iterLoop()
	}
}

// afterHost runs the step's CPU work and issues its kernel(s) — the inline
// ExecStepKernel.
func (r *inlineRun) afterHost(any) {
	h := r.h
	if err := r.stepper.StepWork(r.ctx); err != nil {
		r.stepFailed(err)
		return
	}
	d := h.profile.StepTime
	if h.profile.StepJitter > 0 {
		f := 1 + h.profile.StepJitter*(2*r.ctx.Rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	parts := h.kernelParts
	if parts < 1 {
		parts = 1
	}
	r.partsLeft = parts
	r.perKernel = d / time.Duration(parts)
	r.launchKernel()
}

func (r *inlineRun) launchKernel() {
	h := r.h
	r.ctx.GPU.ExecThen(r.p, simgpu.KernelSpec{
		Name:     h.stepKernelName,
		Duration: r.perKernel,
		Demand:   h.profile.Demand,
		Weight:   h.profile.Weight,
	}, r.afterKernelFn)
}

func (r *inlineRun) afterKernel(res any) {
	if res != nil {
		err, ok := res.(error)
		if !ok {
			err = fmt.Errorf("simgpu: unexpected completion payload %T", res)
		}
		r.stepFailed(err)
		return
	}
	r.partsLeft--
	if r.partsLeft > 0 {
		r.launchKernel()
		return
	}
	h, p := r.h, r.p
	if r.imperative {
		// imperativeAdapter accounting: the profile's nominal step cost.
		h.mu.Lock()
		h.counters.Steps++
		h.counters.KernelTime += h.profile.StepTime
		h.counters.HostTime += h.profile.HostOverhead
		h.mu.Unlock()
		r.stepsDone++
		r.impStep()
		return
	}
	h.mu.Lock()
	h.counters.Steps++
	h.counters.KernelTime += p.Now() - r.stepStart - h.profile.HostOverhead
	h.counters.HostTime += h.profile.HostOverhead
	h.mu.Unlock()
	r.iterLoop()
}

// stepFailed exits with the same error shape as the goroutine body: the
// iterative loop wraps step errors, the imperative workload stops first and
// wraps as a workload failure.
func (r *inlineRun) stepFailed(err error) {
	h := r.h
	if r.imperative {
		h.setState(StateStopped, r.p.Now())
		r.p.Exit(fmt.Errorf("sidetask %s: workload: %w", h.name, err))
		return
	}
	r.p.Exit(fmt.Errorf("sidetask %s: step: %w", h.name, err))
}

// impStep is the RunGpuWorkload-shaped loop head: run steps back to back
// (bubble-blind; pause/resume arrive as SIGTSTP/SIGCONT) until maxSteps.
func (r *inlineRun) impStep() {
	if r.maxSteps > 0 && r.stepsDone >= r.maxSteps {
		r.h.setState(StateStopped, r.p.Now())
		r.p.Exit(nil)
		return
	}
	r.p.SleepThen(r.h.profile.HostOverhead, r.afterHostFn)
}
