package sidetask

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Mode selects the programming interface a task uses.
type Mode int

// Programming interfaces (paper §4.2).
const (
	// ModeIterative is the preferred, step-wise interface with the
	// program-directed execution-time limit.
	ModeIterative Mode = iota + 1
	// ModeImperative is the fallback RunGpuWorkload interface, paused and
	// resumed transparently with signals at a higher overhead.
	ModeImperative
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeIterative:
		return "iterative"
	case ModeImperative:
		return "imperative"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Ctx is what user task code sees: the simulated process, the GPU client,
// the task profile and helpers for charging GPU work.
type Ctx struct {
	Proc    *simproc.Process
	GPU     *simgpu.Client
	Profile model.TaskProfile
	Rng     *rand.Rand

	h *Harness
}

// ExecStepKernel charges one profile-shaped step's GPU work (with jitter)
// to the simulated device and blocks until it completes. Under the
// imperative interface the step is issued as several consecutive kernels:
// a SIGTSTP then takes effect at the next kernel boundary, so only the
// in-flight *kernel* — not the whole step — drains past a pause, exactly
// the asynchronous-kernel behaviour of paper §5.
func (c *Ctx) ExecStepKernel() error {
	d := c.Profile.StepTime
	if c.Profile.StepJitter > 0 {
		f := 1 + c.Profile.StepJitter*(2*c.Rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	c.h.mu.Lock()
	c.h.lastStepDur = d
	c.h.mu.Unlock()
	parts := c.h.kernelParts
	if parts < 1 {
		parts = 1
	}
	// Integer division drops up to parts-1 ns of the jittered duration; the
	// last part absorbs the remainder so the parts sum exactly to d.
	per := d / time.Duration(parts)
	last := d - time.Duration(parts-1)*per
	spec := simgpu.KernelSpec{
		Name:   c.h.stepKernelName,
		Demand: c.Profile.Demand,
		Weight: c.Profile.Weight,
	}
	for i := 0; i < parts; i++ {
		spec.Duration = per
		if i == parts-1 {
			spec.Duration = last
		}
		if err := c.GPU.Exec(c.Proc, &spec); err != nil {
			return err
		}
	}
	return nil
}

// HostWork models CPU-side time (data loading, the interface loop).
func (c *Ctx) HostWork(d time.Duration) { c.Proc.Sleep(d) }

// Steps reports completed steps so far.
func (c *Ctx) Steps() int { return int(c.h.Counters().Steps) }

// Iterative is the user-facing iterative interface (paper Figure 6): the
// programmer overrides the state-transition bodies; the harness owns the
// state machine, the communication with the worker and the
// program-directed time limit.
type Iterative interface {
	// CreateSideTask loads the task context into host memory.
	CreateSideTask(ctx *Ctx) error
	// InitSideTask loads the context into GPU memory (AllocMem here).
	InitSideTask(ctx *Ctx) error
	// RunNextStep executes one step (one batch / one iteration / one
	// image).
	RunNextStep(ctx *Ctx) error
	// StopSideTask releases resources before termination.
	StopSideTask(ctx *Ctx) error
}

// Imperative is the fallback interface (paper §4.2): one monolithic body;
// pausing happens via signals outside the task's control.
type Imperative interface {
	CreateSideTask(ctx *Ctx) error
	InitSideTask(ctx *Ctx) error
	// RunGpuWorkload runs the whole workload; it should loop
	// ctx.ExecStepKernel (or equivalent) until done.
	RunGpuWorkload(ctx *Ctx) error
}

// Stepper marks an Iterative implementation whose RunNextStep is exactly
//
//	ctx.HostWork(profile.HostOverhead); <CPU work>; ctx.ExecStepKernel()
//
// with the CPU work exposed as StepWork. Such tasks run on the engine event
// loop with no process goroutine: the harness itself schedules the host time
// and the step kernel around StepWork, so a step costs zero goroutine
// switches and zero allocations. Implementations must keep CreateSideTask,
// InitSideTask, StopSideTask and StepWork non-blocking (no Ctx.HostWork /
// Ctx.ExecStepKernel / GPU.Exec calls — memory AllocMem/FreeMem are fine).
// All built-in tasks implement it.
type Stepper interface {
	StepWork(ctx *Ctx) error
}

// Command is a state-transition order from the worker.
type Command struct {
	Transition Transition
	// BubbleEnd accompanies TransitionStart: the program-directed
	// mechanism refuses to begin a step that cannot finish by this time
	// (paper §4.5).
	BubbleEnd time.Duration
}

// Counters is the harness bookkeeping used by the Figure-9 breakdown.
type Counters struct {
	Steps       uint64
	KernelTime  time.Duration // GPU time of completed steps
	HostTime    time.Duration // interface + host-side time
	InsuffWait  time.Duration // RUNNING time skipped by the time limit
	LastPaused  time.Duration // timestamp of the last acknowledged pause
	StartedRuns uint64        // number of StartSideTask transitions
	// StepEvents counts the engine events the step loop dispatched for the
	// completed steps: kernelParts per fused inline step, kernelParts+1
	// (the separate host-overhead sleep) otherwise. The bench report's
	// sidetask_events_per_step metric is StepEvents/Steps.
	StepEvents uint64
}

// Harness runs one side task inside its container process: it owns the
// state machine and mailbox, and calls into the user implementation.
type Harness struct {
	name    string
	mode    Mode
	profile model.TaskProfile
	iter    Iterative
	imper   Imperative
	seed    int64

	inbox *simproc.Mailbox

	// mu rides the engine ownership regime once BindEngine is called (the
	// worker binds each deployed harness to its engine at create time);
	// unbound harnesses (tests, ad-hoc rigs) keep a real mutex.
	mu        simtime.Guard
	state     State
	bubbleEnd time.Duration
	counters  Counters
	// stepEstimate is the profiled per-step duration the program-directed
	// check uses; the automated profiler fills it (paper §4.3).
	stepEstimate time.Duration
	onState      func(State)

	// kernelParts is how many consecutive kernels one step issues
	// (imperative mode uses several, giving SIGTSTP kernel-granular
	// effect; immutable after construction).
	kernelParts int
	// stepKernelName is the precomputed step-kernel label (millions of
	// launches per run; the concat must not happen per step).
	stepKernelName string
	// noStepFuse forces the unfused two-event inline step loop
	// (Config.NoStepFuse / FREERIDE_ORACLE_STEPFUSE=off).
	noStepFuse bool
	// lastStepDur is the most recent jittered step duration ExecStepKernel
	// issued; the imperative adapter charges it to KernelTime so jittered
	// profiles don't drift from the simulated work.
	lastStepDur time.Duration
}

// NewIterativeHarness wraps an Iterative implementation.
func NewIterativeHarness(name string, profile model.TaskProfile, impl Iterative, seed int64) *Harness {
	return &Harness{
		name: name, mode: ModeIterative, profile: profile, iter: impl,
		seed: seed, inbox: simproc.NewMailbox(), state: StateSubmitted,
		stepEstimate:   profile.StepTime + profile.HostOverhead,
		kernelParts:    1,
		stepKernelName: profile.Name + "-step",
	}
}

// NewImperativeHarness wraps an Imperative implementation.
func NewImperativeHarness(name string, profile model.TaskProfile, impl Imperative, seed int64) *Harness {
	return &Harness{
		name: name, mode: ModeImperative, profile: profile, imper: impl,
		seed: seed, inbox: simproc.NewMailbox(), state: StateSubmitted,
		stepEstimate:   profile.StepTime + profile.HostOverhead,
		kernelParts:    imperativeKernelParts,
		stepKernelName: profile.Name + "-step",
	}
}

// imperativeKernelParts is how many kernels an imperative step issues: real
// GPU steps comprise many kernel launches, so a SIGTSTP drains only a
// fraction of a step.
const imperativeKernelParts = 8

// Name reports the task name.
func (h *Harness) Name() string { return h.name }

// Mode reports the interface kind.
func (h *Harness) Mode() Mode { return h.mode }

// Profile reports the task profile.
func (h *Harness) Profile() model.TaskProfile { return h.profile }

// State reports the current life-cycle state (thread-safe; the worker polls
// it for IsCreated/IsPaused, paper Alg. 2 lines 16–19).
func (h *Harness) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Counters returns a snapshot of the bookkeeping counters.
func (h *Harness) Counters() Counters {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counters
}

// SetStepEstimate overrides the per-step duration used by the
// program-directed limit (the automated profiler calls this).
func (h *Harness) SetStepEstimate(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d > 0 {
		h.stepEstimate = d
	}
}

// Deliver sends a state-transition command to the harness (worker side).
func (h *Harness) Deliver(cmd Command) { h.inbox.Send(cmd) }

// Restore seeds the harness's progress counters from a checkpoint before it
// starts: a task re-placed after a worker failure resumes from its last
// checkpointed step rather than from zero. Work-progress counters carry
// over; run-local bookkeeping (LastPaused, StartedRuns) starts fresh with
// the new incarnation. Call before the harness runs.
func (h *Harness) Restore(c Counters) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counters.Steps = c.Steps
	h.counters.KernelTime = c.KernelTime
	h.counters.HostTime = c.HostTime
	h.counters.InsuffWait = c.InsuffWait
	h.counters.StepEvents = c.StepEvents
}

// SetStepFuse enables or disables the fused one-event-per-step inline loop
// (enabled by default on lead-capable devices; Config.NoStepFuse and the
// FREERIDE_ORACLE_STEPFUSE=off oracle arm force it off). Call before the
// harness starts.
func (h *Harness) SetStepFuse(enabled bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.noStepFuse = !enabled
}

// BindEngine ties the harness's lock and inbox to eng's ownership regime
// (see simtime.Guard): free in single-owner simulations, real mutexes once
// the engine escalates. The deployer calls it right after construction,
// before the harness is started or shared.
func (h *Harness) BindEngine(eng simtime.Engine) {
	h.mu.Bind(eng)
	h.inbox.Bind(eng)
}

// SetStateListener installs a callback fired on every state change, from
// the task process's context. The worker uses it to keep the manager's
// cached task states in sync without polling.
func (h *Harness) SetStateListener(fn func(State)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onState = fn
}

func (h *Harness) setState(s State, now time.Duration) {
	h.mu.Lock()
	if s == StatePaused && h.state == StateRunning {
		h.counters.LastPaused = now
	}
	h.state = s
	fn := h.onState
	h.mu.Unlock()
	if fn != nil {
		fn(s)
	}
}

// errStopped unwinds the run loop on TransitionStop.
var errStopped = errors.New("sidetask: stopped")

// Run is the container body: it executes the full life cycle and returns
// when the task is stopped (or its process is killed / hits an OOM).
func (h *Harness) Run(p *simproc.Process, gpu *simgpu.Client) error {
	ctx := &Ctx{
		Proc:    p,
		GPU:     gpu,
		Profile: h.profile,
		Rng:     rand.New(rand.NewSource(h.seed)),
		h:       h,
	}

	// SUBMITTED -> CREATED: load context into host memory.
	ctx.HostWork(h.profile.CreateTime)
	if err := h.create(ctx); err != nil {
		return fmt.Errorf("sidetask %s: create: %w", h.name, err)
	}
	h.setState(StateCreated, p.Now())

	err := h.commandLoop(ctx)
	if errors.Is(err, errStopped) {
		return nil
	}
	return err
}

// commandLoop processes worker commands until stop.
func (h *Harness) commandLoop(ctx *Ctx) error {
	p := ctx.Proc
	for {
		msg, ok := h.inbox.Recv(p)
		if !ok {
			return fmt.Errorf("sidetask %s: command channel closed", h.name)
		}
		cmd, okc := msg.(Command)
		if !okc {
			continue
		}
		if err := h.handle(ctx, cmd); err != nil {
			return err
		}
	}
}

// handle applies one command in the current state.
func (h *Harness) handle(ctx *Ctx, cmd Command) error {
	p := ctx.Proc
	switch cmd.Transition {
	case TransitionInit:
		if h.State() != StateCreated {
			return nil // tolerate duplicate/err-ordered commands
		}
		ctx.HostWork(h.profile.InitTime)
		if err := h.init(ctx); err != nil {
			return fmt.Errorf("sidetask %s: init: %w", h.name, err)
		}
		h.setState(StatePaused, p.Now())
		return nil

	case TransitionStart:
		if h.State() != StatePaused {
			return nil
		}
		h.mu.Lock()
		h.bubbleEnd = cmd.BubbleEnd
		h.counters.StartedRuns++
		h.mu.Unlock()
		h.setState(StateRunning, p.Now())
		if h.mode == ModeImperative {
			// The imperative body runs to completion; pause/resume happen
			// via SIGTSTP/SIGCONT outside our control (paper §4.2).
			err := h.imper.RunGpuWorkload(ctx)
			h.setState(StateStopped, p.Now())
			if err != nil {
				return fmt.Errorf("sidetask %s: workload: %w", h.name, err)
			}
			return errStopped
		}
		return h.runIterative(ctx)

	case TransitionPause:
		// Only meaningful mid-run; handled inside runIterative. Arriving
		// here means we are already paused.
		return nil

	case TransitionStop:
		return h.stop(ctx)
	}
	return nil
}

// runIterative is the RUNNING-state loop of the iterative interface:
// between steps it checks for worker transitions, and before each step the
// program-directed mechanism verifies the remaining bubble time (paper
// §4.5).
func (h *Harness) runIterative(ctx *Ctx) error {
	p := ctx.Proc
	for {
		// Worker transitions take priority over the next step.
		if msg, ok := h.inbox.TryRecv(); ok {
			cmd, okc := msg.(Command)
			if !okc {
				continue
			}
			switch cmd.Transition {
			case TransitionPause:
				h.setState(StatePaused, p.Now())
				return nil
			case TransitionStop:
				return h.stop(ctx)
			case TransitionStart:
				// Bubble extension / refresh.
				h.mu.Lock()
				h.bubbleEnd = cmd.BubbleEnd
				h.mu.Unlock()
			}
			continue
		}

		h.mu.Lock()
		deadline := h.bubbleEnd
		estimate := h.stepEstimate
		h.mu.Unlock()
		remaining := deadline - p.Now()
		if remaining < estimate {
			// Program-directed limit: not enough bubble left for another
			// step. Account the unusable remainder and wait for the next
			// command (normally the manager's pause, then a new start).
			if remaining > 0 {
				h.mu.Lock()
				h.counters.InsuffWait += remaining
				h.mu.Unlock()
			}
			msg, ok := h.inbox.Recv(p)
			if !ok {
				return fmt.Errorf("sidetask %s: command channel closed", h.name)
			}
			cmd, okc := msg.(Command)
			if !okc {
				continue
			}
			switch cmd.Transition {
			case TransitionPause:
				h.setState(StatePaused, p.Now())
				return nil
			case TransitionStop:
				return h.stop(ctx)
			case TransitionStart:
				h.mu.Lock()
				h.bubbleEnd = cmd.BubbleEnd
				h.mu.Unlock()
			}
			continue
		}

		stepStart := p.Now()
		if err := h.iter.RunNextStep(ctx); err != nil {
			return fmt.Errorf("sidetask %s: step: %w", h.name, err)
		}
		h.mu.Lock()
		h.counters.Steps++
		h.counters.KernelTime += p.Now() - stepStart - h.profile.HostOverhead
		h.counters.HostTime += h.profile.HostOverhead
		h.counters.StepEvents += uint64(h.kernelParts) + 1
		h.mu.Unlock()
	}
}

func (h *Harness) create(ctx *Ctx) error {
	if h.mode == ModeImperative {
		return h.imper.CreateSideTask(ctx)
	}
	return h.iter.CreateSideTask(ctx)
}

func (h *Harness) init(ctx *Ctx) error {
	if h.mode == ModeImperative {
		return h.imper.InitSideTask(ctx)
	}
	return h.iter.InitSideTask(ctx)
}

func (h *Harness) stop(ctx *Ctx) error {
	if h.mode == ModeIterative {
		if err := h.iter.StopSideTask(ctx); err != nil {
			return fmt.Errorf("sidetask %s: stop: %w", h.name, err)
		}
	}
	h.setState(StateStopped, ctx.Proc.Now())
	return errStopped
}
