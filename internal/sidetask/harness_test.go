package sidetask

import (
	"testing"
	"testing/quick"
	"time"

	"freeride/internal/container"
	"freeride/internal/model"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

func TestStateMachineLegalEdges(t *testing.T) {
	tests := []struct {
		from State
		tr   Transition
		want State
	}{
		{StateSubmitted, TransitionCreate, StateCreated},
		{StateCreated, TransitionInit, StatePaused},
		{StatePaused, TransitionStart, StateRunning},
		{StateRunning, TransitionPause, StatePaused},
		{StateRunning, TransitionRunNextStep, StateRunning},
		{StateCreated, TransitionStop, StateStopped},
		{StatePaused, TransitionStop, StateStopped},
		{StateRunning, TransitionStop, StateStopped},
	}
	for _, tc := range tests {
		got, err := Next(tc.from, tc.tr)
		if err != nil || got != tc.want {
			t.Errorf("Next(%v,%v) = %v/%v, want %v", tc.from, tc.tr, got, err, tc.want)
		}
	}
}

func TestStateMachineRejectsIllegal(t *testing.T) {
	illegal := []struct {
		from State
		tr   Transition
	}{
		{StateSubmitted, TransitionStart},
		{StateSubmitted, TransitionStop},
		{StateCreated, TransitionStart},
		{StatePaused, TransitionPause},
		{StateStopped, TransitionStart},
		{StateStopped, TransitionStop},
		{StatePaused, TransitionInit},
	}
	for _, tc := range illegal {
		if _, err := Next(tc.from, tc.tr); err == nil {
			t.Errorf("Next(%v,%v) accepted", tc.from, tc.tr)
		}
	}
}

// Property: from any state, any transition either errors or lands on a
// state from which STOPPED remains reachable (no livelock states).
func TestStateMachineStoppedReachable(t *testing.T) {
	reachStop := func(s State) bool {
		seen := map[State]bool{}
		frontier := []State{s}
		for len(frontier) > 0 {
			cur := frontier[0]
			frontier = frontier[1:]
			if cur == StateStopped {
				return true
			}
			if seen[cur] {
				continue
			}
			seen[cur] = true
			for tr := TransitionCreate; tr <= TransitionStop; tr++ {
				if next, err := Next(cur, tr); err == nil {
					frontier = append(frontier, next)
				}
			}
		}
		return false
	}
	f := func(stateRaw, trRaw uint8) bool {
		s := State(stateRaw%5) + 1
		tr := Transition(trRaw%6) + 1
		next, err := Next(s, tr)
		if err != nil {
			return true
		}
		return reachStop(next)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type taskRig struct {
	eng  *simtime.Virtual
	dev  *simgpu.Device
	ctr  *container.Runtime
	h    *Harness
	cont *container.Container
}

func newTaskRig(t *testing.T, profile model.TaskProfile, mode Mode) *taskRig {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
	ctr := container.NewRuntime(procs)
	h, err := NewBuiltin(profile, mode, WorkNone, 1)
	if err != nil {
		t.Fatalf("NewBuiltin: %v", err)
	}
	cont, err := ctr.Run(container.Spec{
		Name:        profile.Name,
		Device:      dev,
		GPUMemLimit: profile.MemBytes + model.GiB,
		GPUWeight:   profile.Weight,
	}, h.Run)
	if err != nil {
		t.Fatalf("container.Run: %v", err)
	}
	return &taskRig{eng: eng, dev: dev, ctr: ctr, h: h, cont: cont}
}

func TestIterativeLifecycle(t *testing.T) {
	r := newTaskRig(t, model.ResNet18, ModeIterative)
	// SUBMITTED -> CREATED after CreateTime.
	r.eng.RunUntil(model.ResNet18.CreateTime + 10*time.Millisecond)
	if got := r.h.State(); got != StateCreated {
		t.Fatalf("state = %v, want CREATED", got)
	}
	if r.dev.MemUsed() != 0 {
		t.Fatal("GPU memory allocated before InitSideTask")
	}
	// CREATED -> PAUSED.
	r.eng.Schedule(0, "init", func() { r.h.Deliver(Command{Transition: TransitionInit}) })
	r.eng.RunFor(model.ResNet18.InitTime + 10*time.Millisecond)
	if got := r.h.State(); got != StatePaused {
		t.Fatalf("state = %v, want PAUSED", got)
	}
	if r.dev.MemUsed() != model.ResNet18.MemBytes {
		t.Fatalf("GPU mem = %d, want %d", r.dev.MemUsed(), model.ResNet18.MemBytes)
	}
	// PAUSED -> RUNNING for a 500ms bubble.
	start := r.eng.Now()
	r.eng.Schedule(0, "start", func() {
		r.h.Deliver(Command{Transition: TransitionStart, BubbleEnd: start + 500*time.Millisecond})
	})
	r.eng.RunFor(500 * time.Millisecond)
	if got := r.h.State(); got != StateRunning {
		t.Fatalf("state = %v, want RUNNING", got)
	}
	r.eng.Schedule(0, "pause", func() { r.h.Deliver(Command{Transition: TransitionPause}) })
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.h.State(); got != StatePaused {
		t.Fatalf("state = %v, want PAUSED after pause", got)
	}
	c := r.h.Counters()
	if c.Steps == 0 {
		t.Fatal("no steps ran during the bubble")
	}
	// ~500ms bubble / ~31.6ms step ≈ 14-15 steps.
	if c.Steps > 16 {
		t.Fatalf("steps = %d, impossibly many for a 500ms bubble", c.Steps)
	}
	// PAUSED -> STOPPED releases memory and exits the container.
	r.eng.Schedule(0, "stop", func() { r.h.Deliver(Command{Transition: TransitionStop}) })
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.h.State(); got != StateStopped {
		t.Fatalf("state = %v, want STOPPED", got)
	}
	if r.cont.Alive() {
		t.Fatal("container still alive after stop")
	}
	if r.dev.MemUsed() != 0 {
		t.Fatalf("GPU mem = %d after stop, want 0", r.dev.MemUsed())
	}
}

func TestProgramDirectedLimitSkipsFinalStep(t *testing.T) {
	// A bubble barely longer than one step must run exactly one step; the
	// remainder is recorded as insufficient time and, crucially, no kernel
	// may run past the bubble end.
	r := newTaskRig(t, model.ResNet18, ModeIterative)
	r.eng.RunUntil(2 * time.Second)
	r.eng.Schedule(0, "init", func() { r.h.Deliver(Command{Transition: TransitionInit}) })
	r.eng.RunFor(time.Second)

	// Profile estimate is StepTime+HostOverhead ≈ 31.6ms; give 40ms.
	bubbleStart := r.eng.Now()
	bubbleEnd := bubbleStart + 40*time.Millisecond
	r.eng.Schedule(0, "start", func() {
		r.h.Deliver(Command{Transition: TransitionStart, BubbleEnd: bubbleEnd})
	})
	r.eng.RunUntil(bubbleEnd + 200*time.Millisecond)
	c := r.h.Counters()
	if c.Steps != 1 {
		t.Fatalf("steps = %d, want exactly 1", c.Steps)
	}
	if c.InsuffWait <= 0 {
		t.Fatal("no insufficient-time accounting")
	}
	// The device must be idle after the step: no kernel crossed the end
	// except possibly the jittered first step (max jitter 10% of 30.4ms
	// fits inside 40ms window only if jitter < ~6ms, which holds).
	if occ := r.dev.Occupancy().At(bubbleEnd + 50*time.Millisecond); occ != 0 {
		t.Fatalf("occupancy %v after bubble end — kernel overran", occ)
	}
}

func TestIterativeStartWhileRunningExtendsBubble(t *testing.T) {
	r := newTaskRig(t, model.PageRank, ModeIterative)
	r.eng.RunUntil(5 * time.Second)
	r.eng.Schedule(0, "init", func() { r.h.Deliver(Command{Transition: TransitionInit}) })
	r.eng.RunFor(time.Second)
	t0 := r.eng.Now()
	r.eng.Schedule(0, "start1", func() {
		r.h.Deliver(Command{Transition: TransitionStart, BubbleEnd: t0 + 50*time.Millisecond})
	})
	r.eng.Schedule(40*time.Millisecond, "extend", func() {
		r.h.Deliver(Command{Transition: TransitionStart, BubbleEnd: t0 + 200*time.Millisecond})
	})
	r.eng.RunUntil(t0 + 300*time.Millisecond)
	c := r.h.Counters()
	// ~200ms at ~4.2ms/step ≈ 45 steps; far more than the ~11 of 50ms.
	if c.Steps < 30 {
		t.Fatalf("steps = %d, want ≥30 after extension", c.Steps)
	}
}

func TestImperativePauseLeavesKernelInFlight(t *testing.T) {
	// The asynchronous-kernel overhead of the imperative interface (paper
	// §5): SIGTSTP stops the process but the submitted kernel completes.
	r := newTaskRig(t, model.GraphSGD, ModeImperative)
	r.eng.RunUntil(6 * time.Second)
	r.eng.Schedule(0, "init", func() { r.h.Deliver(Command{Transition: TransitionInit}) })
	r.eng.RunFor(2 * time.Second)
	if got := r.h.State(); got != StatePaused {
		t.Fatalf("state = %v, want PAUSED", got)
	}
	t0 := r.eng.Now()
	r.eng.Schedule(0, "start", func() {
		r.h.Deliver(Command{Transition: TransitionStart, BubbleEnd: t0 + 10*time.Second})
	})
	// Pause mid-step via SIGTSTP (bubble "ends").
	r.eng.Schedule(300*time.Millisecond, "tstp", func() { r.cont.Stop() })
	r.eng.RunUntil(t0 + 302*time.Millisecond)
	if !r.cont.Process().Stopped() {
		t.Fatal("process not suspended after SIGTSTP")
	}
	// The in-flight SGD sub-kernel (~30 ms each) keeps the device busy
	// past the stop signal.
	if occ := r.dev.Occupancy().Max(t0+300*time.Millisecond, t0+330*time.Millisecond); occ == 0 {
		t.Fatal("no in-flight kernel after SIGTSTP — imperative semantics broken")
	}
	// Eventually the kernel drains and the device goes idle.
	r.eng.RunUntil(t0 + 2*time.Second)
	if occ := r.dev.Occupancy().At(r.eng.Now()); occ != 0 {
		t.Fatalf("device still busy %v long after SIGTSTP", occ)
	}
	// SIGCONT resumes stepping.
	stepsAtPause := r.h.Counters().Steps
	r.eng.Schedule(0, "cont", func() { r.cont.Cont() })
	r.eng.RunFor(2 * time.Second)
	if got := r.h.Counters().Steps; got <= stepsAtPause {
		t.Fatalf("steps did not advance after SIGCONT: %d -> %d", stepsAtPause, got)
	}
}

func TestHarnessOOMKillsOnlyTask(t *testing.T) {
	// MPS memory cap below the task's footprint: InitSideTask OOMs, the
	// container dies, the device is untouched for others.
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
	ctr := container.NewRuntime(procs)
	h, err := NewBuiltin(model.VGG19, ModeIterative, WorkNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := ctr.Run(container.Spec{
		Name: "vgg", Device: dev, GPUMemLimit: 1 * model.GiB,
	}, h.Run)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	eng.Schedule(0, "init", func() { h.Deliver(Command{Transition: TransitionInit}) })
	eng.RunFor(5 * time.Second)
	exited, exitErr, _ := cont.ExitInfo()
	if !exited || exitErr == nil {
		t.Fatalf("ExitInfo = %v/%v, want OOM exit", exited, exitErr)
	}
	if dev.MemUsed() != 0 {
		t.Fatalf("device mem = %d after OOM, want 0", dev.MemUsed())
	}
}

func TestBuiltinAllTasksConstructible(t *testing.T) {
	for _, p := range model.TaskProfiles {
		for _, mode := range []Mode{ModeIterative, ModeImperative} {
			h, err := NewBuiltin(p, mode, WorkSmall, 42)
			if err != nil {
				t.Errorf("NewBuiltin(%s,%v): %v", p.Name, mode, err)
				continue
			}
			if h.Mode() != mode || h.Profile().Name != p.Name {
				t.Errorf("harness mismatch for %s", p.Name)
			}
		}
	}
	if _, err := NewBuiltin(model.TaskProfile{Name: "nope"}, ModeIterative, WorkNone, 1); err == nil {
		t.Error("unknown task constructible")
	}
}

func TestBuiltinBatchVariantResolves(t *testing.T) {
	p := model.ResNet18.WithBatch(96)
	if _, err := NewBuiltin(p, ModeIterative, WorkNone, 1); err != nil {
		t.Fatalf("batch variant: %v", err)
	}
}

func TestBuiltinRealWorkRuns(t *testing.T) {
	// With WorkSmall the PageRank task performs real iterations.
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "gpu0"})
	ctr := container.NewRuntime(procs)
	h, _ := NewBuiltin(model.PageRank, ModeIterative, WorkSmall, 7)
	ctr.Run(container.Spec{Name: "pr", Device: dev}, h.Run)
	eng.RunUntil(6 * time.Second)
	eng.Schedule(0, "init", func() { h.Deliver(Command{Transition: TransitionInit}) })
	eng.RunFor(2 * time.Second)
	t0 := eng.Now()
	eng.Schedule(0, "start", func() {
		h.Deliver(Command{Transition: TransitionStart, BubbleEnd: t0 + 100*time.Millisecond})
	})
	eng.RunFor(200 * time.Millisecond)
	if h.Counters().Steps == 0 {
		t.Fatal("no real PageRank steps executed")
	}
}

func TestModeString(t *testing.T) {
	if ModeIterative.String() != "iterative" || ModeImperative.String() != "imperative" {
		t.Fatal("Mode.String mismatch")
	}
	if StateRunning.String() != "RUNNING" || TransitionPause.String() != "PauseSideTask" {
		t.Fatal("String mismatch")
	}
}
