// Package simtime provides the time substrate every FreeRide component runs
// on: a deterministic discrete-event (virtual-time) engine for simulation and
// experiments, and a wall-clock engine for the live manager/worker daemons.
//
// All components express time-dependent behaviour exclusively through the
// Engine interface, so the same middleware code runs unchanged under both
// engines. Under the virtual engine, time advances only when the event queue
// is drained up to the next event, which makes multi-hour training runs
// simulate in milliseconds and makes every experiment bit-reproducible.
package simtime

import (
	"sync/atomic"
	"time"
)

// Engine abstracts a clock plus deferred execution.
//
// Implementations must guarantee that callbacks scheduled through the same
// Engine never run concurrently with one another: the virtual engine runs
// them on the single Run goroutine, and the wall-clock engine serializes them
// with an internal dispatch lock. Components may therefore mutate their state
// inside callbacks without additional locking, provided all their entry
// points are engine callbacks.
type Engine interface {
	// Now reports the current time as an offset from the engine epoch.
	Now() time.Duration

	// Schedule arranges for fn to run at Now()+delay. A zero or negative
	// delay schedules fn "as soon as possible" while preserving FIFO order
	// among equal-time events. The name is used for debugging and tracing.
	Schedule(delay time.Duration, name string, fn func()) *Timer
}

// Timer states, advanced monotonically with compare-and-swap so that Cancel
// racing with the dispatch path resolves to exactly one outcome.
const (
	timerPending int32 = iota
	timerCanceled
	timerFired
)

// Timer is a handle for a scheduled callback.
type Timer struct {
	// when is the absolute engine-time deadline of the callback.
	when time.Duration
	// seq breaks ties among events with equal deadlines: lower runs first.
	seq uint64
	// name labels the event for debugging.
	name string
	fn   func()

	state atomic.Int32

	// stop cancels the underlying wall-clock timer, if any.
	stop func() bool
}

// When reports the absolute engine time the timer is scheduled for.
func (t *Timer) When() time.Duration { return t.when }

// Name reports the debug label the timer was scheduled with.
func (t *Timer) Name() string { return t.name }

// Cancel prevents the callback from running. It reports whether the
// cancellation won: false means the callback already ran or is running.
// Canceling an already-canceled timer returns false.
func (t *Timer) Cancel() bool {
	if !t.state.CompareAndSwap(timerPending, timerCanceled) {
		return false
	}
	if t.stop != nil {
		t.stop()
	}
	return true
}

// Stopped reports whether the timer was canceled before firing.
func (t *Timer) Stopped() bool { return t.state.Load() == timerCanceled }

// Fired reports whether the callback has already run (or started running).
func (t *Timer) Fired() bool { return t.state.Load() == timerFired }

// claim transitions the timer to fired; the dispatcher must only invoke the
// callback when claim succeeds.
func (t *Timer) claim() bool {
	return t.state.CompareAndSwap(timerPending, timerFired)
}
