// Package simtime provides the time substrate every FreeRide component runs
// on: a deterministic discrete-event (virtual-time) engine for simulation and
// experiments, and a wall-clock engine for the live manager/worker daemons.
//
// All components express time-dependent behaviour exclusively through the
// Engine interface, so the same middleware code runs unchanged under both
// engines. Under the virtual engine, time advances only when the event queue
// is drained up to the next event, which makes multi-hour training runs
// simulate in milliseconds and makes every experiment bit-reproducible.
package simtime

import (
	"sync/atomic"
	"time"
)

// Engine abstracts a clock plus deferred execution.
//
// Implementations must guarantee that callbacks scheduled through the same
// Engine never run concurrently with one another: the virtual engine runs
// them on the single Run goroutine, and the wall-clock engine serializes them
// with an internal dispatch lock. Components may therefore mutate their state
// inside callbacks without additional locking, provided all their entry
// points are engine callbacks.
type Engine interface {
	// Now reports the current time as an offset from the engine epoch.
	Now() time.Duration

	// Schedule arranges for fn to run at Now()+delay. A zero or negative
	// delay schedules fn "as soon as possible" while preserving FIFO order
	// among equal-time events. The name is used for debugging and tracing.
	Schedule(delay time.Duration, name string, fn func()) *Timer
}

// Detacher is implemented by engines that offer an allocation-free fast path
// for fire-and-forget events: no Timer handle is returned, which lets the
// engine recycle the timer through a free-list after the callback runs.
type Detacher interface {
	// ScheduleDetached behaves like Schedule but returns no handle; the
	// event cannot be canceled or observed.
	ScheduleDetached(delay time.Duration, name string, fn func())
}

// Detached schedules a fire-and-forget event, taking the engine's pooled
// fast path when available. Hot paths that discard the *Timer handle (RPC
// frame delivery, process sleep wake-ups) should prefer this over Schedule:
// a handle that escapes can never be safely recycled, a handle that is never
// created can.
func Detached(eng Engine, delay time.Duration, name string, fn func()) {
	if d, ok := eng.(Detacher); ok {
		d.ScheduleDetached(delay, name, fn)
		return
	}
	eng.Schedule(delay, name, fn)
}

// Rescheduler is implemented by engines that can re-arm a fired or canceled
// timer in place, reusing its allocation (and, on the wall engine, the
// underlying runtime timer).
type Rescheduler interface {
	Reschedule(t *Timer, delay time.Duration, name string, fn func()) *Timer
}

// Escalator is the engine ownership hook: engines that start in a
// single-owner (lock-free) regime implement it so components can declare
// when they introduce concurrency. Any component that creates a goroutine
// able to reach the engine — a goroutine-process shell (simproc.Spawn), a
// network read pump (freerpc.NewNetConn) — must escalate first, before that
// goroutine exists. Inherently concurrent engines (Wall) implement it as a
// no-op; components that stay on the dispatcher goroutine (simproc
// SpawnInline bodies, the pipeline's stage machines, inline side tasks)
// declare their regime by not calling it.
type Escalator interface {
	// EscalateShared switches the engine to its mutex-guarded regime.
	// One-way; idempotent.
	EscalateShared()
}

// EscalateShared declares that eng is about to be shared between
// goroutines, taking the engine's ownership hook when it has one. Call it
// before creating any goroutine that can touch the engine.
func EscalateShared(eng Engine) {
	if e, ok := eng.(Escalator); ok {
		e.EscalateShared()
	}
}

// Reschedule re-arms a fired, canceled or nil timer whose handle the caller
// exclusively owns, reusing its allocation when the engine supports it
// (both Virtual and Wall do). On other engines it cancels t and schedules
// afresh.
func Reschedule(eng Engine, t *Timer, delay time.Duration, name string, fn func()) *Timer {
	if r, ok := eng.(Rescheduler); ok {
		return r.Reschedule(t, delay, name, fn)
	}
	if t != nil {
		t.Cancel()
	}
	return eng.Schedule(delay, name, fn)
}

// Timer states, advanced monotonically with compare-and-swap so that Cancel
// racing with the dispatch path resolves to exactly one outcome.
const (
	timerPending int32 = iota
	timerCanceled
	timerFired
)

// Timer is a handle for a scheduled callback.
type Timer struct {
	// when is the absolute engine-time deadline of the callback.
	when time.Duration
	// seq breaks ties among events with equal deadlines: lower runs first.
	seq uint64
	// name labels the event for debugging.
	name string
	fn   func()

	state atomic.Int32

	// stop cancels the underlying wall-clock timer, if any.
	stop func() bool

	// weng/wt tie a wall-engine timer to its runtime timer so Reschedule
	// and the detached free-list can re-arm it in place.
	weng *Wall
	wt   *time.Timer

	// vq is the owning virtual engine; Cancel removes the timer from its
	// queue eagerly instead of leaving a dead entry for the dispatcher.
	vq *Virtual
	// pos is the timer's index within vq's queue structure — the heap, or
	// its wheel bucket — and -1 when not queued.
	pos int32
	// slot is the timer's wheel-bucket index, -1 when the timer lives in
	// the overflow heap. Only meaningful while pos >= 0.
	slot int32
	// pooled marks detached timers eligible for free-list recycling after
	// they fire. A raw *Timer to a pooled timer is inherently stale-prone
	// (the allocation is reused for unrelated events), so the plain Cancel
	// and Pending methods refuse pooled timers; cancellation goes through a
	// generation-checked DetachedRef instead.
	pooled bool
	// gen counts incarnations of a pooled timer: bumped each time it is
	// recycled, it is what lets a DetachedRef detect that its event is gone.
	gen uint64
}

// When reports the absolute engine time the timer is scheduled for.
func (t *Timer) When() time.Duration { return t.when }

// Name reports the debug label the timer was scheduled with.
func (t *Timer) Name() string { return t.name }

// Cancel prevents the callback from running. It reports whether the
// cancellation won: false means the callback already ran or is running.
// Canceling an already-canceled timer returns false. On a pooled (detached)
// timer Cancel is always a no-op: the *Timer may already back an unrelated
// recycled event, and killing that one would be a silent corruption — use
// the DetachedRef returned by ScheduleDetachedRef, whose generation check
// makes stale cancels harmless.
func (t *Timer) Cancel() bool {
	if t.pooled {
		return false
	}
	if !t.state.CompareAndSwap(timerPending, timerCanceled) {
		return false
	}
	if t.stop != nil {
		t.stop()
	}
	if t.vq != nil {
		t.vq.remove(t)
	}
	return true
}

// Stopped reports whether the timer was canceled before firing.
func (t *Timer) Stopped() bool { return t.state.Load() == timerCanceled }

// Pending reports whether the timer is armed and has neither fired nor been
// canceled. Owners of a reusable Reschedule handle use this to skip re-arming
// a deadline that is already set: When() then reports the armed deadline.
// Like Cancel, Pending refuses pooled timers (always false): a recycled
// *Timer would otherwise report some unrelated event's state.
func (t *Timer) Pending() bool { return !t.pooled && t.state.Load() == timerPending }

// Fired reports whether the callback has already run (or started running).
func (t *Timer) Fired() bool { return t.state.Load() == timerFired }

// claim transitions the timer to fired; the dispatcher must only invoke the
// callback when claim succeeds.
func (t *Timer) claim() bool {
	return t.state.CompareAndSwap(timerPending, timerFired)
}
