package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualAdvancesToEventTime(t *testing.T) {
	v := NewVirtual()
	var at time.Duration
	v.Schedule(250*time.Millisecond, "probe", func() { at = v.Now() })
	if !v.Step() {
		t.Fatal("Step() = false, want true")
	}
	if at != 250*time.Millisecond {
		t.Fatalf("event observed t=%v, want 250ms", at)
	}
	if v.Now() != 250*time.Millisecond {
		t.Fatalf("Now() = %v after event, want 250ms", v.Now())
	}
}

func TestVirtualFIFOAmongEqualDeadlines(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.Schedule(time.Second, "same", func() { order = append(order, i) })
	}
	v.MustDrain(100)
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (full order %v)", i, got, i, order)
		}
	}
}

func TestVirtualNegativeDelayClampsToNow(t *testing.T) {
	v := NewVirtual()
	v.Schedule(time.Second, "advance", func() {
		v.Schedule(-5*time.Second, "past", func() {
			if v.Now() != time.Second {
				t.Errorf("past event ran at %v, want 1s", v.Now())
			}
		})
	})
	v.MustDrain(10)
}

func TestVirtualCancel(t *testing.T) {
	v := NewVirtual()
	ran := false
	tm := v.Schedule(time.Second, "victim", func() { ran = true })
	if !tm.Cancel() {
		t.Fatal("Cancel() = false, want true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	v.MustDrain(10)
	if ran {
		t.Fatal("canceled event ran")
	}
	if !tm.Stopped() || tm.Fired() {
		t.Fatalf("Stopped=%v Fired=%v, want true/false", tm.Stopped(), tm.Fired())
	}
}

func TestVirtualCancelAfterFire(t *testing.T) {
	v := NewVirtual()
	tm := v.Schedule(0, "x", func() {})
	v.MustDrain(10)
	if tm.Cancel() {
		t.Fatal("Cancel after fire = true, want false")
	}
	if !tm.Fired() {
		t.Fatal("Fired() = false after dispatch")
	}
}

func TestVirtualRunUntilHorizon(t *testing.T) {
	v := NewVirtual()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		v.Schedule(d, "e", func() { fired = append(fired, d) })
	}
	v.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if v.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", v.Now())
	}
	v.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second horizon, want 3", len(fired))
	}
	if v.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s (clock advances to horizon)", v.Now())
	}
}

func TestVirtualRunFor(t *testing.T) {
	v := NewVirtual()
	v.RunFor(time.Minute)
	if v.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", v.Now())
	}
	v.RunFor(time.Minute)
	if v.Now() != 2*time.Minute {
		t.Fatalf("Now() = %v, want 2m", v.Now())
	}
}

func TestVirtualEventSchedulesEvent(t *testing.T) {
	v := NewVirtual()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			v.Schedule(time.Second, "recurse", recurse)
		}
	}
	v.Schedule(time.Second, "recurse", recurse)
	v.MustDrain(100)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if v.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", v.Now())
	}
}

func TestVirtualDrainLimit(t *testing.T) {
	v := NewVirtual()
	var loop func()
	loop = func() { v.Schedule(time.Millisecond, "loop", loop) }
	v.Schedule(0, "loop", loop)
	if n := v.Drain(50); n != 50 {
		t.Fatalf("Drain(50) = %d, want 50", n)
	}
}

func TestVirtualDispatchedCounter(t *testing.T) {
	v := NewVirtual()
	for i := 0; i < 7; i++ {
		v.Schedule(time.Duration(i)*time.Millisecond, "e", func() {})
	}
	v.MustDrain(100)
	if got := v.Dispatched(); got != 7 {
		t.Fatalf("Dispatched() = %d, want 7", got)
	}
}

// Property: events always fire in nondecreasing time order and exactly the
// non-canceled ones fire, regardless of insertion order.
func TestVirtualOrderingProperty(t *testing.T) {
	f := func(delaysMs []uint16, seed int64) bool {
		if len(delaysMs) == 0 {
			return true
		}
		if len(delaysMs) > 200 {
			delaysMs = delaysMs[:200]
		}
		rng := rand.New(rand.NewSource(seed))
		v := NewVirtual()
		var fireTimes []time.Duration
		var timers []*Timer
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			timers = append(timers, v.Schedule(d, "p", func() {
				fireTimes = append(fireTimes, v.Now())
			}))
		}
		// Cancel a random subset before running.
		canceled := 0
		for _, tm := range timers {
			if rng.Intn(3) == 0 {
				tm.Cancel()
				canceled++
			}
		}
		v.MustDrain(uint64(len(delaysMs)) + 1)
		if len(fireTimes) != len(delaysMs)-canceled {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock equals the max deadline among fired events after a
// full drain.
func TestVirtualClockMatchesMaxDeadline(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		v := NewVirtual()
		var maxT time.Duration
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			if d > maxT {
				maxT = d
			}
			v.Schedule(d, "p", func() {})
		}
		v.MustDrain(uint64(len(delaysMs)) + 1)
		return v.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewVirtual().Schedule(0, "nil", nil)
}

func BenchmarkVirtualScheduleAndDispatch(b *testing.B) {
	v := NewVirtual()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Schedule(time.Duration(i%1000)*time.Microsecond, "bench", func() {})
		if i%1024 == 1023 {
			v.Drain(0)
		}
	}
	v.Drain(0)
}
