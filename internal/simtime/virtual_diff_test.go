package simtime

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// diffEngine wraps one Virtual plus the bookkeeping the differential driver
// needs to replay an identical workload on it.
type diffEngine struct {
	v      *Virtual
	order  []int
	timers map[int]*Timer
	// loops maps a handle id to its reusable Reschedule handle (exclusive
	// ownership, like the manager's deadline timers).
	loops map[int]*Timer
}

func newDiffEngine(escalated bool) *diffEngine {
	d := &diffEngine{v: NewVirtual(), timers: map[int]*Timer{}, loops: map[int]*Timer{}}
	if escalated {
		d.v.EscalateShared()
	}
	return d
}

// TestVirtualSingleOwnerVsEscalatedBitIdentical is the engine differential
// property test: identical randomized workloads — schedule, cancel,
// reschedule (both fresh and reusable-handle), detached events, steps — are
// replayed on a single-owner engine and an always-escalated engine, with the
// single-owner one escalating mid-run at a fuzzed point (the moment a
// simproc.Spawn would have). Dispatch order, timestamps and dispatched
// counts must be bit-identical: the ownership regime is a locking strategy,
// never a semantic.
func TestVirtualSingleOwnerVsEscalatedBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		engines := [2]*diffEngine{newDiffEngine(false), newDiffEngine(true)}
		escalateAt := rng.Intn(600) // fuzzed Spawn instant for the single-owner engine

		nextID := 0
		var liveIDs []int

		// Each op applies identically to both engines.
		schedule := func() {
			delay := time.Duration(rng.Intn(4)) * time.Millisecond
			id := nextID
			nextID++
			for _, d := range engines {
				d := d
				d.timers[id] = d.v.Schedule(delay, "diff", func() { d.order = append(d.order, id) })
			}
			liveIDs = append(liveIDs, id)
		}
		detached := func() {
			delay := time.Duration(rng.Intn(4)) * time.Millisecond
			id := nextID
			nextID++
			for _, d := range engines {
				d := d
				d.v.ScheduleDetached(delay, "diff-detached", func() { d.order = append(d.order, id) })
			}
		}
		cancel := func() {
			if len(liveIDs) == 0 {
				return
			}
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			won0 := engines[0].timers[id].Cancel()
			won1 := engines[1].timers[id].Cancel()
			if won0 != won1 {
				t.Fatalf("seed %d: Cancel(%d) diverged: %v vs %v", seed, id, won0, won1)
			}
		}
		rescheduleLive := func() {
			// Re-arm a still-live handle in place (the pending fast path).
			if len(liveIDs) == 0 {
				return
			}
			i := rng.Intn(len(liveIDs))
			old := liveIDs[i]
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			delay := time.Duration(rng.Intn(4)) * time.Millisecond
			id := nextID
			nextID++
			for _, d := range engines {
				d := d
				d.timers[id] = d.v.Reschedule(d.timers[old], delay, "diff-rearm",
					func() { d.order = append(d.order, id) })
			}
			liveIDs = append(liveIDs, id)
		}
		rescheduleLoop := func() {
			// Reusable-handle loops (manager deadline / kernel completion
			// shape): the handle may be nil, fired, or still pending.
			slot := rng.Intn(4)
			delay := time.Duration(rng.Intn(4)) * time.Millisecond
			id := nextID
			nextID++
			for _, d := range engines {
				d := d
				d.loops[slot] = d.v.Reschedule(d.loops[slot], delay, "diff-loop",
					func() { d.order = append(d.order, id) })
			}
		}
		step := func() {
			s0 := engines[0].v.Step()
			s1 := engines[1].v.Step()
			if s0 != s1 {
				t.Fatalf("seed %d: Step diverged: %v vs %v", seed, s0, s1)
			}
			if n0, n1 := engines[0].v.Now(), engines[1].v.Now(); n0 != n1 {
				t.Fatalf("seed %d: clocks diverged: %v vs %v", seed, n0, n1)
			}
		}

		for op := 0; op < 600; op++ {
			if op == escalateAt {
				engines[0].v.EscalateShared()
			}
			switch r := rng.Intn(12); {
			case r < 4:
				schedule()
			case r < 6:
				detached()
			case r < 7:
				cancel()
			case r < 8:
				rescheduleLive()
			case r < 9:
				rescheduleLoop()
			default:
				step()
			}
		}
		for engines[0].v.Pending() > 0 || engines[1].v.Pending() > 0 {
			step()
		}

		if len(engines[0].order) != len(engines[1].order) {
			t.Fatalf("seed %d: fired %d vs %d events", seed, len(engines[0].order), len(engines[1].order))
		}
		for i := range engines[0].order {
			if engines[0].order[i] != engines[1].order[i] {
				t.Fatalf("seed %d: dispatch order diverges at %d: %d vs %d",
					seed, i, engines[0].order[i], engines[1].order[i])
			}
		}
		if d0, d1 := engines[0].v.Dispatched(), engines[1].v.Dispatched(); d0 != d1 {
			t.Fatalf("seed %d: dispatched counts diverged: %d vs %d", seed, d0, d1)
		}
		if !engines[0].v.Shared() {
			t.Fatalf("seed %d: engine did not escalate", seed)
		}
	}
}

// TestVirtualEscalatedConcurrentScheduling drives an escalated engine from
// racing producer goroutines while the owner drains — the goroutine-shell
// shape. Run under -race this asserts the escalated regime actually guards
// the queue; the count check asserts no event is lost.
func TestVirtualEscalatedConcurrentScheduling(t *testing.T) {
	v := NewVirtual()
	// Escalate exactly as a Spawn would: before the first extra goroutine.
	v.EscalateShared()

	const producers = 4
	const perProducer = 2000
	var fired sync.WaitGroup
	fired.Add(producers * perProducer)
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if i%3 == 0 {
					v.ScheduleDetached(time.Duration(i)*time.Microsecond, "prod", fired.Done)
				} else {
					tm := v.Schedule(time.Duration(i)*time.Microsecond, "prod", fired.Done)
					_ = tm.Pending()
				}
			}
		}(g)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		v.Step()
		select {
		case <-done:
			v.Drain(0)
			if v.Pending() != 0 {
				t.Fatalf("queue not drained: %d left", v.Pending())
			}
			fired.Wait()
			return
		default:
		}
	}
}

// TestDetachedTimerRecycleSafety is the regression test for the pooled-Timer
// recycle hazard: once a detached event fires and its Timer goes back to the
// free-list, any stale reference to it — a raw *Timer or an old DetachedRef
// — must be inert. Before generation checking, a stale Cancel would have
// silently killed whatever unrelated event the recycled Timer was backing.
func TestDetachedTimerRecycleSafety(t *testing.T) {
	v := NewVirtual()

	ref := v.ScheduleDetachedRef(time.Second, "first", func() {})
	if !ref.Pending() {
		t.Fatal("fresh detached ref not pending")
	}
	v.MustDrain(10)
	if ref.Pending() {
		t.Fatal("fired detached ref still pending")
	}
	if ref.Cancel() {
		t.Fatal("Cancel on a fired detached ref reported success")
	}

	// The timer is now in the free-list; grab it white-box and let a new
	// event recycle it.
	if v.FreeListLen() != 1 {
		t.Fatalf("free list = %d, want 1", v.FreeListLen())
	}
	recycled := v.free[0]
	fired := false
	v.ScheduleDetached(time.Second, "second", func() { fired = true })
	if v.FreeListLen() != 0 {
		t.Fatal("detached schedule did not take the pooled timer")
	}

	// Stale raw handle: pooled timers refuse the plain Timer methods.
	if recycled.Cancel() {
		t.Fatal("raw Cancel on a recycled pooled timer reported success")
	}
	if recycled.Pending() {
		t.Fatal("raw Pending on a recycled pooled timer reported true")
	}
	// Stale generation-checked handle: a no-op against the new incarnation.
	if ref.Cancel() {
		t.Fatal("stale DetachedRef.Cancel canceled a recycled timer's new event")
	}
	if ref.Pending() {
		t.Fatal("stale DetachedRef.Pending observed a recycled timer's new event")
	}
	v.MustDrain(10)
	if !fired {
		t.Fatal("the recycled timer's event was killed by a stale handle")
	}
}

// TestDetachedRefCancel covers the live side of the handle: canceling a
// pending detached event removes it eagerly and recycles its timer.
func TestDetachedRefCancel(t *testing.T) {
	v := NewVirtual()
	fired := false
	ref := v.ScheduleDetachedRef(time.Second, "doomed", func() { fired = true })
	other := v.Schedule(2*time.Second, "other", func() {})
	_ = other
	if !ref.Cancel() {
		t.Fatal("Cancel on a pending detached ref failed")
	}
	if ref.Cancel() || ref.Pending() {
		t.Fatal("canceled detached ref still live")
	}
	if v.FreeListLen() != 1 {
		t.Fatalf("canceled pooled timer not recycled: free list = %d", v.FreeListLen())
	}
	v.MustDrain(10)
	if fired {
		t.Fatal("canceled detached event fired")
	}
	if v.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s (only the surviving event)", v.Now())
	}

	// The zero ref is inert.
	var zero DetachedRef
	if zero.Cancel() || zero.Pending() {
		t.Fatal("zero DetachedRef not inert")
	}
}

// TestVirtualRescheduleInPlaceKeepsFIFO pins the in-place re-arm fast path's
// tie-break behavior: re-arming a pending timer must behave exactly like
// cancel+schedule — the event goes to the back of its deadline's FIFO.
func TestVirtualRescheduleInPlaceKeepsFIFO(t *testing.T) {
	v := NewVirtual()
	var order []string
	a := v.Schedule(time.Second, "a", func() { order = append(order, "a") })
	v.Schedule(time.Second, "b", func() { order = append(order, "b") })
	// Re-arm a (still pending) to the same deadline: it must now fire
	// after b, exactly as cancel+schedule would order it.
	v.Reschedule(a, time.Second, "a2", func() { order = append(order, "a2") })
	v.MustDrain(10)
	if len(order) != 2 || order[0] != "b" || order[1] != "a2" {
		t.Fatalf("order = %v, want [b a2]", order)
	}
}
