package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestWallNowAdvances(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("Now() did not advance: %v then %v", a, b)
	}
}

func TestWallScheduleFires(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	w.Schedule(time.Millisecond, "fire", func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("callback did not fire within 2s")
	}
}

func TestWallCancelPreventsFire(t *testing.T) {
	w := NewWall()
	fired := make(chan struct{}, 1)
	tm := w.Schedule(50*time.Millisecond, "victim", func() { fired <- struct{}{} })
	if !tm.Cancel() {
		t.Fatal("Cancel() = false, want true")
	}
	select {
	case <-fired:
		t.Fatal("canceled callback fired")
	case <-time.After(120 * time.Millisecond):
	}
}

func TestWallCallbacksSerialized(t *testing.T) {
	w := NewWall()
	var mu sync.Mutex
	inFlight := 0
	maxInFlight := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		w.Schedule(time.Millisecond, "probe", func() {
			defer wg.Done()
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
		})
	}
	wg.Wait()
	if maxInFlight != 1 {
		t.Fatalf("max concurrent callbacks = %d, want 1", maxInFlight)
	}
}

func TestWallNegativeDelayFiresSoon(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	w.Schedule(-time.Second, "asap", func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("negative-delay callback did not fire")
	}
}
