package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestWallNowAdvances(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("Now() did not advance: %v then %v", a, b)
	}
}

func TestWallScheduleFires(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	w.Schedule(time.Millisecond, "fire", func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("callback did not fire within 2s")
	}
}

func TestWallCancelPreventsFire(t *testing.T) {
	w := NewWall()
	fired := make(chan struct{}, 1)
	tm := w.Schedule(50*time.Millisecond, "victim", func() { fired <- struct{}{} })
	if !tm.Cancel() {
		t.Fatal("Cancel() = false, want true")
	}
	select {
	case <-fired:
		t.Fatal("canceled callback fired")
	case <-time.After(120 * time.Millisecond):
	}
}

func TestWallCallbacksSerialized(t *testing.T) {
	w := NewWall()
	var mu sync.Mutex
	inFlight := 0
	maxInFlight := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		w.Schedule(time.Millisecond, "probe", func() {
			defer wg.Done()
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
		})
	}
	wg.Wait()
	if maxInFlight != 1 {
		t.Fatalf("max concurrent callbacks = %d, want 1", maxInFlight)
	}
}

func TestWallNegativeDelayFiresSoon(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	w.Schedule(-time.Second, "asap", func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("negative-delay callback did not fire")
	}
}

func TestWallDetachedFiresAndRecycles(t *testing.T) {
	w := NewWall()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		done := make(chan struct{})
		w.ScheduleDetached(time.Millisecond, "detached", func() { close(done) })
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("detached callback %d did not fire", i)
		}
	}
	// Fired detached timers return to the free-list for reuse. (How many
	// distinct timers were minted depends on a benign race between the
	// waiter and the post-callback pooling, so only the lower bound is
	// asserted.)
	deadline := time.Now().Add(time.Second)
	for w.FreeListLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := w.FreeListLen(); n == 0 {
		t.Fatalf("free list empty after %d detached events, want pooled timers", rounds)
	}
}

func TestWallDetachedConcurrent(t *testing.T) {
	w := NewWall()
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	const n = 64
	wg.Add(n)
	for i := 0; i < n; i++ {
		w.ScheduleDetached(time.Duration(i%7)*time.Millisecond, "burst", func() {
			mu.Lock()
			fired++
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if fired != n {
		t.Fatalf("fired = %d, want %d", fired, n)
	}
}

func TestWallRescheduleReusesTimer(t *testing.T) {
	w := NewWall()
	done := make(chan int, 4)
	tm := w.Schedule(time.Millisecond, "first", func() { done <- 1 })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("first fire missing")
	}
	tm2 := w.Reschedule(tm, time.Millisecond, "second", func() { done <- 2 })
	if tm2 != tm {
		t.Fatal("Reschedule of a fired wall timer should reuse the handle")
	}
	select {
	case v := <-done:
		if v != 2 {
			t.Fatalf("second fire delivered %d, want 2", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second fire missing")
	}
}

func TestWallRescheduleSelf(t *testing.T) {
	// The self-rescheduling loop shape (manager tick): re-arm from inside
	// the callback, several rounds, one Timer allocation.
	w := NewWall()
	done := make(chan struct{})
	var mu sync.Mutex
	var tm *Timer
	rounds := 0
	var tick func()
	tick = func() {
		mu.Lock()
		rounds++
		r := rounds
		if r < 5 {
			tm = w.Reschedule(tm, time.Millisecond, "tick", tick)
		}
		mu.Unlock()
		if r >= 5 {
			close(done)
		}
	}
	mu.Lock()
	tm = w.Schedule(time.Millisecond, "tick", tick)
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("self-rescheduling loop stalled")
	}
}

func TestWallReschedulePendingCancelsFirst(t *testing.T) {
	w := NewWall()
	done := make(chan int, 2)
	tm := w.Schedule(time.Hour, "never", func() { done <- 1 })
	w.Reschedule(tm, time.Millisecond, "soon", func() { done <- 2 })
	select {
	case v := <-done:
		if v != 2 {
			t.Fatalf("got fire %d, want 2 (re-armed callback)", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed callback did not fire")
	}
	select {
	case v := <-done:
		t.Fatalf("unexpected extra fire %d", v)
	case <-time.After(50 * time.Millisecond):
	}
}
