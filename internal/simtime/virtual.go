package simtime

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is the discrete-event engine. Events execute in timestamp order on
// the goroutine that calls Run/RunUntil/Step; between events, virtual time
// jumps directly to the next deadline.
//
// # Concurrency contract: single-owner and escalated regimes
//
// The engine runs in one of two regimes, declared by its users through the
// ownership hook (EscalateShared / the package-level EscalateShared helper):
//
//   - Single-owner (the initial regime): every entry point — Schedule,
//     ScheduleDetached, Reschedule, Step, Timer.Cancel, the observers — is
//     called from one goroutine at a time: the dispatcher goroutine itself
//     (event callbacks, and code between Step calls). This is the all-inline
//     case every experiment grid hits: pipeline stages, side tasks and the
//     control plane all run as event-loop continuations on the dispatcher
//     (simproc.SpawnInline), so nothing else can touch the queue. In this
//     regime the queue mutex is skipped entirely; Now stays lock-free as
//     always.
//   - Escalated (shared): the first component that introduces a second
//     goroutine able to reach the engine — simproc.Runtime.Spawn creating a
//     goroutine-process shell, freerpc.NewNetConn starting a read pump —
//     must call EscalateShared before that goroutine exists. From then on
//     all queue operations serialize on the mutex. Escalation is one-way
//     and must itself happen on the owning goroutine (or before any
//     concurrent use): the happens-before edge of starting the new
//     goroutine is what publishes the regime change.
//
// Callbacks may hand control to simulated process goroutines (see
// internal/simproc); those goroutines may call Schedule and Now while the
// dispatcher is blocked waiting for them to park — that is exactly the
// escalated regime. Who may call what from where, in short: in single-owner
// mode, only the dispatcher goroutine (and the inline continuations it
// runs); after escalation, any goroutine, serialized by the queue mutex,
// with dispatch itself still exclusive to the one Run/Step caller.
//
// # Queue structure: near-term calendar wheel + 4-ary heap
//
// The queue is split by proximity to the clock. Events due within the wheel
// horizon (wheelSlots slots of wheelSlotWidth each, ≈ the manager's 1ms Tick
// rounded to a power of two, ~269ms total) live in a calendar wheel: an
// array of unordered per-slot buckets indexed by deadline, with a bitmap for
// first-non-empty scans. Everything further out goes to an indexed 4-ary
// min-heap on (when, seq) — no container/heap interface calls or any-boxing
// on the dispatch path, and Cancel removes its entry immediately via the
// stored index instead of leaving a dead timer to be reaped at pop time.
//
// The wheel is what absorbs the simulator's re-arm churn: a kernel
// completion whose deadline moves by nanoseconds on every rebalance stays in
// the same slot (Reschedule rewrites when/seq in place) or moves between two
// slots in O(1), where the heap would pay a sift either way. Buckets hold
// only near-simultaneous events, so the scan that orders a bucket at
// dispatch time is short; the global dispatch order — strictly (when, seq),
// FIFO among equal deadlines, across both structures — is identical to the
// pure heap's, a property pinned against the container/heap reference model.
//
// Detached events (ScheduleDetached) draw their Timers from a free-list,
// making the hottest schedule→fire loop allocation-free; recycled timers are
// generation-stamped so a stale handle can never cancel an unrelated event
// (see DetachedRef).
type Virtual struct {
	// now is read lock-free (Now is the single most-called function in the
	// simulator) and written only under the queue lock by the dispatcher.
	now atomic.Int64

	// shared is false in the single-owner regime, where lock/unlock are
	// no-ops. It is flipped (once, by the owner) by EscalateShared; the
	// goroutine that makes concurrent access possible is always created
	// after the flip, which publishes it.
	shared bool

	mu    sync.Mutex
	queue []*Timer
	seq   uint64

	// wheel is the near-term calendar: bucket i holds the events whose
	// deadline falls in absolute slot s with s%wheelSlots == i. All queued
	// events satisfy when >= now, and events land in the wheel only when
	// within the horizon, so each occupied bucket maps to exactly one
	// absolute slot and a forward scan from now's slot is time order.
	wheel [wheelSlots][]*Timer
	// wheelOcc is the non-empty-bucket bitmap (bit i = bucket i occupied).
	wheelOcc [wheelWords]uint64
	// wheelLen counts events currently in the wheel.
	wheelLen int
	// wheelHint is a lower bound on the absolute slot of every wheel event:
	// raised to the found slot by each min scan (and to now's slot, since
	// no event is in the past), lowered by inserts below it. When the
	// hinted bucket is still occupied — the common case of consecutive pops
	// from one slot — the min scan is a single bucket probe, no bitmap
	// walk.
	wheelHint int64

	// free is the Timer free-list. Only detached timers are recycled: a
	// *Timer returned by Schedule may be retained by the caller forever,
	// and a stale Cancel on a recycled handle would kill an unrelated
	// event. Pooled timers are therefore inert to the plain Timer methods
	// and cancelable only through a generation-checked DetachedRef.
	free []*Timer

	// dead stages the last-fired pooled timer for recycling. It is touched
	// only by the dispatching goroutine outside the lock and folded into
	// free under the next Step's lock, saving a lock round-trip per event.
	dead *Timer

	// dispatched counts events whose callbacks ran, for tests and stats.
	dispatched uint64
}

// Calendar-wheel geometry. Slot width is 2^20ns ≈ 1.05ms — the manager's
// 1ms Tick grid rounded to a power of two so slot indexing is a shift — and
// 256 slots give a ~269ms horizon covering the kernel-completion deadlines
// of every shipped workload profile.
const (
	wheelSlotShift = 20
	wheelSlots     = 256
	wheelMask      = wheelSlots - 1
	wheelWords     = wheelSlots / 64
)

var (
	_ Engine    = (*Virtual)(nil)
	_ Detacher  = (*Virtual)(nil)
	_ Escalator = (*Virtual)(nil)
)

// NewVirtual returns a virtual engine positioned at time zero, in the
// single-owner regime.
func NewVirtual() *Virtual {
	return &Virtual{}
}

// EscalateShared switches the engine to the escalated (mutex-guarded)
// regime. It must be called before the first additional goroutine that can
// reach the engine is created, from a context where no such goroutine exists
// yet. One-way; calling it again is a no-op.
func (v *Virtual) EscalateShared() {
	if v.shared {
		return
	}
	// Taking the mutex is not needed for correctness (the caller owns the
	// engine at this instant, and the new goroutine's creation publishes
	// the write), but it keeps the flip ordered against a concurrently
	// completing critical section if a caller escalates from a callback.
	v.mu.Lock()
	v.shared = true
	v.mu.Unlock()
}

// Shared reports whether the engine has escalated to the mutex regime.
func (v *Virtual) Shared() bool { return v.shared }

// lock/unlock guard the queue in the escalated regime and cost one branch in
// the single-owner regime. The shared flag cannot flip between a lock and
// its matching unlock: only the owner flips it, and the owner is never
// inside one of these critical sections while doing so.
func (v *Virtual) lock() {
	if v.shared {
		v.mu.Lock()
	}
}

func (v *Virtual) unlock() {
	if v.shared {
		v.mu.Unlock()
	}
}

// Now reports the current virtual time.
func (v *Virtual) Now() time.Duration {
	return time.Duration(v.now.Load())
}

// Schedule enqueues fn at Now()+delay. Negative delays are clamped to "now":
// virtual time never moves backwards.
func (v *Virtual) Schedule(delay time.Duration, name string, fn func()) *Timer {
	if fn == nil {
		panic("simtime: Schedule with nil callback")
	}
	v.lock()
	t := &Timer{when: v.deadlineLocked(delay), seq: v.seq, name: name, fn: fn, vq: v}
	v.seq++
	v.enqueueLocked(t)
	v.unlock()
	return t
}

// ScheduleDetached enqueues a fire-and-forget event whose Timer comes from
// the free-list. With no handle escaping, the timer is recycled as soon as
// its callback returns.
func (v *Virtual) ScheduleDetached(delay time.Duration, name string, fn func()) {
	v.scheduleDetached(delay, name, fn)
}

// ScheduleDetachedRef is ScheduleDetached returning a generation-checked
// handle that remains safe to use after the timer is recycled: Cancel and
// Pending on a DetachedRef whose event already fired (and whose Timer now
// backs some unrelated event) are no-ops.
func (v *Virtual) ScheduleDetachedRef(delay time.Duration, name string, fn func()) DetachedRef {
	t := v.scheduleDetached(delay, name, fn)
	return DetachedRef{t: t, gen: t.gen}
}

func (v *Virtual) scheduleDetached(delay time.Duration, name string, fn func()) *Timer {
	if fn == nil {
		panic("simtime: ScheduleDetached with nil callback")
	}
	v.lock()
	var t *Timer
	if n := len(v.free); n > 0 {
		t = v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
		t.gen++ // invalidate any DetachedRef to the previous incarnation
		t.state.Store(timerPending)
	} else {
		t = &Timer{vq: v, pooled: true}
	}
	t.when, t.seq, t.name, t.fn = v.deadlineLocked(delay), v.seq, name, fn
	v.seq++
	v.enqueueLocked(t)
	v.unlock()
	return t
}

// Reschedule re-arms t — a timer previously returned by this engine's
// Schedule — with a new deadline, name and callback, reusing the Timer
// allocation. The caller must be the exclusive holder of the handle: any
// other retained copy could Cancel the re-armed event. A still-pending t is
// re-armed in place (a wheel event rewrites its deadline within its bucket
// or hops buckets in O(1); a heap event sifts, and may migrate into the
// wheel); a fired or canceled t is re-pushed. A nil or foreign t falls back
// to a fresh Schedule. This is the allocation-free path for the
// self-rescheduling loops (manager deadlines, kernel completion) whose Timer
// handle never leaves its owner.
func (v *Virtual) Reschedule(t *Timer, delay time.Duration, name string, fn func()) *Timer {
	if t == nil || t.vq != v || t.pooled {
		return v.Schedule(delay, name, fn)
	}
	if fn == nil {
		panic("simtime: Reschedule with nil callback")
	}
	v.lock()
	if t.pos >= 0 && t.state.Load() == timerPending {
		// In place: the exclusive-holder contract means no Cancel can race
		// us, and the dispatcher only pops under this lock, so a queued
		// pending timer is fully ours. Equivalent to cancel+push — the
		// event gets a fresh seq either way — minus the queue churn.
		t.when, t.seq, t.name, t.fn = v.deadlineLocked(delay), v.seq, name, fn
		v.seq++
		v.rearmLocked(t)
		v.unlock()
		return t
	}
	v.unlock()
	t.Cancel() // no-op unless a canceled-elsewhere t is mid-removal
	v.lock()
	t.state.Store(timerPending)
	t.when, t.seq, t.name, t.fn = v.deadlineLocked(delay), v.seq, name, fn
	v.seq++
	v.enqueueLocked(t)
	v.unlock()
	return t
}

// deadlineLocked clamps delay to now. Caller holds the queue lock.
func (v *Virtual) deadlineLocked(delay time.Duration) time.Duration {
	now := time.Duration(v.now.Load())
	if delay > 0 {
		return now + delay
	}
	return now
}

// Dispatched reports how many event callbacks have run so far.
func (v *Virtual) Dispatched() uint64 {
	v.lock()
	defer v.unlock()
	return v.dispatched
}

// Pending reports how many events are queued. Canceled events leave the
// queue at Cancel time, so every queued event is live.
func (v *Virtual) Pending() int {
	v.lock()
	defer v.unlock()
	return len(v.queue) + v.wheelLen
}

// WheelLen reports how many events currently sit in the calendar wheel (for
// tests).
func (v *Virtual) WheelLen() int {
	v.lock()
	defer v.unlock()
	return v.wheelLen
}

// FreeListLen reports the current Timer free-list size (for tests).
func (v *Virtual) FreeListLen() int {
	v.lock()
	defer v.unlock()
	return len(v.free)
}

// Step runs the single next event, advancing time to its deadline. It
// reports false when the queue is empty.
func (v *Virtual) Step() bool {
	for {
		v.lock()
		if d := v.dead; d != nil {
			v.dead = nil
			v.free = append(v.free, d)
		}
		t := v.dequeueMinLocked()
		if t == nil {
			v.unlock()
			return false
		}
		// Pooled timers are only ever canceled under this lock (via their
		// DetachedRef), which removes them from the queue eagerly: a popped
		// pooled timer is always live, so the claim CAS is skipped.
		if !t.pooled && !t.claim() {
			// Cancel won the race after we popped; its remove() saw
			// pos == -1 and did nothing. Skip without advancing time.
			v.unlock()
			continue
		}
		if t.when > time.Duration(v.now.Load()) {
			v.now.Store(int64(t.when))
		}
		v.dispatched++
		fn := t.fn
		v.unlock()
		fn()
		if t.pooled {
			t.fn = nil
			t.name = ""
			v.dead = t
		}
		return true
	}
}

// RunUntil executes events with deadlines <= until, then advances the clock
// to until. Events scheduled during execution are honored if they fall
// within the horizon.
func (v *Virtual) RunUntil(until time.Duration) {
	for {
		v.lock()
		if t := v.peekMinLocked(); t == nil || t.when > until {
			if time.Duration(v.now.Load()) < until {
				v.now.Store(int64(until))
			}
			v.unlock()
			return
		}
		v.unlock()
		v.Step()
	}
}

// RunFor executes events for the next d of virtual time.
func (v *Virtual) RunFor(d time.Duration) {
	v.RunUntil(v.Now() + d)
}

// Drain executes events until the queue is empty or maxEvents callbacks have
// run. It returns the number of callbacks executed. A maxEvents of zero
// means no limit; the limit exists so runaway self-rescheduling loops fail
// loudly in tests instead of hanging.
func (v *Virtual) Drain(maxEvents uint64) uint64 {
	var n uint64
	for {
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		if !v.Step() {
			return n
		}
		n++
	}
}

// MustDrain is Drain that panics if the event limit is hit, for tests.
func (v *Virtual) MustDrain(maxEvents uint64) uint64 {
	n := v.Drain(maxEvents)
	if maxEvents > 0 && n >= maxEvents {
		panic(fmt.Sprintf("simtime: Drain hit event limit %d at t=%v", maxEvents, v.Now()))
	}
	return n
}

// remove deletes a canceled timer from the queue (called from Timer.Cancel,
// possibly concurrently with the dispatcher in the escalated regime). Never
// called for pooled timers: their cancel path (DetachedRef) removes and
// recycles under the queue lock directly.
func (v *Virtual) remove(t *Timer) {
	v.lock()
	if t.pos >= 0 {
		v.unlinkLocked(t)
	}
	v.unlock()
}

// DetachedRef is a generation-checked handle to a detached event. Unlike a
// raw *Timer — which for pooled timers is recycled after firing and must
// therefore never be canceled through — a DetachedRef captured at schedule
// time stays safe forever: once the event fires and its Timer is recycled
// into some unrelated event, Cancel and Pending on the old ref observe the
// generation mismatch and do nothing. The zero DetachedRef is inert.
type DetachedRef struct {
	t   *Timer
	gen uint64
}

// Cancel prevents the referenced detached event from running, reporting
// whether it won. A ref whose event already fired (or whose Timer has been
// recycled since) returns false and touches nothing.
func (r DetachedRef) Cancel() bool {
	t := r.t
	if t == nil {
		return false
	}
	v := t.vq
	v.lock()
	if t.gen != r.gen || t.pos < 0 {
		v.unlock()
		return false
	}
	v.unlinkLocked(t)
	t.state.Store(timerCanceled)
	t.fn = nil
	t.name = ""
	t.gen++ // outstanding refs (including this one) go stale immediately
	v.free = append(v.free, t)
	v.unlock()
	return true
}

// Pending reports whether the referenced event is still queued.
func (r DetachedRef) Pending() bool {
	t := r.t
	if t == nil {
		return false
	}
	v := t.vq
	v.lock()
	ok := t.gen == r.gen && t.pos >= 0
	v.unlock()
	return ok
}

// --- queue routing ---------------------------------------------------------
//
// An enqueued timer lives either in the calendar wheel (t.slot >= 0, t.pos
// its index within the unordered bucket) or in the heap (t.slot == -1, t.pos
// its heap index). t.slot is only meaningful while t.pos >= 0; removal from
// either structure resets pos to -1.

// wheelSlotFor reports the absolute wheel slot a deadline belongs to, or -1
// if it is beyond the wheel horizon (heap territory). Caller holds the queue
// lock. All queued events satisfy when >= now, so the slot delta is never
// negative.
func (v *Virtual) wheelSlotFor(when time.Duration) int64 {
	s := int64(when) >> wheelSlotShift
	if s-(v.now.Load()>>wheelSlotShift) < wheelSlots {
		return s
	}
	return -1
}

// enqueueLocked places t (when/seq already set) in the wheel or the heap.
// Caller holds the queue lock.
func (v *Virtual) enqueueLocked(t *Timer) {
	if s := v.wheelSlotFor(t.when); s >= 0 {
		v.wheelInsertLocked(t, int(s&wheelMask))
		return
	}
	t.slot = -1
	v.heapPushLocked(t)
}

// unlinkLocked removes a queued t from whichever structure holds it. Caller
// holds the queue lock; t.pos >= 0.
func (v *Virtual) unlinkLocked(t *Timer) {
	if t.slot >= 0 {
		v.wheelRemoveLocked(t)
		return
	}
	v.heapDeleteLocked(int(t.pos))
}

// rearmLocked repositions a queued t after its deadline changed (Reschedule
// in-place fast path). A wheel event staying in its slot costs nothing; slot
// hops and wheel↔heap migrations are O(1) plus at most one sift on the heap
// side. Caller holds the queue lock; t.pos >= 0.
func (v *Virtual) rearmLocked(t *Timer) {
	s := v.wheelSlotFor(t.when)
	if t.slot >= 0 {
		if s >= 0 {
			if slot := int32(s & wheelMask); slot != t.slot {
				v.wheelRemoveLocked(t)
				v.wheelInsertLocked(t, int(slot))
			}
			// Same slot: buckets are unordered, nothing moves.
			return
		}
		v.wheelRemoveLocked(t)
		t.slot = -1
		v.heapPushLocked(t)
		return
	}
	if s >= 0 {
		v.heapDeleteLocked(int(t.pos))
		v.wheelInsertLocked(t, int(s&wheelMask))
		return
	}
	v.siftUpLocked(int(t.pos))
	v.siftDownLocked(int(t.pos))
}

// peekMinLocked reports the next event to fire — the (when, seq) minimum
// across the wheel and the heap — without removing it, or nil when empty.
// Caller holds the queue lock.
func (v *Virtual) peekMinLocked() *Timer {
	t := v.wheelMinLocked()
	if len(v.queue) > 0 {
		if h := v.queue[0]; t == nil || timerLess(h, t) {
			return h
		}
	}
	return t
}

// dequeueMinLocked removes and returns the next event to fire, or nil when
// empty. Caller holds the queue lock.
func (v *Virtual) dequeueMinLocked() *Timer {
	t := v.wheelMinLocked()
	if len(v.queue) > 0 {
		if h := v.queue[0]; t == nil || timerLess(h, t) {
			return v.heapPopLocked()
		}
	}
	if t != nil {
		v.wheelRemoveLocked(t)
	}
	return t
}

// --- calendar wheel --------------------------------------------------------

// wheelInsertLocked appends t to the bucket of absolute-slot index slot.
// Caller holds the queue lock.
func (v *Virtual) wheelInsertLocked(t *Timer, slot int) {
	t.slot = int32(slot)
	b := v.wheel[slot]
	t.pos = int32(len(b))
	v.wheel[slot] = append(b, t)
	v.wheelOcc[slot>>6] |= 1 << (slot & 63)
	v.wheelLen++
	if s := int64(t.when) >> wheelSlotShift; s < v.wheelHint {
		v.wheelHint = s
	}
}

// wheelRemoveLocked unlinks t from its bucket (swap-with-last; buckets are
// unordered). Caller holds the queue lock.
func (v *Virtual) wheelRemoveLocked(t *Timer) {
	slot := int(t.slot)
	b := v.wheel[slot]
	last := len(b) - 1
	if i := int(t.pos); i != last {
		b[i] = b[last]
		b[i].pos = int32(i)
	}
	b[last] = nil
	v.wheel[slot] = b[:last]
	if last == 0 {
		v.wheelOcc[slot>>6] &^= 1 << (slot & 63)
	}
	v.wheelLen--
	t.pos = -1
}

// wheelMinLocked reports the earliest (when, seq) event in the wheel, or nil
// when the wheel is empty: bitmap-scan buckets forward in time order from
// now's slot (the wrap covers the bits before the start slot, which map to
// the latest windows), then linear-scan the first occupied bucket — short by
// construction, it holds only near-simultaneous events. Caller holds the
// queue lock.
func (v *Virtual) wheelMinLocked() *Timer {
	if v.wheelLen == 0 {
		return nil
	}
	if cur := v.now.Load() >> wheelSlotShift; v.wheelHint < cur {
		v.wheelHint = cur
	}
	// Hinted probe: if the hinted bucket still holds events of the hinted
	// slot (not a later rotation), it is the earliest occupied slot.
	if b := v.wheel[v.wheelHint&wheelMask]; len(b) > 0 &&
		int64(b[0].when)>>wheelSlotShift == v.wheelHint {
		return bucketMin(b)
	}
	start := int(v.wheelHint & wheelMask)
	w, b := start>>6, start&63
	for i := 0; i <= wheelWords; i++ {
		wi := (w + i) & (wheelWords - 1)
		word := v.wheelOcc[wi]
		if i == 0 {
			word &= ^uint64(0) << b
		} else if i == wheelWords {
			word = v.wheelOcc[wi] & (1<<b - 1)
		}
		if word == 0 {
			continue
		}
		min := bucketMin(v.wheel[wi<<6+bits.TrailingZeros64(word)])
		v.wheelHint = int64(min.when) >> wheelSlotShift
		return min
	}
	return nil
}

// bucketMin scans an (unordered, short) bucket for its (when, seq) minimum.
func bucketMin(b []*Timer) *Timer {
	min := b[0]
	for _, t := range b[1:] {
		if timerLess(t, min) {
			min = t
		}
	}
	return min
}

// --- indexed 4-ary min-heap on (when, seq) --------------------------------
//
// A 4-ary layout halves the tree height of the binary heap and keeps the
// children of a node on one cache line of pointers; with the comparison
// inlined (no sort.Interface/heap.Interface dispatch) this is the cheapest
// structure for the far-deadline overflow behind the wheel.

const heapArity = 4

func timerLess(a, b *Timer) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// heapPushLocked appends t and restores the heap property. Caller holds the
// queue lock.
func (v *Virtual) heapPushLocked(t *Timer) {
	t.pos = int32(len(v.queue))
	v.queue = append(v.queue, t)
	v.siftUpLocked(int(t.pos))
}

// heapPopLocked removes and returns the minimum. Caller holds the queue lock.
func (v *Virtual) heapPopLocked() *Timer {
	q := v.queue
	t := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[0].pos = 0
	q[last] = nil
	v.queue = q[:last]
	if last > 0 {
		v.siftDownLocked(0)
	}
	t.pos = -1
	return t
}

// heapDeleteLocked removes the element at index i. Caller holds the queue
// lock.
func (v *Virtual) heapDeleteLocked(i int) {
	q := v.queue
	last := len(q) - 1
	t := q[i]
	if i != last {
		q[i] = q[last]
		q[i].pos = int32(i)
	}
	q[last] = nil
	v.queue = q[:last]
	if i < last {
		// The swapped-in element may need to move either direction.
		v.siftDownLocked(i)
		v.siftUpLocked(int(v.queue[i].pos))
	}
	t.pos = -1
}

func (v *Virtual) siftUpLocked(i int) {
	q := v.queue
	t := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := q[parent]
		if !timerLess(t, p) {
			break
		}
		q[i] = p
		p.pos = int32(i)
		i = parent
	}
	q[i] = t
	t.pos = int32(i)
}

func (v *Virtual) siftDownLocked(i int) {
	q := v.queue
	n := len(q)
	t := q[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if timerLess(q[c], q[min]) {
				min = c
			}
		}
		if !timerLess(q[min], t) {
			break
		}
		q[i] = q[min]
		q[i].pos = int32(i)
		i = min
	}
	q[i] = t
	t.pos = int32(i)
}
