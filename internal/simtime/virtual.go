package simtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is the discrete-event engine. Events execute in timestamp order on
// the goroutine that calls Run/RunUntil/Step; between events, virtual time
// jumps directly to the next deadline.
//
// Event callbacks may schedule further events and may hand control to
// simulated process goroutines (see internal/simproc); those goroutines may
// call Schedule and Now concurrently with the blocked dispatcher, which is
// why the queue is guarded by its own mutex rather than relying on
// single-threadedness.
//
// The queue is an indexed 4-ary min-heap on (when, seq): no container/heap
// interface calls or any-boxing on the dispatch path, and Cancel removes its
// entry immediately via the stored index instead of leaving a dead timer to
// be reaped at pop time. Detached events (ScheduleDetached) draw their
// Timers from a free-list, making the hottest schedule→fire loop
// allocation-free.
type Virtual struct {
	// now is read lock-free (Now is the single most-called function in the
	// simulator) and written only under mu by the dispatcher.
	now atomic.Int64

	mu    sync.Mutex
	queue []*Timer
	seq   uint64

	// free is the Timer free-list. Only detached timers are recycled: a
	// *Timer returned by Schedule may be retained by the caller forever,
	// and a stale Cancel on a recycled handle would kill an unrelated
	// event.
	free []*Timer

	// dead stages the last-fired pooled timer for recycling. It is touched
	// only by the dispatching goroutine outside the lock and folded into
	// free under the next Step's lock, saving a lock round-trip per event.
	dead *Timer

	// dispatched counts events whose callbacks ran, for tests and stats.
	dispatched uint64
}

var (
	_ Engine   = (*Virtual)(nil)
	_ Detacher = (*Virtual)(nil)
)

// NewVirtual returns a virtual engine positioned at time zero.
func NewVirtual() *Virtual {
	return &Virtual{}
}

// Now reports the current virtual time.
func (v *Virtual) Now() time.Duration {
	return time.Duration(v.now.Load())
}

// Schedule enqueues fn at Now()+delay. Negative delays are clamped to "now":
// virtual time never moves backwards.
func (v *Virtual) Schedule(delay time.Duration, name string, fn func()) *Timer {
	if fn == nil {
		panic("simtime: Schedule with nil callback")
	}
	v.mu.Lock()
	t := &Timer{when: v.deadlineLocked(delay), seq: v.seq, name: name, fn: fn, vq: v}
	v.seq++
	v.pushLocked(t)
	v.mu.Unlock()
	return t
}

// ScheduleDetached enqueues a fire-and-forget event whose Timer comes from
// the free-list. With no handle escaping, the timer is recycled as soon as
// its callback returns.
func (v *Virtual) ScheduleDetached(delay time.Duration, name string, fn func()) {
	if fn == nil {
		panic("simtime: ScheduleDetached with nil callback")
	}
	v.mu.Lock()
	var t *Timer
	if n := len(v.free); n > 0 {
		t = v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
		t.state.Store(timerPending)
	} else {
		t = &Timer{vq: v, pooled: true}
	}
	t.when, t.seq, t.name, t.fn = v.deadlineLocked(delay), v.seq, name, fn
	v.seq++
	v.pushLocked(t)
	v.mu.Unlock()
}

// Reschedule re-arms t — a timer previously returned by this engine's
// Schedule — with a new deadline, name and callback, reusing the Timer
// allocation. The caller must be the exclusive holder of the handle: any
// other retained copy could Cancel the re-armed event. A still-pending t is
// canceled first; a nil or foreign t falls back to a fresh Schedule. This is
// the allocation-free path for the self-rescheduling loops (manager tick,
// kernel completion) whose Timer handle never leaves its owner.
func (v *Virtual) Reschedule(t *Timer, delay time.Duration, name string, fn func()) *Timer {
	if t == nil || t.vq != v || t.pooled {
		return v.Schedule(delay, name, fn)
	}
	if fn == nil {
		panic("simtime: Reschedule with nil callback")
	}
	t.Cancel() // no-op if already fired; removes a pending t from the queue
	v.mu.Lock()
	t.state.Store(timerPending)
	t.when, t.seq, t.name, t.fn = v.deadlineLocked(delay), v.seq, name, fn
	v.seq++
	v.pushLocked(t)
	v.mu.Unlock()
	return t
}

// deadlineLocked clamps delay to now. Caller holds v.mu.
func (v *Virtual) deadlineLocked(delay time.Duration) time.Duration {
	now := time.Duration(v.now.Load())
	if delay > 0 {
		return now + delay
	}
	return now
}

// Dispatched reports how many event callbacks have run so far.
func (v *Virtual) Dispatched() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.dispatched
}

// Pending reports how many events are queued. Canceled events leave the
// queue at Cancel time, so every queued event is live.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.queue)
}

// FreeListLen reports the current Timer free-list size (for tests).
func (v *Virtual) FreeListLen() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.free)
}

// Step runs the single next event, advancing time to its deadline. It
// reports false when the queue is empty.
func (v *Virtual) Step() bool {
	for {
		v.mu.Lock()
		if d := v.dead; d != nil {
			v.dead = nil
			v.free = append(v.free, d)
		}
		if len(v.queue) == 0 {
			v.mu.Unlock()
			return false
		}
		t := v.popLocked()
		// Pooled timers expose no handle, so nothing can cancel them: the
		// claim CAS is skipped for them.
		if !t.pooled && !t.claim() {
			// Cancel won the race after we popped; its remove() saw
			// pos == -1 and did nothing. Skip without advancing time.
			v.mu.Unlock()
			continue
		}
		if t.when > time.Duration(v.now.Load()) {
			v.now.Store(int64(t.when))
		}
		v.dispatched++
		fn := t.fn
		v.mu.Unlock()
		fn()
		if t.pooled {
			t.fn = nil
			t.name = ""
			v.dead = t
		}
		return true
	}
}

// RunUntil executes events with deadlines <= until, then advances the clock
// to until. Events scheduled during execution are honored if they fall
// within the horizon.
func (v *Virtual) RunUntil(until time.Duration) {
	for {
		v.mu.Lock()
		if len(v.queue) == 0 || v.queue[0].when > until {
			if time.Duration(v.now.Load()) < until {
				v.now.Store(int64(until))
			}
			v.mu.Unlock()
			return
		}
		v.mu.Unlock()
		v.Step()
	}
}

// RunFor executes events for the next d of virtual time.
func (v *Virtual) RunFor(d time.Duration) {
	v.RunUntil(v.Now() + d)
}

// Drain executes events until the queue is empty or maxEvents callbacks have
// run. It returns the number of callbacks executed. A maxEvents of zero
// means no limit; the limit exists so runaway self-rescheduling loops fail
// loudly in tests instead of hanging.
func (v *Virtual) Drain(maxEvents uint64) uint64 {
	var n uint64
	for {
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		if !v.Step() {
			return n
		}
		n++
	}
}

// MustDrain is Drain that panics if the event limit is hit, for tests.
func (v *Virtual) MustDrain(maxEvents uint64) uint64 {
	n := v.Drain(maxEvents)
	if maxEvents > 0 && n >= maxEvents {
		panic(fmt.Sprintf("simtime: Drain hit event limit %d at t=%v", maxEvents, v.Now()))
	}
	return n
}

// remove deletes a canceled timer from the queue (called from Timer.Cancel,
// possibly concurrently with the dispatcher).
func (v *Virtual) remove(t *Timer) {
	v.mu.Lock()
	if t.pos >= 0 {
		v.deleteLocked(int(t.pos))
		if t.pooled {
			// Unreachable today (detached timers expose no handle), but
			// keep the invariant: a canceled pooled timer goes back to
			// the free-list rather than leaking.
			t.fn = nil
			t.name = ""
			v.free = append(v.free, t)
		}
	}
	v.mu.Unlock()
}

// --- indexed 4-ary min-heap on (when, seq) --------------------------------
//
// A 4-ary layout halves the tree height of the binary heap and keeps the
// children of a node on one cache line of pointers; with the comparison
// inlined (no sort.Interface/heap.Interface dispatch) this is the cheapest
// structure for the schedule/fire loop that dominates simulation time.

const heapArity = 4

func timerLess(a, b *Timer) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// pushLocked appends t and restores the heap property. Caller holds v.mu.
func (v *Virtual) pushLocked(t *Timer) {
	t.pos = int32(len(v.queue))
	v.queue = append(v.queue, t)
	v.siftUpLocked(int(t.pos))
}

// popLocked removes and returns the minimum. Caller holds v.mu.
func (v *Virtual) popLocked() *Timer {
	q := v.queue
	t := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[0].pos = 0
	q[last] = nil
	v.queue = q[:last]
	if last > 0 {
		v.siftDownLocked(0)
	}
	t.pos = -1
	return t
}

// deleteLocked removes the element at index i. Caller holds v.mu.
func (v *Virtual) deleteLocked(i int) {
	q := v.queue
	last := len(q) - 1
	t := q[i]
	if i != last {
		q[i] = q[last]
		q[i].pos = int32(i)
	}
	q[last] = nil
	v.queue = q[:last]
	if i < last {
		// The swapped-in element may need to move either direction.
		v.siftDownLocked(i)
		v.siftUpLocked(int(v.queue[i].pos))
	}
	t.pos = -1
}

func (v *Virtual) siftUpLocked(i int) {
	q := v.queue
	t := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := q[parent]
		if !timerLess(t, p) {
			break
		}
		q[i] = p
		p.pos = int32(i)
		i = parent
	}
	q[i] = t
	t.pos = int32(i)
}

func (v *Virtual) siftDownLocked(i int) {
	q := v.queue
	n := len(q)
	t := q[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if timerLess(q[c], q[min]) {
				min = c
			}
		}
		if !timerLess(q[min], t) {
			break
		}
		q[i] = q[min]
		q[i].pos = int32(i)
		i = min
	}
	q[i] = t
	t.pos = int32(i)
}
