package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is the discrete-event engine. Events execute in timestamp order on
// the goroutine that calls Run/RunUntil/Step; between events, virtual time
// jumps directly to the next deadline.
//
// Event callbacks may schedule further events and may hand control to
// simulated process goroutines (see internal/simproc); those goroutines may
// call Schedule and Now concurrently with the blocked dispatcher, which is
// why the queue is guarded by its own mutex rather than relying on
// single-threadedness.
type Virtual struct {
	mu    sync.Mutex
	now   time.Duration
	queue eventQueue
	seq   uint64

	// dispatched counts events whose callbacks ran, for tests and stats.
	dispatched uint64
}

var _ Engine = (*Virtual)(nil)

// NewVirtual returns a virtual engine positioned at time zero.
func NewVirtual() *Virtual {
	return &Virtual{}
}

// Now reports the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Schedule enqueues fn at Now()+delay. Negative delays are clamped to "now":
// virtual time never moves backwards.
func (v *Virtual) Schedule(delay time.Duration, name string, fn func()) *Timer {
	if fn == nil {
		panic("simtime: Schedule with nil callback")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	when := v.now
	if delay > 0 {
		when += delay
	}
	t := &Timer{when: when, seq: v.seq, name: name, fn: fn}
	v.seq++
	heap.Push(&v.queue, t)
	return t
}

// Dispatched reports how many event callbacks have run so far.
func (v *Virtual) Dispatched() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.dispatched
}

// Pending reports how many events are queued (including canceled ones not
// yet reaped).
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.queue.Len()
}

// Step runs the single next event, advancing time to its deadline. It
// reports false when the queue is empty.
func (v *Virtual) Step() bool {
	for {
		v.mu.Lock()
		if v.queue.Len() == 0 {
			v.mu.Unlock()
			return false
		}
		t := heap.Pop(&v.queue).(*Timer)
		if !t.claim() {
			v.mu.Unlock()
			continue // canceled; skip without advancing time
		}
		if t.when > v.now {
			v.now = t.when
		}
		v.dispatched++
		v.mu.Unlock()
		t.fn()
		return true
	}
}

// RunUntil executes events with deadlines <= until, then advances the clock
// to until. Events scheduled during execution are honored if they fall
// within the horizon.
func (v *Virtual) RunUntil(until time.Duration) {
	for {
		v.mu.Lock()
		// Reap canceled heads so the horizon check sees the next live event.
		for v.queue.Len() > 0 && v.queue[0].Stopped() {
			heap.Pop(&v.queue)
		}
		if v.queue.Len() == 0 || v.queue[0].when > until {
			if v.now < until {
				v.now = until
			}
			v.mu.Unlock()
			return
		}
		v.mu.Unlock()
		v.Step()
	}
}

// RunFor executes events for the next d of virtual time.
func (v *Virtual) RunFor(d time.Duration) {
	v.RunUntil(v.Now() + d)
}

// Drain executes events until the queue is empty or maxEvents callbacks have
// run. It returns the number of callbacks executed. A maxEvents of zero
// means no limit; the limit exists so runaway self-rescheduling loops fail
// loudly in tests instead of hanging.
func (v *Virtual) Drain(maxEvents uint64) uint64 {
	var n uint64
	for {
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		if !v.Step() {
			return n
		}
		n++
	}
}

// MustDrain is Drain that panics if the event limit is hit, for tests.
func (v *Virtual) MustDrain(maxEvents uint64) uint64 {
	n := v.Drain(maxEvents)
	if maxEvents > 0 && n >= maxEvents {
		panic(fmt.Sprintf("simtime: Drain hit event limit %d at t=%v", maxEvents, v.Now()))
	}
	return n
}

// eventQueue is a min-heap on (when, seq).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*Timer)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
