package simtime

import "sync"

// Guard is a mutex that rides the engine ownership regime: bound to a
// virtual engine, it is free (no atomic, one predicted branch) while the
// engine is in its single-owner regime — where, by the regime's definition,
// every component entry point runs on the one dispatcher goroutine and
// mutual exclusion is vacuous — and becomes a real mutex the moment the
// engine escalates. Unbound (or bound to a non-virtual engine, e.g. the
// inherently concurrent Wall), it always locks.
//
// This is how the simulation data plane (simgpu devices, simproc processes
// and sync primitives, freerpc peers and pipes) sheds its lock traffic in
// the all-inline experiment grids without giving up safety under goroutine
// shells or live daemons: the same EscalateShared call that arms the
// engine's own mutex arms every Guard bound to it, before the first
// concurrent goroutine exists.
//
// The invariant Guards inherit from the engine: escalation must not happen
// while the escalating goroutine is inside a Guard-protected critical
// section (no component calls simproc.Spawn or freerpc.NewNetConn with a
// Guard held — callbacks and wakes are invoked outside locks throughout).
// A violation fails loudly: Unlock of a mutex the matching Lock skipped
// panics.
type Guard struct {
	mu sync.Mutex
	v  *Virtual // non-nil: skip the mutex while v is single-owner
}

// Bind ties the guard to eng's ownership regime. Call once, at construction
// time, before the guarded component is shared. Binding to a non-virtual
// engine leaves the guard in always-lock mode.
func (g *Guard) Bind(eng Engine) {
	if v, ok := eng.(*Virtual); ok {
		g.v = v
	}
}

// Lock acquires the guard (a no-op in the single-owner regime).
func (g *Guard) Lock() {
	if g.v == nil || g.v.shared {
		g.mu.Lock()
	}
}

// Unlock releases the guard.
func (g *Guard) Unlock() {
	if g.v == nil || g.v.shared {
		g.mu.Unlock()
	}
}
