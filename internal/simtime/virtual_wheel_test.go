package simtime

import (
	"math/rand"
	"testing"
	"time"
)

// wheelDelays spans every interesting region of the calendar wheel: inside
// the current slot, across slot boundaries, near the horizon edge, and far
// beyond it (heap territory), with repeats so equal-deadline FIFO ties occur
// in every region — including ties split across the two structures, which
// happen when an event scheduled beyond the horizon is later joined at the
// same deadline by a near-term one.
var wheelDelays = []time.Duration{
	0, 1, 100 * time.Nanosecond,
	500 * time.Microsecond, time.Millisecond, 1049 * time.Microsecond, // ~one slot (2^20ns)
	3 * time.Millisecond, 40 * time.Millisecond, 200 * time.Millisecond,
	260 * time.Millisecond, 268 * time.Millisecond, // horizon edge (256 slots)
	300 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second,
}

// TestVirtualWheelMatchesReferenceModel drives Virtual — wheel plus overflow
// heap — and the container/heap reference model through identical random
// interleavings of schedule, cancel, reschedule and drain operations whose
// deadlines span the wheel horizon, in both ownership regimes. Fire order
// (strict (when, seq), FIFO among equal deadlines, across both structures)
// and clock movement must match the pure heap exactly: the wheel is a
// placement strategy, never an ordering semantic.
func TestVirtualWheelMatchesReferenceModel(t *testing.T) {
	for _, escalated := range []bool{false, true} {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			v := NewVirtual()
			if escalated {
				v.EscalateShared()
			}
			ref := &refModel{}

			var gotOrder, wantOrder []int
			timers := map[int]*Timer{}
			events := map[int]*refEvent{}
			var liveIDs []int
			nextID := 0

			schedule := func() {
				delay := wheelDelays[rng.Intn(len(wheelDelays))]
				id := nextID
				nextID++
				gotID := id
				timers[id] = v.Schedule(delay, "wheel-prop", func() { gotOrder = append(gotOrder, gotID) })
				events[id] = ref.schedule(delay, id)
				liveIDs = append(liveIDs, id)
			}

			cancel := func() {
				if len(liveIDs) == 0 {
					return
				}
				i := rng.Intn(len(liveIDs))
				id := liveIDs[i]
				liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
				if timers[id].Cancel() {
					events[id].canceled = true
				}
			}

			// Reschedule a still-live handle: semantically cancel+schedule
			// with a fresh seq, but exercising the in-place re-arm — same
			// slot, slot hop, wheel→heap and heap→wheel migrations.
			reschedule := func() {
				if len(liveIDs) == 0 {
					return
				}
				i := rng.Intn(len(liveIDs))
				old := liveIDs[i]
				liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
				delay := wheelDelays[rng.Intn(len(wheelDelays))]
				id := nextID
				nextID++
				gotID := id
				timers[id] = v.Reschedule(timers[old], delay, "wheel-rearm",
					func() { gotOrder = append(gotOrder, gotID) })
				events[old].canceled = true
				events[id] = ref.schedule(delay, id)
				liveIDs = append(liveIDs, id)
			}

			stepBoth := func() {
				want := ref.step()
				stepped := v.Step()
				if (want >= 0) != stepped {
					t.Fatalf("escalated=%v seed %d: Step() = %v, reference id %d", escalated, seed, stepped, want)
				}
				if want >= 0 {
					wantOrder = append(wantOrder, want)
					for i, id := range liveIDs {
						if id == want {
							liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
							break
						}
					}
				}
				if v.Now() != ref.now {
					t.Fatalf("escalated=%v seed %d: clock %v != reference %v", escalated, seed, v.Now(), ref.now)
				}
			}

			for op := 0; op < 500; op++ {
				switch r := rng.Intn(10); {
				case r < 4:
					schedule()
				case r < 5:
					cancel()
				case r < 7:
					reschedule()
				default:
					stepBoth()
				}
			}
			for ref.queue.Len() > 0 || v.Pending() > 0 {
				stepBoth()
			}

			if len(gotOrder) != len(wantOrder) {
				t.Fatalf("escalated=%v seed %d: fired %d events, reference fired %d",
					escalated, seed, len(gotOrder), len(wantOrder))
			}
			for i := range gotOrder {
				if gotOrder[i] != wantOrder[i] {
					t.Fatalf("escalated=%v seed %d: fire order diverges at %d: got %d want %d",
						escalated, seed, i, gotOrder[i], wantOrder[i])
				}
			}
		}
	}
}

// TestVirtualWheelPlacementAndMigration pins the routing policy white-box:
// near-term events go to the wheel, far events to the heap, and Reschedule
// migrates a pending timer between the two as its deadline crosses the
// horizon — preserving the cancel+schedule fire order.
func TestVirtualWheelPlacementAndMigration(t *testing.T) {
	v := NewVirtual()
	var order []string
	near := v.Schedule(time.Millisecond, "near", func() { order = append(order, "near") })
	far := v.Schedule(time.Second, "far", func() { order = append(order, "far") })
	if v.WheelLen() != 1 {
		t.Fatalf("WheelLen = %d after one near + one far event, want 1", v.WheelLen())
	}

	// Heap → wheel: pull the far event inside the horizon, ahead of near.
	far = v.Reschedule(far, 100*time.Microsecond, "far-near", func() { order = append(order, "far-near") })
	if v.WheelLen() != 2 {
		t.Fatalf("WheelLen = %d after heap→wheel migration, want 2", v.WheelLen())
	}
	// Wheel → heap: push the near event beyond the horizon.
	near = v.Reschedule(near, 400*time.Millisecond, "near-far", func() { order = append(order, "near-far") })
	if v.WheelLen() != 1 {
		t.Fatalf("WheelLen = %d after wheel→heap migration, want 1", v.WheelLen())
	}
	v.MustDrain(10)
	if len(order) != 2 || order[0] != "far-near" || order[1] != "near-far" {
		t.Fatalf("order = %v, want [far-near near-far]", order)
	}
	if v.Now() != 400*time.Millisecond {
		t.Fatalf("clock = %v, want 400ms", v.Now())
	}

	// Same-slot re-arm keeps cancel+schedule FIFO: a re-armed event goes
	// behind an equal-deadline sibling even though nothing moved in the
	// bucket.
	order = order[:0]
	a := v.Schedule(time.Millisecond, "a", func() { order = append(order, "a") })
	v.Schedule(time.Millisecond, "b", func() { order = append(order, "b") })
	v.Reschedule(a, time.Millisecond, "a2", func() { order = append(order, "a2") })
	v.MustDrain(10)
	if len(order) != 2 || order[0] != "b" || order[1] != "a2" {
		t.Fatalf("order = %v, want [b a2]", order)
	}
}

// TestVirtualWheelRearmAllocFree pins the satellite guarantee: re-arming a
// pending timer within the wheel — the kernel-completion shape, both the
// same-slot rewrite and a neighbor-slot hop — allocates nothing once bucket
// capacity is warm.
func TestVirtualWheelRearmAllocFree(t *testing.T) {
	v := NewVirtual()
	tm := v.Schedule(50*time.Millisecond, "pin", func() {})
	fn := func() {}
	// Warm both destination buckets' capacity.
	tm = v.Reschedule(tm, 40*time.Millisecond, "pin", fn)
	tm = v.Reschedule(tm, 50*time.Millisecond, "pin", fn)
	allocs := testing.AllocsPerRun(1000, func() {
		tm = v.Reschedule(tm, 40*time.Millisecond, "pin", fn)                 // slot hop
		tm = v.Reschedule(tm, 40*time.Millisecond+time.Nanosecond, "pin", fn) // same slot
		tm = v.Reschedule(tm, 50*time.Millisecond, "pin", fn)
	})
	if allocs != 0 {
		t.Fatalf("wheel re-arm allocates %.2f objects/op, want 0", allocs)
	}
	if v.WheelLen() != 1 || v.Pending() != 1 {
		t.Fatalf("wheel=%d pending=%d after re-arms, want 1/1", v.WheelLen(), v.Pending())
	}
}
