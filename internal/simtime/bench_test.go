package simtime

import (
	"testing"
	"time"
)

// TestEngineHotLoopAllocFree pins the allocation-free property of the
// detached schedule→fire loop: a regression re-introducing per-event
// allocations fails here (and in CI) loudly rather than only shifting a
// benchmark number nobody asserts on.
func TestEngineHotLoopAllocFree(t *testing.T) {
	v := NewVirtual()
	fn := func() {}
	// Warm the free-list so the steady state is measured.
	v.ScheduleDetached(0, "warm", fn)
	v.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		v.ScheduleDetached(time.Microsecond, "bench", fn)
		v.Step()
	})
	if allocs != 0 {
		t.Fatalf("detached schedule→fire loop allocates %.1f objects/event, want 0", allocs)
	}
}

// BenchmarkEngine measures the core schedule→fire loop: one detached event
// in flight per iteration, the shape of the simulator's hottest path (RPC
// delivery, process sleep wake-ups). It should run allocation-free.
func BenchmarkEngine(b *testing.B) {
	v := NewVirtual()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ScheduleDetached(time.Microsecond, "bench", fn)
		v.Step()
	}
}

// BenchmarkEngineDeepQueue measures heap behavior with many pending events:
// schedule bursts of 512, then drain.
func BenchmarkEngineDeepQueue(b *testing.B) {
	v := NewVirtual()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 512; j++ {
			// Mixed delays exercise sift-up and sift-down paths.
			v.ScheduleDetached(time.Duration(j%7)*time.Millisecond, "bench", fn)
		}
		for v.Step() {
		}
	}
}

// BenchmarkEngineCancel measures the cancel-heavy pattern (RPC timeouts,
// kernel rebalancing): schedule with a handle, cancel, repeat. Eager
// removal keeps the queue from accumulating dead timers.
func BenchmarkEngineCancel(b *testing.B) {
	v := NewVirtual()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := v.Schedule(time.Second, "bench", fn)
		t.Cancel()
	}
	if v.Pending() != 0 {
		b.Fatalf("queue holds %d dead timers", v.Pending())
	}
}

// BenchmarkEngineReschedule measures the self-rescheduling-loop pattern
// (manager tick, kernel completion): one timer re-armed forever.
func BenchmarkEngineReschedule(b *testing.B) {
	v := NewVirtual()
	var tm *Timer
	var fn func()
	fn = func() { tm = v.Reschedule(tm, time.Millisecond, "tick", fn) }
	tm = v.Schedule(time.Millisecond, "tick", fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step()
	}
}
