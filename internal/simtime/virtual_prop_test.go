package simtime

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refQueue form the reference model: the straightforward
// container/heap min-heap on (when, seq) that the indexed 4-ary queue
// replaced. The property tests drive both implementations through random
// schedule/cancel/drain interleavings and require identical fire orders.
type refEvent struct {
	when     time.Duration
	seq      uint64
	id       int
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)        { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *refQueue) popMin() *refEvent { return heap.Pop(q).(*refEvent) }

// refModel mirrors the virtual engine's externally visible behavior.
type refModel struct {
	now   time.Duration
	seq   uint64
	queue refQueue
}

func (m *refModel) schedule(delay time.Duration, id int) *refEvent {
	when := m.now
	if delay > 0 {
		when += delay
	}
	e := &refEvent{when: when, seq: m.seq, id: id}
	m.seq++
	heap.Push(&m.queue, e)
	return e
}

// step fires the next live event, returning its id, or -1 if none.
func (m *refModel) step() int {
	for m.queue.Len() > 0 {
		e := m.queue.popMin()
		if e.canceled {
			continue
		}
		if e.when > m.now {
			m.now = e.when
		}
		return e.id
	}
	return -1
}

// TestVirtualMatchesReferenceModel drives Virtual and the reference heap
// through identical random interleavings of schedule, cancel and drain
// operations, checking that fire order (including the FIFO tie-break for
// equal deadlines) and clock movement match exactly.
func TestVirtualMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v := NewVirtual()
		ref := &refModel{}

		var gotOrder, wantOrder []int
		timers := map[int]*Timer{} // live Virtual handles by event id
		events := map[int]*refEvent{}
		var liveIDs []int
		nextID := 0

		schedule := func() {
			// A few distinct delays force deadline collisions so the
			// FIFO tie-break is exercised constantly.
			delay := time.Duration(rng.Intn(4)) * time.Millisecond
			id := nextID
			nextID++
			gotID := id
			timers[id] = v.Schedule(delay, "prop", func() { gotOrder = append(gotOrder, gotID) })
			events[id] = ref.schedule(delay, id)
			liveIDs = append(liveIDs, id)
		}

		cancel := func() {
			if len(liveIDs) == 0 {
				return
			}
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			tm, e := timers[id], events[id]
			won := tm.Cancel()
			if won {
				e.canceled = true
			}
			// Cancel must agree with the model about whether the event
			// already fired.
			fired := false
			for _, g := range gotOrder {
				if g == id {
					fired = true
				}
			}
			if won == fired {
				t.Fatalf("seed %d: Cancel(%d) = %v but fired = %v", seed, id, won, fired)
			}
		}

		stepBoth := func() {
			want := ref.step()
			stepped := v.Step()
			if (want >= 0) != stepped {
				t.Fatalf("seed %d: Step() = %v, reference id %d", seed, stepped, want)
			}
			if want >= 0 {
				wantOrder = append(wantOrder, want)
				for i, id := range liveIDs {
					if id == want {
						liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
						break
					}
				}
			}
			if v.Now() != ref.now {
				t.Fatalf("seed %d: clock %v != reference %v", seed, v.Now(), ref.now)
			}
		}

		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				schedule()
			case r < 7:
				cancel()
			default:
				stepBoth()
			}
		}
		// Drain both to the end.
		for ref.queue.Len() > 0 || v.Pending() > 0 {
			stepBoth()
		}

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: fire order diverges at %d: got %d want %d\ngot  %v\nwant %v",
					seed, i, gotOrder[i], wantOrder[i], gotOrder, wantOrder)
			}
		}
	}
}

// TestVirtualDetachedInterleavesWithScheduled checks that pooled detached
// events and handle-returning events share one FIFO order for equal
// deadlines, and that the free-list actually recycles.
func TestVirtualDetachedInterleavesWithScheduled(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		id := i
		if i%2 == 0 {
			v.ScheduleDetached(time.Second, "even", func() { order = append(order, id) })
		} else {
			v.Schedule(time.Second, "odd", func() { order = append(order, id) })
		}
	}
	v.MustDrain(100)
	for i, id := range order {
		if id != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break broken)", i, id, i)
		}
	}

	// Steady-state detached scheduling must reuse timers, not allocate:
	// the free-list may hold the burst high-water mark (5 concurrent
	// events above) but must not grow with 1000 sequential events.
	high := v.FreeListLen()
	for i := 0; i < 1000; i++ {
		v.ScheduleDetached(time.Millisecond, "d", func() {})
		v.MustDrain(10)
	}
	if n := v.FreeListLen(); n > high+1 {
		t.Fatalf("free list grew from %d to %d; timers are not being recycled", high, n)
	}
}

// TestVirtualCancelHeavyStress floods the queue, cancels a large random
// subset from a racing goroutine, and verifies only never-canceled events
// fire and the queue empties.
func TestVirtualCancelHeavyStress(t *testing.T) {
	v := NewVirtual()
	const n = 20000
	rng := rand.New(rand.NewSource(7))

	fired := make([]bool, n)
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		id := i
		timers[i] = v.Schedule(time.Duration(rng.Intn(50))*time.Millisecond, "stress",
			func() { fired[id] = true })
	}
	canceled := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(100) < 60 {
			canceled[i] = timers[i].Cancel()
		}
	}
	// Eager removal: every successful cancel left the queue immediately.
	live := 0
	for i := range canceled {
		if !canceled[i] {
			live++
		}
	}
	if v.Pending() != live {
		t.Fatalf("Pending() = %d after cancels, want %d (no eager removal?)", v.Pending(), live)
	}
	v.MustDrain(n + 1)
	for i := 0; i < n; i++ {
		if canceled[i] && fired[i] {
			t.Fatalf("event %d fired after successful cancel", i)
		}
		if !canceled[i] && !fired[i] {
			t.Fatalf("event %d never fired and was not canceled", i)
		}
	}
	if v.Pending() != 0 {
		t.Fatalf("queue not empty after drain: %d", v.Pending())
	}
}

// TestVirtualReschedule exercises the timer-reuse path: a self-rescheduling
// loop must keep its Timer identity, and rescheduling a pending timer must
// replace (not duplicate) the event.
func TestVirtualReschedule(t *testing.T) {
	v := NewVirtual()
	var fires int
	var tm *Timer
	var loop func()
	loop = func() {
		fires++
		if fires < 5 {
			tm = v.Reschedule(tm, time.Second, "loop", loop)
		}
	}
	tm = v.Schedule(time.Second, "loop", loop)
	first := tm
	v.MustDrain(100)
	if fires != 5 {
		t.Fatalf("fires = %d, want 5", fires)
	}
	if tm != first {
		t.Fatalf("Reschedule allocated a new timer")
	}
	if v.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", v.Now())
	}

	// Rescheduling a still-pending timer moves it instead of duplicating.
	count := 0
	tm2 := v.Schedule(time.Second, "pending", func() { count++ })
	tm2 = v.Reschedule(tm2, 3*time.Second, "moved", func() { count += 10 })
	v.MustDrain(10)
	if count != 10 {
		t.Fatalf("count = %d, want 10 (old event must not fire)", count)
	}
	if got := v.Now(); got != 5*time.Second+3*time.Second {
		t.Fatalf("clock = %v, want 8s", got)
	}
}
