package simtime

import (
	"sync"
	"time"
)

// Wall is the wall-clock engine used by the live manager/worker daemons.
// Callbacks fire from time.AfterFunc goroutines but are serialized with a
// dispatch mutex so components keep the same no-concurrent-callbacks
// guarantee they enjoy under the virtual engine.
//
// Like the virtual engine, Wall offers allocation-lean fast paths for the
// two hottest schedule shapes of a live daemon:
//
//   - ScheduleDetached draws its Timer (and the underlying runtime timer)
//     from a free-list; after the callback runs, both go back to the pool,
//     so fire-and-forget events (RPC frame delivery, process sleeps) stop
//     allocating a time.AfterFunc timer per event.
//   - Reschedule re-arms a fired timer in place (manager tick, kernel
//     completion loops), resetting the existing runtime timer instead of
//     allocating a fresh one.
type Wall struct {
	epoch time.Time

	// dispatchMu serializes all callbacks scheduled through this engine.
	dispatchMu sync.Mutex

	// mu guards the free-list and the arm/claim transitions of pooled and
	// rescheduled timers. It is never held while a callback runs, and never
	// acquired while dispatchMu is held by this package, so the two locks
	// never nest in conflicting order.
	mu   sync.Mutex
	free []*Timer
}

var (
	_ Engine    = (*Wall)(nil)
	_ Detacher  = (*Wall)(nil)
	_ Escalator = (*Wall)(nil)
)

// NewWall returns a wall-clock engine whose epoch is the moment of creation.
func NewWall() *Wall {
	return &Wall{epoch: time.Now()}
}

// EscalateShared implements Escalator as a no-op: the wall engine is
// inherently shared (callbacks fire from timer goroutines) and always
// guards its state with locks.
func (w *Wall) EscalateShared() {}

// Now reports time elapsed since the engine epoch.
func (w *Wall) Now() time.Duration {
	return time.Since(w.epoch)
}

// Schedule runs fn after delay on a timer goroutine, serialized against all
// other callbacks of this engine.
func (w *Wall) Schedule(delay time.Duration, name string, fn func()) *Timer {
	if fn == nil {
		panic("simtime: Schedule with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	t := &Timer{when: w.Now() + delay, name: name, fn: fn, weng: w}
	// Arm under mu: fire() takes mu before touching the timer, so even an
	// immediate fire observes a fully initialized handle.
	w.mu.Lock()
	t.wt = time.AfterFunc(delay, func() { w.fire(t) })
	t.stop = t.wt.Stop
	w.mu.Unlock()
	return t
}

// ScheduleDetached schedules a fire-and-forget event whose Timer (and
// underlying runtime timer) come from the engine's free-list. With no handle
// escaping, both are recycled as soon as the callback returns.
func (w *Wall) ScheduleDetached(delay time.Duration, name string, fn func()) {
	if fn == nil {
		panic("simtime: ScheduleDetached with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	w.mu.Lock()
	var t *Timer
	if n := len(w.free); n > 0 {
		t = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		t.when, t.name, t.fn = w.Now()+delay, name, fn
		t.state.Store(timerPending)
		w.mu.Unlock()
		t.wt.Reset(delay)
		return
	}
	t = &Timer{when: w.Now() + delay, name: name, fn: fn, weng: w, pooled: true}
	t.wt = time.AfterFunc(delay, func() { w.fire(t) })
	w.mu.Unlock()
}

// Reschedule re-arms t — a timer previously returned by this engine's
// Schedule, whose handle the caller exclusively owns — with a new deadline,
// name and callback, reusing both the Timer and its runtime timer. A nil or
// foreign t falls back to a fresh Schedule. Safe to call from inside the
// timer's own callback (the self-rescheduling loop shape); a pending t is
// canceled first.
func (w *Wall) Reschedule(t *Timer, delay time.Duration, name string, fn func()) *Timer {
	if t == nil || t.weng != w || t.pooled {
		return w.Schedule(delay, name, fn)
	}
	if fn == nil {
		panic("simtime: Reschedule with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	w.mu.Lock()
	reusable := t.state.Load() == timerFired // fire already claimed: no stale dispatch can win
	if !reusable && t.state.CompareAndSwap(timerPending, timerCanceled) {
		// Still pending: if Stop wins, no fire is in flight and the claim
		// word is exclusively ours again.
		reusable = t.wt.Stop()
	}
	if !reusable {
		// A canceled-but-in-flight fire may still race the claim word:
		// leave this Timer to die and arm a fresh one.
		w.mu.Unlock()
		return w.Schedule(delay, name, fn)
	}
	t.when, t.name, t.fn = w.Now()+delay, name, fn
	t.state.Store(timerPending)
	w.mu.Unlock()
	t.wt.Reset(delay)
	return t
}

// fire claims and dispatches a wall timer, returning pooled timers to the
// free-list afterwards.
func (w *Wall) fire(t *Timer) {
	w.mu.Lock()
	if !t.state.CompareAndSwap(timerPending, timerFired) {
		w.mu.Unlock()
		return
	}
	fn := t.fn
	w.mu.Unlock()

	w.dispatchMu.Lock()
	fn()
	w.dispatchMu.Unlock()

	if t.pooled {
		w.mu.Lock()
		t.fn = nil
		t.name = ""
		w.free = append(w.free, t)
		w.mu.Unlock()
	}
}

// FreeListLen reports the pooled-timer count (for tests).
func (w *Wall) FreeListLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.free)
}
