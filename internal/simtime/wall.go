package simtime

import (
	"sync"
	"time"
)

// Wall is the wall-clock engine used by the live manager/worker daemons.
// Callbacks fire from time.AfterFunc goroutines but are serialized with a
// dispatch mutex so components keep the same no-concurrent-callbacks
// guarantee they enjoy under the virtual engine.
type Wall struct {
	epoch time.Time

	// dispatchMu serializes all callbacks scheduled through this engine.
	dispatchMu sync.Mutex
}

var _ Engine = (*Wall)(nil)

// NewWall returns a wall-clock engine whose epoch is the moment of creation.
func NewWall() *Wall {
	return &Wall{epoch: time.Now()}
}

// Now reports time elapsed since the engine epoch.
func (w *Wall) Now() time.Duration {
	return time.Since(w.epoch)
}

// Schedule runs fn after delay on a timer goroutine, serialized against all
// other callbacks of this engine.
func (w *Wall) Schedule(delay time.Duration, name string, fn func()) *Timer {
	if fn == nil {
		panic("simtime: Schedule with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	t := &Timer{when: w.Now() + delay, name: name, fn: fn}
	timer := time.AfterFunc(delay, func() {
		if !t.claim() {
			return
		}
		w.dispatchMu.Lock()
		defer w.dispatchMu.Unlock()
		fn()
	})
	t.stop = timer.Stop
	return t
}
