package livemode

import (
	"testing"
	"time"

	"freeride/internal/model"
)

// TestLiveModeEndToEnd runs the distributed control plane over real TCP
// loopback with the wall-clock engine: a node hosting 4 simulated GPUs and
// a 2-epoch training run, and a manager daemon harvesting its bubbles with
// a ResNet18 side task. Runs in real time (~12 s).
func TestLiveModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live mode runs in real time")
	}
	// Phase 1: manager listens.
	mgr, err := StartManager(ManagerConfig{
		ListenAddr: "127.0.0.1:0",
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer mgr.Close()

	// Phase 2: the GPU node boots, dials the manager, and schedules
	// training to start after a delay.
	node, err := StartNode(NodeConfig{
		ListenAddrs: []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"},
		ManagerAddr: mgr.Addr(),
		Model:       model.NanoGPT3B,
		Epochs:      2,
		StartDelay:  2 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	defer node.Close()

	// Phase 3: the manager connects to the node's workers and submits a
	// side task before training begins.
	if err := mgr.ConnectWorkers(node.WorkerAddrs()); err != nil {
		t.Fatalf("connect workers: %v", err)
	}
	mgr.SubmitTasks([]string{"resnet18"})

	select {
	case <-node.TrainDone():
	case <-time.After(60 * time.Second):
		t.Fatal("training did not finish within 60s")
	}
	// Let the final pause land.
	time.Sleep(300 * time.Millisecond)

	if err := node.Trainer().Err(); err != nil {
		t.Fatalf("training failed: %v", err)
	}
	var steps uint64
	for _, w := range node.Workers() {
		if h, ok := w.Harness("resnet18-0"); ok {
			steps += h.Counters().Steps
		}
	}
	if steps == 0 {
		t.Fatal("no side-task steps harvested over live TCP control plane")
	}
	st := mgr.Manager.Stats()
	if st.BubblesAdded == 0 || st.BubblesServed == 0 {
		t.Fatalf("manager stats: %+v — bubbles not flowing over TCP", st)
	}
	t.Logf("live mode: %d steps harvested, %d bubbles served", steps, st.BubblesServed)
}

func TestStartNodeRequiresAddrs(t *testing.T) {
	if _, err := StartNode(NodeConfig{ManagerAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("node started without listen addresses")
	}
}

func TestStartNodeRequiresManager(t *testing.T) {
	_, err := StartNode(NodeConfig{
		ListenAddrs: []string{"127.0.0.1:0"},
		ManagerAddr: "127.0.0.1:1", // nothing listens here
	})
	if err == nil {
		t.Fatal("node started without a reachable manager")
	}
}
