// Package livemode runs FreeRide's control plane across real process
// boundaries: a manager daemon (freeride-managerd) speaks JSON-RPC over TCP
// to a GPU-node daemon (freeride-workerd) that hosts the simulated GPUs,
// the pipeline trainer and the per-GPU side task workers, all on the
// wall-clock engine.
//
// This is the paper's §8 "Scalability" extension: the side task manager
// "can be easily extended to distributed settings with side tasks on
// multiple servers" because every interaction already flows through RPC.
// The GPU and the training job remain simulated (see DESIGN.md S1/S2), but
// the middleware under test — Algorithms 1 and 2, the state machine
// transitions, the resource-limit enforcement — runs against real sockets,
// real latency and real concurrency.
package livemode

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"freeride/internal/bubble"
	"freeride/internal/container"
	"freeride/internal/core"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/pipeline"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// NodeConfig configures the GPU-node daemon.
type NodeConfig struct {
	// ListenAddrs are the per-worker TCP addresses (one per stage), e.g.
	// ["127.0.0.1:7081", ..., ":7084"]. Use port 0 to auto-assign.
	ListenAddrs []string
	// ManagerAddr is where bubble reports and notifications are sent.
	ManagerAddr string
	Model       model.LLM
	MicroBatch  int
	Epochs      int
	// StartDelay gives the manager time to dial in before training begins.
	StartDelay time.Duration
	Grace      time.Duration
	// Logf receives progress lines; nil silences.
	Logf func(format string, args ...any)
}

// Node is a running GPU-node daemon.
type Node struct {
	cfg     NodeConfig
	eng     *simtime.Wall
	trainer *pipeline.Trainer
	workers []*core.Worker

	listeners []net.Listener
	mgrPeer   *freerpc.Peer

	mu        sync.Mutex
	trainDone chan struct{}
}

// WorkerAddrs reports the actual listen addresses (after port resolution),
// in stage order.
func (n *Node) WorkerAddrs() []string {
	out := make([]string, len(n.listeners))
	for i, ln := range n.listeners {
		out[i] = ln.Addr().String()
	}
	return out
}

// TrainDone is closed when the final epoch completes.
func (n *Node) TrainDone() <-chan struct{} { return n.trainDone }

// Trainer exposes the live trainer (for result collection).
func (n *Node) Trainer() *pipeline.Trainer { return n.trainer }

// Workers exposes the node's side task workers.
func (n *Node) Workers() []*core.Worker { return n.workers }

// Close shuts the node down.
func (n *Node) Close() {
	for _, ln := range n.listeners {
		_ = ln.Close()
	}
	if n.mgrPeer != nil {
		n.mgrPeer.Close()
	}
}

// StartNode boots the node: devices, trainer, workers and listeners.
// Training begins after cfg.StartDelay.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Model.Name == "" {
		cfg.Model = model.NanoGPT3B
	}
	if cfg.MicroBatch <= 0 {
		cfg.MicroBatch = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.StartDelay <= 0 {
		cfg.StartDelay = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	stages := len(cfg.ListenAddrs)
	if stages == 0 {
		return nil, fmt.Errorf("livemode: no worker listen addresses")
	}

	eng := simtime.NewWall()
	procs := simproc.NewRuntime(eng)
	node := &Node{cfg: cfg, eng: eng, trainDone: make(chan struct{})}

	devices := make([]*simgpu.Device, stages)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name:         fmt.Sprintf("gpu%d", i),
			MemBytes:     model.ServerI.GPUMemBytes,
			ResidencyTax: simgpu.DefaultResidencyTax,
		})
	}
	trainer, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model:        cfg.Model,
		Stages:       stages,
		MicroBatches: cfg.MicroBatch,
		Epochs:       cfg.Epochs,
		RecordOps:    true,
	})
	if err != nil {
		return nil, err
	}
	node.trainer = trainer

	// Dial the manager for notifications and bubble reports.
	mgrPeer, err := freerpc.Dial(eng, "tcp", cfg.ManagerAddr, nil)
	if err != nil {
		return nil, fmt.Errorf("livemode: dial manager: %w", err)
	}
	node.mgrPeer = mgrPeer

	// One worker per stage, each on its own listener.
	for i := 0; i < stages; i++ {
		ctrs := container.NewRuntime(procs)
		w := core.NewWorker(eng, devices[i], ctrs, core.WorkerConfig{
			Name:  fmt.Sprintf("worker%d", i),
			Grace: cfg.Grace,
		})
		w.SetNotify(func(method string, params any) {
			_ = mgrPeer.Notify(method, params)
		})
		wmux := freerpc.NewMux()
		w.RegisterOn(wmux)
		ln, err := net.Listen("tcp", cfg.ListenAddrs[i])
		if err != nil {
			node.Close()
			return nil, fmt.Errorf("livemode: listen %s: %w", cfg.ListenAddrs[i], err)
		}
		node.listeners = append(node.listeners, ln)
		node.workers = append(node.workers, w)
		go func() { _ = freerpc.Serve(eng, ln, wmux, nil) }()
	}

	// Offline bubble profiling runs on a private virtual engine even in
	// live mode (it is an offline pass in the paper too).
	prof, err := offlineProfile(cfg.Model, stages, cfg.MicroBatch)
	if err != nil {
		node.Close()
		return nil, err
	}
	reporter := bubble.NewReporter(prof, 0)
	reporter.SetSink(func(b bubble.Bubble) {
		_ = mgrPeer.Notify("Manager.AddBubble", core.ToBubbleDTO(b))
	})
	reporter.Attach(trainer)

	trainer.OnEpochEnd(func(epoch int, ts time.Duration) {
		cfg.Logf("epoch %d finished at %v", epoch, ts)
		if epoch == cfg.Epochs-1 {
			close(node.trainDone)
		}
	})

	eng.Schedule(cfg.StartDelay, "train-start", func() {
		cfg.Logf("starting %s training: %d stages, %d micro-batches, %d epochs",
			cfg.Model.Name, stages, cfg.MicroBatch, cfg.Epochs)
		if err := trainer.Start(); err != nil {
			cfg.Logf("trainer start failed: %v", err)
		}
	})
	return node, nil
}

func offlineProfile(llm model.LLM, stages, mbs int) (*bubble.Profile, error) {
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	devices := make([]*simgpu.Device, stages)
	for i := range devices {
		devices[i] = simgpu.NewDevice(eng, simgpu.DeviceConfig{
			Name: fmt.Sprintf("prof%d", i), MemBytes: model.ServerI.GPUMemBytes,
		})
	}
	tr, err := pipeline.New(eng, procs, devices, pipeline.Config{
		Model: llm, Stages: stages, MicroBatches: mbs, Epochs: 2, RecordOps: true,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.Start(); err != nil {
		return nil, err
	}
	eng.Drain(50_000_000)
	return bubble.ProfileTrainer(tr, 1, 0)
}

// ManagerConfig configures the manager daemon.
type ManagerConfig struct {
	// ListenAddr accepts node connections (bubble reports, notifications).
	ListenAddr string
	// WorkerAddrs are the node's per-stage worker endpoints, stage order.
	WorkerAddrs []string
	// Tasks are submitted once all workers are connected, e.g.
	// ["resnet18", "pagerank"]; each is placed per Algorithm 1.
	Tasks []string
	// Model and MicroBatch describe the training job on the node; the
	// manager derives each stage's bubble-available memory from them (the
	// offline bubble profile plays this role in the paper).
	Model      model.LLM
	MicroBatch int
	Tick       time.Duration
	// Mode drives Algorithm 2; the zero value is the event-driven manager.
	// Live deployments benefit doubly: no wall-clock wakeup per Tick, and
	// out-of-order bubble reports (real network) are served in Start order.
	Mode core.ManagerMode
	// Lease > 0 enables the failure detector and self-healing recovery:
	// workers are pinged every Lease/2, declared dead after a silent Lease,
	// and their tasks re-placed from the last checkpoint with backoff. Zero
	// keeps the legacy no-recovery behaviour.
	Lease time.Duration
	// MaxRestarts and RetryBackoff bound recovery (zero = core defaults).
	MaxRestarts  int
	RetryBackoff time.Duration
	Logf         func(format string, args ...any)
}

// ManagerDaemon is a running manager.
type ManagerDaemon struct {
	Manager *core.Manager
	eng     *simtime.Wall
	ln      net.Listener
	peers   []*freerpc.Peer
	cfg     ManagerConfig
}

// Addr reports the listener address.
func (d *ManagerDaemon) Addr() string { return d.ln.Addr().String() }

// Close shuts the daemon down.
func (d *ManagerDaemon) Close() {
	d.Manager.Stop()
	_ = d.ln.Close()
	for _, p := range d.peers {
		p.Close()
	}
}

// StartManager boots the manager daemon's listener and Algorithm-2 loop.
// Workers are attached afterwards with ConnectWorkers (they may not exist
// yet when the manager boots), then tasks with SubmitTasks.
func StartManager(cfg ManagerConfig) (*ManagerDaemon, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * time.Millisecond
	}
	if cfg.Model.Name == "" {
		cfg.Model = model.NanoGPT3B
	}
	if cfg.MicroBatch <= 0 {
		cfg.MicroBatch = 4
	}
	eng := simtime.NewWall()
	mgr := core.NewManager(eng, core.ManagerOptions{
		Tick: cfg.Tick, Mode: cfg.Mode, MemSlack: core.DefaultMemSlack,
		Lease: cfg.Lease, MaxRestarts: cfg.MaxRestarts, RetryBackoff: cfg.RetryBackoff,
	})

	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("livemode: manager listen: %w", err)
	}
	d := &ManagerDaemon{Manager: mgr, eng: eng, ln: ln, cfg: cfg}
	go func() { _ = freerpc.Serve(eng, ln, mgr.Mux(), nil) }()
	mgr.Start()

	if len(cfg.WorkerAddrs) > 0 {
		if err := d.ConnectWorkers(cfg.WorkerAddrs); err != nil {
			d.Close()
			return nil, err
		}
	}
	if len(cfg.Tasks) > 0 {
		d.SubmitTasks(cfg.Tasks)
	}
	return d, nil
}

// ConnectWorkers dials each worker endpoint (stage order), verifies it with
// Worker.Info, and registers it with the stage's bubble-available memory.
func (d *ManagerDaemon) ConnectWorkers(addrs []string) error {
	for stage, addr := range addrs {
		peer, err := freerpc.Dial(d.eng, "tcp", addr, d.Manager.Mux())
		if err != nil {
			return fmt.Errorf("livemode: dial worker %s: %w", addr, err)
		}
		d.peers = append(d.peers, peer)
		info, err := workerInfoOf(d.eng, peer)
		if err != nil {
			return fmt.Errorf("livemode: worker info %s: %w", addr, err)
		}
		avail := d.cfg.Model.StageMemAvailable(model.ServerI.GPUMemBytes, stage,
			len(addrs), d.cfg.MicroBatch)
		d.Manager.AddWorker(info.name, stage, avail, peer)
		d.cfg.Logf("registered %s (stage %d, %.1f GB available for side tasks)",
			info.name, stage, float64(avail)/float64(model.GiB))
	}
	return nil
}

// SubmitTasks submits named built-in tasks via Algorithm 1.
func (d *ManagerDaemon) SubmitTasks(tasks []string) {
	for i, taskName := range tasks {
		profile, err := model.TaskByName(strings.TrimSpace(taskName))
		if err != nil {
			d.cfg.Logf("unknown task %q: %v", taskName, err)
			continue
		}
		spec := core.TaskSpec{
			Name:      fmt.Sprintf("%s-%d", profile.Name, i),
			Profile:   profile,
			Mode:      sidetask.ModeIterative,
			WorkScale: sidetask.WorkSmall,
			Seed:      int64(42 + i),
		}
		placed, err := d.Manager.SubmitAndPlace(spec)
		if err != nil {
			d.cfg.Logf("submit %s rejected: %v", spec.Name, err)
			continue
		}
		d.cfg.Logf("submitted %s -> %s", spec.Name, placed)
	}
}

type liveWorkerInfo struct {
	name   string
	gpuMem int64
}

// workerInfoOf fetches Worker.Info synchronously (wall clock).
func workerInfoOf(eng simtime.Engine, peer *freerpc.Peer) (liveWorkerInfo, error) {
	type infoDTO struct {
		Name   string `json:"name"`
		GPUMem int64  `json:"gpuMem"`
	}
	done := make(chan error, 1)
	var info infoDTO
	procs := simproc.NewRuntime(eng)
	procs.Spawn("info-query", func(p *simproc.Process) error {
		err := peer.Call(p, "Worker.Info", nil, &info, 5*time.Second)
		done <- err
		return err
	})
	select {
	case err := <-done:
		if err != nil {
			return liveWorkerInfo{}, err
		}
		return liveWorkerInfo{name: info.Name, gpuMem: info.GPUMem}, nil
	case <-time.After(10 * time.Second):
		return liveWorkerInfo{}, fmt.Errorf("livemode: Worker.Info timed out")
	}
}
