package graph

import "math"

// PageRank is an incremental power-iteration PageRank solver whose Step
// method matches the side-task iterative interface: one call is one
// iteration over the graph (the paper's PR side task runs "the graph
// algorithm over the input graph for one step" per iteration, §6.2).
type PageRank struct {
	g       *CSR
	damping float64
	ranks   []float64
	next    []float64
	iters   int
	delta   float64
}

// NewPageRank initializes uniform ranks.
func NewPageRank(g *CSR, damping float64) *PageRank {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	n := g.NumNodes()
	pr := &PageRank{
		g:       g,
		damping: damping,
		ranks:   make([]float64, n),
		next:    make([]float64, n),
		delta:   math.Inf(1),
	}
	for i := range pr.ranks {
		pr.ranks[i] = 1.0 / float64(n)
	}
	return pr
}

// Step performs one push-style power iteration and returns the L1 delta.
func (pr *PageRank) Step() float64 {
	n := pr.g.NumNodes()
	base := (1 - pr.damping) / float64(n)
	for i := range pr.next {
		pr.next[i] = base
	}
	var dangling float64
	for u := 0; u < n; u++ {
		deg := pr.g.OutDegree(u)
		if deg == 0 {
			dangling += pr.ranks[u]
			continue
		}
		share := pr.damping * pr.ranks[u] / float64(deg)
		for _, v := range pr.g.Neighbors(u) {
			pr.next[v] += share
		}
	}
	// Dangling mass is spread uniformly, keeping the distribution stochastic.
	spread := pr.damping * dangling / float64(n)
	var delta float64
	for i := range pr.next {
		pr.next[i] += spread
		delta += math.Abs(pr.next[i] - pr.ranks[i])
	}
	pr.ranks, pr.next = pr.next, pr.ranks
	pr.iters++
	pr.delta = delta
	return delta
}

// Ranks returns the current rank vector (shared storage; copy to keep).
func (pr *PageRank) Ranks() []float64 { return pr.ranks }

// Iterations reports completed steps.
func (pr *PageRank) Iterations() int { return pr.iters }

// Delta reports the last iteration's L1 change.
func (pr *PageRank) Delta() float64 { return pr.delta }

// Converged reports whether the last delta fell below eps.
func (pr *PageRank) Converged(eps float64) bool { return pr.delta < eps }
