// Package graph is the graph-analytics substrate for the paper's
// Gardenia-derived side tasks (§6.1.4): a CSR graph representation, a
// deterministic RMAT-style generator standing in for the Orkut dataset
// (which is not redistributable here), PageRank, and SGD matrix
// factorization. The algorithms run for real on the host; the simulated GPU
// is charged their kernel cost by the side-task layer.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a directed graph in compressed sparse row form.
type CSR struct {
	// RowPtr has N+1 entries; the out-neighbors of u are
	// Cols[RowPtr[u]:RowPtr[u+1]].
	RowPtr []int64
	Cols   []int32
}

// NumNodes reports the node count.
func (g *CSR) NumNodes() int { return len(g.RowPtr) - 1 }

// NumEdges reports the directed edge count.
func (g *CSR) NumEdges() int64 { return g.RowPtr[len(g.RowPtr)-1] }

// OutDegree reports the out-degree of node u.
func (g *CSR) OutDegree(u int) int64 { return g.RowPtr[u+1] - g.RowPtr[u] }

// Neighbors returns the out-neighbor slice of u (shared storage; do not
// mutate).
func (g *CSR) Neighbors(u int) []int32 {
	return g.Cols[g.RowPtr[u]:g.RowPtr[u+1]]
}

// FromEdges builds a CSR from an edge list over n nodes, deduplicating and
// sorting adjacency lists.
func FromEdges(n int, edges [][2]int32) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: %d nodes", n)
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		adj[u] = append(adj[u], v)
	}
	g := &CSR{RowPtr: make([]int64, n+1)}
	for u := 0; u < n; u++ {
		nbrs := adj[u]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		dedup := nbrs[:0]
		var prev int32 = -1
		for _, v := range nbrs {
			if v != prev {
				dedup = append(dedup, v)
				prev = v
			}
		}
		g.Cols = append(g.Cols, dedup...)
		g.RowPtr[u+1] = int64(len(g.Cols))
	}
	return g, nil
}

// RMATConfig parameterizes the recursive-matrix generator. The defaults
// produce the skewed degree distribution of social graphs like Orkut.
type RMATConfig struct {
	// Nodes is rounded up to the next power of two internally, then
	// truncated back.
	Nodes int
	// EdgeFactor is average out-degree (Orkut ≈ 38).
	EdgeFactor int
	// A, B, C are the RMAT quadrant probabilities (D = 1-A-B-C).
	A, B, C float64
	Seed    int64
}

func (c *RMATConfig) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = 1 << 14
	}
	if c.EdgeFactor <= 0 {
		c.EdgeFactor = 16
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
}

// RMAT deterministically generates a power-law directed graph.
func RMAT(cfg RMATConfig) *CSR {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	levels := 0
	for 1<<levels < cfg.Nodes {
		levels++
	}
	n := cfg.Nodes
	m := n * cfg.EdgeFactor
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// upper-left: nothing to add
			case r < cfg.A+cfg.B:
				v |= 1 << l
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		// Unreachable: generated edges are range-checked above.
		panic(err)
	}
	return g
}
