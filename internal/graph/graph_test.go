package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasics(t *testing.T) {
	g, err := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 { // duplicate (0,1) removed
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.OutDegree(0), g.OutDegree(3))
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("Neighbors(0) = %v", nbrs)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, [][2]int32{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := FromEdges(0, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(RMATConfig{Nodes: 1 << 10, EdgeFactor: 8, Seed: 7})
	b := RMAT(RMATConfig{Nodes: 1 << 10, EdgeFactor: 8, Seed: 7})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edges: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	c := RMAT(RMATConfig{Nodes: 1 << 10, EdgeFactor: 8, Seed: 8})
	if a.NumEdges() == c.NumEdges() && equalCols(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalCols(a, b *CSR) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(RMATConfig{Nodes: 1 << 12, EdgeFactor: 16, Seed: 42})
	var maxDeg int64
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(maxDeg) < 8*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f — not power-law-ish", maxDeg, mean)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := RMAT(RMATConfig{Nodes: 1 << 10, EdgeFactor: 8, Seed: 1})
	pr := NewPageRank(g, 0.85)
	for i := 0; i < 10; i++ {
		pr.Step()
		var sum float64
		for _, r := range pr.Ranks() {
			sum += r
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Fatalf("iter %d: rank sum = %v, want 1", i, sum)
		}
	}
}

func TestPageRankConverges(t *testing.T) {
	g := RMAT(RMATConfig{Nodes: 1 << 10, EdgeFactor: 8, Seed: 1})
	pr := NewPageRank(g, 0.85)
	var prev float64 = math.Inf(1)
	for i := 0; i < 50 && !pr.Converged(1e-9); i++ {
		d := pr.Step()
		if d > prev*1.01 { // deltas must shrink (allow tiny wobble)
			t.Fatalf("delta increased: %v -> %v at iter %d", prev, d, i)
		}
		prev = d
	}
	if !pr.Converged(1e-6) {
		t.Fatalf("did not converge in 50 iters; delta=%v", pr.Delta())
	}
	if pr.Iterations() == 0 {
		t.Fatal("iteration counter not advanced")
	}
}

func TestPageRankKnownGraph(t *testing.T) {
	// Star graph: everything points at node 0 → node 0 gets the top rank.
	edges := [][2]int32{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	g, _ := FromEdges(5, edges)
	pr := NewPageRank(g, 0.85)
	for i := 0; i < 60; i++ {
		pr.Step()
	}
	ranks := pr.Ranks()
	for i := 1; i < 5; i++ {
		if ranks[0] <= ranks[i] {
			t.Fatalf("hub rank %v not above leaf %v", ranks[0], ranks[i])
		}
	}
}

// Property: rank vector stays a probability distribution for arbitrary
// small graphs.
func TestPageRankStochasticProperty(t *testing.T) {
	f := func(rawEdges []uint16, steps uint8) bool {
		n := 12
		var edges [][2]int32
		for _, e := range rawEdges {
			u := int32(e) % int32(n)
			v := int32(e>>4) % int32(n)
			if u != v {
				edges = append(edges, [2]int32{u, v})
			}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		pr := NewPageRank(g, 0.85)
		for i := 0; i < int(steps%16)+1; i++ {
			pr.Step()
		}
		var sum float64
		for _, r := range pr.Ranks() {
			if r < 0 {
				return false
			}
			sum += r
		}
		return math.Abs(sum-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSGDMFLearns(t *testing.T) {
	ratings := SyntheticRatings(64, 64, 4000, 4, 11)
	m := NewSGDMF(SGDMFConfig{Users: 64, Items: 64, K: 8, Seed: 3}, ratings)
	first := m.Step()
	var last float64
	for i := 0; i < 25; i++ {
		last = m.Step()
	}
	if last >= first*0.8 {
		t.Fatalf("RMSE did not improve: first=%.4f last=%.4f", first, last)
	}
	if m.Epochs() != 26 {
		t.Fatalf("Epochs = %d, want 26", m.Epochs())
	}
	if m.RMSE() != last {
		t.Fatalf("RMSE() = %v, want %v", m.RMSE(), last)
	}
}

func TestSGDMFDeterministicWithSeed(t *testing.T) {
	ratings := SyntheticRatings(32, 32, 1000, 4, 5)
	a := NewSGDMF(SGDMFConfig{Users: 32, Items: 32, Seed: 9}, ratings)
	b := NewSGDMF(SGDMFConfig{Users: 32, Items: 32, Seed: 9}, ratings)
	for i := 0; i < 3; i++ {
		if ra, rb := a.Step(), b.Step(); ra != rb {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, ra, rb)
		}
	}
}

func BenchmarkPageRankStep(b *testing.B) {
	g := RMAT(RMATConfig{Nodes: 1 << 12, EdgeFactor: 16, Seed: 1})
	pr := NewPageRank(g, 0.85)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Step()
	}
}

func BenchmarkSGDMFStep(b *testing.B) {
	ratings := SyntheticRatings(256, 256, 20000, 8, 1)
	m := NewSGDMF(SGDMFConfig{Users: 256, Items: 256, K: 16, Seed: 1}, ratings)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
