package graph

import (
	"math"
	"math/rand"
)

// SGDMF solves matrix factorization with stochastic gradient descent — the
// paper's "Graph SGD" side task [26]: ratings R(u,i) are approximated by
// P[u]·Q[i] with latent factor vectors trained one pass per Step.
type SGDMF struct {
	users, items, k int
	ratings         []Rating
	p, q            []float64 // row-major latent factors
	lr, reg         float64
	rng             *rand.Rand
	epochs          int
	lastRMSE        float64
}

// Rating is one observed (user, item, value) entry.
type Rating struct {
	User  int32
	Item  int32
	Value float32
}

// SGDMFConfig parameterizes the factorization.
type SGDMFConfig struct {
	Users, Items int
	// K is the latent dimension.
	K int
	// LearnRate and Reg are the SGD step size and L2 regularizer.
	LearnRate, Reg float64
	Seed           int64
}

func (c *SGDMFConfig) normalize() {
	if c.K <= 0 {
		c.K = 16
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.01
	}
	if c.Reg <= 0 {
		c.Reg = 0.02
	}
}

// NewSGDMF builds a model over the given ratings.
func NewSGDMF(cfg SGDMFConfig, ratings []Rating) *SGDMF {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &SGDMF{
		users: cfg.Users, items: cfg.Items, k: cfg.K,
		ratings: ratings,
		p:       make([]float64, cfg.Users*cfg.K),
		q:       make([]float64, cfg.Items*cfg.K),
		lr:      cfg.LearnRate, reg: cfg.Reg,
		rng:      rng,
		lastRMSE: math.Inf(1),
	}
	scale := 1.0 / math.Sqrt(float64(cfg.K))
	for i := range m.p {
		m.p[i] = rng.Float64() * scale
	}
	for i := range m.q {
		m.q[i] = rng.Float64() * scale
	}
	return m
}

// SyntheticRatings generates a deterministic rating set with planted
// low-rank structure, standing in for the Orkut-derived workload.
func SyntheticRatings(users, items, count, k int, seed int64) []Rating {
	rng := rand.New(rand.NewSource(seed))
	// Planted factors.
	pu := make([]float64, users*k)
	qi := make([]float64, items*k)
	for i := range pu {
		pu[i] = rng.NormFloat64()
	}
	for i := range qi {
		qi[i] = rng.NormFloat64()
	}
	out := make([]Rating, count)
	for n := range out {
		u := rng.Intn(users)
		i := rng.Intn(items)
		var dot float64
		for j := 0; j < k; j++ {
			dot += pu[u*k+j] * qi[i*k+j]
		}
		out[n] = Rating{User: int32(u), Item: int32(i), Value: float32(dot + 0.05*rng.NormFloat64())}
	}
	return out
}

// Step performs one SGD pass over all ratings (in shuffled order) and
// returns the RMSE observed during the pass.
func (m *SGDMF) Step() float64 {
	n := len(m.ratings)
	var sqErr float64
	perm := m.rng.Perm(n)
	for _, idx := range perm {
		r := m.ratings[idx]
		pu := m.p[int(r.User)*m.k : int(r.User)*m.k+m.k]
		qi := m.q[int(r.Item)*m.k : int(r.Item)*m.k+m.k]
		var pred float64
		for j := 0; j < m.k; j++ {
			pred += pu[j] * qi[j]
		}
		err := float64(r.Value) - pred
		sqErr += err * err
		for j := 0; j < m.k; j++ {
			pj, qj := pu[j], qi[j]
			pu[j] += m.lr * (err*qj - m.reg*pj)
			qi[j] += m.lr * (err*pj - m.reg*qj)
		}
	}
	m.epochs++
	m.lastRMSE = math.Sqrt(sqErr / float64(n))
	return m.lastRMSE
}

// RMSE reports the last pass's root-mean-square error.
func (m *SGDMF) RMSE() float64 { return m.lastRMSE }

// Epochs reports completed passes.
func (m *SGDMF) Epochs() int { return m.epochs }
