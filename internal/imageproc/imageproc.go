// Package imageproc is the image-processing substrate for the paper's
// nvJPEG-derived side task (§6.1.4): each step resizes one image with
// bilinear interpolation and alpha-blends a watermark onto it, on real
// pixel data generated deterministically (the stand-in for Nvidia's sample
// inputs). The simulated GPU is charged the kernel cost by the side-task
// layer; the pixel math here keeps the code path real.
package imageproc

import (
	"fmt"
	"image"
	"image/color"
	"math/rand"
)

// Synthetic renders a deterministic RGBA test image with smooth gradients
// and seeded noise, so resizing has real structure to interpolate.
func Synthetic(w, h int, seed int64) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	rng := rand.New(rand.NewSource(seed))
	noise := uint8(rng.Intn(32))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := uint8((x * 255) / max(1, w-1))
			g := uint8((y * 255) / max(1, h-1))
			b := uint8(((x + y) * 255) / max(1, w+h-2))
			img.SetRGBA(x, y, color.RGBA{R: r + noise, G: g, B: b, A: 255})
		}
	}
	return img
}

// Resize scales src to (w, h) with bilinear interpolation.
func Resize(src *image.RGBA, w, h int) (*image.RGBA, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imageproc: invalid target %dx%d", w, h)
	}
	sb := src.Bounds()
	sw, sh := sb.Dx(), sb.Dy()
	if sw == 0 || sh == 0 {
		return nil, fmt.Errorf("imageproc: empty source")
	}
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	xRatio := float64(sw-1) / float64(max(1, w-1))
	yRatio := float64(sh-1) / float64(max(1, h-1))
	for y := 0; y < h; y++ {
		sy := float64(y) * yRatio
		y0 := int(sy)
		y1 := min(y0+1, sh-1)
		fy := sy - float64(y0)
		for x := 0; x < w; x++ {
			sx := float64(x) * xRatio
			x0 := int(sx)
			x1 := min(x0+1, sw-1)
			fx := sx - float64(x0)

			c00 := src.RGBAAt(sb.Min.X+x0, sb.Min.Y+y0)
			c10 := src.RGBAAt(sb.Min.X+x1, sb.Min.Y+y0)
			c01 := src.RGBAAt(sb.Min.X+x0, sb.Min.Y+y1)
			c11 := src.RGBAAt(sb.Min.X+x1, sb.Min.Y+y1)

			lerp2 := func(a, b, c, d uint8) uint8 {
				top := float64(a)*(1-fx) + float64(b)*fx
				bot := float64(c)*(1-fx) + float64(d)*fx
				return uint8(top*(1-fy) + bot*fy + 0.5)
			}
			dst.SetRGBA(x, y, color.RGBA{
				R: lerp2(c00.R, c10.R, c01.R, c11.R),
				G: lerp2(c00.G, c10.G, c01.G, c11.G),
				B: lerp2(c00.B, c10.B, c01.B, c11.B),
				A: lerp2(c00.A, c10.A, c01.A, c11.A),
			})
		}
	}
	return dst, nil
}

// Watermark alpha-blends mark onto dst at (ox, oy), clipping to bounds.
// opacity is in [0,1].
func Watermark(dst *image.RGBA, mark *image.RGBA, ox, oy int, opacity float64) {
	if opacity < 0 {
		opacity = 0
	}
	if opacity > 1 {
		opacity = 1
	}
	db := dst.Bounds()
	mb := mark.Bounds()
	for my := 0; my < mb.Dy(); my++ {
		dy := oy + my
		if dy < db.Min.Y || dy >= db.Max.Y {
			continue
		}
		for mx := 0; mx < mb.Dx(); mx++ {
			dx := ox + mx
			if dx < db.Min.X || dx >= db.Max.X {
				continue
			}
			m := mark.RGBAAt(mb.Min.X+mx, mb.Min.Y+my)
			alpha := opacity * float64(m.A) / 255.0
			if alpha == 0 {
				continue
			}
			d := dst.RGBAAt(dx, dy)
			blend := func(dc, mc uint8) uint8 {
				return uint8(float64(dc)*(1-alpha) + float64(mc)*alpha + 0.5)
			}
			dst.SetRGBA(dx, dy, color.RGBA{
				R: blend(d.R, m.R),
				G: blend(d.G, m.G),
				B: blend(d.B, m.B),
				A: 255,
			})
		}
	}
}

// Pipeline is the step-wise side-task workload: one Step() resizes the next
// synthetic image and stamps the watermark, mirroring Nvidia's
// resize-and-watermark sample [41].
type Pipeline struct {
	srcW, srcH int
	dstW, dstH int
	mark       *image.RGBA
	seed       int64
	processed  int
	lastOut    *image.RGBA
}

// NewPipeline builds the workload. The watermark is a small translucent
// badge rendered once.
func NewPipeline(srcW, srcH, dstW, dstH int, seed int64) *Pipeline {
	mark := image.NewRGBA(image.Rect(0, 0, 32, 16))
	for y := 0; y < 16; y++ {
		for x := 0; x < 32; x++ {
			mark.SetRGBA(x, y, color.RGBA{R: 255, G: 255, B: 255, A: 128})
		}
	}
	return &Pipeline{srcW: srcW, srcH: srcH, dstW: dstW, dstH: dstH, mark: mark, seed: seed}
}

// Step processes one image and returns it.
func (p *Pipeline) Step() (*image.RGBA, error) {
	src := Synthetic(p.srcW, p.srcH, p.seed+int64(p.processed))
	out, err := Resize(src, p.dstW, p.dstH)
	if err != nil {
		return nil, err
	}
	Watermark(out, p.mark, p.dstW-40, p.dstH-24, 0.6)
	p.processed++
	p.lastOut = out
	return out, nil
}

// Processed reports the number of images completed.
func (p *Pipeline) Processed() int { return p.processed }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
