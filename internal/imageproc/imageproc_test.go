package imageproc

import (
	"image"
	"testing"
	"testing/quick"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 48, 7)
	b := Synthetic(64, 48, 7)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := Synthetic(64, 48, 8)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestResizeDimensions(t *testing.T) {
	src := Synthetic(100, 80, 1)
	dst, err := Resize(src, 37, 53)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Bounds().Dx() != 37 || dst.Bounds().Dy() != 53 {
		t.Fatalf("resized to %v", dst.Bounds())
	}
}

func TestResizeIdentityPreservesCorners(t *testing.T) {
	src := Synthetic(32, 32, 3)
	dst, err := Resize(src, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range []image.Point{{0, 0}, {31, 0}, {0, 31}, {31, 31}} {
		if src.RGBAAt(pt.X, pt.Y) != dst.RGBAAt(pt.X, pt.Y) {
			t.Fatalf("corner %v changed: %v -> %v", pt, src.RGBAAt(pt.X, pt.Y), dst.RGBAAt(pt.X, pt.Y))
		}
	}
}

func TestResizeRejectsBadTargets(t *testing.T) {
	src := Synthetic(8, 8, 1)
	if _, err := Resize(src, 0, 10); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := Resize(src, 10, -1); err == nil {
		t.Fatal("negative height accepted")
	}
}

// Property: downscaled pixel values stay within the [min, max] envelope of
// the source (bilinear interpolation cannot extrapolate).
func TestResizeInterpolationEnvelope(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%40) + 8
		h := int(hRaw%40) + 8
		src := Synthetic(64, 64, seed)
		var lo, hi uint8 = 255, 0
		for i := 0; i < len(src.Pix); i += 4 { // red channel
			if src.Pix[i] < lo {
				lo = src.Pix[i]
			}
			if src.Pix[i] > hi {
				hi = src.Pix[i]
			}
		}
		dst, err := Resize(src, w, h)
		if err != nil {
			return false
		}
		for i := 0; i < len(dst.Pix); i += 4 {
			if dst.Pix[i] < lo || dst.Pix[i] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWatermarkChangesOnlyBadgeRegion(t *testing.T) {
	img := Synthetic(64, 64, 2)
	ref := Synthetic(64, 64, 2)
	mark := Synthetic(8, 8, 9)
	Watermark(img, mark, 10, 20, 0.5)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			inBadge := x >= 10 && x < 18 && y >= 20 && y < 28
			same := img.RGBAAt(x, y) == ref.RGBAAt(x, y)
			if inBadge && same {
				// (possible if blend result equals original; only fail if
				// the whole badge is untouched — checked below)
				continue
			}
			if !inBadge && !same {
				t.Fatalf("pixel (%d,%d) outside badge changed", x, y)
			}
		}
	}
	changed := false
	for y := 20; y < 28 && !changed; y++ {
		for x := 10; x < 18; x++ {
			if img.RGBAAt(x, y) != ref.RGBAAt(x, y) {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("watermark had no effect")
	}
}

func TestWatermarkClipsAtEdges(t *testing.T) {
	img := Synthetic(16, 16, 1)
	mark := Synthetic(8, 8, 2)
	// Must not panic when overlapping the border or fully outside.
	Watermark(img, mark, 12, 12, 1.0)
	Watermark(img, mark, -4, -4, 1.0)
	Watermark(img, mark, 100, 100, 1.0)
}

func TestWatermarkZeroOpacityNoop(t *testing.T) {
	img := Synthetic(16, 16, 1)
	ref := Synthetic(16, 16, 1)
	mark := Synthetic(8, 8, 2)
	Watermark(img, mark, 4, 4, 0)
	for i := range img.Pix {
		if img.Pix[i] != ref.Pix[i] {
			t.Fatal("zero-opacity watermark changed pixels")
		}
	}
}

func TestPipelineSteps(t *testing.T) {
	p := NewPipeline(128, 96, 64, 48, 5)
	for i := 1; i <= 3; i++ {
		out, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if out.Bounds().Dx() != 64 || out.Bounds().Dy() != 48 {
			t.Fatalf("step %d output %v", i, out.Bounds())
		}
		if p.Processed() != i {
			t.Fatalf("Processed = %d, want %d", p.Processed(), i)
		}
	}
}

func BenchmarkResize(b *testing.B) {
	src := Synthetic(256, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resize(src, 128, 128); err != nil {
			b.Fatal(err)
		}
	}
}
