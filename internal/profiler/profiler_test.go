package profiler

import (
	"testing"
	"time"

	"freeride/internal/model"
	"freeride/internal/sidetask"
)

func TestProfileResNet18(t *testing.T) {
	res, err := Profile(BuiltinFactory(model.ResNet18, sidetask.ModeIterative, sidetask.WorkNone), Options{Seed: 1})
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if res.MemBytes != model.ResNet18.MemBytes {
		t.Fatalf("MemBytes = %d, want %d", res.MemBytes, model.ResNet18.MemBytes)
	}
	// Mean step ≈ StepTime + HostOverhead (jitter averages out over 30).
	want := model.ResNet18.StepTime + model.ResNet18.HostOverhead
	lo := want - want/10
	hi := want + want/10
	if res.StepTime < lo || res.StepTime > hi {
		t.Fatalf("StepTime = %v, want within 10%% of %v", res.StepTime, want)
	}
	if res.Steps < 30 {
		t.Fatalf("Steps = %d, want >= 30", res.Steps)
	}
	if res.InitTime < model.ResNet18.InitTime {
		t.Fatalf("InitTime = %v, want >= %v", res.InitTime, model.ResNet18.InitTime)
	}
}

func TestProfileImperativeSkipsStepTime(t *testing.T) {
	res, err := Profile(BuiltinFactory(model.PageRank, sidetask.ModeImperative, sidetask.WorkNone), Options{Seed: 2})
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if res.StepTime != 0 || res.Steps != 0 {
		t.Fatalf("imperative profile measured steps: %v/%d", res.StepTime, res.Steps)
	}
	if res.MemBytes != model.PageRank.MemBytes {
		t.Fatalf("MemBytes = %d, want %d", res.MemBytes, model.PageRank.MemBytes)
	}
}

func TestProfileAllBuiltins(t *testing.T) {
	for _, p := range model.TaskProfiles {
		res, err := Profile(BuiltinFactory(p, sidetask.ModeIterative, sidetask.WorkNone), Options{Seed: 3, Steps: 10})
		if err != nil {
			t.Errorf("Profile(%s): %v", p.Name, err)
			continue
		}
		if res.MemBytes != p.MemBytes {
			t.Errorf("%s: MemBytes = %d, want %d", p.Name, res.MemBytes, p.MemBytes)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	a, err := Profile(BuiltinFactory(model.GraphSGD, sidetask.ModeIterative, sidetask.WorkNone), Options{Seed: 9, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(BuiltinFactory(model.GraphSGD, sidetask.ModeIterative, sidetask.WorkNone), Options{Seed: 9, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.StepTime != b.StepTime || a.MemBytes != b.MemBytes {
		t.Fatalf("same seed, different profiles: %+v vs %+v", a, b)
	}
}

func TestProfileTimeBound(t *testing.T) {
	// An absurdly short budget fails cleanly rather than hanging.
	_, err := Profile(BuiltinFactory(model.VGG19, sidetask.ModeIterative, sidetask.WorkNone),
		Options{Seed: 1, MaxRunTime: time.Millisecond})
	if err == nil {
		t.Fatal("profiling succeeded within 1ms budget")
	}
}
