// Online (incremental) profiling: where profiler.Run measures a side task
// once up front (§4.3), Online keeps the *bubble* profile fresh after
// admission — one bubble.Estimator per worker, fed by the manager from the
// observed Manager.AddBubble report stream, so Algorithm-1 re-planning has
// per-worker supply estimates instead of a stale one-shot profile.
package profiler

import (
	"time"

	"freeride/internal/bubble"
)

// Online is the per-worker estimator registry. It is owned by the manager
// and accessed only under the manager's lock — no locking of its own — and
// does nothing clock- or randomness-dependent, so it inherits the
// engine's determinism.
type Online struct {
	cfg DetectorConfig
	est map[string]*bubble.Estimator
}

// DetectorConfig aliases the bubble detector tuning, re-exported so callers
// configuring the profiler don't need the bubble package.
type DetectorConfig = bubble.DetectorConfig

// NewOnline builds an empty registry with a shared detector tuning.
func NewOnline(cfg DetectorConfig) *Online {
	return &Online{cfg: cfg, est: make(map[string]*bubble.Estimator)}
}

// Track seeds (or replaces) the named worker's estimator from a one-shot
// profile: perEpoch bubble supply delivered in `reports` reports per
// epoch. It returns the estimator so the caller can cache it.
func (o *Online) Track(name string, perEpoch time.Duration, reports int) *bubble.Estimator {
	e := bubble.NewEstimator(o.cfg, perEpoch, reports)
	o.est[name] = e
	return e
}

// Estimator returns the named worker's estimator, or nil if the worker was
// never baselined (its detector is disabled and the one-shot profile
// stays authoritative).
func (o *Online) Estimator(name string) *bubble.Estimator {
	return o.est[name]
}

// Observe feeds one bubble report for the named worker and relays the
// detector's verdict. Unknown workers observe nothing.
func (o *Online) Observe(name string, d time.Duration) bubble.Drift {
	e := o.est[name]
	if e == nil {
		return bubble.DriftNone
	}
	return e.Observe(d)
}
