// Package profiler implements FreeRide's automated side-task profiler
// (paper §4.3): before a task is submitted to the manager, it is run alone
// on a profiling GPU while its GPU memory consumption and per-step duration
// are recorded. The resulting profile drives the manager's placement
// (Alg. 1) and the program-directed execution-time limit (§4.5).
//
// The profiling run is fully self-contained: it spins up a private virtual
// engine and device, so profiling never perturbs the training simulation —
// exactly like the paper's offline profiling pass.
package profiler

import (
	"fmt"
	"time"

	"freeride/internal/container"
	"freeride/internal/model"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Result is what the profiler measures.
type Result struct {
	// MemBytes is the peak GPU memory consumption observed.
	MemBytes int64
	// StepTime is the mean per-step duration including the interface's
	// host-side overhead. Zero for imperative tasks ("since the side task
	// is not step-wise, the automated profiling tool does not measure the
	// per-step duration", §4.3).
	StepTime time.Duration
	// Steps is how many steps the measurement averaged over.
	Steps int
	// CreateTime and InitTime are the observed transition latencies.
	CreateTime time.Duration
	InitTime   time.Duration
}

// Options tune the profiling run.
type Options struct {
	// Steps is the number of steps to average over (iterative tasks).
	Steps int
	// MaxRunTime bounds the profiling run.
	MaxRunTime time.Duration
	// DeviceMem is the profiling GPU's memory size.
	DeviceMem int64
	// Seed makes the profile deterministic.
	Seed int64
}

func (o *Options) normalize() {
	if o.Steps <= 0 {
		o.Steps = 30
	}
	if o.MaxRunTime <= 0 {
		o.MaxRunTime = 10 * time.Minute
	}
	if o.DeviceMem <= 0 {
		o.DeviceMem = 48 * model.GiB
	}
}

// HarnessFactory builds the harness to profile (a fresh instance; the
// profiled one is discarded afterwards).
type HarnessFactory func(seed int64) (*sidetask.Harness, error)

// BuiltinFactory profiles one of the built-in tasks.
func BuiltinFactory(profile model.TaskProfile, mode sidetask.Mode, scale sidetask.WorkScale) HarnessFactory {
	return func(seed int64) (*sidetask.Harness, error) {
		return sidetask.NewBuiltin(profile, mode, scale, seed)
	}
}

// Profile runs the task alone on a private device and measures it.
func Profile(factory HarnessFactory, opts Options) (Result, error) {
	opts.normalize()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := simgpu.NewDevice(eng, simgpu.DeviceConfig{Name: "profiler-gpu", MemBytes: opts.DeviceMem})
	ctr := container.NewRuntime(procs)

	h, err := factory(opts.Seed)
	if err != nil {
		return Result{}, fmt.Errorf("profiler: build harness: %w", err)
	}
	cont, err := ctr.Run(container.Spec{Name: "profilee", Device: dev}, h.Run)
	if err != nil {
		return Result{}, fmt.Errorf("profiler: start container: %w", err)
	}

	var res Result
	deadline := opts.MaxRunTime

	// Phase 1: wait for CREATED.
	for eng.Now() < deadline && h.State() != sidetask.StateCreated {
		if exited, exitErr, _ := cont.ExitInfo(); exited {
			return Result{}, fmt.Errorf("profiler: task exited during create: %w", exitErr)
		}
		eng.RunFor(10 * time.Millisecond)
	}
	if h.State() != sidetask.StateCreated {
		return Result{}, fmt.Errorf("profiler: create did not finish within %v", opts.MaxRunTime)
	}
	res.CreateTime = eng.Now()

	// Phase 2: InitSideTask → PAUSED; memory gets allocated here.
	initStart := eng.Now()
	h.Deliver(sidetask.Command{Transition: sidetask.TransitionInit})
	for eng.Now() < deadline && h.State() != sidetask.StatePaused {
		if exited, exitErr, _ := cont.ExitInfo(); exited {
			return Result{}, fmt.Errorf("profiler: task exited during init: %w", exitErr)
		}
		eng.RunFor(10 * time.Millisecond)
	}
	if h.State() != sidetask.StatePaused {
		return Result{}, fmt.Errorf("profiler: init did not finish within %v", opts.MaxRunTime)
	}
	res.InitTime = eng.Now() - initStart

	// Phase 3: run with an effectively unbounded bubble and time Steps
	// steps (iterative), or a fixed slice (imperative: memory only).
	runStart := eng.Now()
	h.Deliver(sidetask.Command{Transition: sidetask.TransitionStart, BubbleEnd: deadline})
	if h.Mode() == sidetask.ModeIterative {
		for eng.Now() < deadline && int(h.Counters().Steps) < opts.Steps {
			eng.RunFor(10 * time.Millisecond)
		}
		c := h.Counters()
		if c.Steps == 0 {
			return Result{}, fmt.Errorf("profiler: no steps completed within %v", opts.MaxRunTime)
		}
		res.Steps = int(c.Steps)
		res.StepTime = (eng.Now() - runStart) / time.Duration(c.Steps)
	} else {
		eng.RunFor(2 * time.Second)
	}
	res.MemBytes = peakMem(cont)

	// Tear down.
	h.Deliver(sidetask.Command{Transition: sidetask.TransitionStop})
	eng.RunFor(time.Second)
	if cont.Alive() {
		cont.Kill()
		eng.RunFor(time.Second)
	}
	return res, nil
}

func peakMem(cont *container.Container) int64 {
	gpu := cont.GPU()
	if gpu == nil {
		return 0
	}
	var peak int64
	for _, p := range gpu.MemTrace().Points() {
		if int64(p.V) > peak {
			peak = int64(p.V)
		}
	}
	return peak
}
